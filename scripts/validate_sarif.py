#!/usr/bin/env python3
"""Validate otcheck's SARIF output against the SARIF 2.1.0 shape.

Two modes:

    validate_sarif.py report.sarif
        Validate an existing SARIF file.

    validate_sarif.py --otcheck BIN --root DIR
        Run `BIN --root DIR --no-baseline --sarif-out TMP` (the
        otcheck exit status is ignored — findings are fine, we are
        testing the serialisation) and validate what it wrote.

Validation is a JSON-Schema check of the SARIF 2.1.0 core the GitHub
code-scanning ingester relies on, embedded below so the test runs
offline, plus two semantic checks the schema cannot express: every
result's ruleId must be declared by the driver, and its ruleIndex
must point at that declaration.  Exits nonzero on any violation.
"""

import argparse
import json
import subprocess
import sys
import tempfile

# The load-bearing core of the SARIF 2.1.0 schema (embedded so no
# network is needed): document, run, tool, rule and result shapes,
# with the fields GitHub code scanning requires.
SARIF_CORE_SCHEMA = {
    "type": "object",
    "required": ["$schema", "version", "runs"],
    "properties": {
        "$schema": {"type": "string", "pattern": "sarif"},
        "version": {"const": "2.1.0"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name", "rules"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                            },
                                        },
                                    },
                                },
                            },
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["ruleId", "message",
                                         "locations"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "ruleIndex": {
                                    "type": "integer",
                                    "minimum": 0,
                                },
                                "level": {
                                    "enum": ["none", "note", "warning",
                                             "error"],
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                    "properties": {
                                        "text": {"type": "string"},
                                    },
                                },
                                "locations": {
                                    "type": "array",
                                    "minItems": 1,
                                    "items": {
                                        "type": "object",
                                        "required": ["physicalLocation"],
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "required": [
                                                    "artifactLocation",
                                                    "region",
                                                ],
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "required": ["uri"],
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "required": [
                                                            "startLine",
                                                        ],
                                                        "properties": {
                                                            "startLine": {
                                                                "type":
                                                                "integer",
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


def fail(msg):
    print(f"validate_sarif: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def validate(doc):
    import jsonschema

    jsonschema.validate(doc, SARIF_CORE_SCHEMA)

    for run in doc["runs"]:
        rules = run["tool"]["driver"]["rules"]
        ids = [r["id"] for r in rules]
        if len(set(ids)) != len(ids):
            fail("duplicate rule ids in driver.rules")
        for res in run["results"]:
            rid = res["ruleId"]
            if rid not in ids:
                fail(f"result ruleId {rid!r} not declared by the driver")
            idx = res.get("ruleIndex")
            if idx is not None and (idx >= len(ids) or ids[idx] != rid):
                fail(f"ruleIndex {idx} does not point at {rid!r}")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("sarif", nargs="?", help="SARIF file to validate")
    ap.add_argument("--otcheck", help="otcheck binary to run first")
    ap.add_argument("--root", help="tree to run otcheck over")
    args = ap.parse_args()

    if args.otcheck:
        if not args.root:
            fail("--otcheck requires --root")
        out = tempfile.NamedTemporaryFile(suffix=".sarif", delete=False)
        out.close()
        proc = subprocess.run(
            [args.otcheck, "--root", args.root, "--no-baseline",
             "--sarif-out", out.name],
            stdout=subprocess.DEVNULL)
        if proc.returncode not in (0, 1):
            fail(f"otcheck exited {proc.returncode} (usage/IO error)")
        path = out.name
    elif args.sarif:
        path = args.sarif
    else:
        fail("need a SARIF file or --otcheck/--root")

    with open(path, "rb") as f:
        doc = json.load(f)
    validate(doc)
    nresults = sum(len(run["results"]) for run in doc["runs"])
    print(f"validate_sarif: OK ({path}, {nresults} result(s))")


if __name__ == "__main__":
    main()

#!/usr/bin/env bash
# Snapshot the workload-farm and scenario-engine benchmarks to a JSON
# file.  This closes the gap bench_snapshot.sh left: that script only
# *folds* bench_workload into the sorting snapshot, so the workload
# numbers had no first-class Release baseline of their own.
#
#   scripts/bench_workload_snapshot.sh [build-dir] [out.json] [min-time]
#
# Defaults to a Release-style baseline name; the checked-in
# BENCH_workload_release.json was produced with
#
#   cmake -B build-rel -S . -DCMAKE_BUILD_TYPE=Release
#   cmake --build build-rel -j
#   OT_HOST_THREADS=8 scripts/bench_workload_snapshot.sh build-rel
#
# The snapshot's "context" block records CMAKE_BUILD_TYPE, the
# dispatched SIMD backend and OT_HOST_THREADS — comparisons across
# snapshots must hold all three fixed (a Debug run is not comparable
# to this baseline at all).
set -euo pipefail

build_dir=${1:-build-rel}
out=${2:-BENCH_workload_release.json}
min_time=${3:-0.2}

bench="$build_dir/bench/bench_workload"
if [[ ! -x "$bench" ]]; then
    echo "error: $bench not found or not executable (build first)" >&2
    exit 1
fi

"$bench" \
    --benchmark_filter='BM_Batch(Cold|Warm|Wide)' \
    --benchmark_min_time="$min_time" \
    --benchmark_out="$out" \
    --benchmark_out_format=json \
    > /dev/null

# Fold in the scenario layer (policy replay, arrival generation, cold
# end-to-end) so the traffic-model numbers share the baseline.
scenario_bench="$build_dir/bench/bench_scenario"
if [[ -x "$scenario_bench" ]] && command -v python3 > /dev/null; then
    sc=$(mktemp)
    trap 'rm -f "$sc"' EXIT
    if "$scenario_bench" \
        --benchmark_filter='BM_(ScenarioReplay|ArrivalGen|ScenarioCold)' \
        --benchmark_min_time="$min_time" \
        --benchmark_out="$sc" \
        --benchmark_out_format=json \
        > /dev/null; then
        python3 - "$out" "$sc" << 'EOF'
import json, sys
out_path, sc_path = sys.argv[1], sys.argv[2]
with open(out_path) as f:
    bench = json.load(f)
with open(sc_path) as f:
    bench["scenario_benchmarks"] = json.load(f)["benchmarks"]
with open(out_path, "w") as f:
    json.dump(bench, f, indent=1)
EOF
        echo "folded scenario benchmarks into $out"
    else
        echo "note: bench_scenario failed, skipping" >&2
    fi
fi

# The same context block bench_snapshot.sh records.
if command -v python3 > /dev/null; then
    build_type=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' \
        "$build_dir/CMakeCache.txt" 2> /dev/null || true)
    otsim="$build_dir/tools/otsim"
    backend=""
    if [[ -x "$otsim" ]]; then
        backend=$("$otsim" simd | sed -n 's/^active: //p' || true)
    fi
    python3 - "$out" "${build_type:-unknown}" "${backend:-unknown}" \
        "${OT_HOST_THREADS:-auto}" << 'EOF'
import json, sys
out_path, build_type, backend, threads = sys.argv[1:5]
with open(out_path) as f:
    bench = json.load(f)
bench.setdefault("context", {})
bench["context"]["cmake_build_type"] = build_type
bench["context"]["simd_backend"] = backend
bench["context"]["ot_host_threads"] = threads
with open(out_path, "w") as f:
    json.dump(bench, f, indent=1)
EOF
    echo "context: build_type=${build_type:-unknown}" \
        "simd=${backend:-unknown} threads=${OT_HOST_THREADS:-auto}"
fi

echo "wrote $out (host threads: ${OT_HOST_THREADS:-auto})"

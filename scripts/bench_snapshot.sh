#!/usr/bin/env bash
# Snapshot the Table-1 sorting benchmark to a JSON file.
#
#   scripts/bench_snapshot.sh [build-dir] [out.json] [min-time-seconds]
#
# Output goes through --benchmark_out (not stdout: the bench also prints
# its human-readable paper table there).  OT_HOST_THREADS is honoured;
# record it in the filename or environment when comparing runs, e.g.
#
#   OT_HOST_THREADS=1 scripts/bench_snapshot.sh build BENCH_seq.json
#   OT_HOST_THREADS=8 scripts/bench_snapshot.sh build BENCH_par.json
#
# The snapshot's "context" block records CMAKE_BUILD_TYPE, the
# dispatched SIMD backend and OT_HOST_THREADS; OT_SIMD=scalar|avx2|neon
# forces a backend for apples-to-apples runs, e.g.
#
#   OT_SIMD=scalar scripts/bench_snapshot.sh build-rel BENCH_scalar.json
set -euo pipefail

build_dir=${1:-build}
out=${2:-BENCH_sorting.json}
min_time=${3:-0.2}

bench="$build_dir/bench/bench_table1_sorting"
if [[ ! -x "$bench" ]]; then
    echo "error: $bench not found or not executable (build first)" >&2
    exit 1
fi

"$bench" \
    --benchmark_filter='BM_Sort(Otn|Otc|FatTree|D2dMot)' \
    --benchmark_min_time="$min_time" \
    --benchmark_out="$out" \
    --benchmark_out_format=json \
    > /dev/null

# Fold the model-time trace analysis (per-phase breakdown, root
# bandwidth, critical path) for a reference SORT-OTN run into the
# snapshot, so a bench JSON explains *where* the model time went, not
# just how fast the host simulated it.
otsim="$build_dir/tools/otsim"
if [[ -x "$otsim" ]] && command -v python3 > /dev/null; then
    summary=$(mktemp)
    trap 'rm -f "$summary"' EXIT
    if "$otsim" sort --net otn --n 256 --trace-summary "$summary" \
        > /dev/null; then
        python3 - "$out" "$summary" << 'EOF'
import json, sys
out_path, summary_path = sys.argv[1], sys.argv[2]
with open(out_path) as f:
    bench = json.load(f)
with open(summary_path) as f:
    bench["trace_summary"] = json.load(f)
with open(out_path, "w") as f:
    json.dump(bench, f, indent=1)
EOF
        echo "folded trace summary (sort --net otn --n 256) into $out"
    else
        echo "note: otsim trace summary unavailable, skipping" >&2
    fi
fi

# Record the build/dispatch context the numbers were taken under: the
# CMake build type (debug and Release snapshots are not comparable),
# the SIMD backend the bench binary dispatches to, and the host-thread
# setting.  Comparisons across snapshots must hold these fixed.
if command -v python3 > /dev/null; then
    build_type=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' \
        "$build_dir/CMakeCache.txt" 2> /dev/null || true)
    backend=""
    if [[ -x "$otsim" ]]; then
        backend=$("$otsim" simd | sed -n 's/^active: //p' || true)
    fi
    python3 - "$out" "${build_type:-unknown}" "${backend:-unknown}" \
        "${OT_HOST_THREADS:-auto}" << 'EOF'
import json, sys
out_path, build_type, backend, threads = sys.argv[1:5]
with open(out_path) as f:
    bench = json.load(f)
bench.setdefault("context", {})
bench["context"]["cmake_build_type"] = build_type
bench["context"]["simd_backend"] = backend
bench["context"]["ot_host_threads"] = threads
with open(out_path, "w") as f:
    json.dump(bench, f, indent=1)
EOF
    echo "context: build_type=${build_type:-unknown}" \
        "simd=${backend:-unknown} threads=${OT_HOST_THREADS:-auto}"
fi

# Fold the workload-farm benchmark (cold vs warm NetworkCache, farm
# width sweep) into the same snapshot so cache efficacy and batch
# scaling travel with the sorting numbers.
workload_bench="$build_dir/bench/bench_workload"
if [[ -x "$workload_bench" ]] && command -v python3 > /dev/null; then
    wl=$(mktemp)
    trap 'rm -f "${summary:-}" "$wl"' EXIT
    if "$workload_bench" \
        --benchmark_filter='BM_Batch(Cold|Warm|Wide)' \
        --benchmark_min_time="$min_time" \
        --benchmark_out="$wl" \
        --benchmark_out_format=json \
        > /dev/null; then
        python3 - "$out" "$wl" << 'EOF'
import json, sys
out_path, wl_path = sys.argv[1], sys.argv[2]
with open(out_path) as f:
    bench = json.load(f)
with open(wl_path) as f:
    bench["workload_benchmarks"] = json.load(f)["benchmarks"]
with open(out_path, "w") as f:
    json.dump(bench, f, indent=1)
EOF
        echo "folded workload farm benchmarks into $out"
    else
        echo "note: bench_workload failed, skipping" >&2
    fi
fi

echo "wrote $out (host threads: ${OT_HOST_THREADS:-auto})"

# Empty compiler generated dependencies file for bench_mst.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_connected_components.dir/bench_table3_connected_components.cc.o"
  "CMakeFiles/bench_table3_connected_components.dir/bench_table3_connected_components.cc.o.d"
  "bench_table3_connected_components"
  "bench_table3_connected_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_connected_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

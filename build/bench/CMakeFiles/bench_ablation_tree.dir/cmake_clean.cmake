file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_tree.dir/bench_ablation_tree.cc.o"
  "CMakeFiles/bench_ablation_tree.dir/bench_ablation_tree.cc.o.d"
  "bench_ablation_tree"
  "bench_ablation_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_table4_constant_delay.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_constant_delay.dir/bench_table4_constant_delay.cc.o"
  "CMakeFiles/bench_table4_constant_delay.dir/bench_table4_constant_delay.cc.o.d"
  "bench_table4_constant_delay"
  "bench_table4_constant_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_constant_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_table2_boolean_matmul.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_boolean_matmul.dir/bench_table2_boolean_matmul.cc.o"
  "CMakeFiles/bench_table2_boolean_matmul.dir/bench_table2_boolean_matmul.cc.o.d"
  "bench_table2_boolean_matmul"
  "bench_table2_boolean_matmul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_boolean_matmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig23_otc_layout.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_bitonic_dft.dir/bench_bitonic_dft.cc.o"
  "CMakeFiles/bench_bitonic_dft.dir/bench_bitonic_dft.cc.o.d"
  "bench_bitonic_dft"
  "bench_bitonic_dft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bitonic_dft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

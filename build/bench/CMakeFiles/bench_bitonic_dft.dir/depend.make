# Empty dependencies file for bench_bitonic_dft.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_shortest_paths.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_shortest_paths.dir/bench_shortest_paths.cc.o"
  "CMakeFiles/bench_shortest_paths.dir/bench_shortest_paths.cc.o.d"
  "bench_shortest_paths"
  "bench_shortest_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shortest_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

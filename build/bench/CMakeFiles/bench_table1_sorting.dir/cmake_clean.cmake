file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_sorting.dir/bench_table1_sorting.cc.o"
  "CMakeFiles/bench_table1_sorting.dir/bench_table1_sorting.cc.o.d"
  "bench_table1_sorting"
  "bench_table1_sorting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_sorting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_table1_sorting.
# This may be replaced when dependencies are built.

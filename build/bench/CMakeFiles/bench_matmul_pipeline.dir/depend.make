# Empty dependencies file for bench_matmul_pipeline.
# This may be replaced when dependencies are built.

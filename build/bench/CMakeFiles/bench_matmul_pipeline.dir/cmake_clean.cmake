file(REMOVE_RECURSE
  "CMakeFiles/bench_matmul_pipeline.dir/bench_matmul_pipeline.cc.o"
  "CMakeFiles/bench_matmul_pipeline.dir/bench_matmul_pipeline.cc.o.d"
  "bench_matmul_pipeline"
  "bench_matmul_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_matmul_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

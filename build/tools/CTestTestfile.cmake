# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(otsim_sort_otn "/root/repo/build/tools/otsim" "sort" "--net" "otn" "--n" "64" "--seed" "3")
set_tests_properties(otsim_sort_otn PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(otsim_sort_otc_const "/root/repo/build/tools/otsim" "sort" "--net" "otc" "--n" "64" "--model" "const")
set_tests_properties(otsim_sort_otc_const PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(otsim_sort_tree "/root/repo/build/tools/otsim" "sort" "--net" "tree" "--n" "32")
set_tests_properties(otsim_sort_tree PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(otsim_cc_otc "/root/repo/build/tools/otsim" "cc" "--net" "otc" "--n" "32" "--p" "0.1")
set_tests_properties(otsim_cc_otc PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(otsim_mst_otn "/root/repo/build/tools/otsim" "mst" "--net" "otn" "--n" "24")
set_tests_properties(otsim_mst_otn PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(otsim_matmul_hex "/root/repo/build/tools/otsim" "matmul" "--net" "hex" "--n" "16")
set_tests_properties(otsim_matmul_hex PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(otsim_matmul_mot3d "/root/repo/build/tools/otsim" "matmul" "--net" "mot3d" "--n" "8")
set_tests_properties(otsim_matmul_mot3d PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(otsim_sssp "/root/repo/build/tools/otsim" "sssp" "--n" "32" "--seed" "5")
set_tests_properties(otsim_sssp PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(otsim_layout_art "/root/repo/build/tools/otsim" "layout" "--net" "otn" "--n" "4" "--art")
set_tests_properties(otsim_layout_art PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(otsim_tables "/root/repo/build/tools/otsim" "tables" "--n" "1024")
set_tests_properties(otsim_tables PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;25;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(otsim_rejects_unknown_command "/root/repo/build/tools/otsim" "frobnicate")
set_tests_properties(otsim_rejects_unknown_command PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;29;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(otsim_rejects_bad_n "/root/repo/build/tools/otsim" "sort" "--n" "1")
set_tests_properties(otsim_rejects_bad_n PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;32;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(otsim_layout_svg "/root/repo/build/tools/otsim" "layout" "--net" "otn" "--n" "8" "--svg" "fig1.svg")
set_tests_properties(otsim_layout_svg PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;34;add_test;/root/repo/tools/CMakeLists.txt;0;")

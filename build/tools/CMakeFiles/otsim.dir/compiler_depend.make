# Empty compiler generated dependencies file for otsim.
# This may be replaced when dependencies are built.

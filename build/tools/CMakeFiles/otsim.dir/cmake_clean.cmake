file(REMOVE_RECURSE
  "CMakeFiles/otsim.dir/otsim.cc.o"
  "CMakeFiles/otsim.dir/otsim.cc.o.d"
  "otsim"
  "otsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/arithmetic_dft.dir/arithmetic_dft.cpp.o"
  "CMakeFiles/arithmetic_dft.dir/arithmetic_dft.cpp.o.d"
  "arithmetic_dft"
  "arithmetic_dft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arithmetic_dft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

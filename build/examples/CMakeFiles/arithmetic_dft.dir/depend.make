# Empty dependencies file for arithmetic_dft.
# This may be replaced when dependencies are built.

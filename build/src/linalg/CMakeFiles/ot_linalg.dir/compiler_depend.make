# Empty compiler generated dependencies file for ot_linalg.
# This may be replaced when dependencies are built.

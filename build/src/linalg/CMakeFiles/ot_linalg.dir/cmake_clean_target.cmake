file(REMOVE_RECURSE
  "libot_linalg.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/ot_linalg.dir/reference.cc.o"
  "CMakeFiles/ot_linalg.dir/reference.cc.o.d"
  "libot_linalg.a"
  "libot_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ot_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libot_vlsi.a"
)

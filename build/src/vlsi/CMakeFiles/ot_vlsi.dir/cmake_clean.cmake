file(REMOVE_RECURSE
  "CMakeFiles/ot_vlsi.dir/cost_model.cc.o"
  "CMakeFiles/ot_vlsi.dir/cost_model.cc.o.d"
  "CMakeFiles/ot_vlsi.dir/delay.cc.o"
  "CMakeFiles/ot_vlsi.dir/delay.cc.o.d"
  "libot_vlsi.a"
  "libot_vlsi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ot_vlsi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ot_vlsi.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ot_graph.dir/generators.cc.o"
  "CMakeFiles/ot_graph.dir/generators.cc.o.d"
  "CMakeFiles/ot_graph.dir/reference_algorithms.cc.o"
  "CMakeFiles/ot_graph.dir/reference_algorithms.cc.o.d"
  "libot_graph.a"
  "libot_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ot_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libot_graph.a"
)

# Empty compiler generated dependencies file for ot_graph.
# This may be replaced when dependencies are built.

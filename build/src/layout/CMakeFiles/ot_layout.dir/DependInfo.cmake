
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/layout/baseline_layouts.cc" "src/layout/CMakeFiles/ot_layout.dir/baseline_layouts.cc.o" "gcc" "src/layout/CMakeFiles/ot_layout.dir/baseline_layouts.cc.o.d"
  "/root/repo/src/layout/otc_layout.cc" "src/layout/CMakeFiles/ot_layout.dir/otc_layout.cc.o" "gcc" "src/layout/CMakeFiles/ot_layout.dir/otc_layout.cc.o.d"
  "/root/repo/src/layout/otn_layout.cc" "src/layout/CMakeFiles/ot_layout.dir/otn_layout.cc.o" "gcc" "src/layout/CMakeFiles/ot_layout.dir/otn_layout.cc.o.d"
  "/root/repo/src/layout/svg.cc" "src/layout/CMakeFiles/ot_layout.dir/svg.cc.o" "gcc" "src/layout/CMakeFiles/ot_layout.dir/svg.cc.o.d"
  "/root/repo/src/layout/tree_embedding.cc" "src/layout/CMakeFiles/ot_layout.dir/tree_embedding.cc.o" "gcc" "src/layout/CMakeFiles/ot_layout.dir/tree_embedding.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vlsi/CMakeFiles/ot_vlsi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

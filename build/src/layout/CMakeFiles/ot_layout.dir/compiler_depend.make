# Empty compiler generated dependencies file for ot_layout.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libot_layout.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/ot_layout.dir/baseline_layouts.cc.o"
  "CMakeFiles/ot_layout.dir/baseline_layouts.cc.o.d"
  "CMakeFiles/ot_layout.dir/otc_layout.cc.o"
  "CMakeFiles/ot_layout.dir/otc_layout.cc.o.d"
  "CMakeFiles/ot_layout.dir/otn_layout.cc.o"
  "CMakeFiles/ot_layout.dir/otn_layout.cc.o.d"
  "CMakeFiles/ot_layout.dir/svg.cc.o"
  "CMakeFiles/ot_layout.dir/svg.cc.o.d"
  "CMakeFiles/ot_layout.dir/tree_embedding.cc.o"
  "CMakeFiles/ot_layout.dir/tree_embedding.cc.o.d"
  "libot_layout.a"
  "libot_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ot_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

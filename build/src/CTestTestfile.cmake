# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("vlsi")
subdirs("sim")
subdirs("layout")
subdirs("linalg")
subdirs("graph")
subdirs("otn")
subdirs("otc")
subdirs("baselines")
subdirs("analysis")
subdirs("core")

file(REMOVE_RECURSE
  "CMakeFiles/ot_baselines.dir/ccc.cc.o"
  "CMakeFiles/ot_baselines.dir/ccc.cc.o.d"
  "CMakeFiles/ot_baselines.dir/hex_array.cc.o"
  "CMakeFiles/ot_baselines.dir/hex_array.cc.o.d"
  "CMakeFiles/ot_baselines.dir/mesh.cc.o"
  "CMakeFiles/ot_baselines.dir/mesh.cc.o.d"
  "CMakeFiles/ot_baselines.dir/psn.cc.o"
  "CMakeFiles/ot_baselines.dir/psn.cc.o.d"
  "CMakeFiles/ot_baselines.dir/tree_machine.cc.o"
  "CMakeFiles/ot_baselines.dir/tree_machine.cc.o.d"
  "libot_baselines.a"
  "libot_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ot_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

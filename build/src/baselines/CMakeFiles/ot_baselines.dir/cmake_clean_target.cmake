file(REMOVE_RECURSE
  "libot_baselines.a"
)

# Empty dependencies file for ot_baselines.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ot_otn.dir/bitonic.cc.o"
  "CMakeFiles/ot_otn.dir/bitonic.cc.o.d"
  "CMakeFiles/ot_otn.dir/closure.cc.o"
  "CMakeFiles/ot_otn.dir/closure.cc.o.d"
  "CMakeFiles/ot_otn.dir/connected_components.cc.o"
  "CMakeFiles/ot_otn.dir/connected_components.cc.o.d"
  "CMakeFiles/ot_otn.dir/dft.cc.o"
  "CMakeFiles/ot_otn.dir/dft.cc.o.d"
  "CMakeFiles/ot_otn.dir/integer_multiply.cc.o"
  "CMakeFiles/ot_otn.dir/integer_multiply.cc.o.d"
  "CMakeFiles/ot_otn.dir/matmul.cc.o"
  "CMakeFiles/ot_otn.dir/matmul.cc.o.d"
  "CMakeFiles/ot_otn.dir/mesh_of_trees_3d.cc.o"
  "CMakeFiles/ot_otn.dir/mesh_of_trees_3d.cc.o.d"
  "CMakeFiles/ot_otn.dir/mst.cc.o"
  "CMakeFiles/ot_otn.dir/mst.cc.o.d"
  "CMakeFiles/ot_otn.dir/network.cc.o"
  "CMakeFiles/ot_otn.dir/network.cc.o.d"
  "CMakeFiles/ot_otn.dir/patterns.cc.o"
  "CMakeFiles/ot_otn.dir/patterns.cc.o.d"
  "CMakeFiles/ot_otn.dir/pipeline.cc.o"
  "CMakeFiles/ot_otn.dir/pipeline.cc.o.d"
  "CMakeFiles/ot_otn.dir/selection.cc.o"
  "CMakeFiles/ot_otn.dir/selection.cc.o.d"
  "CMakeFiles/ot_otn.dir/shortest_paths.cc.o"
  "CMakeFiles/ot_otn.dir/shortest_paths.cc.o.d"
  "CMakeFiles/ot_otn.dir/sort.cc.o"
  "CMakeFiles/ot_otn.dir/sort.cc.o.d"
  "libot_otn.a"
  "libot_otn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ot_otn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

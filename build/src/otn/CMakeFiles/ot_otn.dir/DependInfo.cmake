
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/otn/bitonic.cc" "src/otn/CMakeFiles/ot_otn.dir/bitonic.cc.o" "gcc" "src/otn/CMakeFiles/ot_otn.dir/bitonic.cc.o.d"
  "/root/repo/src/otn/closure.cc" "src/otn/CMakeFiles/ot_otn.dir/closure.cc.o" "gcc" "src/otn/CMakeFiles/ot_otn.dir/closure.cc.o.d"
  "/root/repo/src/otn/connected_components.cc" "src/otn/CMakeFiles/ot_otn.dir/connected_components.cc.o" "gcc" "src/otn/CMakeFiles/ot_otn.dir/connected_components.cc.o.d"
  "/root/repo/src/otn/dft.cc" "src/otn/CMakeFiles/ot_otn.dir/dft.cc.o" "gcc" "src/otn/CMakeFiles/ot_otn.dir/dft.cc.o.d"
  "/root/repo/src/otn/integer_multiply.cc" "src/otn/CMakeFiles/ot_otn.dir/integer_multiply.cc.o" "gcc" "src/otn/CMakeFiles/ot_otn.dir/integer_multiply.cc.o.d"
  "/root/repo/src/otn/matmul.cc" "src/otn/CMakeFiles/ot_otn.dir/matmul.cc.o" "gcc" "src/otn/CMakeFiles/ot_otn.dir/matmul.cc.o.d"
  "/root/repo/src/otn/mesh_of_trees_3d.cc" "src/otn/CMakeFiles/ot_otn.dir/mesh_of_trees_3d.cc.o" "gcc" "src/otn/CMakeFiles/ot_otn.dir/mesh_of_trees_3d.cc.o.d"
  "/root/repo/src/otn/mst.cc" "src/otn/CMakeFiles/ot_otn.dir/mst.cc.o" "gcc" "src/otn/CMakeFiles/ot_otn.dir/mst.cc.o.d"
  "/root/repo/src/otn/network.cc" "src/otn/CMakeFiles/ot_otn.dir/network.cc.o" "gcc" "src/otn/CMakeFiles/ot_otn.dir/network.cc.o.d"
  "/root/repo/src/otn/patterns.cc" "src/otn/CMakeFiles/ot_otn.dir/patterns.cc.o" "gcc" "src/otn/CMakeFiles/ot_otn.dir/patterns.cc.o.d"
  "/root/repo/src/otn/pipeline.cc" "src/otn/CMakeFiles/ot_otn.dir/pipeline.cc.o" "gcc" "src/otn/CMakeFiles/ot_otn.dir/pipeline.cc.o.d"
  "/root/repo/src/otn/selection.cc" "src/otn/CMakeFiles/ot_otn.dir/selection.cc.o" "gcc" "src/otn/CMakeFiles/ot_otn.dir/selection.cc.o.d"
  "/root/repo/src/otn/shortest_paths.cc" "src/otn/CMakeFiles/ot_otn.dir/shortest_paths.cc.o" "gcc" "src/otn/CMakeFiles/ot_otn.dir/shortest_paths.cc.o.d"
  "/root/repo/src/otn/sort.cc" "src/otn/CMakeFiles/ot_otn.dir/sort.cc.o" "gcc" "src/otn/CMakeFiles/ot_otn.dir/sort.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/ot_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/ot_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ot_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ot_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/vlsi/CMakeFiles/ot_vlsi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

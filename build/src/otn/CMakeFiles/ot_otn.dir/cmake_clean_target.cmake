file(REMOVE_RECURSE
  "libot_otn.a"
)

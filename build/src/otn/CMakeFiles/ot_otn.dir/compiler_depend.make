# Empty compiler generated dependencies file for ot_otn.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libot_analysis.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/asymptotics.cc" "src/analysis/CMakeFiles/ot_analysis.dir/asymptotics.cc.o" "gcc" "src/analysis/CMakeFiles/ot_analysis.dir/asymptotics.cc.o.d"
  "/root/repo/src/analysis/fitting.cc" "src/analysis/CMakeFiles/ot_analysis.dir/fitting.cc.o" "gcc" "src/analysis/CMakeFiles/ot_analysis.dir/fitting.cc.o.d"
  "/root/repo/src/analysis/table.cc" "src/analysis/CMakeFiles/ot_analysis.dir/table.cc.o" "gcc" "src/analysis/CMakeFiles/ot_analysis.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vlsi/CMakeFiles/ot_vlsi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

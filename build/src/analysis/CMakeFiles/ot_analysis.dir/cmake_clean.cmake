file(REMOVE_RECURSE
  "CMakeFiles/ot_analysis.dir/asymptotics.cc.o"
  "CMakeFiles/ot_analysis.dir/asymptotics.cc.o.d"
  "CMakeFiles/ot_analysis.dir/fitting.cc.o"
  "CMakeFiles/ot_analysis.dir/fitting.cc.o.d"
  "CMakeFiles/ot_analysis.dir/table.cc.o"
  "CMakeFiles/ot_analysis.dir/table.cc.o.d"
  "libot_analysis.a"
  "libot_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ot_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ot_analysis.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libot_sim.a"
)

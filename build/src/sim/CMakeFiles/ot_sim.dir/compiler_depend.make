# Empty compiler generated dependencies file for ot_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ot_sim.dir/bitserial.cc.o"
  "CMakeFiles/ot_sim.dir/bitserial.cc.o.d"
  "CMakeFiles/ot_sim.dir/stats.cc.o"
  "CMakeFiles/ot_sim.dir/stats.cc.o.d"
  "libot_sim.a"
  "libot_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ot_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/otc/algorithms.cc" "src/otc/CMakeFiles/ot_otc.dir/algorithms.cc.o" "gcc" "src/otc/CMakeFiles/ot_otc.dir/algorithms.cc.o.d"
  "/root/repo/src/otc/connected_components_native.cc" "src/otc/CMakeFiles/ot_otc.dir/connected_components_native.cc.o" "gcc" "src/otc/CMakeFiles/ot_otc.dir/connected_components_native.cc.o.d"
  "/root/repo/src/otc/cycle_ops.cc" "src/otc/CMakeFiles/ot_otc.dir/cycle_ops.cc.o" "gcc" "src/otc/CMakeFiles/ot_otc.dir/cycle_ops.cc.o.d"
  "/root/repo/src/otc/emulated_otn.cc" "src/otc/CMakeFiles/ot_otc.dir/emulated_otn.cc.o" "gcc" "src/otc/CMakeFiles/ot_otc.dir/emulated_otn.cc.o.d"
  "/root/repo/src/otc/matmul_native.cc" "src/otc/CMakeFiles/ot_otc.dir/matmul_native.cc.o" "gcc" "src/otc/CMakeFiles/ot_otc.dir/matmul_native.cc.o.d"
  "/root/repo/src/otc/mst_native.cc" "src/otc/CMakeFiles/ot_otc.dir/mst_native.cc.o" "gcc" "src/otc/CMakeFiles/ot_otc.dir/mst_native.cc.o.d"
  "/root/repo/src/otc/network.cc" "src/otc/CMakeFiles/ot_otc.dir/network.cc.o" "gcc" "src/otc/CMakeFiles/ot_otc.dir/network.cc.o.d"
  "/root/repo/src/otc/sort.cc" "src/otc/CMakeFiles/ot_otc.dir/sort.cc.o" "gcc" "src/otc/CMakeFiles/ot_otc.dir/sort.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/otn/CMakeFiles/ot_otn.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ot_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/ot_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ot_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ot_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/vlsi/CMakeFiles/ot_vlsi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

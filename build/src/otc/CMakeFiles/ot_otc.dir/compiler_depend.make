# Empty compiler generated dependencies file for ot_otc.
# This may be replaced when dependencies are built.

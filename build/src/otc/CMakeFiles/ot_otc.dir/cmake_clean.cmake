file(REMOVE_RECURSE
  "CMakeFiles/ot_otc.dir/algorithms.cc.o"
  "CMakeFiles/ot_otc.dir/algorithms.cc.o.d"
  "CMakeFiles/ot_otc.dir/connected_components_native.cc.o"
  "CMakeFiles/ot_otc.dir/connected_components_native.cc.o.d"
  "CMakeFiles/ot_otc.dir/cycle_ops.cc.o"
  "CMakeFiles/ot_otc.dir/cycle_ops.cc.o.d"
  "CMakeFiles/ot_otc.dir/emulated_otn.cc.o"
  "CMakeFiles/ot_otc.dir/emulated_otn.cc.o.d"
  "CMakeFiles/ot_otc.dir/matmul_native.cc.o"
  "CMakeFiles/ot_otc.dir/matmul_native.cc.o.d"
  "CMakeFiles/ot_otc.dir/mst_native.cc.o"
  "CMakeFiles/ot_otc.dir/mst_native.cc.o.d"
  "CMakeFiles/ot_otc.dir/network.cc.o"
  "CMakeFiles/ot_otc.dir/network.cc.o.d"
  "CMakeFiles/ot_otc.dir/sort.cc.o"
  "CMakeFiles/ot_otc.dir/sort.cc.o.d"
  "libot_otc.a"
  "libot_otc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ot_otc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libot_otc.a"
)

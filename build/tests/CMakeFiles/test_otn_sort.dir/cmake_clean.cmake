file(REMOVE_RECURSE
  "CMakeFiles/test_otn_sort.dir/test_otn_sort.cc.o"
  "CMakeFiles/test_otn_sort.dir/test_otn_sort.cc.o.d"
  "test_otn_sort"
  "test_otn_sort.pdb"
  "test_otn_sort[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_otn_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

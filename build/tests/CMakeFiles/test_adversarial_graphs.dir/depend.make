# Empty dependencies file for test_adversarial_graphs.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_adversarial_graphs.dir/test_adversarial_graphs.cc.o"
  "CMakeFiles/test_adversarial_graphs.dir/test_adversarial_graphs.cc.o.d"
  "test_adversarial_graphs"
  "test_adversarial_graphs.pdb"
  "test_adversarial_graphs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adversarial_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

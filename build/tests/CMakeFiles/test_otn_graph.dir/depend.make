# Empty dependencies file for test_otn_graph.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_otn_graph.dir/test_otn_graph.cc.o"
  "CMakeFiles/test_otn_graph.dir/test_otn_graph.cc.o.d"
  "test_otn_graph"
  "test_otn_graph.pdb"
  "test_otn_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_otn_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_hex_and_native_otc.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_hex_and_native_otc.dir/test_hex_and_native_otc.cc.o"
  "CMakeFiles/test_hex_and_native_otc.dir/test_hex_and_native_otc.cc.o.d"
  "test_hex_and_native_otc"
  "test_hex_and_native_otc.pdb"
  "test_hex_and_native_otc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hex_and_native_otc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

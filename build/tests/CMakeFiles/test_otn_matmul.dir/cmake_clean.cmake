file(REMOVE_RECURSE
  "CMakeFiles/test_otn_matmul.dir/test_otn_matmul.cc.o"
  "CMakeFiles/test_otn_matmul.dir/test_otn_matmul.cc.o.d"
  "test_otn_matmul"
  "test_otn_matmul.pdb"
  "test_otn_matmul[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_otn_matmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_otn_matmul.
# This may be replaced when dependencies are built.

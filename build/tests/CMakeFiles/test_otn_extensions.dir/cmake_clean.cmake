file(REMOVE_RECURSE
  "CMakeFiles/test_otn_extensions.dir/test_otn_extensions.cc.o"
  "CMakeFiles/test_otn_extensions.dir/test_otn_extensions.cc.o.d"
  "test_otn_extensions"
  "test_otn_extensions.pdb"
  "test_otn_extensions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_otn_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_otn_extensions.
# This may be replaced when dependencies are built.

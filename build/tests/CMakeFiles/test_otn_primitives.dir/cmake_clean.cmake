file(REMOVE_RECURSE
  "CMakeFiles/test_otn_primitives.dir/test_otn_primitives.cc.o"
  "CMakeFiles/test_otn_primitives.dir/test_otn_primitives.cc.o.d"
  "test_otn_primitives"
  "test_otn_primitives.pdb"
  "test_otn_primitives[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_otn_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

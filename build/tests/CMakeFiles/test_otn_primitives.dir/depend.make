# Empty dependencies file for test_otn_primitives.
# This may be replaced when dependencies are built.

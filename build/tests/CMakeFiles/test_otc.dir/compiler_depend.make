# Empty compiler generated dependencies file for test_otc.
# This may be replaced when dependencies are built.

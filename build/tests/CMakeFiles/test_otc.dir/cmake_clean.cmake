file(REMOVE_RECURSE
  "CMakeFiles/test_otc.dir/test_otc.cc.o"
  "CMakeFiles/test_otc.dir/test_otc.cc.o.d"
  "test_otc"
  "test_otc.pdb"
  "test_otc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_otc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

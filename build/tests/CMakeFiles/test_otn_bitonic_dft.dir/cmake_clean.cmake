file(REMOVE_RECURSE
  "CMakeFiles/test_otn_bitonic_dft.dir/test_otn_bitonic_dft.cc.o"
  "CMakeFiles/test_otn_bitonic_dft.dir/test_otn_bitonic_dft.cc.o.d"
  "test_otn_bitonic_dft"
  "test_otn_bitonic_dft.pdb"
  "test_otn_bitonic_dft[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_otn_bitonic_dft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

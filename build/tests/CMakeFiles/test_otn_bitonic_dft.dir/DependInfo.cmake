
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_otn_bitonic_dft.cc" "tests/CMakeFiles/test_otn_bitonic_dft.dir/test_otn_bitonic_dft.cc.o" "gcc" "tests/CMakeFiles/test_otn_bitonic_dft.dir/test_otn_bitonic_dft.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/otn/CMakeFiles/ot_otn.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ot_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/ot_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ot_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ot_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/vlsi/CMakeFiles/ot_vlsi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for test_otn_bitonic_dft.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_vlsi[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_bitserial[1]_include.cmake")
include("/root/repo/build/tests/test_layout[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_otn_primitives[1]_include.cmake")
include("/root/repo/build/tests/test_otn_sort[1]_include.cmake")
include("/root/repo/build/tests/test_otn_matmul[1]_include.cmake")
include("/root/repo/build/tests/test_otn_graph[1]_include.cmake")
include("/root/repo/build/tests/test_otn_bitonic_dft[1]_include.cmake")
include("/root/repo/build/tests/test_otc[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_otn_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_failure_injection[1]_include.cmake")
include("/root/repo/build/tests/test_shortest_paths[1]_include.cmake")
include("/root/repo/build/tests/test_hex_and_native_otc[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
include("/root/repo/build/tests/test_adversarial_graphs[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")

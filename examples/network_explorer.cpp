/**
 * @file
 * Network explorer: an interactive-style CLI that, for a given problem
 * size, prints every network's paper-formula area/time/AT^2 for each
 * problem, the crossover points between networks, and the layout
 * schematics — a guided tour of the paper's Section VII comparison.
 *
 * Run: ./build/examples/network_explorer [N] [--art]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "orthotree/orthotree.hh"

namespace {

using namespace ot;

void
printProblem(analysis::Problem problem, double n)
{
    const std::vector<analysis::Network> nets{
        analysis::Network::Mesh, analysis::Network::Psn,
        analysis::Network::Ccc, analysis::Network::Otn,
        analysis::Network::Otc};

    std::printf("\n%s at N = %.0f (Thompson's model, constants = 1):\n",
                analysis::toString(problem).c_str(), n);
    analysis::TextTable t({"network", "area", "time", "AT^2", "AT^2 rank"});

    // Rank networks by AT^2.
    std::vector<std::pair<double, analysis::Network>> ranked;
    for (auto net : nets)
        ranked.emplace_back(
            analysis::paperFormula(net, problem,
                                   vlsi::DelayModel::Logarithmic, n)
                .at2(),
            net);
    std::sort(ranked.begin(), ranked.end(),
              [](auto &a, auto &b) { return a.first < b.first; });

    for (auto net : nets) {
        auto a = analysis::paperFormula(net, problem,
                                        vlsi::DelayModel::Logarithmic, n);
        std::size_t rank = 0;
        for (std::size_t i = 0; i < ranked.size(); ++i)
            if (ranked[i].second == net)
                rank = i + 1;
        t.addRow({analysis::toString(net),
                  analysis::formatQuantity(a.area),
                  analysis::formatQuantity(a.time),
                  analysis::formatQuantity(a.at2()),
                  "#" + std::to_string(rank)});
    }
    std::printf("%s", t.str().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    double n = 1024;
    bool art = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--art") == 0)
            art = true;
        else
            n = std::strtod(argv[i], nullptr);
    }
    if (n < 4) {
        std::fprintf(stderr, "usage: %s [N >= 4] [--art]\n", argv[0]);
        return 1;
    }

    std::printf("orthotree network explorer — the Section VII "
                "comparison at your N\n");

    for (auto p : {analysis::Problem::Sorting, analysis::Problem::BoolMatMul,
                   analysis::Problem::ConnectedComponents,
                   analysis::Problem::Mst})
        printProblem(p, n);

    std::printf("\ncrossovers (smallest power-of-two N where the first "
                "network's AT^2 beats the second's):\n");
    struct Pair
    {
        analysis::Network a, b;
        analysis::Problem p;
    };
    const Pair pairs[] = {
        {analysis::Network::Otc, analysis::Network::Psn,
         analysis::Problem::ConnectedComponents},
        {analysis::Network::Otc, analysis::Network::Mesh,
         analysis::Problem::ConnectedComponents},
        {analysis::Network::Otc, analysis::Network::Ccc,
         analysis::Problem::BoolMatMul},
        {analysis::Network::Otn, analysis::Network::Psn,
         analysis::Problem::Sorting},
    };
    for (const auto &pr : pairs) {
        double c = analysis::at2Crossover(pr.a, pr.b, pr.p,
                                          vlsi::DelayModel::Logarithmic);
        if (c > 0)
            std::printf("  %-4s beats %-4s on %-30s from N = %.0f\n",
                        analysis::toString(pr.a).c_str(),
                        analysis::toString(pr.b).c_str(),
                        analysis::toString(pr.p).c_str(), c);
        else
            std::printf("  %-4s never beats %-4s on %s (up to 1e9)\n",
                        analysis::toString(pr.a).c_str(),
                        analysis::toString(pr.b).c_str(),
                        analysis::toString(pr.p).c_str());
    }

    if (art) {
        std::printf("\nFig. 1 — the (4 x 4)-OTN:\n%s\n",
                    layout::OtnLayout(4, 4).asciiArt().c_str());
        layout::OtcLayout otc(4, 4, 8);
        std::printf("Fig. 2 — one OTC cycle:\n%s\n",
                    otc.cycleAsciiArt().c_str());
        std::printf("Fig. 3 — the (4 x 4)-OTC:\n%s\n",
                    otc.asciiArt().c_str());
    } else {
        std::printf("\n(add --art for the Fig. 1-3 layout schematics)\n");
    }
    return 0;
}

/**
 * @file
 * Streaming matrix workloads on the OTN — the Section III-A pipeline.
 *
 * A signal-processing flavoured scenario: a stream of input vectors is
 * multiplied by a fixed weight matrix (a linear layer / filter bank),
 * one vector entering the machine every O(log N) time units.  The
 * example shows the pipeline's fill latency vs its steady-state beat,
 * then runs the batched form as a full pipelined matrix product, and
 * finally a Boolean reachability step (one squaring of an adjacency
 * matrix) on the same machine.
 *
 * Run: ./build/examples/matrix_pipeline [n]
 */

#include <cstdio>
#include <cstdlib>

#include "orthotree/orthotree.hh"

int
main(int argc, char **argv)
{
    using namespace ot;

    std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 16;
    if (n < 2) {
        std::fprintf(stderr, "usage: %s [n >= 2]\n", argv[0]);
        return 1;
    }

    sim::Rng rng(7);

    // A fixed weight matrix resident in the base (b(k,j) in BP(k,j)).
    linalg::IntMatrix weights(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            weights(i, j) = rng.uniform(0, 9);

    unsigned bits = vlsi::logCeilAtLeast1(n * 100 + 1) + 2;
    vlsi::CostModel cost(vlsi::DelayModel::Logarithmic,
                         vlsi::WordFormat(bits));
    otn::OrthogonalTreesNetwork net(n, cost);
    net.loadBase(otn::Reg::B, weights);

    // --- One vector through the machine ------------------------------
    std::vector<std::uint64_t> x(n);
    for (auto &v : x)
        v = rng.uniform(0, 9);
    auto t0 = net.now();
    auto y = otn::vecMatMulOtn(net, x);
    std::printf("vector-matrix product (Section III-A):\n");
    std::printf("  y[0..3] = %lu %lu %lu %lu ...\n",
                static_cast<unsigned long>(y[0]),
                static_cast<unsigned long>(y[1 % n]),
                static_cast<unsigned long>(y[2 % n]),
                static_cast<unsigned long>(y[3 % n]));
    std::printf("  latency = %lu model units (paper: O(log^2 N))\n",
                static_cast<unsigned long>(net.now() - t0));
    if (y != linalg::vecMatMul(x, weights)) {
        std::fprintf(stderr, "MISMATCH vs reference!\n");
        return 1;
    }

    // --- A batch as a pipelined matrix product ----------------------
    linalg::IntMatrix batch(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            batch(i, j) = rng.uniform(0, 9);

    otn::OrthogonalTreesNetwork net2(n, cost);
    auto r = otn::matMulPipelined(net2, batch, weights);
    if (r.product != linalg::matMul(batch, weights)) {
        std::fprintf(stderr, "MISMATCH vs reference!\n");
        return 1;
    }
    std::printf("\npipelined batch of %zu vectors (\"pipedo\"):\n", n);
    std::printf("  first result row after : %lu units\n",
                static_cast<unsigned long>(r.firstRowLatency));
    std::printf("  then one row every     : %lu units (O(log N))\n",
                static_cast<unsigned long>(r.rowInterval));
    std::printf("  whole batch            : %lu units "
                "(vs ~%zu x %lu = %lu unpipelined)\n",
                static_cast<unsigned long>(r.time), n,
                static_cast<unsigned long>(r.firstRowLatency),
                static_cast<unsigned long>(n * r.firstRowLatency));

    // --- Boolean reachability step on the same fabric ----------------
    linalg::BoolMatrix adj(n, n, 0);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            adj(i, j) = (i != j && rng.bernoulli(0.2)) ? 1 : 0;
    otn::OrthogonalTreesNetwork net3(n, cost);
    auto r2 = otn::boolMatMulPipelined(net3, adj, adj);
    std::printf("\nBoolean squaring (2-hop reachability):\n");
    std::printf("  time = %lu units — unit pipeline separation, so "
                "cheaper than the integer product's %lu\n",
                static_cast<unsigned long>(r2.time),
                static_cast<unsigned long>(r.time));
    auto expect = linalg::boolMatMul(adj, adj);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            if ((r2.product(i, j) != 0) != (expect(i, j) != 0)) {
                std::fprintf(stderr, "MISMATCH vs reference!\n");
                return 1;
            }
    std::printf("  verified against the sequential reference.\n");
    return 0;
}

/**
 * @file
 * Graph analytics on the OTC — the paper's headline application.
 *
 * The paper's strongest claims (abstract; Tables III) are for graph
 * problems on the orthogonal tree cycles: connected components in
 * O(log^4 N) with AT^2 = O(N^2 log^8 N) and MST with O(N^2 log^9 N).
 * This example runs both on a synthetic "social network": a few dense
 * communities plus random weighted links, verifying against the
 * sequential references and printing the cost ledger.
 *
 * Run: ./build/examples/graph_analytics [vertices] [communities]
 */

#include <cstdio>
#include <cstdlib>

#include "orthotree/orthotree.hh"

int
main(int argc, char **argv)
{
    using namespace ot;

    std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 48;
    std::size_t communities =
        argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4;
    if (n < 4 || communities < 1 || communities > n) {
        std::fprintf(stderr, "usage: %s [vertices >= 4] [communities]\n",
                     argv[0]);
        return 1;
    }

    sim::Rng rng(2026);

    // --- Connected components on a community graph ------------------
    auto g = graph::plantedComponents(n, communities, /*extra=*/3, rng);
    std::printf("graph: %zu vertices, %zu edges, %zu planted "
                "communities\n",
                g.vertices(), g.edgeCount(), communities);

    auto cost = defaultCostModel(n);
    auto cc = otc::connectedComponentsOtc(g, cost);

    std::printf("\nconnected components on the OTC:\n");
    std::printf("  components found : %zu\n", cc.result.componentCount);
    std::printf("  model time       : %lu units (paper: O(log^4 N))\n",
                static_cast<unsigned long>(cc.result.time));
    std::printf("  chip area        : %lu lambda^2 (paper: O(N^2))\n",
                static_cast<unsigned long>(cc.chip.area()));

    auto expect = graph::connectedComponents(g);
    std::printf("  matches union-find reference: %s\n",
                cc.result.labels == expect ? "yes" : "NO");

    std::printf("  membership:");
    for (std::size_t v = 0; v < std::min<std::size_t>(n, 16); ++v)
        std::printf(" %zu->%zu", v, cc.result.labels[v]);
    if (n > 16)
        std::printf(" ...");
    std::printf("\n");

    // --- MST on a weighted connected overlay -------------------------
    auto wg = graph::randomWeightedConnected(n, 2 * n, rng);
    vlsi::CostModel mst_cost(vlsi::DelayModel::Logarithmic,
                             otn::mstWordFormat(n, n * n));
    auto mst = otc::mstOtc(wg, mst_cost);

    std::printf("\nminimum spanning tree on the OTC (Boruvka):\n");
    std::printf("  edges       : %zu (expect %zu)\n", mst.result.edges.size(),
                n - 1);
    std::printf("  total weight: %lu\n",
                static_cast<unsigned long>(mst.result.totalWeight));
    std::printf("  model time  : %lu units (paper: O(log^4 N))\n",
                static_cast<unsigned long>(mst.result.time));
    std::printf("  chip area   : %lu lambda^2 (paper: O(N^2 log N))\n",
                static_cast<unsigned long>(mst.chip.area()));

    auto kruskal = graph::kruskalMsf(wg);
    std::printf("  matches Kruskal reference: %s\n",
                mst.result.edges == kruskal ? "yes" : "NO");
    std::printf("  first edges:");
    for (std::size_t e = 0; e < std::min<std::size_t>(5,
                                                      mst.result.edges.size());
         ++e)
        std::printf(" (%zu-%zu w=%lu)", mst.result.edges[e].u,
                    mst.result.edges[e].v,
                    static_cast<unsigned long>(mst.result.edges[e].w));
    std::printf(" ...\n");

    // --- Why the OTC: the AT^2 comparison the paper makes -----------
    double at2_otc = static_cast<double>(cc.chip.area()) *
                     static_cast<double>(cc.result.time) *
                     static_cast<double>(cc.result.time);
    auto mesh_row = analysis::paperFormula(
        analysis::Network::Mesh, analysis::Problem::ConnectedComponents,
        vlsi::DelayModel::Logarithmic, static_cast<double>(n));
    std::printf("\nAT^2 (connected components): OTC measured %.3g; the "
                "mesh/PSN/CCC classes scale as ~N^4 (paper Table III)\n",
                at2_otc);
    std::printf("asymptotic mesh AT^2 at this N (constants = 1): %.3g\n",
                mesh_row.at2());
    return 0;
}

/**
 * @file
 * Arithmetic on the orthogonal trees: integer multiplication (the
 * Capello & Steiglitz application the paper's introduction cites) and
 * the Section IV DFT, both on the same fabric.
 *
 * Run: ./build/examples/arithmetic_dft
 */

#include <cstdio>

#include "orthotree/orthotree.hh"

int
main()
{
    using namespace ot;

    // --- Integer multiplication: convolution + carries ---------------
    std::printf("integer multiplication on a (2w x 2w)-OTN "
                "(orthogonal forest, [8]):\n");
    struct Case
    {
        std::uint64_t a, b;
        unsigned bits;
    };
    const Case cases[] = {
        {12, 10, 4},
        {201, 174, 8},
        {60001, 54321, 16},
        {(1u << 24) - 7, (1u << 24) - 11, 24},
    };
    for (const auto &c : cases) {
        auto r = otn::integerMultiplyOtn(c.a, c.b, c.bits);
        std::printf("  %10lu * %10lu = %20lu  (%2u-bit, model time "
                    "%6lu, %u carry passes) %s\n",
                    static_cast<unsigned long>(c.a),
                    static_cast<unsigned long>(c.b),
                    static_cast<unsigned long>(r.product), c.bits,
                    static_cast<unsigned long>(r.time), r.carryPasses,
                    r.product == c.a * c.b ? "ok" : "WRONG");
    }
    std::printf("  time grows polylogarithmically in the operand "
                "width.\n");

    // --- DFT: spectral analysis of a noisy tone ----------------------
    std::printf("\n256-point DFT on a (16 x 16)-OTN (Section IV-B):\n");
    const std::size_t k = 16, n = k * k;
    sim::Rng rng(11);
    std::vector<linalg::Complex> x(n);
    const double tone_bin = 12.0;
    for (std::size_t t = 0; t < n; ++t) {
        double phase = 2.0 * 3.14159265358979 * tone_bin *
                       static_cast<double>(t) / static_cast<double>(n);
        x[t] = std::cos(phase) + 0.1 * (rng.uniformReal() - 0.5);
    }

    auto cost = defaultCostModel(n);
    otn::OrthogonalTreesNetwork net(k, cost);
    auto r = otn::dftOtn(net, x);

    // Find the loudest positive-frequency bin.
    std::size_t best = 1;
    for (std::size_t b = 1; b < n / 2; ++b)
        if (std::abs(r.spectrum[b]) > std::abs(r.spectrum[best]))
            best = b;
    std::printf("  loudest bin: %zu (expected %.0f), |X| = %.1f\n", best,
                tone_bin, std::abs(r.spectrum[best]));
    std::printf("  model time: %lu units over %u butterfly stages\n",
                static_cast<unsigned long>(r.time), r.stages);
    double err =
        linalg::maxAbsDiff(r.spectrum, linalg::dftNaive(x));
    std::printf("  max deviation from the naive DFT: %.2e\n", err);

    // --- The machine's ledger ----------------------------------------
    std::printf("\nwhere the time went:\n");
    for (const auto &[phase, t] : net.acct().phaseTimes())
        std::printf("  %-12s %8lu units\n", phase.c_str(),
                    static_cast<unsigned long>(t));
    return best == static_cast<std::size_t>(tone_bin) && err < 1e-6 ? 0
                                                                    : 1;
}

/**
 * @file
 * Quickstart: build an orthogonal trees network, sort numbers on it,
 * and read off the quantities the paper's tables are made of — model
 * time, chip area and AT^2 — under two VLSI delay models.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>
#include <iostream>

#include "orthotree/orthotree.hh"

int
main()
{
    using namespace ot;

    // A 16-element problem on a (16 x 16)-OTN under Thompson's
    // logarithmic wire-delay model (the paper's default).
    const std::size_t n = 16;
    auto cost = defaultCostModel(n);
    otn::OrthogonalTreesNetwork net(n, cost);

    std::vector<std::uint64_t> values{42, 7,  19, 3,  55, 21, 0,  99,
                                      14, 63, 8,  77, 30, 5,  91, 11};

    // SORT-OTN (Section II-B of the paper): numbers enter at the row
    // roots, ranks are computed with tree reductions, and the sorted
    // sequence appears at the column roots.
    auto result = otn::sortOtn(net, values);

    std::printf("sorted:");
    for (auto v : result.sorted)
        std::printf(" %lu", static_cast<unsigned long>(v));
    std::printf("\n");

    // The machine tracked the VLSI cost of doing that:
    auto metrics = net.chipLayout().metrics();
    std::printf("model time   : %lu units (paper: O(log^2 N))\n",
                static_cast<unsigned long>(result.time));
    std::printf("chip area    : %lu lambda^2 (paper: O(N^2 log^2 N))\n",
                static_cast<unsigned long>(metrics.area()));
    std::printf("processors   : %lu (N^2 BPs + 2N(N-1) IPs)\n",
                static_cast<unsigned long>(metrics.processors));
    std::printf("longest wire : %lu lambda\n",
                static_cast<unsigned long>(metrics.longestWire));
    double at2 = static_cast<double>(metrics.area()) *
                 static_cast<double>(result.time) *
                 static_cast<double>(result.time);
    std::printf("area * time^2: %.3g\n", at2);

    // The same sort under the constant-delay model (Section VII-D):
    // every tree traversal drops from O(log^2 N) to O(log N).
    otn::OrthogonalTreesNetwork fast(
        n, defaultCostModel(n, vlsi::DelayModel::Constant));
    auto result2 = otn::sortOtn(fast, values);
    std::printf("\nconstant-delay model time: %lu units (vs %lu)\n",
                static_cast<unsigned long>(result2.time),
                static_cast<unsigned long>(result.time));

    // And on the area-efficient orthogonal tree cycles (Section V):
    // same asymptotic time, Theta(log^2 N) less silicon.
    auto otc_result = otc::sortOtc(values, cost);
    std::printf("OTC model time: %lu units; OTC sorts the same values: "
                "%s\n",
                static_cast<unsigned long>(otc_result.time),
                otc_result.sorted == result.sorted ? "yes" : "NO");

    // What the machine did, in counters:
    std::printf("\nprimitive counts:\n");
    net.stats().dump(std::cout, "  ");
    return 0;
}

/**
 * @file
 * otsim — command-line driver for the orthotree simulators.
 *
 * Usage:
 *   otsim sort    --net otn|otc|mesh|psn|ccc|tree|... [--n N] [--seed S]
 *                 [--model log|const|linear] [--scaled]
 *   otsim cc      --net otn|otc|mesh|... [--n N] [--p PROB] [--seed S]
 *   otsim mst     --net otn|otc|... [--n N] [--seed S]
 *   otsim matmul  --net otn|otc|mesh|hex|mot3d|... [--n N] [--seed S]
 *   otsim sssp    [--net otn|...] [--n N] [--seed S]
 *   otsim layout  --net otn|otc [--n N] [--art]
 *   otsim tables  [--n N]
 *   otsim topo    --list
 *   otsim trace   [sort|cc|mst|matmul|sssp] [--net otn|otc] [--n N]
 *                 [--trace-out FILE] [--trace-summary FILE]
 *   otsim batch   [--demo] [--spec FILE.json]
 *                 [--inst algo:net:n:model[:scaled][:seed=K]]...
 *                 [--json FILE] [--trace-out FILE]
 *   otsim simd
 *
 * Every run prints the result summary, the machine's model time, chip
 * area and AT^2, and verifies against the sequential reference.
 *
 * `batch` executes a workload of heterogeneous instances on a machine
 * farm (one simulated machine per distinct shape, cached and reused;
 * see src/workload/engine.hh), printing a per-instance table and the
 * aggregate model-time throughput.  The report is deterministic:
 * byte-identical at every OT_HOST_THREADS setting.
 *
 * `--net` accepts any topology of the topo registry (`otsim topo
 * --list`): names with a native runner use it, everything else runs
 * the generic primitive-based algorithms of topo::Machine.
 *
 * Tracing: `--trace-out FILE` on sort/cc/mst/matmul/sssp records every
 * primitive and clock tick in model time and writes a Chrome
 * trace-event JSON loadable in ui.perfetto.dev; `--trace-summary FILE`
 * writes the analyzer's per-phase/per-tree breakdown as JSON.  The
 * `trace` subcommand runs a workload (default sort) and prints that
 * breakdown as text.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "orthotree/orthotree.hh"
#include "trace/analysis.hh"
#include "trace/export.hh"
#include "trace/tracer.hh"
#include "vlsi/bitmath.hh"
#include "vlsi/delay.hh"

namespace {

using namespace ot;

struct Options
{
    std::string command;
    std::string net = "otn";
    std::string svg_path;
    std::string trace_out;
    std::string trace_summary;
    std::string spec_path;           // batch: JSON workload file
    std::string json_out;            // batch: report JSON output
    std::vector<std::string> insts;  // batch: CLI instance tokens
    bool demo = false;               // batch: the 12-instance demo mix
    std::string scn_path;            // scenario: .scn spec file
    std::string scheduler_override;  // scenario: --scheduler
    std::string compare;             // scenario: comma list of policies
    std::size_t n = 64;
    double p = 0.1;
    std::uint64_t seed = 1;
    vlsi::DelayModel model = vlsi::DelayModel::Logarithmic;
    bool scaled = false;
    bool art = false;
    bool list = false;       // the `topo` subcommand: --list
    bool trace_text = false; // the `trace` subcommand: print the summary

    bool
    tracing() const
    {
        return trace_text || !trace_out.empty() || !trace_summary.empty();
    }
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s <sort|cc|mst|matmul|sssp|layout|tables|trace|batch"
        "|scenario|topo|simd> [options]\n"
        "  --net <name>   any registered topology (otsim topo --list),\n"
        "                 plus mot3d for the 3-D mesh-of-trees matmul\n"
        "  --n <size>   --seed <seed>   --p <edge prob>\n"
        "  --model <log|const|linear>   --scaled   --art   --svg <file>\n"
        "  --trace-out <file>      write a Perfetto (Chrome trace) JSON\n"
        "  --trace-summary <file>  write the trace analyzer JSON\n"
        "  trace [sort|cc|mst|matmul|sssp]  run traced, print breakdown\n"
        "  batch --demo | --spec <file.json> |\n"
        "        --inst algo:net:n:model[:scaled][:seed=K] (repeatable)\n"
        "        [--json <file>]  run a workload batch on the machine "
        "farm\n"
        "  topo --list      list the registered topologies\n"
        "  scenario --file <file.scn> [--scheduler fifo|sjf|fair|edf]\n"
        "        [--compare fifo,sjf,...] [--json <file>]  run a "
        "traffic\n"
        "        scenario (arrival process + scheduler + SLO report)\n"
        "  simd  print the dispatched SIMD backend (OT_SIMD overrides)\n",
        argv0);
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    if (argc < 2)
        usage(argv[0]);
    Options opt;
    opt.command = argv[1];
    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--net") {
            opt.net = next();
        } else if (arg == "--n" || arg == "-n") {
            opt.n = std::strtoul(next(), nullptr, 10);
        } else if (arg == "--trace-out") {
            opt.trace_out = next();
        } else if (arg == "--trace-summary") {
            opt.trace_summary = next();
        } else if (arg == "--spec") {
            opt.spec_path = next();
        } else if (arg == "--json") {
            opt.json_out = next();
        } else if (arg == "--inst") {
            opt.insts.push_back(next());
        } else if (arg == "--demo") {
            opt.demo = true;
        } else if (arg == "--file") {
            opt.scn_path = next();
        } else if (arg == "--scheduler") {
            opt.scheduler_override = next();
        } else if (arg == "--compare") {
            opt.compare = next();
        } else if (opt.command == "trace" && !arg.empty() &&
                   arg[0] != '-') {
            // `otsim trace <workload>` — the workload rides in
            // `command` once parsing is done.
            opt.command = arg;
            opt.trace_text = true;
        } else if (arg == "--seed") {
            opt.seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--p") {
            opt.p = std::strtod(next(), nullptr);
        } else if (arg == "--model") {
            std::string m = next();
            if (m == "log")
                opt.model = vlsi::DelayModel::Logarithmic;
            else if (m == "const")
                opt.model = vlsi::DelayModel::Constant;
            else if (m == "linear")
                opt.model = vlsi::DelayModel::Linear;
            else
                usage(argv[0]);
        } else if (arg == "--scaled") {
            opt.scaled = true;
        } else if (arg == "--art") {
            opt.art = true;
        } else if (arg == "--list") {
            opt.list = true;
        } else if (arg == "--svg") {
            opt.svg_path = next();
        } else {
            usage(argv[0]);
        }
    }
    if (opt.command == "trace") {
        opt.command = "sort";
        opt.trace_text = true;
    }
    if (opt.n < 2 || opt.n > (1u << 14)) {
        std::fprintf(stderr, "otsim: --n must be in [2, 16384]\n");
        std::exit(2);
    }
    return opt;
}

/**
 * Tracing glue for the runners: one Tracer attached to the network
 * under test, flushed to the requested outputs after the run.
 */
class TraceSession
{
  public:
    explicit TraceSession(const Options &opt) : _opt(opt)
    {
        _tracer.setEnabled(opt.tracing());
    }

    bool active() const { return _tracer.enabled(); }

    template <typename Net>
    void
    attach(Net &net)
    {
        if (active())
            net.setTracer(&_tracer);
    }

    /** Write/print the requested outputs.  Returns 0 or an exit code. */
    int
    finish(sim::StatSet &stats)
    {
        if (!active())
            return 0;
        auto summary = trace::analyze(_tracer);
        if (!_opt.trace_out.empty()) {
            std::ofstream f(_opt.trace_out);
            if (!f) {
                std::fprintf(stderr, "otsim: cannot write %s\n",
                             _opt.trace_out.c_str());
                return 1;
            }
            trace::writeChromeTrace(f, _tracer, stats.toJson());
            std::printf("wrote %s (%zu events, %llu dropped) — load in "
                        "ui.perfetto.dev\n",
                        _opt.trace_out.c_str(), _tracer.events().size(),
                        static_cast<unsigned long long>(_tracer.dropped()));
        }
        if (!_opt.trace_summary.empty()) {
            std::ofstream f(_opt.trace_summary);
            if (!f) {
                std::fprintf(stderr, "otsim: cannot write %s\n",
                             _opt.trace_summary.c_str());
                return 1;
            }
            f << summary.toJson();
            std::printf("wrote %s\n", _opt.trace_summary.c_str());
        }
        if (_opt.trace_text)
            summary.writeText(std::cout);
        return 0;
    }

    /** Error exit for engines without tracer hooks. */
    static int
    unsupported(const std::string &net)
    {
        std::fprintf(stderr,
                     "otsim: tracing is not supported for --net %s "
                     "(use otn or otc)\n",
                     net.c_str());
        return 2;
    }

  private:
    const Options &_opt;
    trace::Tracer _tracer;
};

void
printCost(const char *what, vlsi::ModelTime time, double area)
{
    double t = static_cast<double>(time);
    std::printf("%s: model time %s, area %s lambda^2, AT^2 %s\n", what,
                analysis::formatQuantity(t).c_str(),
                analysis::formatQuantity(area).c_str(),
                analysis::formatQuantity(area * t * t).c_str());
}

int
runSort(const Options &opt)
{
    auto v = [&] {
        sim::Rng rng(opt.seed);
        std::vector<std::uint64_t> out(opt.n);
        for (auto &x : out)
            x = rng.uniform(0, opt.n - 1);
        return out;
    }();
    auto expect = v;
    std::sort(expect.begin(), expect.end());
    vlsi::CostModel cost(opt.model, vlsi::WordFormat::forProblemSize(opt.n),
                         opt.scaled);

    TraceSession ts(opt);
    if (ts.active() && opt.net != "otn" && opt.net != "otc")
        return TraceSession::unsupported(opt.net);

    std::vector<std::uint64_t> got;
    vlsi::ModelTime time = 0;
    double area = 0;
    if (opt.net == "otn") {
        otn::OrthogonalTreesNetwork net(opt.n, cost);
        ts.attach(net);
        auto r = otn::sortOtn(net, v);
        got = r.sorted;
        time = r.time;
        area = static_cast<double>(net.chipLayout().metrics().area());
        if (int rc = ts.finish(net.stats()))
            return rc;
    } else if (opt.net == "otc") {
        unsigned l = vlsi::logCeilAtLeast1(opt.n);
        otc::OtcNetwork net(opt.n / l, l, cost);
        ts.attach(net);
        auto r = otc::sortOtc(net, v);
        got = r.sorted;
        time = r.time;
        area = static_cast<double>(net.chipLayout().metrics().area());
        if (int rc = ts.finish(net.stats()))
            return rc;
    } else if (opt.net == "mesh") {
        baselines::MeshMachine net(opt.n, cost);
        auto r = baselines::meshSort(net, v);
        got = r.sorted;
        time = r.time;
        area = static_cast<double>(net.chipLayout().metrics().area());
    } else if (opt.net == "psn") {
        baselines::PsnMachine net(opt.n, cost);
        auto r = baselines::psnSort(net, v);
        got = r.sorted;
        time = r.time;
        area = static_cast<double>(net.chipLayout().metrics().area());
    } else if (opt.net == "ccc") {
        baselines::CccMachine net(opt.n, cost);
        auto r = baselines::cccSort(net, v);
        got = r.sorted;
        time = r.time;
        area = static_cast<double>(net.chipLayout().metrics().area());
    } else if (opt.net == "tree") {
        baselines::TreeMachine net(opt.n, cost);
        got = net.extractMinSort(v);
        time = net.now();
        area = static_cast<double>(net.chipArea());
    } else if (topo::isNetName(opt.net)) {
        auto spec = topo::resolveSpec(opt.net, topo::Algo::Sort, opt.n,
                                      opt.model, opt.scaled);
        auto m = topo::registry().build(spec);
        auto r = m->runSort(v);
        got = r.sorted;
        time = r.time;
        area = static_cast<double>(r.area ? r.area : m->area());
    } else {
        std::fprintf(stderr, "otsim: unknown sorter '%s' (%s)\n",
                     opt.net.c_str(), topo::netNamesSummary().c_str());
        return 2;
    }

    if (got != expect) {
        std::fprintf(stderr, "otsim: SORT MISMATCH\n");
        return 1;
    }
    std::printf("sorted %zu values on %s under %s%s — verified\n", opt.n,
                opt.net.c_str(), vlsi::toString(opt.model).c_str(),
                opt.scaled ? " (scaled trees)" : "");
    printCost("sort", time, area);
    return 0;
}

int
runCc(const Options &opt)
{
    sim::Rng rng(opt.seed);
    auto g = graph::randomGnp(opt.n, opt.p, rng);
    auto expect = graph::connectedComponents(g);
    auto cost = defaultCostModel(opt.n, opt.model, opt.scaled);

    TraceSession ts(opt);
    if (ts.active() && opt.net != "otn")
        return TraceSession::unsupported(opt.net);

    std::vector<std::size_t> got;
    vlsi::ModelTime time = 0;
    double area = 0;
    std::size_t count = 0;
    if (opt.net == "otn") {
        otn::OrthogonalTreesNetwork net(opt.n, cost);
        ts.attach(net);
        auto r = otn::connectedComponentsOtn(net, g);
        got = r.labels;
        count = r.componentCount;
        time = r.time;
        area = static_cast<double>(net.chipLayout().metrics().area());
        if (int rc = ts.finish(net.stats()))
            return rc;
    } else if (opt.net == "otc") {
        auto r = otc::connectedComponentsOtc(g, cost);
        got = r.result.labels;
        count = r.result.componentCount;
        time = r.result.time;
        area = static_cast<double>(r.chip.area());
    } else if (opt.net == "mesh") {
        baselines::MeshMachine net(opt.n * opt.n, cost);
        auto r = baselines::meshConnectedComponents(net, g);
        got = r.labels;
        count = r.componentCount;
        time = r.time;
        area = static_cast<double>(net.chipLayout().metrics().area());
    } else if (topo::isNetName(opt.net)) {
        auto spec = topo::resolveSpec(opt.net,
                                      topo::Algo::ConnectedComponents,
                                      opt.n, opt.model, opt.scaled);
        auto m = topo::registry().build(spec);
        auto r = m->runConnectedComponents(g);
        got = r.labels;
        for (std::size_t v = 0; v < got.size(); ++v)
            count += got[v] == v ? 1 : 0;
        time = r.time;
        area = static_cast<double>(r.area ? r.area : m->area());
    } else {
        std::fprintf(stderr, "otsim: unknown cc engine '%s' (%s)\n",
                     opt.net.c_str(), topo::netNamesSummary().c_str());
        return 2;
    }

    if (got != expect) {
        std::fprintf(stderr, "otsim: CC MISMATCH\n");
        return 1;
    }
    std::printf("G(%zu, %.3f): %zu edges, %zu components on %s — "
                "verified against union-find\n",
                opt.n, opt.p, g.edgeCount(), count, opt.net.c_str());
    printCost("cc", time, area);
    return 0;
}

int
runMst(const Options &opt)
{
    sim::Rng rng(opt.seed);
    auto g = graph::randomWeightedConnected(opt.n, 2 * opt.n, rng);
    auto expect = graph::kruskalMsf(g);
    vlsi::CostModel cost(opt.model,
                         otn::mstWordFormat(opt.n, opt.n * opt.n),
                         opt.scaled);

    TraceSession ts(opt);
    if (ts.active() && opt.net != "otn")
        return TraceSession::unsupported(opt.net);

    otn::MstResult r;
    double area = 0;
    if (opt.net == "otn") {
        otn::OrthogonalTreesNetwork net(opt.n, cost);
        ts.attach(net);
        r = otn::mstOtn(net, g);
        area = static_cast<double>(net.chipLayout().metrics().area());
        if (int rc = ts.finish(net.stats()))
            return rc;
    } else if (opt.net == "otc") {
        auto rr = otc::mstOtc(g, cost);
        r = rr.result;
        area = static_cast<double>(rr.chip.area());
    } else if (topo::isNetName(opt.net)) {
        auto spec = topo::resolveSpec(opt.net, topo::Algo::Mst, opt.n,
                                      opt.model, opt.scaled);
        auto m = topo::registry().build(spec);
        auto rr = m->runMst(g);
        r.edges = rr.edges;
        r.time = rr.time;
        for (const auto &e : r.edges)
            r.totalWeight += e.w;
        area = static_cast<double>(rr.area ? rr.area : m->area());
    } else {
        std::fprintf(stderr, "otsim: unknown mst engine '%s' (%s)\n",
                     opt.net.c_str(), topo::netNamesSummary().c_str());
        return 2;
    }

    if (r.edges != expect) {
        std::fprintf(stderr, "otsim: MST MISMATCH\n");
        return 1;
    }
    std::printf("MST of %zu vertices: %zu edges, total weight %lu on %s "
                "— matches Kruskal\n",
                opt.n, r.edges.size(),
                static_cast<unsigned long>(r.totalWeight),
                opt.net.c_str());
    printCost("mst", r.time, area);
    return 0;
}

int
runMatMul(const Options &opt)
{
    sim::Rng rng(opt.seed);
    linalg::IntMatrix a(opt.n, opt.n), b(opt.n, opt.n);
    for (std::size_t i = 0; i < opt.n; ++i)
        for (std::size_t j = 0; j < opt.n; ++j) {
            a(i, j) = rng.uniform(0, 9);
            b(i, j) = rng.uniform(0, 9);
        }
    auto expect = linalg::matMul(a, b);
    unsigned bits = vlsi::logCeilAtLeast1(opt.n * 81 + 1) + 2;
    vlsi::CostModel cost(opt.model, vlsi::WordFormat(bits), opt.scaled);

    TraceSession ts(opt);
    if (ts.active() && opt.net != "otn")
        return TraceSession::unsupported(opt.net);

    linalg::IntMatrix got;
    vlsi::ModelTime time = 0;
    double area = 0;
    if (opt.net == "otn") {
        otn::OrthogonalTreesNetwork net(opt.n, cost);
        ts.attach(net);
        auto r = otn::matMulPipelined(net, a, b);
        got = r.product;
        time = r.time;
        area = static_cast<double>(net.chipLayout().metrics().area());
        if (int rc = ts.finish(net.stats()))
            return rc;
    } else if (opt.net == "otc") {
        auto r = otc::matMulOtc(a, b, cost);
        got = r.result.product;
        time = r.result.time;
        area = static_cast<double>(r.chip.area());
    } else if (opt.net == "mesh") {
        baselines::MeshMachine net(opt.n * opt.n, cost);
        auto r = baselines::meshMatMul(net, a, b);
        got = r.product;
        time = r.time;
        area = static_cast<double>(net.chipLayout().metrics().area());
    } else if (opt.net == "hex") {
        baselines::HexArray hex(opt.n, cost);
        auto t0 = hex.now();
        got = hex.matMul(a, b);
        time = hex.now() - t0;
        area = static_cast<double>(hex.chipArea());
    } else if (opt.net == "mot3d") {
        otn::MeshOfTrees3d mot(opt.n, cost);
        auto r = mot.matMul(a, b);
        got = r.product;
        time = r.time;
        area = static_cast<double>(mot.chipArea());
    } else if (topo::isNetName(opt.net)) {
        auto spec = topo::resolveSpec(opt.net, topo::Algo::MatMul, opt.n,
                                      opt.model, opt.scaled);
        auto m = topo::registry().build(spec);
        auto r = m->runMatMul(a, b);
        got = r.product;
        time = r.time;
        area = static_cast<double>(r.area ? r.area : m->area());
    } else {
        std::fprintf(stderr, "otsim: unknown matmul engine '%s' (%s)\n",
                     opt.net.c_str(), topo::netNamesSummary().c_str());
        return 2;
    }

    if (got != expect) {
        std::fprintf(stderr, "otsim: MATMUL MISMATCH\n");
        return 1;
    }
    std::printf("%zux%zu product on %s — verified\n", opt.n, opt.n,
                opt.net.c_str());
    printCost("matmul", time, area);
    return 0;
}

int
runSssp(const Options &opt)
{
    sim::Rng rng(opt.seed);
    auto g = graph::randomWeightedConnected(opt.n, 2 * opt.n, rng);
    vlsi::CostModel cost(opt.model,
                         otn::pathWordFormat(opt.n, opt.n * opt.n),
                         opt.scaled);
    TraceSession ts(opt);
    if (ts.active() && opt.net != "otn")
        return TraceSession::unsupported(opt.net);
    std::size_t src = rng.uniform(0, opt.n - 1);

    if (opt.net == "otn") {
        otn::OrthogonalTreesNetwork net(opt.n, cost);
        ts.attach(net);
        auto r = otn::ssspOtn(net, g, src);
        if (int rc = ts.finish(net.stats()))
            return rc;
        if (r.dist != graph::dijkstra(g, src)) {
            std::fprintf(stderr, "otsim: SSSP MISMATCH\n");
            return 1;
        }
        std::printf("SSSP from %zu over %zu vertices in %u rounds — "
                    "matches Dijkstra\n",
                    src, opt.n, r.rounds);
        printCost("sssp", r.time,
                  static_cast<double>(net.chipLayout().metrics().area()));
        return 0;
    }
    if (!topo::isNetName(opt.net)) {
        std::fprintf(stderr, "otsim: unknown sssp engine '%s' (%s)\n",
                     opt.net.c_str(), topo::netNamesSummary().c_str());
        return 2;
    }
    auto spec = topo::resolveSpec(opt.net, topo::Algo::ShortestPaths,
                                  opt.n, opt.model, opt.scaled);
    auto m = topo::registry().build(spec);
    auto r = m->runShortestPaths(g, src);
    if (r.dist != graph::dijkstra(g, src)) {
        std::fprintf(stderr, "otsim: SSSP MISMATCH\n");
        return 1;
    }
    std::printf("SSSP from %zu over %zu vertices on %s — matches "
                "Dijkstra\n",
                src, opt.n, opt.net.c_str());
    printCost("sssp", r.time,
              static_cast<double>(r.area ? r.area : m->area()));
    return 0;
}

int
runBatch(const Options &opt)
{
    workload::WorkloadSpec spec;
    if (opt.demo)
        spec = workload::demoWorkload();
    if (!opt.spec_path.empty()) {
        std::ifstream f(opt.spec_path);
        if (!f) {
            std::fprintf(stderr, "otsim: cannot read %s\n",
                         opt.spec_path.c_str());
            return 1;
        }
        std::ostringstream text;
        text << f.rdbuf();
        workload::WorkloadSpec parsed;
        std::string err;
        if (!workload::parseWorkloadJson(text.str(), parsed, err)) {
            std::fprintf(stderr, "otsim: %s: %s\n", opt.spec_path.c_str(),
                         err.c_str());
            return 2;
        }
        spec.instances.insert(spec.instances.end(),
                              parsed.instances.begin(),
                              parsed.instances.end());
    }
    for (const std::string &token : opt.insts) {
        workload::InstanceSpec inst;
        std::string err;
        if (!workload::parseInstance(token, inst, err)) {
            std::fprintf(stderr, "otsim: --inst: %s\n", err.c_str());
            return 2;
        }
        spec.instances.push_back(inst);
    }
    if (spec.instances.empty()) {
        std::fprintf(stderr, "otsim: batch needs --demo, --spec or "
                             "--inst\n");
        return 2;
    }
    if (std::string bad = workload::describeInvalid(spec); !bad.empty()) {
        std::fprintf(stderr, "otsim: %s\n", bad.c_str());
        return 2;
    }

    workload::BatchEngine engine;
    TraceSession ts(opt);
    ts.attach(engine);
    auto report = engine.run(spec);

    report.writeText(std::cout);
    if (!opt.json_out.empty()) {
        std::ofstream f(opt.json_out);
        if (!f) {
            std::fprintf(stderr, "otsim: cannot write %s\n",
                         opt.json_out.c_str());
            return 1;
        }
        f << report.toJson();
        std::printf("wrote %s\n", opt.json_out.c_str());
    }
    if (int rc = ts.finish(engine.stats()))
        return rc;
    if (!report.allVerified()) {
        std::fprintf(stderr, "otsim: BATCH VERIFICATION FAILED\n");
        return 1;
    }
    return 0;
}

int
runScenario(const Options &opt)
{
    if (opt.scn_path.empty() && !opt.demo) {
        std::fprintf(stderr,
                     "otsim: scenario needs --file <file.scn> or "
                     "--demo\n");
        return 2;
    }
    scenario::ScenarioSpec spec;
    if (opt.demo) {
        spec = scenario::demoScenario();
    } else {
        std::ifstream f(opt.scn_path);
        if (!f) {
            std::fprintf(stderr, "otsim: cannot read %s\n",
                         opt.scn_path.c_str());
            return 1;
        }
        std::ostringstream text;
        text << f.rdbuf();
        std::string err;
        if (!scenario::parseScenario(text.str(), spec, err)) {
            std::fprintf(stderr, "otsim: %s: %s\n",
                         opt.scn_path.c_str(), err.c_str());
            return 2;
        }
    }
    if (std::string bad = scenario::describeInvalid(spec);
        !bad.empty()) {
        std::fprintf(stderr, "otsim: %s\n", bad.c_str());
        return 2;
    }

    // The schedulers to run: the spec's own directive, a --scheduler
    // override, or a --compare list producing one report each.
    std::vector<scenario::SchedulerKind> policies;
    if (!opt.compare.empty()) {
        std::string cur;
        std::string list = opt.compare + ",";
        for (char c : list) {
            if (c != ',') {
                cur += c;
                continue;
            }
            scenario::SchedulerKind kind;
            if (!scenario::schedulerFromString(cur, kind)) {
                std::fprintf(stderr,
                             "otsim: --compare: unknown scheduler "
                             "'%s' (fifo|sjf|fair|edf)\n",
                             cur.c_str());
                return 2;
            }
            policies.push_back(kind);
            cur.clear();
        }
    } else if (!opt.scheduler_override.empty()) {
        scenario::SchedulerKind kind;
        if (!scenario::schedulerFromString(opt.scheduler_override,
                                           kind)) {
            std::fprintf(stderr,
                         "otsim: --scheduler: unknown scheduler "
                         "'%s' (fifo|sjf|fair|edf)\n",
                         opt.scheduler_override.c_str());
            return 2;
        }
        policies.push_back(kind);
    } else {
        policies.push_back(spec.scheduler);
    }

    scenario::ScenarioEngine engine;
    TraceSession ts(opt);
    ts.attach(engine);
    std::vector<scenario::ScenarioReport> reports;
    for (scenario::SchedulerKind kind : policies) {
        reports.push_back(engine.run(spec, kind));
        reports.back().writeText(std::cout);
    }
    if (!opt.json_out.empty()) {
        std::ofstream f(opt.json_out);
        if (!f) {
            std::fprintf(stderr, "otsim: cannot write %s\n",
                         opt.json_out.c_str());
            return 1;
        }
        if (reports.size() == 1)
            f << reports[0].toJson() << "\n";
        else
            f << scenario::compareJson(reports);
        std::printf("wrote %s\n", opt.json_out.c_str());
    }
    if (int rc = ts.finish(engine.stats()))
        return rc;
    for (const scenario::ScenarioReport &rep : reports) {
        if (!rep.verified) {
            std::fprintf(stderr,
                         "otsim: SCENARIO VERIFICATION FAILED\n");
            return 1;
        }
    }
    return 0;
}

int
runLayout(const Options &opt)
{
    auto cost = defaultCostModel(opt.n, opt.model);
    if (opt.net == "otn") {
        layout::OtnLayout l(opt.n, cost.word().bits());
        auto m = l.metrics();
        std::printf("(%zu x %zu)-OTN: pitch %lu, side %lu, area %lu, "
                    "%lu processors, longest wire %lu\n",
                    l.n(), l.n(),
                    static_cast<unsigned long>(l.pitch()),
                    static_cast<unsigned long>(m.width),
                    static_cast<unsigned long>(m.area()),
                    static_cast<unsigned long>(m.processors),
                    static_cast<unsigned long>(m.longestWire));
        if (opt.art)
            std::printf("%s", l.asciiArt().c_str());
        if (!opt.svg_path.empty()) {
            std::FILE *f = std::fopen(opt.svg_path.c_str(), "w");
            if (!f) {
                std::perror("otsim: --svg");
                return 1;
            }
            auto svg = layout::renderOtnSvg(l);
            std::fwrite(svg.data(), 1, svg.size(), f);
            std::fclose(f);
            std::printf("wrote %s\n", opt.svg_path.c_str());
        }
    } else if (opt.net == "otc") {
        unsigned cl = vlsi::logCeilAtLeast1(opt.n);
        layout::OtcLayout l(opt.n / cl, cl, cost.word().bits());
        auto m = l.metrics();
        std::printf("(%zu x %zu)-OTC, cycles of %u: area %lu, "
                    "%lu processors\n",
                    l.cyclesPerSide(), l.cyclesPerSide(), l.cycleLength(),
                    static_cast<unsigned long>(m.area()),
                    static_cast<unsigned long>(m.processors));
        if (opt.art)
            std::printf("%s", l.asciiArt().c_str());
        if (!opt.svg_path.empty()) {
            std::FILE *f = std::fopen(opt.svg_path.c_str(), "w");
            if (!f) {
                std::perror("otsim: --svg");
                return 1;
            }
            auto svg = layout::renderOtcSvg(l);
            std::fwrite(svg.data(), 1, svg.size(), f);
            std::fclose(f);
            std::printf("wrote %s\n", opt.svg_path.c_str());
        }
    } else {
        std::fprintf(stderr, "otsim: layout supports otn/otc\n");
        return 2;
    }
    return 0;
}

int
runTables(const Options &opt)
{
    double n = static_cast<double>(opt.n);
    for (auto problem :
         {analysis::Problem::Sorting, analysis::Problem::BoolMatMul,
          analysis::Problem::ConnectedComponents, analysis::Problem::Mst}) {
        std::printf("\n%s at N = %.0f (paper formulas, constants = 1):\n",
                    analysis::toString(problem).c_str(), n);
        analysis::TextTable t({"network", "area", "time", "AT^2"});
        for (auto net :
             {analysis::Network::Mesh, analysis::Network::Psn,
              analysis::Network::Ccc, analysis::Network::Otn,
              analysis::Network::Otc}) {
            auto a = analysis::paperFormula(net, problem, opt.model, n);
            t.addRow({analysis::toString(net),
                      analysis::formatQuantity(a.area),
                      analysis::formatQuantity(a.time),
                      analysis::formatQuantity(a.at2())});
        }
        std::printf("%s", t.str().c_str());
    }
    return 0;
}

/**
 * `otsim topo --list`: the registered topologies, one line each.  The
 * names are exactly what `--net` and the `algo:net:n` instance tokens
 * accept.
 */
int
runTopo(const Options &opt)
{
    if (!opt.list) {
        std::fprintf(stderr, "otsim: topo needs --list\n");
        return 2;
    }
    std::size_t width = 0;
    for (const auto &[name, info] : topo::registry().table())
        width = std::max(width, name.size());
    for (const auto &[name, info] : topo::registry().table())
        std::printf("%-*s  %s\n", static_cast<int>(width), name.c_str(),
                    info.summary.c_str());
    return 0;
}

/**
 * `otsim simd`: which kernel backend this process dispatches to
 * (resolving the OT_SIMD override, so a bad value aborts here rather
 * than mid-benchmark), plus the per-backend build/CPU status.
 */
int
runSimd(const Options &)
{
    std::printf("active: %s\n", simd::toString(simd::activeBackend()));
    for (simd::Backend b :
         {simd::Backend::Scalar, simd::Backend::Avx2, simd::Backend::Neon})
        std::printf("%-8s compiled=%s available=%s\n", simd::toString(b),
                    simd::backendCompiled(b) ? "yes" : "no",
                    simd::backendAvailable(b) ? "yes" : "no");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parse(argc, argv);
    if (opt.command == "sort")
        return runSort(opt);
    if (opt.command == "cc")
        return runCc(opt);
    if (opt.command == "mst")
        return runMst(opt);
    if (opt.command == "matmul")
        return runMatMul(opt);
    if (opt.command == "sssp")
        return runSssp(opt);
    if (opt.command == "batch")
        return runBatch(opt);
    if (opt.command == "scenario")
        return runScenario(opt);
    if (opt.command == "layout")
        return runLayout(opt);
    if (opt.command == "tables")
        return runTables(opt);
    if (opt.command == "topo")
        return runTopo(opt);
    if (opt.command == "simd")
        return runSimd(opt);
    usage(argv[0]);
}

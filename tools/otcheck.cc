/**
 * @file
 * otcheck — project-specific static analysis for the orthotree tree.
 *
 * Enforces the invariants the engine's bit-identical-at-any-
 * OT_HOST_THREADS guarantee rests on: no nondeterminism sources in
 * lane-reachable code (flat scan plus interprocedural taint), no
 * layering back-edges, path-sensitive beginPhase/endPhase accounting
 * with cross-function net-delta summaries, lane-safe parallelFor
 * lambdas, allocation-free hotpath files (and call chains),
 * used-and-direct includes, and no unreachable statements.  See
 * src/check/rules.hh for the rule catalogue and DESIGN.md for the
 * layer DAG and analysis pipeline.
 *
 * Usage:
 *   otcheck [--root DIR] [--compile-commands FILE] [--json]
 *           [--sarif-out FILE] [--baseline FILE] [--no-baseline]
 *           [--self] [--list-files] [--stats] [--stats-json FILE]
 *           [--cache FILE] [--explain RULE] [FILE...]
 *
 * With no FILE arguments, audits every *.cc / *.hh under root/src,
 * root/tools and root/bench (unioned with the translation units named
 * in the compile_commands.json, when given).  `--self` narrows the
 * set to src/check/ — the analyzer analyzing itself.  A baseline file
 * (default: root/.otcheck-baseline when present; disable with
 * --no-baseline) mutes known (rule, file) pairs.  `--cache FILE`
 * keeps an incremental per-TU cache across runs: unchanged files
 * skip the single-file rule pass (the cross-file passes always
 * re-run); --stats reports the hit/miss split.  `--explain RULE`
 * prints the rule's documentation (from the same catalog the SARIF
 * emitter renders) and exits.  Exit status: 0 clean, 1 diagnostics,
 * 2 usage error.
 */

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "check/checker.hh"
#include "check/rules.hh"
#include "check/sarif.hh"

namespace {

std::string
ruleList()
{
    std::string list;
    for (const ot::check::RuleDoc &d : ot::check::ruleCatalog()) {
        if (!list.empty())
            list += ", ";
        list += d.id;
    }
    return list;
}

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--root DIR] [--compile-commands FILE] [--json]\n"
        "          [--sarif-out FILE] [--baseline FILE] "
        "[--no-baseline]\n"
        "          [--self] [--list-files] [--stats] "
        "[--stats-json FILE]\n"
        "          [--cache FILE] [--explain RULE] [FILE...]\n"
        "rules: %s\n"
        "escape: // otcheck:allow(<rule>): <justification>\n",
        argv0, ruleList().c_str());
    return 2;
}

int
explainRule(const std::string &rule)
{
    const ot::check::RuleDoc *doc = ot::check::findRuleDoc(rule);
    if (!doc) {
        std::fprintf(stderr,
                     "otcheck: unknown rule '%s'\nrules: %s\n",
                     rule.c_str(), ruleList().c_str());
        return 2;
    }
    std::printf("%s\n  %s\n\nmodel\n  %s\n\nexample\n  %s\n\n"
                "allow() policy\n  %s\n",
                doc->id, doc->summary, doc->model, doc->example,
                doc->allowable
                    ? doc->allowPolicy
                    : "not allowable; this rule audits the escape "
                      "mechanism itself");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::string compileCommands;
    std::string sarifOut;
    std::string baselinePath;
    std::string statsJsonOut;
    std::string cachePath;
    bool noBaseline = false;
    bool selfCheck = false;
    bool json = false;
    bool listFiles = false;
    bool wantStats = false;
    std::vector<std::string> explicitFiles;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--root") == 0 && i + 1 < argc) {
            root = argv[++i];
        } else if (std::strcmp(arg, "--compile-commands") == 0 &&
                   i + 1 < argc) {
            compileCommands = argv[++i];
        } else if (std::strcmp(arg, "--sarif-out") == 0 &&
                   i + 1 < argc) {
            sarifOut = argv[++i];
        } else if (std::strcmp(arg, "--baseline") == 0 &&
                   i + 1 < argc) {
            baselinePath = argv[++i];
        } else if (std::strcmp(arg, "--no-baseline") == 0) {
            noBaseline = true;
        } else if (std::strcmp(arg, "--self") == 0) {
            selfCheck = true;
        } else if (std::strcmp(arg, "--json") == 0) {
            json = true;
        } else if (std::strcmp(arg, "--list-files") == 0) {
            listFiles = true;
        } else if (std::strcmp(arg, "--stats") == 0) {
            wantStats = true;
        } else if (std::strcmp(arg, "--stats-json") == 0 &&
                   i + 1 < argc) {
            statsJsonOut = argv[++i];
        } else if (std::strcmp(arg, "--cache") == 0 && i + 1 < argc) {
            cachePath = argv[++i];
        } else if (std::strcmp(arg, "--explain") == 0 &&
                   i + 1 < argc) {
            return explainRule(argv[++i]);
        } else if (std::strncmp(arg, "--", 2) == 0) {
            return usage(argv[0]);
        } else {
            explicitFiles.push_back(arg);
        }
    }

    std::error_code ec;
    if (!std::filesystem::is_directory(root, ec) || ec) {
        std::fprintf(stderr, "otcheck: no such root: %s\n",
                     root.c_str());
        return 2;
    }
    // A missing compile_commands.json is not an error: the directory
    // walk already covers the tree; the database only adds files.
    if (!compileCommands.empty() &&
        !std::filesystem::is_regular_file(compileCommands, ec))
        compileCommands.clear();

    std::vector<std::string> files =
        explicitFiles.empty()
            ? ot::check::collectFiles(root, compileCommands)
            : explicitFiles;

    if (selfCheck) {
        std::vector<std::string> narrowed;
        for (const std::string &f : files)
            if (f.compare(0, 10, "src/check/") == 0)
                narrowed.push_back(f);
        files = std::move(narrowed);
    }

    if (listFiles) {
        for (const std::string &f : files)
            std::printf("%s\n", f.c_str());
        return 0;
    }

    const bool collectStats = wantStats || !statsJsonOut.empty();
    ot::check::RunStats stats;
    ot::check::AnalysisCache cache;
    if (!cachePath.empty())
        cache = ot::check::loadAnalysisCache(cachePath);
    ot::check::Report report = ot::check::checkTree(
        root, files, collectStats ? &stats : nullptr,
        cachePath.empty() ? nullptr : &cache);
    if (!cachePath.empty() &&
        !ot::check::saveAnalysisCache(cachePath, cache))
        std::fprintf(stderr, "otcheck: cannot write cache %s\n",
                     cachePath.c_str());

    std::size_t muted = 0;
    if (!noBaseline) {
        if (baselinePath.empty()) {
            std::filesystem::path def =
                std::filesystem::path(root) / ".otcheck-baseline";
            if (std::filesystem::is_regular_file(def, ec) && !ec)
                baselinePath = def.string();
        }
        if (!baselinePath.empty())
            muted = ot::check::applyBaseline(
                ot::check::loadBaseline(baselinePath), report);
    }

    if (!sarifOut.empty()) {
        std::ofstream out(sarifOut, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "otcheck: cannot write %s\n",
                         sarifOut.c_str());
            return 2;
        }
        out << ot::check::renderSarif(report);
    }
    if (!statsJsonOut.empty()) {
        std::ofstream out(statsJsonOut, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "otcheck: cannot write %s\n",
                         statsJsonOut.c_str());
            return 2;
        }
        out << ot::check::renderStatsJson(stats);
    }

    std::string rendered = json ? ot::check::renderJson(report)
                                : ot::check::renderText(report);
    std::fputs(rendered.c_str(), stdout);
    if (wantStats)
        std::fputs(ot::check::renderStatsText(stats).c_str(), stderr);
    if (muted)
        std::fprintf(stderr,
                     "otcheck: %zu baselined finding%s muted (%s)\n",
                     muted, muted == 1 ? "" : "s",
                     baselinePath.c_str());
    return report.diagnostics.empty() ? 0 : 1;
}

/**
 * @file
 * otcheck — project-specific static analysis for the orthotree tree.
 *
 * Enforces the invariants the engine's bit-identical-at-any-
 * OT_HOST_THREADS guarantee rests on: no nondeterminism sources in
 * lane-reachable code, no layering back-edges, balanced
 * beginPhase/endPhase accounting, and allocation-free hotpath files.
 * See src/check/rules.hh for the rule catalogue and DESIGN.md for
 * the layer DAG.
 *
 * Usage:
 *   otcheck [--root DIR] [--compile-commands FILE] [--json]
 *           [--list-files] [FILE...]
 *
 * With no FILE arguments, audits every *.cc / *.hh under root/src
 * and root/tools (unioned with the translation units named in the
 * compile_commands.json, when given).  Exit status: 0 clean,
 * 1 diagnostics, 2 usage error.
 */

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "check/checker.hh"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--root DIR] [--compile-commands FILE] [--json]\n"
        "          [--list-files] [FILE...]\n"
        "rules: determinism, layering, accounting, hotpath\n"
        "escape: // otcheck:allow(<rule>): <justification>\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::string compileCommands;
    bool json = false;
    bool listFiles = false;
    std::vector<std::string> explicitFiles;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--root") == 0 && i + 1 < argc) {
            root = argv[++i];
        } else if (std::strcmp(arg, "--compile-commands") == 0 &&
                   i + 1 < argc) {
            compileCommands = argv[++i];
        } else if (std::strcmp(arg, "--json") == 0) {
            json = true;
        } else if (std::strcmp(arg, "--list-files") == 0) {
            listFiles = true;
        } else if (std::strncmp(arg, "--", 2) == 0) {
            return usage(argv[0]);
        } else {
            explicitFiles.push_back(arg);
        }
    }

    std::error_code ec;
    if (!std::filesystem::is_directory(root, ec) || ec) {
        std::fprintf(stderr, "otcheck: no such root: %s\n",
                     root.c_str());
        return 2;
    }
    // A missing compile_commands.json is not an error: the directory
    // walk already covers the tree; the database only adds files.
    if (!compileCommands.empty() &&
        !std::filesystem::is_regular_file(compileCommands, ec))
        compileCommands.clear();

    std::vector<std::string> files =
        explicitFiles.empty()
            ? ot::check::collectFiles(root, compileCommands)
            : explicitFiles;

    if (listFiles) {
        for (const std::string &f : files)
            std::printf("%s\n", f.c_str());
        return 0;
    }

    ot::check::Report report = ot::check::checkTree(root, files);
    std::string rendered = json ? ot::check::renderJson(report)
                                : ot::check::renderText(report);
    std::fputs(rendered.c_str(), stdout);
    return report.diagnostics.empty() ? 0 : 1;
}

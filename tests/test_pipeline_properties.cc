/**
 * @file
 * Property tests for the Section VIII sorting pipeline: every slot of
 * the stream is correctly sorted, outputs emerge one fixed O(log N)
 * beat apart after the fill latency, and pipelining a stream beats
 * repeating the unpipelined sort for any stream of two or more.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "otn/pipeline.hh"
#include "sim/rng.hh"

namespace {

using namespace ot::otn;
using ot::sim::Rng;
using ot::vlsi::CostModel;
using ot::vlsi::DelayModel;
using ot::vlsi::ModelTime;
using ot::vlsi::WordFormat;

std::vector<std::vector<std::uint64_t>>
randomProblems(std::size_t count, std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<std::uint64_t>> problems(count);
    for (auto &p : problems) {
        p.resize(n);
        for (auto &x : p)
            x = rng.uniform(0, n - 1);
    }
    return problems;
}

CostModel
logCost(std::size_t n)
{
    return {DelayModel::Logarithmic, WordFormat::forProblemSize(n)};
}

class SortPipelineProperties
    : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(SortPipelineProperties, EverySlotIsSorted)
{
    const std::size_t count = GetParam();
    const std::size_t n = 32;
    auto problems = randomProblems(count, n, 101 + count);

    OrthogonalTreesNetwork net(n, logCost(n));
    auto r = sortPipelineOtn(net, problems);

    ASSERT_EQ(r.sorted.size(), count);
    for (std::size_t p = 0; p < count; ++p) {
        auto expect = problems[p];
        std::sort(expect.begin(), expect.end());
        EXPECT_EQ(r.sorted[p], expect) << "slot " << p;
    }
}

TEST_P(SortPipelineProperties, SlotsEmergeOneBeatApart)
{
    const std::size_t count = GetParam();
    const std::size_t n = 32;
    auto problems = randomProblems(count, n, 211 + count);

    OrthogonalTreesNetwork net(n, logCost(n));
    auto r = sortPipelineOtn(net, problems);

    // The beat is three word-length time slices — one per phase in
    // flight — i.e. O(log N), not O(log^2 N).
    EXPECT_EQ(r.problemInterval, 3 * net.cost().wordSeparation());
    EXPECT_LT(r.problemInterval, r.firstLatency);

    // After the pipe fills, one sorted sequence drains per beat, so
    // the total is exactly fill latency plus (count - 1) beats.
    EXPECT_EQ(r.totalTime,
              r.firstLatency + (count - 1) * r.problemInterval);
}

TEST_P(SortPipelineProperties, PipelineBeatsSequentialRepetition)
{
    const std::size_t count = GetParam();
    if (count < 2)
        GTEST_SKIP() << "speedup claim applies to streams of >= 2";
    const std::size_t n = 32;
    auto problems = randomProblems(count, n, 307 + count);

    OrthogonalTreesNetwork piped(n, logCost(n));
    auto r = sortPipelineOtn(piped, problems);

    // The unpipelined baseline: the same problems, one full sort each.
    OrthogonalTreesNetwork seq(n, logCost(n));
    ModelTime sequential = 0;
    for (const auto &p : problems)
        sequential += sortOtn(seq, p).time;

    EXPECT_LT(r.totalTime, sequential);

    // The speedup approaches latency/beat as the stream lengthens;
    // even at small counts each extra problem costs one beat instead
    // of one full latency.
    ModelTime extra_piped = r.totalTime - r.firstLatency;
    ModelTime extra_seq = sequential - r.firstLatency;
    EXPECT_LT(extra_piped, extra_seq);
}

INSTANTIATE_TEST_SUITE_P(StreamLengths, SortPipelineProperties,
                         ::testing::Values(1, 2, 3, 8));

// The pipeline must charge the same total on every host-thread
// count (the sortOtn instances inside run through runUncharged).
TEST(SortPipelineProperties2, TotalTimeIsHostThreadInvariant)
{
    const std::size_t n = 16;
    auto problems = randomProblems(4, n, 997);

    std::vector<ModelTime> totals;
    for (unsigned threads : {1u, 2u, 8u}) {
        OrthogonalTreesNetwork net(n, logCost(n), {}, threads);
        totals.push_back(sortPipelineOtn(net, problems).totalTime);
    }
    EXPECT_EQ(totals[0], totals[1]);
    EXPECT_EQ(totals[0], totals[2]);
}

} // namespace

/**
 * @file
 * The batched workload engine: cache hit/miss semantics, the farm
 * makespan rule (max over shards of summed instance times), and the
 * determinism contract — reports and trace streams byte-identical at
 * every host-thread count.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

#include "trace/tracer.hh"
#include "workload/engine.hh"

namespace {

using namespace ot::workload;
using ot::vlsi::DelayModel;

InstanceSpec
inst(Algo algo, const char *net, std::size_t n,
     DelayModel model = DelayModel::Logarithmic, std::uint64_t seed = 1)
{
    return {algo, net, n, model, false, seed};
}

TEST(CacheKeyTest, DistinguishesMachineShapes)
{
    auto otn_sort = cacheKeyFor(inst(Algo::Sort, "otn", 32));
    auto otc_sort = cacheKeyFor(inst(Algo::Sort, "otc", 32));
    auto otc_cc =
        cacheKeyFor(inst(Algo::ConnectedComponents, "otc", 32));
    auto otc_bool = cacheKeyFor(inst(Algo::BoolMatMul, "otc", 32));

    EXPECT_EQ(otn_sort.topo, "otn");
    EXPECT_EQ(otc_sort.topo, "otc");
    EXPECT_EQ(otc_cc.topo, "otc-emu");
    EXPECT_EQ(otc_bool.topo, "otc-emu");
    // SORT-OTC streams cycles of log N; the Table II Boolean machine
    // uses cycles of log^2 N.
    EXPECT_EQ(otc_sort.cycleLen, 5u);
    EXPECT_EQ(otc_bool.cycleLen, 25u);
    EXPECT_NE(otc_cc, otc_bool);
}

TEST(CacheKeyTest, SameShapeSameKeyDifferentSeed)
{
    auto a = cacheKeyFor(inst(Algo::Sort, "otn", 32,
                              DelayModel::Logarithmic, 1));
    auto b = cacheKeyFor(inst(Algo::Sort, "otn", 32,
                              DelayModel::Logarithmic, 99));
    EXPECT_EQ(a, b);
    auto c = cacheKeyFor(
        inst(Algo::Sort, "otn", 32, DelayModel::Constant, 1));
    EXPECT_NE(a, c);
}

TEST(NetworkCacheTest, SecondAcquireIsAHitOnTheSameMachine)
{
    NetworkCache cache;
    auto spec = inst(Algo::Sort, "otn", 16);
    auto key = cacheKeyFor(spec);
    auto cost = costModelFor(spec);

    auto &first = cache.acquire(key, cost);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 1u);

    auto &second = cache.acquire(key, cost);
    EXPECT_EQ(&first, &second);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.size(), 1u);

    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
}

TEST(BatchEngineTest, DemoWorkloadVerifiesWithThreeHits)
{
    BatchEngine engine;
    auto report = engine.run(demoWorkload());

    ASSERT_EQ(report.instances.size(), 12u);
    EXPECT_TRUE(report.allVerified());
    // Three repeated shapes in the demo mix (see demoWorkload()).
    EXPECT_EQ(report.cacheHits, 3u);
    EXPECT_EQ(report.cacheMisses, 9u);
    EXPECT_EQ(report.shards, 9u);
    EXPECT_GT(report.makespan, 0u);
    EXPECT_GE(report.totalWork, report.makespan);
}

TEST(BatchEngineTest, MakespanIsMaxOverShardsOfSummedTimes)
{
    BatchEngine engine;
    auto report = engine.run(demoWorkload());

    std::map<std::size_t, ot::vlsi::ModelTime> shard_time;
    ot::vlsi::ModelTime total = 0;
    for (const auto &r : report.instances) {
        shard_time[r.shard] += r.time;
        total += r.time;
        EXPECT_GT(r.time, 0u) << "instance " << r.index;
        EXPECT_GT(r.area, 0u) << "instance " << r.index;
    }
    ASSERT_EQ(shard_time.size(), report.shards);

    ot::vlsi::ModelTime longest = 0;
    for (const auto &[shard, t] : shard_time)
        longest = std::max(longest, t);
    EXPECT_EQ(report.makespan, longest);
    EXPECT_EQ(report.totalWork, total);
}

TEST(BatchEngineTest, SingleInstanceBatchMakespanEqualsItsTime)
{
    WorkloadSpec spec;
    spec.instances.push_back(inst(Algo::Sort, "otn", 16));
    BatchEngine engine;
    auto report = engine.run(spec);
    ASSERT_EQ(report.instances.size(), 1u);
    EXPECT_EQ(report.makespan, report.instances[0].time);
    EXPECT_EQ(report.totalWork, report.instances[0].time);
    EXPECT_EQ(report.shards, 1u);
}

TEST(BatchEngineTest, CachePersistsAcrossRuns)
{
    BatchEngine engine;
    auto cold = engine.run(demoWorkload());
    auto warm = engine.run(demoWorkload());

    EXPECT_EQ(warm.cacheHits, 12u);
    EXPECT_EQ(warm.cacheMisses, 0u);
    EXPECT_EQ(engine.cache().size(), 9u);

    // Machine reuse must not leak state between runs: the warm pass
    // reproduces the cold pass exactly.
    EXPECT_EQ(warm.makespan, cold.makespan);
    for (std::size_t i = 0; i < cold.instances.size(); ++i) {
        EXPECT_EQ(warm.instances[i].time, cold.instances[i].time) << i;
        EXPECT_TRUE(warm.instances[i].verified) << i;
    }
}

TEST(BatchEngineTest, ReportsAreByteIdenticalAcrossHostThreads)
{
    std::vector<std::string> jsons;
    std::vector<std::string> texts;
    for (unsigned threads : {1u, 2u, 8u}) {
        BatchEngine engine(threads);
        auto report = engine.run(demoWorkload());
        jsons.push_back(report.toJson());
        std::ostringstream os;
        report.writeText(os);
        texts.push_back(os.str());
    }
    EXPECT_EQ(jsons[0], jsons[1]);
    EXPECT_EQ(jsons[0], jsons[2]);
    EXPECT_EQ(texts[0], texts[1]);
    EXPECT_EQ(texts[0], texts[2]);
}

#ifdef OT_TRACE
TEST(BatchEngineTest, TraceStreamsAreIdenticalAcrossHostThreads)
{
    auto trace_of = [](unsigned threads) {
        auto tracer = std::make_unique<ot::trace::Tracer>();
        tracer->setEnabled(true);
        BatchEngine engine(threads);
        engine.setTracer(tracer.get());
        engine.run(demoWorkload());
        engine.setTracer(nullptr);
        return tracer;
    };

    auto seq = trace_of(1);
    EXPECT_GT(seq->events().size(), 0u);
    EXPECT_EQ(seq->dropped(), 0u);
    for (unsigned threads : {2u, 8u}) {
        auto par = trace_of(threads);
        ASSERT_EQ(par->events().size(), seq->events().size())
            << "threads=" << threads;
        for (std::size_t i = 0; i < seq->events().size(); ++i)
            ASSERT_TRUE(ot::trace::eventsEqual(seq->events()[i],
                                               par->events()[i]))
                << "threads=" << threads << " event " << i;
    }
}
#endif

TEST(BatchEngineTest, StatsSurfaceCacheAndAlgoCounters)
{
    BatchEngine engine;
    engine.run(demoWorkload());
    EXPECT_EQ(engine.stats().counter("workload.instances").value(), 12u);
    EXPECT_EQ(engine.stats().counter("workload.cache.hit").value(), 3u);
    EXPECT_EQ(engine.stats().counter("workload.cache.miss").value(), 9u);
    EXPECT_EQ(engine.stats().counter("workload.algo.sort").value(), 4u);
    EXPECT_EQ(engine.stats().counter("workload.algo.mst").value(), 2u);
}

TEST(SpecTest, JsonRoundTrips)
{
    auto spec = demoWorkload();
    auto text = toJson(spec);
    WorkloadSpec parsed;
    std::string err;
    ASSERT_TRUE(parseWorkloadJson(text, parsed, err)) << err;
    EXPECT_EQ(parsed.instances, spec.instances);
}

TEST(SpecTest, ParseInstanceTokens)
{
    InstanceSpec out;
    std::string err;
    ASSERT_TRUE(parseInstance("boolmm:otc:64:const:seed=7", out, err))
        << err;
    EXPECT_EQ(out.algo, Algo::BoolMatMul);
    EXPECT_EQ(out.net, "otc");
    EXPECT_EQ(out.n, 64u);
    EXPECT_EQ(out.model, DelayModel::Constant);
    EXPECT_EQ(out.seed, 7u);
    EXPECT_FALSE(out.scaled);

    ASSERT_TRUE(parseInstance("sort:otn:32:log:scaled", out, err)) << err;
    EXPECT_TRUE(out.scaled);

    EXPECT_FALSE(parseInstance("sort:otn:32", out, err));
    EXPECT_FALSE(parseInstance("quicksort:otn:32:log", out, err));

    // Any registry topology is a valid net token now.
    ASSERT_TRUE(parseInstance("sort:mesh:32:log", out, err)) << err;
    EXPECT_EQ(out.net, "mesh");
    ASSERT_TRUE(parseInstance("sssp:fattree:16:log", out, err)) << err;
    EXPECT_EQ(out.algo, Algo::ShortestPaths);
    EXPECT_EQ(out.net, "fattree");
    EXPECT_FALSE(parseInstance("sort:hypercube:32:log", out, err));
    EXPECT_NE(err.find("unknown net 'hypercube'"), std::string::npos);
}

TEST(SpecTest, DescribeInvalidFlagsBadSizes)
{
    WorkloadSpec spec;
    EXPECT_NE(describeInvalid(spec), "");
    spec.instances.push_back(inst(Algo::Sort, "otn", 16));
    EXPECT_EQ(describeInvalid(spec), "");
    spec.instances.push_back(inst(Algo::Sort, "otn", 24));
    EXPECT_NE(describeInvalid(spec), "");
}

} // namespace

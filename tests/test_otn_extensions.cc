/**
 * @file
 * Tests for the extension modules: the PREFIX tree primitive, integer
 * multiplication (Capello & Steiglitz, paper §I), transitive closure,
 * the 3D mesh of trees (paper §VII-B), and the single-tree machine
 * (paper §II-A) the OTN generalizes.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "baselines/tree_machine.hh"
#include "graph/generators.hh"
#include "graph/reference_algorithms.hh"
#include "linalg/reference.hh"
#include "analysis/fitting.hh"
#include "otn/closure.hh"
#include "otn/connected_components.hh"
#include "otn/integer_multiply.hh"
#include "otn/mesh_of_trees_3d.hh"
#include "otn/network.hh"
#include "otn/sort.hh"
#include "sim/rng.hh"

namespace {

using namespace ot;
using namespace ot::otn;
using ot::sim::Rng;
using ot::vlsi::CostModel;
using ot::vlsi::DelayModel;
using ot::vlsi::WordFormat;

CostModel
logCost(std::size_t n)
{
    return {DelayModel::Logarithmic, WordFormat::forProblemSize(n)};
}

// ---------------------------------------------------------- prefix op

TEST(PrefixSum, InclusiveScanAlongRow)
{
    OrthogonalTreesNetwork net(8, logCost(8));
    for (std::size_t j = 0; j < 8; ++j)
        net.reg(Reg::A, 0, j) = j + 1;
    net.prefixSumLeafToLeaf(Axis::Row, 0, Sel::all(), Reg::A, Reg::B);
    std::uint64_t expect = 0;
    for (std::size_t j = 0; j < 8; ++j) {
        expect += j + 1;
        EXPECT_EQ(net.reg(Reg::B, 0, j), expect);
    }
}

TEST(PrefixSum, SelectorMasksContributions)
{
    OrthogonalTreesNetwork net(4, logCost(4));
    for (std::size_t i = 0; i < 4; ++i)
        net.reg(Reg::A, i, 2) = 10;
    net.prefixSumLeafToLeaf(Axis::Col, 2, Sel::evenAlong(Axis::Col),
                            Reg::A, Reg::B);
    EXPECT_EQ(net.reg(Reg::B, 0, 2), 10u);
    EXPECT_EQ(net.reg(Reg::B, 1, 2), 10u); // odd row contributes 0
    EXPECT_EQ(net.reg(Reg::B, 2, 2), 20u);
    EXPECT_EQ(net.reg(Reg::B, 3, 2), 20u);
}

TEST(PrefixSum, CostsTwoReduceTraversals)
{
    OrthogonalTreesNetwork net(16, logCost(16));
    net.resetTime();
    auto dt = net.prefixSumLeafToLeaf(Axis::Row, 3, Sel::all(), Reg::A,
                                      Reg::B);
    EXPECT_EQ(dt, 2 * net.treeReduceCost());
    EXPECT_EQ(net.now(), dt);
}

// -------------------------------------------- integer multiplication

TEST(IntegerMultiply, SmallProducts)
{
    EXPECT_EQ(integerMultiplyOtn(3, 5, 4).product, 15u);
    EXPECT_EQ(integerMultiplyOtn(0, 9, 4).product, 0u);
    EXPECT_EQ(integerMultiplyOtn(15, 15, 4).product, 225u);
    EXPECT_EQ(integerMultiplyOtn(1, 1, 4).product, 1u);
}

class IntegerMultiplyRandom : public ::testing::TestWithParam<int>
{
};

TEST_P(IntegerMultiplyRandom, MatchesHostMultiply)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    for (unsigned bits : {4, 8, 16, 24}) {
        std::uint64_t limit = (std::uint64_t{1} << bits) - 1;
        std::uint64_t a = rng.uniform(0, limit);
        std::uint64_t b = rng.uniform(0, limit);
        auto r = integerMultiplyOtn(a, b, bits);
        EXPECT_EQ(r.product, a * b) << a << " * " << b << " @" << bits;
        EXPECT_GT(r.time, 0u);
        EXPECT_GE(r.carryPasses, 1u);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntegerMultiplyRandom,
                         ::testing::Range(1, 8));

TEST(IntegerMultiply, MaxWidthOperands)
{
    std::uint64_t a = (std::uint64_t{1} << 31) - 1;
    std::uint64_t b = (std::uint64_t{1} << 31) - 12345;
    EXPECT_EQ(integerMultiplyOtn(a, b, 31).product, a * b);
}

TEST(IntegerMultiply, TimeIsPolylogInWidth)
{
    Rng rng(3);
    std::vector<double> widths, times;
    for (unsigned bits : {8, 16, 31}) {
        std::uint64_t limit = (std::uint64_t{1} << bits) - 1;
        auto r = integerMultiplyOtn(rng.uniform(1, limit),
                                    rng.uniform(1, limit), bits);
        widths.push_back(bits);
        times.push_back(static_cast<double>(r.time));
    }
    // Polylog growth: quadrupling the width should well less than
    // quadruple the time.
    EXPECT_LT(times.back() / times.front(), 3.0);
}

// ------------------------------------------------ transitive closure

TEST(TransitiveClosure, PathGraphReachability)
{
    graph::Graph g(6);
    for (std::size_t v = 0; v + 1 < 6; ++v)
        g.addEdge(v, v + 1);
    OrthogonalTreesNetwork net(8, logCost(8));
    auto r = transitiveClosureOtn(net, g);
    for (std::size_t i = 0; i < 6; ++i)
        for (std::size_t j = 0; j < 6; ++j)
            EXPECT_EQ(r.reach(i, j), 1) << i << "," << j;
    EXPECT_EQ(r.squarings, 3u);
}

TEST(TransitiveClosure, MatchesBoolMatPowReference)
{
    Rng rng(11);
    for (std::size_t n : {4, 8, 16}) {
        auto g = graph::randomGnp(n, 1.5 / static_cast<double>(n), rng);
        OrthogonalTreesNetwork net(n, logCost(n));
        auto r = transitiveClosureOtn(net, g);

        linalg::BoolMatrix base(n, n, 0);
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = 0; j < n; ++j)
                base(i, j) = (i == j || g.hasEdge(i, j)) ? 1 : 0;
        auto expect = linalg::boolMatPow(
            base, 1u << vlsi::logCeilAtLeast1(n));
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = 0; j < n; ++j)
                EXPECT_EQ(r.reach(i, j) != 0, expect(i, j) != 0)
                    << "n=" << n << " @(" << i << "," << j << ")";
    }
}

TEST(TransitiveClosure, PipelinedAndReplicatedAgree)
{
    Rng rng(12);
    std::size_t n = 16;
    auto g = graph::randomGnp(n, 0.15, rng);
    OrthogonalTreesNetwork a(n, logCost(n)), b(n, logCost(n));
    auto rep = transitiveClosureOtn(a, g, /*replicated=*/true);
    auto pipe = transitiveClosureOtn(b, g, /*replicated=*/false);
    EXPECT_EQ(rep.reach, pipe.reach);
    // The replicated machine is faster (log^2 per product vs ~N).
    EXPECT_LT(rep.time, pipe.time);
}

TEST(ComponentsViaClosure, CrossChecksConnect)
{
    Rng rng(13);
    for (std::size_t n : {8, 16, 32}) {
        auto g = graph::randomGnp(n, 1.8 / static_cast<double>(n), rng);
        OrthogonalTreesNetwork a(n, logCost(n));
        auto via_closure = componentsViaClosure(a, g);
        OrthogonalTreesNetwork b(n, logCost(n));
        auto via_connect = connectedComponentsOtn(b, g).labels;
        EXPECT_EQ(graph::canonicalizeLabels(via_closure), via_connect)
            << "n = " << n;
    }
}

// ------------------------------------------------- 3D mesh of trees

TEST(MeshOfTrees3d, MatMulMatchesReference)
{
    Rng rng(14);
    for (std::size_t n : {2, 4, 8, 16}) {
        linalg::IntMatrix a(n, n), b(n, n);
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = 0; j < n; ++j) {
                a(i, j) = rng.uniform(0, 9);
                b(i, j) = rng.uniform(0, 9);
            }
        MeshOfTrees3d mot(n, CostModel(DelayModel::Logarithmic,
                                       WordFormat(24)));
        EXPECT_EQ(mot.matMul(a, b).product, linalg::matMul(a, b))
            << "n = " << n;
    }
}

TEST(MeshOfTrees3d, BoolMatMulMatchesReference)
{
    Rng rng(15);
    std::size_t n = 8;
    linalg::BoolMatrix a(n, n, 0), b(n, n, 0);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j) {
            a(i, j) = rng.bernoulli(0.3);
            b(i, j) = rng.bernoulli(0.3);
        }
    MeshOfTrees3d mot(n, logCost(n));
    auto r = mot.boolMatMul(a, b);
    auto expect = linalg::boolMatMul(a, b);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            EXPECT_EQ(r.product(i, j) != 0, expect(i, j) != 0);
}

TEST(MeshOfTrees3d, TimeIsPolylogAreaIsN4)
{
    // Section VII-B: time O(log N) (constant model) / polylog
    // (Thompson); area Theta(N^4).
    std::vector<double> ns, times, areas;
    for (std::size_t n : {8, 16, 32, 64}) {
        MeshOfTrees3d mot(n, CostModel(DelayModel::Logarithmic,
                                       WordFormat(32)));
        linalg::IntMatrix a(n, n, 1), b(n, n, 1);
        auto r = mot.matMul(a, b);
        ns.push_back(static_cast<double>(n));
        times.push_back(static_cast<double>(r.time));
        areas.push_back(static_cast<double>(mot.chipArea()));
    }
    auto tfit = ot::analysis::fitPowerLaw(ns, times);
    EXPECT_LT(tfit.exponent, 0.4) << "time must be polylog in N";
    auto afit = ot::analysis::fitPowerLaw(ns, areas);
    EXPECT_NEAR(afit.exponent, 4.0, 0.3);
}

TEST(MeshOfTrees3d, FasterThanPipelinedOtnForLargeN)
{
    std::size_t n = 32;
    CostModel cm(DelayModel::Logarithmic, WordFormat(32));
    linalg::IntMatrix a(n, n, 2), b(n, n, 3);
    MeshOfTrees3d mot(n, cm);
    auto t3d = mot.matMul(a, b).time;
    OrthogonalTreesNetwork net(n, cm);
    auto t2d = matMulPipelined(net, a, b).time;
    EXPECT_LT(t3d, t2d);
}

// ------------------------------------------------------ tree machine

TEST(TreeMachine, BroadcastAndReduce)
{
    baselines::TreeMachine tree(8, logCost(8));
    tree.broadcast(7);
    for (std::size_t k = 0; k < 8; ++k)
        EXPECT_EQ(tree.leaf(k), 7u);
    tree.leaf(3) = 2;
    tree.leaf(5) = 11;
    EXPECT_EQ(tree.minReduce(), 2u);
    EXPECT_EQ(tree.sumReduce(), 6u * 7 + 2 + 11);
}

TEST(TreeMachine, ExtractMinSortIsCorrect)
{
    Rng rng(16);
    for (std::size_t n : {4, 16, 64}) {
        std::vector<std::uint64_t> v(n);
        for (auto &x : v)
            x = rng.uniform(0, n - 1);
        baselines::TreeMachine tree(n, logCost(n));
        auto sorted = tree.extractMinSort(v);
        std::sort(v.begin(), v.end());
        EXPECT_EQ(sorted, v) << "n = " << n;
    }
}

TEST(TreeMachine, RootBottleneckVsOtn)
{
    // Section II-A's motivation: one tree serializes at the root —
    // sorting is Theta(N) traversals vs the OTN's O(log^2 N) total.
    Rng rng(17);
    std::size_t n = 256;
    auto v = rng.permutation(n);
    baselines::TreeMachine tree(n, logCost(n));
    auto t_tree = [&] {
        tree.extractMinSort(v);
        return tree.now();
    }();
    auto t_otn = sortOtn(v, logCost(n)).time;
    EXPECT_GT(t_tree, 10 * t_otn);
    // But the tree machine is far smaller.
    OrthogonalTreesNetwork net(n, logCost(n));
    EXPECT_LT(tree.chipArea(), net.chipLayout().metrics().area() / 8);
}

TEST(TreeMachine, SemigroupOpsCostOneTraversalClass)
{
    baselines::TreeMachine tree(1024, logCost(1024));
    vlsi::ModelTime dt = 0;
    tree.minReduce(&dt);
    double logn = std::log2(1024.0);
    EXPECT_LT(static_cast<double>(dt), 8 * logn * logn);
}


// ------------------------------------------------ permutation routing

TEST(PermuteLeafToLeaf, RoutesArbitraryPermutation)
{
    OrthogonalTreesNetwork net(8, logCost(8));
    for (std::size_t j = 0; j < 8; ++j)
        net.reg(Reg::A, 0, j) = 100 + j;
    std::vector<std::size_t> perm{3, 0, 7, 1, 6, 2, 5, 4};
    net.permuteLeafToLeaf(Axis::Row, 0, perm, Reg::A, Reg::B);
    for (std::size_t j = 0; j < 8; ++j)
        EXPECT_EQ(net.reg(Reg::B, 0, perm[j]), 100 + j);
}

TEST(PermuteLeafToLeaf, IdentityCostsOneTraversal)
{
    OrthogonalTreesNetwork net(16, logCost(16));
    std::vector<std::size_t> id(16);
    for (std::size_t k = 0; k < 16; ++k)
        id[k] = k;
    EXPECT_EQ(net.permutationCost(id), net.treeTraversalCost());
}

TEST(PermuteLeafToLeaf, ShiftIsCheapReversalIsExpensive)
{
    OrthogonalTreesNetwork net(64, logCost(64));
    std::vector<std::size_t> shift(64), reversal(64);
    for (std::size_t k = 0; k < 64; ++k) {
        shift[k] = (k + 1) % 64;
        reversal[k] = 63 - k;
    }
    auto c_shift = net.permutationCost(shift);
    auto c_rev = net.permutationCost(reversal);
    // Shift: one word per node, no queueing beyond the wrap word.
    EXPECT_LT(c_shift, net.treeTraversalCost() +
                           2 * net.cost().wordSeparation() + 64);
    // Reversal: all 64 words cross the root, serialized.
    EXPECT_GT(c_rev, 63 * net.cost().wordSeparation());
    EXPECT_GT(c_rev, 4 * c_shift);
}

TEST(PermuteLeafToLeaf, BitReversalCongestionIsHalfTheLeaves)
{
    OrthogonalTreesNetwork net(64, logCost(64));
    std::vector<std::size_t> bitrev(64);
    for (std::size_t k = 0; k < 64; ++k)
        bitrev[k] = vlsi::reverseBits(k, 6);
    auto c = net.permutationCost(bitrev);
    // K/2 words have MSB != LSB and cross the root.
    auto expect_drain = (64 / 2 - 1) * net.cost().wordSeparation();
    EXPECT_GE(c, expect_drain);
    EXPECT_LE(c, expect_drain + 2 * net.treeTraversalCost());
}

TEST(PermuteLeafToLeaf, WorksOnColumns)
{
    OrthogonalTreesNetwork net(4, logCost(4));
    for (std::size_t i = 0; i < 4; ++i)
        net.reg(Reg::A, i, 2) = i * 11;
    std::vector<std::size_t> rev{3, 2, 1, 0};
    net.permuteLeafToLeaf(Axis::Col, 2, rev, Reg::A, Reg::A);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(net.reg(Reg::A, i, 2), (3 - i) * 11);
}

} // namespace

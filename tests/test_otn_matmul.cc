/**
 * @file
 * Tests for the Section III-A matrix algorithms on the OTN:
 * vector-matrix product, the pipelined full product, and the Boolean
 * variants (pipelined and the Table II replicated-block machine).
 */

#include <gtest/gtest.h>

#include "linalg/reference.hh"
#include "otn/matmul.hh"
#include "sim/rng.hh"

namespace {

using namespace ot::otn;
using ot::linalg::BoolMatrix;
using ot::linalg::IntMatrix;
using ot::sim::Rng;
using ot::vlsi::CostModel;
using ot::vlsi::DelayModel;
using ot::vlsi::WordFormat;

/** Word wide enough for dot products of n values < `entry_limit`. */
CostModel
matCost(std::size_t n, std::uint64_t entry_limit)
{
    unsigned bits = ot::vlsi::logCeilAtLeast1(
                        n * entry_limit * entry_limit + 1) +
                    2;
    return {DelayModel::Logarithmic, WordFormat(bits)};
}

IntMatrix
randomMatrix(std::size_t n, std::uint64_t limit, Rng &rng)
{
    IntMatrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            m(i, j) = rng.uniform(0, limit - 1);
    return m;
}

BoolMatrix
randomBool(std::size_t n, double density, Rng &rng)
{
    BoolMatrix m(n, n, 0);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            m(i, j) = rng.bernoulli(density) ? 1 : 0;
    return m;
}

TEST(VecMatMul, SmallExample)
{
    auto b = IntMatrix::fromRows({{1, 0}, {0, 1}});
    OrthogonalTreesNetwork net(2, matCost(2, 10));
    net.loadBase(Reg::B, b);
    auto c = vecMatMulOtn(net, {3, 4});
    EXPECT_EQ(c, (std::vector<std::uint64_t>{3, 4}));
}

TEST(VecMatMul, MatchesReference)
{
    Rng rng(1);
    for (std::size_t n : {2, 4, 8, 16}) {
        auto b = randomMatrix(n, 8, rng);
        std::vector<std::uint64_t> a(n);
        for (auto &x : a)
            x = rng.uniform(0, 7);
        OrthogonalTreesNetwork net(n, matCost(n, 8));
        net.loadBase(Reg::B, b);
        EXPECT_EQ(vecMatMulOtn(net, a), ot::linalg::vecMatMul(a, b))
            << "n = " << n;
    }
}

TEST(MatMulPipelined, MatchesReference)
{
    Rng rng(2);
    for (std::size_t n : {2, 4, 8, 16}) {
        auto a = randomMatrix(n, 6, rng);
        auto b = randomMatrix(n, 6, rng);
        OrthogonalTreesNetwork net(n, matCost(n, 6));
        auto r = matMulPipelined(net, a, b);
        EXPECT_EQ(r.product, ot::linalg::matMul(a, b)) << "n = " << n;
    }
}

TEST(MatMulPipelined, IdentityAndZero)
{
    std::size_t n = 8;
    Rng rng(3);
    auto a = randomMatrix(n, 10, rng);
    OrthogonalTreesNetwork net(n, matCost(n, 10));
    EXPECT_EQ(matMulPipelined(net, a, IntMatrix::identity(n)).product, a);
    OrthogonalTreesNetwork net2(n, matCost(n, 10));
    EXPECT_EQ(matMulPipelined(net2, a, IntMatrix(n, n, 0)).product,
              IntMatrix(n, n, 0));
}

TEST(MatMulPipelined, PipelineBeatIsWordSeparation)
{
    std::size_t n = 16;
    Rng rng(4);
    auto a = randomMatrix(n, 4, rng);
    auto b = randomMatrix(n, 4, rng);
    OrthogonalTreesNetwork net(n, matCost(n, 4));
    auto r = matMulPipelined(net, a, b);
    EXPECT_EQ(r.rowInterval, net.cost().wordSeparation());
    // Total = first-row latency + (N-1) beats.
    EXPECT_EQ(r.time, r.firstRowLatency + (n - 1) * r.rowInterval);
    // The pipeline makes the total far cheaper than N full products.
    EXPECT_LT(r.time, n * r.firstRowLatency / 2);
}

TEST(BoolMatMulPipelined, MatchesReference)
{
    Rng rng(5);
    for (std::size_t n : {2, 4, 8, 16, 32}) {
        auto a = randomBool(n, 0.3, rng);
        auto b = randomBool(n, 0.3, rng);
        OrthogonalTreesNetwork net(n, matCost(n, 2));
        auto r = boolMatMulPipelined(net, a, b);
        auto expect = ot::linalg::boolMatMul(a, b);
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = 0; j < n; ++j)
                EXPECT_EQ(r.product(i, j), expect(i, j))
                    << "n=" << n << " @(" << i << "," << j << ")";
    }
}

TEST(BoolMatMulPipelined, UnitSeparationBeatsWordSeparation)
{
    std::size_t n = 32;
    Rng rng(6);
    auto ab = randomBool(n, 0.4, rng);
    auto bb = randomBool(n, 0.4, rng);

    OrthogonalTreesNetwork nb(n, matCost(n, 2));
    auto t_bool = boolMatMulPipelined(nb, ab, bb).time;

    // The same matrices pushed through the integer pipeline.
    IntMatrix ai(n, n), bi(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j) {
            ai(i, j) = ab(i, j);
            bi(i, j) = bb(i, j);
        }
    OrthogonalTreesNetwork ni(n, matCost(n, 2));
    auto t_int = matMulPipelined(ni, ai, bi).time;
    EXPECT_LT(t_bool, t_int);
}

TEST(BoolMatMulReplicated, MatchesReference)
{
    Rng rng(7);
    for (std::size_t n : {4, 8, 16, 32}) {
        auto a = randomBool(n, 0.25, rng);
        auto b = randomBool(n, 0.25, rng);
        OrthogonalTreesNetwork block(n, matCost(n, 2));
        auto r = boolMatMulReplicated(block, a, b);
        auto expect = ot::linalg::boolMatMul(a, b);
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = 0; j < n; ++j)
                EXPECT_EQ(r.product(i, j), expect(i, j)) << "n = " << n;
    }
}

TEST(BoolMatMulReplicated, LogSquaredTimeBeatsPipelinedForLargeN)
{
    // Table II: the big machine wins in time once N >> log^2 N.
    std::size_t n = 64;
    Rng rng(8);
    auto a = randomBool(n, 0.3, rng);
    auto b = randomBool(n, 0.3, rng);
    OrthogonalTreesNetwork block(n, matCost(n, 2));
    auto t_rep = boolMatMulReplicated(block, a, b).time;
    OrthogonalTreesNetwork pipe(n, matCost(n, 2));
    auto t_pipe = boolMatMulPipelined(pipe, a, b).time;
    EXPECT_LT(t_rep, t_pipe);
}

TEST(BoolMatMulReplicated, TimeShapeIsLogSquared)
{
    double lo = 1e18, hi = 0;
    Rng rng(9);
    for (std::size_t n : {8, 16, 32, 64, 128}) {
        auto a = randomBool(n, 0.3, rng);
        auto b = randomBool(n, 0.3, rng);
        OrthogonalTreesNetwork block(n, matCost(n, 2));
        auto t = boolMatMulReplicated(block, a, b).time;
        double logn = std::log2(static_cast<double>(n));
        double ratio = static_cast<double>(t) / (logn * logn);
        lo = std::min(lo, ratio);
        hi = std::max(hi, ratio);
    }
    EXPECT_LT(hi / lo, 12.0);
}

/** Parameterized associativity property: (A*B)*C == A*(B*C) on-machine. */
class MatMulAssoc : public ::testing::TestWithParam<int>
{
};

TEST_P(MatMulAssoc, HoldsOnMachine)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    std::size_t n = 4;
    auto a = randomMatrix(n, 3, rng);
    auto b = randomMatrix(n, 3, rng);
    auto c = randomMatrix(n, 3, rng);
    auto cost = matCost(n, 27 * n); // room for two chained products

    OrthogonalTreesNetwork n1(n, cost);
    auto ab = matMulPipelined(n1, a, b).product;
    OrthogonalTreesNetwork n2(n, cost);
    auto ab_c = matMulPipelined(n2, ab, c).product;

    OrthogonalTreesNetwork n3(n, cost);
    auto bc = matMulPipelined(n3, b, c).product;
    OrthogonalTreesNetwork n4(n, cost);
    auto a_bc = matMulPipelined(n4, a, bc).product;

    EXPECT_EQ(ab_c, a_bc);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatMulAssoc, ::testing::Range(1, 6));


TEST(MatMulStream, StreamedProductsAllCorrect)
{
    Rng rng(41);
    std::size_t n = 8;
    auto b = randomMatrix(n, 5, rng);
    std::vector<IntMatrix> as;
    for (int i = 0; i < 5; ++i)
        as.push_back(randomMatrix(n, 5, rng));

    OrthogonalTreesNetwork net(n, matCost(n, 5));
    auto r = matMulStream(net, as, b);
    ASSERT_EQ(r.products.size(), as.size());
    for (std::size_t i = 0; i < as.size(); ++i)
        EXPECT_EQ(r.products[i], ot::linalg::matMul(as[i], b))
            << "matrix " << i;
}

TEST(MatMulStream, ThroughputBeatsIsolatedProducts)
{
    Rng rng(42);
    std::size_t n = 16;
    auto b = randomMatrix(n, 4, rng);
    std::vector<IntMatrix> as;
    for (int i = 0; i < 6; ++i)
        as.push_back(randomMatrix(n, 4, rng));

    OrthogonalTreesNetwork piped(n, matCost(n, 4));
    auto streamed = matMulStream(piped, as, b).totalTime;

    OrthogonalTreesNetwork serial(n, matCost(n, 4));
    ot::vlsi::ModelTime isolated = 0;
    for (const auto &a : as) {
        OrthogonalTreesNetwork one(n, matCost(n, 4));
        isolated += matMulPipelined(one, a, b).time;
    }
    (void)serial;
    EXPECT_LT(streamed, isolated);
}

TEST(MatMulStream, EmptyStream)
{
    OrthogonalTreesNetwork net(4, matCost(4, 3));
    auto r = matMulStream(net, {}, IntMatrix::identity(4));
    EXPECT_TRUE(r.products.empty());
    EXPECT_EQ(r.totalTime, 0u);
}

} // namespace

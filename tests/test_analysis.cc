/**
 * @file
 * Tests for the analysis module: the reconstructed table formulas
 * reproduce the paper's orderings and headline AT^2 claims, the
 * power-law fitter recovers known exponents, and the table renderer
 * aligns columns.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "analysis/asymptotics.hh"
#include "analysis/fitting.hh"
#include "analysis/table.hh"

namespace {

using namespace ot::analysis;
using ot::vlsi::DelayModel;

TEST(PaperFormula, TableISortingRows)
{
    // Spot values at N = 1024 (log N = 10).
    double n = 1024, l = 10;
    auto mesh = paperFormula(Network::Mesh, Problem::Sorting,
                             DelayModel::Logarithmic, n);
    EXPECT_DOUBLE_EQ(mesh.area, n * l * l);
    EXPECT_DOUBLE_EQ(mesh.time, 32.0);

    auto otn = paperFormula(Network::Otn, Problem::Sorting,
                            DelayModel::Logarithmic, n);
    EXPECT_DOUBLE_EQ(otn.area, n * n * l * l);
    EXPECT_DOUBLE_EQ(otn.time, l * l);

    auto otc = paperFormula(Network::Otc, Problem::Sorting,
                            DelayModel::Logarithmic, n);
    EXPECT_DOUBLE_EQ(otc.area, n * n);
    EXPECT_DOUBLE_EQ(otc.time, l * l);

    auto psn = paperFormula(Network::Psn, Problem::Sorting,
                            DelayModel::Logarithmic, n);
    EXPECT_DOUBLE_EQ(psn.time, l * l * l);
}

TEST(PaperFormula, TableISortingAt2Ordering)
{
    // Mesh achieves the optimal N^2 log^2 N; OTC/PSN/CCC sit at
    // N^2 log^4 N; the OTN pays N^2 log^6 N.
    double n = 1 << 16;
    auto at2 = [&](Network net) {
        return paperFormula(net, Problem::Sorting, DelayModel::Logarithmic,
                            n)
            .at2();
    };
    EXPECT_LT(at2(Network::Mesh), at2(Network::Otc));
    EXPECT_DOUBLE_EQ(at2(Network::Otc), at2(Network::Psn));
    EXPECT_DOUBLE_EQ(at2(Network::Psn), at2(Network::Ccc));
    EXPECT_LT(at2(Network::Otc), at2(Network::Otn));
}

TEST(PaperFormula, TableIIBoolMatMulOtcWinsBigOverPsnCcc)
{
    // The headline: N^4 log^2 N vs ~N^6 for the fast baselines.
    for (double n : {64.0, 256.0, 1024.0}) {
        auto otc = paperFormula(Network::Otc, Problem::BoolMatMul,
                                DelayModel::Logarithmic, n);
        auto psn = paperFormula(Network::Psn, Problem::BoolMatMul,
                                DelayModel::Logarithmic, n);
        auto ccc = paperFormula(Network::Ccc, Problem::BoolMatMul,
                                DelayModel::Logarithmic, n);
        EXPECT_LT(otc.at2(), psn.at2() / (n * n / 16));
        EXPECT_LT(otc.at2(), ccc.at2());
        // Same asymptotic time class.
        EXPECT_DOUBLE_EQ(otc.time, psn.time);
    }
    // And the mesh is AT^2-optimal but slow.
    auto mesh = paperFormula(Network::Mesh, Problem::BoolMatMul,
                             DelayModel::Logarithmic, 1024.0);
    auto otc = paperFormula(Network::Otc, Problem::BoolMatMul,
                            DelayModel::Logarithmic, 1024.0);
    EXPECT_LT(mesh.at2(), otc.at2());
    EXPECT_GT(mesh.time, otc.time);
}

TEST(PaperFormula, TableIIIConnectedComponentsHeadline)
{
    // OTC: AT^2 = N^2 log^8 N beats everything; mesh/PSN/CCC are
    // Omega(N^4 / polylog).  N^2 log^8 N < N^4 needs N > log^4 N, so
    // evaluate at a properly asymptotic size.
    double n = 1 << 24, l = 24;
    auto otc = paperFormula(Network::Otc, Problem::ConnectedComponents,
                            DelayModel::Logarithmic, n);
    EXPECT_DOUBLE_EQ(otc.at2(), n * n * std::pow(l, 8.0));
    auto otn = paperFormula(Network::Otn, Problem::ConnectedComponents,
                            DelayModel::Logarithmic, n);
    EXPECT_DOUBLE_EQ(otn.at2(), n * n * std::pow(l, 10.0));
    for (Network slow : {Network::Mesh, Network::Psn, Network::Ccc}) {
        auto s = paperFormula(slow, Problem::ConnectedComponents,
                              DelayModel::Logarithmic, n);
        EXPECT_LT(otc.at2(), s.at2()) << toString(slow);
        EXPECT_LT(otn.at2(), s.at2()) << toString(slow);
    }
}

TEST(PaperFormula, MstOtcPaysOneLogOfAreaOverCc)
{
    double n = 1024, l = 10;
    auto cc = paperFormula(Network::Otc, Problem::ConnectedComponents,
                           DelayModel::Logarithmic, n);
    auto mst = paperFormula(Network::Otc, Problem::Mst,
                            DelayModel::Logarithmic, n);
    EXPECT_DOUBLE_EQ(mst.area, cc.area * l);
    // Abstract: AT^2 = N^2 log^9 N.
    EXPECT_DOUBLE_EQ(mst.at2(), n * n * std::pow(l, 9.0));
}

TEST(PaperFormula, TableIVConstantDelayChanges)
{
    double n = 4096, l = 12;
    // OTN sorts in O(log N); PSN/CCC in O(log^2 N); mesh unchanged.
    EXPECT_DOUBLE_EQ(paperFormula(Network::Otn, Problem::Sorting,
                                  DelayModel::Constant, n)
                         .time,
                     l);
    EXPECT_DOUBLE_EQ(paperFormula(Network::Psn, Problem::Sorting,
                                  DelayModel::Constant, n)
                         .time,
                     l * l);
    EXPECT_DOUBLE_EQ(paperFormula(Network::Mesh, Problem::Sorting,
                                  DelayModel::Constant, n)
                         .time,
                     paperFormula(Network::Mesh, Problem::Sorting,
                                  DelayModel::Logarithmic, n)
                         .time);
    // Section VII-D: mesh/PSN/CCC all land on N^2/log^2 N-area,
    // AT^2 ~ N^2 log^2 N; the OTN pays log^4.
    auto psn = paperFormula(Network::Psn, Problem::Sorting,
                            DelayModel::Constant, n);
    auto otn = paperFormula(Network::Otn, Problem::Sorting,
                            DelayModel::Constant, n);
    EXPECT_DOUBLE_EQ(psn.at2(), n * n * l * l);
    EXPECT_DOUBLE_EQ(otn.at2(), n * n * std::pow(l, 4.0));
}

TEST(At2Crossover, OtcOvertakesPsnForGraphProblems)
{
    // For connected components the OTC wins from small N on.
    double n = at2Crossover(Network::Otc, Network::Psn,
                            Problem::ConnectedComponents,
                            DelayModel::Logarithmic);
    EXPECT_GT(n, 0);
    EXPECT_LE(n, 1 << 12);
}

TEST(At2Crossover, MeshNeverBeatenAtSortingAt2)
{
    // Mesh is AT^2-optimal for sorting: OTC never crosses below it.
    EXPECT_EQ(at2Crossover(Network::Otc, Network::Mesh, Problem::Sorting,
                           DelayModel::Logarithmic, 1e6),
              0);
}

TEST(FitPowerLaw, RecoversExactExponent)
{
    std::vector<double> xs, ys;
    for (double x : {2.0, 4.0, 8.0, 16.0, 32.0}) {
        xs.push_back(x);
        ys.push_back(3.0 * x * x); // y = 3 x^2
    }
    auto fit = fitPowerLaw(xs, ys);
    EXPECT_NEAR(fit.exponent, 2.0, 1e-9);
    EXPECT_NEAR(fit.coefficient, 3.0, 1e-9);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(FitPowerLaw, NoisyDataStillClose)
{
    std::vector<double> xs, ys;
    double wob = 0.9;
    for (double x = 4; x <= 4096; x *= 2) {
        xs.push_back(x);
        ys.push_back(wob * std::pow(x, 1.5));
        wob = wob < 1.0 ? 1.1 : 0.9;
    }
    auto fit = fitPowerLaw(xs, ys);
    EXPECT_NEAR(fit.exponent, 1.5, 0.05);
    EXPECT_GT(fit.r2, 0.99);
}

TEST(FitPowerLawInLogN, RecoversPolylogExponent)
{
    std::vector<double> xs, ys;
    for (double x = 16; x <= 65536; x *= 4) {
        xs.push_back(x);
        double l = std::log2(x);
        ys.push_back(5.0 * l * l); // log^2 N
    }
    auto fit = fitPowerLawInLogN(xs, ys);
    EXPECT_NEAR(fit.exponent, 2.0, 1e-9);
}

TEST(TextTable, AlignsColumns)
{
    TextTable t({"net", "area", "time"});
    t.addRow({"mesh", "1", "32"});
    t.addRow({"OTN", "1048576", "100"});
    auto s = t.str();
    // Header, rule, two rows.
    EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
    EXPECT_NE(s.find("net"), std::string::npos);
    EXPECT_NE(s.find("----"), std::string::npos);
    EXPECT_NE(s.find("1048576"), std::string::npos);
}

TEST(Format, Quantities)
{
    EXPECT_EQ(formatQuantity(950), "950");
    EXPECT_EQ(formatQuantity(1500), "1.50K");
    EXPECT_EQ(formatQuantity(2.5e6), "2.50M");
    EXPECT_EQ(formatQuantity(1e12), "1T");
    EXPECT_EQ(formatRatio(2.0), "2.00x");
    EXPECT_EQ(formatExponent("N", 1.98), "N^1.98");
}

TEST(Names, AllEnumerantsNamed)
{
    for (Network n : {Network::Mesh, Network::Psn, Network::Ccc,
                      Network::Otn, Network::Otc})
        EXPECT_NE(toString(n), "?");
    for (Problem p :
         {Problem::Sorting, Problem::BoolMatMul,
          Problem::ConnectedComponents, Problem::Mst})
        EXPECT_NE(toString(p), "?");
}

} // namespace

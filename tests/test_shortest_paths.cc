/**
 * @file
 * Tests for shortest paths: the Dijkstra / Floyd-Warshall references
 * and the OTN's Bellman-Ford SSSP and (min, +)-squaring APSP.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/fitting.hh"
#include "graph/generators.hh"
#include "graph/reference_algorithms.hh"
#include "otn/shortest_paths.hh"
#include "sim/rng.hh"

namespace {

using namespace ot;
using namespace ot::otn;
using graph::kUnreachable;
using sim::Rng;
using vlsi::CostModel;
using vlsi::DelayModel;

CostModel
pathCost(std::size_t n, std::uint64_t max_w)
{
    return {DelayModel::Logarithmic, pathWordFormat(n, max_w)};
}

TEST(DijkstraReference, PathGraph)
{
    graph::WeightedGraph g(4);
    g.addEdge(0, 1, 2);
    g.addEdge(1, 2, 3);
    g.addEdge(2, 3, 4);
    auto d = graph::dijkstra(g, 0);
    EXPECT_EQ(d, (std::vector<std::uint64_t>{0, 2, 5, 9}));
}

TEST(DijkstraReference, PicksShorterDetour)
{
    graph::WeightedGraph g(4);
    g.addEdge(0, 1, 10);
    g.addEdge(0, 2, 1);
    g.addEdge(2, 1, 2);
    auto d = graph::dijkstra(g, 0);
    EXPECT_EQ(d[1], 3u);
    EXPECT_EQ(d[3], kUnreachable);
}

TEST(FloydWarshallReference, MatchesDijkstraPerRow)
{
    Rng rng(1);
    auto g = graph::randomWeightedConnected(12, 10, rng);
    auto fw = graph::floydWarshall(g);
    for (std::size_t s = 0; s < 12; ++s) {
        auto d = graph::dijkstra(g, s);
        for (std::size_t v = 0; v < 12; ++v)
            EXPECT_EQ(fw(s, v), d[v]) << s << "->" << v;
    }
}

TEST(SsspOtn, LineGraph)
{
    graph::WeightedGraph g(5);
    for (std::size_t v = 0; v + 1 < 5; ++v)
        g.addEdge(v, v + 1, v + 1);
    OrthogonalTreesNetwork net(8, pathCost(8, 5));
    auto r = ssspOtn(net, g, 0);
    EXPECT_EQ(r.dist, (std::vector<std::uint64_t>{0, 1, 3, 6, 10}));
    EXPECT_GT(r.time, 0u);
}

TEST(SsspOtn, UnreachableVertices)
{
    graph::WeightedGraph g(6);
    g.addEdge(0, 1, 1);
    g.addEdge(2, 3, 1);
    OrthogonalTreesNetwork net(8, pathCost(8, 1));
    auto r = ssspOtn(net, g, 0);
    EXPECT_EQ(r.dist[1], 1u);
    EXPECT_EQ(r.dist[2], kUnreachable);
    EXPECT_EQ(r.dist[5], kUnreachable);
}

class SsspRandom
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>>
{
};

TEST_P(SsspRandom, MatchesDijkstra)
{
    auto [n, seed] = GetParam();
    Rng rng(static_cast<std::uint64_t>(seed) * 271 + n);
    auto g = graph::randomWeightedConnected(n, 2 * n, rng);
    std::size_t src = rng.uniform(0, n - 1);
    OrthogonalTreesNetwork net(n, pathCost(n, n * n));
    auto r = ssspOtn(net, g, src);
    EXPECT_EQ(r.dist, graph::dijkstra(g, src)) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SsspRandom,
    ::testing::Combine(::testing::Values(4, 8, 16, 32),
                       ::testing::Values(1, 2, 3)));

TEST(SsspOtn, EarlyExitOnLowDiameter)
{
    // A star: every vertex one hop from the hub, so two rounds settle
    // everything and the third detects convergence.
    std::size_t n = 32;
    graph::WeightedGraph g(n);
    for (std::size_t v = 1; v < n; ++v)
        g.addEdge(0, v, v);
    OrthogonalTreesNetwork net(n, pathCost(n, n));
    auto r = ssspOtn(net, g, 0);
    EXPECT_LE(r.rounds, 3u);
    for (std::size_t v = 1; v < n; ++v)
        EXPECT_EQ(r.dist[v], v);
}

TEST(ApspOtn, MatchesFloydWarshall)
{
    Rng rng(2);
    for (std::size_t n : {4, 8, 16}) {
        auto g = graph::randomWeightedConnected(n, n, rng);
        OrthogonalTreesNetwork net(n, pathCost(n, n * n));
        auto r = apspOtn(net, g);
        EXPECT_EQ(r.dist, graph::floydWarshall(g)) << "n=" << n;
        EXPECT_EQ(r.squarings, ot::vlsi::logCeilAtLeast1(n));
    }
}

TEST(ApspOtn, DisconnectedStaysUnreachable)
{
    graph::WeightedGraph g(6);
    g.addEdge(0, 1, 2);
    g.addEdge(3, 4, 2);
    OrthogonalTreesNetwork net(8, pathCost(8, 2));
    auto r = apspOtn(net, g);
    EXPECT_EQ(r.dist(0, 1), 2u);
    EXPECT_EQ(r.dist(0, 3), kUnreachable);
    EXPECT_EQ(r.dist(5, 5), 0u);
}

TEST(ApspOtn, TimeIsPipelinedNearLinearPerSquaring)
{
    // Each (min,+) squaring is a Section III-A pipeline: N rows one
    // word-beat apart; log N squarings total.
    Rng rng(3);
    std::vector<double> ns, times;
    for (std::size_t n : {8, 16, 32, 64}) {
        auto g = graph::randomWeightedConnected(n, n, rng);
        OrthogonalTreesNetwork net(n, pathCost(n, n * n));
        auto r = apspOtn(net, g);
        ns.push_back(static_cast<double>(n));
        times.push_back(static_cast<double>(r.time));
    }
    auto fit = analysis::fitPowerLaw(ns, times);
    EXPECT_GT(fit.exponent, 0.7);
    EXPECT_LT(fit.exponent, 1.5); // ~N log N: pipelined, not N^2
}

} // namespace

/**
 * @file
 * Differential fuzzing along the topology-registry axis: random
 * inputs drawn per (algorithm, topology, size, seed) cell, each run
 * through the registry-built machine and checked against the
 * sequential reference — the same shape as the ShadowOtc fuzzers, but
 * with the *registry* as the fuzzed dimension, so a newly registered
 * topology is fuzzed with zero new code.  Also pins the determinism
 * contract per machine: reruns after reset() reproduce model times
 * exactly, and the primitive accounting hooks are pure.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "graph/generators.hh"
#include "graph/reference_algorithms.hh"
#include "linalg/reference.hh"
#include "sim/rng.hh"
#include "topo/machine.hh"
#include "topo/registry.hh"

namespace {

using namespace ot;
using sim::Rng;
using topo::Algo;

std::unique_ptr<topo::Machine>
buildFor(const std::string &net, Algo algo, std::size_t n)
{
    return topo::registry().build(topo::resolveSpec(
        net, algo, n, vlsi::DelayModel::Logarithmic, false));
}

TEST(TopoFuzz, SortMatchesReferenceOnEveryTopology)
{
    for (const std::string &net : topo::registry().names()) {
        for (std::size_t n : {8, 16, 32}) {
            auto machine = buildFor(net, Algo::Sort, n);
            for (std::uint64_t seed = 1; seed <= 5; ++seed) {
                Rng rng(seed * 977 + n);
                std::vector<std::uint64_t> values(n);
                for (auto &v : values)
                    v = rng.uniform(0, 4 * n);
                auto expect = values;
                std::sort(expect.begin(), expect.end());
                machine->reset();
                auto run = machine->runSort(values);
                ASSERT_EQ(run.sorted, expect)
                    << net << " n=" << n << " seed=" << seed;
            }
        }
    }
}

TEST(TopoFuzz, GraphAlgorithmsMatchReferencesOnEveryTopology)
{
    for (const std::string &net : topo::registry().names()) {
        for (std::uint64_t seed = 1; seed <= 3; ++seed) {
            const std::size_t n = 16;
            Rng rng(seed * 31 + 7);

            auto machine = buildFor(net, Algo::ConnectedComponents, n);
            auto g = graph::randomGnp(n, 0.15, rng);
            auto cc = machine->runConnectedComponents(g);
            ASSERT_EQ(cc.labels, graph::connectedComponents(g))
                << net << " cc seed=" << seed;

            auto wg = graph::randomWeightedConnected(n, 2 * n, rng);
            auto mstMachine = buildFor(net, Algo::Mst, n);
            auto mst = mstMachine->runMst(wg);
            ASSERT_EQ(mst.edges, graph::kruskalMsf(wg))
                << net << " mst seed=" << seed;

            auto src = static_cast<std::size_t>(rng.uniform(0, n - 1));
            auto pathMachine = buildFor(net, Algo::ShortestPaths, n);
            auto sssp = pathMachine->runShortestPaths(wg, src);
            ASSERT_EQ(sssp.dist, graph::dijkstra(wg, src))
                << net << " sssp seed=" << seed;
        }
    }
}

TEST(TopoFuzz, MatrixProductsMatchReferencesOnEveryTopology)
{
    const std::size_t n = 16;
    for (const std::string &net : topo::registry().names()) {
        for (std::uint64_t seed = 1; seed <= 3; ++seed) {
            Rng rng(seed);
            linalg::IntMatrix a(n, n);
            linalg::IntMatrix b(n, n);
            linalg::BoolMatrix ba(n, n, 0);
            linalg::BoolMatrix bb(n, n, 0);
            for (std::size_t i = 0; i < n; ++i)
                for (std::size_t j = 0; j < n; ++j) {
                    a(i, j) = rng.uniform(0, 9);
                    b(i, j) = rng.uniform(0, 9);
                    ba(i, j) = rng.bernoulli(0.3) ? 1 : 0;
                    bb(i, j) = rng.bernoulli(0.3) ? 1 : 0;
                }

            auto machine = buildFor(net, Algo::MatMul, n);
            auto mm = machine->runMatMul(a, b);
            ASSERT_EQ(mm.product, linalg::matMul(a, b))
                << net << " matmul seed=" << seed;

            auto boolMachine = buildFor(net, Algo::BoolMatMul, n);
            auto bmm = boolMachine->runBoolMatMul(ba, bb);
            auto expect = linalg::boolMatMul(ba, bb);
            for (std::size_t i = 0; i < n; ++i)
                for (std::size_t j = 0; j < n; ++j)
                    ASSERT_EQ(bmm.product(i, j) != 0, expect(i, j) != 0)
                        << net << " boolmm seed=" << seed << " at ("
                        << i << ", " << j << ")";
        }
    }
}

TEST(TopoFuzz, RerunsAfterResetReproduceModelTimesExactly)
{
    for (const std::string &net : topo::registry().names()) {
        const std::size_t n = 16;
        auto machine = buildFor(net, Algo::Sort, n);
        Rng rng(42);
        std::vector<std::uint64_t> values(n);
        for (auto &v : values)
            v = rng.uniform(0, 99);
        machine->reset();
        auto first = machine->runSort(values);
        std::uint64_t firstSteps = machine->steps();
        machine->reset();
        auto second = machine->runSort(values);
        EXPECT_EQ(first.time, second.time) << net;
        EXPECT_EQ(machine->steps(), firstSteps) << net;
    }
}

TEST(TopoFuzz, PrimitiveHooksArePureAndPositive)
{
    for (const std::string &net : topo::registry().names()) {
        auto machine = buildFor(net, Algo::Sort, 32);
        for (std::size_t dist : {1, 2, 8, 16}) {
            auto a = machine->exchangeStepCost(dist);
            auto b = machine->exchangeStepCost(dist);
            EXPECT_EQ(a, b) << net << " dist=" << dist;
            EXPECT_GT(a, 0u) << net << " dist=" << dist;
        }
        EXPECT_EQ(machine->broadcastCost(), machine->broadcastCost())
            << net;
        EXPECT_GT(machine->broadcastCost(), 0u) << net;
        EXPECT_EQ(machine->reduceCost(), machine->reduceCost()) << net;
        EXPECT_GT(machine->reduceCost(), 0u) << net;
    }
}

} // namespace

/**
 * @file
 * The topology registry contract: unique names, sorted iteration,
 * spec resolution (the pre-plugin cache-key semantics, preserved),
 * spec-token and JSON round-trips with topology names, and the
 * malformed-spec diagnostics.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "topo/fat_tree.hh"
#include "topo/machine.hh"
#include "topo/registry.hh"
#include "workload/spec.hh"

namespace {

using namespace ot;
using topo::Algo;
using topo::MachineSpec;

TEST(TopoRegistry, NamesAreSortedAndSummarized)
{
    auto names = topo::registry().names();
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
    for (const std::string &name : names) {
        const topo::TopoInfo *info = topo::registry().find(name);
        ASSERT_NE(info, nullptr) << name;
        EXPECT_EQ(info->name, name);
        EXPECT_FALSE(info->summary.empty()) << name;
        EXPECT_NE(info->build, nullptr) << name;
    }
    EXPECT_EQ(topo::registry().find("no-such-topology"), nullptr);
}

TEST(TopoRegistry, SummaryJoinsEveryNameForDiagnostics)
{
    std::string summary = topo::netNamesSummary();
    for (const std::string &name : topo::registry().names())
        EXPECT_NE(summary.find(name), std::string::npos) << name;
    EXPECT_EQ(std::count(summary.begin(), summary.end(), '|') + 1,
              static_cast<long>(topo::registry().names().size()));
}

TEST(TopoRegistryDeath, DuplicateRegistrationAborts)
{
    auto dup = [] {
        topo::Registry r;
        topo::TopoInfo info{"twice", "a test entry",
                            [](const MachineSpec &spec) {
                                return std::unique_ptr<topo::Machine>(
                                    new topo::FatTreeMachine(spec));
                            }};
        r.add(info);
        r.add(info);
    };
    EXPECT_DEATH(dup(), "duplicate topology registration 'twice'");
}

TEST(TopoRegistry, ResolveSpecPreservesOtcFamilySplit)
{
    using vlsi::DelayModel;
    // SORT-OTC runs natively with cycles of log N...
    auto sort = topo::resolveSpec("otc", Algo::Sort, 32,
                                  DelayModel::Logarithmic, false);
    EXPECT_EQ(sort.topo, "otc");
    EXPECT_EQ(sort.cycleLen, 5u);
    // ...the Table II Boolean machine emulates with cycles of log^2 N...
    auto boolmm = topo::resolveSpec("otc", Algo::BoolMatMul, 32,
                                    DelayModel::Logarithmic, false);
    EXPECT_EQ(boolmm.topo, "otc-emu");
    EXPECT_EQ(boolmm.cycleLen, 25u);
    // ...and everything else emulates with cycles of log N.
    auto mst = topo::resolveSpec("otc", Algo::Mst, 32,
                                 DelayModel::Logarithmic, false);
    EXPECT_EQ(mst.topo, "otc-emu");
    EXPECT_EQ(mst.cycleLen, 5u);
    // Non-OTC names map to themselves, cycle-free.
    for (const char *net : {"otn", "mesh", "fattree", "d2d-mot"}) {
        auto spec = topo::resolveSpec(net, Algo::Sort, 32,
                                      DelayModel::Logarithmic, false);
        EXPECT_EQ(spec.topo, net);
        EXPECT_EQ(spec.cycleLen, 0u);
        EXPECT_EQ(spec.n, 32u);
    }
}

TEST(TopoRegistry, SpecToStringNamesShapeAndCostRules)
{
    MachineSpec spec;
    spec.topo = "fattree";
    spec.n = 64;
    spec.model = vlsi::DelayModel::Logarithmic;
    spec.wordBits = 12;
    EXPECT_EQ(toString(spec), "fattree:n=64:log:w=12");
    spec.topo = "otc";
    spec.cycleLen = 6;
    spec.scaled = true;
    EXPECT_EQ(toString(spec), "otc:n=64:l=6:log:w=12:scaled");
}

TEST(TopoRegistry, SpecKeysOrderByEveryField)
{
    auto base = topo::resolveSpec("mot", Algo::Sort, 32,
                                  vlsi::DelayModel::Logarithmic, false);
    auto other = base;
    EXPECT_EQ(base, other);
    other.topo = "d2d-mot";
    EXPECT_NE(base, other);
    other = base;
    other.n = 64;
    EXPECT_NE(base, other);
    other = base;
    other.wordBits += 1;
    EXPECT_NE(base, other);
    other = base;
    other.scaled = true;
    EXPECT_NE(base, other);
}

TEST(TopoRegistry, InstanceTokensRoundTripEveryTopology)
{
    for (const std::string &net : topo::registry().names()) {
        workload::InstanceSpec inst;
        inst.algo = Algo::ShortestPaths;
        inst.net = net;
        inst.n = 16;
        inst.seed = 7;
        std::string token = workload::toToken(inst);
        workload::InstanceSpec back;
        std::string err;
        ASSERT_TRUE(workload::parseInstance(token, back, err))
            << token << ": " << err;
        EXPECT_EQ(back.net, net);
        EXPECT_EQ(back.algo, Algo::ShortestPaths);
        EXPECT_EQ(back.seed, 7u);
    }
}

TEST(TopoRegistry, WorkloadJsonRoundTripsTopologyTokens)
{
    workload::WorkloadSpec spec;
    std::uint64_t seed = 1;
    for (const std::string &net : topo::registry().names())
        spec.instances.push_back({Algo::Sort, net, 16,
                                  vlsi::DelayModel::Logarithmic, false,
                                  seed++});
    std::string json = workload::toJson(spec);
    workload::WorkloadSpec back;
    std::string err;
    ASSERT_TRUE(workload::parseWorkloadJson(json, back, err)) << err;
    ASSERT_EQ(back.instances.size(), spec.instances.size());
    for (std::size_t i = 0; i < spec.instances.size(); ++i)
        EXPECT_EQ(back.instances[i].net, spec.instances[i].net) << i;
    EXPECT_EQ(workload::toJson(back), json);
}

TEST(TopoRegistry, UnknownNetDiagnosticListsTheRegistry)
{
    workload::InstanceSpec out;
    std::string err;
    EXPECT_FALSE(workload::parseInstance("sort:hypercube:32:log", out,
                                         err));
    EXPECT_NE(err.find("unknown net 'hypercube'"), std::string::npos)
        << err;
    EXPECT_NE(err.find(topo::netNamesSummary()), std::string::npos)
        << err;
}

} // namespace

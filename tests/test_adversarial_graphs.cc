/**
 * @file
 * Adversarial graph structures targeting the failure modes of
 * hook-and-jump algorithms (see docs/ALGORITHMS.md): long chains
 * (deep hook forests), mutual-hook pairs (2-cycles), label-inverted
 * stars, components merging only in late iterations, and MST inputs
 * where many components pick the same edge.
 */

#include <gtest/gtest.h>

#include "graph/reference_algorithms.hh"
#include "otn/connected_components.hh"
#include "otn/mst.hh"
#include "otn/network.hh"
#include "sim/rng.hh"

namespace {

using namespace ot;
using namespace ot::otn;
using ot::sim::Rng;
using vlsi::CostModel;
using vlsi::DelayModel;
using vlsi::WordFormat;

CostModel
ccCost(std::size_t n)
{
    return {DelayModel::Logarithmic, WordFormat::forProblemSize(n)};
}

void
expectCcMatches(const graph::Graph &g)
{
    OrthogonalTreesNetwork net(g.vertices(), ccCost(g.vertices()));
    auto r = connectedComponentsOtn(net, g);
    EXPECT_EQ(r.labels, graph::connectedComponents(g));
}

TEST(AdversarialCc, LongChainAscendingLabels)
{
    // 0-1-2-...-63: hooks compose into one long chain; pointer
    // jumping must fully collapse it.
    graph::Graph g(64);
    for (std::size_t v = 0; v + 1 < 64; ++v)
        g.addEdge(v, v + 1);
    expectCcMatches(g);
}

TEST(AdversarialCc, LongChainDescendingLabels)
{
    // Same chain with the labels "reversed" by connecting v to v+1
    // through high-numbered hubs: 63-62-...-0 as a path.
    graph::Graph g(64);
    for (std::size_t v = 63; v > 0; --v)
        g.addEdge(v, v - 1);
    expectCcMatches(g);
}

TEST(AdversarialCc, MutualPairLadder)
{
    // Disjoint edges (2i, 2i+1): every component is a mutual-hook pair
    // in iteration one — the 2-cycle fix fires for every pair at once.
    graph::Graph g(32);
    for (std::size_t v = 0; v < 32; v += 2)
        g.addEdge(v, v + 1);
    expectCcMatches(g);
    OrthogonalTreesNetwork net(32, ccCost(32));
    EXPECT_EQ(connectedComponentsOtn(net, g).componentCount, 16u);
}

TEST(AdversarialCc, BinaryTreeShapedComponent)
{
    // Hierarchical merging: vertex v adjacent to v/2 — hook targets
    // change level by level.
    graph::Graph g(64);
    for (std::size_t v = 1; v < 64; ++v)
        g.addEdge(v, v / 2);
    expectCcMatches(g);
}

TEST(AdversarialCc, TwoStarsBridgedByMaxVertex)
{
    // Two min-label stars joined through the largest vertex: the
    // bridge only matters after both stars have collapsed.
    std::size_t n = 32;
    graph::Graph g(n);
    for (std::size_t v = 1; v < n / 2 - 1; ++v)
        g.addEdge(0, v);
    for (std::size_t v = n / 2; v + 1 < n; ++v)
        g.addEdge(n / 2 - 1, v);
    g.addEdge(n / 2 - 2, n - 1);
    g.addEdge(n - 1, n / 2);
    expectCcMatches(g);
    OrthogonalTreesNetwork net(n, ccCost(n));
    EXPECT_EQ(connectedComponentsOtn(net, g).componentCount, 1u);
}

TEST(AdversarialCc, AlternatingLabelCycle)
{
    // An even cycle with alternating small/large labels: every small
    // label is a local minimum; hook targets interleave.
    std::size_t n = 32;
    graph::Graph g(n);
    std::vector<std::size_t> order;
    for (std::size_t i = 0; i < n / 2; ++i) {
        order.push_back(i);
        order.push_back(n / 2 + i);
    }
    for (std::size_t i = 0; i < order.size(); ++i)
        g.addEdge(order[i], order[(i + 1) % order.size()]);
    expectCcMatches(g);
}

TEST(AdversarialCc, ManyIsolatedPlusOneGiant)
{
    std::size_t n = 64;
    graph::Graph g(n);
    for (std::size_t v = 1; v < n / 2; ++v)
        g.addEdge(0, v);
    expectCcMatches(g);
    OrthogonalTreesNetwork net(n, ccCost(n));
    EXPECT_EQ(connectedComponentsOtn(net, g).componentCount,
              1 + n / 2);
}

/** Random stress over several shapes and seeds. */
class AdversarialCcStress : public ::testing::TestWithParam<int>
{
};

TEST_P(AdversarialCcStress, RandomForestsAndCliqueBlobs)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 997);
    std::size_t n = 48;
    graph::Graph g(n);
    // A few random cliques plus a random forest over the rest.
    for (int c = 0; c < 3; ++c) {
        std::size_t base = rng.uniform(0, n - 5);
        for (std::size_t i = base; i < base + 4; ++i)
            for (std::size_t j = i + 1; j < base + 4; ++j)
                g.addEdge(i, j);
    }
    for (int e = 0; e < 20; ++e) {
        auto u = rng.uniform(0, n - 1);
        auto v = rng.uniform(0, n - 1);
        if (u != v)
            g.addEdge(u, v);
    }
    expectCcMatches(g);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdversarialCcStress,
                         ::testing::Range(1, 9));

// ----------------------------------------------------------- MST

void
expectMstMatches(const graph::WeightedGraph &g, std::uint64_t max_w)
{
    CostModel cm(DelayModel::Logarithmic,
                 mstWordFormat(g.vertices(), max_w));
    OrthogonalTreesNetwork net(g.vertices(), cm);
    auto r = mstOtn(net, g);
    EXPECT_EQ(r.edges, graph::kruskalMsf(g));
}

TEST(AdversarialMst, AllComponentsChooseTheSameEdge)
{
    // Star of expensive spokes plus one globally cheapest edge that
    // both its endpoints' components select simultaneously (the
    // mutual 2-cycle case in round one for that pair).
    std::size_t n = 16;
    graph::WeightedGraph g(n);
    g.addEdge(0, 1, 1);
    std::uint64_t w = 10;
    for (std::size_t v = 2; v < n; ++v) {
        g.addEdge(0, v, w++);
        g.addEdge(1, v, w++);
    }
    expectMstMatches(g, w);
}

TEST(AdversarialMst, ChainOfForcedMerges)
{
    // Weights force one merge per Boruvka phase along a chain.
    std::size_t n = 16;
    graph::WeightedGraph g(n);
    for (std::size_t v = 0; v + 1 < n; ++v)
        g.addEdge(v, v + 1, 1 + v);
    expectMstMatches(g, n);
}

TEST(AdversarialMst, HeavyCycleLightTree)
{
    // A cycle whose heaviest edge must be dropped.
    std::size_t n = 12;
    graph::WeightedGraph g(n);
    for (std::size_t v = 0; v < n; ++v)
        g.addEdge(v, (v + 1) % n, v + 1);
    expectMstMatches(g, n);
    CostModel cm(DelayModel::Logarithmic, mstWordFormat(n, n));
    OrthogonalTreesNetwork net(n, cm);
    auto r = mstOtn(net, g);
    // The weight-n edge (n-1, 0) is the cycle's heaviest: excluded.
    for (const auto &e : r.edges)
        EXPECT_LT(e.w, n);
}

TEST(AdversarialMst, TwoClustersOneBridge)
{
    std::size_t n = 16;
    graph::WeightedGraph g(n);
    std::uint64_t w = 1;
    for (std::size_t i = 0; i < n / 2; ++i)
        for (std::size_t j = i + 1; j < n / 2; ++j)
            g.addEdge(i, j, w++);
    for (std::size_t i = n / 2; i < n; ++i)
        for (std::size_t j = i + 1; j < n; ++j)
            g.addEdge(i, j, w++);
    g.addEdge(0, n - 1, w); // the only bridge, heaviest edge of all
    expectMstMatches(g, w + 1);
    CostModel cm(DelayModel::Logarithmic, mstWordFormat(n, w + 1));
    OrthogonalTreesNetwork net(n, cm);
    auto r = mstOtn(net, g);
    // The bridge must be in the MST despite its weight.
    bool has_bridge = false;
    for (const auto &e : r.edges)
        has_bridge |= (e.u == 0 && e.v == n - 1);
    EXPECT_TRUE(has_bridge);
}

} // namespace

/**
 * @file
 * Tests for the SIMD batch-kernel layer (src/simd) and the contract
 * the rest of the tree builds on: every compiled vector backend is
 * bit-identical to the scalar fallback in registers, model time,
 * stats counters and trace streams — at any OT_HOST_THREADS — and the
 * OT_SIMD override dies loudly instead of silently falling back.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "otc/emulated_otn.hh"
#include "otc/network.hh"
#include "otc/sort.hh"
#include "otn/bitonic.hh"
#include "otn/network.hh"
#include "otn/patterns.hh"
#include "otn/sort.hh"
#include "sim/rng.hh"
#include "simd/backend.hh"
#include "simd/kernels.hh"
#include "simd/regfile.hh"
#include "trace/export.hh"
#include "trace/tracer.hh"

namespace {

using namespace ot;
using otn::OrthogonalTreesNetwork;
using otn::Reg;
using sim::Rng;
using vlsi::CostModel;
using vlsi::DelayModel;
using vlsi::WordFormat;

CostModel
logCost(std::size_t n)
{
    return {DelayModel::Logarithmic, WordFormat::forProblemSize(n)};
}

/** The vector backends this build can actually run (may be empty). */
std::vector<simd::Backend>
vectorBackends()
{
    std::vector<simd::Backend> out;
    for (simd::Backend b : {simd::Backend::Avx2, simd::Backend::Neon})
        if (simd::backendAvailable(b))
            out.push_back(b);
    return out;
}

std::vector<std::uint64_t>
randomWords(Rng &rng, std::size_t n, std::uint64_t hi)
{
    std::vector<std::uint64_t> v(n);
    for (auto &w : v) {
        w = rng.uniform(0, hi);
        if (rng.uniform(0, 9) == 0)
            w = simd::kNullWord; // exercise the absent-value word
    }
    return v;
}

// ----------------------------------------------------------------------
// RegFile
// ----------------------------------------------------------------------

TEST(RegFile, PlanesAreZeroedDisjointAndAligned)
{
    simd::RegFile rf(3, 37); // odd size: stride rounds up
    EXPECT_EQ(rf.planes(), 3u);
    EXPECT_EQ(rf.planeSize(), 37u);
    for (unsigned p = 0; p < 3; ++p) {
        auto addr = reinterpret_cast<std::uintptr_t>(rf.plane(p));
        EXPECT_EQ(addr % simd::RegFile::kAlign, 0u) << "plane " << p;
        for (std::size_t i = 0; i < 37; ++i)
            ASSERT_EQ(rf.at(p, i), 0u);
    }
    for (std::size_t i = 0; i < 37; ++i)
        rf.at(1, i) = i + 1;
    for (std::size_t i = 0; i < 37; ++i) {
        ASSERT_EQ(rf.at(0, i), 0u) << "plane 0 clobbered at " << i;
        ASSERT_EQ(rf.at(2, i), 0u) << "plane 2 clobbered at " << i;
    }
}

// ----------------------------------------------------------------------
// Kernel-level differential: every vector kernel vs the scalar one
// ----------------------------------------------------------------------

class KernelDifferential
    : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(KernelDifferential, AllKernelsMatchScalar)
{
    const std::size_t n = GetParam();
    const auto &sc = simd::scalarKernels();
    Rng rng(8821 + n);
    const auto a = randomWords(rng, n, ~std::uint64_t{0} - 1);
    const auto b = randomWords(rng, n, ~std::uint64_t{0} - 1);
    // Keys that sometimes hit their own index (the select/scatter
    // kernels' match condition) and sometimes miss.
    std::vector<std::uint64_t> key(n);
    for (std::size_t j = 0; j < n; ++j)
        key[j] = rng.uniform(0, 1) ? j : rng.uniform(0, 2 * n + 1);

    for (simd::Backend backend : vectorBackends()) {
        SCOPED_TRACE(simd::toString(backend));
        const auto &vec = simd::kernelsFor(backend);

        std::vector<std::uint64_t> s(n), v(n);
        sc.fill(s.data(), n, 0xfeedu);
        vec.fill(v.data(), n, 0xfeedu);
        EXPECT_EQ(s, v) << "fill";

        EXPECT_EQ(sc.countNonzero(a.data(), n),
                  vec.countNonzero(a.data(), n));
        EXPECT_EQ(sc.reduceSum(a.data(), n), vec.reduceSum(a.data(), n));
        EXPECT_EQ(sc.reduceMin(a.data(), n), vec.reduceMin(a.data(), n));
        EXPECT_EQ(sc.reduceMin(a.data(), 0), vec.reduceMin(a.data(), 0));

        for (std::uint64_t i : {std::uint64_t{0}, std::uint64_t{n / 2}}) {
            sc.cmpRankRow(s.data(), a.data(), b.data(), n, i);
            vec.cmpRankRow(v.data(), a.data(), b.data(), n, i);
            EXPECT_EQ(s, v) << "cmpRankRow i=" << i;
        }
        // Equal inputs: only the index tiebreak decides.
        sc.cmpRankRow(s.data(), a.data(), a.data(), n, n / 2);
        vec.cmpRankRow(v.data(), a.data(), a.data(), n, n / 2);
        EXPECT_EQ(s, v) << "cmpRankRow ties";

        sc.selectEqIndexRow(s.data(), key.data(), a.data(), n);
        vec.selectEqIndexRow(v.data(), key.data(), a.data(), n);
        EXPECT_EQ(s, v) << "selectEqIndexRow";

        std::vector<std::uint64_t> scnt(n, 0), vcnt(n, 0);
        sc.fill(s.data(), n, simd::kNullWord);
        vec.fill(v.data(), n, simd::kNullWord);
        sc.scatterEqIndexRow(s.data(), scnt.data(), key.data(), a.data(),
                             n);
        vec.scatterEqIndexRow(v.data(), vcnt.data(), key.data(), a.data(),
                              n);
        EXPECT_EQ(s, v) << "scatterEqIndexRow out";
        EXPECT_EQ(scnt, vcnt) << "scatterEqIndexRow cnt";

        for (std::uint64_t target : {std::uint64_t{0},
                                     std::uint64_t{n - 1},
                                     std::uint64_t{3 * n}}) {
            std::uint64_t sout = 7, smatches = 0, vout = 7, vmatches = 0;
            sc.pickEqIndexAccum(&sout, &smatches, key.data(), a.data(), n,
                                target);
            vec.pickEqIndexAccum(&vout, &vmatches, key.data(), a.data(),
                                 n, target);
            EXPECT_EQ(sout, vout) << "pickEqIndexAccum " << target;
            EXPECT_EQ(smatches, vmatches);
        }

        // rotateCycles: single segment, contiguous batch, and a
        // column-style strided batch.
        s = a;
        v = a;
        sc.rotateCycles(s.data(), 1, 0, n);
        vec.rotateCycles(v.data(), 1, 0, n);
        EXPECT_EQ(s, v) << "rotateCycles single";
        if (n % 4 == 0) {
            s = a;
            v = a;
            sc.rotateCycles(s.data(), 4, n / 4, n / 4);
            vec.rotateCycles(v.data(), 4, n / 4, n / 4);
            EXPECT_EQ(s, v) << "rotateCycles batch";
            s = a;
            v = a;
            sc.rotateCycles(s.data(), 2, n / 2, n / 4);
            vec.rotateCycles(v.data(), 2, n / 2, n / 4);
            EXPECT_EQ(s, v) << "rotateCycles strided";
        }
    }
}

// Odd lengths drive the scalar epilogues of the vector kernels.
INSTANTIATE_TEST_SUITE_P(Sweep, KernelDifferential,
                         ::testing::Values(4, 5, 16, 17, 64, 256, 1024));

TEST(KernelDifferential, CompexLinearFullBitonicSchedule)
{
    const std::size_t total = 1024;
    const auto &sc = simd::scalarKernels();
    Rng rng(31337);
    const auto init = randomWords(rng, total, ~std::uint64_t{0} - 1);

    for (simd::Backend backend : vectorBackends()) {
        SCOPED_TRACE(simd::toString(backend));
        const auto &vec = simd::kernelsFor(backend);
        std::vector<std::uint64_t> s = init, v = init;
        for (std::size_t size = 2; size <= total; size <<= 1)
            for (std::size_t d = size / 2; d >= 1; d >>= 1) {
                sc.compexLinear(s.data(), total, d, size);
                vec.compexLinear(v.data(), total, d, size);
                ASSERT_EQ(s, v) << "size=" << size << " d=" << d;
            }
        // The schedule is a complete bitonic sort; both ends must be
        // actually sorted, not merely identical.
        EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
    }
}

// ----------------------------------------------------------------------
// Backend resolution and the OT_SIMD override
// ----------------------------------------------------------------------

TEST(SimdBackend, ScalarIsAlwaysThere)
{
    EXPECT_TRUE(simd::backendCompiled(simd::Backend::Scalar));
    EXPECT_TRUE(simd::backendAvailable(simd::Backend::Scalar));
    EXPECT_STREQ(simd::toString(simd::Backend::Scalar), "scalar");
    EXPECT_EQ(simd::backendFromSpec("scalar"), simd::Backend::Scalar);
    // The cached table matches the active backend's.
    EXPECT_EQ(&simd::kernels(), &simd::kernelsFor(simd::activeBackend()));
}

TEST(SimdBackend, EnvOverrideSelectsAndRestores)
{
    const char *saved = std::getenv("OT_SIMD");
    std::string saved_value = saved ? saved : "";

    ::setenv("OT_SIMD", "scalar", 1);
    EXPECT_EQ(simd::resolveBackendFromEnv(), simd::Backend::Scalar);
    ::unsetenv("OT_SIMD");
    // Unset: the best available backend, never an unavailable one.
    simd::Backend def = simd::resolveBackendFromEnv();
    EXPECT_TRUE(simd::backendAvailable(def));
    for (simd::Backend b : vectorBackends()) {
        ::setenv("OT_SIMD", simd::toString(b), 1);
        EXPECT_EQ(simd::resolveBackendFromEnv(), b);
    }

    if (saved)
        ::setenv("OT_SIMD", saved_value.c_str(), 1);
    else
        ::unsetenv("OT_SIMD");
}

using SimdBackendDeathTest = ::testing::Test;

TEST(SimdBackendDeathTest, UnknownSpecAborts)
{
    EXPECT_DEATH(simd::backendFromSpec("wombat"), "OT_SIMD");
    EXPECT_DEATH(simd::backendFromSpec(""), "OT_SIMD");
    EXPECT_DEATH(simd::backendFromSpec("AVX2"), "OT_SIMD"); // case-exact
}

TEST(SimdBackendDeathTest, UnavailableBackendRefusesToFallBack)
{
    for (simd::Backend b : {simd::Backend::Avx2, simd::Backend::Neon}) {
        if (!simd::backendAvailable(b)) {
            EXPECT_DEATH(simd::backendFromSpec(simd::toString(b)),
                         "refusing to fall back");
        }
    }
}

TEST(SimdBackendDeathTest, BadEnvValueAborts)
{
    const char *saved = std::getenv("OT_SIMD");
    std::string saved_value = saved ? saved : "";
    ::setenv("OT_SIMD", "sse9", 1);
    EXPECT_DEATH(simd::resolveBackendFromEnv(), "OT_SIMD");
    if (saved)
        ::setenv("OT_SIMD", saved_value.c_str(), 1);
    else
        ::unsetenv("OT_SIMD");
}

// ----------------------------------------------------------------------
// Network-level differential: scalar vs vector, threads 1 and 8
// ----------------------------------------------------------------------

/** Registers, roots, clock, steps and counters must match exactly. */
void
expectSameOtnState(OrthogonalTreesNetwork &a, OrthogonalTreesNetwork &b)
{
    ASSERT_EQ(a.n(), b.n());
    EXPECT_EQ(a.now(), b.now()) << "model time diverged";
    EXPECT_EQ(a.acct().steps(), b.acct().steps()) << "steps diverged";
    const std::size_t plane = a.n() * a.n();
    for (unsigned r = 0; r < otn::kNumRegs; ++r) {
        ASSERT_EQ(std::memcmp(a.regPlane(static_cast<Reg>(r)),
                              b.regPlane(static_cast<Reg>(r)),
                              plane * sizeof(std::uint64_t)),
                  0)
            << "register plane " << r << " diverged";
    }
    for (std::size_t i = 0; i < a.n(); ++i) {
        ASSERT_EQ(a.rowRoot(i), b.rowRoot(i)) << "rowRoot " << i;
        ASSERT_EQ(a.colRoot(i), b.colRoot(i)) << "colRoot " << i;
    }
    const auto &ca = a.stats().counters();
    const auto &cb = b.stats().counters();
    ASSERT_EQ(ca.size(), cb.size()) << "counter sets diverged";
    for (const auto &[name, c] : ca)
        EXPECT_EQ(c.value(), cb.at(name).value()) << "counter " << name;
}

/** Trace streams must be identical event for event. */
void
expectSameTrace(const trace::Tracer &a, const trace::Tracer &b)
{
    ASSERT_EQ(a.events().size(), b.events().size())
        << "trace lengths diverged";
    EXPECT_EQ(a.dropped(), b.dropped());
    for (std::size_t i = 0; i < a.events().size(); ++i)
        ASSERT_TRUE(trace::eventsEqual(a.events()[i], b.events()[i]))
            << "trace event " << i << " diverged";
    EXPECT_EQ(trace::toChromeTraceJson(a), trace::toChromeTraceJson(b));
}

struct DiffCase
{
    std::size_t n;
    unsigned threads;
};

class NetworkDifferential : public ::testing::TestWithParam<DiffCase>
{
};

TEST_P(NetworkDifferential, SortOtn)
{
    const auto [n, threads] = GetParam();
    Rng rng(515 + n);
    std::vector<std::uint64_t> values(n);
    for (auto &v : values)
        v = rng.uniform(0, n - 1);
    std::vector<std::uint64_t> expect = values;
    std::sort(expect.begin(), expect.end());

    OrthogonalTreesNetwork ref(n, logCost(n), {}, threads);
    ref.setSimdBackend(simd::Backend::Scalar);
    trace::Tracer ref_trace;
    ref_trace.setEnabled(true);
    ref.setTracer(&ref_trace);
    auto rs = sortOtn(ref, values);
    EXPECT_EQ(rs.sorted, expect);

    for (simd::Backend backend : vectorBackends()) {
        SCOPED_TRACE(simd::toString(backend));
        OrthogonalTreesNetwork net(n, logCost(n), {}, threads);
        net.setSimdBackend(backend);
        ASSERT_EQ(net.simdBackend(), backend);
        trace::Tracer tr;
        tr.setEnabled(true);
        net.setTracer(&tr);
        auto rv = sortOtn(net, values);
        EXPECT_EQ(rv.sorted, expect);
        EXPECT_EQ(rs.time, rv.time);
        expectSameOtnState(ref, net);
        expectSameTrace(ref_trace, tr);
    }
}

TEST_P(NetworkDifferential, BitonicSortOtn)
{
    const auto [n, threads] = GetParam();
    Rng rng(77 + n);
    std::vector<std::uint64_t> values(n * n);
    for (auto &v : values)
        v = rng.uniform(0, n * n - 1);
    std::vector<std::uint64_t> expect = values;
    std::sort(expect.begin(), expect.end());

    OrthogonalTreesNetwork ref(n, logCost(n * n), {}, threads);
    ref.setSimdBackend(simd::Backend::Scalar);
    trace::Tracer ref_trace;
    ref_trace.setEnabled(true);
    ref.setTracer(&ref_trace);
    auto rs = bitonicSortOtn(ref, values, otn::CompexSchedule::Streamed);
    EXPECT_EQ(rs.sorted, expect);

    for (simd::Backend backend : vectorBackends()) {
        SCOPED_TRACE(simd::toString(backend));
        OrthogonalTreesNetwork net(n, logCost(n * n), {}, threads);
        net.setSimdBackend(backend);
        trace::Tracer tr;
        tr.setEnabled(true);
        net.setTracer(&tr);
        auto rv = bitonicSortOtn(net, values, otn::CompexSchedule::Streamed);
        EXPECT_EQ(rv.sorted, expect);
        EXPECT_EQ(rs.time, rv.time);
        EXPECT_EQ(rs.stages, rv.stages);
        expectSameOtnState(ref, net);
        expectSameTrace(ref_trace, tr);
    }
}

TEST_P(NetworkDifferential, PatternsAndGather)
{
    const auto [n, threads] = GetParam();
    Rng rng(909 + n);
    // key(i): a permutation-ish indirection with some kNull holes.
    std::vector<std::uint64_t> key(n), val(n);
    for (std::size_t i = 0; i < n; ++i) {
        key[i] = rng.uniform(0, 4) == 0 ? otn::kNull
                                        : rng.uniform(0, n - 1);
        val[i] = rng.uniform(0, n - 1);
    }

    auto run = [&](simd::Backend backend, trace::Tracer &tr,
                   std::unique_ptr<OrthogonalTreesNetwork> &out) {
        out = std::make_unique<OrthogonalTreesNetwork>(
            n, logCost(n), ot::layout::LayoutParams{}, threads);
        auto &net = *out;
        net.setSimdBackend(backend);
        tr.setEnabled(true);
        net.setTracer(&tr);
        for (std::size_t i = 0; i < n; ++i) {
            net.reg(Reg::A, i, i) = key[i];
            net.reg(Reg::B, i, i) = val[i];
        }
        diagToRows(net, Reg::A, Reg::C);
        diagToCols(net, Reg::B, Reg::D);
        gatherAtIndex(net, Reg::C, Reg::D, Reg::E, Reg::T);
    };

    trace::Tracer ref_trace;
    std::unique_ptr<OrthogonalTreesNetwork> ref;
    run(simd::Backend::Scalar, ref_trace, ref);
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t want =
            key[i] < n ? val[key[i]] : otn::kNull;
        EXPECT_EQ(ref->reg(Reg::E, i, i), want) << "gather @" << i;
    }

    for (simd::Backend backend : vectorBackends()) {
        SCOPED_TRACE(simd::toString(backend));
        trace::Tracer tr;
        std::unique_ptr<OrthogonalTreesNetwork> net;
        run(backend, tr, net);
        expectSameOtnState(*ref, *net);
        expectSameTrace(ref_trace, tr);
    }
}

TEST_P(NetworkDifferential, SortOtc)
{
    const auto [n, threads] = GetParam();
    Rng rng(1234 + n);
    std::vector<std::uint64_t> values(n);
    for (auto &v : values)
        v = rng.uniform(0, 4 * n);
    std::vector<std::uint64_t> expect = values;
    std::sort(expect.begin(), expect.end());
    CostModel cost(DelayModel::Logarithmic,
                   WordFormat::forProblemSize(4 * n + 1));

    auto run = [&](simd::Backend backend, trace::Tracer &tr) {
        otc::OtcNetwork net(n / 2, 4, cost, threads);
        net.setSimdBackend(backend);
        tr.setEnabled(true);
        net.setTracer(&tr);
        auto r = otc::sortOtc(net, values);
        EXPECT_EQ(r.sorted, expect);
        return std::make_tuple(r.time, net.now(), net.acct().steps());
    };

    trace::Tracer ref_trace;
    auto ref = run(simd::Backend::Scalar, ref_trace);
    for (simd::Backend backend : vectorBackends()) {
        SCOPED_TRACE(simd::toString(backend));
        trace::Tracer tr;
        auto got = run(backend, tr);
        EXPECT_EQ(ref, got);
        expectSameTrace(ref_trace, tr);
    }
}

TEST_P(NetworkDifferential, SortOnEmulatedOtn)
{
    const auto [n, threads] = GetParam();
    Rng rng(4321 + n);
    std::vector<std::uint64_t> values(n);
    for (auto &v : values)
        v = rng.uniform(0, n - 1);
    std::vector<std::uint64_t> expect = values;
    std::sort(expect.begin(), expect.end());

    otc::OtcEmulatedOtn ref(n, logCost(n), 0, threads);
    ref.setSimdBackend(simd::Backend::Scalar);
    auto rs = sortOtn(ref, values);
    EXPECT_EQ(rs.sorted, expect);

    for (simd::Backend backend : vectorBackends()) {
        SCOPED_TRACE(simd::toString(backend));
        otc::OtcEmulatedOtn net(n, logCost(n), 0, threads);
        net.setSimdBackend(backend);
        auto rv = sortOtn(net, values);
        EXPECT_EQ(rv.sorted, expect);
        EXPECT_EQ(rs.time, rv.time);
        expectSameOtnState(ref, net);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NetworkDifferential,
    ::testing::Values(DiffCase{4, 1}, DiffCase{4, 8}, DiffCase{8, 1},
                      DiffCase{16, 8}, DiffCase{32, 1}, DiffCase{32, 8}),
    [](const ::testing::TestParamInfo<DiffCase> &info) {
        return "n" + std::to_string(info.param.n) + "t" +
               std::to_string(info.param.threads);
    });

// The acceptance-size run: registers, roots, clock and counters at
// N = 1024 (traces skipped — the stream is identical at every smaller
// size and the full event buffer would dominate the test's runtime).
TEST(NetworkDifferentialLarge, SortOtn1024)
{
    const std::size_t n = 1024;
    Rng rng(2026);
    std::vector<std::uint64_t> values(n);
    for (auto &v : values)
        v = rng.uniform(0, n - 1);
    std::vector<std::uint64_t> expect = values;
    std::sort(expect.begin(), expect.end());

    OrthogonalTreesNetwork ref(n, logCost(n), {}, 8);
    ref.setSimdBackend(simd::Backend::Scalar);
    auto rs = sortOtn(ref, values);
    EXPECT_EQ(rs.sorted, expect);

    for (simd::Backend backend : vectorBackends()) {
        SCOPED_TRACE(simd::toString(backend));
        OrthogonalTreesNetwork net(n, logCost(n), {}, 8);
        net.setSimdBackend(backend);
        auto rv = sortOtn(net, values);
        EXPECT_EQ(rv.sorted, expect);
        EXPECT_EQ(rs.time, rv.time);
        expectSameOtnState(ref, net);
    }
}

} // namespace

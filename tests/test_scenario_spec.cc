/**
 * @file
 * The scenario spec layer: the `.scn` grammar (accept and reject
 * corpus covering every diagnostic), describeInvalid()'s semantic
 * rules, and the JSON round trip — toJson(parse(toJson(s))) must be
 * byte-identical to toJson(s).
 */

#include <gtest/gtest.h>

#include <string>

#include "scenario/spec.hh"

namespace {

using namespace ot::scenario;
using ot::workload::Algo;

ScenarioSpec
parsed(const std::string &text)
{
    ScenarioSpec spec;
    std::string err;
    EXPECT_TRUE(parseScenario(text, spec, err)) << err;
    return spec;
}

std::string
rejected(const std::string &text)
{
    ScenarioSpec spec;
    std::string err;
    EXPECT_FALSE(parseScenario(text, spec, err)) << "accepted: " << text;
    return err;
}

// ------------------------------------------------------- .scn accepts

TEST(ScnParseTest, FullScenarioWithCommentsAndBlanks)
{
    ScenarioSpec spec = parsed("# header comment\n"
                               "\n"
                               "scenario web # trailing comment\n"
                               "arrival bursty mean=40 duration=9000 "
                               "on=300 off=700 seed=5 max=100 "
                               "seeds=fixed\n"
                               "scheduler sjf workers=4\n"
                               "queue cap=32 shed=defer\n"
                               "client api weight=2 quota=6 slo=800 "
                               "slo_pct=99 mix=sort:otn:32:log\n"
                               "client bulk mix=matmul:otn:16:log,"
                               "sort:otn:64:log\n");
    EXPECT_EQ(spec.name, "web");
    EXPECT_EQ(spec.arrival.kind, ArrivalKind::Bursty);
    EXPECT_EQ(spec.arrival.mean, 40u);
    EXPECT_EQ(spec.arrival.duration, 9000u);
    EXPECT_EQ(spec.arrival.onMean, 300u);
    EXPECT_EQ(spec.arrival.offMean, 700u);
    EXPECT_EQ(spec.arrival.seed, 5u);
    EXPECT_EQ(spec.arrival.maxArrivals, 100u);
    EXPECT_FALSE(spec.arrival.varySeeds);
    EXPECT_EQ(spec.scheduler, SchedulerKind::Sjf);
    EXPECT_EQ(spec.workers, 4u);
    EXPECT_EQ(spec.queueCap, 32u);
    EXPECT_EQ(spec.shed, ShedPolicy::Defer);
    ASSERT_EQ(spec.clients.size(), 2u);
    EXPECT_EQ(spec.clients[0].name, "api");
    EXPECT_EQ(spec.clients[0].weight, 2u);
    EXPECT_EQ(spec.clients[0].quota, 6u);
    EXPECT_EQ(spec.clients[0].slo, 800u);
    EXPECT_EQ(spec.clients[0].sloPct, 99u);
    ASSERT_EQ(spec.clients[0].mix.size(), 1u);
    EXPECT_EQ(spec.clients[0].mix[0].algo, Algo::Sort);
    ASSERT_EQ(spec.clients[1].mix.size(), 2u);
    EXPECT_EQ(spec.clients[1].mix[0].algo, Algo::MatMul);
    EXPECT_EQ(describeInvalid(spec), "");
}

TEST(ScnParseTest, DiurnalOptionsAndDefaults)
{
    ScenarioSpec spec =
        parsed("scenario wave\n"
               "arrival diurnal mean=50 duration=5000 period=1000 "
               "amp=80\n"
               "client c mix=sort:otn:16:log\n");
    EXPECT_EQ(spec.arrival.kind, ArrivalKind::Diurnal);
    EXPECT_EQ(spec.arrival.period, 1000u);
    EXPECT_EQ(spec.arrival.ampPct, 80u);
    EXPECT_TRUE(spec.arrival.varySeeds);
    // Unstated directives keep their defaults.
    EXPECT_EQ(spec.scheduler, SchedulerKind::Fifo);
    EXPECT_EQ(spec.workers, 1u);
    EXPECT_EQ(spec.queueCap, 0u);
    EXPECT_EQ(spec.shed, ShedPolicy::Drop);
    EXPECT_EQ(spec.clients[0].weight, 1u);
    EXPECT_EQ(spec.clients[0].quota, 0u);
    EXPECT_EQ(spec.clients[0].slo, 0u);
    EXPECT_EQ(spec.clients[0].sloPct, 95u);
}

// ------------------------------------------------------- .scn rejects

TEST(ScnParseTest, RejectsEveryScenarioDirectiveError)
{
    EXPECT_EQ(rejected("scenario a\nscenario b\n"),
              "line 2: duplicate scenario directive");
    EXPECT_EQ(rejected("scenario\n"), "line 1: scenario needs a name");
    EXPECT_EQ(rejected("scenario bad!name\n"),
              "line 1: scenario name must be [A-Za-z0-9_-]+");
    EXPECT_EQ(rejected("frobnicate x\n"),
              "line 1: unknown directive 'frobnicate' "
              "(scenario|arrival|scheduler|queue|client)");
}

TEST(ScnParseTest, RejectsEveryArrivalDirectiveError)
{
    EXPECT_EQ(rejected("arrival\n"),
              "line 1: arrival needs a process (poisson|bursty|diurnal)");
    EXPECT_EQ(rejected("arrival uniform\n"),
              "line 1: unknown arrival process 'uniform' "
              "(poisson|bursty|diurnal)");
    EXPECT_EQ(rejected("arrival poisson mean\n"),
              "line 1: expected key=value, got 'mean'");
    EXPECT_EQ(rejected("arrival poisson mean=abc\n"),
              "line 1: bad integer in 'mean=abc'");
    EXPECT_EQ(rejected("arrival poisson rate=3\n"),
              "line 1: unknown arrival option 'rate' "
              "(mean|duration|max|seed|on|off|period|amp|seeds)");
    EXPECT_EQ(rejected("arrival poisson seeds=maybe\n"),
              "line 1: seeds must be vary or fixed");
    EXPECT_EQ(rejected("arrival diurnal amp=100\n"),
              "line 1: amp must be an integer percent in [0, 99]");
    EXPECT_EQ(rejected("arrival poisson mean=1\narrival poisson "
                       "mean=2\n"),
              "line 2: duplicate arrival directive");
}

TEST(ScnParseTest, RejectsEverySchedulerDirectiveError)
{
    EXPECT_EQ(rejected("scheduler\n"),
              "line 1: scheduler needs a policy (fifo|sjf|fair|edf)");
    EXPECT_EQ(rejected("scheduler lifo\n"),
              "line 1: unknown scheduler 'lifo' (fifo|sjf|fair|edf)");
    EXPECT_EQ(rejected("scheduler fifo cap=2\n"),
              "line 1: unknown scheduler option 'cap' (workers)");
    EXPECT_EQ(rejected("scheduler fifo workers\n"),
              "line 1: expected key=value, got 'workers'");
    EXPECT_EQ(rejected("scheduler fifo\nscheduler sjf\n"),
              "line 2: duplicate scheduler directive");
}

TEST(ScnParseTest, RejectsEveryQueueDirectiveError)
{
    EXPECT_EQ(rejected("queue depth=2\n"),
              "line 1: unknown queue option 'depth' (cap|shed)");
    EXPECT_EQ(rejected("queue shed=bounce\n"),
              "line 1: shed must be drop or defer");
    EXPECT_EQ(rejected("queue cap\n"),
              "line 1: expected key=value, got 'cap'");
    EXPECT_EQ(rejected("queue cap=x\n"),
              "line 1: bad integer in 'cap=x'");
    EXPECT_EQ(rejected("queue cap=1\nqueue cap=2\n"),
              "line 2: duplicate queue directive");
}

TEST(ScnParseTest, RejectsEveryClientDirectiveError)
{
    EXPECT_EQ(rejected("client\n"), "line 1: client needs a name");
    EXPECT_EQ(rejected("client bad!\n"),
              "line 1: client name must be [A-Za-z0-9_-]+");
    EXPECT_EQ(rejected("client a mix=sort:otn:16:log\n"
                       "client a mix=sort:otn:16:log\n"),
              "line 2: duplicate client 'a'");
    EXPECT_EQ(rejected("client a burst=1\n"),
              "line 1: unknown client option 'burst' "
              "(weight|quota|slo|slo_pct|mix)");
    EXPECT_EQ(rejected("client a mix=bogus\n"),
              "line 1: bad mix instance 'bogus': expected "
              "algo:net:n:model[:scaled][:seed=K], got 'bogus'");
    EXPECT_EQ(rejected("client a mix=sort:xpu:16:log\n"),
              "line 1: bad mix instance 'sort:xpu:16:log': "
              "unknown net 'xpu' "
              "(ccc|d2d-mot|fattree|hex|mesh|mot|otc|otc-emu|otn|psn|tree)");
}

// ---------------------------------------------------- describeInvalid

ScenarioSpec
minimalValid()
{
    ScenarioSpec spec = demoScenario();
    EXPECT_EQ(describeInvalid(spec), "");
    return spec;
}

TEST(ScenarioValidateTest, CatchesEverySemanticRule)
{
    ScenarioSpec spec = minimalValid();
    spec.name.clear();
    EXPECT_EQ(describeInvalid(spec), "scenario: missing name");

    spec = minimalValid();
    spec.arrival.mean = 0;
    EXPECT_EQ(describeInvalid(spec), "arrival: mean must be >= 1");

    spec = minimalValid();
    spec.arrival.duration = 0;
    EXPECT_EQ(describeInvalid(spec), "arrival: duration must be >= 1");

    spec = minimalValid();
    spec.arrival.mean = 1;
    spec.arrival.duration = 2000000;
    spec.arrival.maxArrivals = 0;
    EXPECT_EQ(describeInvalid(spec),
              "arrival: duration/mean implies more than 1M arrivals; "
              "set max=");

    spec = minimalValid();
    spec.arrival.kind = ArrivalKind::Bursty;
    EXPECT_EQ(describeInvalid(spec),
              "bursty arrival: on and off dwell means must be >= 1");

    spec = minimalValid();
    spec.arrival.kind = ArrivalKind::Diurnal;
    EXPECT_EQ(describeInvalid(spec),
              "diurnal arrival: period must be >= 1");

    spec = minimalValid();
    spec.workers = 0;
    EXPECT_EQ(describeInvalid(spec),
              "scheduler: workers must be >= 1");

    spec = minimalValid();
    spec.clients.clear();
    EXPECT_EQ(describeInvalid(spec), "scenario: no clients");

    spec = minimalValid();
    spec.clients[0].weight = 0;
    EXPECT_EQ(describeInvalid(spec),
              "client 'interactive': weight must be >= 1");

    spec = minimalValid();
    spec.clients[0].sloPct = 97;
    EXPECT_EQ(describeInvalid(spec),
              "client 'interactive': slo_pct must be 50, 95 or 99");

    spec = minimalValid();
    spec.clients[1].mix.clear();
    EXPECT_EQ(describeInvalid(spec), "client 'batch': empty mix");

    spec = minimalValid();
    spec.clients[0].mix[1].n = 1;
    EXPECT_EQ(describeInvalid(spec),
              "client 'interactive': mix instance 1: size out of "
              "range [2, 16384]");

    spec = minimalValid();
    spec.clients[0].mix[0].n = 24;
    EXPECT_EQ(describeInvalid(spec),
              "client 'interactive': mix instance 0: size 24 is not "
              "a power of two");
}

// ----------------------------------------------------- JSON round trip

TEST(ScenarioJsonTest, RoundTripIsByteIdentical)
{
    ScenarioSpec spec = demoScenario();
    std::string json = toJson(spec);

    ScenarioSpec back;
    std::string err;
    ASSERT_TRUE(parseScenarioJson(json, back, err)) << err;
    EXPECT_EQ(back, spec);
    EXPECT_EQ(toJson(back), json);
}

TEST(ScenarioJsonTest, ScnAndJsonAgree)
{
    ScenarioSpec fromScn =
        parsed("scenario web\n"
               "arrival diurnal mean=50 duration=5000 period=1000 "
               "amp=30 seeds=fixed\n"
               "scheduler edf workers=3\n"
               "queue cap=8 shed=defer\n"
               "client api slo=700 slo_pct=50 "
               "mix=sort:otn:32:log:seed=9\n");
    ScenarioSpec back;
    std::string err;
    ASSERT_TRUE(parseScenarioJson(toJson(fromScn), back, err)) << err;
    EXPECT_EQ(back, fromScn);
}

TEST(ScenarioJsonTest, AcceptsKeysInAnyOrder)
{
    ScenarioSpec back;
    std::string err;
    ASSERT_TRUE(parseScenarioJson(
        "{\"workers\": 2, \"scenario\": \"x\","
        " \"clients\": [{\"mix\": [\"sort:otn:16:log\"],"
        " \"name\": \"c\"}],"
        " \"arrival\": {\"duration\": 100, \"mean\": 10}}",
        back, err))
        << err;
    EXPECT_EQ(back.name, "x");
    EXPECT_EQ(back.workers, 2u);
    EXPECT_EQ(back.arrival.mean, 10u);
    ASSERT_EQ(back.clients.size(), 1u);
    EXPECT_EQ(back.clients[0].name, "c");
}

TEST(ScenarioJsonTest, RejectsMalformedDocuments)
{
    ScenarioSpec out;
    std::string err;

    EXPECT_FALSE(parseScenarioJson("{", out, err));
    EXPECT_NE(err.find("at byte"), std::string::npos);

    EXPECT_FALSE(parseScenarioJson("{\"bogus\": 1}", out, err));
    EXPECT_NE(err.find("unknown scenario key 'bogus'"),
              std::string::npos);

    EXPECT_FALSE(parseScenarioJson(
        "{\"arrival\": {\"cadence\": 1}}", out, err));
    EXPECT_NE(err.find("unknown arrival key 'cadence'"),
              std::string::npos);

    EXPECT_FALSE(parseScenarioJson(
        "{\"clients\": [{\"tier\": 1}]}", out, err));
    EXPECT_NE(err.find("unknown client key 'tier'"),
              std::string::npos);

    EXPECT_FALSE(parseScenarioJson(
        "{\"clients\": [{\"mix\": [\"bogus\"]}]}", out, err));
    EXPECT_NE(err.find("bad mix token 'bogus'"), std::string::npos);

    EXPECT_FALSE(
        parseScenarioJson("{\"scheduler\": \"lifo\"}", out, err));
    EXPECT_NE(err.find("unknown scheduler 'lifo'"),
              std::string::npos);

    EXPECT_FALSE(parseScenarioJson("{\"shed\": \"bounce\"}", out, err));
    EXPECT_NE(err.find("unknown shed policy 'bounce'"),
              std::string::npos);

    EXPECT_FALSE(parseScenarioJson("{\"workers\": -1}", out, err));
    EXPECT_NE(err.find("expected a non-negative integer"),
              std::string::npos);

    EXPECT_FALSE(parseScenarioJson("{\"scenario\": \"x", out, err));
    EXPECT_NE(err.find("unterminated string"), std::string::npos);

    EXPECT_FALSE(parseScenarioJson("{} trailing", out, err));
    EXPECT_NE(err.find("trailing garbage"), std::string::npos);
}

TEST(ScenarioStringsTest, EnumNamesRoundTrip)
{
    EXPECT_EQ(toString(ArrivalKind::Poisson), "poisson");
    EXPECT_EQ(toString(ArrivalKind::Bursty), "bursty");
    EXPECT_EQ(toString(ArrivalKind::Diurnal), "diurnal");
    EXPECT_EQ(toString(ShedPolicy::Drop), "drop");
    EXPECT_EQ(toString(ShedPolicy::Defer), "defer");

    SchedulerKind kind = SchedulerKind::Fifo;
    for (const char *name : {"fifo", "sjf", "fair", "edf"}) {
        EXPECT_TRUE(schedulerFromString(name, kind));
        EXPECT_EQ(toString(kind), name);
    }
    EXPECT_FALSE(schedulerFromString("lifo", kind));
}

} // namespace

/**
 * @file
 * Tests for the orthogonal tree cycles (Sections V and VI): the cycle
 * primitives (CIRCULATE, ROOTTOCYCLE, CYCLETOROOT/-CYCLE and the
 * SUM/MIN variants), SORT-OTC, the OTC-emulated OTN, and the
 * area/time trade against the plain OTN.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "graph/generators.hh"
#include "graph/reference_algorithms.hh"
#include "otc/algorithms.hh"
#include "otc/connected_components_native.hh"
#include "otc/mst_native.hh"
#include "linalg/reference.hh"
#include "otc/network.hh"
#include "otc/sort.hh"
#include "otn/sort.hh"
#include "sim/rng.hh"

namespace {

using namespace ot::otc;
using ot::sim::Rng;
using ot::vlsi::CostModel;
using ot::vlsi::DelayModel;
using ot::vlsi::WordFormat;

CostModel
logCost(std::size_t n)
{
    return {DelayModel::Logarithmic, WordFormat::forProblemSize(n)};
}

std::vector<std::uint64_t>
sortedCopy(std::vector<std::uint64_t> v)
{
    std::sort(v.begin(), v.end());
    return v;
}

TEST(OtcNetwork, Shape)
{
    OtcNetwork net(4, 3, logCost(12));
    EXPECT_EQ(net.k(), 4u);
    EXPECT_EQ(net.cycleLen(), 3u);
    EXPECT_EQ(net.totalBps(), 48u);
}

TEST(OtcNetwork, CirculateShiftsTowardLowerIndex)
{
    OtcNetwork net(2, 4, logCost(8));
    for (std::size_t q = 0; q < 4; ++q)
        net.reg(Reg::A, 0, 0, q) = 10 + q;
    net.circulate(0, 0, {Reg::A});
    // R(q) := R((q+1) mod L).
    EXPECT_EQ(net.reg(Reg::A, 0, 0, 0), 11u);
    EXPECT_EQ(net.reg(Reg::A, 0, 0, 1), 12u);
    EXPECT_EQ(net.reg(Reg::A, 0, 0, 2), 13u);
    EXPECT_EQ(net.reg(Reg::A, 0, 0, 3), 10u);
}

TEST(OtcNetwork, CirculateLTimesIsIdentity)
{
    OtcNetwork net(2, 5, logCost(10));
    for (std::size_t q = 0; q < 5; ++q)
        net.reg(Reg::B, 1, 1, q) = q * 7;
    for (unsigned p = 0; p < 5; ++p)
        net.circulate(1, 1, {Reg::B});
    for (std::size_t q = 0; q < 5; ++q)
        EXPECT_EQ(net.reg(Reg::B, 1, 1, q), q * 7);
}

TEST(OtcNetwork, VectorCirculateTouchesWholeRow)
{
    OtcNetwork net(4, 2, logCost(8));
    for (std::size_t j = 0; j < 4; ++j) {
        net.reg(Reg::A, 2, j, 0) = j;
        net.reg(Reg::A, 2, j, 1) = 100 + j;
    }
    net.vectorCirculate(Axis::Row, 2, {Reg::A});
    for (std::size_t j = 0; j < 4; ++j) {
        EXPECT_EQ(net.reg(Reg::A, 2, j, 0), 100 + j);
        EXPECT_EQ(net.reg(Reg::A, 2, j, 1), j);
    }
}

TEST(OtcNetwork, RootToCyclePlacesWordQInBpQ)
{
    OtcNetwork net(4, 3, logCost(12));
    net.rowStream(1) = {7, 8, 9};
    net.rootToCycle(Axis::Row, 1, CSel::all(), Reg::A);
    for (std::size_t j = 0; j < 4; ++j)
        for (std::size_t q = 0; q < 3; ++q)
            EXPECT_EQ(net.reg(Reg::A, 1, j, q), 7 + q);
}

TEST(OtcNetwork, CycleToRootRoundTrip)
{
    OtcNetwork net(4, 3, logCost(12));
    for (std::size_t q = 0; q < 3; ++q)
        net.reg(Reg::B, 2, 1, q) = 20 + q;
    net.cycleToRoot(Axis::Col, 1, CSel::rowIs(2), Reg::B);
    EXPECT_EQ(net.colStream(1), (std::vector<std::uint64_t>{20, 21, 22}));
    // Source registers invariant (the paper's L-circulation argument).
    for (std::size_t q = 0; q < 3; ++q)
        EXPECT_EQ(net.reg(Reg::B, 2, 1, q), 20 + q);
}

TEST(OtcNetwork, SumCycleToRootSumsPositionwise)
{
    OtcNetwork net(4, 2, logCost(8));
    for (std::size_t j = 0; j < 4; ++j) {
        net.reg(Reg::C, 0, j, 0) = j;      // 0+1+2+3 = 6
        net.reg(Reg::C, 0, j, 1) = 10 * j; // 0+10+20+30 = 60
    }
    net.sumCycleToRoot(Axis::Row, 0, CSel::all(), Reg::C);
    EXPECT_EQ(net.rowStream(0), (std::vector<std::uint64_t>{6, 60}));
}

TEST(OtcNetwork, MinCycleToRootIgnoresNull)
{
    OtcNetwork net(4, 2, logCost(8));
    net.fillReg(Reg::C, kNull);
    net.reg(Reg::C, 1, 3, 0) = 5;
    net.reg(Reg::C, 3, 3, 0) = 2;
    net.minCycleToRoot(Axis::Col, 3, CSel::all(), Reg::C);
    EXPECT_EQ(net.colStream(3)[0], 2u);
    EXPECT_EQ(net.colStream(3)[1], kNull);
}

TEST(OtcNetwork, CycleToCycleBroadcastsWithinVector)
{
    OtcNetwork net(4, 2, logCost(8));
    net.reg(Reg::A, 2, 2, 0) = 41;
    net.reg(Reg::A, 2, 2, 1) = 42;
    net.cycleToCycle(Axis::Col, 2, CSel::rowIs(2), Reg::A, CSel::all(),
                     Reg::B);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(net.reg(Reg::B, i, 2, 0), 41u);
        EXPECT_EQ(net.reg(Reg::B, i, 2, 1), 42u);
    }
}

TEST(OtcNetwork, StreamCostIsLog2ForStandardMachine)
{
    // K = N/log N, L = log N: ops stay O(log^2 N).
    double lo = 1e18, hi = 0;
    for (std::size_t n : {64, 256, 1024, 4096}) {
        unsigned l = ot::vlsi::logCeilAtLeast1(n);
        OtcNetwork net(n / l, l, logCost(n));
        double logn = std::log2(static_cast<double>(n));
        double ratio =
            static_cast<double>(net.streamCost()) / (logn * logn);
        lo = std::min(lo, ratio);
        hi = std::max(hi, ratio);
    }
    EXPECT_LT(hi / lo, 8.0);
}

TEST(SortOtc, TinyExample)
{
    // 8 values: K = 4 ports (power of two), L = 3 -> capacity 12.
    std::vector<std::uint64_t> v{5, 1, 7, 3, 0, 6, 2, 4};
    auto r = sortOtc(v, logCost(8));
    EXPECT_EQ(r.sorted, sortedCopy(v));
    EXPECT_GT(r.time, 0u);
}

TEST(SortOtc, DuplicatesAndAllEqual)
{
    std::vector<std::uint64_t> dup{3, 1, 3, 1, 3, 1, 3, 1};
    EXPECT_EQ(sortOtc(dup, logCost(8)).sorted, sortedCopy(dup));
    std::vector<std::uint64_t> eq(16, 9);
    EXPECT_EQ(sortOtc(eq, logCost(16)).sorted, eq);
}

TEST(SortOtc, ExplicitMachineAndPartialLoad)
{
    OtcNetwork net(4, 4, logCost(16));
    std::vector<std::uint64_t> v{9, 4, 11, 2, 7};
    EXPECT_EQ(sortOtc(net, v).sorted, sortedCopy(v));
}

/** Property sweep: random inputs across sizes and seeds. */
class SortOtcRandom
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>>
{
};

TEST_P(SortOtcRandom, MatchesStdSort)
{
    auto [n, seed] = GetParam();
    Rng rng(static_cast<std::uint64_t>(seed) * 101 + n);
    std::vector<std::uint64_t> v(n);
    for (auto &x : v)
        x = rng.uniform(0, n - 1);
    EXPECT_EQ(sortOtc(v, logCost(n)).sorted, sortedCopy(v));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SortOtcRandom,
    ::testing::Combine(::testing::Values(4, 8, 16, 32, 64, 128),
                       ::testing::Values(1, 2, 3)));

TEST(SortOtc, TimeShapeIsLogSquared)
{
    double lo = 1e18, hi = 0;
    Rng rng(12);
    for (std::size_t n : {64, 256, 1024}) {
        auto v = rng.permutation(n);
        auto r = sortOtc(v, logCost(n));
        double logn = std::log2(static_cast<double>(n));
        double ratio = static_cast<double>(r.time) / (logn * logn);
        lo = std::min(lo, ratio);
        hi = std::max(hi, ratio);
    }
    EXPECT_LT(hi / lo, 12.0);
}

TEST(SortOtc, MatchesOtnTimeAsymptoticsWithLessArea)
{
    // Section V-A's punchline: same O(log^2 N) time as the OTN on a
    // Theta(log^2 N)-times smaller chip.
    Rng rng(13);
    std::size_t n = 1024;
    auto v = rng.permutation(n);

    auto r_otc = sortOtc(v, logCost(n));
    ot::otn::OrthogonalTreesNetwork otn_net(n, logCost(n));
    auto r_otn = ot::otn::sortOtn(otn_net, v);
    EXPECT_EQ(r_otc.sorted, r_otn.sorted);

    // Time within a constant factor of each other...
    double ratio = static_cast<double>(r_otc.time) /
                   static_cast<double>(r_otn.time);
    EXPECT_LT(ratio, 12.0);
    // ...but the OTC chip is much smaller.
    unsigned l = ot::vlsi::logCeilAtLeast1(n);
    OtcNetwork otc_net(n / l, l, logCost(n));
    EXPECT_LT(otc_net.chipLayout().metrics().area(),
              otn_net.chipLayout().metrics().area() / 4);
}

TEST(OtcEmulatedOtn, BehavesLikeOtnFunctionally)
{
    // Sorting on the emulated machine gives identical results.
    Rng rng(14);
    std::size_t n = 32;
    auto v = rng.permutation(n);
    OtcEmulatedOtn emu(n, logCost(n));
    auto r = ot::otn::sortOtn(emu, v);
    EXPECT_EQ(r.sorted, sortedCopy(v));
}

TEST(OtcEmulatedOtn, AreaSmallerTimeComparable)
{
    std::size_t n = 256;
    OtcEmulatedOtn emu(n, logCost(n));
    ot::otn::OrthogonalTreesNetwork plain(n, logCost(n));
    EXPECT_LT(emu.otcLayout().metrics().area(),
              plain.chipLayout().metrics().area());
    double ratio = static_cast<double>(emu.treeTraversalCost()) /
                   static_cast<double>(plain.treeTraversalCost());
    EXPECT_LT(ratio, 8.0);
    EXPECT_GT(ratio, 0.25);
}

TEST(CcOtc, MatchesUnionFind)
{
    Rng rng(15);
    for (std::size_t n : {8, 16, 32}) {
        auto g = ot::graph::randomGnp(n, 1.8 / static_cast<double>(n), rng);
        auto r = connectedComponentsOtc(g, logCost(n));
        EXPECT_EQ(r.result.labels, ot::graph::connectedComponents(g))
            << "n = " << n;
        EXPECT_GT(r.chip.area(), 0u);
    }
}

TEST(MstOtc, MatchesKruskal)
{
    Rng rng(16);
    for (std::size_t n : {8, 16}) {
        auto g = ot::graph::randomWeightedConnected(n, n, rng);
        CostModel cm(DelayModel::Logarithmic,
                     ot::otn::mstWordFormat(n, n * n));
        auto r = mstOtc(g, cm);
        EXPECT_EQ(r.result.edges, ot::graph::kruskalMsf(g)) << "n = " << n;
    }
}

TEST(MatMulOtc, MatchesReference)
{
    Rng rng(17);
    std::size_t n = 8;
    ot::linalg::IntMatrix a(n, n), b(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j) {
            a(i, j) = rng.uniform(0, 5);
            b(i, j) = rng.uniform(0, 5);
        }
    CostModel cm(DelayModel::Logarithmic, WordFormat(16));
    auto r = matMulOtc(a, b, cm);
    EXPECT_EQ(r.result.product, ot::linalg::matMul(a, b));
}

TEST(BoolMatMulOtc, MatchesReferenceAndUsesCompactChip)
{
    Rng rng(18);
    std::size_t n = 16;
    ot::linalg::BoolMatrix a(n, n, 0), b(n, n, 0);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j) {
            a(i, j) = rng.bernoulli(0.3);
            b(i, j) = rng.bernoulli(0.3);
        }
    auto r = boolMatMulOtc(a, b, logCost(n));
    auto expect = ot::linalg::boolMatMul(a, b);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            EXPECT_EQ(r.result.product(i, j), expect(i, j));
    EXPECT_GT(r.chip.area(), 0u);
}


// --------------------------------------- native OTC connected components

TEST(CcOtcNative, SmallShapes)
{
    // Path, two triangles, star with a max-label centre.
    {
        ot::graph::Graph g(8);
        for (std::size_t v = 0; v + 1 < 8; ++v)
            g.addEdge(v, v + 1);
        OtcNetwork net(4, 2, logCost(8));
        auto r = connectedComponentsOtcNative(net, g);
        EXPECT_EQ(r.labels, ot::graph::connectedComponents(g));
        EXPECT_EQ(r.componentCount, 1u);
    }
    {
        ot::graph::Graph g(8);
        for (std::size_t v = 0; v < 7; ++v)
            g.addEdge(7, v);
        OtcNetwork net(2, 4, logCost(8));
        auto r = connectedComponentsOtcNative(net, g);
        EXPECT_EQ(r.componentCount, 1u);
    }
}

class CcOtcNativeRandom
    : public ::testing::TestWithParam<std::tuple<std::size_t, unsigned, int>>
{
};

TEST_P(CcOtcNativeRandom, MatchesUnionFind)
{
    auto [k, l, seed] = GetParam();
    std::size_t n = k * l;
    Rng rng(static_cast<std::uint64_t>(seed) * 53 + n);
    auto g = ot::graph::randomGnp(n, 2.0 / static_cast<double>(n), rng);
    OtcNetwork net(k, l, logCost(n));
    auto r = connectedComponentsOtcNative(net, g);
    EXPECT_EQ(r.labels, ot::graph::connectedComponents(g))
        << "k=" << k << " l=" << l;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CcOtcNativeRandom,
    ::testing::Combine(::testing::Values(2, 4, 8),
                       ::testing::Values(2, 4, 6),
                       ::testing::Values(1, 2, 3)));

TEST(CcOtcNative, AgreesWithEmulatedPathAndHasSameTimeClass)
{
    Rng rng(44);
    std::size_t n = 64;
    unsigned l = ot::vlsi::logCeilAtLeast1(n);
    auto g = ot::graph::randomGnp(n, 2.5 / static_cast<double>(n), rng);

    OtcNetwork net(n / l, l, logCost(n));
    auto native = connectedComponentsOtcNative(net, g);
    auto emulated = connectedComponentsOtc(g, logCost(n));

    EXPECT_EQ(native.labels, emulated.result.labels);
    // Same machine, same algorithm skeleton: times within a small
    // constant factor of each other.
    double ratio = static_cast<double>(native.time) /
                   static_cast<double>(emulated.result.time);
    EXPECT_GT(ratio, 0.1);
    EXPECT_LT(ratio, 10.0);
}

TEST(CcOtcNative, TimeShapeIsPolylog)
{
    Rng rng(45);
    double lo = 1e18, hi = 0;
    for (std::size_t n : {32, 64, 128}) {
        unsigned l = ot::vlsi::logCeilAtLeast1(n);
        auto g = ot::graph::randomGnp(n, 2.0 / static_cast<double>(n),
                                      rng);
        OtcNetwork net(n / l, l, logCost(n));
        auto r = connectedComponentsOtcNative(net, g,
                                              /*charge_load=*/false);
        double logn = std::log2(static_cast<double>(n));
        double ratio = static_cast<double>(r.time) / std::pow(logn, 4);
        lo = std::min(lo, ratio);
        hi = std::max(hi, ratio);
    }
    EXPECT_LT(hi / lo, 10.0);
}


// --------------------------------------------------- native OTC MST

TEST(MstOtcNative, MatchesKruskalOnSmallGraphs)
{
    Rng rng(61);
    for (auto [k, l] : {std::pair<std::size_t, unsigned>{2, 4},
                        {4, 4}, {8, 4}, {4, 8}}) {
        std::size_t n = k * l;
        auto g = ot::graph::randomWeightedConnected(n, 2 * n, rng);
        CostModel cm(DelayModel::Logarithmic,
                     ot::otn::mstWordFormat(n, n * n));
        OtcNetwork net(k, l, cm);
        auto r = mstOtcNative(net, g);
        EXPECT_EQ(r.edges, ot::graph::kruskalMsf(g))
            << "k=" << k << " l=" << l;
    }
}

TEST(MstOtcNative, DisconnectedForest)
{
    ot::graph::WeightedGraph g(8);
    g.addEdge(0, 1, 3);
    g.addEdge(2, 3, 1);
    g.addEdge(5, 6, 2);
    CostModel cm(DelayModel::Logarithmic, ot::otn::mstWordFormat(8, 3));
    OtcNetwork net(4, 2, cm);
    auto r = mstOtcNative(net, g);
    EXPECT_EQ(r.edges, ot::graph::kruskalMsf(g));
    EXPECT_TRUE(ot::graph::isSpanningForest(g, r.edges));
}

TEST(MstOtcNative, AgreesWithOtnAndEmulatedPaths)
{
    Rng rng(62);
    std::size_t n = 32;
    unsigned l = ot::vlsi::logCeilAtLeast1(n);
    auto g = ot::graph::randomWeightedConnected(n, 2 * n, rng);
    CostModel cm(DelayModel::Logarithmic,
                 ot::otn::mstWordFormat(n, n * n));

    OtcNetwork net(n / l + ((n % l) ? 1 : 0), l, cm);
    auto native = mstOtcNative(net, g);

    ot::otn::OrthogonalTreesNetwork otn_net(n, cm);
    auto on_otn = ot::otn::mstOtn(otn_net, g);
    auto emulated = mstOtc(g, cm);

    EXPECT_EQ(native.edges, on_otn.edges);
    EXPECT_EQ(native.edges, emulated.result.edges);
}


// ------------------------------------------ OTC model-policy checks

TEST(SortOtc, DelayModelNeverChangesResults)
{
    Rng rng(71);
    std::size_t n = 64;
    std::vector<std::uint64_t> v(n);
    for (auto &x : v)
        x = rng.uniform(0, n - 1);
    std::vector<std::uint64_t> expect;
    for (auto model : {DelayModel::Logarithmic, DelayModel::Constant,
                       DelayModel::Linear}) {
        CostModel cost(model, WordFormat::forProblemSize(n));
        auto sorted = sortOtc(v, cost).sorted;
        if (expect.empty())
            expect = sorted;
        EXPECT_EQ(sorted, expect);
    }
}

TEST(SortOtc, ScaledTreesSpeedUpTheStreams)
{
    Rng rng(72);
    std::size_t n = 256;
    auto v = rng.permutation(n);
    CostModel plain(DelayModel::Logarithmic,
                    WordFormat::forProblemSize(n));
    CostModel scaled(DelayModel::Logarithmic,
                     WordFormat::forProblemSize(n),
                     /*scaled_trees=*/true);
    EXPECT_LT(sortOtc(v, scaled).time, sortOtc(v, plain).time);
    EXPECT_EQ(sortOtc(v, scaled).sorted, sortOtc(v, plain).sorted);
}

TEST(OtcNetwork, StreamCostScalesWithCycleLength)
{
    // Longer cycles stream more words per op: cost grows ~L for a
    // fixed tree.
    CostModel cm(DelayModel::Logarithmic, WordFormat(16));
    OtcNetwork short_cycles(16, 4, cm);
    OtcNetwork long_cycles(16, 16, cm);
    EXPECT_GT(long_cycles.streamCost(), 2 * short_cycles.streamCost());
}

} // namespace

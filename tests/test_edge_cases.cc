/**
 * @file
 * Edge-case and robustness tests across the library: degenerate
 * machine sizes, word-width boundaries, OTC local memory, layout
 * parameter variations, bit math against the standard library, CSV
 * rendering, and sentinel-value consistency.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "orthotree/orthotree.hh"

namespace {

using namespace ot;
using sim::Rng;
using vlsi::CostModel;
using vlsi::DelayModel;
using vlsi::WordFormat;

CostModel
logCost(std::size_t n)
{
    return {DelayModel::Logarithmic, WordFormat::forProblemSize(n)};
}

// -------------------------------------------------- degenerate sizes

TEST(EdgeCases, OneByOneOtn)
{
    otn::OrthogonalTreesNetwork net(1, logCost(2));
    EXPECT_EQ(net.n(), 1u);
    net.rowRoot(0) = 2;
    net.rootToLeaf(otn::Axis::Row, 0, otn::Sel::all(), otn::Reg::A);
    EXPECT_EQ(net.reg(otn::Reg::A, 0, 0), 2u);
    net.leafToRoot(otn::Axis::Col, 0, otn::Sel::all(), otn::Reg::A);
    EXPECT_EQ(net.colRoot(0), 2u);
}

TEST(EdgeCases, TwoElementSortEveryOrder)
{
    for (auto v : {std::vector<std::uint64_t>{0, 1},
                   std::vector<std::uint64_t>{1, 0},
                   std::vector<std::uint64_t>{1, 1}}) {
        auto expect = v;
        std::sort(expect.begin(), expect.end());
        EXPECT_EQ(otn::sortOtn(v, logCost(2)).sorted, expect);
    }
}

TEST(EdgeCases, EmptySortInput)
{
    otn::OrthogonalTreesNetwork net(4, logCost(4));
    auto r = otn::sortOtn(net, {});
    EXPECT_TRUE(r.sorted.empty());
}

TEST(EdgeCases, OtcWithCycleLengthOne)
{
    // L = 1 degenerates to an OTN-like machine; everything must still
    // work (the wrap wire is the only cycle wire).
    otc::OtcNetwork net(4, 1, logCost(4));
    net.rowStream(2) = {9};
    net.rootToCycle(otc::Axis::Row, 2, otc::CSel::all(), otn::Reg::A);
    for (std::size_t j = 0; j < 4; ++j)
        EXPECT_EQ(net.reg(otn::Reg::A, 2, j, 0), 9u);
    net.circulate(2, 1, {otn::Reg::A});
    EXPECT_EQ(net.reg(otn::Reg::A, 2, 1, 0), 9u); // rotation of 1 = id
}

TEST(EdgeCases, SortOtcSingleValue)
{
    EXPECT_EQ(otc::sortOtc({3}, logCost(2)).sorted,
              (std::vector<std::uint64_t>{3}));
}

TEST(EdgeCases, GraphWithOneVertex)
{
    graph::Graph g(1);
    otn::OrthogonalTreesNetwork net(1, logCost(2));
    auto r = otn::connectedComponentsOtn(net, g);
    EXPECT_EQ(r.componentCount, 1u);
    EXPECT_EQ(r.labels, (std::vector<std::size_t>{0}));
}

TEST(EdgeCases, CompleteGraphCollapsesInOneHook)
{
    std::size_t n = 16;
    graph::Graph g(n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i + 1; j < n; ++j)
            g.addEdge(i, j);
    otn::OrthogonalTreesNetwork net(n, logCost(n));
    auto r = otn::connectedComponentsOtn(net, g);
    EXPECT_EQ(r.componentCount, 1u);
}

// -------------------------------------------------- word boundaries

TEST(EdgeCases, WordExactlyAtMaxValue)
{
    otn::OrthogonalTreesNetwork net(4, logCost(4));
    auto max = net.cost().word().maxValue();
    EXPECT_TRUE(net.fitsWord(max));
    EXPECT_FALSE(net.fitsWord(max + 1));
    EXPECT_TRUE(net.fitsWord(otn::kNull)); // NULL always legal
}

TEST(EdgeCases, SumReductionCanExceedInputWords)
{
    // COUNT/SUM results may need the full 2 log N bits: summing N
    // flags of 1 yields N, which must fit.
    std::size_t n = 16;
    otn::OrthogonalTreesNetwork net(n, logCost(n));
    net.fillReg(otn::Reg::F, 1);
    net.countLeafToRoot(otn::Axis::Row, 0, otn::Reg::F);
    EXPECT_EQ(net.rowRoot(0), n);
    EXPECT_TRUE(net.fitsWord(net.rowRoot(0)));
}

// ----------------------------------------------------- OTC memory

TEST(EdgeCases, OtcLocalMemoryRoundTrip)
{
    otc::OtcNetwork net(2, 3, logCost(6));
    EXPECT_EQ(net.memSlots(), 0u);
    net.configureMemory(4);
    EXPECT_EQ(net.memSlots(), 4u);
    net.mem(1, 0, 2, 3) = 77;
    EXPECT_EQ(net.mem(1, 0, 2, 3), 77u);
    EXPECT_EQ(net.mem(0, 0, 0, 0), 0u);
    // Reconfiguring clears.
    net.configureMemory(2);
    EXPECT_EQ(net.mem(1, 0, 1, 1), 0u);
}

// ---------------------------------------------- layout parameters

TEST(EdgeCases, LayoutParamsScaleAreaMonotonically)
{
    layout::LayoutParams small{.baseCell = 1, .track = 1};
    layout::LayoutParams big{.baseCell = 6, .track = 3};
    layout::OtnLayout a(32, 10, small);
    layout::OtnLayout b(32, 10, big);
    EXPECT_LT(a.metrics().area(), b.metrics().area());
    EXPECT_LT(a.pitch(), b.pitch());
    // Processor counts are layout-independent.
    EXPECT_EQ(a.metrics().processors, b.metrics().processors);
}

TEST(EdgeCases, TreeEmbeddingSingleLeaf)
{
    layout::TreeEmbedding t(1, 4);
    EXPECT_EQ(t.leaves(), 1u);
    EXPECT_EQ(t.height(), 0u);
    EXPECT_TRUE(t.pathEdges().empty());
    EXPECT_EQ(t.internalNodes(), 0u);
    EXPECT_EQ(t.totalWireLength(), 0u);
}

TEST(EdgeCases, CostOnEmptyPathIsJustBits)
{
    CostModel cm(DelayModel::Logarithmic, WordFormat(8));
    std::vector<vlsi::WireLength> none;
    EXPECT_EQ(cm.pathLatency(none), 0u);
    EXPECT_EQ(cm.wordAlongPath(none), 7u);
}

// ------------------------------------------------ bit math vs <bit>

TEST(EdgeCases, BitMathMatchesStandardLibrary)
{
    Rng rng(1);
    for (int i = 0; i < 2000; ++i) {
        std::uint64_t x = rng.uniform(1, (1ULL << 48));
        EXPECT_EQ(vlsi::ilog2Floor(x),
                  static_cast<unsigned>(std::bit_width(x) - 1));
        EXPECT_EQ(vlsi::nextPow2(x), std::bit_ceil(x));
        EXPECT_EQ(vlsi::isPow2(x), std::has_single_bit(x));
    }
}

TEST(EdgeCases, ReverseBitsIsInvolution)
{
    Rng rng(2);
    for (int i = 0; i < 500; ++i) {
        unsigned bits = static_cast<unsigned>(rng.uniform(1, 20));
        std::uint64_t x = rng.uniform(0, (1ULL << bits) - 1);
        EXPECT_EQ(vlsi::reverseBits(vlsi::reverseBits(x, bits), bits), x);
    }
}

// ------------------------------------------------------ CSV output

TEST(EdgeCases, TextTableCsv)
{
    analysis::TextTable t({"a", "b"});
    t.addRow({"1", "x,y"});
    t.addRow({"2", "he said \"hi\""});
    auto csv = t.csv();
    EXPECT_EQ(csv, "a,b\n1,\"x,y\"\n2,\"he said \"\"hi\"\"\"\n");
}

// ---------------------------------------------- sentinel coherence

TEST(EdgeCases, NullSentinelsAgree)
{
    // One all-ones sentinel across the library: the OTN's NULL, the
    // graph module's "no edge" is narrower but the unreachable
    // distance equals kNull — MIN reductions and saturating adds treat
    // them uniformly.
    EXPECT_EQ(otn::kNull, graph::kUnreachable);
    EXPECT_EQ(otn::kNull, ~std::uint64_t{0});
}

TEST(EdgeCases, StatsResetClearsCounters)
{
    otn::OrthogonalTreesNetwork net(4, logCost(4));
    net.rowRoot(0) = 1;
    net.rootToLeaf(otn::Axis::Row, 0, otn::Sel::all(), otn::Reg::A);
    EXPECT_GT(net.stats().counter("otn.rootToLeaf").value(), 0u);
    EXPECT_GT(net.now(), 0u);
    net.resetTime();
    EXPECT_EQ(net.stats().counter("otn.rootToLeaf").value(), 0u);
    EXPECT_EQ(net.now(), 0u);
}

TEST(EdgeCases, HexArraySizeOne)
{
    baselines::HexArray hex(1, logCost(2));
    auto a = linalg::IntMatrix::fromRows({{3}});
    auto b = linalg::IntMatrix::fromRows({{2}});
    EXPECT_EQ(hex.matMul(a, b)(0, 0), 6u);
}

TEST(EdgeCases, MeshOfTrees3dSizeOne)
{
    otn::MeshOfTrees3d mot(1, logCost(2));
    auto a = linalg::IntMatrix::fromRows({{3}});
    EXPECT_EQ(mot.matMul(a, a).product(0, 0), 9u);
}

TEST(EdgeCases, PipelineWithSingleProblem)
{
    otn::OrthogonalTreesNetwork net(8, logCost(8));
    auto r = otn::sortPipelineOtn(net, {{5, 1, 3}});
    ASSERT_EQ(r.sorted.size(), 1u);
    EXPECT_EQ(r.sorted[0], (std::vector<std::uint64_t>{1, 3, 5}));
    EXPECT_EQ(r.totalTime, r.firstLatency);
}

TEST(EdgeCases, MstOnTwoVertices)
{
    graph::WeightedGraph g(2);
    g.addEdge(0, 1, 7);
    CostModel cm(DelayModel::Logarithmic, otn::mstWordFormat(2, 7));
    otn::OrthogonalTreesNetwork net(2, cm);
    auto r = otn::mstOtn(net, g);
    ASSERT_EQ(r.edges.size(), 1u);
    EXPECT_EQ(r.edges[0], (graph::Edge{0, 1, 7}));
}

} // namespace

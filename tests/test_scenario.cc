/**
 * @file
 * The scenario engine: golden splitmix64/StreamRng sequences, arrival
 * process shape (Poisson rate, bursty dwells, diurnal modulation),
 * the scheduling policies' ranking functions, admission control
 * (quota, queue cap, drop vs defer), latency-SLO evaluation, and the
 * determinism contract — reports byte-identical at every host-thread
 * count.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <set>
#include <sstream>
#include <vector>

#include "scenario/arrivals.hh"
#include "scenario/engine.hh"
#include "scenario/prng.hh"
#include "scenario/scheduler.hh"
#include "scenario/spec.hh"
#include "trace/tracer.hh"

namespace {

using namespace ot::scenario;
using ot::vlsi::DelayModel;
using ot::vlsi::ModelTime;
using ot::workload::Algo;
using ot::workload::InstanceSpec;

// ---------------------------------------------------------------- PRNG

TEST(PrngTest, GoldenSplitmix64FromStateZero)
{
    std::uint64_t state = 0;
    EXPECT_EQ(splitmix64(state), 0xe220a8397b1dcdafULL);
    EXPECT_EQ(splitmix64(state), 0x6e789e6aa1b965f4ULL);
    EXPECT_EQ(splitmix64(state), 0x06c45d188009454fULL);
    EXPECT_EQ(splitmix64(state), 0xf88bb8a8724c81ecULL);
}

TEST(PrngTest, GoldenSplitmix64FromState42)
{
    std::uint64_t state = 42;
    EXPECT_EQ(splitmix64(state), 0xbdd732262feb6e95ULL);
    EXPECT_EQ(splitmix64(state), 0x28efe333b266f103ULL);
    EXPECT_EQ(splitmix64(state), 0x47526757130f9f52ULL);
    EXPECT_EQ(splitmix64(state), 0x581ce1ff0e4ae394ULL);
}

TEST(PrngTest, GoldenStreamSequences)
{
    StreamRng s10(1, 0);
    EXPECT_EQ(s10.next(), 0xe7d72f820b2d2d96ULL);
    EXPECT_EQ(s10.next(), 0x4a38e3bce4be6354ULL);
    EXPECT_EQ(s10.next(), 0x6190ba8f346ef84fULL);

    StreamRng s11(1, 1);
    EXPECT_EQ(s11.next(), 0x14839fb735d0dbc4ULL);
    EXPECT_EQ(s11.next(), 0x555e3e56f98ea4e3ULL);
    EXPECT_EQ(s11.next(), 0x9880ada3411ab5e7ULL);

    StreamRng s72(7, 2);
    EXPECT_EQ(s72.next(), 0xba55cac2a2764a3bULL);
    EXPECT_EQ(s72.next(), 0xb7239dcd92be9bb8ULL);
    EXPECT_EQ(s72.next(), 0xe013eedda1ac72f2ULL);
}

TEST(PrngTest, StreamsAreNotShiftedCopies)
{
    // The stream multiplier is deliberately not the splitmix
    // increment: stream 1 must not appear anywhere early in stream 0.
    StreamRng s0(1, 0);
    std::vector<std::uint64_t> head;
    for (int i = 0; i < 64; ++i)
        head.push_back(s0.next());
    StreamRng s1(1, 1);
    std::uint64_t first = s1.next();
    EXPECT_EQ(std::count(head.begin(), head.end(), first), 0);
}

TEST(PrngTest, UniformStaysInBounds)
{
    StreamRng rng(3);
    for (int i = 0; i < 1000; ++i) {
        std::uint64_t v = rng.uniform(5, 9);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 9u);
    }
    EXPECT_EQ(rng.uniform(7, 7), 7u);
}

TEST(PrngTest, UnitOpenNeverZeroNeverAboveOne)
{
    StreamRng rng(9);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.unitOpen();
        EXPECT_GT(u, 0.0);
        EXPECT_LE(u, 1.0);
    }
}

TEST(PrngTest, ExponentialMomentsMatchTheMean)
{
    StreamRng rng(1234);
    const int n = 20000;
    const double mean = 100.0;
    double sum = 0.0, sumSq = 0.0;
    for (int i = 0; i < n; ++i) {
        double x = rng.expReal(mean);
        sum += x;
        sumSq += x * x;
    }
    double m = sum / n;
    double var = sumSq / n - m * m;
    // Exponential: mean = 100, variance = mean^2 = 10000.  The
    // sampling error at n = 20000 is well under these bands.
    EXPECT_NEAR(m, mean, 5.0);
    EXPECT_NEAR(var, mean * mean, 1500.0);
}

TEST(PrngTest, ExponentialTicksAreFlooredAtOne)
{
    StreamRng rng(5);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GE(rng.exponential(1), 1u);
}

// ------------------------------------------------------------ arrivals

ScenarioSpec
oneClientSpec(ArrivalKind kind, ModelTime mean, ModelTime duration)
{
    ScenarioSpec spec;
    spec.name = "t";
    spec.arrival.kind = kind;
    spec.arrival.mean = mean;
    spec.arrival.duration = duration;
    spec.arrival.seed = 7;
    ClientConfig c;
    c.name = "only";
    c.mix.push_back(
        {Algo::Sort, "otn", 16, DelayModel::Logarithmic, false, 1});
    spec.clients.push_back(c);
    return spec;
}

TEST(ArrivalsTest, DeterministicAndStrictlyIncreasing)
{
    ScenarioSpec spec = demoScenario();
    std::vector<Arrival> a = generateArrivals(spec);
    std::vector<Arrival> b = generateArrivals(spec);
    EXPECT_EQ(a, b);
    ASSERT_FALSE(a.empty());
    for (std::size_t i = 1; i < a.size(); ++i)
        EXPECT_GT(a[i].at, a[i - 1].at);
    for (const Arrival &arr : a)
        EXPECT_LE(arr.at, spec.arrival.duration);
}

TEST(ArrivalsTest, PoissonCountTracksTheRate)
{
    ScenarioSpec spec =
        oneClientSpec(ArrivalKind::Poisson, 100, 100000);
    std::vector<Arrival> arr = generateArrivals(spec);
    // ~1000 expected; allow generous sampling slack.
    EXPECT_GE(arr.size(), 850u);
    EXPECT_LE(arr.size(), 1150u);
}

TEST(ArrivalsTest, MaxArrivalsCapsTheStream)
{
    ScenarioSpec spec =
        oneClientSpec(ArrivalKind::Poisson, 10, 1000000);
    spec.arrival.maxArrivals = 10;
    EXPECT_EQ(generateArrivals(spec).size(), 10u);
}

TEST(ArrivalsTest, ClientWeightsShapeTheMix)
{
    ScenarioSpec spec = oneClientSpec(ArrivalKind::Poisson, 10, 100000);
    spec.clients[0].weight = 3;
    ClientConfig other;
    other.name = "other";
    other.weight = 1;
    other.mix = spec.clients[0].mix;
    spec.clients.push_back(other);

    std::vector<Arrival> arr = generateArrivals(spec);
    ASSERT_GT(arr.size(), 1000u);
    std::size_t first = 0;
    for (const Arrival &a : arr)
        first += a.client == 0;
    double frac =
        static_cast<double>(first) / static_cast<double>(arr.size());
    EXPECT_GT(frac, 0.70);
    EXPECT_LT(frac, 0.80);
}

TEST(ArrivalsTest, BurstyGoesQuietInOffDwells)
{
    ScenarioSpec poisson =
        oneClientSpec(ArrivalKind::Poisson, 20, 60000);
    ScenarioSpec bursty = oneClientSpec(ArrivalKind::Bursty, 20, 60000);
    bursty.arrival.onMean = 500;
    bursty.arrival.offMean = 5000;

    std::size_t pn = generateArrivals(poisson).size();
    std::vector<Arrival> ba = generateArrivals(bursty);
    // OFF dwells silence most of the horizon, so the bursty stream
    // is much thinner than Poisson at the same ON rate...
    EXPECT_LT(ba.size(), pn / 2);
    // ...and the silences show up as gaps far beyond the ON mean.
    ModelTime maxGap = 0;
    for (std::size_t i = 1; i < ba.size(); ++i)
        maxGap = std::max(maxGap, ba[i].at - ba[i - 1].at);
    EXPECT_GT(maxGap, 1000u);
}

TEST(ArrivalsTest, DiurnalCrestOutpacesTrough)
{
    ScenarioSpec spec =
        oneClientSpec(ArrivalKind::Diurnal, 50, 200000);
    spec.arrival.period = 10000;
    spec.arrival.ampPct = 90;

    std::size_t crest = 0, trough = 0;
    for (const Arrival &a : generateArrivals(spec)) {
        ModelTime phase = a.at % 10000;
        // The triangle wave peaks at half period and bottoms at 0.
        if (phase >= 4000 && phase < 6000)
            ++crest;
        else if (phase < 1000 || phase >= 9000)
            ++trough;
    }
    EXPECT_GT(crest, 2 * trough);
}

TEST(ArrivalsTest, SeedPolicyVaryVersusFixed)
{
    ScenarioSpec spec = oneClientSpec(ArrivalKind::Poisson, 50, 20000);
    spec.arrival.varySeeds = true;
    std::vector<Arrival> vary = generateArrivals(spec);
    ASSERT_GT(vary.size(), 10u);
    std::set<std::uint64_t> seeds;
    for (const Arrival &a : vary)
        seeds.insert(a.inst.seed);
    EXPECT_GT(seeds.size(), vary.size() / 2);

    spec.arrival.varySeeds = false;
    for (const Arrival &a : generateArrivals(spec))
        EXPECT_EQ(a.inst.seed, 1u);
}

// ---------------------------------------------------------- scheduler

std::vector<QueueJob>
threeJobs()
{
    // Deliberately out of arrival order in the vector: the policies
    // rank by field, not position.
    return {
        {2, 30, 0, 500, 1030},
        {0, 10, 1, 300, 9000},
        {1, 20, 0, 300, 5020},
    };
}

TEST(SchedulerTest, FifoPicksTheOldestArrival)
{
    std::vector<ModelTime> served(2, 0);
    EXPECT_EQ(pickNext(SchedulerKind::Fifo, threeJobs(), served), 1u);
}

TEST(SchedulerTest, SjfPicksTheSmallestEstimate)
{
    std::vector<ModelTime> served(2, 0);
    // Jobs 0 and 1 tie on estimate 300; the lower job index wins.
    EXPECT_EQ(pickNext(SchedulerKind::Sjf, threeJobs(), served), 1u);
}

TEST(SchedulerTest, FairSharePicksTheStarvedClient)
{
    std::vector<ModelTime> served = {10000, 50};
    // Client 1 (job 0 at vector index 1) has been served least.
    EXPECT_EQ(pickNext(SchedulerKind::FairShare, threeJobs(), served),
              1u);
    served = {50, 10000};
    // Now client 0; its two jobs tie, lower job index (1) wins.
    EXPECT_EQ(pickNext(SchedulerKind::FairShare, threeJobs(), served),
              2u);
}

TEST(SchedulerTest, EdfPicksTheEarliestDeadline)
{
    std::vector<ModelTime> served(2, 0);
    EXPECT_EQ(pickNext(SchedulerKind::Edf, threeJobs(), served), 0u);
}

// --------------------------------------------------------- percentile

TEST(PercentileTest, NearestRankByHand)
{
    std::vector<ModelTime> v = {10, 20, 30, 40, 50,
                                60, 70, 80, 90, 100};
    EXPECT_EQ(percentileNearestRank(v, 50), 50u);
    EXPECT_EQ(percentileNearestRank(v, 95), 100u);
    EXPECT_EQ(percentileNearestRank(v, 99), 100u);
    EXPECT_EQ(percentileNearestRank(v, 1), 10u);
    std::vector<ModelTime> one = {7};
    EXPECT_EQ(percentileNearestRank(one, 50), 7u);
    EXPECT_EQ(percentileNearestRank({}, 95), 0u);
}

// ------------------------------------------------------------- engine

TEST(EngineTest, ReportsByteIdenticalAcrossHostThreads)
{
    ScenarioSpec spec = demoScenario();
    ScenarioEngine seq(1);
    ScenarioEngine par(8);
    ScenarioReport a = seq.run(spec);
    ScenarioReport b = par.run(spec);
    EXPECT_TRUE(a.verified);
    EXPECT_TRUE(b.verified);
    EXPECT_EQ(a.toJson(), b.toJson());

    std::ostringstream ta, tb;
    a.writeText(ta);
    b.writeText(tb);
    EXPECT_EQ(ta.str(), tb.str());
}

TEST(EngineTest, RepeatRunsAreIdentical)
{
    ScenarioSpec spec = demoScenario();
    ScenarioEngine engine(2);
    ScenarioReport a = engine.run(spec, SchedulerKind::Sjf);
    ScenarioReport b = engine.run(spec, SchedulerKind::Sjf);
    EXPECT_EQ(a.toJson(), b.toJson());
}

TEST(EngineTest, AccountingInvariantsHold)
{
    ScenarioSpec spec = demoScenario();
    ScenarioEngine engine(2);
    ScenarioReport rep = engine.run(spec);

    EXPECT_EQ(rep.arrivals, rep.completed + rep.droppedQueue +
                                rep.droppedQuota);
    EXPECT_EQ(rep.sojourn.count, rep.completed);
    EXPECT_LE(rep.utilizationPermille, 1000u);

    ModelTime maxComplete = 0, service = 0;
    for (const JobOutcome &job : rep.jobs) {
        if (!job.completed)
            continue;
        maxComplete = std::max(maxComplete, job.complete);
        service += job.service;
        EXPECT_GE(job.start, job.arrive);
        EXPECT_EQ(job.complete, job.start + job.service);
    }
    EXPECT_EQ(rep.makespan, maxComplete);
    EXPECT_EQ(rep.totalService, service);

    std::size_t clientArrivals = 0;
    for (const ClientReport &c : rep.clients)
        clientArrivals += c.arrivals;
    EXPECT_EQ(clientArrivals, rep.arrivals);
}

// The acceptance stream (examples/demo.scn): the long-job class is a
// sliver of the traffic, so shortest-job-first pulls the overall p95
// below FIFO's, not just the median.
const char *kMixedStream = R"(
scenario demo
arrival poisson mean=130 duration=42000 seed=11
scheduler fifo workers=2
queue cap=64 shed=drop
client interactive weight=19 slo=4500 slo_pct=95 mix=sort:otn:16:log,sort:otn:32:log
client batch weight=1 quota=3 mix=sort:otn:64:log,matmul:otn:16:log,matmul:otc:16:log
)";

TEST(EngineTest, SjfBeatsFifoOnTheMixedStream)
{
    ScenarioSpec spec;
    std::string err;
    ASSERT_TRUE(parseScenario(kMixedStream, spec, err)) << err;
    ASSERT_EQ(describeInvalid(spec), "");

    ScenarioEngine engine(2);
    ScenarioReport fifo = engine.run(spec, SchedulerKind::Fifo);
    ScenarioReport sjf = engine.run(spec, SchedulerKind::Sjf);

    EXPECT_GE(fifo.arrivals, 200u);
    EXPECT_EQ(fifo.arrivals, sjf.arrivals);
    EXPECT_TRUE(fifo.verified);
    EXPECT_TRUE(sjf.verified);
    EXPECT_LT(sjf.sojourn.p95, fifo.sojourn.p95);
    EXPECT_LT(sjf.sojourn.p50, fifo.sojourn.p50);
}

ScenarioSpec
floodSpec()
{
    // One slow worker under an arrival every ~2 ticks: admission
    // control, not service, decides most jobs' fate.
    ScenarioSpec spec = oneClientSpec(ArrivalKind::Poisson, 2, 2000);
    spec.workers = 1;
    return spec;
}

TEST(EngineTest, QuotaShedsOutstandingJobs)
{
    ScenarioSpec spec = floodSpec();
    spec.clients[0].quota = 2;
    ScenarioEngine engine(1);
    ScenarioReport rep = engine.run(spec);
    EXPECT_GT(rep.droppedQuota, 0u);
    EXPECT_EQ(rep.arrivals, rep.completed + rep.droppedQueue +
                                rep.droppedQuota);
    ASSERT_EQ(rep.clients.size(), 1u);
    EXPECT_EQ(rep.clients[0].droppedQuota, rep.droppedQuota);
}

TEST(EngineTest, FullQueueDropsOrDefers)
{
    ScenarioSpec drop = floodSpec();
    drop.queueCap = 2;
    drop.shed = ShedPolicy::Drop;
    ScenarioEngine engine(1);
    ScenarioReport dr = engine.run(drop);
    EXPECT_GT(dr.droppedQueue, 0u);
    EXPECT_LT(dr.completed, dr.arrivals);

    ScenarioSpec defer = drop;
    defer.shed = ShedPolicy::Defer;
    ScenarioReport df = engine.run(defer);
    EXPECT_EQ(df.droppedQueue, 0u);
    EXPECT_GT(df.deferred, 0u);
    // Deferred jobs are parked, not lost: every arrival completes
    // once the backlog drains.
    EXPECT_EQ(df.completed, df.arrivals);
}

TEST(EngineTest, SloTargetsAreEvaluatedPerClient)
{
    ScenarioSpec spec = demoScenario();
    spec.clients[0].slo = 1; // impossible at any load
    ScenarioEngine engine(1);
    ScenarioReport rep = engine.run(spec);
    ASSERT_EQ(rep.clients.size(), 2u);
    EXPECT_FALSE(rep.clients[0].sloPass);
    EXPECT_GT(rep.clients[0].sloObserved, 1u);
    // Client 1 has no target: vacuously passing.
    EXPECT_EQ(rep.clients[1].sloTarget, 0u);
    EXPECT_TRUE(rep.clients[1].sloPass);
    EXPECT_FALSE(rep.sloPass);
}

TEST(EngineTest, TracerRecordsOneSpanPerCompletedJob)
{
    ot::trace::Tracer tracer;
    tracer.setEnabled(true);
    ScenarioEngine engine(1);
    engine.setTracer(&tracer);
    ScenarioReport rep = engine.run(demoScenario());

    std::size_t spans = 0;
    for (const ot::trace::Event &e : tracer.events())
        if (e.kind == ot::trace::EventKind::Span &&
            std::strcmp(e.cat, "scenario") == 0)
            ++spans;
    EXPECT_EQ(spans, rep.completed);
}

} // namespace

/**
 * @file
 * Unit tests for the VLSI model substrate: bit math, wire delay rules
 * and the cost model.
 */

#include <gtest/gtest.h>

#include "vlsi/bitmath.hh"
#include "vlsi/cost_model.hh"
#include "vlsi/delay.hh"
#include "vlsi/word.hh"

namespace {

using namespace ot::vlsi;

TEST(BitMath, Ilog2Floor)
{
    EXPECT_EQ(ilog2Floor(1), 0u);
    EXPECT_EQ(ilog2Floor(2), 1u);
    EXPECT_EQ(ilog2Floor(3), 1u);
    EXPECT_EQ(ilog2Floor(4), 2u);
    EXPECT_EQ(ilog2Floor(1023), 9u);
    EXPECT_EQ(ilog2Floor(1024), 10u);
}

TEST(BitMath, Ilog2Ceil)
{
    EXPECT_EQ(ilog2Ceil(1), 0u);
    EXPECT_EQ(ilog2Ceil(2), 1u);
    EXPECT_EQ(ilog2Ceil(3), 2u);
    EXPECT_EQ(ilog2Ceil(4), 2u);
    EXPECT_EQ(ilog2Ceil(5), 3u);
    EXPECT_EQ(ilog2Ceil(1024), 10u);
    EXPECT_EQ(ilog2Ceil(1025), 11u);
}

TEST(BitMath, IsPow2)
{
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_TRUE(isPow2(64));
    EXPECT_FALSE(isPow2(3));
    EXPECT_FALSE(isPow2(63));
    EXPECT_FALSE(isPow2(0));
}

TEST(BitMath, NextPow2)
{
    EXPECT_EQ(nextPow2(1), 1u);
    EXPECT_EQ(nextPow2(2), 2u);
    EXPECT_EQ(nextPow2(3), 4u);
    EXPECT_EQ(nextPow2(5), 8u);
    EXPECT_EQ(nextPow2(1023), 1024u);
}

TEST(BitMath, CeilDiv)
{
    EXPECT_EQ(ceilDiv(10, 3), 4u);
    EXPECT_EQ(ceilDiv(9, 3), 3u);
    EXPECT_EQ(ceilDiv(1, 7), 1u);
    EXPECT_EQ(ceilDiv(0, 7), 0u);
}

TEST(BitMath, LogCeilAtLeast1)
{
    EXPECT_EQ(logCeilAtLeast1(1), 1u);
    EXPECT_EQ(logCeilAtLeast1(2), 1u);
    EXPECT_EQ(logCeilAtLeast1(4), 2u);
    EXPECT_EQ(logCeilAtLeast1(16), 4u);
}

TEST(BitMath, ReverseBits)
{
    EXPECT_EQ(reverseBits(0b001, 3), 0b100u);
    EXPECT_EQ(reverseBits(0b110, 3), 0b011u);
    EXPECT_EQ(reverseBits(0b1011, 4), 0b1101u);
    EXPECT_EQ(reverseBits(5, 0), 0u);
}

TEST(Delay, ConstantModelIsLengthIndependent)
{
    EXPECT_EQ(wireDelay(DelayModel::Constant, 1), 1u);
    EXPECT_EQ(wireDelay(DelayModel::Constant, 1000000), 1u);
}

TEST(Delay, LogModelGrowsLogarithmically)
{
    EXPECT_EQ(wireDelay(DelayModel::Logarithmic, 1), 1u);
    EXPECT_EQ(wireDelay(DelayModel::Logarithmic, 2), 2u);
    EXPECT_EQ(wireDelay(DelayModel::Logarithmic, 1024), 11u);
    // Doubling length adds one stage.
    for (WireLength len = 2; len < (1u << 20); len *= 2)
        EXPECT_EQ(wireDelay(DelayModel::Logarithmic, 2 * len),
                  wireDelay(DelayModel::Logarithmic, len) + 1);
}

TEST(Delay, LinearModelIsProportional)
{
    EXPECT_EQ(wireDelay(DelayModel::Linear, 64), 64u);
    EXPECT_EQ(wireDelay(DelayModel::Linear, 0), 1u);
}

TEST(Delay, ModelNames)
{
    EXPECT_EQ(toString(DelayModel::Constant), "constant-delay");
    EXPECT_NE(toString(DelayModel::Logarithmic).find("Thompson"),
              std::string::npos);
}

TEST(Word, DefaultFormatIsTwoLogN)
{
    EXPECT_EQ(WordFormat::forProblemSize(16).bits(), 8u);
    EXPECT_EQ(WordFormat::forProblemSize(1024).bits(), 20u);
    EXPECT_EQ(WordFormat::forProblemSize(1).bits(), 2u);
}

TEST(Word, MaxValue)
{
    EXPECT_EQ(WordFormat(4).maxValue(), 15u);
    EXPECT_EQ(WordFormat(8).maxValue(), 255u);
    // Wide words saturate rather than overflow.
    EXPECT_EQ(WordFormat(64).maxValue(), (std::uint64_t{1} << 63) - 1);
}

TEST(CostModel, WordAlongPathPipelinesBits)
{
    CostModel cm(DelayModel::Constant, WordFormat(8));
    std::vector<WireLength> path{4, 4, 4};
    // 3 edges at unit delay + 7 pipelined bits.
    EXPECT_EQ(cm.wordAlongPath(path), 3u + 7u);
}

TEST(CostModel, LogDelayChargesPerEdgeLog)
{
    CostModel cm(DelayModel::Logarithmic, WordFormat(8));
    std::vector<WireLength> path{16, 4};
    EXPECT_EQ(cm.pathLatency(path), (4u + 1u) + (2u + 1u));
    EXPECT_EQ(cm.wordAlongPath(path), cm.pathLatency(path) + 7u);
}

TEST(CostModel, ScaledTreesMakeEdgesConstant)
{
    CostModel plain(DelayModel::Logarithmic, WordFormat(8), false);
    CostModel scaled(DelayModel::Logarithmic, WordFormat(8), true);
    std::vector<WireLength> path{1024, 512, 256};
    EXPECT_GT(plain.pathLatency(path), scaled.pathLatency(path));
    EXPECT_EQ(scaled.pathLatency(path), 3u);
}

TEST(CostModel, ReduceAddsPerNodeCombine)
{
    CostModel cm(DelayModel::Constant, WordFormat(4));
    std::vector<WireLength> path{2, 2};
    EXPECT_EQ(cm.reducePath(path), cm.wordAlongPath(path) + 2);
}

TEST(CostModel, PipelineTotal)
{
    EXPECT_EQ(CostModel::pipelineTotal(100, 1, 7), 100u);
    EXPECT_EQ(CostModel::pipelineTotal(100, 5, 7), 100u + 4 * 7);
    EXPECT_EQ(CostModel::pipelineTotal(100, 0, 7), 0u);
}

TEST(CostModel, BitSerialOps)
{
    CostModel cm(DelayModel::Logarithmic, WordFormat(10));
    EXPECT_EQ(cm.bitSerialOp(), 10u);
    EXPECT_EQ(cm.bitSerialMultiply(), 20u);
    EXPECT_EQ(cm.wordSeparation(), 10u);
}

} // namespace

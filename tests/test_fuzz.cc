/**
 * @file
 * Differential fuzzing of the OTN machine semantics: random sequences
 * of primitives run against an independent shadow model (plain arrays
 * with the Section II-B semantics re-implemented from scratch); every
 * register plane and root port must match after every operation.
 * Catches addressing, selector and reduction bugs that targeted tests
 * can miss.
 */

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "otn/network.hh"
#include "sim/rng.hh"

namespace {

using namespace ot::otn;
using ot::sim::Rng;
using ot::vlsi::CostModel;
using ot::vlsi::DelayModel;
using ot::vlsi::WordFormat;

/** Independent re-implementation of the machine state & primitives. */
class ShadowOtn
{
  public:
    explicit ShadowOtn(std::size_t n)
        : n(n),
          regs(kNumRegs, std::vector<std::uint64_t>(n * n, 0)),
          rowRoot(n, kNull),
          colRoot(n, kNull)
    {
    }

    std::size_t n;
    std::vector<std::vector<std::uint64_t>> regs;
    std::vector<std::uint64_t> rowRoot;
    std::vector<std::uint64_t> colRoot;

    std::uint64_t &
    at(unsigned r, std::size_t i, std::size_t j)
    {
        return regs[r][i * n + j];
    }
};

/** The enumerable selector alphabet the fuzzer draws from. */
struct SelSpec
{
    enum Kind { All, Diag, RowIs, ColIs, Even } kind;
    std::size_t arg;

    bool
    test(std::size_t i, std::size_t j) const
    {
        switch (kind) {
          case All:
            return true;
          case Diag:
            return i == j;
          case RowIs:
            return i == arg;
          case ColIs:
            return j == arg;
          case Even:
            return j % 2 == 0;
        }
        return false;
    }

    Selector
    toSelector() const
    {
        switch (kind) {
          case All:
            return Sel::all();
          case Diag:
            return Sel::diag();
          case RowIs:
            return Sel::rowIs(arg);
          case ColIs:
            return Sel::colIs(arg);
          case Even:
            return Sel::evenAlong(Axis::Row);
        }
        return Sel::none();
    }
};

/** Params: (seed, N). */
class FuzzOtn
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>>
{
  protected:
    void
    expectStatesMatch(OrthogonalTreesNetwork &net, ShadowOtn &shadow,
                      int step)
    {
        for (unsigned r = 0; r < kNumRegs; ++r)
            for (std::size_t i = 0; i < shadow.n; ++i)
                for (std::size_t j = 0; j < shadow.n; ++j)
                    ASSERT_EQ(net.reg(static_cast<Reg>(r), i, j),
                              shadow.at(r, i, j))
                        << "step " << step << " reg " << r << " @(" << i
                        << "," << j << ")";
        for (std::size_t i = 0; i < shadow.n; ++i) {
            ASSERT_EQ(net.rowRoot(i), shadow.rowRoot[i])
                << "step " << step << " rowRoot " << i;
            ASSERT_EQ(net.colRoot(i), shadow.colRoot[i])
                << "step " << step << " colRoot " << i;
        }
    }
};

TEST_P(FuzzOtn, RandomPrimitiveSequencesMatchShadow)
{
    auto [seed, kN] = GetParam();
    Rng rng(static_cast<std::uint64_t>(seed) * 7907 + 13);
    CostModel cost(DelayModel::Logarithmic, WordFormat::forProblemSize(kN));
    OrthogonalTreesNetwork net(kN, cost);
    ShadowOtn shadow(kN);

    auto rand_reg = [&] {
        return static_cast<unsigned>(rng.uniform(0, kNumRegs - 1));
    };
    auto rand_sel = [&]() -> SelSpec {
        auto kind =
            static_cast<SelSpec::Kind>(rng.uniform(0, 4));
        return {kind, static_cast<std::size_t>(rng.uniform(0, kN - 1))};
    };

    // Seed some data through legal channels.
    for (std::size_t i = 0; i < kN; ++i) {
        std::uint64_t v = rng.uniform(0, 60);
        net.rowRoot(i) = v;
        shadow.rowRoot[i] = v;
    }

    const int steps = 300;
    for (int step = 0; step < steps; ++step) {
        int op = static_cast<int>(rng.uniform(0, 6));
        Axis axis = rng.bernoulli(0.5) ? Axis::Row : Axis::Col;
        std::size_t idx = rng.uniform(0, kN - 1);
        unsigned src = rand_reg(), dst = rand_reg();
        SelSpec sel = rand_sel();

        auto leaf = [&](std::size_t k) {
            return axis == Axis::Row ? std::make_pair(idx, k)
                                     : std::make_pair(k, idx);
        };
        auto &root = axis == Axis::Row ? shadow.rowRoot[idx]
                                       : shadow.colRoot[idx];

        switch (op) {
          case 0: { // ROOTTOLEAF
            net.rootToLeaf(axis, idx, sel.toSelector(),
                           static_cast<Reg>(dst));
            for (std::size_t k = 0; k < kN; ++k) {
                auto [i, j] = leaf(k);
                if (sel.test(i, j))
                    shadow.at(dst, i, j) = root;
            }
            break;
          }
          case 1: { // LEAFTOROOT — needs a unique selection
            std::size_t k0 = rng.uniform(0, kN - 1);
            auto [si, sj] = leaf(k0);
            // Exercises the Sel::pred escape hatch.
            Selector unique = Sel::pred(
                [si = si, sj = sj](std::size_t i, std::size_t j) {
                    return i == si && j == sj;
                });
            net.leafToRoot(axis, idx, unique, static_cast<Reg>(src));
            root = shadow.at(src, si, sj);
            break;
          }
          case 2: { // COUNT
            net.countLeafToRoot(axis, idx, static_cast<Reg>(src));
            std::uint64_t c = 0;
            for (std::size_t k = 0; k < kN; ++k) {
                auto [i, j] = leaf(k);
                c += shadow.at(src, i, j) != 0;
            }
            root = c;
            break;
          }
          case 3: { // SUM
            net.sumLeafToRoot(axis, idx, sel.toSelector(),
                              static_cast<Reg>(src));
            std::uint64_t s = 0;
            for (std::size_t k = 0; k < kN; ++k) {
                auto [i, j] = leaf(k);
                if (sel.test(i, j))
                    s += shadow.at(src, i, j);
            }
            root = s;
            break;
          }
          case 4: { // MIN
            net.minLeafToRoot(axis, idx, sel.toSelector(),
                              static_cast<Reg>(src));
            std::uint64_t m = kNull;
            for (std::size_t k = 0; k < kN; ++k) {
                auto [i, j] = leaf(k);
                if (sel.test(i, j))
                    m = std::min(m, shadow.at(src, i, j));
            }
            root = m;
            break;
          }
          case 5: { // PREFIX
            net.prefixSumLeafToLeaf(axis, idx, sel.toSelector(),
                                    static_cast<Reg>(src),
                                    static_cast<Reg>(dst));
            std::uint64_t run = 0;
            for (std::size_t k = 0; k < kN; ++k) {
                auto [i, j] = leaf(k);
                if (sel.test(i, j))
                    run += shadow.at(src, i, j);
                shadow.at(dst, i, j) = run;
            }
            break;
          }
          case 6: { // base op: bounded arithmetic on two registers
            unsigned mode = static_cast<unsigned>(rng.uniform(0, 2));
            net.baseOp(net.cost().bitSerialOp(),
                       [&](std::size_t i, std::size_t j) {
                           auto a = net.reg(static_cast<Reg>(src), i, j);
                           auto b = net.reg(static_cast<Reg>(dst), i, j);
                           std::uint64_t r = mode == 0   ? (a & 0xff) +
                                                             (b & 0xff)
                                             : mode == 1 ? std::min(a, b)
                                                         : (a ^ b) & 0xff;
                           net.reg(static_cast<Reg>(dst), i, j) = r;
                       });
            for (std::size_t i = 0; i < kN; ++i)
                for (std::size_t j = 0; j < kN; ++j) {
                    auto a = shadow.at(src, i, j);
                    auto b = shadow.at(dst, i, j);
                    std::uint64_t r = mode == 0   ? (a & 0xff) + (b & 0xff)
                                      : mode == 1 ? std::min(a, b)
                                                  : (a ^ b) & 0xff;
                    shadow.at(dst, i, j) = r;
                }
            break;
          }
        }
        expectStatesMatch(net, shadow, step);
        if (::testing::Test::HasFatalFailure())
            return;
    }
    // Model time advanced for every charged step.
    EXPECT_GT(net.now(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsN8, FuzzOtn,
    ::testing::Combine(::testing::Range(1, 13),
                       ::testing::Values<std::size_t>(8)));

// The same sequences at N = 16 cover a deeper tree (4 levels) and the
// even/odd selector patterns beyond one subtree.
INSTANTIATE_TEST_SUITE_P(
    SeedsN16, FuzzOtn,
    ::testing::Combine(::testing::Range(1, 7),
                       ::testing::Values<std::size_t>(16)));

} // namespace

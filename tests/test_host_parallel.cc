/**
 * @file
 * Tests for the host-parallel execution engine (sim/thread_pool,
 * sim/chain_engine): the thread pool's dispatch contract, and the
 * bit-identical-accounting guarantee — model time, step counts,
 * register contents and stats counters must not depend on
 * OT_HOST_THREADS.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "graph/generators.hh"
#include "graph/reference_algorithms.hh"
#include "otc/emulated_otn.hh"
#include "otc/network.hh"
#include "otc/sort.hh"
#include "otn/connected_components.hh"
#include "otn/matmul.hh"
#include "otn/network.hh"
#include "otn/sort.hh"
#include "sim/rng.hh"
#include "sim/thread_pool.hh"

namespace {

using namespace ot::otn;
using ot::sim::Rng;
using ot::sim::ThreadPool;
using ot::vlsi::CostModel;
using ot::vlsi::DelayModel;
using ot::vlsi::WordFormat;

CostModel
logCost(std::size_t n)
{
    return {DelayModel::Logarithmic, WordFormat::forProblemSize(n)};
}

// ----------------------------------------------------------------------
// ThreadPool
// ----------------------------------------------------------------------

TEST(ThreadPool, RunsEveryLaneExactlyOnce)
{
    auto &pool = ThreadPool::shared();
    constexpr unsigned kLanes = 6;
    std::vector<std::atomic<int>> hits(kLanes);
    pool.run(kLanes, [&](unsigned lane) { ++hits[lane]; });
    for (unsigned t = 0; t < kLanes; ++t)
        EXPECT_EQ(hits[t].load(), 1) << "lane " << t;
    EXPECT_GE(pool.workerCount(), kLanes - 1);
}

TEST(ThreadPool, LaneZeroRunsOnTheCaller)
{
    std::thread::id lane0;
    ThreadPool::shared().run(4, [&](unsigned lane) {
        if (lane == 0)
            lane0 = std::this_thread::get_id();
    });
    EXPECT_EQ(lane0, std::this_thread::get_id());
}

TEST(ThreadPool, NestedRunFallsBackToInline)
{
    std::atomic<int> inner_hits{0};
    ThreadPool::shared().run(3, [&](unsigned) {
        // A job launched from inside a worker must not deadlock: it
        // runs all its lanes inline on the calling lane.
        ThreadPool::shared().run(2, [&](unsigned) { ++inner_hits; });
    });
    EXPECT_EQ(inner_hits.load(), 3 * 2);
}

TEST(ThreadPool, DefaultThreadsHonoursEnvironment)
{
    const char *saved = std::getenv("OT_HOST_THREADS");
    std::string saved_value = saved ? saved : "";

    ::setenv("OT_HOST_THREADS", "3", 1);
    EXPECT_EQ(ThreadPool::defaultThreads(), 3u);
    ::setenv("OT_HOST_THREADS", "1", 1);
    EXPECT_EQ(ThreadPool::defaultThreads(), 1u);
    // Invalid values fall back to hardware concurrency (>= 1).
    ::setenv("OT_HOST_THREADS", "zero", 1);
    EXPECT_GE(ThreadPool::defaultThreads(), 1u);
    ::setenv("OT_HOST_THREADS", "0", 1);
    EXPECT_GE(ThreadPool::defaultThreads(), 1u);

    if (saved)
        ::setenv("OT_HOST_THREADS", saved_value.c_str(), 1);
    else
        ::unsetenv("OT_HOST_THREADS");
}

// ----------------------------------------------------------------------
// Engine equivalence: OT_HOST_THREADS must not change any observable
// ----------------------------------------------------------------------

/** Everything a run can observe about a network's final state. */
void
expectSameMachineState(OrthogonalTreesNetwork &a, OrthogonalTreesNetwork &b)
{
    ASSERT_EQ(a.n(), b.n());
    EXPECT_EQ(a.now(), b.now()) << "model time diverged";
    EXPECT_EQ(a.acct().steps(), b.acct().steps()) << "step count diverged";
    for (unsigned r = 0; r < kNumRegs; ++r) {
        auto ra = a.readBase(static_cast<Reg>(r));
        auto rb = b.readBase(static_cast<Reg>(r));
        for (std::size_t i = 0; i < a.n(); ++i)
            for (std::size_t j = 0; j < a.n(); ++j)
                ASSERT_EQ(ra(i, j), rb(i, j))
                    << "reg " << r << " @(" << i << "," << j << ")";
    }
    for (std::size_t i = 0; i < a.n(); ++i) {
        ASSERT_EQ(a.rowRoot(i), b.rowRoot(i)) << "rowRoot " << i;
        ASSERT_EQ(a.colRoot(i), b.colRoot(i)) << "colRoot " << i;
    }
    const auto &ca = a.stats().counters();
    const auto &cb = b.stats().counters();
    ASSERT_EQ(ca.size(), cb.size()) << "stat counter sets diverged";
    for (const auto &[name, c] : ca) {
        auto it = cb.find(name);
        ASSERT_NE(it, cb.end()) << "missing counter " << name;
        EXPECT_EQ(c.value(), it->second.value()) << "counter " << name;
    }
}

class EngineEquivalence : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(EngineEquivalence, SortOtn)
{
    const std::size_t n = GetParam();
    Rng rng(2026 + n);
    std::vector<std::uint64_t> values(n);
    for (auto &v : values)
        v = rng.uniform(0, n - 1);

    OrthogonalTreesNetwork seq(n, logCost(n), {}, /*host_threads=*/1);
    OrthogonalTreesNetwork par(n, logCost(n), {}, /*host_threads=*/4);
    ASSERT_EQ(par.hostThreads(), 4u);
    auto rs = sortOtn(seq, values);
    auto rp = sortOtn(par, values);

    EXPECT_EQ(rs.sorted, rp.sorted);
    EXPECT_EQ(rs.time, rp.time);
    expectSameMachineState(seq, par);
}

TEST_P(EngineEquivalence, MatMulOtn)
{
    const std::size_t n = GetParam();
    Rng rng(77 + n);
    ot::linalg::IntMatrix a(n, n, 0), b(n, n, 0);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j) {
            a(i, j) = rng.uniform(0, 9);
            b(i, j) = rng.uniform(0, 9);
        }

    OrthogonalTreesNetwork seq(n, logCost(n * n * 81), {}, 1);
    OrthogonalTreesNetwork par(n, logCost(n * n * 81), {}, 4);
    auto rs = matMulPipelined(seq, a, b);
    auto rp = matMulPipelined(par, a, b);

    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            ASSERT_EQ(rs.product(i, j), rp.product(i, j));
    EXPECT_EQ(rs.time, rp.time);
    EXPECT_EQ(rs.firstRowLatency, rp.firstRowLatency);
    expectSameMachineState(seq, par);
}

TEST_P(EngineEquivalence, ConnectedComponentsOtn)
{
    const std::size_t n = GetParam();
    Rng rng(4242 + n);
    auto g = ot::graph::randomGnp(n, 0.3, rng);

    OrthogonalTreesNetwork seq(n, logCost(n), {}, 1);
    OrthogonalTreesNetwork par(n, logCost(n), {}, 4);
    auto rs = connectedComponentsOtn(seq, g);
    auto rp = connectedComponentsOtn(par, g);

    EXPECT_EQ(rs.labels, rp.labels);
    EXPECT_EQ(rs.componentCount, rp.componentCount);
    EXPECT_EQ(rs.iterations, rp.iterations);
    EXPECT_EQ(rs.time, rp.time);
    expectSameMachineState(seq, par);
    // And the labels are actually right.
    EXPECT_EQ(rs.labels, ot::graph::connectedComponents(g));
}

INSTANTIATE_TEST_SUITE_P(Sweep, EngineEquivalence,
                         ::testing::Values(4, 8, 16));

TEST(EngineEquivalenceOtc, SortOtc)
{
    Rng rng(99);
    std::vector<std::uint64_t> values(24);
    for (auto &v : values)
        v = rng.uniform(0, 60);
    CostModel cost(DelayModel::Logarithmic, WordFormat::forProblemSize(64));

    ot::otc::OtcNetwork seq(8, 4, cost, /*host_threads=*/1);
    ot::otc::OtcNetwork par(8, 4, cost, /*host_threads=*/4);
    ASSERT_EQ(par.hostThreads(), 4u);
    auto rs = ot::otc::sortOtc(seq, values);
    auto rp = ot::otc::sortOtc(par, values);

    EXPECT_EQ(rs.sorted, rp.sorted);
    EXPECT_EQ(rs.time, rp.time);
    EXPECT_EQ(seq.now(), par.now());
    EXPECT_EQ(seq.acct().steps(), par.acct().steps());
    const auto &ca = seq.stats().counters();
    const auto &cb = par.stats().counters();
    ASSERT_EQ(ca.size(), cb.size());
    for (const auto &[name, c] : ca)
        EXPECT_EQ(c.value(), cb.at(name).value()) << "counter " << name;
}

TEST(EngineEquivalenceOtc, SortOnEmulatedOtn)
{
    Rng rng(7);
    std::vector<std::uint64_t> values(16);
    for (auto &v : values)
        v = rng.uniform(0, 15);

    ot::otc::OtcEmulatedOtn seq(16, logCost(16), 0, /*host_threads=*/1);
    ot::otc::OtcEmulatedOtn par(16, logCost(16), 0, /*host_threads=*/4);
    auto rs = sortOtn(seq, values);
    auto rp = sortOtn(par, values);

    EXPECT_EQ(rs.sorted, rp.sorted);
    EXPECT_EQ(rs.time, rp.time);
    expectSameMachineState(seq, par);
}

// ----------------------------------------------------------------------
// Determinism of the accounting primitives themselves
// ----------------------------------------------------------------------

TEST(HostParallelDeterminism, UnevenChainsChargeTheMax)
{
    const std::size_t n = 8;
    OrthogonalTreesNetwork seq(n, logCost(n), {}, 1);
    OrthogonalTreesNetwork par(n, logCost(n), {}, 4);
    for (auto *net : {&seq, &par}) {
        ModelTime one = net->treeTraversalCost();
        net->resetTime();
        // Row i's chain is (i % 3) + 1 traversals long; the pardo must
        // charge exactly the longest chain.
        ModelTime charged = net->parallelFor(n, [&](std::size_t i) {
            for (std::size_t rep = 0; rep <= i % 3; ++rep)
                net->rootToLeaf(Axis::Row, i, Sel::all(), Reg::A);
        });
        EXPECT_EQ(charged, 3 * one);
        EXPECT_EQ(net->now(), 3 * one);
        EXPECT_EQ(net->acct().steps(), 1u);
    }
    expectSameMachineState(seq, par);
}

TEST(HostParallelDeterminism, NestedParallelForIsRaceFreeAndIdentical)
{
    // Race-free nesting: the outer pardo splits the rows in halves and
    // the inner pardo works each half's rows — every leaf iteration
    // touches a distinct row tree.
    const std::size_t n = 8;
    auto run = [&](unsigned threads) {
        OrthogonalTreesNetwork net(n, logCost(n), {}, threads);
        ModelTime one = net.treeTraversalCost();
        ModelTime charged = net.parallelFor(2, [&](std::size_t half) {
            net.parallelFor(n / 2, [&](std::size_t r) {
                std::size_t row = half * (n / 2) + r;
                net.rowRoot(row) = row;
                for (std::size_t rep = 0; rep <= row % 4; ++rep)
                    net.rootToLeaf(Axis::Row, row, Sel::all(), Reg::C);
            });
        });
        EXPECT_EQ(charged, 4 * one);
        return std::make_pair(net.now(), net.readBase(Reg::C));
    };
    auto [t1, m1] = run(1);
    auto [t4, m4] = run(4);
    EXPECT_EQ(t1, t4);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            ASSERT_EQ(m1(i, j), m4(i, j)) << "@(" << i << "," << j << ")";
}

TEST(HostParallelDeterminism, RunUnchargedComposesWithPooledLoops)
{
    const std::size_t n = 8;
    auto run = [&](unsigned threads) {
        OrthogonalTreesNetwork net(n, logCost(n), {}, threads);
        for (std::size_t i = 0; i < n; ++i)
            net.rowRoot(i) = i;
        // The pipedo idiom: the would-be cost of a parallel section,
        // with the clock stopped.
        ModelTime would = net.runUncharged([&] {
            net.parallelFor(n, [&](std::size_t i) {
                net.rootToLeaf(Axis::Row, i, Sel::all(), Reg::A);
                net.rootToLeaf(Axis::Row, i, Sel::all(), Reg::B);
            });
        });
        EXPECT_EQ(net.now(), 0u);
        return would;
    };
    EXPECT_EQ(run(1), run(4));
    OrthogonalTreesNetwork probe(n, logCost(n), {}, 1);
    EXPECT_EQ(run(1), 2 * probe.treeTraversalCost());
}

TEST(HostParallelDeterminism, StatCountersMergeExactly)
{
    const std::size_t n = 16;
    auto counts = [&](unsigned threads) {
        OrthogonalTreesNetwork net(n, logCost(n), {}, threads);
        net.parallelFor(n, [&](std::size_t i) {
            net.rootToLeaf(Axis::Row, i, Sel::all(), Reg::A);
            net.countLeafToRoot(Axis::Row, i, Reg::A);
        });
        return std::make_pair(
            net.stats().counter("otn.rootToLeaf").value(),
            net.stats().counter("otn.countLeafToRoot").value());
    };
    auto [bc1, cc1] = counts(1);
    auto [bc4, cc4] = counts(4);
    EXPECT_EQ(bc1, n);
    EXPECT_EQ(cc1, n);
    EXPECT_EQ(bc1, bc4);
    EXPECT_EQ(cc1, cc4);
}

TEST(HostParallelDeterminism, VectorCirculateChargesOneStep)
{
    CostModel cost(DelayModel::Logarithmic, WordFormat::forProblemSize(64));
    for (unsigned threads : {1u, 4u}) {
        ot::otc::OtcNetwork net(4, 4, cost, threads);
        net.resetTime();
        ModelTime dt = net.vectorCirculate(ot::otc::Axis::Row, 0, {Reg::A});
        EXPECT_EQ(dt, net.circulateCost());
        EXPECT_EQ(net.now(), dt);
        // K circulates happened functionally...
        EXPECT_EQ(net.stats().counter("otc.circulate").value(), net.k());
        // ...but only one step advanced the clock.
        EXPECT_EQ(net.acct().steps(), 1u);
    }
}

} // namespace

/**
 * @file
 * Tests for the model-time tracing subsystem (src/trace): the
 * determinism contract (event streams are bit-identical for any
 * OT_HOST_THREADS), the accounting contract (Charge durations sum
 * exactly to TimeAccountant::now() and match phaseTimes()), the
 * bounded-buffer drop semantics, and the Chrome trace-event export.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <vector>

#include "graph/generators.hh"
#include "otc/network.hh"
#include "otc/sort.hh"
#include "otn/connected_components.hh"
#include "otn/matmul.hh"
#include "otn/network.hh"
#include "otn/sort.hh"
#include "sim/rng.hh"
#include "trace/analysis.hh"
#include "trace/export.hh"
#include "trace/tracer.hh"

namespace {

using namespace ot::otn;
using ot::sim::Rng;
using ot::trace::Event;
using ot::trace::EventKind;
using ot::trace::Tracer;
using ot::vlsi::CostModel;
using ot::vlsi::DelayModel;
using ot::vlsi::WordFormat;

CostModel
logCost(std::size_t n)
{
    return {DelayModel::Logarithmic, WordFormat::forProblemSize(n)};
}

void
expectSameEvents(const Tracer &a, const Tracer &b)
{
    ASSERT_EQ(a.events().size(), b.events().size())
        << "event counts diverged";
    for (std::size_t i = 0; i < a.events().size(); ++i)
        ASSERT_TRUE(ot::trace::eventsEqual(a.events()[i], b.events()[i]))
            << "event " << i << " diverged ("
            << a.events()[i].name << " vs " << b.events()[i].name << ")";
    EXPECT_EQ(a.dropped(), b.dropped());
}

// ----------------------------------------------------------------------
// Determinism: the merged stream must not depend on host threads
// ----------------------------------------------------------------------

Tracer
traceSort(unsigned threads, std::size_t capacity = Tracer::kDefaultCapacity)
{
    const std::size_t n = 8;
    Rng rng(2026);
    std::vector<std::uint64_t> values(n);
    for (auto &v : values)
        v = rng.uniform(0, n - 1);

    Tracer tracer(capacity);
    tracer.setEnabled(true);
    OrthogonalTreesNetwork net(n, logCost(n), {}, threads);
    net.setTracer(&tracer);
    sortOtn(net, values);
    net.setTracer(nullptr);
    return tracer;
}

TEST(TraceDeterminism, SortOtnIdenticalAcrossThreads)
{
    Tracer seq = traceSort(1);
    Tracer par = traceSort(4);
    EXPECT_GT(seq.events().size(), 0u);
    expectSameEvents(seq, par);
}

TEST(TraceDeterminism, MatMulOtnIdenticalAcrossThreads)
{
    const std::size_t n = 8;
    auto run = [&](unsigned threads) {
        Rng rng(77);
        ot::linalg::IntMatrix a(n, n, 0), b(n, n, 0);
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = 0; j < n; ++j) {
                a(i, j) = rng.uniform(0, 9);
                b(i, j) = rng.uniform(0, 9);
            }
        Tracer tracer;
        tracer.setEnabled(true);
        OrthogonalTreesNetwork net(n, logCost(n * n * 81), {}, threads);
        net.setTracer(&tracer);
        matMulPipelined(net, a, b);
        net.setTracer(nullptr);
        return tracer;
    };
    Tracer seq = run(1);
    Tracer par = run(4);
    EXPECT_GT(seq.events().size(), 0u);
    expectSameEvents(seq, par);
}

TEST(TraceDeterminism, ConnectedComponentsIdenticalAcrossThreads)
{
    const std::size_t n = 8;
    auto run = [&](unsigned threads) {
        Rng rng(4242);
        auto g = ot::graph::randomGnp(n, 0.3, rng);
        Tracer tracer;
        tracer.setEnabled(true);
        OrthogonalTreesNetwork net(n, logCost(n), {}, threads);
        net.setTracer(&tracer);
        connectedComponentsOtn(net, g);
        net.setTracer(nullptr);
        return tracer;
    };
    Tracer seq = run(1);
    Tracer par = run(4);
    EXPECT_GT(seq.events().size(), 0u);
    expectSameEvents(seq, par);
}

// ----------------------------------------------------------------------
// Accounting: charges are the stream of record
// ----------------------------------------------------------------------

TEST(TraceAccounting, ChargesSumToNowAndMatchPhaseTimes)
{
    const std::size_t n = 8;
    Rng rng(11);
    std::vector<std::uint64_t> values(n);
    for (auto &v : values)
        v = rng.uniform(0, n - 1);

    Tracer tracer;
    tracer.setEnabled(true);
    OrthogonalTreesNetwork net(n, logCost(n), {}, 4);
    net.setTracer(&tracer);
    sortOtn(net, values);

    auto summary = ot::trace::analyze(tracer);
    EXPECT_EQ(summary.total, net.now());
    EXPECT_EQ(summary.steps, net.acct().steps());
    EXPECT_EQ(summary.droppedEvents, 0u);

    // The analyzer's per-phase totals must agree with the
    // accountant's own attribution, phase by phase.
    ot::vlsi::ModelTime named = 0;
    for (const auto &[phase, t] : net.acct().phaseTimes()) {
        auto it = summary.perPhase.find(phase);
        ASSERT_NE(it, summary.perPhase.end()) << "missing phase " << phase;
        EXPECT_EQ(it->second, t) << "phase " << phase;
        named += t;
    }
    ot::vlsi::ModelTime unphased = 0;
    if (auto it = summary.perPhase.find(""); it != summary.perPhase.end())
        unphased = it->second;
    EXPECT_EQ(named + unphased, summary.total);

    // The critical phase chain tiles the whole timeline.
    ASSERT_FALSE(summary.criticalPath.empty());
    EXPECT_EQ(summary.criticalPath.front().begin, 0u);
    EXPECT_EQ(summary.criticalPath.back().end, net.now());
    for (std::size_t i = 1; i < summary.criticalPath.size(); ++i)
        EXPECT_EQ(summary.criticalPath[i].begin,
                  summary.criticalPath[i - 1].end);
    net.setTracer(nullptr);
}

TEST(TraceAccounting, UnchargedSpansAreMarkedAndExcluded)
{
    const std::size_t n = 8;
    Tracer tracer;
    tracer.setEnabled(true);
    OrthogonalTreesNetwork net(n, logCost(n), {}, 4);
    net.setTracer(&tracer);

    // A pipedo block: the spans happen, the clock does not move.
    net.runUncharged([&] {
        net.parallelFor(n, [&](std::size_t i) {
            net.rootToLeaf(Axis::Row, i, Sel::all(), Reg::A);
        });
    });
    EXPECT_EQ(net.now(), 0u);
    // ...then one charged broadcast for contrast.
    net.rootToLeaf(Axis::Row, 0, Sel::all(), Reg::B);

    std::size_t uncharged_spans = 0;
    for (const Event &e : tracer.events())
        if (e.kind == EventKind::Span && !e.charged)
            ++uncharged_spans;
    EXPECT_EQ(uncharged_spans, n);

    auto summary = ot::trace::analyze(tracer);
    EXPECT_EQ(summary.total, net.now());
    const auto &b = summary.perPrimitive.at("rootToLeaf");
    EXPECT_EQ(b.unchargedCount, n);
    EXPECT_EQ(b.count, 1u);
    EXPECT_EQ(b.time, net.now());
    net.setTracer(nullptr);
}

TEST(TraceAccounting, OtcRunSumsToNow)
{
    Rng rng(99);
    std::vector<std::uint64_t> values(24);
    for (auto &v : values)
        v = rng.uniform(0, 60);
    CostModel cost(DelayModel::Logarithmic, WordFormat::forProblemSize(64));

    auto run = [&](unsigned threads) {
        Tracer tracer;
        tracer.setEnabled(true);
        ot::otc::OtcNetwork net(8, 4, cost, threads);
        net.setTracer(&tracer);
        ot::otc::sortOtc(net, values);
        auto summary = ot::trace::analyze(tracer);
        EXPECT_EQ(summary.total, net.now());
        EXPECT_EQ(summary.steps, net.acct().steps());
        net.setTracer(nullptr);
        return tracer;
    };
    Tracer seq = run(1);
    Tracer par = run(4);
    expectSameEvents(seq, par);
}

// ----------------------------------------------------------------------
// Bounded buffer: drop-newest, never corrupt the prefix
// ----------------------------------------------------------------------

TEST(TraceOverflow, DropsCountAndPreserveThePrefix)
{
    Tracer full = traceSort(1);
    ASSERT_GT(full.events().size(), 20u) << "workload too small to cap";

    const std::size_t cap = 20;
    Tracer capped = traceSort(1, cap);
    EXPECT_EQ(capped.events().size(), cap);
    EXPECT_EQ(capped.dropped(), full.events().size() - cap);
    // The retained events are exactly the first `cap` of the full run.
    for (std::size_t i = 0; i < cap; ++i)
        ASSERT_TRUE(
            ot::trace::eventsEqual(capped.events()[i], full.events()[i]))
            << "event " << i << " corrupted by overflow";

    // Even the truncation point is thread-count independent.
    Tracer capped_par = traceSort(4, cap);
    expectSameEvents(capped, capped_par);
}

TEST(TraceOverflow, ClearResetsEventsAndDropCount)
{
    Tracer tracer = traceSort(1, 20);
    EXPECT_GT(tracer.dropped(), 0u);
    tracer.clear();
    EXPECT_EQ(tracer.events().size(), 0u);
    EXPECT_EQ(tracer.dropped(), 0u);
    EXPECT_EQ(tracer.remainingCapacity(), 20u);
}

// ----------------------------------------------------------------------
// Export: the JSON must actually parse
// ----------------------------------------------------------------------

/**
 * Minimal recursive-descent JSON syntax checker (no external JSON
 * library in the image, and the trace file must load in a real
 * viewer, so "looks like JSON" is not enough).
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &s) : _s(s) {}

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return _pos == _s.size();
    }

  private:
    bool
    value()
    {
        if (_pos >= _s.size())
            return false;
        switch (_s[_pos]) {
        case '{':
            return object();
        case '[':
            return array();
        case '"':
            return string();
        case 't':
            return literal("true");
        case 'f':
            return literal("false");
        case 'n':
            return literal("null");
        default:
            return number();
        }
    }

    bool
    object()
    {
        ++_pos; // '{'
        skipWs();
        if (peek() == '}')
            return ++_pos, true;
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++_pos;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++_pos;
                continue;
            }
            if (peek() == '}')
                return ++_pos, true;
            return false;
        }
    }

    bool
    array()
    {
        ++_pos; // '['
        skipWs();
        if (peek() == ']')
            return ++_pos, true;
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++_pos;
                continue;
            }
            if (peek() == ']')
                return ++_pos, true;
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++_pos;
        while (_pos < _s.size() && _s[_pos] != '"') {
            if (_s[_pos] == '\\') {
                ++_pos;
                if (_pos >= _s.size())
                    return false;
                if (_s[_pos] == 'u') {
                    for (int i = 0; i < 4; ++i)
                        if (++_pos >= _s.size() ||
                            !std::isxdigit(
                                static_cast<unsigned char>(_s[_pos])))
                            return false;
                }
            }
            ++_pos;
        }
        if (_pos >= _s.size())
            return false;
        ++_pos; // closing '"'
        return true;
    }

    bool
    number()
    {
        std::size_t start = _pos;
        if (peek() == '-')
            ++_pos;
        while (std::isdigit(static_cast<unsigned char>(peek())))
            ++_pos;
        if (peek() == '.') {
            ++_pos;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++_pos;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++_pos;
            if (peek() == '+' || peek() == '-')
                ++_pos;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++_pos;
        }
        return _pos > start;
    }

    bool
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p, ++_pos)
            if (peek() != *p)
                return false;
        return true;
    }

    char peek() const { return _pos < _s.size() ? _s[_pos] : '\0'; }

    void
    skipWs()
    {
        while (_pos < _s.size() &&
               (_s[_pos] == ' ' || _s[_pos] == '\t' || _s[_pos] == '\n' ||
                _s[_pos] == '\r'))
            ++_pos;
    }

    const std::string &_s;
    std::size_t _pos = 0;
};

TEST(TraceExport, ChromeTraceJsonParses)
{
    Tracer tracer = traceSort(4);
    std::string json = ot::trace::toChromeTraceJson(tracer);
    EXPECT_TRUE(JsonChecker(json).valid()) << json.substr(0, 400);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"modelTimeEnd\""), std::string::npos);
}

TEST(TraceExport, StatsJsonEmbedsAndParses)
{
    const std::size_t n = 8;
    Rng rng(5);
    std::vector<std::uint64_t> values(n);
    for (auto &v : values)
        v = rng.uniform(0, n - 1);

    Tracer tracer;
    tracer.setEnabled(true);
    OrthogonalTreesNetwork net(n, logCost(n), {}, 1);
    net.setTracer(&tracer);
    sortOtn(net, values);
    net.setTracer(nullptr);

    std::string stats = net.stats().toJson();
    EXPECT_TRUE(JsonChecker(stats).valid()) << stats;
    std::string json = ot::trace::toChromeTraceJson(tracer, stats);
    EXPECT_TRUE(JsonChecker(json).valid());
    EXPECT_NE(json.find("\"stats\""), std::string::npos);
}

TEST(TraceExport, SummaryJsonParses)
{
    Tracer tracer = traceSort(1);
    std::string json = ot::trace::analyze(tracer).toJson();
    EXPECT_TRUE(JsonChecker(json).valid()) << json.substr(0, 400);
    EXPECT_NE(json.find("\"perPhase\""), std::string::npos);
    EXPECT_NE(json.find("\"criticalPath\""), std::string::npos);
}

TEST(TraceExport, JsonEscapeHandlesControlCharacters)
{
    EXPECT_EQ(ot::trace::jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(ot::trace::jsonEscape("x\ny"), "x\\ny");
    std::string escaped = ot::trace::jsonEscape(std::string(1, '\x01'));
    EXPECT_EQ(escaped, "\\u0001");
}

// ----------------------------------------------------------------------
// Overhead: disabled tracing must not perturb anything
// ----------------------------------------------------------------------

TEST(TraceOverhead, DisabledTracerRecordsNothingAndTimeIsUnchanged)
{
    const std::size_t n = 8;
    Rng rng(3);
    std::vector<std::uint64_t> values(n);
    for (auto &v : values)
        v = rng.uniform(0, n - 1);

    OrthogonalTreesNetwork plain(n, logCost(n), {}, 4);
    sortOtn(plain, values);

    Tracer off; // never enabled
    OrthogonalTreesNetwork attached(n, logCost(n), {}, 4);
    attached.setTracer(&off);
    sortOtn(attached, values);
    EXPECT_EQ(off.events().size(), 0u);
    EXPECT_EQ(off.dropped(), 0u);
    EXPECT_EQ(attached.now(), plain.now());

    Tracer on;
    on.setEnabled(true);
    OrthogonalTreesNetwork traced(n, logCost(n), {}, 4);
    traced.setTracer(&on);
    sortOtn(traced, values);
    EXPECT_GT(on.events().size(), 0u);
    EXPECT_EQ(traced.now(), plain.now())
        << "tracing changed the model time";
}

} // namespace

/**
 * @file
 * Tests for otcheck (src/check): the lexer, each rule family (the
 * CFG-based ones included), the fixture corpus under tests/check/,
 * the SARIF emitter and baseline machinery, and — the gate the tool
 * exists for — that the shipped src/ + tools/ + bench/ tree checks
 * clean (src/ absolutely, the rest modulo the checked-in baseline)
 * while seeded violations do not.
 */

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/checker.hh"
#include "check/sarif.hh"

namespace {

using ot::check::Diagnostic;

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot read " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** (line, rule) pairs, the comparable essence of a diagnostic set. */
using Findings = std::multiset<std::pair<int, std::string>>;

Findings
findingsOf(const std::vector<Diagnostic> &diags)
{
    Findings f;
    for (const Diagnostic &d : diags)
        f.insert({d.line, d.rule});
    return f;
}

/** Parse `// ... expect: rule[, rule]` annotations, one per line. */
Findings
expectedFindings(const std::string &source)
{
    Findings f;
    std::istringstream in(source);
    std::string line;
    int lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        std::size_t pos = line.find("expect:");
        if (pos == std::string::npos)
            continue;
        std::istringstream rules(line.substr(pos + 7));
        std::string rule;
        while (std::getline(rules, rule, ',')) {
            rule.erase(std::remove_if(rule.begin(), rule.end(),
                                      [](unsigned char c) {
                                          return std::isspace(c);
                                      }),
                       rule.end());
            if (!rule.empty())
                f.insert({lineNo, rule});
        }
    }
    return f;
}

std::string
show(const Findings &f)
{
    std::ostringstream out;
    for (const auto &[line, rule] : f)
        out << "  line " << line << ": " << rule << "\n";
    return out.str();
}

std::vector<Diagnostic>
checkAs(const std::string &virtualPath, const std::string &source)
{
    return ot::check::checkSource(virtualPath, source);
}

// ---------------------------------------------------------------
// Fixture corpus: each tests/check/*.cc file carries its own
// expected diagnostics; bad fixtures must produce exactly them and
// good fixtures none.

TEST(CheckFixtures, CorpusMatchesAnnotations)
{
    const std::string dir = OT_CHECK_FIXTURE_DIR;
    const std::vector<std::string> names = {
        "bad_accounting.cc",        "bad_accounting_cfg.cc",
        "bad_accounting_split.cc",  "bad_allow.cc",
        "bad_determinism.cc",       "bad_hotpath.cc",
        "bad_intrinsics.cc",        "bad_lane_capture.cc",
        "bad_layering.cc",          "bad_lexer_resync.cc",
        "bad_scenario_prng.cc",     "bad_sched_byref.cc",
        "bad_sched_static.cc",      "bad_shared_mutation.cc",
        "bad_topo_dupname.cc",      "bad_topo_fallback.cc",
        "bad_topo_layering.cc",     "bad_topo_unregistered.cc",
        "bad_unreachable.cc",
        "good_accounting.cc",       "good_accounting_cfg.cc",
        "good_accounting_split.cc", "good_determinism.cc",
        "good_hotpath.cc",          "good_intrinsics.cc",
        "good_lane_indexed.cc",     "good_layering.cc",
        "good_lexer.cc",            "good_scenario_prng.cc",
        "good_sched_pure.cc",       "good_shared_api.cc",
        "good_topo_fallback_allow.cc", "good_topo_layering.cc",
        "good_unreachable.cc",
    };
    for (const std::string &name : names) {
        SCOPED_TRACE(name);
        std::string source = slurp(dir + "/" + name);
        ASSERT_FALSE(source.empty());
        Findings expected = expectedFindings(source);
        if (name.compare(0, 5, "good_") == 0) {
            EXPECT_TRUE(expected.empty())
                << "good fixtures must carry no expect: annotations";
        }
        Findings actual = findingsOf(
            ot::check::checkSource("tests/check/" + name, source));
        EXPECT_EQ(expected, actual)
            << "expected:\n" << show(expected) << "actual:\n"
            << show(actual);
    }
}

/** Run several fixtures as one project (cross-file rules need it). */
std::vector<Diagnostic>
checkFixtureProject(const std::vector<std::string> &names)
{
    const std::string dir = OT_CHECK_FIXTURE_DIR;
    std::vector<ot::check::SourceFile> files;
    for (const std::string &name : names)
        files.push_back({"tests/check/" + name, slurp(dir + "/" + name)});
    return ot::check::checkProject(files).diagnostics;
}

// The hotpath-propagation rule only fires across translation units:
// each fixture alone is silent, together they must reproduce exactly
// the bad file's annotations.
TEST(CheckFixtures, TransitiveHotpathProject)
{
    const std::string dir = OT_CHECK_FIXTURE_DIR;
    Findings expected =
        expectedFindings(slurp(dir + "/bad_hotpath_transitive.cc"));
    ASSERT_FALSE(expected.empty());
    Findings actual = findingsOf(checkFixtureProject(
        {"fixture_hotpath_helper.cc", "bad_hotpath_transitive.cc",
         "good_hotpath_transitive.cc"}));
    EXPECT_EQ(expected, actual)
        << "expected:\n" << show(expected) << "actual:\n" << show(actual);
}

TEST(CheckFixtures, IncludeHygieneProject)
{
    const std::string dir = OT_CHECK_FIXTURE_DIR;
    Findings expected =
        expectedFindings(slurp(dir + "/bad_include_hygiene.cc"));
    ASSERT_FALSE(expected.empty());
    Findings actual = findingsOf(checkFixtureProject(
        {"fixture_unused.hh", "fixture_deep.hh", "fixture_gateway.hh",
         "bad_include_hygiene.cc", "good_include_hygiene.cc"}));
    EXPECT_EQ(expected, actual)
        << "expected:\n" << show(expected) << "actual:\n" << show(actual);
}

// The transitive lane-safety rule needs the callee's translation
// unit: the lambda only passes the capture to a helper whose
// summary says "unconditional by-ref mutation".  The diagnostic must
// cite the helper's file and line as the cross-file witness; the
// good twin feeds the callee's index parameter the lane id and the
// summary substitution excuses it.
TEST(CheckFixtures, LaneSafetyTransitiveProject)
{
    const std::string dir = OT_CHECK_FIXTURE_DIR;
    Findings expected =
        expectedFindings(slurp(dir + "/bad_lane_transitive.cc"));
    ASSERT_FALSE(expected.empty());
    std::vector<Diagnostic> diags = checkFixtureProject(
        {"fixture_lane_helper.cc", "bad_lane_transitive.cc",
         "good_lane_transitive.cc"});
    Findings actual = findingsOf(diags);
    EXPECT_EQ(expected, actual)
        << "expected:\n" << show(expected) << "actual:\n" << show(actual);
    ASSERT_EQ(1u, diags.size());
    EXPECT_NE(std::string::npos,
              diags[0].message.find(
                  "is mutated by 'appendSample' at "
                  "src/otn/fixture_lane_helper.cc:"))
        << diags[0].message;
}

// The determinism-taint rule fires only at the scope boundary: the
// workload-layer sink calls a wrapper that is two call-graph hops
// from the banned primitive, and the diagnostic must spell out the
// whole source → sink witness chain.  The good sink crosses the same
// boundary toward a clean helper and must stay silent.
TEST(CheckFixtures, DeterminismTaintProject)
{
    const std::string dir = OT_CHECK_FIXTURE_DIR;
    Findings expected =
        expectedFindings(slurp(dir + "/bad_taint_sink.cc"));
    ASSERT_FALSE(expected.empty());
    std::vector<Diagnostic> diags = checkFixtureProject(
        {"fixture_taint_noise.cc", "fixture_taint_wrapper.cc",
         "bad_taint_sink.cc", "good_taint_sink.cc"});
    Findings actual = findingsOf(diags);
    EXPECT_EQ(expected, actual)
        << "expected:\n" << show(expected) << "actual:\n" << show(actual);
    ASSERT_EQ(1u, diags.size());
    EXPECT_EQ("determinism-taint", diags[0].rule);
    EXPECT_NE(std::string::npos,
              diags[0].message.find(
                  "fixtureJitter() → fixtureRawNoise() → splitmix64 "
                  "at src/analysis/fixture_taint_noise.cc:"))
        << diags[0].message;
}

// Taint also flows through non-call references: a kernel table that
// stores &fixtureRawNoise hands the nondeterminism to whoever invokes
// the entry, so the reference itself is the boundary diagnostic.
TEST(CheckFixtures, TaintThroughFunctionPointerTable)
{
    const std::string dir = OT_CHECK_FIXTURE_DIR;
    Findings expected =
        expectedFindings(slurp(dir + "/bad_taint_table.cc"));
    ASSERT_FALSE(expected.empty());
    std::vector<Diagnostic> diags = checkFixtureProject(
        {"fixture_taint_noise.cc", "bad_taint_table.cc"});
    Findings actual = findingsOf(diags);
    EXPECT_EQ(expected, actual)
        << "expected:\n" << show(expected) << "actual:\n" << show(actual);
    ASSERT_EQ(1u, diags.size());
    EXPECT_NE(std::string::npos,
              diags[0].message.find("reference to"))
        << diags[0].message;
}

// The shared rule's cross-TU arm: the flagged member never appears
// in a write expression in its own translation unit — it is handed
// by reference to a helper whose mutation summary says
// "unconditional push_back on parameter 0".  The diagnostic must
// cite the helper's file and line; the good twin (all mutation
// inside the serialized virtual API) must stay silent.
TEST(CheckFixtures, SharedEscapeProject)
{
    const std::string dir = OT_CHECK_FIXTURE_DIR;
    Findings expected =
        expectedFindings(slurp(dir + "/bad_shared_escape.cc"));
    ASSERT_FALSE(expected.empty());
    std::vector<Diagnostic> diags = checkFixtureProject(
        {"fixture_lane_helper.cc", "bad_shared_escape.cc",
         "good_shared_api.cc"});
    Findings actual = findingsOf(diags);
    EXPECT_EQ(expected, actual)
        << "expected:\n" << show(expected) << "actual:\n" << show(actual);
    ASSERT_EQ(1u, diags.size());
    EXPECT_EQ("shared", diags[0].rule);
    EXPECT_NE(
        std::string::npos,
        diags[0].message.find(
            "shared(post-build) class 'FixtureSharedEscapeMachine': "
            "member '_samples' is mutated by 'appendSample' at "
            "src/otn/fixture_lane_helper.cc:"))
        << diags[0].message;
}

// A pure-marked ranking function that draws entropy through a
// wrapper: both the taint boundary rule and the purity rule fire on
// the call line, and the purity diagnostic spells out the full
// source → sink chain.  The good twin ranks from its arguments
// alone (its static constexpr constant is exempt).
TEST(CheckFixtures, SchedPurityTaintProject)
{
    const std::string dir = OT_CHECK_FIXTURE_DIR;
    Findings expected =
        expectedFindings(slurp(dir + "/bad_sched_taint.cc"));
    ASSERT_FALSE(expected.empty());
    std::vector<Diagnostic> diags = checkFixtureProject(
        {"fixture_taint_noise.cc", "fixture_taint_wrapper.cc",
         "bad_sched_taint.cc", "good_sched_pure.cc"});
    Findings actual = findingsOf(diags);
    EXPECT_EQ(expected, actual)
        << "expected:\n" << show(expected) << "actual:\n" << show(actual);
    ASSERT_EQ(2u, diags.size());
    EXPECT_EQ("determinism-taint", diags[0].rule);
    EXPECT_EQ("sched-purity", diags[1].rule);
    EXPECT_NE(
        std::string::npos,
        diags[1].message.find(
            "pure ranking function 'fixtureRankJittered': call to "
            "determinism-tainted 'fixtureJitter': fixtureJitter() → "
            "fixtureRawNoise() → splitmix64 at "
            "src/analysis/fixture_taint_noise.cc:"))
        << diags[1].message;
}

// The fallback diagnostic must name the ancestor whose costs the
// hook-less machine silently inherits — that name is what makes the
// finding actionable.
TEST(CheckFixtures, TopoFallbackNamesTheCostProvider)
{
    const std::string dir = OT_CHECK_FIXTURE_DIR;
    std::vector<Diagnostic> diags = ot::check::checkSource(
        "tests/check/bad_topo_fallback.cc",
        slurp(dir + "/bad_topo_fallback.cc"));
    ASSERT_EQ(1u, diags.size());
    EXPECT_EQ("topo-fallback", diags[0].rule);
    EXPECT_NE(std::string::npos,
              diags[0].message.find(
                  "registered machine 'FixtureLazyMachine' does not "
                  "override accounting hook(s) exchangeStepCost, "
                  "broadcastCost, reduceCost; it inherits the costs "
                  "of 'FixtureCostedMachine'"))
        << diags[0].message;
}

// A registry-name collision lands on the second add() and cites the
// first registration's location.
TEST(CheckFixtures, DuplicateRegistryNameCitesTheFirst)
{
    const std::string dir = OT_CHECK_FIXTURE_DIR;
    std::vector<Diagnostic> diags = ot::check::checkSource(
        "tests/check/bad_topo_dupname.cc",
        slurp(dir + "/bad_topo_dupname.cc"));
    ASSERT_EQ(1u, diags.size());
    EXPECT_EQ("topo-contract", diags[0].rule);
    EXPECT_NE(std::string::npos,
              diags[0].message.find(
                  "registry name 'fixture-mesh' is registered more "
                  "than once (first at "
                  "src/topo/fixture_bad_topo_dupname.cc:"))
        << diags[0].message;
}

// The witness chain must survive into SARIF unchanged — code-scanning
// consumers see the same source → sink story the terminal does.
TEST(CheckSarif, TaintWitnessChainIsEmitted)
{
    ot::check::Report report;
    report.diagnostics = checkFixtureProject(
        {"fixture_taint_noise.cc", "fixture_taint_wrapper.cc",
         "bad_taint_sink.cc", "good_taint_sink.cc"});
    ASSERT_EQ(1u, report.diagnostics.size());
    report.files = {report.diagnostics[0].file};
    std::string sarif = ot::check::renderSarif(report);
    EXPECT_NE(std::string::npos,
              sarif.find("\"ruleId\": \"determinism-taint\""));
    EXPECT_NE(std::string::npos,
              sarif.find("fixtureJitter() → fixtureRawNoise() → "
                         "splitmix64 at "
                         "src/analysis/fixture_taint_noise.cc:"))
        << sarif;
}

// ---------------------------------------------------------------
// The acceptance gate: the shipped tree is clean, and the canonical
// seeded violations are caught.

TEST(CheckTree, CollectFilesCoversToolsAndBench)
{
    const std::string root = OT_CHECK_SOURCE_ROOT;
    std::vector<std::string> files = ot::check::collectFiles(root, "");
    auto anyWith = [&](const std::string &prefix) {
        return std::any_of(files.begin(), files.end(),
                           [&](const std::string &f) {
                               return f.compare(0, prefix.size(),
                                                prefix) == 0;
                           });
    };
    EXPECT_TRUE(anyWith("src/"));
    EXPECT_TRUE(anyWith("tools/"));
    EXPECT_TRUE(anyWith("bench/"));
}

TEST(CheckTree, ShippedTreeIsCleanModuloBaseline)
{
    const std::string root = OT_CHECK_SOURCE_ROOT;
    std::vector<std::string> files =
        ot::check::collectFiles(root, "");
    EXPECT_GT(files.size(), 80u) << "directory walk found too little";
    ot::check::Report report = ot::check::checkTree(root, files);

    // The baseline file exists as a pressure valve but must stay
    // EMPTY: the shipped tree carries zero parked debt.  Park a
    // finding only as a last resort, and expect this test to hold
    // you to un-parking it.
    ot::check::Baseline baseline =
        ot::check::loadBaseline(root + "/.otcheck-baseline");
    EXPECT_TRUE(baseline.entries.empty())
        << "baseline must stay empty; fix or allow() findings "
           "instead of parking them";
    ot::check::applyBaseline(baseline, report);
    EXPECT_TRUE(report.diagnostics.empty())
        << ot::check::renderText(report);
}

TEST(CheckTree, SeededRandInOtnSortIsCaught)
{
    const std::string root = OT_CHECK_SOURCE_ROOT;
    std::string source = slurp(root + "/src/otn/sort.cc");
    int lines = static_cast<int>(
        std::count(source.begin(), source.end(), '\n'));
    source += "\nint otcheckSeed() { return rand(); }\n";
    std::vector<Diagnostic> diags =
        checkAs("src/otn/sort.cc", source);
    ASSERT_EQ(1u, diags.size());
    EXPECT_EQ("determinism", diags[0].rule);
    EXPECT_EQ(lines + 2, diags[0].line);
    EXPECT_EQ("src/otn/sort.cc", diags[0].file);
}

TEST(CheckTree, SeededSimToOtnIncludeIsCaught)
{
    std::vector<Diagnostic> diags = checkAs(
        "src/sim/chain_engine.cc",
        "#include \"otn/sort.hh\"\nint x;\n");
    ASSERT_EQ(1u, diags.size());
    EXPECT_EQ("layering", diags[0].rule);
    EXPECT_EQ(1, diags[0].line);
}

// ---------------------------------------------------------------
// Lexer behaviour the rules depend on.

TEST(CheckLexer, LiteralsAndCommentsAreNotTokens)
{
    EXPECT_TRUE(checkAs("src/otn/a.cc",
                        "// rand() in a comment\n"
                        "/* std::random_device too */\n"
                        "const char *s = \"rand()\";\n"
                        "const char *r = R\"(time(nullptr))\";\n")
                    .empty());
}

TEST(CheckLexer, PreprocessorDefinesAreNotTokens)
{
    EXPECT_TRUE(checkAs("src/otn/a.cc",
                        "#define SEED() \\\n    rand()\n"
                        "int x;\n")
                    .empty());
}

TEST(CheckLexer, RawStringDelimitersRespected)
{
    // The banned name sits between a fake and the real raw-string
    // terminator; the lexer must not resurface early.
    EXPECT_TRUE(checkAs("src/otn/a.cc",
                        "const char *s = R\"x()\" rand() )x\";\n")
                    .empty());
}

// ---------------------------------------------------------------
// Rule details.

TEST(CheckRules, MemberTimeCallIsNotWallClock)
{
    EXPECT_TRUE(checkAs("src/sim/a.cc",
                        "long f(S &s) { return s.time(); }\n")
                    .empty());
    EXPECT_EQ(1u, checkAs("src/sim/a.cc",
                          "long f() { return time(nullptr); }\n")
                      .size());
}

TEST(CheckRules, DeterminismScopedToLaneLayers)
{
    const std::string body = "int f() { return rand(); }\n";
    EXPECT_EQ(1u, checkAs("src/sim/a.cc", body).size());
    EXPECT_EQ(1u, checkAs("src/otc/a.cc", body).size());
    // Host-side layers may use host randomness.
    EXPECT_TRUE(checkAs("src/analysis/a.cc", body).empty());
    EXPECT_TRUE(checkAs("tools/a.cc", body).empty());
}

TEST(CheckRules, UmbrellaBannedOnlyInsideSrc)
{
    const std::string inc = "#include \"orthotree/orthotree.hh\"\n";
    EXPECT_EQ(1u, checkAs("src/layout/a.cc", inc).size());
    EXPECT_TRUE(checkAs("tools/otsim.cc", inc).empty());
    EXPECT_TRUE(checkAs("tests/a.cc", inc).empty());
}

TEST(CheckRules, AllowRequiresJustification)
{
    EXPECT_TRUE(
        checkAs("src/otn/a.cc",
                "// otcheck:allow(determinism): fixed fold\n"
                "int f() { return rand(); }\n")
            .empty());
    std::vector<Diagnostic> diags =
        checkAs("src/otn/a.cc",
                "// otcheck:allow(determinism)\n"
                "int f() { return rand(); }\n");
    ASSERT_EQ(2u, diags.size());
    EXPECT_EQ("allow-syntax", diags[0].rule);
    EXPECT_EQ("determinism", diags[1].rule);
}

TEST(CheckRules, LayerClassification)
{
    EXPECT_EQ("otn", ot::check::classifyLayer("src/otn/sort.cc"));
    EXPECT_EQ("tools", ot::check::classifyLayer("tools/otsim.cc"));
    EXPECT_EQ("tests", ot::check::classifyLayer("tests/test_sim.cc"));
    EXPECT_EQ("", ot::check::classifyLayer("docs/notes.md"));
    EXPECT_TRUE(ot::check::allowedIncludes("analysis").size() == 2);
    EXPECT_TRUE(ot::check::allowedIncludes("tools").empty());
}

TEST(CheckRules, JsonOutputIsWellFormed)
{
    ot::check::Report report;
    report.files = {"src/otn/a.cc"};
    report.diagnostics = checkAs(
        "src/otn/a.cc", "int f() { return rand(); }\n");
    ASSERT_EQ(1u, report.diagnostics.size());
    std::string json = ot::check::renderJson(report);
    EXPECT_EQ('[', json.front());
    EXPECT_NE(std::string::npos,
              json.find("\"rule\": \"determinism\""));
    EXPECT_NE(std::string::npos, json.find("\"line\": 1"));
    // Balanced brackets/braces as a cheap well-formedness probe.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}

TEST(CheckRules, StaleAllowIsReported)
{
    std::vector<Diagnostic> diags =
        checkAs("src/otn/a.cc",
                "// otcheck:allow(determinism): was needed once\n"
                "int f() { return 2; }\n");
    ASSERT_EQ(1u, diags.size());
    EXPECT_EQ("unused-allow", diags[0].rule);
    EXPECT_EQ(1, diags[0].line);
}

TEST(CheckRules, AllowCoversWholeStatement)
{
    // The banned call sits two lines below the allow, but still
    // inside the statement the allow is attached to.
    EXPECT_TRUE(checkAs("src/otn/a.cc",
                        "// otcheck:allow(determinism): fixed fold\n"
                        "int f() { return 1 +\n"
                        "    2 +\n"
                        "    rand(); }\n")
                    .empty());
}

TEST(CheckRules, RaiiWrapperNeedsNoAllow)
{
    // A ctor/dtor pair with net +1/-1 phase balance is recognised as
    // RAII; neither side is flagged.
    EXPECT_TRUE(checkAs("src/sim/a.hh",
                        "struct A { void beginPhase(const char *);\n"
                        "           void endPhase(); };\n"
                        "class S {\n"
                        "  public:\n"
                        "    explicit S(A &a) : _a(a)\n"
                        "    { _a.beginPhase(\"s\"); }\n"
                        "    ~S() { _a.endPhase(); }\n"
                        "  private:\n"
                        "    A &_a;\n"
                        "};\n")
                    .empty());
}

// ---------------------------------------------------------------
// SARIF output and the baseline machinery.

TEST(CheckSarif, OutputIsWellFormed)
{
    ot::check::Report report;
    report.files = {"src/otn/a.cc"};
    report.diagnostics = checkAs(
        "src/otn/a.cc", "int f() { return rand(); }\n");
    ASSERT_EQ(1u, report.diagnostics.size());
    std::string sarif = ot::check::renderSarif(report);
    EXPECT_NE(std::string::npos, sarif.find("\"version\": \"2.1.0\""));
    EXPECT_NE(std::string::npos, sarif.find("\"$schema\""));
    EXPECT_NE(std::string::npos,
              sarif.find("\"ruleId\": \"determinism\""));
    EXPECT_NE(std::string::npos, sarif.find("\"startLine\": 1"));
    EXPECT_NE(std::string::npos, sarif.find("\"uri\": \"src/otn/a.cc\""));
    EXPECT_EQ(std::count(sarif.begin(), sarif.end(), '{'),
              std::count(sarif.begin(), sarif.end(), '}'));
    EXPECT_EQ(std::count(sarif.begin(), sarif.end(), '['),
              std::count(sarif.begin(), sarif.end(), ']'));
}

TEST(CheckSarif, EveryRuleIsDeclared)
{
    // Each rule a diagnostic can carry must appear in the SARIF
    // driver's rule table (code scanning rejects dangling ruleIds).
    ot::check::Report report;
    std::string sarif = ot::check::renderSarif(report);
    for (const char *rule :
         {"determinism", "layering", "accounting", "hotpath",
          "hotpath-propagation", "include-hygiene", "unreachable",
          "allow-syntax", "unused-allow", "intrinsics",
          "determinism-taint", "lane-safety", "shared",
          "topo-contract", "topo-fallback", "sched-purity"}) {
        EXPECT_NE(std::string::npos,
                  sarif.find("\"id\": \"" + std::string(rule) + "\""))
            << rule;
    }
    // The allow() escape hatch covers exactly the suppressible rules
    // (the two allow-meta rules themselves cannot be allowed away).
    for (const char *rule :
         {"determinism", "layering", "accounting", "hotpath",
          "hotpath-propagation", "include-hygiene", "unreachable",
          "intrinsics", "determinism-taint", "lane-safety", "shared",
          "topo-contract", "topo-fallback", "sched-purity"})
        EXPECT_TRUE(ot::check::knownRule(rule)) << rule;
    EXPECT_FALSE(ot::check::knownRule("allow-syntax"));
    EXPECT_FALSE(ot::check::knownRule("unused-allow"));
}

// ---------------------------------------------------------------
// The incremental per-TU cache.

TEST(CheckCache, ContentHashIsStableAndSensitive)
{
    const std::string a = "int f() { return 1; }\n";
    EXPECT_EQ(ot::check::contentHash(a), ot::check::contentHash(a));
    EXPECT_NE(ot::check::contentHash(a),
              ot::check::contentHash(a + " "));
    // FNV-1a of the empty string is the offset basis, never zero.
    EXPECT_NE(0u, ot::check::contentHash(""));
}

TEST(CheckCache, SaveLoadRoundTrip)
{
    ot::check::AnalysisCache cache;
    ot::check::CacheEntry e;
    e.hash = 0xdeadbeefcafef00dull;
    ot::check::Diagnostic d;
    d.file = "src/otn/a.cc";
    d.line = 7;
    d.rule = "determinism";
    d.message = "rand() draws from global state";
    d.hint = "use ot::sim::Rng";
    e.diags.push_back(d);
    cache.entries["src/otn/a.cc"] = e;
    cache.entries["src/otn/empty.cc"] = {0x1234u, {}};

    std::string path = ::testing::TempDir() + "otcheck_cache_rt";
    ASSERT_TRUE(ot::check::saveAnalysisCache(path, cache));
    ot::check::AnalysisCache back = ot::check::loadAnalysisCache(path);
    ASSERT_EQ(2u, back.entries.size());
    EXPECT_EQ(e.hash, back.entries["src/otn/a.cc"].hash);
    EXPECT_TRUE(back.entries["src/otn/empty.cc"].diags.empty());
    ASSERT_EQ(1u, back.entries["src/otn/a.cc"].diags.size());
    const ot::check::Diagnostic &rd =
        back.entries["src/otn/a.cc"].diags[0];
    EXPECT_EQ(d.file, rd.file);
    EXPECT_EQ(d.line, rd.line);
    EXPECT_EQ(d.rule, rd.rule);
    EXPECT_EQ(d.message, rd.message);
    EXPECT_EQ(d.hint, rd.hint);
}

TEST(CheckCache, StampMismatchYieldsColdCache)
{
    std::string path = ::testing::TempDir() + "otcheck_cache_stamp";
    {
        std::ofstream out(path);
        out << "otcheck-cache 999 0\n"
            << "f 00000000000000aa src/otn/a.cc\n";
    }
    EXPECT_TRUE(ot::check::loadAnalysisCache(path).entries.empty());
    // Missing files are a cold cache too, not an error.
    EXPECT_TRUE(ot::check::loadAnalysisCache(
                    ::testing::TempDir() + "otcheck_no_such_cache")
                    .entries.empty());
}

TEST(CheckCache, SecondRunHitsAndReplaysDiagnostics)
{
    std::vector<ot::check::SourceFile> files = {
        {"src/otn/a.cc", "int f() { return rand(); }\n"},
        {"src/otn/b.cc", "int g() { return 2; }\n"},
    };
    ot::check::AnalysisCache cache;
    ot::check::RunStats s1;
    ot::check::Report r1 =
        ot::check::checkProject(files, &s1, &cache);
    EXPECT_EQ(0u, s1.cacheHits);
    EXPECT_EQ(2u, s1.cacheMisses);

    ot::check::RunStats s2;
    ot::check::Report r2 =
        ot::check::checkProject(files, &s2, &cache);
    EXPECT_EQ(2u, s2.cacheHits);
    EXPECT_EQ(0u, s2.cacheMisses);
    ASSERT_EQ(1u, r2.diagnostics.size());
    EXPECT_EQ("determinism", r2.diagnostics[0].rule);
    EXPECT_EQ(r1.diagnostics.size(), r2.diagnostics.size());
    EXPECT_EQ(r1.diagnostics[0].message, r2.diagnostics[0].message);

    // An edit invalidates exactly the touched TU.
    files[1].source = "int g() { return 3; }\n";
    ot::check::RunStats s3;
    ot::check::checkProject(files, &s3, &cache);
    EXPECT_EQ(1u, s3.cacheHits);
    EXPECT_EQ(1u, s3.cacheMisses);

    // Entries for files no longer in the run are pruned.
    files.pop_back();
    ot::check::RunStats s4;
    ot::check::checkProject(files, &s4, &cache);
    EXPECT_EQ(1u, cache.entries.size());
    EXPECT_EQ(1u, cache.entries.count("src/otn/a.cc"));
}

TEST(CheckBaseline, LoadParsesRuleFilePairs)
{
    std::string path = ::testing::TempDir() + "otcheck_baseline_test";
    {
        std::ofstream out(path);
        out << "# comment\n"
            << "\n"
            << "include-hygiene  tools/otsim.cc\n"
            << "determinism\tbench/bench_mst.cc\n";
    }
    ot::check::Baseline b = ot::check::loadBaseline(path);
    EXPECT_EQ(2u, b.entries.size());
    EXPECT_EQ(1u, b.entries.count({"include-hygiene", "tools/otsim.cc"}));
    EXPECT_EQ(1u, b.entries.count({"determinism", "bench/bench_mst.cc"}));
}

TEST(CheckBaseline, ApplyMutesOnlyListedPairs)
{
    ot::check::Report report;
    report.files = {"tools/a.cc", "src/otn/b.cc"};
    ot::check::Diagnostic d1;
    d1.file = "tools/a.cc";
    d1.line = 3;
    d1.rule = "include-hygiene";
    d1.message = "unused include";
    ot::check::Diagnostic d2 = d1;
    d2.file = "src/otn/b.cc";
    d2.rule = "determinism";
    report.diagnostics = {d1, d2};
    ot::check::Baseline b;
    b.entries.insert({"include-hygiene", "tools/a.cc"});
    std::size_t muted = ot::check::applyBaseline(b, report);
    EXPECT_EQ(1u, muted);
    ASSERT_EQ(1u, report.diagnostics.size());
    EXPECT_EQ("determinism", report.diagnostics[0].rule);
}

} // namespace

/**
 * @file
 * Tests for otcheck (src/check): the lexer, each rule family, the
 * fixture corpus under tests/check/, and — the gate the tool exists
 * for — that the shipped src/ + tools/ tree checks clean while
 * seeded violations do not.
 */

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/checker.hh"

namespace {

using ot::check::Diagnostic;

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot read " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** (line, rule) pairs, the comparable essence of a diagnostic set. */
using Findings = std::multiset<std::pair<int, std::string>>;

Findings
findingsOf(const std::vector<Diagnostic> &diags)
{
    Findings f;
    for (const Diagnostic &d : diags)
        f.insert({d.line, d.rule});
    return f;
}

/** Parse `// ... expect: rule[, rule]` annotations, one per line. */
Findings
expectedFindings(const std::string &source)
{
    Findings f;
    std::istringstream in(source);
    std::string line;
    int lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        std::size_t pos = line.find("expect:");
        if (pos == std::string::npos)
            continue;
        std::istringstream rules(line.substr(pos + 7));
        std::string rule;
        while (std::getline(rules, rule, ',')) {
            rule.erase(std::remove_if(rule.begin(), rule.end(),
                                      [](unsigned char c) {
                                          return std::isspace(c);
                                      }),
                       rule.end());
            if (!rule.empty())
                f.insert({lineNo, rule});
        }
    }
    return f;
}

std::string
show(const Findings &f)
{
    std::ostringstream out;
    for (const auto &[line, rule] : f)
        out << "  line " << line << ": " << rule << "\n";
    return out.str();
}

std::vector<Diagnostic>
checkAs(const std::string &virtualPath, const std::string &source)
{
    return ot::check::checkSource(virtualPath, source);
}

// ---------------------------------------------------------------
// Fixture corpus: each tests/check/*.cc file carries its own
// expected diagnostics; bad fixtures must produce exactly them and
// good fixtures none.

TEST(CheckFixtures, CorpusMatchesAnnotations)
{
    const std::string dir = OT_CHECK_FIXTURE_DIR;
    const std::vector<std::string> names = {
        "bad_accounting.cc",  "bad_allow.cc",     "bad_determinism.cc",
        "bad_hotpath.cc",     "bad_layering.cc",  "good_accounting.cc",
        "good_determinism.cc", "good_hotpath.cc", "good_layering.cc",
    };
    for (const std::string &name : names) {
        SCOPED_TRACE(name);
        std::string source = slurp(dir + "/" + name);
        ASSERT_FALSE(source.empty());
        Findings expected = expectedFindings(source);
        if (name.compare(0, 5, "good_") == 0) {
            EXPECT_TRUE(expected.empty())
                << "good fixtures must carry no expect: annotations";
        }
        Findings actual = findingsOf(
            ot::check::checkSource("tests/check/" + name, source));
        EXPECT_EQ(expected, actual)
            << "expected:\n" << show(expected) << "actual:\n"
            << show(actual);
    }
}

// ---------------------------------------------------------------
// The acceptance gate: the shipped tree is clean, and the canonical
// seeded violations are caught.

TEST(CheckTree, ShippedSrcAndToolsAreClean)
{
    const std::string root = OT_CHECK_SOURCE_ROOT;
    std::vector<std::string> files =
        ot::check::collectFiles(root, "");
    EXPECT_GT(files.size(), 80u) << "directory walk found too little";
    ot::check::Report report = ot::check::checkTree(root, files);
    EXPECT_TRUE(report.diagnostics.empty())
        << ot::check::renderText(report);
}

TEST(CheckTree, SeededRandInOtnSortIsCaught)
{
    const std::string root = OT_CHECK_SOURCE_ROOT;
    std::string source = slurp(root + "/src/otn/sort.cc");
    int lines = static_cast<int>(
        std::count(source.begin(), source.end(), '\n'));
    source += "\nint otcheckSeed() { return rand(); }\n";
    std::vector<Diagnostic> diags =
        checkAs("src/otn/sort.cc", source);
    ASSERT_EQ(1u, diags.size());
    EXPECT_EQ("determinism", diags[0].rule);
    EXPECT_EQ(lines + 2, diags[0].line);
    EXPECT_EQ("src/otn/sort.cc", diags[0].file);
}

TEST(CheckTree, SeededSimToOtnIncludeIsCaught)
{
    std::vector<Diagnostic> diags = checkAs(
        "src/sim/chain_engine.cc",
        "#include \"otn/sort.hh\"\nint x;\n");
    ASSERT_EQ(1u, diags.size());
    EXPECT_EQ("layering", diags[0].rule);
    EXPECT_EQ(1, diags[0].line);
}

// ---------------------------------------------------------------
// Lexer behaviour the rules depend on.

TEST(CheckLexer, LiteralsAndCommentsAreNotTokens)
{
    EXPECT_TRUE(checkAs("src/otn/a.cc",
                        "// rand() in a comment\n"
                        "/* std::random_device too */\n"
                        "const char *s = \"rand()\";\n"
                        "const char *r = R\"(time(nullptr))\";\n")
                    .empty());
}

TEST(CheckLexer, PreprocessorDefinesAreNotTokens)
{
    EXPECT_TRUE(checkAs("src/otn/a.cc",
                        "#define SEED() \\\n    rand()\n"
                        "int x;\n")
                    .empty());
}

TEST(CheckLexer, RawStringDelimitersRespected)
{
    // The banned name sits between a fake and the real raw-string
    // terminator; the lexer must not resurface early.
    EXPECT_TRUE(checkAs("src/otn/a.cc",
                        "const char *s = R\"x()\" rand() )x\";\n")
                    .empty());
}

// ---------------------------------------------------------------
// Rule details.

TEST(CheckRules, MemberTimeCallIsNotWallClock)
{
    EXPECT_TRUE(checkAs("src/sim/a.cc",
                        "long f(S &s) { return s.time(); }\n")
                    .empty());
    EXPECT_EQ(1u, checkAs("src/sim/a.cc",
                          "long f() { return time(nullptr); }\n")
                      .size());
}

TEST(CheckRules, DeterminismScopedToLaneLayers)
{
    const std::string body = "int f() { return rand(); }\n";
    EXPECT_EQ(1u, checkAs("src/sim/a.cc", body).size());
    EXPECT_EQ(1u, checkAs("src/otc/a.cc", body).size());
    // Host-side layers may use host randomness.
    EXPECT_TRUE(checkAs("src/analysis/a.cc", body).empty());
    EXPECT_TRUE(checkAs("tools/a.cc", body).empty());
}

TEST(CheckRules, UmbrellaBannedOnlyInsideSrc)
{
    const std::string inc = "#include \"orthotree/orthotree.hh\"\n";
    EXPECT_EQ(1u, checkAs("src/layout/a.cc", inc).size());
    EXPECT_TRUE(checkAs("tools/otsim.cc", inc).empty());
    EXPECT_TRUE(checkAs("tests/a.cc", inc).empty());
}

TEST(CheckRules, AllowRequiresJustification)
{
    EXPECT_TRUE(
        checkAs("src/otn/a.cc",
                "// otcheck:allow(determinism): fixed fold\n"
                "int f() { return rand(); }\n")
            .empty());
    std::vector<Diagnostic> diags =
        checkAs("src/otn/a.cc",
                "// otcheck:allow(determinism)\n"
                "int f() { return rand(); }\n");
    ASSERT_EQ(2u, diags.size());
    EXPECT_EQ("allow-syntax", diags[0].rule);
    EXPECT_EQ("determinism", diags[1].rule);
}

TEST(CheckRules, LayerClassification)
{
    EXPECT_EQ("otn", ot::check::classifyLayer("src/otn/sort.cc"));
    EXPECT_EQ("tools", ot::check::classifyLayer("tools/otsim.cc"));
    EXPECT_EQ("tests", ot::check::classifyLayer("tests/test_sim.cc"));
    EXPECT_EQ("", ot::check::classifyLayer("docs/notes.md"));
    EXPECT_TRUE(ot::check::allowedIncludes("analysis").size() == 2);
    EXPECT_TRUE(ot::check::allowedIncludes("tools").empty());
}

TEST(CheckRules, JsonOutputIsWellFormed)
{
    ot::check::Report report;
    report.files = {"src/otn/a.cc"};
    report.diagnostics = checkAs(
        "src/otn/a.cc", "int f() { return rand(); }\n");
    ASSERT_EQ(1u, report.diagnostics.size());
    std::string json = ot::check::renderJson(report);
    EXPECT_EQ('[', json.front());
    EXPECT_NE(std::string::npos,
              json.find("\"rule\": \"determinism\""));
    EXPECT_NE(std::string::npos, json.find("\"line\": 1"));
    // Balanced brackets/braces as a cheap well-formedness probe.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}

} // namespace

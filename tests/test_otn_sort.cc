/**
 * @file
 * Tests for SORT-OTN (Section II-B) and the pipelined sorting stream
 * (Section VIII): correctness against std::sort across sizes, seeds,
 * duplicates and adversarial orders, plus the O(log^2 N) model-time
 * shape.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "otn/pipeline.hh"
#include "otn/selection.hh"
#include "otn/sort.hh"
#include "sim/rng.hh"

namespace {

using namespace ot::otn;
using ot::sim::Rng;
using ot::vlsi::CostModel;
using ot::vlsi::DelayModel;
using ot::vlsi::WordFormat;

CostModel
logCost(std::size_t n)
{
    return {DelayModel::Logarithmic, WordFormat::forProblemSize(n)};
}

std::vector<std::uint64_t>
sortedCopy(std::vector<std::uint64_t> v)
{
    std::sort(v.begin(), v.end());
    return v;
}

TEST(SortOtn, TinyExample)
{
    auto r = sortOtn({3, 1, 2, 0}, logCost(4));
    EXPECT_EQ(r.sorted, (std::vector<std::uint64_t>{0, 1, 2, 3}));
    EXPECT_GT(r.time, 0u);
}

TEST(SortOtn, AlreadySortedAndReversed)
{
    std::vector<std::uint64_t> asc{0, 1, 2, 3, 4, 5, 6, 7};
    std::vector<std::uint64_t> desc(asc.rbegin(), asc.rend());
    EXPECT_EQ(sortOtn(asc, logCost(8)).sorted, asc);
    EXPECT_EQ(sortOtn(desc, logCost(8)).sorted, asc);
}

TEST(SortOtn, DuplicatesUseTieBreak)
{
    // The modified step 3 must handle equal keys.
    std::vector<std::uint64_t> v{5, 5, 5, 5, 1, 1, 9, 9};
    EXPECT_EQ(sortOtn(v, logCost(8)).sorted, sortedCopy(v));
}

TEST(SortOtn, AllEqual)
{
    std::vector<std::uint64_t> v(16, 7);
    EXPECT_EQ(sortOtn(v, logCost(16)).sorted, v);
}

TEST(SortOtn, SingleElement)
{
    // Machine words for a size-1 problem are 2 bits; 3 is the largest
    // legal input.
    EXPECT_EQ(sortOtn({3}, logCost(2)).sorted,
              (std::vector<std::uint64_t>{3}));
}

TEST(SortOtn, ValueAtWordLimit)
{
    auto limit = WordFormat::forProblemSize(8).maxValue();
    std::vector<std::uint64_t> v{limit, 0, limit - 1, 1};
    EXPECT_EQ(sortOtn(v, logCost(8)).sorted, sortedCopy(v));
}

TEST(SortOtn, PartialLoadPadsWithNull)
{
    // 5 values on an 8x8 machine.
    std::vector<std::uint64_t> v{9, 2, 7, 2, 5};
    OrthogonalTreesNetwork net(8, logCost(8));
    EXPECT_EQ(sortOtn(net, v).sorted, sortedCopy(v));
}

/** Property sweep: random inputs across sizes and seeds. */
class SortOtnRandom
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>>
{
};

TEST_P(SortOtnRandom, MatchesStdSort)
{
    auto [n, seed] = GetParam();
    Rng rng(static_cast<std::uint64_t>(seed));
    std::vector<std::uint64_t> v(n);
    auto limit = WordFormat::forProblemSize(n).maxValue();
    for (auto &x : v)
        x = rng.uniform(0, std::min<std::uint64_t>(limit, n * n - 1));
    EXPECT_EQ(sortOtn(v, logCost(n)).sorted, sortedCopy(v));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SortOtnRandom,
    ::testing::Combine(::testing::Values(2, 4, 8, 16, 32, 64),
                       ::testing::Values(1, 2, 3)));

TEST(SortOtn, DistinctPermutationSweep)
{
    Rng rng(99);
    for (std::size_t n : {8, 16, 32}) {
        auto v = rng.permutation(n);
        EXPECT_EQ(sortOtn(v, logCost(n)).sorted, sortedCopy(v));
    }
}

TEST(SortOtn, TimeShapeIsLogSquaredUnderThompson)
{
    // T(N) / log^2 N bounded over a wide sweep.
    double lo = 1e18, hi = 0;
    Rng rng(4);
    for (std::size_t n : {16, 64, 256, 1024}) {
        auto v = rng.permutation(n);
        auto r = sortOtn(v, logCost(n));
        double logn = std::log2(static_cast<double>(n));
        double ratio = static_cast<double>(r.time) / (logn * logn);
        lo = std::min(lo, ratio);
        hi = std::max(hi, ratio);
    }
    EXPECT_LT(hi / lo, 8.0);
}

TEST(SortOtn, ConstantDelayIsAsymptoticallyFaster)
{
    Rng rng(5);
    std::size_t n = 512;
    auto v = rng.permutation(n);
    auto t_log = sortOtn(v, logCost(n)).time;
    CostModel cm(DelayModel::Constant, WordFormat::forProblemSize(n));
    auto t_const = sortOtn(v, cm).time;
    EXPECT_LT(t_const, t_log);
}

TEST(SortOtn, ScalingRecoversALogFactor)
{
    Rng rng(6);
    std::size_t n = 512;
    auto v = rng.permutation(n);
    CostModel scaled(DelayModel::Logarithmic, WordFormat::forProblemSize(n),
                     /*scaled_trees=*/true);
    EXPECT_LT(sortOtn(v, scaled).time, sortOtn(v, logCost(n)).time);
}

TEST(SortPipeline, AllProblemsSortedCorrectly)
{
    std::size_t n = 16;
    OrthogonalTreesNetwork net(n, logCost(n));
    Rng rng(7);
    std::vector<std::vector<std::uint64_t>> problems;
    for (int p = 0; p < 6; ++p)
        problems.push_back(rng.permutation(n));
    auto r = sortPipelineOtn(net, problems);
    ASSERT_EQ(r.sorted.size(), problems.size());
    for (std::size_t p = 0; p < problems.size(); ++p)
        EXPECT_EQ(r.sorted[p], sortedCopy(problems[p])) << "problem " << p;
}

TEST(SortPipeline, BeatIsMuchSmallerThanLatency)
{
    // Section VIII: one sorted set per O(log N) once the pipe fills.
    std::size_t n = 256;
    OrthogonalTreesNetwork net(n, logCost(n));
    Rng rng(8);
    std::vector<std::vector<std::uint64_t>> problems;
    for (int p = 0; p < 4; ++p)
        problems.push_back(rng.permutation(n));
    auto r = sortPipelineOtn(net, problems);
    EXPECT_LT(r.problemInterval * 4, r.firstLatency);
    EXPECT_EQ(r.totalTime,
              r.firstLatency + (problems.size() - 1) * r.problemInterval);
}

TEST(SortPipeline, ThroughputBeatsSequentialRuns)
{
    std::size_t n = 128;
    Rng rng(9);
    std::vector<std::vector<std::uint64_t>> problems;
    for (int p = 0; p < 7; ++p)
        problems.push_back(rng.permutation(n));

    OrthogonalTreesNetwork piped(n, logCost(n));
    auto t_piped = sortPipelineOtn(piped, problems).totalTime;

    OrthogonalTreesNetwork serial(n, logCost(n));
    for (const auto &p : problems)
        sortOtn(serial, p);
    EXPECT_LT(t_piped, serial.now());
}

TEST(SortPipeline, EmptyStream)
{
    OrthogonalTreesNetwork net(8, logCost(8));
    auto r = sortPipelineOtn(net, {});
    EXPECT_TRUE(r.sorted.empty());
    EXPECT_EQ(r.totalTime, 0u);
}


TEST(SelectOtn, KthMatchesSortedOrder)
{
    Rng rng(31);
    for (std::size_t n : {4, 16, 64}) {
        std::vector<std::uint64_t> v(n);
        for (auto &x : v)
            x = rng.uniform(0, n - 1);
        auto sorted = sortedCopy(v);
        for (std::size_t k : {std::size_t{0}, n / 3, n - 1}) {
            OrthogonalTreesNetwork net(n, logCost(n));
            auto r = selectKthOtn(net, v, k);
            EXPECT_EQ(r.value, sorted[k]) << "n=" << n << " k=" << k;
            EXPECT_EQ(v[r.index], r.value);
        }
    }
}

TEST(SelectOtn, IndexResolvesDuplicatesByPosition)
{
    std::vector<std::uint64_t> v{5, 5, 5, 5};
    OrthogonalTreesNetwork net(4, logCost(4));
    // With the tie-break, rank k of equal values is the k-th position.
    for (std::size_t k = 0; k < 4; ++k) {
        auto r = selectKthOtn(net, v, k);
        EXPECT_EQ(r.value, 5u);
        EXPECT_EQ(r.index, k);
    }
}

TEST(SelectOtn, MedianAndCostParityWithSort)
{
    Rng rng(32);
    std::size_t n = 256;
    std::vector<std::uint64_t> v(n);
    for (auto &x : v)
        x = rng.uniform(0, n - 1);
    OrthogonalTreesNetwork net(n, logCost(n));
    auto med = medianOtn(net, v);
    EXPECT_EQ(med.value, sortedCopy(v)[(n - 1) / 2]);
    // Selection costs a full sort's rank phases plus at most the
    // narrow extraction (two traversals and one base op for the
    // index).
    auto sort_time = sortOtn(v, logCost(n)).time;
    EXPECT_LE(med.time, sort_time + 2 * net.treeTraversalCost() +
                            net.cost().bitSerialOp());
}

} // namespace

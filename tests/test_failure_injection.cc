/**
 * @file
 * Failure-injection tests: the machine invariants are guarded by
 * assertions compiled into every build type (see the top-level
 * CMakeLists); misuse must die loudly rather than corrupt a run.
 */

#include <gtest/gtest.h>

#include "otc/network.hh"
#include "otn/network.hh"
#include "otn/sort.hh"
#include "topo/fat_tree.hh"
#include "topo/registry.hh"
#include "workload/engine.hh"

namespace {

using namespace ot::otn;
using ot::vlsi::CostModel;
using ot::vlsi::DelayModel;
using ot::vlsi::WordFormat;

CostModel
logCost(std::size_t n)
{
    return {DelayModel::Logarithmic, WordFormat::forProblemSize(n)};
}

using OtnDeath = ::testing::Test;

TEST(OtnDeath, LeafToRootWithTwoSourcesDies)
{
    OrthogonalTreesNetwork net(4, logCost(4));
    EXPECT_DEATH(net.leafToRoot(Axis::Row, 0, Sel::all(), Reg::A),
                 "unique source");
}

TEST(OtnDeath, OversizedInputWordDies)
{
    OrthogonalTreesNetwork net(4, logCost(4));
    // Word is 2*log2(4) = 4 bits; 16 does not fit.
    std::vector<std::uint64_t> too_big{16};
    EXPECT_DEATH(net.setRowRootInputs(too_big), "fitsWord");
}

TEST(OtnDeath, OversizedMatrixEntryDies)
{
    OrthogonalTreesNetwork net(4, logCost(4));
    ot::linalg::IntMatrix m(4, 4, 0);
    m(2, 2) = 1 << 10;
    EXPECT_DEATH(net.loadBase(Reg::A, m), "fitsWord");
}

TEST(OtnDeath, RegisterOutOfRangeDies)
{
    OrthogonalTreesNetwork net(4, logCost(4));
    EXPECT_DEATH((void)net.reg(Reg::A, 4, 0), "i < _n");
}

TEST(OtcDeath, CycleToRootWithTwoSourcesDies)
{
    ot::otc::OtcNetwork net(4, 2, logCost(8));
    EXPECT_DEATH(net.cycleToRoot(ot::otc::Axis::Col, 1,
                                 ot::otc::CSel::all(), Reg::A),
                 "unique source");
}

TEST(OtcDeath, RegisterOutOfRangeDies)
{
    ot::otc::OtcNetwork net(4, 2, logCost(8));
    EXPECT_DEATH((void)net.reg(Reg::A, 0, 0, 5), "q < _l");
}

TEST(OtnDeath, SortRejectsOverfullInput)
{
    OrthogonalTreesNetwork net(4, logCost(4));
    std::vector<std::uint64_t> five(5, 1);
    EXPECT_DEATH(sortOtn(net, five), "m <= n");
}

TEST(WorkloadDeath, EmptyBatchDies)
{
    ot::workload::BatchEngine engine;
    ot::workload::WorkloadSpec spec;
    EXPECT_DEATH(engine.run(spec), "empty batch");
}

TEST(WorkloadDeath, NonPowerOfTwoInstanceDies)
{
    ot::workload::BatchEngine engine;
    ot::workload::WorkloadSpec spec;
    spec.instances.push_back({ot::workload::Algo::Sort, "otn", 24,
                              DelayModel::Logarithmic, false, 1});
    EXPECT_DEATH(engine.run(spec), "power of two");
}

TEST(WorkloadDeath, OversizedInstanceDies)
{
    ot::workload::BatchEngine engine;
    ot::workload::WorkloadSpec spec;
    spec.instances.push_back({ot::workload::Algo::Sort, "otn", 1 << 15,
                              DelayModel::Logarithmic, false, 1});
    EXPECT_DEATH(engine.run(spec), "out of range");
}

TEST(WorkloadDeath, MismatchedDelayModelWithinCacheKeyDies)
{
    // A cache key identifies one machine; acquiring it with a cost
    // model that disagrees with the key is a bug, not a miss.
    ot::workload::NetworkCache cache;
    ot::workload::InstanceSpec log_inst{ot::workload::Algo::Sort, "otn",
                                        16, DelayModel::Logarithmic,
                                        false, 1};
    auto key = ot::workload::cacheKeyFor(log_inst);
    CostModel wrong{DelayModel::Constant,
                    WordFormat::forProblemSize(16)};
    EXPECT_DEATH(cache.acquire(key, wrong),
                 "delay model mismatched within a cache key");
}

TEST(WorkloadDeath, UnknownNetInstanceDies)
{
    ot::workload::BatchEngine engine;
    ot::workload::WorkloadSpec spec;
    spec.instances.push_back({ot::workload::Algo::Sort, "hypercube", 16,
                              DelayModel::Logarithmic, false, 1});
    EXPECT_DEATH(engine.run(spec), "unknown net name");
}

TEST(TopoDeath, FatTreeBadPortCountsDie)
{
    ot::topo::MachineSpec spec;
    spec.topo = "fattree";
    spec.n = 64;
    spec.wordBits = 12;
    EXPECT_DEATH(ot::topo::FatTreeMachine(spec, 5), "must be even");
    EXPECT_DEATH(ot::topo::FatTreeMachine(spec, 2), "must be >= 4");
    EXPECT_DEATH(ot::topo::FatTreeMachine(spec, 4),
                 "port count too small");
}

TEST(TopoDeath, UnknownRegistryBuildDies)
{
    ot::topo::MachineSpec spec;
    spec.topo = "hypercube";
    spec.n = 16;
    spec.wordBits = 8;
    EXPECT_DEATH(ot::topo::registry().build(spec),
                 "unknown topology name");
}

// Sanity: the guards do NOT fire on legal inputs (the death tests
// above would be vacuous if the asserts were compiled out).
TEST(OtnDeath, AssertionsAreCompiledIn)
{
#ifdef NDEBUG
    FAIL() << "NDEBUG is set: machine invariants are not checked";
#else
    SUCCEED();
#endif
}

} // namespace

/**
 * @file
 * Tests for the hexagonal systolic array (Kung & Leiserson [15], the
 * paper's other low-area baseline) and the native OTC vector-matrix
 * product (Section VI-B without the emulation layer).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/fitting.hh"
#include "baselines/hex_array.hh"
#include "baselines/mesh.hh"
#include "linalg/reference.hh"
#include "otc/emulated_otn.hh"
#include "otc/matmul_native.hh"
#include "otn/matmul.hh"
#include "sim/rng.hh"

namespace {

using namespace ot;
using sim::Rng;
using vlsi::CostModel;
using vlsi::DelayModel;
using vlsi::WordFormat;

linalg::IntMatrix
randomMatrix(std::size_t n, std::uint64_t limit, Rng &rng)
{
    linalg::IntMatrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            m(i, j) = rng.uniform(0, limit - 1);
    return m;
}

TEST(HexArray, MatMulMatchesReference)
{
    Rng rng(1);
    for (std::size_t n : {2, 4, 8, 16, 32}) {
        auto a = randomMatrix(n, 8, rng);
        auto b = randomMatrix(n, 8, rng);
        baselines::HexArray hex(n, CostModel(DelayModel::Logarithmic,
                                             WordFormat(32)));
        EXPECT_EQ(hex.matMul(a, b), linalg::matMul(a, b)) << "n=" << n;
    }
}

TEST(HexArray, BoolMatMulMatchesReference)
{
    Rng rng(2);
    std::size_t n = 8;
    linalg::BoolMatrix a(n, n, 0), b(n, n, 0);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j) {
            a(i, j) = rng.bernoulli(0.4);
            b(i, j) = rng.bernoulli(0.4);
        }
    baselines::HexArray hex(n, CostModel(DelayModel::Logarithmic,
                                         WordFormat(16)));
    EXPECT_EQ(hex.boolMatMul(a, b), linalg::boolMatMul(a, b));
}

TEST(HexArray, BeatsAreThetaN)
{
    Rng rng(3);
    for (std::size_t n : {8, 16, 32}) {
        auto a = randomMatrix(n, 4, rng);
        auto b = randomMatrix(n, 4, rng);
        baselines::HexArray hex(n, CostModel(DelayModel::Logarithmic,
                                             WordFormat(24)));
        hex.matMul(a, b);
        EXPECT_EQ(hex.lastBeats(), 3 * (n - 1) + 1);
    }
}

TEST(HexArray, TimeIsLinearAreaQuadratic)
{
    std::vector<double> ns, times, areas;
    Rng rng(4);
    for (std::size_t n : {8, 16, 32, 64}) {
        auto a = randomMatrix(n, 4, rng);
        auto b = randomMatrix(n, 4, rng);
        baselines::HexArray hex(n, CostModel(DelayModel::Logarithmic,
                                             WordFormat(24)));
        auto t0 = hex.now();
        hex.matMul(a, b);
        ns.push_back(static_cast<double>(n));
        times.push_back(static_cast<double>(hex.now() - t0));
        areas.push_back(static_cast<double>(hex.chipArea()));
    }
    EXPECT_NEAR(analysis::fitPowerLaw(ns, times).exponent, 1.0, 0.15);
    EXPECT_NEAR(analysis::fitPowerLaw(ns, areas).exponent, 2.0, 0.15);
}

TEST(HexArray, InsensitiveToDelayModel)
{
    // Nearest-neighbour wires only (Section I's point about the
    // mesh/hex class).
    Rng rng(5);
    std::size_t n = 16;
    auto a = randomMatrix(n, 4, rng);
    auto b = randomMatrix(n, 4, rng);
    baselines::HexArray hl(n, CostModel(DelayModel::Logarithmic,
                                        WordFormat(24)));
    baselines::HexArray hc(n, CostModel(DelayModel::Constant,
                                        WordFormat(24)));
    auto t0 = hl.now();
    hl.matMul(a, b);
    auto tl = hl.now() - t0;
    t0 = hc.now();
    hc.matMul(a, b);
    auto tc = hc.now() - t0;
    EXPECT_LT(static_cast<double>(tl) / static_cast<double>(tc), 4.0);
}

TEST(HexArray, AgreesWithCannonMesh)
{
    Rng rng(6);
    std::size_t n = 16;
    auto a = randomMatrix(n, 6, rng);
    auto b = randomMatrix(n, 6, rng);
    CostModel cm(DelayModel::Logarithmic, WordFormat(32));
    baselines::HexArray hex(n, cm);
    baselines::MeshMachine mesh(n * n, cm);
    EXPECT_EQ(hex.matMul(a, b),
              baselines::meshMatMul(mesh, a, b).product);
}

// ------------------------------------------------- native OTC vecmat

CostModel
otcCost(std::size_t n, std::uint64_t entry_limit)
{
    unsigned bits =
        vlsi::logCeilAtLeast1(n * entry_limit * entry_limit + 1) + 2;
    return {DelayModel::Logarithmic, WordFormat(bits)};
}

TEST(VecMatMulOtcNative, IdentityMatrix)
{
    otc::OtcNetwork net(4, 3, otcCost(12, 10));
    auto b = linalg::IntMatrix::identity(12);
    std::vector<std::uint64_t> a(12);
    for (std::size_t k = 0; k < 12; ++k)
        a[k] = k + 1;
    auto r = otc::vecMatMulOtc(net, a, b);
    EXPECT_EQ(r.product, a);
}

class VecMatOtcRandom
    : public ::testing::TestWithParam<std::tuple<std::size_t, unsigned, int>>
{
};

TEST_P(VecMatOtcRandom, MatchesReference)
{
    auto [k, l, seed] = GetParam();
    std::size_t n = k * l;
    Rng rng(static_cast<std::uint64_t>(seed) * 37 + n);
    otc::OtcNetwork net(k, l, otcCost(n, 6));
    linalg::IntMatrix b(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            b(i, j) = rng.uniform(0, 5);
    std::vector<std::uint64_t> a(n);
    for (auto &x : a)
        x = rng.uniform(0, 5);
    auto r = otc::vecMatMulOtc(net, a, b);
    EXPECT_EQ(r.product, linalg::vecMatMul(a, b))
        << "k=" << k << " l=" << l;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VecMatOtcRandom,
    ::testing::Combine(::testing::Values(2, 4, 8),
                       ::testing::Values(2, 3, 5),
                       ::testing::Values(1, 2)));

TEST(VecMatMulOtcNative, TimeIsLogSquaredOnStandardMachine)
{
    // K = N / log N, L = log N: the product (excluding the one-time
    // matrix fill) is O(log^2 N).
    Rng rng(7);
    double lo = 1e18, hi = 0;
    for (std::size_t n : {64, 256, 1024}) {
        unsigned l = vlsi::logCeilAtLeast1(n);
        std::size_t k = n / l;
        otc::OtcNetwork net(k, l, otcCost(n, 3));
        std::size_t real_n = net.k() * l;
        linalg::IntMatrix b(real_n, real_n);
        for (std::size_t i = 0; i < real_n; ++i)
            for (std::size_t j = 0; j < real_n; ++j)
                b(i, j) = rng.uniform(0, 2);
        std::vector<std::uint64_t> a(real_n);
        for (auto &x : a)
            x = rng.uniform(0, 2);

        // Exclude the fill: measure a second product on the warm
        // machine by subtracting a first run's fill-dominated time.
        auto r1 = otc::vecMatMulOtc(net, a, b);
        EXPECT_EQ(r1.product, linalg::vecMatMul(a, b));
        double logn = std::log2(static_cast<double>(real_n));
        // The product phases: stream + L rounds + reduce.  Bound the
        // per-log^2 ratio of the whole run minus the fill estimate.
        double fill = static_cast<double>(vlsi::CostModel::pipelineTotal(
            net.treeTraversalCost(), real_n * l,
            net.cost().wordSeparation()));
        double compute = static_cast<double>(r1.time) - fill;
        ASSERT_GT(compute, 0);
        double ratio = compute / (logn * logn);
        lo = std::min(lo, ratio);
        hi = std::max(hi, ratio);
    }
    EXPECT_LT(hi / lo, 10.0);
}

TEST(VecMatMulOtcNative, AgreesWithEmulatedOtn)
{
    Rng rng(8);
    std::size_t k = 4, l = 4, n = 16;
    otc::OtcNetwork net(k, l, otcCost(n, 6));
    linalg::IntMatrix b(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            b(i, j) = rng.uniform(0, 5);
    std::vector<std::uint64_t> a(n);
    for (auto &x : a)
        x = rng.uniform(0, 5);

    auto native = otc::vecMatMulOtc(net, a, b);

    otc::OtcEmulatedOtn emu(n, otcCost(n, 6));
    emu.loadBase(otn::Reg::B, b);
    auto emulated = otn::vecMatMulOtn(emu, a);
    EXPECT_EQ(native.product, emulated);
}

} // namespace

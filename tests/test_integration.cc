/**
 * @file
 * Integration tests across modules and machines:
 *
 *  - every sorter in the repository (OTN, OTC, mesh, PSN, CCC, tree
 *    machine, OTN-bitonic, OTC-emulated OTN) agrees on the same
 *    inputs;
 *  - every matrix multiplier agrees (OTN pipelined/replicated, OTC,
 *    mesh Cannon, 3D mesh of trees, sequential reference);
 *  - connected components computed four independent ways agree
 *    (union-find, CONNECT on OTN, CONNECT on OTC, closure min-label,
 *    mesh closure);
 *  - time/area orderings the paper's comparison depends on hold
 *    between machines on identical workloads.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "orthotree/orthotree.hh"

namespace {

using namespace ot;
using sim::Rng;
using vlsi::CostModel;
using vlsi::DelayModel;
using vlsi::WordFormat;

CostModel
logCost(std::size_t n)
{
    return {DelayModel::Logarithmic, WordFormat::forProblemSize(n)};
}

class SorterAgreement
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>>
{
};

TEST_P(SorterAgreement, AllMachinesAgree)
{
    auto [n, seed] = GetParam();
    Rng rng(static_cast<std::uint64_t>(seed) * 7919 + n);
    std::vector<std::uint64_t> v(n);
    for (auto &x : v)
        x = rng.uniform(0, n - 1);
    auto expect = v;
    std::sort(expect.begin(), expect.end());
    auto cost = logCost(n);

    EXPECT_EQ(otn::sortOtn(v, cost).sorted, expect) << "SORT-OTN";
    EXPECT_EQ(otc::sortOtc(v, cost).sorted, expect) << "SORT-OTC";
    EXPECT_EQ(baselines::meshSort(v, cost).sorted, expect) << "mesh";
    EXPECT_EQ(baselines::psnSort(v, cost).sorted, expect) << "PSN";
    EXPECT_EQ(baselines::cccSort(v, cost).sorted, expect) << "CCC";

    baselines::TreeMachine tree(n, cost);
    EXPECT_EQ(tree.extractMinSort(v), expect) << "tree machine";

    otc::OtcEmulatedOtn emu(n, cost);
    EXPECT_EQ(otn::sortOtn(emu, v).sorted, expect) << "OTC-emulated OTN";

    // Bitonic needs a square base holding all N elements.
    std::size_t k = 1;
    while (k * k < n)
        k <<= 1;
    otn::OrthogonalTreesNetwork square(k, cost);
    EXPECT_EQ(otn::bitonicSortOtn(square, v).sorted, expect)
        << "BITONIC-OTN";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SorterAgreement,
    ::testing::Combine(::testing::Values(16, 64, 100, 256),
                       ::testing::Values(1, 2)));

class MatMulAgreement : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(MatMulAgreement, AllMachinesAgree)
{
    std::size_t n = GetParam();
    Rng rng(n * 31);
    linalg::IntMatrix a(n, n), b(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j) {
            a(i, j) = rng.uniform(0, 7);
            b(i, j) = rng.uniform(0, 7);
        }
    auto expect = linalg::matMul(a, b);
    CostModel cost(DelayModel::Logarithmic, WordFormat(32));

    otn::OrthogonalTreesNetwork net(n, cost);
    EXPECT_EQ(otn::matMulPipelined(net, a, b).product, expect);

    EXPECT_EQ(otc::matMulOtc(a, b, cost).result.product, expect);

    baselines::MeshMachine mesh(n * n, cost);
    EXPECT_EQ(baselines::meshMatMul(mesh, a, b).product, expect);

    otn::MeshOfTrees3d mot(n, cost);
    EXPECT_EQ(mot.matMul(a, b).product, expect);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MatMulAgreement,
                         ::testing::Values(2, 4, 8, 16));

class CcAgreement
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>>
{
};

TEST_P(CcAgreement, FiveWaysAgree)
{
    auto [n, p] = GetParam();
    Rng rng(n * 17 + static_cast<std::uint64_t>(p * 100));
    auto g = graph::randomGnp(n, p, rng);
    auto cost = logCost(n);

    auto expect = graph::connectedComponents(g);

    otn::OrthogonalTreesNetwork net(n, cost);
    EXPECT_EQ(otn::connectedComponentsOtn(net, g).labels, expect)
        << "CONNECT on OTN";

    EXPECT_EQ(otc::connectedComponentsOtc(g, cost).result.labels, expect)
        << "CONNECT on OTC";

    otn::OrthogonalTreesNetwork net2(n, cost);
    EXPECT_EQ(graph::canonicalizeLabels(
                  otn::componentsViaClosure(net2, g)),
              expect)
        << "closure min-label";

    baselines::MeshMachine mesh(n * n, cost);
    EXPECT_EQ(baselines::meshConnectedComponents(mesh, g).labels, expect)
        << "mesh closure";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CcAgreement,
    ::testing::Combine(::testing::Values(8, 16, 32),
                       ::testing::Values(0.05, 0.2, 0.6)));

TEST(CrossMachine, SortTimeOrderingUnderThompson)
{
    // Table I's time column on one workload: OTN/OTC < PSN/CCC < mesh
    // (at a size where sqrt(N) has overtaken the polylogs).
    std::size_t n = 1024;
    Rng rng(5);
    auto v = rng.permutation(n);
    auto cost = logCost(n);

    auto t_otn = otn::sortOtn(v, cost).time;
    auto t_psn = baselines::psnSort(v, cost).time;
    auto t_mesh = baselines::meshSort(v, cost).time;
    EXPECT_LT(t_otn, t_psn);
    EXPECT_LT(t_psn, t_mesh);
}

TEST(CrossMachine, AreaOrderingOtnVsOtc)
{
    // Same problem, both tree machines: the OTC chip is smaller and
    // the ratio grows ~log^2 N.  Sizes are chosen so N / log N is
    // itself a power of two (16/4, 256/8, 65536/16) — otherwise the
    // simulator rounds the cycle count up and the constant wobbles.
    double prev_ratio = 0;
    for (std::size_t n : {16, 256, 65536}) {
        unsigned l = vlsi::logCeilAtLeast1(n);
        auto cost = logCost(n);
        layout::OtnLayout otn_l(n, cost.word().bits());
        layout::OtcLayout otc_l(n / l, l, cost.word().bits());
        double ratio = static_cast<double>(otn_l.metrics().area()) /
                       static_cast<double>(otc_l.metrics().area());
        EXPECT_GT(ratio, 1.0) << "n = " << n;
        EXPECT_GT(ratio, prev_ratio) << "ratio must grow with N";
        prev_ratio = ratio;
    }
}

TEST(CrossMachine, MstAgreesBetweenOtnOtcAndKruskal)
{
    Rng rng(6);
    std::size_t n = 24;
    auto g = graph::randomWeightedConnected(n, 3 * n, rng);
    CostModel cost(DelayModel::Logarithmic, otn::mstWordFormat(n, n * n));

    auto expect = graph::kruskalMsf(g);
    otn::OrthogonalTreesNetwork net(n, cost);
    EXPECT_EQ(otn::mstOtn(net, g).edges, expect);
    EXPECT_EQ(otc::mstOtc(g, cost).result.edges, expect);
}

TEST(CrossMachine, PipeliningNeverChangesResults)
{
    // The pipelined stream must produce exactly the per-problem
    // results of isolated runs.
    std::size_t n = 64;
    Rng rng(7);
    std::vector<std::vector<std::uint64_t>> problems;
    for (int p = 0; p < 5; ++p)
        problems.push_back(rng.permutation(n));
    auto cost = logCost(n);

    otn::OrthogonalTreesNetwork piped(n, cost);
    auto r = otn::sortPipelineOtn(piped, problems);
    for (std::size_t p = 0; p < problems.size(); ++p) {
        auto isolated = otn::sortOtn(problems[p], cost).sorted;
        EXPECT_EQ(r.sorted[p], isolated) << "problem " << p;
    }
}

TEST(CrossMachine, DelayModelNeverChangesResults)
{
    // Cost model changes timing only — results must be identical under
    // all three delay rules.
    std::size_t n = 64;
    Rng rng(8);
    std::vector<std::uint64_t> v(n);
    for (auto &x : v)
        x = rng.uniform(0, n - 1);

    std::vector<std::uint64_t> expect;
    for (auto model : {DelayModel::Logarithmic, DelayModel::Constant,
                       DelayModel::Linear}) {
        CostModel cost(model, WordFormat::forProblemSize(n));
        auto sorted = otn::sortOtn(v, cost).sorted;
        if (expect.empty())
            expect = sorted;
        EXPECT_EQ(sorted, expect) << vlsi::toString(model);
    }
}

TEST(CrossMachine, LinearDelayIsSlowestLogMiddleConstantFastest)
{
    std::size_t n = 256;
    Rng rng(9);
    auto v = rng.permutation(n);
    auto time_under = [&](DelayModel m) {
        CostModel cost(m, WordFormat::forProblemSize(n));
        return otn::sortOtn(v, cost).time;
    };
    auto t_const = time_under(DelayModel::Constant);
    auto t_log = time_under(DelayModel::Logarithmic);
    auto t_lin = time_under(DelayModel::Linear);
    EXPECT_LT(t_const, t_log);
    EXPECT_LT(t_log, t_lin);
}

} // namespace

/**
 * @file
 * Validation of the closed-form CostModel against the event-level
 * bit-serial simulation: for every delay model and a sweep of tree
 * geometries, the formula and the bit-by-bit machine must agree
 * exactly.  This is what entitles the benches to quote model time
 * without running bits.
 */

#include <gtest/gtest.h>

#include "layout/otn_layout.hh"
#include "layout/tree_embedding.hh"
#include "sim/bitserial.hh"
#include "vlsi/cost_model.hh"

namespace {

using namespace ot;
using sim::BitPipe;
using vlsi::CostModel;
using vlsi::DelayModel;
using vlsi::ModelTime;
using vlsi::WireLength;
using vlsi::WordFormat;

TEST(BitPipe, StagesMatchWireDelay)
{
    BitPipe constant(DelayModel::Constant, 1000);
    EXPECT_EQ(constant.stages(), 1u);
    BitPipe log(DelayModel::Logarithmic, 1024);
    EXPECT_EQ(log.stages(), 11u);
    BitPipe lin(DelayModel::Linear, 7);
    EXPECT_EQ(lin.stages(), 7u);
}

TEST(BitPipe, BitEmergesAfterStagesTicks)
{
    BitPipe pipe(DelayModel::Logarithmic, 16); // 5 stages
    ASSERT_EQ(pipe.stages(), 5u);
    EXPECT_EQ(pipe.tick(1), -1);
    for (int t = 0; t < 4; ++t)
        EXPECT_EQ(pipe.tick(-1), -1) << "tick " << t;
    EXPECT_EQ(pipe.tick(-1), 1);
    EXPECT_TRUE(pipe.empty());
}

TEST(BitPipe, BitsPipelineBackToBack)
{
    BitPipe pipe(DelayModel::Logarithmic, 4); // 3 stages
    // Three bits injected on consecutive ticks emerge on consecutive
    // ticks — the "individually clocked driver stages" of the model.
    std::vector<int> out;
    int feed[] = {1, 0, 1, -1, -1, -1};
    for (int in : feed)
        out.push_back(pipe.tick(in));
    EXPECT_EQ(out, (std::vector<int>{-1, -1, -1, 1, 0, 1}));
}

class PathAgreement : public ::testing::TestWithParam<DelayModel>
{
};

TEST_P(PathAgreement, SingleWordMatchesFormulaOnTreePaths)
{
    DelayModel model = GetParam();
    for (std::size_t leaves : {2, 8, 64, 256}) {
        for (std::uint64_t pitch : {2, 7, 16}) {
            layout::TreeEmbedding tree(leaves, pitch);
            for (unsigned bits : {1, 4, 12}) {
                CostModel cm(model, WordFormat(bits));
                auto formula = cm.wordAlongPath(tree.pathEdges());
                auto simulated = sim::simulateWordAlongPath(
                    model, tree.pathEdges(), bits);
                EXPECT_EQ(simulated, formula)
                    << "leaves=" << leaves << " pitch=" << pitch
                    << " bits=" << bits;
            }
        }
    }
}

TEST_P(PathAgreement, PipelinedWordsMatchFormula)
{
    DelayModel model = GetParam();
    layout::TreeEmbedding tree(32, 5);
    for (unsigned bits : {3, 8}) {
        CostModel cm(model, WordFormat(bits));
        for (std::uint64_t count : {1, 2, 5, 16}) {
            for (ModelTime sep :
                 {ModelTime{bits}, ModelTime{bits + 3}}) {
                auto formula =
                    cm.wordsAlongPath(tree.pathEdges(), count, sep);
                auto simulated = sim::simulateWordsAlongPath(
                    model, tree.pathEdges(), bits, count, sep);
                EXPECT_EQ(simulated, formula)
                    << "count=" << count << " sep=" << sep
                    << " bits=" << bits;
            }
        }
    }
}

TEST_P(PathAgreement, ReduceMatchesFormula)
{
    DelayModel model = GetParam();
    for (std::size_t leaves : {2, 16, 128}) {
        layout::TreeEmbedding tree(leaves, 6);
        for (unsigned bits : {2, 9}) {
            CostModel cm(model, WordFormat(bits));
            auto formula = cm.reducePath(tree.pathEdges());
            auto simulated =
                sim::simulateTreeReduce(model, tree.pathEdges(), bits);
            EXPECT_EQ(simulated, formula)
                << "leaves=" << leaves << " bits=" << bits;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllModels, PathAgreement,
                         ::testing::Values(DelayModel::Constant,
                                           DelayModel::Logarithmic,
                                           DelayModel::Linear));

TEST(BitSerialValidation, OtnPrimitiveChargesAreBitAccurate)
{
    // The network's treeTraversalCost — the number every primitive
    // charges — equals the bit-level simulation on its own layout.
    for (std::size_t n : {4, 16, 64, 256}) {
        CostModel cm(DelayModel::Logarithmic,
                     WordFormat::forProblemSize(n));
        layout::OtnLayout lay(n, cm.word().bits());
        auto formula = cm.wordAlongPath(lay.tree().pathEdges());
        auto simulated = sim::simulateWordAlongPath(
            DelayModel::Logarithmic, lay.tree().pathEdges(),
            cm.word().bits());
        EXPECT_EQ(simulated, formula) << "n=" << n;
    }
}

TEST(BitSerialValidation, EmptyPathDegenerates)
{
    // A zero-edge path has no latency: the word takes bits-1 ticks
    // after the first bit — matching CostModel::wordAlongPath on an
    // empty span.
    std::vector<WireLength> none;
    CostModel cm(DelayModel::Logarithmic, WordFormat(5));
    EXPECT_EQ(sim::simulateWordAlongPath(DelayModel::Logarithmic, none, 5),
              cm.wordAlongPath(none));
    EXPECT_EQ(sim::simulateWordAlongPath(DelayModel::Constant, none, 5),
              4u);
}

} // namespace

/**
 * @file
 * Tests for the comparison networks: mesh (bitonic sort, Cannon
 * matmul, components via closure), PSN (Stone's bitonic sort) and CCC
 * (bitonic via DESCEND), including the delay-model sensitivity the
 * paper builds Tables I and IV around.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "baselines/ccc.hh"
#include "baselines/mesh.hh"
#include "baselines/psn.hh"
#include "graph/generators.hh"
#include "graph/reference_algorithms.hh"
#include "linalg/reference.hh"
#include "sim/rng.hh"

namespace {

using namespace ot::baselines;
using ot::sim::Rng;
using ot::vlsi::CostModel;
using ot::vlsi::DelayModel;
using ot::vlsi::WordFormat;

CostModel
logCost(std::size_t n)
{
    return {DelayModel::Logarithmic, WordFormat::forProblemSize(n)};
}

CostModel
constCost(std::size_t n)
{
    return {DelayModel::Constant, WordFormat::forProblemSize(n)};
}

std::vector<std::uint64_t>
sortedCopy(std::vector<std::uint64_t> v)
{
    std::sort(v.begin(), v.end());
    return v;
}

// ---------------------------------------------------------------- mesh

TEST(MeshSort, SortsRandomInputs)
{
    Rng rng(1);
    for (std::size_t n : {4, 16, 64, 256}) {
        std::vector<std::uint64_t> v(n);
        for (auto &x : v)
            x = rng.uniform(0, n - 1);
        EXPECT_EQ(meshSort(v, logCost(n)).sorted, sortedCopy(v))
            << "n = " << n;
    }
}

TEST(MeshSort, PartialLoadAndDuplicates)
{
    std::vector<std::uint64_t> v{7, 7, 1, 3, 3};
    EXPECT_EQ(meshSort(v, logCost(8)).sorted, sortedCopy(v));
}

TEST(MeshSort, TimeIsThetaSqrtN)
{
    // Doubling N should scale time by ~sqrt(2) for large N.
    Rng rng(2);
    std::vector<double> ns, ts;
    for (std::size_t n : {256, 1024, 4096, 16384}) {
        std::vector<std::uint64_t> v(n);
        for (auto &x : v)
            x = rng.uniform(0, n - 1);
        MeshMachine mesh(n, logCost(n));
        ts.push_back(static_cast<double>(meshSort(mesh, v).time));
        ns.push_back(static_cast<double>(n));
    }
    for (std::size_t i = 1; i < ts.size(); ++i) {
        double ratio = ts[i] / ts[i - 1]; // N quadruples each step
        EXPECT_GT(ratio, 1.6);
        EXPECT_LT(ratio, 2.8);
    }
}

TEST(MeshSort, UnaffectedByDelayModel)
{
    // Section VII-D: short wires make the mesh model-insensitive.
    Rng rng(3);
    std::size_t n = 1024;
    std::vector<std::uint64_t> v(n);
    for (auto &x : v)
        x = rng.uniform(0, n - 1);
    auto t_log = meshSort(v, logCost(n)).time;
    auto t_const = meshSort(v, constCost(n)).time;
    double ratio = static_cast<double>(t_log) /
                   static_cast<double>(t_const);
    EXPECT_LT(ratio, 4.0);
    EXPECT_GE(ratio, 1.0);
}

TEST(MeshMatMul, MatchesReference)
{
    Rng rng(4);
    for (std::size_t n : {2, 4, 8, 16}) {
        ot::linalg::IntMatrix a(n, n), b(n, n);
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = 0; j < n; ++j) {
                a(i, j) = rng.uniform(0, 9);
                b(i, j) = rng.uniform(0, 9);
            }
        MeshMachine mesh(n * n, CostModel(DelayModel::Logarithmic,
                                          WordFormat(32)));
        EXPECT_EQ(meshMatMul(mesh, a, b).product, ot::linalg::matMul(a, b))
            << "n = " << n;
    }
}

TEST(MeshMatMul, TimeIsThetaN)
{
    std::vector<double> ts;
    Rng rng(5);
    for (std::size_t n : {8, 16, 32, 64}) {
        ot::linalg::IntMatrix a(n, n, 1), b(n, n, 1);
        MeshMachine mesh(n * n, CostModel(DelayModel::Logarithmic,
                                          WordFormat(32)));
        ts.push_back(static_cast<double>(meshMatMul(mesh, a, b).time));
    }
    for (std::size_t i = 1; i < ts.size(); ++i) {
        EXPECT_GT(ts[i] / ts[i - 1], 1.7);
        EXPECT_LT(ts[i] / ts[i - 1], 2.5);
    }
}

TEST(MeshBoolMatMul, MatchesReference)
{
    Rng rng(6);
    std::size_t n = 16;
    ot::linalg::BoolMatrix a(n, n, 0), b(n, n, 0);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j) {
            a(i, j) = rng.bernoulli(0.3);
            b(i, j) = rng.bernoulli(0.3);
        }
    MeshMachine mesh(n * n, logCost(n));
    auto r = meshBoolMatMul(mesh, a, b);
    auto expect = ot::linalg::boolMatMul(a, b);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            EXPECT_EQ(r.product(i, j) != 0, expect(i, j) != 0);
}

TEST(MeshCc, MatchesUnionFind)
{
    Rng rng(7);
    for (std::size_t n : {8, 16, 32}) {
        auto g = ot::graph::randomGnp(n, 2.0 / static_cast<double>(n),
                                      rng);
        MeshMachine mesh(n * n, logCost(n));
        auto r = meshConnectedComponents(mesh, g);
        EXPECT_EQ(r.labels, ot::graph::connectedComponents(g))
            << "n = " << n;
    }
}

// ----------------------------------------------------------------- PSN

TEST(PsnSort, SortsRandomInputs)
{
    Rng rng(8);
    for (std::size_t n : {4, 16, 64, 512}) {
        std::vector<std::uint64_t> v(n);
        for (auto &x : v)
            x = rng.uniform(0, n - 1);
        EXPECT_EQ(psnSort(v, logCost(n)).sorted, sortedCopy(v))
            << "n = " << n;
    }
}

TEST(PsnSort, StepCountIsThetaLog2N)
{
    Rng rng(9);
    for (std::size_t n : {64, 256, 1024}) {
        auto v = rng.permutation(n);
        auto r = psnSort(v, logCost(n));
        double m = std::log2(static_cast<double>(n));
        EXPECT_GT(static_cast<double>(r.steps), 0.4 * m * m);
        EXPECT_LT(static_cast<double>(r.steps), 2.5 * m * m);
    }
}

TEST(PsnSort, ConstantDelaySavesALogFactor)
{
    // Table I vs Table IV: log^3 N -> log^2 N.
    Rng rng(10);
    std::size_t n = 4096;
    auto v = rng.permutation(n);
    auto t_log = psnSort(v, logCost(n)).time;
    auto t_const = psnSort(v, constCost(n)).time;
    double ratio = static_cast<double>(t_log) /
                   static_cast<double>(t_const);
    // log2(4096) = 12; the wire delay factor is log(N/logN) ~ 8.4.
    EXPECT_GT(ratio, 3.0);
    EXPECT_LT(ratio, 12.0);
}

TEST(PsnSort, DuplicatesAndAdversarialOrders)
{
    std::vector<std::uint64_t> rev{7, 6, 5, 4, 3, 2, 1, 0};
    EXPECT_EQ(psnSort(rev, logCost(8)).sorted, sortedCopy(rev));
    std::vector<std::uint64_t> dup(32, 5);
    dup[7] = 1;
    dup[23] = 9;
    EXPECT_EQ(psnSort(dup, logCost(32)).sorted, sortedCopy(dup));
}

// ----------------------------------------------------------------- CCC

TEST(CccSort, SortsRandomInputs)
{
    Rng rng(11);
    for (std::size_t n : {4, 16, 64, 512}) {
        std::vector<std::uint64_t> v(n);
        for (auto &x : v)
            x = rng.uniform(0, n - 1);
        EXPECT_EQ(cccSort(v, logCost(n)).sorted, sortedCopy(v))
            << "n = " << n;
    }
}

TEST(CccSort, StepCountIsThetaLog2N)
{
    Rng rng(12);
    for (std::size_t n : {64, 256, 1024}) {
        auto v = rng.permutation(n);
        auto r = cccSort(v, logCost(n));
        double m = std::log2(static_cast<double>(n));
        EXPECT_GT(static_cast<double>(r.steps), 0.4 * m * m);
        EXPECT_LT(static_cast<double>(r.steps), 3.0 * m * m);
    }
}

TEST(CccSort, ConstantDelaySavesALogFactor)
{
    Rng rng(13);
    std::size_t n = 4096;
    auto v = rng.permutation(n);
    auto t_log = cccSort(v, logCost(n)).time;
    auto t_const = cccSort(v, constCost(n)).time;
    double ratio = static_cast<double>(t_log) /
                   static_cast<double>(t_const);
    EXPECT_GT(ratio, 3.0);
    EXPECT_LT(ratio, 12.0);
}

TEST(Baselines, FastNetworksBeatMeshInTime)
{
    // The Section I dichotomy: PSN/CCC are fast but big; the mesh is
    // small but slow.
    Rng rng(14);
    std::size_t n = 4096;
    auto v = rng.permutation(n);
    auto t_mesh = meshSort(v, logCost(n)).time;
    auto t_psn = psnSort(v, logCost(n)).time;
    auto t_ccc = cccSort(v, logCost(n)).time;
    EXPECT_LT(t_psn, t_mesh);
    EXPECT_LT(t_ccc, t_mesh);

    // The area side of the dichotomy (mesh area N log^2 N vs
    // PSN/CCC N^2 / log^2 N) only separates once N > log^4 N —
    // compare layouts at a properly asymptotic size.
    std::size_t big = std::size_t{1} << 22;
    MeshMachine mesh(big, logCost(big));
    PsnMachine psn(big, logCost(big));
    CccMachine ccc(big, logCost(big));
    EXPECT_LT(mesh.chipLayout().metrics().area(),
              psn.chipLayout().metrics().area());
    EXPECT_LT(mesh.chipLayout().metrics().area(),
              ccc.chipLayout().metrics().area());
}


TEST(MeshOddEvenSort, SortsAndIsSlowerThanBitonicRouting)
{
    // Theta(N) rounds vs Theta(sqrt N) routed distance — the gap needs
    // N well beyond the bitonic schedule's constant (~10x) to show.
    Rng rng(30);
    double prev_ratio = 0;
    for (std::size_t n : {1024, 4096, 16384}) {
        std::vector<std::uint64_t> v(n);
        for (auto &x : v)
            x = rng.uniform(0, n - 1);
        auto expect = sortedCopy(v);

        MeshMachine a(n, logCost(n));
        auto odd_even = meshOddEvenSort(a, v);
        EXPECT_EQ(odd_even.sorted, expect);

        MeshMachine b(n, logCost(n));
        auto bitonic = meshSort(b, v);
        EXPECT_EQ(bitonic.sorted, expect);

        double ratio = static_cast<double>(odd_even.time) /
                       static_cast<double>(bitonic.time);
        EXPECT_GT(ratio, prev_ratio) << "n = " << n;
        prev_ratio = ratio;
    }
    // By 16K elements the sqrt(N) router is clearly ahead.
    EXPECT_GT(prev_ratio, 4.0);
}

TEST(MeshOddEvenSort, TimeIsThetaN)
{
    Rng rng(31);
    std::vector<double> ts;
    for (std::size_t n : {64, 256, 1024}) {
        std::vector<std::uint64_t> v(n);
        for (auto &x : v)
            x = rng.uniform(0, n - 1);
        MeshMachine mesh(n, logCost(n));
        ts.push_back(
            static_cast<double>(meshOddEvenSort(mesh, v).time));
    }
    for (std::size_t i = 1; i < ts.size(); ++i) {
        EXPECT_GT(ts[i] / ts[i - 1], 3.0); // N quadruples
        EXPECT_LT(ts[i] / ts[i - 1], 5.0);
    }
}

} // namespace

/**
 * @file
 * Runtime twin of the shared(post-build) fixture corpus (tests/check/
 * bad_shared_mutation.cc and friends): the discipline otcheck's
 * shared rule prescribes — machines built once, handed out by the
 * NetworkCache, and mutated after construction only through the
 * virtual plugin API, serialized per machine (one farm shard, or one
 * lane, per machine) — actually executed in parallel at several
 * host-thread counts.
 *
 * The CI tsan job runs this binary under ThreadSanitizer with
 * halt_on_error=1: if the "serialized" API shapes really raced
 * across shards, the job would fail.  The raced originals (a
 * warmCache-style write from a foreign lane, a mutable reference
 * escaping to whoever asks) are deliberately NOT runnable here —
 * they are exactly what the static rule rejects; their runtime form
 * is the per-machine ownership below.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/chain_engine.hh"
#include "sim/stats.hh"
#include "sim/time_accountant.hh"
#include "topo/machine.hh"
#include "workload/engine.hh"

namespace {

using namespace ot::workload;
using ot::vlsi::DelayModel;

InstanceSpec
inst(Algo algo, const char *net, std::size_t n, std::uint64_t seed)
{
    return {algo, net, n, DelayModel::Logarithmic, false, seed};
}

/** A mixed batch with repeated shapes: instances share a machine
 *  within a shard, and distinct machines run on parallel shards. */
WorkloadSpec
farmBatch()
{
    WorkloadSpec spec;
    spec.instances.push_back(inst(Algo::Sort, "otn", 32, 3));
    spec.instances.push_back(inst(Algo::Sort, "otc", 32, 5));
    spec.instances.push_back(inst(Algo::Sort, "fattree", 32, 7));
    spec.instances.push_back(inst(Algo::Sort, "tree", 32, 11));
    spec.instances.push_back(inst(Algo::Sort, "otn", 32, 13));
    spec.instances.push_back(inst(Algo::Sort, "otc", 32, 17));
    return spec;
}

TEST(SharedTwin, FarmShardsShareMachinesRaceFreeAndDeterministic)
{
    std::vector<std::string> jsons;
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        BatchEngine engine(threads);
        BatchReport report = engine.run(farmBatch());
        EXPECT_TRUE(report.allVerified()) << "threads=" << threads;
        // The two repeated shapes are served by shared machines.
        EXPECT_EQ(2u, report.cacheHits) << "threads=" << threads;
        EXPECT_EQ(4u, report.shards) << "threads=" << threads;
        jsons.push_back(report.toJson());
    }
    for (std::size_t i = 1; i < jsons.size(); ++i)
        EXPECT_EQ(jsons[0], jsons[i]) << "thread sweep " << i;
}

// The runtime form of good_shared_api.cc: after the build, each lane
// drives its OWN cached machine and mutates it only through the
// virtual API (reset, the run* entry points).  No machine is touched
// from two lanes — the serialization the shared marker documents.
TEST(SharedTwin, PostBuildMutationStaysInsideTheSerializedApi)
{
    NetworkCache cache;
    const std::vector<InstanceSpec> shapes = {
        inst(Algo::Sort, "otn", 16, 3),
        inst(Algo::Sort, "otc", 16, 5),
        inst(Algo::Sort, "tree", 16, 7),
        inst(Algo::Sort, "fattree", 16, 9),
    };
    std::vector<ot::topo::Machine *> machines;
    for (const InstanceSpec &s : shapes)
        machines.push_back(
            &cache.acquire(cacheKeyFor(s), costModelFor(s)));
    EXPECT_EQ(4u, cache.misses());

    // Deterministic per-machine inputs.
    std::vector<std::vector<std::uint64_t>> inputs;
    for (std::size_t i = 0; i < machines.size(); ++i) {
        std::vector<std::uint64_t> v(16);
        for (std::size_t k = 0; k < v.size(); ++k)
            // Keep values inside the n=16 machines' word format
            // (w = 8 bits).
            v[k] = (k * 31ull + i * 97ull) % 199ull;
        inputs.push_back(v);
    }

    // Sequential reference pass: model times per machine.
    std::vector<ot::vlsi::ModelTime> seqTimes(machines.size(), 0);
    for (std::size_t i = 0; i < machines.size(); ++i) {
        machines[i]->reset();
        seqTimes[i] = machines[i]->runSort(inputs[i]).time;
    }

    // Parallel passes: one lane per machine, every post-build
    // mutation through the owned machine's virtual API.
    for (unsigned threads : {2u, 4u}) {
        ot::sim::TimeAccountant acct;
        ot::sim::StatSet stats;
        ot::sim::ChainEngine engine(acct, stats, threads);
        std::vector<ot::vlsi::ModelTime> parTimes(machines.size(), 0);
        engine.parallelFor(machines.size(), [&](std::size_t lane) {
            machines[lane]->reset();
            parTimes[lane] =
                machines[lane]->runSort(inputs[lane]).time;
            engine.charge(1);
        });
        EXPECT_EQ(seqTimes, parTimes) << "threads=" << threads;
    }
}

} // namespace

/**
 * @file
 * Differential fuzzing of the OTC machine semantics: random sequences
 * of cycle primitives (CIRCULATE, ROOTTOCYCLE, CYCLETOROOT,
 * CYCLETOCYCLE and the SUM/MIN variants) run against an independent
 * shadow model re-implemented from Section V-B; every register plane
 * and both root-port streams must match after every operation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "otc/network.hh"
#include "sim/rng.hh"

namespace {

using namespace ot::otc;
using ot::otn::kNull;
using ot::otn::kNumRegs;
using ot::otn::Reg;
using ot::sim::Rng;
using ot::vlsi::CostModel;
using ot::vlsi::DelayModel;
using ot::vlsi::WordFormat;

/** Independent re-implementation of the (K x K, L)-OTC state. */
class ShadowOtc
{
  public:
    ShadowOtc(std::size_t k, std::size_t l)
        : k(k),
          l(l),
          regs(kNumRegs, std::vector<std::uint64_t>(k * k * l, 0)),
          rowStream(k, std::vector<std::uint64_t>(l, kNull)),
          colStream(k, std::vector<std::uint64_t>(l, kNull))
    {
    }

    std::size_t k, l;
    std::vector<std::vector<std::uint64_t>> regs;
    std::vector<std::vector<std::uint64_t>> rowStream;
    std::vector<std::vector<std::uint64_t>> colStream;

    std::uint64_t &
    at(unsigned r, std::size_t i, std::size_t j, std::size_t q)
    {
        return regs[r][(i * k + j) * l + q];
    }

    std::vector<std::uint64_t> &
    stream(Axis axis, std::size_t idx)
    {
        return axis == Axis::Row ? rowStream[idx] : colStream[idx];
    }

    std::pair<std::size_t, std::size_t>
    cycleAddr(Axis axis, std::size_t idx, std::size_t c) const
    {
        return axis == Axis::Row ? std::make_pair(idx, c)
                                 : std::make_pair(c, idx);
    }

    /** R(q) := R((q+1) mod L) for one cycle. */
    void
    circulate(std::size_t i, std::size_t j, const std::vector<Reg> &rs)
    {
        for (Reg r : rs) {
            auto ur = static_cast<unsigned>(r);
            std::uint64_t first = at(ur, i, j, 0);
            for (std::size_t q = 0; q + 1 < l; ++q)
                at(ur, i, j, q) = at(ur, i, j, q + 1);
            at(ur, i, j, l - 1) = first;
        }
    }
};

/** Enumerable cycle-selector alphabet mirrored on both machines. */
struct CSelSpec
{
    enum Kind { All, None, RowIs, ColIs } kind;
    std::size_t arg;

    bool
    test(std::size_t i, std::size_t j) const
    {
        switch (kind) {
          case All:
            return true;
          case None:
            return false;
          case RowIs:
            return i == arg;
          case ColIs:
            return j == arg;
        }
        return false;
    }

    CSel
    toSelector() const
    {
        switch (kind) {
          case All:
            return CSel::all();
          case None:
            return CSel::none();
          case RowIs:
            return CSel::rowIs(arg);
          case ColIs:
            return CSel::colIs(arg);
        }
        return CSel::none();
    }
};

/** Params: (seed, K, L). */
class FuzzOtc
    : public ::testing::TestWithParam<std::tuple<int, std::size_t, unsigned>>
{
  protected:
    void
    expectStatesMatch(OtcNetwork &net, ShadowOtc &shadow, int step)
    {
        for (unsigned r = 0; r < kNumRegs; ++r)
            for (std::size_t i = 0; i < shadow.k; ++i)
                for (std::size_t j = 0; j < shadow.k; ++j)
                    for (std::size_t q = 0; q < shadow.l; ++q)
                        ASSERT_EQ(net.reg(static_cast<Reg>(r), i, j, q),
                                  shadow.at(r, i, j, q))
                            << "step " << step << " reg " << r << " @("
                            << i << "," << j << "," << q << ")";
        for (std::size_t i = 0; i < shadow.k; ++i) {
            ASSERT_EQ(net.rowStream(i), shadow.rowStream[i])
                << "step " << step << " rowStream " << i;
            ASSERT_EQ(net.colStream(i), shadow.colStream[i])
                << "step " << step << " colStream " << i;
        }
    }
};

TEST_P(FuzzOtc, RandomPrimitiveSequencesMatchShadow)
{
    auto [seed, kK, kL] = GetParam();
    Rng rng(static_cast<std::uint64_t>(seed) * 6871 + 29);
    const std::size_t n = kK * kL;
    CostModel cost(DelayModel::Logarithmic, WordFormat::forProblemSize(n));
    OtcNetwork net(kK, kL, cost);
    ASSERT_EQ(net.k(), kK);
    ShadowOtc shadow(kK, kL);

    auto rand_reg = [&] {
        return static_cast<Reg>(rng.uniform(0, kNumRegs - 1));
    };
    auto rand_sel = [&]() -> CSelSpec {
        auto kind = static_cast<CSelSpec::Kind>(rng.uniform(0, 3));
        return {kind, static_cast<std::size_t>(rng.uniform(0, kK - 1))};
    };
    auto rand_regs = [&] {
        std::vector<Reg> rs{rand_reg()};
        if (rng.bernoulli(0.5)) {
            Reg extra = rand_reg();
            if (extra != rs[0])
                rs.push_back(extra);
        }
        return rs;
    };

    // Seed data through the legal channel: root streams in, then
    // ROOTTOCYCLE onto every cycle.
    for (std::size_t i = 0; i < kK; ++i) {
        for (std::size_t q = 0; q < kL; ++q) {
            std::uint64_t v = rng.uniform(0, 60);
            net.rowStream(i)[q] = v;
            shadow.rowStream[i][q] = v;
        }
        net.rootToCycle(Axis::Row, i, CSel::all(), Reg::A);
        for (std::size_t c = 0; c < kK; ++c)
            for (std::size_t q = 0; q < kL; ++q)
                shadow.at(0, i, c, q) = shadow.rowStream[i][q];
    }

    const int steps = 200;
    for (int step = 0; step < steps; ++step) {
        int op = static_cast<int>(rng.uniform(0, 7));
        Axis axis = rng.bernoulli(0.5) ? Axis::Row : Axis::Col;
        std::size_t idx = rng.uniform(0, kK - 1);
        Reg src = rand_reg(), dst = rand_reg();
        CSelSpec sel = rand_sel();

        // The selected cycles of the (axis, idx) vector, in order.
        auto selected = [&](const CSelSpec &s) {
            std::vector<std::pair<std::size_t, std::size_t>> out;
            for (std::size_t c = 0; c < kK; ++c) {
                auto [i, j] = shadow.cycleAddr(axis, idx, c);
                if (s.test(i, j))
                    out.push_back({i, j});
            }
            return out;
        };
        // A selector matching exactly cycle c0 of the vector (or none).
        auto unique_sel = [&](bool empty) {
            std::size_t c0 = rng.uniform(0, kK - 1);
            auto [si, sj] = shadow.cycleAddr(axis, idx, c0);
            CSel machine =
                empty ? CSel::none()
                      : CSel::pred([si = si, sj = sj](std::size_t i,
                                                      std::size_t j) {
                            return i == si && j == sj;
                        });
            return std::make_tuple(machine, si, sj, empty);
        };
        // Mirror of reduceToRoot: per-position reduce over selected
        // cycles into a fresh stream image.
        auto reduced = [&](const CSelSpec &s, Reg r, bool min_mode) {
            std::vector<std::uint64_t> words(kL);
            auto ur = static_cast<unsigned>(r);
            for (std::size_t q = 0; q < kL; ++q) {
                std::uint64_t acc = min_mode ? kNull : 0;
                for (auto [i, j] : selected(s))
                    acc = min_mode
                              ? std::min(acc, shadow.at(ur, i, j, q))
                              : acc + shadow.at(ur, i, j, q);
                words[q] = acc;
            }
            return words;
        };
        auto deposit = [&](const CSelSpec &s, Reg r,
                           const std::vector<std::uint64_t> &words) {
            auto ur = static_cast<unsigned>(r);
            for (auto [i, j] : selected(s))
                for (std::size_t q = 0; q < kL; ++q)
                    shadow.at(ur, i, j, q) = words[q];
        };

        switch (op) {
          case 0: { // CIRCULATE, one cycle
            std::size_t i = rng.uniform(0, kK - 1);
            std::size_t j = rng.uniform(0, kK - 1);
            auto rs = rand_regs();
            net.circulate(i, j, rs);
            shadow.circulate(i, j, rs);
            break;
          }
          case 1: { // VECTORCIRCULATE
            auto rs = rand_regs();
            net.vectorCirculate(axis, idx, rs);
            for (std::size_t c = 0; c < kK; ++c) {
                auto [i, j] = shadow.cycleAddr(axis, idx, c);
                shadow.circulate(i, j, rs);
            }
            break;
          }
          case 2: { // fresh root stream, then ROOTTOCYCLE
            for (std::size_t q = 0; q < kL; ++q) {
                std::uint64_t v = rng.bernoulli(0.15)
                                      ? kNull
                                      : rng.uniform(0, 60);
                (axis == Axis::Row ? net.rowStream(idx)
                                   : net.colStream(idx))[q] = v;
                shadow.stream(axis, idx)[q] = v;
            }
            net.rootToCycle(axis, idx, sel.toSelector(), dst);
            deposit(sel, dst, shadow.stream(axis, idx));
            break;
          }
          case 3: { // CYCLETOROOT from a unique (or absent) source
            auto [machine_sel, si, sj, empty] =
                unique_sel(rng.bernoulli(0.2));
            net.cycleToRoot(axis, idx, machine_sel, src);
            auto &stream = shadow.stream(axis, idx);
            for (std::size_t q = 0; q < kL; ++q)
                stream[q] =
                    empty
                        ? kNull
                        : shadow.at(static_cast<unsigned>(src), si, sj, q);
            break;
          }
          case 4: { // SUM-/MIN-CYCLETOROOT
            bool min_mode = rng.bernoulli(0.5);
            if (min_mode)
                net.minCycleToRoot(axis, idx, sel.toSelector(), src);
            else
                net.sumCycleToRoot(axis, idx, sel.toSelector(), src);
            shadow.stream(axis, idx) = reduced(sel, src, min_mode);
            break;
          }
          case 5: { // CYCLETOCYCLE from a unique (or absent) source
            auto [machine_sel, si, sj, empty] =
                unique_sel(rng.bernoulli(0.2));
            CSelSpec dsel = rand_sel();
            net.cycleToCycle(axis, idx, machine_sel, src,
                             dsel.toSelector(), dst);
            std::vector<std::uint64_t> words(kL);
            for (std::size_t q = 0; q < kL; ++q)
                words[q] =
                    empty
                        ? kNull
                        : shadow.at(static_cast<unsigned>(src), si, sj, q);
            shadow.stream(axis, idx) = words;
            deposit(dsel, dst, words);
            break;
          }
          case 6: { // SUM-/MIN-CYCLETOCYCLE
            bool min_mode = rng.bernoulli(0.5);
            CSelSpec dsel = rand_sel();
            if (min_mode)
                net.minCycleToCycle(axis, idx, sel.toSelector(), src,
                                    dsel.toSelector(), dst);
            else
                net.sumCycleToCycle(axis, idx, sel.toSelector(), src,
                                    dsel.toSelector(), dst);
            auto words = reduced(sel, src, min_mode);
            shadow.stream(axis, idx) = words;
            deposit(dsel, dst, words);
            break;
          }
          case 7: { // base op: bounded arithmetic on two registers
            unsigned mode = static_cast<unsigned>(rng.uniform(0, 2));
            auto us = static_cast<unsigned>(src);
            auto ud = static_cast<unsigned>(dst);
            net.baseOp(net.cost().bitSerialOp(),
                       [&](std::size_t i, std::size_t j, std::size_t q) {
                           auto a = net.reg(src, i, j, q);
                           auto b = net.reg(dst, i, j, q);
                           std::uint64_t r = mode == 0   ? (a & 0xff) +
                                                             (b & 0xff)
                                             : mode == 1 ? std::min(a, b)
                                                         : (a ^ b) & 0xff;
                           net.reg(dst, i, j, q) = r;
                       });
            for (std::size_t i = 0; i < kK; ++i)
                for (std::size_t j = 0; j < kK; ++j)
                    for (std::size_t q = 0; q < kL; ++q) {
                        auto a = shadow.at(us, i, j, q);
                        auto b = shadow.at(ud, i, j, q);
                        std::uint64_t r = mode == 0 ? (a & 0xff) +
                                                          (b & 0xff)
                                          : mode == 1 ? std::min(a, b)
                                                      : (a ^ b) & 0xff;
                        shadow.at(ud, i, j, q) = r;
                    }
            break;
          }
        }
        expectStatesMatch(net, shadow, step);
        if (::testing::Test::HasFatalFailure())
            return;
    }
    // Model time advanced for every charged primitive.
    EXPECT_GT(net.now(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, FuzzOtc,
    ::testing::Combine(::testing::Range(1, 7),
                       ::testing::Values<std::size_t>(2, 4),
                       ::testing::Values<unsigned>(3, 4)));

} // namespace

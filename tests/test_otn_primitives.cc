/**
 * @file
 * Tests for the OTN machine itself: register file, the Section II-B
 * primitives (ROOTTOLEAF, LEAFTOROOT, COUNT/SUM/MIN, LEAFTOLEAF), the
 * pardo cost semantics and the model-time accounting.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "otn/network.hh"
#include "otn/patterns.hh"

namespace {

using namespace ot::otn;
using ot::vlsi::CostModel;
using ot::vlsi::DelayModel;
using ot::vlsi::WordFormat;

CostModel
logCost(std::size_t n)
{
    return {DelayModel::Logarithmic, WordFormat::forProblemSize(n)};
}

TEST(OtnNetwork, RoundsSizeToPowerOfTwo)
{
    OrthogonalTreesNetwork net(5, logCost(5));
    EXPECT_EQ(net.n(), 8u);
}

TEST(OtnNetwork, RegistersStartZeroAndAreAddressable)
{
    OrthogonalTreesNetwork net(4, logCost(4));
    EXPECT_EQ(net.reg(Reg::A, 3, 2), 0u);
    net.reg(Reg::A, 3, 2) = 77;
    EXPECT_EQ(net.reg(Reg::A, 3, 2), 77u);
    EXPECT_EQ(net.reg(Reg::B, 3, 2), 0u);
}

TEST(OtnNetwork, FillReg)
{
    OrthogonalTreesNetwork net(4, logCost(4));
    net.fillReg(Reg::C, 9);
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 4; ++j)
            EXPECT_EQ(net.reg(Reg::C, i, j), 9u);
}

TEST(OtnNetwork, RootToLeafBroadcastsRowRoot)
{
    OrthogonalTreesNetwork net(4, logCost(4));
    net.rowRoot(1) = 42;
    net.rootToLeaf(Axis::Row, 1, Sel::all(), Reg::A);
    for (std::size_t j = 0; j < 4; ++j)
        EXPECT_EQ(net.reg(Reg::A, 1, j), 42u);
    // Other rows untouched.
    EXPECT_EQ(net.reg(Reg::A, 0, 0), 0u);
}

TEST(OtnNetwork, RootToLeafHonoursSelector)
{
    OrthogonalTreesNetwork net(4, logCost(4));
    net.rowRoot(0) = 5;
    net.rootToLeaf(Axis::Row, 0, Sel::evenAlong(Axis::Row), Reg::A);
    EXPECT_EQ(net.reg(Reg::A, 0, 0), 5u);
    EXPECT_EQ(net.reg(Reg::A, 0, 1), 0u);
    EXPECT_EQ(net.reg(Reg::A, 0, 2), 5u);
    EXPECT_EQ(net.reg(Reg::A, 0, 3), 0u);
}

TEST(OtnNetwork, LeafToRootPicksUniqueLeaf)
{
    OrthogonalTreesNetwork net(4, logCost(4));
    net.reg(Reg::B, 2, 0) = 13; // column 0, row 2
    net.leafToRoot(Axis::Col, 0, Sel::rowIs(2), Reg::B);
    EXPECT_EQ(net.colRoot(0), 13u);
}

TEST(OtnNetwork, LeafToRootWithNoSelectionYieldsNull)
{
    OrthogonalTreesNetwork net(4, logCost(4));
    net.leafToRoot(Axis::Col, 1, Sel::none(), Reg::A);
    EXPECT_EQ(net.colRoot(1), kNull);
}

TEST(OtnNetwork, CountLeafToRootCountsFlags)
{
    OrthogonalTreesNetwork net(8, logCost(8));
    net.reg(Reg::F, 3, 0) = 1;
    net.reg(Reg::F, 3, 2) = 1;
    net.reg(Reg::F, 3, 7) = 1;
    net.countLeafToRoot(Axis::Row, 3, Reg::F);
    EXPECT_EQ(net.rowRoot(3), 3u);
}

TEST(OtnNetwork, SumLeafToRootRespectsSelector)
{
    OrthogonalTreesNetwork net(4, logCost(4));
    for (std::size_t j = 0; j < 4; ++j)
        net.reg(Reg::A, 0, j) = j + 1; // 1, 2, 3, 4
    net.sumLeafToRoot(Axis::Row, 0, Sel::all(), Reg::A);
    EXPECT_EQ(net.rowRoot(0), 10u);
    net.sumLeafToRoot(Axis::Row, 0, Sel::evenAlong(Axis::Row), Reg::A);
    EXPECT_EQ(net.rowRoot(0), 4u); // 1 + 3
}

TEST(OtnNetwork, MinLeafToRootIgnoresNull)
{
    OrthogonalTreesNetwork net(4, logCost(4));
    net.fillReg(Reg::A, kNull);
    net.reg(Reg::A, 1, 2) = 9;
    net.reg(Reg::A, 2, 2) = 4;
    net.minLeafToRoot(Axis::Col, 2, Sel::all(), Reg::A);
    EXPECT_EQ(net.colRoot(2), 4u);
}

TEST(OtnNetwork, MinOfNothingIsNull)
{
    OrthogonalTreesNetwork net(4, logCost(4));
    net.fillReg(Reg::A, kNull);
    net.minLeafToRoot(Axis::Col, 0, Sel::all(), Reg::A);
    EXPECT_EQ(net.colRoot(0), kNull);
}

TEST(OtnNetwork, LeafToLeafMovesWordWithinVector)
{
    OrthogonalTreesNetwork net(4, logCost(4));
    net.reg(Reg::A, 2, 2) = 31;
    // Column 2: take row 2's A to everyone's B.
    net.leafToLeaf(Axis::Col, 2, Sel::rowIs(2), Reg::A, Sel::all(), Reg::B);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(net.reg(Reg::B, i, 2), 31u);
}

TEST(OtnNetwork, BaseOpTouchesEveryBp)
{
    OrthogonalTreesNetwork net(4, logCost(4));
    net.baseOp(net.cost().bitSerialOp(), [&](std::size_t i, std::size_t j) {
        net.reg(Reg::X, i, j) = i * 10 + j;
    });
    EXPECT_EQ(net.reg(Reg::X, 3, 1), 31u);
    EXPECT_EQ(net.reg(Reg::X, 0, 0), 0u);
}

TEST(OtnNetwork, ChargesAdvanceClock)
{
    OrthogonalTreesNetwork net(8, logCost(8));
    EXPECT_EQ(net.now(), 0u);
    net.rowRoot(0) = 1;
    auto dt = net.rootToLeaf(Axis::Row, 0, Sel::all(), Reg::A);
    EXPECT_GT(dt, 0u);
    EXPECT_EQ(net.now(), dt);
}

TEST(OtnNetwork, ParallelForChargesMaxOfChains)
{
    OrthogonalTreesNetwork net(8, logCost(8));
    ModelTime one = net.treeTraversalCost();
    net.resetTime();
    // Two sequential ops per iteration, across all 8 rows in parallel:
    // should cost 2 * one, not 16 * one.
    net.parallelFor(8, [&](std::size_t i) {
        net.rowRoot(i) = i;
        net.rootToLeaf(Axis::Row, i, Sel::all(), Reg::A);
        net.rootToLeaf(Axis::Row, i, Sel::all(), Reg::B);
    });
    EXPECT_EQ(net.now(), 2 * one);
}

TEST(OtnNetwork, NestedParallelForComposes)
{
    // host_threads = 1: the outer iterations of this synthetic nest
    // deliberately touch the SAME rows, so they must run sequentially
    // (real pardo bodies use disjoint trees; see test_host_parallel.cc
    // for the race-free nested determinism test).
    OrthogonalTreesNetwork net(4, logCost(4), {}, /*host_threads=*/1);
    ModelTime one = net.treeTraversalCost();
    net.resetTime();
    net.parallelFor(4, [&](std::size_t i) {
        net.parallelFor(4, [&](std::size_t j) {
            net.rowRoot(j) = j;
            net.rootToLeaf(Axis::Row, j, Sel::all(), Reg::A);
        });
        net.rowRoot(i) = i;
        net.rootToLeaf(Axis::Row, i, Sel::all(), Reg::B);
    });
    // Each outer iteration: inner pardo (one) + one more op = 2 * one.
    EXPECT_EQ(net.now(), 2 * one);
}

TEST(OtnNetwork, RunUnchargedStopsClock)
{
    OrthogonalTreesNetwork net(4, logCost(4));
    net.rowRoot(0) = 3;
    ModelTime would = net.runUncharged(
        [&] { net.rootToLeaf(Axis::Row, 0, Sel::all(), Reg::A); });
    EXPECT_GT(would, 0u);
    EXPECT_EQ(net.now(), 0u);
    // The data still moved.
    EXPECT_EQ(net.reg(Reg::A, 0, 2), 3u);
}

TEST(OtnNetwork, TraversalCostIsLog2UnderThompson)
{
    // ROOTTOLEAF should scale ~ log^2 N under the log-delay model
    // (Section II-B): ratio t(N) / log^2(N) stays bounded.
    double lo = 1e18, hi = 0;
    for (std::size_t n : {16, 64, 256, 1024}) {
        OrthogonalTreesNetwork net(n, logCost(n));
        double logn = std::log2(static_cast<double>(n));
        double ratio =
            static_cast<double>(net.treeTraversalCost()) / (logn * logn);
        lo = std::min(lo, ratio);
        hi = std::max(hi, ratio);
    }
    EXPECT_LT(hi / lo, 6.0);
}

TEST(OtnNetwork, TraversalCostIsLogUnderConstantDelay)
{
    // Section VII-D: O(log N) under the constant-delay model.
    double lo = 1e18, hi = 0;
    for (std::size_t n : {16, 64, 256, 1024}) {
        CostModel cm(DelayModel::Constant, WordFormat::forProblemSize(n));
        OrthogonalTreesNetwork net(n, cm);
        double ratio = static_cast<double>(net.treeTraversalCost()) /
                       std::log2(static_cast<double>(n));
        lo = std::min(lo, ratio);
        hi = std::max(hi, ratio);
    }
    EXPECT_LT(hi / lo, 6.0);
}

TEST(OtnNetwork, ScaledTreesBeatPlainThompson)
{
    // Thompson's scaling [31] shaves a log N factor.
    std::size_t n = 256;
    CostModel plain(DelayModel::Logarithmic, WordFormat::forProblemSize(n));
    CostModel scaled(DelayModel::Logarithmic, WordFormat::forProblemSize(n),
                     /*scaled_trees=*/true);
    OrthogonalTreesNetwork p(n, plain), s(n, scaled);
    EXPECT_GT(p.treeTraversalCost(), s.treeTraversalCost());
}

TEST(OtnNetwork, LoadAndReadBase)
{
    OrthogonalTreesNetwork net(4, logCost(4));
    auto m = ot::linalg::IntMatrix::fromRows(
        {{1, 2, 3, 4}, {5, 6, 7, 8}, {9, 1, 2, 3}, {4, 5, 6, 7}});
    net.loadBase(Reg::A, m);
    EXPECT_GT(net.now(), 0u);
    EXPECT_EQ(net.readBase(Reg::A), m);
}

TEST(OtnNetwork, InputOutputPorts)
{
    OrthogonalTreesNetwork net(4, logCost(4));
    std::vector<std::uint64_t> in{4, 3};
    net.setRowRootInputs(in);
    EXPECT_EQ(net.rowRoot(0), 4u);
    EXPECT_EQ(net.rowRoot(1), 3u);
    EXPECT_EQ(net.rowRoot(2), kNull);
}

TEST(OtnPatterns, DiagToRowsAndCols)
{
    OrthogonalTreesNetwork net(4, logCost(4));
    for (std::size_t v = 0; v < 4; ++v)
        net.reg(Reg::D, v, v) = 10 + v;
    diagToRows(net, Reg::D, Reg::B);
    diagToCols(net, Reg::D, Reg::C);
    for (std::size_t i = 0; i < 4; ++i) {
        for (std::size_t j = 0; j < 4; ++j) {
            EXPECT_EQ(net.reg(Reg::B, i, j), 10 + i);
            EXPECT_EQ(net.reg(Reg::C, i, j), 10 + j);
        }
    }
}

TEST(OtnPatterns, GatherAtIndexDoesIndirection)
{
    OrthogonalTreesNetwork net(8, logCost(8));
    // key(i) = (i + 3) % 8, val(j) = 100 + j; expect out(i) = 100 + key.
    for (std::size_t i = 0; i < 8; ++i)
        for (std::size_t j = 0; j < 8; ++j) {
            net.reg(Reg::X, i, j) = (i + 3) % 8;
            net.reg(Reg::R, i, j) = 100 + j;
        }
    gatherAtIndex(net, Reg::X, Reg::R, Reg::Y, Reg::F);
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_EQ(net.reg(Reg::Y, i, i), 100 + (i + 3) % 8);
}

TEST(OtnPatterns, GatherAtIndexNullKeyGivesNull)
{
    OrthogonalTreesNetwork net(4, logCost(4));
    net.fillReg(Reg::X, kNull);
    net.fillReg(Reg::R, 7);
    gatherAtIndex(net, Reg::X, Reg::R, Reg::Y, Reg::F);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(net.reg(Reg::Y, i, i), kNull);
}

TEST(OtnNetwork, StatsCountPrimitives)
{
    OrthogonalTreesNetwork net(4, logCost(4));
    net.rowRoot(0) = 1;
    net.rootToLeaf(Axis::Row, 0, Sel::all(), Reg::A);
    net.rootToLeaf(Axis::Row, 0, Sel::all(), Reg::B);
    net.countLeafToRoot(Axis::Row, 0, Reg::F);
    EXPECT_EQ(net.stats().counter("otn.rootToLeaf").value(), 2u);
    EXPECT_EQ(net.stats().counter("otn.countLeafToRoot").value(), 1u);
}

} // namespace

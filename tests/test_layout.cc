/**
 * @file
 * Tests for the layout module: tree embedding geometry, OTN/OTC/mesh
 * layouts, analytic PSN/CCC layouts, and the asymptotic area claims of
 * the paper (OTN area Theta(N^2 log^2 N), OTC area Theta(N^2)).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "layout/baseline_layouts.hh"
#include "layout/otc_layout.hh"
#include "layout/otn_layout.hh"
#include "layout/svg.hh"
#include "layout/tree_embedding.hh"
#include "vlsi/bitmath.hh"

namespace {

using namespace ot::layout;
using ot::vlsi::logCeilAtLeast1;

TEST(TreeEmbedding, HeightAndLeafCount)
{
    TreeEmbedding t(16, 4);
    EXPECT_EQ(t.leaves(), 16u);
    EXPECT_EQ(t.height(), 4u);
    EXPECT_EQ(t.internalNodes(), 15u);
    EXPECT_EQ(t.pathEdges().size(), 4u);
}

TEST(TreeEmbedding, RoundsLeavesToPowerOfTwo)
{
    TreeEmbedding t(9, 2);
    EXPECT_EQ(t.leaves(), 16u);
}

TEST(TreeEmbedding, EdgeLengthsHalvePerLevel)
{
    TreeEmbedding t(64, 8);
    // Top edges run ~2^(h-2) * pitch.
    for (unsigned h = 3; h <= t.height(); ++h)
        EXPECT_EQ(t.edgeLength(h) - 1, 2 * (t.edgeLength(h - 1) - 1));
}

TEST(TreeEmbedding, PathEdgesAreRootFirstDescending)
{
    TreeEmbedding t(32, 4);
    const auto &path = t.pathEdges();
    for (std::size_t i = 1; i < path.size(); ++i)
        EXPECT_GE(path[i - 1], path[i]);
    EXPECT_EQ(path.front(), t.longestEdge());
}

TEST(TreeEmbedding, TotalWireLengthIsLinearInSpan)
{
    // Each level's total wire is Theta(leaves * pitch): whole tree
    // Theta(K * pitch * logK)... actually Theta(K * pitch) per level
    // and there are log K levels, but lengths halve upward, so total
    // is Theta(K * pitch * log K)?  No: 2^(H-h) nodes x 2 edges of
    // ~2^(h-2)*P each = K*P/2 per level -> total ~ K*P*logK/2.
    TreeEmbedding t(64, 4);
    std::uint64_t kp = 64 * 4;
    EXPECT_GT(t.totalWireLength(), kp);
    EXPECT_LT(t.totalWireLength(), 6 * kp * t.height());
}

TEST(OtnLayout, PitchIsThetaLogN)
{
    OtnLayout small(16, 8);
    OtnLayout big(256, 16);
    EXPECT_GT(small.pitch(), logCeilAtLeast1(16));
    EXPECT_GT(big.pitch(), small.pitch());
}

TEST(OtnLayout, AreaIsThetaN2Log2N)
{
    // area / (N log N)^2 must be bounded above and below across a
    // sweep — the Section II-A / Leighton [16] bound.
    double lo = 1e9, hi = 0;
    for (std::size_t n : {8, 16, 32, 64, 128, 256}) {
        unsigned wb = 2 * logCeilAtLeast1(n);
        OtnLayout l(n, wb);
        double denom = static_cast<double>(n) * logCeilAtLeast1(n);
        double ratio = static_cast<double>(l.metrics().area()) /
                       (denom * denom);
        lo = std::min(lo, ratio);
        hi = std::max(hi, ratio);
    }
    EXPECT_GT(lo, 0.5);
    EXPECT_LT(hi, 64.0);
    EXPECT_LT(hi / lo, 8.0) << "area/(N log N)^2 should stay bounded";
}

TEST(OtnLayout, ProcessorCountMatchesPaper)
{
    OtnLayout l(8, 6);
    // N^2 BPs + 2N(N-1) IPs.
    EXPECT_EQ(l.metrics().processors, 64u + 2 * 8 * 7);
}

TEST(OtnLayout, LongestWireIsThetaNLogN)
{
    for (std::size_t n : {16, 64, 256}) {
        OtnLayout l(n, 2 * logCeilAtLeast1(n));
        auto longest = l.metrics().longestWire;
        EXPECT_GE(longest, n * l.pitch() / 4 - 1);
        EXPECT_LE(longest, n * l.pitch());
    }
}

TEST(OtnLayout, AsciiArtShowsBaseAndTrees)
{
    OtnLayout l(4, 4);
    std::string art = l.asciiArt();
    // 16 base processors and internal nodes for 8 trees of 3 IPs.
    EXPECT_EQ(std::count(art.begin(), art.end(), 'O'), 16);
    EXPECT_EQ(std::count(art.begin(), art.end(), '*'), 24);
}

TEST(OtcLayout, AreaIsThetaN2)
{
    // (N/log N x N/log N)-OTC with cycles of log N: area Theta(N^2)
    // (Section V-A).
    double lo = 1e9, hi = 0;
    for (std::size_t n : {64, 256, 1024, 4096}) {
        unsigned logn = logCeilAtLeast1(n);
        OtcLayout l(n / logn, logn, 2 * logn);
        double ratio = static_cast<double>(l.metrics().area()) /
                       (static_cast<double>(n) * static_cast<double>(n));
        lo = std::min(lo, ratio);
        hi = std::max(hi, ratio);
    }
    EXPECT_GT(lo, 0.05);
    EXPECT_LT(hi / lo, 40.0) << "area/N^2 should stay bounded";
}

TEST(OtcLayout, CycleBlockIsThetaLogNSquare)
{
    unsigned logn = 6;
    OtcLayout l(8, logn, 2 * logn);
    EXPECT_GE(l.cycleSide(), logn);
    EXPECT_LE(l.cycleSide(), 16 * logn);
}

TEST(OtcLayout, CompactBooleanVariantPacksMoreBps)
{
    // Section VI-B: cycles of log^2 N one-bit BPs still fit an
    // O(log N) x O(log N) block.
    unsigned logn = 8;
    OtcLayout normal(16, logn, 2 * logn, false);
    OtcLayout compact(16, logn * logn, 1, true);
    EXPECT_LE(compact.cycleSide(), 4 * normal.cycleSide());
}

TEST(OtcLayout, ProcessorCount)
{
    OtcLayout l(4, 3, 6);
    // 16 cycles x 3 BPs + 2*4*(4-1) IPs.
    EXPECT_EQ(l.metrics().processors, 16u * 3 + 24);
}

TEST(OtcLayout, AsciiArtRendersCyclesAndTrees)
{
    OtcLayout l(4, 4, 8);
    std::string art = l.asciiArt();
    EXPECT_EQ(std::count(art.begin(), art.end(), 'C'), 16);
    EXPECT_GT(std::count(art.begin(), art.end(), '*'), 0);
    std::string cyc = l.cycleAsciiArt();
    EXPECT_GT(std::count(cyc.begin(), cyc.end(), 'B'), 3);
}

TEST(MeshLayout, AreaIsProcessorsTimesLog2)
{
    MeshLayout l(1024, 10);
    auto m = l.metrics();
    EXPECT_EQ(m.processors, 1024u);
    // side = 32 * pitch, area = 1024 * pitch^2.
    EXPECT_EQ(m.area(), 1024u * l.pitch() * l.pitch());
    EXPECT_EQ(m.longestWire, l.pitch());
}

TEST(MeshLayout, RoundsSideToPowerOfTwo)
{
    MeshLayout l(100, 4);
    EXPECT_EQ(l.side(), 16u);
}

TEST(ShuffleExchangeLayout, AreaMatchesKleitman)
{
    ShuffleExchangeLayout l(1024, 10);
    auto m = l.metrics();
    // side ~ N / log N.
    EXPECT_EQ(m.width, 1024u / 10);
    EXPECT_EQ(m.longestWire, 1024u / 10);
}

TEST(CccLayout, NodeCountIsKTimes2ToK)
{
    CccLayout l(64, 6);
    EXPECT_EQ(l.nodes(), std::size_t{l.cubeDim()} << l.cubeDim());
    EXPECT_GE(l.nodes(), 64u);
    EXPECT_GT(l.cubeLinkLength(), l.cycleLinkLength());
}

TEST(Layouts, OtcBeatsOtnAreaForSameProblemSize)
{
    // The whole point of the OTC: same N, Theta(log^2 N) less area.
    for (std::size_t n : {256, 1024, 4096}) {
        unsigned logn = logCeilAtLeast1(n);
        OtnLayout otn(n, 2 * logn);
        OtcLayout otc(n / logn, logn, 2 * logn);
        EXPECT_LT(otc.metrics().area(), otn.metrics().area())
            << "n = " << n;
    }
}


TEST(SvgRender, OtnFigureHasAllElements)
{
    OtnLayout l(4, 4);
    auto svg = ot::layout::renderOtnSvg(l);
    EXPECT_EQ(svg.rfind("<svg", 0), 0u);
    EXPECT_NE(svg.find("</svg>"), std::string::npos);
    // 16 BP squares (+1 background rect).
    std::size_t rects = 0, pos = 0;
    while ((pos = svg.find("<rect", pos)) != std::string::npos) {
        ++rects;
        ++pos;
    }
    EXPECT_EQ(rects, 16u + 1u);
    // 24 internal processors drawn as circles.
    std::size_t circles = 0;
    pos = 0;
    while ((pos = svg.find("<circle", pos)) != std::string::npos) {
        ++circles;
        ++pos;
    }
    EXPECT_EQ(circles, 24u);
    // Both tree colours present.
    EXPECT_NE(svg.find("#1a73e8"), std::string::npos);
    EXPECT_NE(svg.find("#d93025"), std::string::npos);
}

TEST(SvgRender, OtcFigureHasCyclesAndTrees)
{
    OtcLayout l(4, 4, 8);
    auto svg = ot::layout::renderOtcSvg(l);
    EXPECT_EQ(svg.rfind("<svg", 0), 0u);
    EXPECT_NE(svg.find("</svg>"), std::string::npos);
    // 16 cycle bodies + 16*4 BP bars + background.
    std::size_t rects = 0, pos = 0;
    while ((pos = svg.find("<rect", pos)) != std::string::npos) {
        ++rects;
        ++pos;
    }
    EXPECT_EQ(rects, 1u + 16u + 64u);
    // 2 * 4 trees of 3 IPs each.
    std::size_t circles = 0;
    pos = 0;
    while ((pos = svg.find("<circle", pos)) != std::string::npos) {
        ++circles;
        ++pos;
    }
    EXPECT_EQ(circles, 24u);
}

} // namespace

/**
 * @file
 * The cross-topology differential conformance suite.
 *
 * Every registered algorithm runs on every registered topology across
 * a sweep of problem sizes and seeds, and every result must equal the
 * sequential reference — the contract that makes a registry entry a
 * *machine* rather than a cost table.  On top of the differential
 * sweep: the batch reports must stay byte-identical at host-thread
 * counts 1 and 8, the AT^2 rows for the new fat-tree and D2D-MoT
 * machines must be well-formed, and the D2D-MoT's diametrical links
 * must strictly reduce root bandwidth against the plain MoT on the
 * same traffic (the arXiv:1212.2874 property, read off the tracer).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "topo/algo.hh"
#include "topo/machine.hh"
#include "topo/mot_noc.hh"
#include "topo/registry.hh"
#include "trace/analysis.hh"
#include "trace/tracer.hh"
#include "workload/engine.hh"

namespace {

using namespace ot;
using workload::Algo;
using workload::BatchEngine;
using workload::InstanceSpec;
using workload::WorkloadSpec;

/** One instance per (algo, topology, size): the full conformance grid. */
WorkloadSpec
conformanceGrid(const std::vector<std::size_t> &sizes)
{
    WorkloadSpec spec;
    std::uint64_t seed = 1;
    for (const std::string &net : topo::registry().names())
        for (topo::Algo algo : topo::allAlgos())
            for (std::size_t n : sizes)
                spec.instances.push_back(
                    {algo, net, n, vlsi::DelayModel::Logarithmic, false,
                     seed++});
    return spec;
}

TEST(TopologyConformance, RegistryServesAtLeastSevenTopologies)
{
    auto names = topo::registry().names();
    EXPECT_GE(names.size(), 7u);
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
    for (const char *required :
         {"otn", "otc", "mesh", "psn", "ccc", "fattree", "mot",
          "d2d-mot"})
        EXPECT_TRUE(topo::isNetName(required)) << required;
}

TEST(TopologyConformance, EveryAlgoOnEveryTopologyMatchesReference)
{
    BatchEngine engine;
    auto report = engine.run(conformanceGrid({16, 32}));
    for (const auto &r : report.instances)
        EXPECT_TRUE(r.verified)
            << toString(r.spec.algo) << " on " << r.spec.net
            << " n=" << r.spec.n << " seed=" << r.spec.seed;
    EXPECT_TRUE(report.allVerified());
    // The grid really was cross-topology: one farm shard per machine
    // shape, at least one per registered topology.
    EXPECT_GE(report.shards, topo::registry().names().size());
}

TEST(TopologyConformance, SweepIsDeterministicAcrossRepeats)
{
    auto spec = conformanceGrid({16});
    BatchEngine a;
    BatchEngine b;
    EXPECT_EQ(a.run(spec).toJson(), b.run(spec).toJson());
}

TEST(TopologyConformance, ReportsByteIdenticalAtOneVsEightThreads)
{
    auto spec = conformanceGrid({16, 32});
    std::vector<std::string> jsons;
    std::vector<std::string> texts;
    for (unsigned threads : {1u, 8u}) {
        BatchEngine engine(threads);
        auto report = engine.run(spec);
        EXPECT_TRUE(report.allVerified()) << "threads=" << threads;
        jsons.push_back(report.toJson());
        std::ostringstream os;
        report.writeText(os);
        texts.push_back(os.str());
    }
    EXPECT_EQ(jsons[0], jsons[1]);
    EXPECT_EQ(texts[0], texts[1]);
}

/** The sort AT^2 row of one topology at n (time from a real run). */
std::pair<std::uint64_t, vlsi::ModelTime>
sortRow(const std::string &net, std::size_t n)
{
    auto spec = topo::resolveSpec(net, topo::Algo::Sort, n,
                                  vlsi::DelayModel::Logarithmic, false);
    auto machine = topo::registry().build(spec);
    std::vector<std::uint64_t> values(n);
    for (std::size_t i = 0; i < n; ++i)
        values[i] = (n - i) * 7 % n;
    auto run = machine->runSort(values);
    std::uint64_t area = run.area ? run.area : machine->area();
    return {area, run.time};
}

TEST(TopologyConformance, AtSquaredRowsCoverFatTreeAndD2dMot)
{
    for (const std::string &net :
         {std::string("fattree"), std::string("mot"),
          std::string("d2d-mot")}) {
        auto [area, time] = sortRow(net, 64);
        EXPECT_GT(area, 0u) << net;
        EXPECT_GT(time, 0u) << net;
    }
    // The diametrical links change routing, not the node grid: same
    // area, strictly faster on root-heavy workloads (checked below),
    // and never slower on the bitonic sweep.
    auto [motArea, motTime] = sortRow("mot", 64);
    auto [d2dArea, d2dTime] = sortRow("d2d-mot", 64);
    EXPECT_GT(d2dArea, motArea); // the 2N extra diametrical wires
    EXPECT_LE(d2dTime, motTime);
}

/** Reversal permutation plus row-local traffic, as (src, dst) pairs. */
std::vector<std::pair<std::size_t, std::size_t>>
rootHeavyTraffic(std::size_t n)
{
    std::vector<std::pair<std::size_t, std::size_t>> pairs;
    // i -> n-1-i is diametrical in the node grid: both the row and the
    // column flip halves, so the plain MoT crosses two tree roots per
    // packet and the D2D variant zero.
    for (std::size_t i = 0; i < n; ++i)
        pairs.emplace_back(i, n - 1 - i);
    // Mixed-in local traffic keeps the comparison honest: these pairs
    // cost the same on both variants.
    for (std::size_t i = 0; i + 1 < n; i += 2)
        pairs.emplace_back(i, i + 1);
    return pairs;
}

TEST(TopologyConformance, D2dMotRootBandwidthStrictlyBelowPlainMot)
{
    const std::size_t n = 64;
    auto spec = topo::resolveSpec("mot", topo::Algo::Sort, n,
                                  vlsi::DelayModel::Logarithmic, false);
    auto pairs = rootHeavyTraffic(n);

    auto drive = [&](bool diametrical) {
        auto s = spec;
        s.topo = diametrical ? "d2d-mot" : "mot";
        topo::MotNocMachine machine(s, diametrical);
        trace::Tracer tracer;
        tracer.setEnabled(true);
        machine.setTracer(&tracer);
        vlsi::ModelTime time = machine.runTraffic(pairs);
        machine.setTracer(nullptr);
        auto summary = trace::analyze(tracer);
        // The traced route spans carry root crossings in `words`, so
        // the analyzer's root-bandwidth figure matches the machine's
        // own accumulator.
        EXPECT_EQ(summary.rootWords, machine.rootWords());
        return std::pair<std::uint64_t, vlsi::ModelTime>(
            machine.rootWords(), time);
    };

    auto [motRoot, motTime] = drive(false);
    auto [d2dRoot, d2dTime] = drive(true);

    EXPECT_GT(motRoot, 0u);
    EXPECT_LT(d2dRoot, motRoot);
    EXPECT_LT(d2dTime, motTime);
}

TEST(TopologyConformance, ResetRestartsEveryTopologyClock)
{
    for (const std::string &net : topo::registry().names()) {
        auto spec = topo::resolveSpec(net, topo::Algo::Sort, 16,
                                      vlsi::DelayModel::Logarithmic,
                                      false);
        auto machine = topo::registry().build(spec);
        std::vector<std::uint64_t> values{3, 1, 4, 1, 5, 9, 2, 6,
                                          5, 3, 5, 8, 9, 7, 9, 3};
        auto first = machine->runSort(values);
        machine->reset();
        EXPECT_EQ(machine->now(), 0u) << net;
        auto second = machine->runSort(values);
        EXPECT_EQ(first.time, second.time) << net;
        EXPECT_EQ(first.sorted, second.sorted) << net;
    }
}

} // namespace

/**
 * @file
 * Tests for Section IV: bitonic merge/sort and the DFT on a
 * (K x K)-OTN holding one element per base processor.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "linalg/reference.hh"
#include "otn/bitonic.hh"
#include "otn/dft.hh"
#include "sim/rng.hh"

namespace {

using namespace ot::otn;
using ot::linalg::Complex;
using ot::sim::Rng;
using ot::vlsi::CostModel;
using ot::vlsi::DelayModel;
using ot::vlsi::WordFormat;

CostModel
kCost(std::size_t total)
{
    return {DelayModel::Logarithmic, WordFormat::forProblemSize(total)};
}

std::vector<std::uint64_t>
sortedCopy(std::vector<std::uint64_t> v)
{
    std::sort(v.begin(), v.end());
    return v;
}

TEST(BitonicSortOtn, SmallFullLoad)
{
    // 16 values on a 4x4 base.
    std::vector<std::uint64_t> v{9, 3, 14, 0, 7, 7,  2,  11,
                                 5, 1, 13, 6, 4, 12, 10, 8};
    OrthogonalTreesNetwork net(4, kCost(16));
    auto r = bitonicSortOtn(net, v);
    EXPECT_EQ(r.sorted, sortedCopy(v));
    // log N (log N + 1) / 2 stages with N = 16.
    EXPECT_EQ(r.stages, 10u);
}

TEST(BitonicSortOtn, PartialLoadPadsWithNull)
{
    std::vector<std::uint64_t> v{5, 2, 8, 1, 9};
    OrthogonalTreesNetwork net(4, kCost(16));
    auto r = bitonicSortOtn(net, v);
    EXPECT_EQ(r.sorted, sortedCopy(v));
}

TEST(BitonicSortOtn, DuplicatesAndExtremes)
{
    std::vector<std::uint64_t> v(16, 3);
    v[5] = 0;
    v[11] = 7;
    OrthogonalTreesNetwork net(4, kCost(16));
    EXPECT_EQ(bitonicSortOtn(net, v).sorted, sortedCopy(v));
}

/** Property sweep across sizes and seeds. */
class BitonicRandom
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>>
{
};

TEST_P(BitonicRandom, MatchesStdSort)
{
    auto [k, seed] = GetParam();
    std::size_t total = k * k;
    Rng rng(static_cast<std::uint64_t>(seed) * 17 + k);
    std::vector<std::uint64_t> v(total);
    for (auto &x : v)
        x = rng.uniform(0, total - 1);
    OrthogonalTreesNetwork net(k, kCost(total));
    EXPECT_EQ(bitonicSortOtn(net, v).sorted, sortedCopy(v));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BitonicRandom,
    ::testing::Combine(::testing::Values(2, 4, 8, 16),
                       ::testing::Values(1, 2, 3)));

TEST(BitonicMergeOtn, MergesBitonicSequence)
{
    // Ascending then descending = bitonic.
    std::vector<std::uint64_t> v{0, 2, 5, 9, 12, 15, 11, 7,
                                 6, 4, 3, 1, 0,  0,  0,  0};
    OrthogonalTreesNetwork net(4, kCost(16));
    auto r = bitonicMergeOtn(net, v);
    EXPECT_EQ(r.sorted, sortedCopy(v));
    EXPECT_EQ(r.stages, 4u); // log 16 stages
}

TEST(BitonicMergeOtn, TwoSortedHalvesReversed)
{
    Rng rng(4);
    std::size_t total = 64;
    std::vector<std::uint64_t> a(total / 2), b(total / 2);
    for (auto &x : a)
        x = rng.uniform(0, 99);
    for (auto &x : b)
        x = rng.uniform(0, 99);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end(), std::greater<>());
    std::vector<std::uint64_t> v(a);
    v.insert(v.end(), b.begin(), b.end());
    OrthogonalTreesNetwork net(8, kCost(total));
    EXPECT_EQ(bitonicMergeOtn(net, v).sorted, sortedCopy(v));
}

TEST(BitonicSortOtn, TimeIsDominatedBySqrtN)
{
    // Strict bit-serial accounting gives Theta(sqrt(N) log^2 N); the
    // sqrt factor must show: T(4K^2)/T(K^2) -> ~2 for large K.
    Rng rng(5);
    std::vector<double> times;
    for (std::size_t k : {8, 16, 32, 64}) {
        std::size_t total = k * k;
        std::vector<std::uint64_t> v(total);
        for (auto &x : v)
            x = rng.uniform(0, total - 1);
        OrthogonalTreesNetwork net(k, kCost(total));
        times.push_back(
            static_cast<double>(bitonicSortOtn(net, v).time));
    }
    for (std::size_t i = 1; i < times.size(); ++i) {
        double ratio = times[i] / times[i - 1];
        EXPECT_GT(ratio, 1.7);
        EXPECT_LT(ratio, 4.0);
    }
}

TEST(CompexStageCost, GrowsWithLeafDistanceInEachRegime)
{
    // Within the row regime (d < K) and within the column regime
    // (d >= K) cost grows with leaf distance; across the boundary it
    // legitimately drops (distance K is ONE column hop).
    OrthogonalTreesNetwork net(16, kCost(256));
    ModelTime prev = 0;
    for (std::size_t d : {1, 2, 4, 8}) { // row regime
        ModelTime c = compexStageCost(net, d);
        EXPECT_GE(c, prev) << "row d = " << d;
        prev = c;
    }
    prev = 0;
    for (std::size_t d : {16, 32, 64, 128}) { // column regime
        ModelTime c = compexStageCost(net, d);
        EXPECT_GE(c, prev) << "col d = " << d;
        prev = c;
    }
    EXPECT_LT(compexStageCost(net, 16), compexStageCost(net, 8));
}

TEST(CompexStageCost, RowAndColumnSymmetric)
{
    // Distance d < K uses row trees; d * K uses column trees at the
    // same leaf distance: identical geometry, identical cost.
    OrthogonalTreesNetwork net(16, kCost(256));
    for (std::size_t e : {1, 2, 4, 8}) {
        EXPECT_EQ(compexStageCost(net, e), compexStageCost(net, e * 16));
    }
}

TEST(DftOtn, ImpulseAndConstant)
{
    std::size_t k = 4, total = 16;
    std::vector<Complex> impulse(total, 0.0);
    impulse[0] = 1.0;
    OrthogonalTreesNetwork net(k, kCost(total));
    auto r = dftOtn(net, impulse);
    for (const auto &v : r.spectrum)
        EXPECT_NEAR(std::abs(v - Complex(1.0, 0.0)), 0.0, 1e-9);
    EXPECT_EQ(r.stages, 4u);
}

/** DFT property sweep vs the naive reference. */
class DftRandom : public ::testing::TestWithParam<std::tuple<std::size_t, int>>
{
};

TEST_P(DftRandom, MatchesNaiveDft)
{
    auto [k, seed] = GetParam();
    std::size_t total = k * k;
    Rng rng(static_cast<std::uint64_t>(seed) * 13 + k);
    std::vector<Complex> x(total);
    for (auto &v : x)
        v = Complex(rng.uniformReal() - 0.5, rng.uniformReal() - 0.5);
    OrthogonalTreesNetwork net(k, kCost(total));
    auto r = dftOtn(net, x);
    EXPECT_LT(ot::linalg::maxAbsDiff(r.spectrum, ot::linalg::dftNaive(x)),
              1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DftRandom,
    ::testing::Combine(::testing::Values(2, 4, 8),
                       ::testing::Values(1, 2)));

TEST(DftOtn, TimeShapeTracksBitonicMerge)
{
    // Section IV-B: "very similar structure to that of Bitonic
    // Merging" — same dominant sqrt(N) term.
    Rng rng(6);
    std::vector<double> times;
    for (std::size_t k : {8, 16, 32}) {
        std::size_t total = k * k;
        std::vector<Complex> x(total);
        for (auto &v : x)
            v = Complex(rng.uniformReal(), 0.0);
        OrthogonalTreesNetwork net(k, kCost(total));
        times.push_back(static_cast<double>(dftOtn(net, x).time));
    }
    for (std::size_t i = 1; i < times.size(); ++i) {
        EXPECT_GT(times[i] / times[i - 1], 1.6);
        EXPECT_LT(times[i] / times[i - 1], 4.5);
    }
}


TEST(BitonicSchedules, StreamedIsFasterSameResult)
{
    Rng rng(21);
    std::size_t k = 16, total = 256;
    std::vector<std::uint64_t> v(total);
    for (auto &x : v)
        x = rng.uniform(0, total - 1);

    OrthogonalTreesNetwork strict_net(k, kCost(total));
    auto strict = bitonicSortOtn(strict_net, v, CompexSchedule::Strict);
    OrthogonalTreesNetwork streamed_net(k, kCost(total));
    auto streamed =
        bitonicSortOtn(streamed_net, v, CompexSchedule::Streamed);

    EXPECT_EQ(strict.sorted, streamed.sorted);
    EXPECT_LT(streamed.time, strict.time);
}

TEST(BitonicSchedules, StreamedRecoversOneLogFactor)
{
    // T_strict / T_streamed should grow ~log N (the word separation).
    Rng rng(22);
    double prev = 0;
    for (std::size_t k : {8, 16, 32, 64}) {
        std::size_t total = k * k;
        std::vector<std::uint64_t> v(total);
        for (auto &x : v)
            x = rng.uniform(0, total - 1);
        OrthogonalTreesNetwork a(k, kCost(total));
        auto ts = bitonicSortOtn(a, v, CompexSchedule::Strict).time;
        OrthogonalTreesNetwork b(k, kCost(total));
        auto tr = bitonicSortOtn(b, v, CompexSchedule::Streamed).time;
        double ratio = static_cast<double>(ts) / static_cast<double>(tr);
        EXPECT_GT(ratio, prev) << "k = " << k;
        prev = ratio;
    }
    EXPECT_GT(prev, 1.8);
}

} // namespace

/**
 * @file
 * Tests for the Section III graph algorithms on the OTN: connected
 * components (vs union-find) and minimum spanning tree (vs Kruskal),
 * including property sweeps over random graph families.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hh"
#include "graph/reference_algorithms.hh"
#include "otn/connected_components.hh"
#include "otn/mst.hh"
#include "sim/rng.hh"

namespace {

using namespace ot::otn;
using namespace ot::graph;
using ot::sim::Rng;
using ot::vlsi::CostModel;
using ot::vlsi::DelayModel;
using ot::vlsi::WordFormat;

CostModel
ccCost(std::size_t n)
{
    return {DelayModel::Logarithmic, WordFormat::forProblemSize(n)};
}

CostModel
mstCost(std::size_t n, std::uint64_t max_w)
{
    return {DelayModel::Logarithmic, mstWordFormat(n, max_w)};
}

TEST(CcOtn, PathGraph)
{
    Graph g(8);
    for (std::size_t v = 0; v + 1 < 8; ++v)
        g.addEdge(v, v + 1);
    OrthogonalTreesNetwork net(8, ccCost(8));
    auto r = connectedComponentsOtn(net, g);
    EXPECT_EQ(r.componentCount, 1u);
    EXPECT_EQ(r.labels, connectedComponents(g));
}

TEST(CcOtn, EdgelessGraph)
{
    Graph g(8);
    OrthogonalTreesNetwork net(8, ccCost(8));
    auto r = connectedComponentsOtn(net, g);
    EXPECT_EQ(r.componentCount, 8u);
    for (std::size_t v = 0; v < 8; ++v)
        EXPECT_EQ(r.labels[v], v);
}

TEST(CcOtn, TwoTriangles)
{
    Graph g(6);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 0);
    g.addEdge(3, 4);
    g.addEdge(4, 5);
    g.addEdge(5, 3);
    OrthogonalTreesNetwork net(8, ccCost(8));
    auto r = connectedComponentsOtn(net, g);
    EXPECT_EQ(r.componentCount, 2u);
    EXPECT_EQ(r.labels, connectedComponents(g));
}

TEST(CcOtn, StarWithLargeCenterLabel)
{
    // The case that stalls naive min-hooking: the centre has the
    // largest label and every leaf sees only the centre.
    Graph g(8);
    for (std::size_t v = 0; v < 7; ++v)
        g.addEdge(7, v);
    OrthogonalTreesNetwork net(8, ccCost(8));
    auto r = connectedComponentsOtn(net, g);
    EXPECT_EQ(r.componentCount, 1u);
}

TEST(CcOtn, AdversarialChainOfPairs)
{
    // Pairs (0,1), (2,3), ... then a bridge chain across pairs: forces
    // repeated hooks and jumps.
    Graph g(16);
    for (std::size_t v = 0; v < 16; v += 2)
        g.addEdge(v, v + 1);
    for (std::size_t v = 1; v + 2 < 16; v += 4)
        g.addEdge(v, v + 2);
    OrthogonalTreesNetwork net(16, ccCost(16));
    auto r = connectedComponentsOtn(net, g);
    EXPECT_EQ(r.labels, connectedComponents(g));
}

/** Property sweep over G(n, p) and planted components. */
class CcOtnRandom : public ::testing::TestWithParam<
                        std::tuple<std::size_t, double, int>>
{
};

TEST_P(CcOtnRandom, MatchesUnionFind)
{
    auto [n, p, seed] = GetParam();
    Rng rng(static_cast<std::uint64_t>(seed) * 1000 + n);
    auto g = randomGnp(n, p, rng);
    OrthogonalTreesNetwork net(n, ccCost(n));
    auto r = connectedComponentsOtn(net, g);
    EXPECT_EQ(r.labels, connectedComponents(g));
    EXPECT_EQ(r.componentCount, componentCount(g));
}

INSTANTIATE_TEST_SUITE_P(
    Gnp, CcOtnRandom,
    ::testing::Combine(::testing::Values(4, 8, 16, 32),
                       ::testing::Values(0.05, 0.15, 0.5),
                       ::testing::Values(1, 2, 3)));

TEST(CcOtn, PlantedComponentSweep)
{
    Rng rng(77);
    for (std::size_t c : {1, 2, 4, 7}) {
        auto g = plantedComponents(32, c, 3, rng);
        OrthogonalTreesNetwork net(32, ccCost(32));
        auto r = connectedComponentsOtn(net, g);
        EXPECT_EQ(r.componentCount, c);
        EXPECT_EQ(r.labels, connectedComponents(g));
    }
}

TEST(CcOtn, PaddedVerticesDoNotLeak)
{
    // 5 vertices on an 8x8 machine: padding must stay isolated.
    Graph g(5);
    g.addEdge(0, 4);
    g.addEdge(1, 2);
    OrthogonalTreesNetwork net(8, ccCost(8));
    auto r = connectedComponentsOtn(net, g);
    EXPECT_EQ(r.labels, connectedComponents(g));
    EXPECT_EQ(r.labels.size(), 5u);
}

TEST(CcOtn, TimeShapeIsLog4UnderThompson)
{
    // T(N) / log^4 N bounded across the sweep (Table III row).
    double lo = 1e18, hi = 0;
    Rng rng(5);
    for (std::size_t n : {16, 32, 64, 128}) {
        auto g = randomGnp(n, 2.0 / static_cast<double>(n), rng);
        OrthogonalTreesNetwork net(n, ccCost(n));
        auto r = connectedComponentsOtn(net, g, /*charge_load=*/false);
        double logn = std::log2(static_cast<double>(n));
        double ratio = static_cast<double>(r.time) / std::pow(logn, 4);
        lo = std::min(lo, ratio);
        hi = std::max(hi, ratio);
    }
    EXPECT_LT(hi / lo, 10.0);
}

TEST(MstOtn, TriangleWithObviousMst)
{
    WeightedGraph g(3);
    g.addEdge(0, 1, 1);
    g.addEdge(1, 2, 2);
    g.addEdge(0, 2, 3);
    OrthogonalTreesNetwork net(4, mstCost(4, 3));
    auto r = mstOtn(net, g);
    ASSERT_EQ(r.edges.size(), 2u);
    EXPECT_EQ(r.totalWeight, 3u);
    EXPECT_TRUE(isSpanningForest(g, r.edges));
}

TEST(MstOtn, MatchesKruskalOnSmallGraphs)
{
    Rng rng(21);
    for (std::size_t n : {2, 4, 8, 16}) {
        auto g = randomWeightedConnected(n, n, rng);
        OrthogonalTreesNetwork net(n, mstCost(n, n * n));
        auto r = mstOtn(net, g);
        auto expect = kruskalMsf(g);
        EXPECT_EQ(r.edges, expect) << "n = " << n;
        EXPECT_EQ(r.totalWeight, totalWeight(expect));
    }
}

TEST(MstOtn, CompleteGraphSweep)
{
    Rng rng(22);
    for (std::size_t n : {4, 8, 12}) {
        auto g = randomWeightedComplete(n, rng);
        OrthogonalTreesNetwork net(n, mstCost(n, n * n));
        auto r = mstOtn(net, g);
        EXPECT_EQ(r.edges, kruskalMsf(g)) << "n = " << n;
    }
}

TEST(MstOtn, DisconnectedGraphGivesForest)
{
    WeightedGraph g(6);
    g.addEdge(0, 1, 4);
    g.addEdge(1, 2, 2);
    g.addEdge(3, 4, 5);
    OrthogonalTreesNetwork net(8, mstCost(8, 5));
    auto r = mstOtn(net, g);
    EXPECT_EQ(r.edges.size(), 3u);
    EXPECT_TRUE(isSpanningForest(g, r.edges));
    EXPECT_EQ(r.edges, kruskalMsf(g));
}

TEST(MstOtn, EdgelessGraph)
{
    WeightedGraph g(4);
    OrthogonalTreesNetwork net(4, mstCost(4, 1));
    auto r = mstOtn(net, g);
    EXPECT_TRUE(r.edges.empty());
    EXPECT_EQ(r.totalWeight, 0u);
}

/** Property sweep: MST on random connected weighted graphs. */
class MstOtnRandom
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>>
{
};

TEST_P(MstOtnRandom, MatchesKruskal)
{
    auto [n, seed] = GetParam();
    Rng rng(static_cast<std::uint64_t>(seed) * 31 + n);
    auto g = randomWeightedConnected(n, 2 * n, rng);
    OrthogonalTreesNetwork net(n, mstCost(n, n * n));
    auto r = mstOtn(net, g);
    EXPECT_EQ(r.edges, kruskalMsf(g));
    EXPECT_TRUE(isSpanningForest(g, r.edges));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MstOtnRandom,
    ::testing::Combine(::testing::Values(4, 8, 16, 24, 32),
                       ::testing::Values(1, 2, 3)));

TEST(MstOtn, TimeShapeIsLog4UnderThompson)
{
    double lo = 1e18, hi = 0;
    Rng rng(23);
    for (std::size_t n : {16, 32, 64}) {
        auto g = randomWeightedConnected(n, n, rng);
        OrthogonalTreesNetwork net(n, mstCost(n, n * n));
        auto r = mstOtn(net, g, /*charge_load=*/false);
        double logn = std::log2(static_cast<double>(n));
        double ratio = static_cast<double>(r.time) / std::pow(logn, 4);
        lo = std::min(lo, ratio);
        hi = std::max(hi, ratio);
    }
    EXPECT_LT(hi / lo, 10.0);
}

TEST(MstWordFormat, FitsPackedEdges)
{
    auto wf = mstWordFormat(64, 64 * 64);
    // Packed (w, u, v): 6 + 6 index bits + 13 weight bits + spare.
    EXPECT_GE(wf.bits(), 25u);
    EXPECT_LT(wf.bits(), 40u);
}

} // namespace

/**
 * @file
 * Tests for the simulation substrate: time accountant (phases),
 * statistics package and the RNG distributions.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/time_accountant.hh"

namespace {

using namespace ot::sim;

TEST(TimeAccountant, AdvanceAccumulates)
{
    TimeAccountant acct;
    EXPECT_EQ(acct.now(), 0u);
    acct.advance(10);
    acct.advance(5);
    EXPECT_EQ(acct.now(), 15u);
    EXPECT_EQ(acct.steps(), 2u);
}

TEST(TimeAccountant, ResetClearsEverything)
{
    TimeAccountant acct;
    acct.beginPhase("x");
    acct.advance(3);
    acct.endPhase();
    acct.reset();
    EXPECT_EQ(acct.now(), 0u);
    EXPECT_EQ(acct.steps(), 0u);
    EXPECT_TRUE(acct.phaseTimes().empty());
}

TEST(TimeAccountant, PhasesAttributeTime)
{
    TimeAccountant acct;
    acct.advance(1); // outside any phase
    acct.beginPhase("load");
    acct.advance(10);
    acct.endPhase();
    acct.beginPhase("compute");
    acct.advance(20);
    acct.advance(2);
    acct.endPhase();
    EXPECT_EQ(acct.phaseTimes().at("load"), 10u);
    EXPECT_EQ(acct.phaseTimes().at("compute"), 22u);
    EXPECT_EQ(acct.now(), 33u);
}

TEST(TimeAccountant, NestedPhasesChargeInnermost)
{
    TimeAccountant acct;
    acct.beginPhase("outer");
    acct.advance(5);
    acct.beginPhase("inner");
    acct.advance(7);
    acct.endPhase();
    acct.advance(3);
    acct.endPhase();
    EXPECT_EQ(acct.phaseTimes().at("outer"), 8u);
    EXPECT_EQ(acct.phaseTimes().at("inner"), 7u);
}

TEST(TimeAccountant, ScopedPhaseIsExceptionSafeRaii)
{
    TimeAccountant acct;
    {
        ScopedPhase p(acct, "scoped");
        acct.advance(4);
    }
    acct.advance(6);
    EXPECT_EQ(acct.phaseTimes().at("scoped"), 4u);
}

TEST(TimeAccountant, PhaseUnderflowIsCaught)
{
    // This repo keeps assertions on in every build type, so an
    // endPhase without its beginPhase dies with a diagnostic rather
    // than silently corrupting attribution.
    TimeAccountant acct;
    EXPECT_DEATH(acct.endPhase(), "endPhase without matching beginPhase");

    // Balanced usage reports a clean bill of health.
    acct.beginPhase("p");
    EXPECT_EQ(acct.phaseDepth(), 1u);
    acct.endPhase();
    EXPECT_EQ(acct.phaseDepth(), 0u);
    EXPECT_EQ(acct.phaseUnderflows(), 0u);
}

TEST(Stats, CountersAccumulateAndReset)
{
    StatSet stats;
    ++stats.counter("events");
    stats.counter("events") += 4;
    EXPECT_EQ(stats.counter("events").value(), 5u);
    stats.reset();
    EXPECT_EQ(stats.counter("events").value(), 0u);
}

TEST(Stats, DistributionTracksMoments)
{
    StatSet stats;
    auto &d = stats.distribution("lat");
    d.sample(2.0);
    d.sample(10.0);
    d.sample(6.0);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 6.0);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 10.0);
}

TEST(Stats, DistributionVarianceAndStddev)
{
    Distribution d;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        d.sample(v);
    // The classic example: mean 5, population variance 4.
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_DOUBLE_EQ(d.variance(), 4.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 2.0);

    Distribution one;
    one.sample(3.0);
    EXPECT_EQ(one.variance(), 0.0);
    EXPECT_EQ(one.stddev(), 0.0);

    d.reset();
    EXPECT_EQ(d.variance(), 0.0);
}

TEST(Stats, ToJsonIsWellFormedAndComplete)
{
    StatSet stats;
    stats.counter("otn.rootToLeaf") += 12;
    auto &d = stats.distribution("lat");
    d.sample(1.0);
    d.sample(3.0);
    auto json = stats.toJson();
    EXPECT_NE(json.find("\"otn.rootToLeaf\": 12"), std::string::npos);
    EXPECT_NE(json.find("\"lat\""), std::string::npos);
    EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"mean\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"stddev\": 1"), std::string::npos);
}

TEST(Stats, EmptyDistributionIsZeroed)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.mean(), 0.0);
    EXPECT_EQ(d.min(), 0.0);
    EXPECT_EQ(d.max(), 0.0);
}

TEST(Stats, DumpFormat)
{
    StatSet stats;
    stats.counter("a") += 3;
    stats.distribution("b").sample(1.5);
    std::ostringstream os;
    stats.dump(os, "pre.");
    auto text = os.str();
    EXPECT_NE(text.find("pre.a 3"), std::string::npos);
    EXPECT_NE(text.find("pre.b.count 1"), std::string::npos);
    EXPECT_NE(text.find("pre.b.mean 1.5"), std::string::npos);
}

TEST(Rng, UniformStaysInRange)
{
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        auto v = rng.uniform(10, 20);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 20u);
    }
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(2);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, BernoulliRoughlyFair)
{
    Rng rng(3);
    int heads = 0;
    for (int i = 0; i < 10000; ++i)
        heads += rng.bernoulli(0.5);
    EXPECT_GT(heads, 4500);
    EXPECT_LT(heads, 5500);
}

TEST(Rng, UniformRealInUnitInterval)
{
    Rng rng(4);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.uniformReal();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, ShufflePreservesMultiset)
{
    Rng rng(5);
    std::vector<int> v{1, 2, 2, 3, 5, 8};
    auto orig = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

} // namespace

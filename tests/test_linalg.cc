/**
 * @file
 * Tests for the linear algebra substrate: Matrix container and the
 * sequential reference algorithms (matmul, Boolean matmul, DFT/FFT).
 */

#include <gtest/gtest.h>

#include "linalg/matrix.hh"
#include "linalg/reference.hh"
#include "sim/rng.hh"

namespace {

using namespace ot::linalg;
using ot::sim::Rng;

TEST(Matrix, ConstructAndIndex)
{
    IntMatrix m(2, 3, 7);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_EQ(m(1, 2), 7u);
    m(0, 1) = 42;
    EXPECT_EQ(m(0, 1), 42u);
}

TEST(Matrix, FromRowsAndEquality)
{
    auto m = IntMatrix::fromRows({{1, 2}, {3, 4}});
    IntMatrix same(2, 2);
    same(0, 0) = 1;
    same(0, 1) = 2;
    same(1, 0) = 3;
    same(1, 1) = 4;
    EXPECT_EQ(m, same);
}

TEST(Matrix, Identity)
{
    auto id = IntMatrix::identity(3);
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 3; ++j)
            EXPECT_EQ(id(i, j), i == j ? 1u : 0u);
}

TEST(Matrix, RowColTransposed)
{
    auto m = IntMatrix::fromRows({{1, 2, 3}, {4, 5, 6}});
    EXPECT_EQ(m.row(1), (std::vector<std::uint64_t>{4, 5, 6}));
    EXPECT_EQ(m.col(2), (std::vector<std::uint64_t>{3, 6}));
    auto t = m.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t(2, 1), 6u);
}

TEST(Reference, MatMulSmall)
{
    auto a = IntMatrix::fromRows({{1, 2}, {3, 4}});
    auto b = IntMatrix::fromRows({{5, 6}, {7, 8}});
    auto c = matMul(a, b);
    EXPECT_EQ(c, IntMatrix::fromRows({{19, 22}, {43, 50}}));
}

TEST(Reference, MatMulIdentity)
{
    Rng rng(1);
    IntMatrix a(5, 5);
    for (std::size_t i = 0; i < 5; ++i)
        for (std::size_t j = 0; j < 5; ++j)
            a(i, j) = rng.uniform(0, 99);
    EXPECT_EQ(matMul(a, IntMatrix::identity(5)), a);
    EXPECT_EQ(matMul(IntMatrix::identity(5), a), a);
}

TEST(Reference, VecMatMulMatchesMatMul)
{
    Rng rng(2);
    IntMatrix b(6, 6);
    for (std::size_t i = 0; i < 6; ++i)
        for (std::size_t j = 0; j < 6; ++j)
            b(i, j) = rng.uniform(0, 9);
    std::vector<std::uint64_t> a{1, 2, 3, 4, 5, 6};
    auto c = vecMatMul(a, b);
    IntMatrix arow(1, 6);
    for (std::size_t j = 0; j < 6; ++j)
        arow(0, j) = a[j];
    auto full = matMul(arow, b);
    for (std::size_t j = 0; j < 6; ++j)
        EXPECT_EQ(c[j], full(0, j));
}

TEST(Reference, BoolMatMulBasics)
{
    auto a = BoolMatrix::fromRows({{1, 0}, {0, 1}});
    auto b = BoolMatrix::fromRows({{0, 1}, {1, 0}});
    EXPECT_EQ(boolMatMul(a, b), b);
    // Anything times all-ones row-reachable.
    auto ones = BoolMatrix(2, 2, 1);
    EXPECT_EQ(boolMatMul(ones, ones), ones);
}

TEST(Reference, BoolMatPowIsReachability)
{
    // Path graph 0 -> 1 -> 2 -> 3 (directed).
    BoolMatrix adj(4, 4, 0);
    adj(0, 1) = adj(1, 2) = adj(2, 3) = 1;
    auto two = boolMatPow(adj, 2);
    EXPECT_EQ(two(0, 2), 1);
    EXPECT_EQ(two(0, 3), 0);
    auto three = boolMatPow(adj, 3);
    EXPECT_EQ(three(0, 3), 1);
    EXPECT_EQ(boolMatPow(adj, 0), BoolMatrix::identity(4));
}

TEST(Reference, DftOfImpulseIsFlat)
{
    std::vector<Complex> x(8, 0.0);
    x[0] = 1.0;
    auto spectrum = dftNaive(x);
    for (const auto &v : spectrum)
        EXPECT_NEAR(std::abs(v - Complex(1.0, 0.0)), 0.0, 1e-9);
}

TEST(Reference, DftOfConstantIsImpulse)
{
    std::vector<Complex> x(8, 1.0);
    auto spectrum = dftNaive(x);
    EXPECT_NEAR(std::abs(spectrum[0] - Complex(8.0, 0.0)), 0.0, 1e-9);
    for (std::size_t k = 1; k < 8; ++k)
        EXPECT_NEAR(std::abs(spectrum[k]), 0.0, 1e-9);
}

TEST(Reference, FftMatchesNaiveDft)
{
    Rng rng(3);
    for (std::size_t n : {2, 4, 8, 16, 64, 256}) {
        std::vector<Complex> x(n);
        for (auto &v : x)
            v = Complex(rng.uniformReal() - 0.5, rng.uniformReal() - 0.5);
        EXPECT_LT(maxAbsDiff(fft(x), dftNaive(x)), 1e-6) << "n = " << n;
    }
}

TEST(Reference, MaxAbsDiff)
{
    std::vector<Complex> a{1.0, 2.0};
    std::vector<Complex> b{1.0, Complex(2.0, 3.0)};
    EXPECT_NEAR(maxAbsDiff(a, b), 3.0, 1e-12);
}

} // namespace

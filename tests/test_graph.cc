/**
 * @file
 * Tests for the graph substrate: containers, generators and the
 * sequential reference algorithms.
 */

#include <gtest/gtest.h>

#include <set>

#include "graph/generators.hh"
#include "graph/graph.hh"
#include "graph/reference_algorithms.hh"
#include "sim/rng.hh"

namespace {

using namespace ot::graph;
using ot::sim::Rng;

TEST(Graph, AddEdgeIsSymmetric)
{
    Graph g(4);
    g.addEdge(0, 2);
    EXPECT_TRUE(g.hasEdge(0, 2));
    EXPECT_TRUE(g.hasEdge(2, 0));
    EXPECT_FALSE(g.hasEdge(0, 1));
    EXPECT_EQ(g.edgeCount(), 1u);
}

TEST(Graph, SelfLoopsIgnored)
{
    Graph g(3);
    g.addEdge(1, 1);
    EXPECT_EQ(g.edgeCount(), 0u);
}

TEST(WeightedGraph, WeightsAndSkeleton)
{
    WeightedGraph g(3);
    g.addEdge(0, 1, 5);
    g.addEdge(1, 2, 7);
    EXPECT_EQ(g.weight(0, 1), 5u);
    EXPECT_EQ(g.weight(1, 0), 5u);
    EXPECT_EQ(g.weight(0, 2), kNoEdge);
    auto sk = g.skeleton();
    EXPECT_TRUE(sk.hasEdge(0, 1));
    EXPECT_FALSE(sk.hasEdge(0, 2));
}

TEST(UnionFind, BasicMerging)
{
    UnionFind uf(5);
    EXPECT_EQ(uf.setCount(), 5u);
    EXPECT_TRUE(uf.unite(0, 1));
    EXPECT_FALSE(uf.unite(1, 0));
    EXPECT_TRUE(uf.unite(2, 3));
    EXPECT_EQ(uf.setCount(), 3u);
    EXPECT_EQ(uf.find(0), uf.find(1));
    EXPECT_NE(uf.find(0), uf.find(2));
}

TEST(ConnectedComponents, PathAndIsolated)
{
    Graph g(5);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    auto labels = connectedComponents(g);
    EXPECT_EQ(labels, (std::vector<std::size_t>{0, 0, 0, 3, 4}));
    EXPECT_EQ(componentCount(g), 3u);
}

TEST(ConnectedComponents, CanonicalizeLabels)
{
    // Arbitrary labels -> smallest member id.
    std::vector<std::size_t> raw{7, 7, 9, 9, 7};
    EXPECT_EQ(canonicalizeLabels(raw),
              (std::vector<std::size_t>{0, 0, 2, 2, 0}));
}

TEST(Kruskal, UniqueMstOnSmallGraph)
{
    WeightedGraph g(4);
    g.addEdge(0, 1, 1);
    g.addEdge(1, 2, 2);
    g.addEdge(2, 3, 3);
    g.addEdge(0, 3, 10);
    g.addEdge(0, 2, 9);
    auto msf = kruskalMsf(g);
    ASSERT_EQ(msf.size(), 3u);
    EXPECT_EQ(totalWeight(msf), 6u);
    EXPECT_TRUE(isSpanningForest(g, msf));
}

TEST(Kruskal, ForestOnDisconnectedGraph)
{
    WeightedGraph g(5);
    g.addEdge(0, 1, 3);
    g.addEdge(2, 3, 4);
    auto msf = kruskalMsf(g);
    EXPECT_EQ(msf.size(), 2u);
    EXPECT_TRUE(isSpanningForest(g, msf));
}

TEST(IsSpanningForest, RejectsCycles)
{
    WeightedGraph g(3);
    g.addEdge(0, 1, 1);
    g.addEdge(1, 2, 2);
    g.addEdge(0, 2, 3);
    std::vector<Edge> cyclic{{0, 1, 1}, {1, 2, 2}, {0, 2, 3}};
    EXPECT_FALSE(isSpanningForest(g, cyclic));
}

TEST(IsSpanningForest, RejectsWrongWeightOrMissingEdge)
{
    WeightedGraph g(3);
    g.addEdge(0, 1, 1);
    g.addEdge(1, 2, 2);
    EXPECT_FALSE(isSpanningForest(g, {{0, 1, 9}, {1, 2, 2}}));
    EXPECT_FALSE(isSpanningForest(g, {{0, 2, 1}, {1, 2, 2}}));
}

TEST(Generators, GnpRespectsDensityExtremes)
{
    Rng rng(7);
    auto empty = randomGnp(20, 0.0, rng);
    EXPECT_EQ(empty.edgeCount(), 0u);
    auto full = randomGnp(20, 1.0, rng);
    EXPECT_EQ(full.edgeCount(), 20u * 19 / 2);
}

TEST(Generators, PlantedComponentsHasExactCount)
{
    Rng rng(8);
    for (std::size_t c : {1, 2, 3, 5, 8}) {
        auto g = plantedComponents(24, c, 2, rng);
        EXPECT_EQ(componentCount(g), c) << "planted " << c;
    }
}

TEST(Generators, RandomConnectedIsConnected)
{
    Rng rng(9);
    for (std::size_t n : {2, 5, 17, 64}) {
        auto g = randomConnected(n, n / 2, rng);
        EXPECT_EQ(componentCount(g), 1u) << "n = " << n;
    }
}

TEST(Generators, WeightedConnectedHasDistinctWeights)
{
    Rng rng(10);
    auto g = randomWeightedConnected(20, 15, rng);
    EXPECT_EQ(componentCount(g.skeleton()), 1u);
    std::set<std::uint64_t> seen;
    for (std::size_t i = 0; i < 20; ++i) {
        for (std::size_t j = i + 1; j < 20; ++j) {
            if (g.hasEdge(i, j)) {
                EXPECT_TRUE(seen.insert(g.weight(i, j)).second)
                    << "duplicate weight " << g.weight(i, j);
            }
        }
    }
}

TEST(Generators, WeightedCompleteIsComplete)
{
    Rng rng(11);
    auto g = randomWeightedComplete(9, rng);
    for (std::size_t i = 0; i < 9; ++i)
        for (std::size_t j = 0; j < 9; ++j)
            EXPECT_EQ(g.hasEdge(i, j), i != j);
}

TEST(Rng, DeterministicAndDistinct)
{
    Rng a(42), b(42), c(43);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
}

TEST(Rng, PermutationIsPermutation)
{
    Rng rng(5);
    auto p = rng.permutation(50);
    std::set<std::uint64_t> seen(p.begin(), p.end());
    EXPECT_EQ(seen.size(), 50u);
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(Rng, DistinctValues)
{
    Rng rng(6);
    auto v = rng.distinctValues(10, 1000);
    std::set<std::uint64_t> seen(v.begin(), v.end());
    EXPECT_EQ(seen.size(), 10u);
    for (auto x : v)
        EXPECT_LT(x, 1000u);
}

} // namespace

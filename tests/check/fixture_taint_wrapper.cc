// otcheck:fixture-path src/analysis/fixture_taint_wrapper.cc
//
// Taint-propagation fixture: an innocent-looking wrapper one hop
// from the source.  Nothing here mentions a banned identifier — the
// taint must flow fixtureJitter → fixtureRawNoise → splitmix64
// through the call graph for the sink diagnostic to carry the full
// witness chain.
#include <cstdint>

std::uint64_t fixtureRawNoise();

std::uint64_t
fixtureJitter()
{
    return fixtureRawNoise() | 1u;
}

// otcheck:fixture-path src/topo/fixture_bad_layering.cc
//
// Known-bad layering fixture: the topology layer reaching *up* the
// layer DAG into its own consumers.  topo may not include workload/
// or scenario/ (they depend on it), nor analysis/, simd/ or the
// umbrella header.
#include "topo/machine.hh"
#include "vlsi/delay.hh"

#include "workload/engine.hh" // expect: layering
#include "scenario/spec.hh" // expect: layering
#include "analysis/table.hh" // expect: layering
#include "simd/kernels.hh" // expect: layering
#include "orthotree/orthotree.hh" // expect: layering

int
fixtureUnused()
{
    return 0;
}

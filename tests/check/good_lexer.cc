// otcheck:fixture-path src/otn/fixture_good_lexer.cc
//
// Known-good lexer fixture: literal shapes that must not confuse the
// token stream.  The banned names below appear only inside literals
// and comments.  Must check clean.
#include <cstdint>

// A line comment that continues across a backslash \
   rand() on this continued line is still part of the comment.

/* time(nullptr) in a block comment */

inline std::uint64_t
separatedLiterals()
{
    // Digit separators must not open character literals.
    std::uint64_t big = 1'000'000'007ULL;
    std::uint64_t mask = 0xFF'FF'00'00u;
    std::uint64_t bits = 0b1010'1010;
    return big + mask + bits;
}

inline const char *
rawStrings(int which)
{
    static const char *plain = R"(rand() and srand(7))";
    // The fake terminator `)seq ` (no quote after it) must not close
    // the raw string early.
    static const char *tricky = R"seq(fake close )seq here, then )seq";
    return which ? plain : tricky;
}

inline char
quoteLiterals(bool dq)
{
    return dq ? '"' : '\'';
}

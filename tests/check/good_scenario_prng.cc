// otcheck:fixture-path src/scenario/fixture_good_scenario_prng.cc
//
// Known-good PRNG-scope fixture: the scenario layer's sanctioned
// raw splitmix64 call site, mirroring src/scenario/prng.hh — the
// justified allow plus drawing through the wrapper.  Must check
// clean.
#include <cstdint>

std::uint64_t splitmix64(std::uint64_t &state);

// The wrapper owns the only raw call site, under a justified allow.
struct StreamRng
{
    explicit StreamRng(std::uint64_t seed) : state(seed) {}

    std::uint64_t
    next()
    {
        // otcheck:allow(determinism): sole draw site of the scenario
        // PRNG — every stream is seeded from the .scn spec
        return splitmix64(state);
    }

    std::uint64_t state;
};

// Consumers draw through the wrapper: no raw stream, nothing
// flagged.  The banned name inside a comment is not a token:
// splitmix64(state).
std::uint64_t
interArrivalGap(std::uint64_t seed)
{
    StreamRng rng(seed);
    return rng.next() % 1000 + 1;
}

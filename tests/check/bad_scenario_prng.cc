// otcheck:fixture-path src/workload/fixture_bad_scenario_prng.cc
//
// Known-bad PRNG-scope fixture: a raw splitmix64 stream spun up
// outside the scenario layer's sanctioned wrapper (prng.hh).  Ad-hoc
// streams bypass the seeded-generator contract — callers must draw
// through sim::Rng or scenario::StreamRng.  This file is checker
// input, never compiled.
#include <cstdint>

std::uint64_t splitmix64(std::uint64_t &state);

std::uint64_t
adHocStream(std::uint64_t seed)
{
    std::uint64_t state = seed;
    std::uint64_t a = splitmix64(state); // expect: determinism
    std::uint64_t b = splitmix64(state); // expect: determinism
    return a ^ b;
}

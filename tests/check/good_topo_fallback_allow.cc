// otcheck:fixture-path src/topo/fixture_good_topo_fallback_allow.cc
//
// Good twin of bad_topo_fallback.cc: the same hook-less registered
// machine, but with a justified allow — the inherited costs are the
// point (an emulation shares its host's cost model by construction).
// The allow must be consumed (no unused-allow) and the fallback
// finding suppressed.  This file is checker input, never compiled.
#include <cstddef>
#include <memory>

struct FixtureAllowSpec
{
    std::size_t n = 0;
};

class FixtureAllowCostedMachine
{
  public:
    virtual ~FixtureAllowCostedMachine() = default;
    virtual double exchangeStepCost(std::size_t words);
    virtual double broadcastCost(std::size_t words);
    virtual double reduceCost(std::size_t words);
};

// otcheck:allow(topo-fallback): the emulation charges its host's
// per-hook costs by construction; overriding them would fork the
// cost model the two machines are defined to share.
class FixtureEmulatedMachine : public FixtureAllowCostedMachine
{
  public:
    void configure(std::size_t depth);
};

struct FixtureAllowInfo
{
    const char *name;
    std::unique_ptr<FixtureAllowCostedMachine> (*build)(
        const FixtureAllowSpec &);
};

class FixtureAllowRegistry
{
  public:
    void add(FixtureAllowInfo info);
};

template <class M>
std::unique_ptr<FixtureAllowCostedMachine>
buildFixtureAllow(const FixtureAllowSpec &)
{
    return std::make_unique<M>();
}

void
fixtureRegisterAllow(FixtureAllowRegistry &reg)
{
    reg.add({"fixture-emu", buildFixtureAllow<FixtureEmulatedMachine>});
}

// otcheck:fixture-path src/otn/fixture_bad_lexer_resync.cc
//
// Known-bad fixture proving the lexer resynchronises after tricky
// literals: the findings *after* them must still surface.  A lexer
// that mistook a digit separator for a character literal, or closed
// a raw string at a fake terminator, would swallow these.
#include <cstdlib>
#include <ctime>

int
afterDigitSeparators()
{
    int n = 1'000'000 + 0xAB'CD;
    return n + rand(); // expect: determinism
}

const char *kBanner = R"seq(
  a fake terminator: )seq mid-string, real one on the next line
)seq";

long
afterRawString()
{
    return time(nullptr); // expect: determinism
}

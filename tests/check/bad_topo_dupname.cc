// otcheck:fixture-path src/topo/fixture_bad_topo_dupname.cc
//
// Known-bad registry-collision fixture: two machines registered
// under the same name.  The name keys the network cache and the
// spec grammar, so the second entry silently shadows the first.
// The diagnostic lands on the second add() and cites the first.
// This file is checker input, never compiled.
#include <cstddef>
#include <memory>

struct FixtureDupSpec
{
    std::size_t n = 0;
};

class FixtureDupBaseMachine
{
  public:
    virtual ~FixtureDupBaseMachine() = default;
    virtual double exchangeStepCost(std::size_t words) = 0;
    virtual double broadcastCost(std::size_t words) = 0;
    virtual double reduceCost(std::size_t words) = 0;
};

class FixtureDupMeshMachine : public FixtureDupBaseMachine
{
  public:
    double exchangeStepCost(std::size_t words) override;
    double broadcastCost(std::size_t words) override;
    double reduceCost(std::size_t words) override;
};

class FixtureDupTorusMachine : public FixtureDupBaseMachine
{
  public:
    double exchangeStepCost(std::size_t words) override;
    double broadcastCost(std::size_t words) override;
    double reduceCost(std::size_t words) override;
};

struct FixtureDupInfo
{
    const char *name;
    std::unique_ptr<FixtureDupBaseMachine> (*build)(
        const FixtureDupSpec &);
};

class FixtureDupRegistry
{
  public:
    void add(FixtureDupInfo info);
};

template <class M>
std::unique_ptr<FixtureDupBaseMachine>
buildFixtureDup(const FixtureDupSpec &)
{
    return std::make_unique<M>();
}

void
fixtureRegisterDup(FixtureDupRegistry &reg)
{
    reg.add({"fixture-mesh", buildFixtureDup<FixtureDupMeshMachine>});
    reg.add({"fixture-mesh", buildFixtureDup<FixtureDupTorusMachine>}); // expect: topo-contract
}

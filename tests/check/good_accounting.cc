// otcheck:fixture-path src/otn/fixture_good_accounting.cc
//
// Known-good accounting fixture: balanced pairing in every shape the
// real algorithms use.  Must check clean.
struct Acct
{
    void beginPhase(const char *name);
    void endPhase();
};

// RAII wrapper, as in sim::ScopedPhase.  No allow() needed: the CFG
// pass recognises the ctor/dtor net-balance and exempts the pair.
class Scoped
{
  public:
    explicit Scoped(Acct &acct) : _acct(acct) { _acct.beginPhase("scope"); }

    ~Scoped() { _acct.endPhase(); }

  private:
    Acct &_acct;
};

void
plainBalanced(Acct &acct)
{
    acct.beginPhase("rank");
    acct.endPhase();
}

int
balancedBeforeReturn(Acct &acct, int n)
{
    acct.beginPhase("hook");
    int rounds = n * 2;
    acct.endPhase();
    return rounds;
}

void
loopBalanced(Acct &acct, int rounds)
{
    for (int i = 0; i < rounds; ++i) {
        acct.beginPhase("sweep");
        acct.endPhase();
    }
}

void
nestedBalanced(Acct &acct)
{
    acct.beginPhase("outer");
    acct.beginPhase("inner");
    acct.endPhase();
    acct.endPhase();
}

int
raiiEarlyReturn(Acct &acct, bool done)
{
    Scoped phase(acct);
    if (done)
        return 1; // RAII: no open begin/end call at this point
    return 0;
}

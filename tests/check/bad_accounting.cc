// otcheck:fixture-path src/otn/fixture_bad_accounting.cc
//
// Known-bad accounting fixture: beginPhase/endPhase (and the generic
// spanBegin/spanEnd pairing) must balance on every path through a
// function body.
struct Acct
{
    void beginPhase(const char *name);
    void endPhase();
};

struct Probe
{
    void spanBegin(const char *name);
    void spanEnd();
};

void
phaseLeak(Acct &acct)
{
    acct.beginPhase("rank"); // expect: accounting
}

int
earlyReturn(Acct &acct, bool done)
{
    acct.beginPhase("hook");
    if (done)
        return 1; // expect: accounting
    acct.endPhase();
    return 0;
}

void
underflow(Acct &acct)
{
    acct.endPhase(); // expect: accounting
}

void
doubleEnd(Acct &acct, bool flip)
{
    acct.beginPhase("jump");
    if (flip)
        acct.endPhase();
    acct.endPhase(); // expect: accounting
}

void
spanLeak(Probe &probe)
{
    probe.spanBegin("sweep"); // expect: accounting
}

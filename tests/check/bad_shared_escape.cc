// otcheck:fixture-path src/topo/fixture_bad_shared_escape.cc
//
// Known-bad cross-TU shared-immutability fixture: the non-API member
// never touches the field itself — it hands the member by reference
// to a helper in another translation unit whose mutation summary
// says "push_back on parameter 0, unconditionally".  The diagnostic
// must cite the helper's file and line as the witness.  This file is
// checker input, never compiled.
#include <cstddef>
#include <vector>

void appendSample(std::vector<double> &sink, double v);

// otcheck:shared(post-build)
class FixtureSharedEscapeMachine
{
  public:
    virtual ~FixtureSharedEscapeMachine() = default;

    virtual double broadcastCost(std::size_t words);

    void recordSample(double v); // not part of the virtual API

  private:
    std::vector<double> _samples;
};

double
FixtureSharedEscapeMachine::broadcastCost(std::size_t words)
{
    return static_cast<double>(words + _samples.size());
}

void
FixtureSharedEscapeMachine::recordSample(double v)
{
    appendSample(_samples, v); // expect: shared
}

// otcheck:fixture-path src/scenario/fixture_good_sched_pure.cc
//
// Good twin of the bad_sched_* fixtures: the marked ranking function
// orders from its arguments alone — locals, a static constexpr
// constant (exempt: it cannot change between calls), and a clean
// by-value helper.  The sched-purity rule must stay silent.  This
// file is checker input, never compiled.
#include <cstddef>
#include <vector>

namespace {

std::size_t
fixtureTieBreak(std::size_t a, std::size_t b)
{
    return a < b ? a : b;
}

} // namespace

// otcheck:pure
std::size_t
fixturePickShortest(const std::vector<int> &queue, std::size_t served)
{
    static constexpr std::size_t kBias = 3;
    std::size_t best = 0;
    for (std::size_t i = 1; i < queue.size(); ++i)
        if (queue[i] < queue[best])
            best = i;
    return fixtureTieBreak(best + kBias, served + queue.size());
}

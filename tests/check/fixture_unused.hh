// otcheck:fixture-path src/vlsi/fixture_unused.hh
//
// Header half of the include-hygiene fixture project: declares a
// symbol nobody references, so including it is dead weight.  Must
// check clean on its own.
#pragma once

int fixtureUnusedValue();

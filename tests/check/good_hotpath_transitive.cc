// otcheck:fixture-path src/otn/fixture_good_hotpath_transitive.cc
// otcheck:hotpath
//
// Known-good transitive-hotpath fixture (checked as a project with
// fixture_hotpath_helper.cc): the cross-file call below reaches only
// allocation-free code, so the call-graph pass must stay silent.
#include <cstddef>
#include <cstdint>

std::uint64_t fixtureScratchSum(const std::uint64_t *v, std::size_t n);

std::uint64_t
fixtureHotTotal(const std::uint64_t *v, std::size_t n)
{
    return fixtureScratchSum(v, n);
}

// otcheck:fixture-path src/otn/fixture_bad_determinism.cc
//
// Known-bad determinism fixture.  Every construct below is a
// nondeterminism source or an iteration-order hazard in a
// lane-reachable layer (src/otn); each annotated line must produce
// exactly the listed diagnostics.  This file is checker input, never
// compiled.
#include <cstdlib>
#include <map>
#include <unordered_map>

int
laneSeed()
{
    return rand(); // expect: determinism
}

void
reseed()
{
    srand(7); // expect: determinism
}

long
hostEntropy()
{
    std::random_device rd; // expect: determinism
    return static_cast<long>(rd());
}

long
wallClock()
{
    return std::time(nullptr); // expect: determinism
}

long
chronoClock()
{
    auto t = std::chrono::steady_clock::now(); // expect: determinism
    return t.time_since_epoch().count();
}

unsigned long
hostLane()
{
    return std::hash<std::thread::id>{}(
        std::this_thread::get_id()); // expect: determinism
}

int
orderLeak(const std::unordered_map<int, int> &m) // expect: determinism
{
    int sum = 0;
    for (const auto &kv : m)
        sum += kv.second;
    return sum;
}

struct Node
{
    int value;
};

int
addressOrder()
{
    std::map<Node *, int> byAddr; // expect: determinism
    int sum = 0;
    for (const auto &kv : byAddr)
        sum += kv.second;
    return sum;
}

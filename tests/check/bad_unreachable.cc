// otcheck:fixture-path src/otn/fixture_bad_unreachable.cc
//
// Known-bad unreachable fixture: statements after a terminator in
// the same block can never execute.  Only the first casualty of each
// block is reported.
#include <cstdlib>

int
afterReturn(int n)
{
    return n * 2;
    int dead = n + 1; // expect: unreachable
    return dead;      // not reported: only the first casualty is
}

int
afterThrow(int n)
{
    if (n < 0) {
        throw n;
        ++n; // expect: unreachable
    }
    return n;
}

int
afterBreak(int n)
{
    int acc = 0;
    while (acc < n) {
        break;
        ++acc; // expect: unreachable
    }
    return acc;
}

int
afterExhaustiveIf(int n)
{
    if (n > 0)
        return 1;
    else
        return 0;
    return -1; // expect: unreachable
}

int
afterAbort(int n)
{
    if (n < 0) {
        std::abort();
        n = 0; // expect: unreachable
    }
    return n;
}

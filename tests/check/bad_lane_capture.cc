// otcheck:fixture-path src/otn/fixture_bad_lane_capture.cc
//
// Known-bad lane-safety fixture: the lambda handed to parallelFor
// runs concurrently on host lanes, so writes through by-reference
// captures must be isolated by a lane-derived index.  Both writes
// below race — the accumulation and the container mutation hit the
// same shared object from every lane.
#include <cstddef>
#include <vector>

template <class F> void parallelFor(std::size_t n, F &&fn);

double
reduceRacy(const std::vector<double> &values, std::size_t lanes)
{
    double total = 0.0;
    std::vector<double> trace;
    parallelFor(lanes, [&](std::size_t lane) {
        total += values[lane];       // expect: lane-safety
        trace.push_back(total);      // expect: lane-safety
    });
    return total;
}

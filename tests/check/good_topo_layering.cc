// otcheck:fixture-path src/topo/fixture_good_layering.cc
//
// Known-good layering fixture for the topology plugin layer: src/topo
// sits between the machine families and the workload engine, so it
// may include the orthogonal-tree simulators, the baselines and every
// layer below them.  Must check clean.
#include "topo/machine.hh"

#include <cstdint>

#include "baselines/mesh.hh"
#include "graph/graph.hh"
#include "layout/geometry.hh"
#include "linalg/matrix.hh"
#include "otc/network.hh"
#include "otn/network.hh"
#include "sim/time_accountant.hh"
#include "trace/tracer.hh"
#include "vlsi/delay.hh"

int
fixtureUnused()
{
    return 0;
}

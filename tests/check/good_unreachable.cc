// otcheck:fixture-path src/otn/fixture_good_unreachable.cc
//
// Known-good unreachable fixture: code after terminators that *is*
// reachable (half-open ifs, loops that may complete, labels), plus
// the shapes the checker deliberately treats as open.  Must check
// clean.
int
halfOpenIf(int n)
{
    if (n > 0)
        return 1;
    return 0; // reachable: the if has no else
}

int
loopNotTerminator(int n)
{
    for (int i = 0; i < n; ++i)
        if (i == 3)
            return i;
    return -1; // reachable: the loop may complete normally
}

int
switchNotTerminator(int n)
{
    switch (n) {
      case 0:
        return 0;
      default:
        return 1;
    }
    return 2; // conservatively reachable: switches are treated as open
}

int
labeledAfterReturn(int n)
{
    if (n == 0)
        goto retry;
    return n;
retry: // reachable via goto: labels exempt their statement
    return labeledAfterReturn(n + 1);
}

// otcheck:fixture-path src/otn/fixture_bad_allow.cc
//
// Known-bad escape-hatch fixture: allow() markers must name a real
// rule and carry a justification; a bare allow suppresses nothing;
// a justified allow that suppresses nothing is itself reported.
#include <cstdlib>

int
unjustified()
{
    // otcheck:allow(determinism) -- expect: allow-syntax
    return rand(); // expect: determinism
}

int
unknownRule()
{
    // otcheck:allow(speed): it felt slow -- expect: allow-syntax
    return 2;
}

int
staleAllow()
{
    // otcheck:allow(determinism): was needed once -- expect: unused-allow
    return 3;
}

int
wholeStatementCovered()
{
    // The allow's extent is the whole next statement, so the call on
    // the statement's later line is suppressed too (and the allow is
    // used, hence no unused-allow here).
    // otcheck:allow(determinism): fixture demonstrates the extent
    int v =
        rand() +
        rand();
    return v;
}

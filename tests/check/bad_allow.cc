// otcheck:fixture-path src/otn/fixture_bad_allow.cc
//
// Known-bad escape-hatch fixture: allow() markers must name a real
// rule and carry a justification; a bare allow suppresses nothing.
#include <cstdlib>

int
unjustified()
{
    // otcheck:allow(determinism) -- expect: allow-syntax
    return rand(); // expect: determinism
}

int
unknownRule()
{
    // otcheck:allow(speed): it felt slow -- expect: allow-syntax
    return 2;
}

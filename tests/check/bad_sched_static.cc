// otcheck:fixture-path src/scenario/fixture_bad_sched_static.cc
//
// Known-bad scheduler-purity fixture: a ranking function marked
// otcheck:pure that keeps a static cursor.  The pick then depends on
// evaluation history, so two replays of the same scenario disagree
// the moment the engine evaluates candidates in a different order.
// This file is checker input, never compiled.
#include <cstddef>
#include <vector>

// otcheck:pure
std::size_t
fixturePickRoundRobin(const std::vector<int> &queue)
{
    static std::size_t cursor = 0; // expect: sched-purity
    cursor = (cursor + 1) % (queue.size() + 1);
    return cursor;
}

// otcheck:fixture-path src/workload/fixture_bad_taint_sink.cc
//
// Known-bad determinism-taint fixture: a determinism-scope file
// calling a wrapper that is two call-graph hops away from a banned
// nondeterminism source.  The call site itself looks clean — only
// the interprocedural taint walk can connect it to splitmix64.
#include <cstdint>

std::uint64_t fixtureJitter();

std::uint64_t
perturbSeed(std::uint64_t seed)
{
    return seed ^ fixtureJitter(); // expect: determinism-taint
}

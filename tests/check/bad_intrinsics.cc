// otcheck:fixture-path src/otn/fixture_bad_intrinsics.cc
//
// Known-bad intrinsics fixture: a src/otn file reaching for raw
// vector intrinsics instead of going through simd::KernelTable.
// Intrinsic headers, x86 vector types and calls, and NEON vector
// types and calls are all caught; the scalar tail loop is not.
// This file is checker input, never compiled.
#include <cstddef>
#include <cstdint>
#include <immintrin.h> // expect: intrinsics
#include <arm_neon.h> // expect: intrinsics

void
avx2Fill(std::uint64_t *dst, std::size_t n, std::uint64_t v)
{
    __m256i s = // expect: intrinsics
        _mm256_set1_epi64x(static_cast<long long>(v)); // expect: intrinsics
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        _mm256_storeu_si256( // expect: intrinsics
            reinterpret_cast<__m256i *>(dst + i), s); // expect: intrinsics
    for (; i < n; ++i)
        dst[i] = v;
}

std::uint64_t
neonSum(const std::uint64_t *src, std::size_t n)
{
    uint64x2_t acc = // expect: intrinsics
        vdupq_n_u64(0); // expect: intrinsics
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2)
        acc = vaddq_u64(acc, vld1q_u64(src + i)); // expect: intrinsics, intrinsics
    std::uint64_t total = vgetq_lane_u64(acc, 0) + // expect: intrinsics
                          vgetq_lane_u64(acc, 1); // expect: intrinsics
    for (; i < n; ++i)
        total += src[i];
    return total;
}

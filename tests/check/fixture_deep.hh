// otcheck:fixture-path src/vlsi/fixture_deep.hh
//
// Deep header of the include-hygiene fixture project: the symbol a
// client must include *this* header for, rather than leaning on a
// transitive path.  Must check clean on its own.
#pragma once

int fixtureDeepValue();

// otcheck:fixture-path src/topo/fixture_bad_topo_unregistered.cc
//
// Known-bad conformance-coverage fixture: a concrete machine rooted
// in a registered plugin hierarchy that no add() ever mentions.  It
// silently drops out of the conformance sweep and the spec grammar —
// dead weight at best, a forgotten registration at worst.  This file
// is checker input, never compiled.
#include <cstddef>
#include <memory>

struct FixtureOrphanSpec
{
    std::size_t n = 0;
};

class FixtureOrphanBaseMachine
{
  public:
    virtual ~FixtureOrphanBaseMachine() = default;
    virtual double exchangeStepCost(std::size_t words) = 0;
    virtual double broadcastCost(std::size_t words) = 0;
    virtual double reduceCost(std::size_t words) = 0;
};

class FixtureGridMachine : public FixtureOrphanBaseMachine
{
  public:
    double exchangeStepCost(std::size_t words) override;
    double broadcastCost(std::size_t words) override;
    double reduceCost(std::size_t words) override;
};

class FixtureOrphanMachine : public FixtureOrphanBaseMachine // expect: topo-contract
{
  public:
    double exchangeStepCost(std::size_t words) override;
    double broadcastCost(std::size_t words) override;
    double reduceCost(std::size_t words) override;
};

struct FixtureOrphanInfo
{
    const char *name;
    std::unique_ptr<FixtureOrphanBaseMachine> (*build)(
        const FixtureOrphanSpec &);
};

class FixtureOrphanRegistry
{
  public:
    void add(FixtureOrphanInfo info);
};

template <class M>
std::unique_ptr<FixtureOrphanBaseMachine>
buildFixtureOrphan(const FixtureOrphanSpec &)
{
    return std::make_unique<M>();
}

void
fixtureRegisterOrphan(FixtureOrphanRegistry &reg)
{
    reg.add({"fixture-grid", buildFixtureOrphan<FixtureGridMachine>});
}

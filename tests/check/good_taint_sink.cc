// otcheck:fixture-path src/workload/fixture_good_taint_sink.cc
//
// Known-good determinism-taint fixture: a determinism-scope file
// calling an out-of-scope helper that is NOT tainted.  Crossing the
// scope boundary is fine in itself — only reaching a nondeterminism
// source through the call graph is flagged.
#include <cstdint>

std::uint64_t fixtureMixHash(std::uint64_t x);

std::uint64_t
deriveSeed(std::uint64_t seed)
{
    return fixtureMixHash(seed ^ 0x2545f4914f6cdd1dull);
}

// otcheck:fixture-path src/otn/fixture_bad_accounting_cfg.cc
//
// Known-bad CFG accounting fixture: every function below is balanced
// *lexically* (the begin/end call counts match) or nearly so, yet
// some path through the body leaks or depletes the phase stack.
// Only a path-sensitive walk of the control-flow graph sees these.
struct Acct
{
    void beginPhase(const char *name);
    void endPhase();
};

void fiddle(bool flip);

void
branchLeak(Acct &acct, bool deep)
{
    acct.beginPhase("walk"); // expect: accounting
    if (deep)
        acct.endPhase();
}

void
loopCarriedLeak(Acct &acct, int rounds)
{
    for (int i = 0; i < rounds; ++i)
        acct.beginPhase("sweep"); // expect: accounting
    // The end also underflows on the zero-iteration path:
    acct.endPhase(); // expect: accounting
}

void
loopCarriedDrain(Acct &acct, int n)
{
    acct.beginPhase("outer");
    do {
        acct.endPhase(); // expect: accounting
    } while (--n > 0);
}

void
switchLeak(Acct &acct, int mode)
{
    switch (mode) {
      case 0:
        acct.beginPhase("zero"); // expect: accounting
        break;
      default:
        break;
    }
}

void
catchLeak(Acct &acct, bool flip)
{
    try {
        fiddle(flip);
    } catch (...) {
        acct.beginPhase("recover"); // expect: accounting
    }
}

// otcheck:fixture-path src/otn/fixture_good_accounting_split.cc
//
// Known-good interprocedural accounting fixture:
//   - a phase opened through one helper and closed through another
//     balances across the call edges (Known(+1) + Known(-1));
//   - a self-recursive function gets a Top summary, so its callers
//     degrade to the old call-invisible behavior instead of guessing
//     a delta — no diagnostics on either side as long as each body
//     balances intraprocedurally.
struct Acct
{
    void beginPhase(const char *name);
    void endPhase();
};

void
fixtureOpenSpan(Acct &acct)
{
    acct.beginPhase("paired");
}

void
fixtureCloseSpan(Acct &acct)
{
    acct.endPhase();
}

void
pairAcrossHelpers(Acct &acct)
{
    fixtureOpenSpan(acct);
    fixtureCloseSpan(acct);
}

int
fixtureRecurse(Acct &acct, int depth)
{
    acct.beginPhase("recurse");
    int below = depth > 0 ? fixtureRecurse(acct, depth - 1) : 0;
    acct.endPhase();
    return below + 1;
}

int
useRecurse(Acct &acct)
{
    return fixtureRecurse(acct, 3);
}

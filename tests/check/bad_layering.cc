// otcheck:fixture-path src/sim/fixture_bad_layering.cc
//
// Known-bad layering fixture: a src/sim file reaching *up* the layer
// DAG.  sim may include only sim/, trace/ and vlsi/ (see DESIGN.md);
// everything else below is a back-edge, and the umbrella header is
// banned everywhere inside src/.
#include "sim/time_accountant.hh"
#include "vlsi/delay.hh"

#include "otn/sort.hh" // expect: layering
#include "otc/network.hh" // expect: layering
#include "graph/graph.hh" // expect: layering
#include "layout/geometry.hh" // expect: layering
#include "orthotree/orthotree.hh" // expect: layering

int
fixtureUnused()
{
    return 0;
}

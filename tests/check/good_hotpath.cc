// otcheck:fixture-path src/vlsi/fixture_good_hotpath.hh
// otcheck:hotpath
//
// Known-good hotpath fixture: flat value types, callers pass
// preallocated buffers, one justified allow() on a setup path.
// Must check clean.
#include <cstddef>
#include <cstdint>

// Flat value-type selector in the style of otn::Sel / otc::CSel:
// dispatch by enum, not by virtual call or std::function.
struct Sel
{
    enum class Op : std::uint8_t { Min, Max, Sum };
    Op op = Op::Min;

    std::uint64_t
    apply(std::uint64_t a, std::uint64_t b) const
    {
        if (op == Op::Min)
            return a < b ? a : b;
        if (op == Op::Max)
            return a > b ? a : b;
        return a + b;
    }
};

// A variable named `function` is not std::function.
inline std::uint64_t
reduceInto(std::uint64_t *buf, std::size_t n, Sel function)
{
    std::uint64_t acc = buf[0];
    for (std::size_t i = 1; i < n; ++i)
        acc = function.apply(acc, buf[i]);
    return acc;
}

struct Arena
{
    std::uint64_t *grow(std::size_t n);
    // otcheck:allow(hotpath): setup-path arena growth, not per-event
    std::uint64_t *slowPath(std::size_t n) { return new std::uint64_t[n]; }
};

// otcheck:fixture-path src/simd/fixture_good_intrinsics.hh
//
// Known-good intrinsics fixture: raw vector intrinsics are fine
// INSIDE the simd layer — that is where the backend kernel tables
// live.  Must check clean.  This file is checker input, never
// compiled, so mixing x86 and ARM idioms here is harmless.
#include <cstddef>
#include <cstdint>
#include <immintrin.h>

inline __m256i
addLanes(__m256i a, __m256i b)
{
    return _mm256_add_epi64(a, b);
}

inline void
fill4(std::uint64_t *dst, std::uint64_t v)
{
    __m256i s = _mm256_set1_epi64x(static_cast<long long>(v));
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst), s);
}

// otcheck:fixture-path src/sim/fixture_bad_taint_table.cc
//
// Known-bad determinism-taint fixture: the source escapes through a
// function-pointer table instead of a direct call.  Taking the
// address of a tainted function inside the determinism scope is
// flagged as a "reference to" flow — whoever invokes the table entry
// inherits the nondeterminism.
#include <cstdint>

std::uint64_t fixtureRawNoise();

using KernelFn = std::uint64_t (*)();

std::uint64_t
runFirstKernel()
{
    static const KernelFn kNoiseKernels[] = {
        &fixtureRawNoise, // expect: determinism-taint
    };
    return kNoiseKernels[0]();
}

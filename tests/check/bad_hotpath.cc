// otcheck:fixture-path src/vlsi/fixture_bad_hotpath.hh
// otcheck:hotpath
//
// Known-bad hotpath fixture: a file marked `// otcheck:hotpath` may
// not mention type-erased calls, virtual dispatch or heap
// allocation.
#include <functional>
#include <memory>

struct Base
{
    virtual int cost() const; // expect: hotpath
};

inline int
boxedCall(const std::function<int(int)> &f) // expect: hotpath
{
    return f(1);
}

inline int *
rawAlloc()
{
    return new int(3); // expect: hotpath
}

inline std::unique_ptr<int>
smartAlloc()
{
    return std::make_unique<int>(4); // expect: hotpath
}

// otcheck:fixture-path src/otn/fixture_bad_include_hygiene.cc
//
// Known-bad include-hygiene fixture (checked as a project with the
// fixture_*.hh headers): one include contributes nothing, and one
// symbol is used through a transitive path instead of its own
// header.
#include "vlsi/fixture_gateway.hh"
#include "vlsi/fixture_unused.hh" // expect: include-hygiene

int
fixtureLeansOnGateway()
{
    // fixture_deep.hh is only reachable through the gateway include:
    // naming its symbol requires including it directly.
    return fixtureDeepValue(); // expect: include-hygiene
}

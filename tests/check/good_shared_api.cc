// otcheck:fixture-path src/topo/fixture_good_shared_api.cc
//
// Good twin of bad_shared_mutation.cc: every post-build mutation of
// the shared machine flows through the virtual plugin API (which the
// engine serializes per machine), and the accessor hands out a const
// reference.  The shared rule must stay silent.  This file is
// checker input, never compiled.
#include <cstddef>
#include <vector>

// otcheck:shared(post-build)
class FixtureSharedGoodMachine
{
  public:
    explicit FixtureSharedGoodMachine(std::size_t n) : _cells(n, 0.0) {}
    virtual ~FixtureSharedGoodMachine() = default;

    virtual double exchangeStepCost(std::size_t words);
    virtual void reset();

    const std::vector<double> &cells() const { return _cells; }

  private:
    std::vector<double> _cells;
    std::size_t _touches = 0;
};

double
FixtureSharedGoodMachine::exchangeStepCost(std::size_t words)
{
    _touches += 1; // virtual API: the engine serializes this
    return static_cast<double>(words * _cells.size());
}

void
FixtureSharedGoodMachine::reset()
{
    _touches = 0;
    _cells.assign(_cells.size(), 0.0);
}

// otcheck:fixture-path src/otn/fixture_bad_accounting_split.cc
//
// Known-bad interprocedural accounting fixture: the helpers below
// carry consistent nonzero net deltas (one opens, one closes), so
// they are legal in themselves — the defects are in the callers.
// leakThroughHelper opens via the helper and never closes;
// closeWithoutOpen closes via the helper with nothing open.  Both
// are invisible to a per-function analysis and need the call-graph
// summaries.
struct Acct
{
    void beginPhase(const char *name);
    void endPhase();
};

void
fixtureOpenPhase(Acct &acct)
{
    acct.beginPhase("split");
}

void
fixtureClosePhase(Acct &acct)
{
    acct.endPhase();
}

void
leakThroughHelper(Acct &acct)
{
    fixtureOpenPhase(acct); // expect: accounting
}

void
closeWithoutOpen(Acct &acct)
{
    fixtureClosePhase(acct); // expect: accounting
}

void
balancedAcrossCalls(Acct &acct)
{
    fixtureOpenPhase(acct);
    acct.endPhase();
}

// otcheck:fixture-path src/vlsi/fixture_gateway.hh
//
// Gateway header of the include-hygiene fixture project: it uses
// fixture_deep.hh itself (so its own include is justified), and
// clients that only need its wrapper are fine — but a client naming
// fixtureDeepValue directly must include fixture_deep.hh itself.
// Must check clean on its own.
#pragma once

#include "vlsi/fixture_deep.hh"

inline int
fixtureGatewayTwice()
{
    return 2 * fixtureDeepValue();
}

// otcheck:fixture-path src/analysis/fixture_taint_noise.cc
//
// Taint-source fixture: host-side analysis helper that calls a
// banned nondeterminism primitive.  src/analysis is outside the
// determinism scope, so the flat determinism rule stays silent here —
// the interprocedural taint rule is what carries this fact to any
// determinism-scope caller.  fixtureMixHash is the clean sibling the
// good sink fixture calls.
#include <cstdint>

std::uint64_t splitmix64(std::uint64_t &state);

std::uint64_t
fixtureRawNoise()
{
    std::uint64_t state = 0x9e3779b97f4a7c15ull;
    return splitmix64(state);
}

std::uint64_t
fixtureMixHash(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    return x;
}

// otcheck:fixture-path src/otn/fixture_good_include_hygiene.cc
//
// Known-good include-hygiene fixture (checked as a project with the
// fixture_*.hh headers): every include contributes a referenced
// symbol — the gateway include is justified by its wrapper alone.
// Must check clean.
#include "vlsi/fixture_deep.hh"
#include "vlsi/fixture_gateway.hh"

int
fixtureUsesBoth()
{
    return fixtureDeepValue() + fixtureGatewayTwice();
}

// otcheck:fixture-path src/scenario/fixture_bad_sched_taint.cc
//
// Known-bad scheduler-purity fixture: the ranking function draws
// entropy through a wrapper two call-graph hops from a banned
// primitive.  The call site looks clean — only the interprocedural
// taint walk connects it to splitmix64, and the purity diagnostic
// must spell out the whole chain.  (The taint boundary rule fires on
// the same line: scenario is determinism scope.)  This file is
// checker input, never compiled.
#include <cstddef>
#include <cstdint>

std::uint64_t fixtureJitter();

// otcheck:pure
std::size_t
fixtureRankJittered(std::size_t queueDepth, std::size_t served)
{
    std::uint64_t r = served ^ fixtureJitter(); // expect: determinism-taint, sched-purity
    return static_cast<std::size_t>(r) % (queueDepth + 1);
}

// otcheck:fixture-path src/otn/fixture_lane_helper.cc
//
// Helper TU for the transitive lane-safety fixtures: appendSample
// mutates its by-reference parameter unconditionally (the bad
// caller's witness); appendSampleAt writes only through the `slot`
// index, so callers that pass a lane-derived slot are excused by the
// per-parameter mutation summary.
#include <cstddef>
#include <vector>

void
appendSample(std::vector<double> &sink, double v)
{
    sink.push_back(v);
}

void
appendSampleAt(std::vector<double> &sink, std::size_t slot, double v)
{
    sink[slot] += v;
}

// otcheck:fixture-path src/otn/fixture_bad_lane_transitive.cc
//
// Known-bad transitive lane-safety fixture: the race is one call
// away.  The lambda body never writes the capture itself — it hands
// the shared vector to a helper in another translation unit whose
// mutation summary says "push_back on parameter 0, no index".  The
// diagnostic must cite the helper's file and line as the witness.
#include <cstddef>
#include <vector>

template <class F> void parallelFor(std::size_t n, F &&fn);

void appendSample(std::vector<double> &sink, double v);

void
collectRacy(const std::vector<double> &values,
            std::vector<double> &sink)
{
    parallelFor(values.size(), [&](std::size_t lane) {
        appendSample(sink, values[lane]); // expect: lane-safety
    });
}

// otcheck:fixture-path src/otn/fixture_bad_hotpath_transitive.cc
// otcheck:hotpath
//
// Known-bad transitive-hotpath fixture (checked as a project with
// fixture_hotpath_helper.cc): nothing here allocates lexically, but
// the calls below resolve to a helper in another file whose body
// heap-allocates.  The call-graph pass must flag the cross-file call
// sites.
#include <cstddef>
#include <cstdint>

std::uint64_t *fixtureScratchAlloc(std::size_t n);

static std::uint64_t *
scratch(std::size_t n)
{
    return fixtureScratchAlloc(n); // expect: hotpath-propagation
}

std::uint64_t
fixtureHotReduce(const std::uint64_t *v, std::size_t n)
{
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < n; ++i)
        acc += v[i];
    return acc + scratch(1)[0];
}

// otcheck:fixture-path src/scenario/fixture_bad_sched_byref.cc
//
// Known-bad scheduler-purity fixture: a ranking function marked
// otcheck:pure that edits the queue it was asked to order.  Ranking
// must return the choice and let the scenario engine apply it — a
// ranking that updates state turns every comparison into a side
// effect.  This file is checker input, never compiled.
#include <cstddef>
#include <vector>

// otcheck:pure
std::size_t
fixtureRankAndDrop(std::vector<int> &queue, std::size_t served)
{
    queue.push_back(0); // expect: sched-purity
    return served % (queue.size() + 1);
}

// otcheck:fixture-path src/sim/fixture_hotpath_helper.cc
//
// Helper half of the transitive-hotpath fixture project: heap
// allocation is legal here (the file carries no hotpath marker), but
// a hotpath-marked caller must not reach fixtureScratchAlloc through
// any call chain.  Must check clean on its own.
#include <cstddef>
#include <cstdint>

std::uint64_t *
fixtureScratchAlloc(std::size_t n)
{
    return new std::uint64_t[n];
}

std::uint64_t
fixtureScratchSum(const std::uint64_t *v, std::size_t n)
{
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < n; ++i)
        acc += v[i];
    return acc;
}

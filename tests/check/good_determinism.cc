// otcheck:fixture-path src/otn/fixture_good_determinism.cc
//
// Known-good determinism fixture: the sanctioned spellings of
// everything bad_determinism.cc gets flagged for.  Must check clean.
#include <cstdint>
#include <map>
#include <string>
#include <vector>

// The house RNG: explicit seed, reproducible everywhere.
struct Rng
{
    explicit Rng(std::uint64_t seed) : state(seed) {}
    std::uint64_t next();
    std::uint64_t state;
};

std::uint64_t
laneSeed(std::uint64_t seed)
{
    Rng rng(seed);
    return rng.next();
}

// Banned names inside comments and strings are not tokens:
// rand(), std::random_device, std::unordered_map<int, int>.
const char *
bannedNamesInLiterals()
{
    return "rand() time(nullptr) unordered_map get_id";
}

// A member called time() is someone's own API, not the wall clock.
struct Span
{
    long time() const { return duration; }
    long duration = 0;
};

long
memberTime(const Span &s)
{
    return s.time();
}

// String-keyed std::map iterates in key order: deterministic.
long
orderedSum(const std::map<std::string, long> &m)
{
    long sum = 0;
    for (const auto &kv : m)
        sum += kv.second;
    return sum;
}

// Pointer *values* are fine; only pointer *keys* leak address order.
int
pointerValues()
{
    std::map<int, Span *> byIndex;
    return static_cast<int>(byIndex.size());
}

// The escape hatch: justified allows suppress the diagnostic.
unsigned
mixBits()
{
    // otcheck:allow(determinism): masked to zero — no entropy drawn
    return static_cast<unsigned>(std::time(nullptr)) & 0u;
}

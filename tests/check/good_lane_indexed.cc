// otcheck:fixture-path src/otn/fixture_good_lane_indexed.cc
//
// Known-good lane-safety fixture: every shape here must stay silent.
//   - writes into a shared buffer indexed by the lane parameter (or
//     by a local derived from it, including range-for loop variables
//     over a lane-derived shard);
//   - a reference local bound to a lane-indexed slot;
//   - captured state passed to a callee whose mutation is indexed by
//     a lane-derived argument (per-parameter summary lookup);
//   - engine accessor calls (counter() hands back a lane-aware
//     reference, so the prefix ++ targets the accessor's slot).
#include <cstddef>
#include <vector>

template <class F> void parallelFor(std::size_t n, F &&fn);

struct Shard
{
    std::vector<std::size_t> members;
};

struct Engine
{
    std::size_t &counter(std::size_t lane);
    void record(std::size_t lane);
};

void
accumulateAt(std::vector<double> &acc, std::size_t idx, double v)
{
    acc[idx] += v;
}

void
scatterSafe(const std::vector<Shard> &shards,
            std::vector<double> &out, Engine &eng, double scale)
{
    parallelFor(shards.size(), [&](std::size_t lane) {
        const Shard &sh = shards[lane];
        double local = 0.0;
        for (std::size_t idx : sh.members) {
            local += scale;
            out[idx] = local;
        }
        double &slot = out[lane];
        slot += local;
        accumulateAt(out, lane, local);
        ++eng.counter(lane);
        eng.record(lane);
    });
}

// otcheck:fixture-path src/otn/fixture_good_accounting_cfg.cc
//
// Known-good CFG accounting fixture: balanced on every path through
// branches, loops, switches, lambdas and early exits.  Must check
// clean.
#include <cstdlib>

struct Acct
{
    void beginPhase(const char *name);
    void endPhase();
};

void
branchBalanced(Acct &acct, bool deep)
{
    acct.beginPhase("walk");
    if (deep)
        acct.endPhase();
    else
        acct.endPhase();
}

int
throwExempt(Acct &acct, int n)
{
    acct.beginPhase("load");
    if (n < 0)
        throw n; // exceptional exits are exempt from balance
    acct.endPhase();
    return n;
}

void
abortExempt(Acct &acct, bool bad)
{
    acct.beginPhase("commit");
    if (bad)
        std::abort(); // aborting paths are exempt from balance
    acct.endPhase();
}

void
loopBalancedBreak(Acct &acct, int n)
{
    for (int i = 0; i < n; ++i) {
        acct.beginPhase("step");
        if (i == 7) {
            acct.endPhase();
            break;
        }
        acct.endPhase();
    }
}

void
continueBalanced(Acct &acct, int n)
{
    for (int i = 0; i < n; ++i) {
        if (i % 2)
            continue;
        acct.beginPhase("even");
        acct.endPhase();
    }
}

void
doWhileBalanced(Acct &acct, int n)
{
    do {
        acct.beginPhase("tick");
        acct.endPhase();
    } while (--n > 0);
}

void
switchBalanced(Acct &acct, int mode)
{
    acct.beginPhase("mode");
    switch (mode) {
      case 0:
        acct.endPhase();
        break;
      default:
        acct.endPhase();
        break;
    }
}

void
fallthroughBalanced(Acct &acct, int mode)
{
    switch (mode) {
      case 0:
        acct.beginPhase("zero");
        acct.endPhase();
        [[fallthrough]];
      case 1:
        break;
    }
}

void
lambdaIsolated(Acct &acct, int n)
{
    acct.beginPhase("fold");
    // The lambda body is its own function: its (balanced) events do
    // not leak into the host's path walk, and vice versa.
    auto step = [&acct](int) {
        acct.beginPhase("inner");
        acct.endPhase();
    };
    step(n);
    acct.endPhase();
}

// otcheck:fixture-path src/otc/fixture_good_layering.cc
//
// Known-good layering fixture: src/otc sits near the top of the layer
// DAG and may include every layer below it.  Must check clean.
#include "otc/network.hh"

#include <cstdint>
#include <sys/types.h>

#include "graph/graph.hh"
#include "layout/geometry.hh"
#include "linalg/matrix.hh"
#include "otn/network.hh"
#include "sim/time_accountant.hh"
#include "trace/tracer.hh"
#include "vlsi/delay.hh"

// Same-directory and system includes carry no layer information and
// are never flagged; <sys/types.h> has a '/' but names no layer.

int
fixtureUnused()
{
    return 0;
}

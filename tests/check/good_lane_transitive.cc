// otcheck:fixture-path src/otn/fixture_good_lane_transitive.cc
//
// Known-good transitive lane-safety fixture: the same shared vector
// crosses the same call boundary, but the callee's only mutation is
// subscripted by its `slot` parameter and the caller feeds that
// position the lane id — the summary substitution excuses it.
#include <cstddef>
#include <vector>

template <class F> void parallelFor(std::size_t n, F &&fn);

void appendSampleAt(std::vector<double> &sink, std::size_t slot,
                    double v);

void
collectSafe(const std::vector<double> &values,
            std::vector<double> &sink)
{
    parallelFor(values.size(), [&](std::size_t lane) {
        appendSampleAt(sink, lane, values[lane]);
    });
}

// otcheck:fixture-path src/topo/fixture_bad_topo_fallback.cc
//
// Known-bad plugin-contract fixture: a registered machine that
// overrides none of the three accounting hooks.  Every cost it
// reports is really its base's microarchitecture description — legal
// C++, but almost always a forgotten cost model.  The diagnostic
// must name the ancestor whose costs it inherits.  This file is
// checker input, never compiled.
#include <cstddef>
#include <memory>

struct FixtureFallbackSpec
{
    std::size_t n = 0;
};

class FixtureCostedMachine
{
  public:
    virtual ~FixtureCostedMachine() = default;
    virtual double exchangeStepCost(std::size_t words);
    virtual double broadcastCost(std::size_t words);
    virtual double reduceCost(std::size_t words);
};

class FixtureLazyMachine : public FixtureCostedMachine // expect: topo-fallback
{
  public:
    void configure(std::size_t depth);
};

struct FixtureFallbackInfo
{
    const char *name;
    std::unique_ptr<FixtureCostedMachine> (*build)(
        const FixtureFallbackSpec &);
};

class FixtureFallbackRegistry
{
  public:
    void add(FixtureFallbackInfo info);
};

template <class M>
std::unique_ptr<FixtureCostedMachine>
buildFixtureFallback(const FixtureFallbackSpec &)
{
    return std::make_unique<M>();
}

void
fixtureRegisterFallback(FixtureFallbackRegistry &reg)
{
    reg.add({"fixture-lazy", buildFixtureFallback<FixtureLazyMachine>});
}

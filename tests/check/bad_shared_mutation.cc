// otcheck:fixture-path src/topo/fixture_bad_shared_mutation.cc
//
// Known-bad shared-immutability fixture: a machine carrying the
// shared(post-build) marker whose non-API members mutate state and
// leak a mutable reference.  The engine serializes only the virtual
// plugin API, so the write in exchangeStepCost is fine while the
// same write in warmCache is a cross-shard race waiting to happen —
// and cellsForDebug hands callers a pen to race with.  This file is
// checker input, never compiled.
#include <cstddef>
#include <vector>

// otcheck:shared(post-build)
class FixtureSharedMachine
{
  public:
    explicit FixtureSharedMachine(std::size_t n) : _cells(n, 0.0) {}
    virtual ~FixtureSharedMachine() = default;

    virtual double exchangeStepCost(std::size_t words);

    void warmCache(double bias);          // not part of the virtual API
    std::vector<double> &cellsForDebug(); // escapes a mutable handle

  private:
    std::vector<double> _cells;
    std::size_t _touches = 0;
};

double
FixtureSharedMachine::exchangeStepCost(std::size_t words)
{
    _touches += 1; // virtual API: the engine serializes this
    return static_cast<double>(words * _cells.size());
}

void
FixtureSharedMachine::warmCache(double bias)
{
    _touches += 1;          // expect: shared
    _cells.push_back(bias); // expect: shared
}

std::vector<double> &
FixtureSharedMachine::cellsForDebug()
{
    return _cells; // expect: shared
}

/**
 * @file
 * Runtime twin of the lane-safety fixture corpus (tests/check/
 * bad_lane_capture.cc and friends): the code shapes otcheck's
 * lane-safety rule prescribes — lane-indexed slots, per-lane
 * buffers merged after the join, and helpers whose mutation is
 * subscripted by a lane-derived argument — actually executed on the
 * pooled ChainEngine, at several host-thread counts.
 *
 * The CI tsan job runs this binary under ThreadSanitizer with
 * halt_on_error=1: if one of the "safe" shapes the rule waves
 * through really raced, the job would fail.  The raced originals
 * (`total += values[lane]` through a by-ref capture, push_back into
 * a shared vector) are deliberately NOT runnable here — they are
 * exactly what the static rule rejects; their runtime form is the
 * rewritten discipline below.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <numeric>
#include <vector>

#include "sim/chain_engine.hh"
#include "sim/stats.hh"
#include "sim/time_accountant.hh"

namespace {

using ot::sim::ChainEngine;
using ot::sim::StatSet;
using ot::sim::TimeAccountant;

/** The runtime form of fixture_lane_helper.cc's appendSampleAt: the
 *  only mutation of `sink` goes through the caller-chosen slot. */
void
appendSampleAt(std::vector<double> &sink, std::size_t slot, double v)
{
    sink[slot] += v;
}

/** One lane-indexed scatter pass, the rewrite the lane-safety hint
 *  prescribes for bad_lane_capture.cc's racy reduction. */
std::vector<double>
scatterReduce(const std::vector<double> &values, unsigned threads)
{
    TimeAccountant acct;
    StatSet stats;
    ChainEngine engine(acct, stats, threads);
    std::vector<double> partials(values.size(), 0.0);
    engine.parallelFor(values.size(), [&](std::size_t lane) {
        // Direct lane-indexed write: each lane owns its slot.
        partials[lane] = values[lane] * 2.0;
        // Cross-function write, lane-derived index at the callee's
        // subscript position (the summary-excused shape).
        appendSampleAt(partials, lane, values[lane]);
        engine.charge(1);
    });
    return partials;
}

TEST(LaneTwin, LaneIndexedScatterIsRaceFreeAndDeterministic)
{
    std::vector<double> values(257);
    for (std::size_t i = 0; i < values.size(); ++i)
        values[i] = static_cast<double>(i % 13) + 0.5;

    std::vector<double> seq = scatterReduce(values, 1);
    for (unsigned threads : {2u, 4u, 8u}) {
        std::vector<double> par = scatterReduce(values, threads);
        EXPECT_EQ(seq, par) << "threads=" << threads;
    }
    // Spot-check the arithmetic: slot = 2v + v = 3v.
    EXPECT_DOUBLE_EQ(3.0 * values[7], seq[7]);
}

TEST(LaneTwin, PerLaneBuffersMergeAfterTheJoin)
{
    // The rewrite for the push_back race: every lane appends to its
    // own buffer; the merge happens after parallelFor returns, on
    // the caller's thread, in lane order — deterministic by
    // construction.
    std::vector<double> values(64);
    std::iota(values.begin(), values.end(), 1.0);

    auto run = [&](unsigned threads) {
        TimeAccountant acct;
        StatSet stats;
        ChainEngine engine(acct, stats, threads);
        std::vector<std::vector<double>> perLane(values.size());
        engine.parallelFor(values.size(), [&](std::size_t lane) {
            perLane[lane].push_back(values[lane]);
            if (values[lane] > 32.0)
                perLane[lane].push_back(-values[lane]);
        });
        std::vector<double> merged;
        for (const std::vector<double> &buf : perLane)
            merged.insert(merged.end(), buf.begin(), buf.end());
        return merged;
    };

    std::vector<double> seq = run(1);
    EXPECT_EQ(64u + 32u, seq.size());
    for (unsigned threads : {2u, 4u, 8u})
        EXPECT_EQ(seq, run(threads)) << "threads=" << threads;
}

TEST(LaneTwin, ChargesInsideLanesKeepModelTimeBitIdentical)
{
    // The engine's own guarantee, exercised through the same twin
    // shapes: model time and stats must not depend on the host
    // thread count even when every lane charges and bumps counters.
    auto run = [](unsigned threads) {
        TimeAccountant acct;
        StatSet stats;
        ChainEngine engine(acct, stats, threads);
        std::vector<std::uint64_t> slots(96, 0);
        engine.parallelFor(slots.size(), [&](std::size_t lane) {
            slots[lane] = lane * lane;
            engine.charge(static_cast<ot::vlsi::ModelTime>(
                1 + lane % 3));
            ++engine.counter("lane_twin.visits");
        });
        return std::make_pair(
            acct.now(), engine.counter("lane_twin.visits").value());
    };

    auto seq = run(1);
    for (unsigned threads : {2u, 4u, 8u})
        EXPECT_EQ(seq, run(threads)) << "threads=" << threads;
}

} // namespace

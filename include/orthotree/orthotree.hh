/**
 * @file
 * Umbrella header for orthotree — orthogonal trees networks for VLSI
 * parallel processing, after Nath, Maheshwari & Bhatt (IEEE Trans.
 * Computers, C-32(6), 1983).
 *
 * Quickstart:
 *
 *   #include "orthotree/orthotree.hh"
 *
 *   auto cost = ot::defaultCostModel(n);          // Thompson's model
 *   ot::otn::OrthogonalTreesNetwork net(n, cost); // an (n x n)-OTN
 *   auto sorted = ot::otn::sortOtn(net, values);  // SORT-OTN
 *   // sorted.sorted — the values; sorted.time — model time;
 *   // net.chipLayout().metrics().area() — chip area.
 *
 * The library is organised as:
 *   ot::vlsi      — Thompson's VLSI cost model (delay rules, words)
 *   ot::sim       — model-time accounting, stats, deterministic RNG
 *   ot::trace     — model-time event tracing, Perfetto export, analysis
 *   ot::layout    — chip layouts (OTN, OTC, mesh, PSN, CCC)
 *   ot::linalg    — matrices and sequential references
 *   ot::graph     — graphs, generators, sequential references
 *   ot::otn       — the orthogonal trees network and its algorithms
 *   ot::otc       — the orthogonal tree cycles and its algorithms
 *   ot::topo      — the topology plugin registry (fat-tree, MoT, ...)
 *   ot::workload  — batched multi-instance serving with network cache
 *   ot::scenario  — traffic scenarios: arrivals, schedulers, SLOs
 *   ot::baselines — mesh / PSN / CCC comparison machines
 *   ot::analysis  — the paper's table formulas, fitting, rendering
 */

#pragma once

#include "analysis/asymptotics.hh"
#include "analysis/fitting.hh"
#include "analysis/table.hh"
#include "baselines/ccc.hh"
#include "baselines/hex_array.hh"
#include "baselines/mesh.hh"
#include "baselines/psn.hh"
#include "baselines/tree_machine.hh"
#include "graph/generators.hh"
#include "graph/graph.hh"
#include "graph/reference_algorithms.hh"
#include "layout/baseline_layouts.hh"
#include "layout/otc_layout.hh"
#include "layout/otn_layout.hh"
#include "layout/svg.hh"
#include "linalg/matrix.hh"
#include "linalg/reference.hh"
#include "otc/algorithms.hh"
#include "otc/connected_components_native.hh"
#include "otc/emulated_otn.hh"
#include "otc/cycle_ops.hh"
#include "otc/matmul_native.hh"
#include "otc/mst_native.hh"
#include "otc/network.hh"
#include "otc/sort.hh"
#include "otn/bitonic.hh"
#include "otn/closure.hh"
#include "otn/connected_components.hh"
#include "otn/dft.hh"
#include "otn/integer_multiply.hh"
#include "otn/matmul.hh"
#include "otn/mesh_of_trees_3d.hh"
#include "otn/mst.hh"
#include "otn/network.hh"
#include "otn/patterns.hh"
#include "otn/pipeline.hh"
#include "otn/selection.hh"
#include "otn/shortest_paths.hh"
#include "otn/sort.hh"
#include "scenario/arrivals.hh"
#include "scenario/engine.hh"
#include "scenario/prng.hh"
#include "scenario/scheduler.hh"
#include "scenario/spec.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/time_accountant.hh"
#include "topo/adapters.hh"
#include "topo/algo.hh"
#include "topo/fat_tree.hh"
#include "topo/machine.hh"
#include "topo/mot_noc.hh"
#include "topo/registry.hh"
#include "trace/analysis.hh"
#include "trace/export.hh"
#include "trace/tracer.hh"
#include "vlsi/bitmath.hh"
#include "vlsi/cost_model.hh"
#include "vlsi/delay.hh"
#include "vlsi/word.hh"
#include "workload/engine.hh"
#include "workload/network_cache.hh"
#include "workload/spec.hh"

namespace ot {

/** Library version. */
inline constexpr unsigned kVersionMajor = 1;
inline constexpr unsigned kVersionMinor = 0;
inline constexpr unsigned kVersionPatch = 0;

/**
 * The paper's standard cost model for an N-element problem: Thompson's
 * logarithmic wire delay with O(log N)-bit bit-serial words.
 */
inline vlsi::CostModel
defaultCostModel(std::size_t n,
                 vlsi::DelayModel model = vlsi::DelayModel::Logarithmic,
                 bool scaled_trees = false)
{
    return {model, vlsi::WordFormat::forProblemSize(n), scaled_trees};
}

} // namespace ot

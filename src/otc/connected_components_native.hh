/**
 * @file
 * Connected components natively on the OTC (Section VI-B: "The
 * algorithm for finding connected components now requires O(N^2) area
 * for the same O(log^4 N) time as before.  Note that each cycle must
 * store a log N x log N submatrix of the adjacency matrix.").
 *
 * This implementation works directly with the cycle primitives — no
 * Section V-A emulation layer:
 *
 *  - cycle (I, J) stores its L x L adjacency block as one L-bit mask
 *    per BP (BP(q)'s bit p = A(I*L+q, J*L+p)): L^2 bits per cycle,
 *    exactly the paper's budget;
 *  - vertex labels live in the diagonal cycles, L per cycle;
 *  - label broadcasts are CYCLETOCYCLE streams; candidate scans, the
 *    member deposits and the pointer-jump indirections use L
 *    circulate rounds inside every cycle (the Section V "keep one
 *    operand fixed, circulate the other" scheme) between the tree
 *    reductions.
 *
 * Each outer iteration costs O(log N) streamed tree operations and
 * in-cycle rounds of O(log N) each — O(log^3 N) — and there are
 * O(log N) iterations: the paper's O(log^4 N) on the O(N^2) chip.
 */

#pragma once

#include "graph/graph.hh"
#include "otc/network.hh"
#include "otn/connected_components.hh" // ComponentsResult

namespace ot::otc {

/**
 * HCS CONNECT on the native (K x K)-OTC with cycles of length L
 * (vertex v = I*L + q lives at position q of diagonal cycle (I, I)).
 * Requires g.vertices() <= k() * cycleLen() and L <= 63 (the block
 * row fits one register).  Labels are canonicalized for comparison
 * with graph::connectedComponents.
 */
otn::ComponentsResult connectedComponentsOtcNative(
    OtcNetwork &net, const graph::Graph &g, bool charge_load = true);

} // namespace ot::otc

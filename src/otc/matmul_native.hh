/**
 * @file
 * VECTORMATRIXMULT on the native OTC (Section VI-B, done with the
 * cycle primitives themselves rather than through the Section V-A
 * emulation argument).
 *
 * The N x N matrix lives in a (K x K)-OTC with cycles of length
 * L = N / K: cycle (i, j) stores the L x L block of B with rows
 * i*L..i*L+L-1 and columns j*L..j*L+L-1, one block *column* per BP —
 * BP(q) of cycle (i, j) keeps the L partial words of B's column
 * j*L + q within the block (Theta(L) words per BP is exactly the
 * Theta(log^2 N) bits per cycle the paper budgets for the OTC's graph
 * algorithms).
 *
 * One product streams the vector down the row trees (ROOTTOCYCLE), the
 * cycles perform L circulate-multiply-accumulate rounds (the Section V
 * "keep a fixed, circulate b" scheme), and SUM-CYCLETOROOT reductions
 * deliver the result at the column roots: O(log^2 N) total for the
 * standard K = N/log N machine.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "linalg/matrix.hh"
#include "otc/network.hh"

namespace ot::otc {

/** Result of a native OTC vector-matrix product. */
struct VecMatOtcResult
{
    std::vector<std::uint64_t> product;
    ModelTime time = 0;
};

/**
 * Load B (size N x N with N = k * cycleLen) into the machine's block
 * storage and compute a * B.  Register planes D..H hold the block
 * columns (cycleLen <= 5 supported by the register file; the standard
 * log N cycle lengths of the tested sizes fit).
 */
VecMatOtcResult vecMatMulOtc(OtcNetwork &net,
                             const std::vector<std::uint64_t> &a,
                             const linalg::IntMatrix &b);

} // namespace ot::otc

#include "otc/cycle_ops.hh"

#include <algorithm>

namespace ot::otc {

using otn::kNull;

vlsi::ModelTime
rotateCapture(OtcNetwork &net, otn::Reg val, otn::Reg pos, otn::Reg out)
{
    const std::size_t k = net.k();
    const unsigned l = net.cycleLen();
    for (std::size_t i = 0; i < k; ++i)
        for (std::size_t j = 0; j < k; ++j)
            for (std::size_t q = 0; q < l; ++q) {
                std::uint64_t p = net.reg(pos, i, j, q);
                net.reg(out, i, j, q) =
                    p < l ? net.reg(val, i, j,
                                    static_cast<std::size_t>(p))
                          : kNull;
            }
    vlsi::ModelTime dt =
        l * (net.circulateCost() + net.cost().bitSerialOp());
    net.charge(dt);
    ++net.stats().counter("otc.rotateCapture");
    return dt;
}

vlsi::ModelTime
scatterMin(OtcNetwork &net, otn::Reg src, otn::Reg pos, otn::Reg out)
{
    const std::size_t k = net.k();
    const unsigned l = net.cycleLen();
    for (std::size_t i = 0; i < k; ++i)
        for (std::size_t j = 0; j < k; ++j) {
            for (std::size_t q = 0; q < l; ++q)
                net.reg(out, i, j, q) = kNull;
            for (std::size_t q = 0; q < l; ++q) {
                std::uint64_t p = net.reg(pos, i, j, q);
                if (p < l) {
                    auto &slot =
                        net.reg(out, i, j, static_cast<std::size_t>(p));
                    slot = std::min(slot, net.reg(src, i, j, q));
                }
            }
        }
    vlsi::ModelTime dt =
        l * (net.circulateCost() + net.cost().bitSerialOp());
    net.charge(dt);
    ++net.stats().counter("otc.scatterMin");
    return dt;
}

void
broadcastDiag(OtcNetwork &net, otn::Reg src, otn::Reg row_dst,
              otn::Reg col_dst)
{
    const std::size_t k = net.k();
    net.parallelFor(k, [&](std::size_t i) {
        net.cycleToCycle(Axis::Row, i, CSel::colIs(i), src, CSel::all(),
                         row_dst);
    });
    net.parallelFor(k, [&](std::size_t j) {
        net.cycleToCycle(Axis::Col, j, CSel::rowIs(j), src, CSel::all(),
                         col_dst);
    });
}

void
gatherAtLabel(OtcNetwork &net, otn::Reg key_row, otn::Reg val_col,
              otn::Reg out)
{
    const std::size_t k = net.k();
    const unsigned l = net.cycleLen();

    net.baseOp(net.cost().bitSerialOp(),
               [&](std::size_t i, std::size_t j, std::size_t q) {
                   std::uint64_t key = net.reg(key_row, i, j, q);
                   bool mine = key != kNull && key / l == j;
                   net.reg(otn::Reg::X, i, j, q) =
                       mine ? key % l : kNull;
               });
    rotateCapture(net, val_col, otn::Reg::X, otn::Reg::Y);

    net.parallelFor(k, [&](std::size_t i) {
        net.minCycleToRoot(Axis::Row, i, CSel::all(), otn::Reg::Y);
        net.rootToCycle(Axis::Row, i, CSel::colIs(i), out);
    });
}

} // namespace ot::otc

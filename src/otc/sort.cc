#include "otc/sort.hh"

#include <cassert>

#include "vlsi/bitmath.hh"

namespace ot::otc {

SortOtcResult
sortOtc(OtcNetwork &net, const std::vector<std::uint64_t> &values)
{
    const std::size_t k = net.k();
    const unsigned l = net.cycleLen();
    const std::size_t capacity = k * l;
    assert(values.size() <= capacity);

    ModelTime start = net.now();
    sim::ScopedPhase phase(net.acct(), "sort-otc");

    // Feed the input streams: port i carries values [i*L, (i+1)*L).
    for (std::size_t i = 0; i < k; ++i) {
        for (std::size_t q = 0; q < l; ++q) {
            std::size_t g = i * l + q;
            std::uint64_t v = g < values.size() ? values[g] : kNull;
            assert(net.fitsWord(v));
            net.rowStream(i)[q] = v;
        }
    }

    // Step 1: A = own group in every cycle of the row.
    net.parallelFor(k, [&](std::size_t i) {
        net.rootToCycle(Axis::Row, i, CSel::all(), Reg::A);
    });

    // Step 2: B = the column's group (from the diagonal cycle).
    net.parallelFor(k, [&](std::size_t i) {
        net.cycleToCycle(Axis::Col, i, CSel::rowIs(i), Reg::A, CSel::all(),
                         Reg::B);
    });

    // Step 3: L compare-and-circulate rounds.  After p circulations,
    // B(q) of cycle (i, j) holds group element b_j((q + p) mod L), so
    // its global index is j*L + (q+p) mod L — the tie-break for
    // duplicates (the paper's modified step 3 of SORT-OTN).
    net.baseOp(net.cost().bitSerialOp(),
               [&](std::size_t i, std::size_t j, std::size_t q) {
                   net.reg(Reg::C, i, j, q) = 0;
               });
    for (unsigned p = 0; p < l; ++p) {
        net.baseOp(net.cost().bitSerialOp(),
                   [&](std::size_t i, std::size_t j, std::size_t q) {
                       std::uint64_t a = net.reg(Reg::A, i, j, q);
                       std::uint64_t b = net.reg(Reg::B, i, j, q);
                       std::uint64_t ga = i * l + q;
                       std::uint64_t gb = j * l + (q + p) % l;
                       if (a > b || (a == b && ga > gb))
                           ++net.reg(Reg::C, i, j, q);
                   });
        net.parallelFor(k, [&](std::size_t i) {
            net.vectorCirculate(Axis::Row, i, {Reg::B});
        });
    }

    // Step 4: global ranks to every cycle of the row.
    net.parallelFor(k, [&](std::size_t i) {
        net.sumCycleToCycle(Axis::Row, i, CSel::all(), Reg::C, CSel::all(),
                            Reg::R);
    });

    // Step 5: L pipelined output beats; at beat p, port j emits the
    // value of rank p*K + j, found in column j's copy of its group.
    net.parallelFor(k, [&](std::size_t j) {
        for (unsigned p = 0; p < l; ++p) {
            std::uint64_t rank = std::uint64_t{p} * k + j;
            std::uint64_t out = kNull;
            for (std::size_t i = 0; i < k; ++i)
                for (std::size_t q = 0; q < l; ++q)
                    if (net.reg(Reg::R, i, j, q) == rank)
                        out = net.reg(Reg::A, i, j, q);
            net.colStream(j)[p] = out;
        }
        // One stream through the column tree, with the in-cycle
        // selection (move-to-D(0)) overlapped beat by beat.
        net.charge(net.streamCost() + (l - 1) * net.circulateCost());
    });

    SortOtcResult result;
    result.sorted.resize(values.size());
    for (std::size_t g = 0; g < values.size(); ++g)
        result.sorted[g] = net.colStream(g % k)[g / k];
    result.time = net.now() - start;
    return result;
}

SortOtcResult
sortOtc(const std::vector<std::uint64_t> &values,
        const vlsi::CostModel &cost)
{
    std::size_t n = values.size() ? values.size() : 1;
    unsigned l = vlsi::logCeilAtLeast1(n);
    std::size_t k = vlsi::nextPow2(vlsi::ceilDiv(n, l));
    OtcNetwork net(k, l, cost);
    return sortOtc(net, values);
}

} // namespace ot::otc

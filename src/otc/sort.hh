/**
 * @file
 * Procedure SORT-OTC (Section VI-A of the paper): sorting N = K * L
 * numbers on a (K x K)-OTC with cycles of length L (L = log N for the
 * standard machine) in O(log^2 N) time.
 *
 * L numbers enter through each of the K input ports, O(log N) apart.
 * The structure mirrors SORT-OTN with cycles playing the role of BPs:
 *
 *   1. ROOTTOCYCLE(row(i), dest=(all, A))            — A = group a_i
 *   2. CYCLETOCYCLE(col(i), src=(i, A), dst=(all,B)) — B = group a_j
 *   3. L rounds of compare-and-CIRCULATE accumulate, in C(q), the
 *      number of elements of group a_j smaller than A(q) (with the
 *      duplicate tie-break on global indices)
 *   4. SUM-CYCLETOCYCLE(row(i), src=(all, C), dst=(all, R)) — global
 *      ranks
 *   5. L pipelined output beats: at beat p, port j emits the value of
 *      rank p*K + j ("first the N/log N smallest numbers appear...")
 */

#pragma once

#include <cstdint>
#include <vector>

#include "otc/network.hh"

namespace ot::otc {

/** Result of one SORT-OTC run. */
struct SortOtcResult
{
    std::vector<std::uint64_t> sorted;
    ModelTime time = 0;
};

/**
 * Sort values.size() <= K * L numbers on `net` (K ports with L words
 * each; padded with kNull, which sorts last; duplicates allowed).
 */
SortOtcResult sortOtc(OtcNetwork &net,
                      const std::vector<std::uint64_t> &values);

/**
 * Convenience: build the paper's standard machine for N values —
 * K = N / log N cycles per side with cycles of length log N — and
 * sort.  N is rounded so the machine exists (K a power of two).
 */
SortOtcResult sortOtc(const std::vector<std::uint64_t> &values,
                      const vlsi::CostModel &cost);

} // namespace ot::otc

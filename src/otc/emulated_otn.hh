/**
 * @file
 * OTC-emulated OTN (Section V-A of the paper).
 *
 * "If the base of the OTN is considered to be composed of squares of
 * log N x log N BPs each, then the processing in square (i, j) of the
 * OTN can be simulated by cycle (i, j) of the OTC" — and every
 * communication operation takes the same O(log^2 N) time because each
 * OTC tree streams the log N words of its group in a pipeline.
 *
 * OtcEmulatedOtn realises that argument as a machine: it behaves
 * exactly like an (N x N)-OTN functionally, but
 *
 *  - tree operations are charged at the OTC's streamed rate (a
 *    pipeline of L = log N words through a tree with K = N / log N
 *    leaves), and
 *  - base processing is dilated by L (each length-L cycle serialises
 *    the work of a log N x log N OTN square at L operations per
 *    element row... i.e. L rounds of its L processors covering L^2
 *    base positions),
 *
 * while the chip area is the OTC's O(N^2) (Section V-A, Fig. 3).
 * Every OTN algorithm (connected components, MST, matrix products)
 * runs unchanged on this machine, which is precisely how the paper
 * derives its OTC results in Section VI-B.
 */

#pragma once

#include "layout/otc_layout.hh"
#include "otn/network.hh"

namespace ot::otc {

/** An (N x N)-OTN emulated by an (N/L x N/L)-OTC with length-L cycles. */
class OtcEmulatedOtn : public otn::OrthogonalTreesNetwork
{
  public:
    /**
     * @param n     Emulated OTN side (the problem size).
     * @param cost  Cost rules.
     * @param cycle_len  L; 0 = the standard log N.
     * @param host_threads  Host threads for parallelFor (see the base).
     */
    OtcEmulatedOtn(std::size_t n, const vlsi::CostModel &cost,
                   unsigned cycle_len = 0, unsigned host_threads = 0);

    /** The underlying OTC's cycle length L. */
    unsigned cycleLen() const { return _cycleLen; }

    /** Cycles per side K = N / L (rounded to a power of two). */
    std::size_t cyclesPerSide() const { return _otcLayout.cyclesPerSide(); }

    /** The physical chip: the OTC layout (area Theta(N^2)). */
    const layout::OtcLayout &otcLayout() const { return _otcLayout; }

    /** Base ops dilated by the cycle serialisation factor L. */
    vlsi::ModelTime
    baseOp(vlsi::ModelTime op_cost,
           const std::function<void(std::size_t i, std::size_t j)> &op)
        override;

  protected:
    /** Base-step dilation by L (shared with the batch base ops). */
    vlsi::ModelTime baseOpCost(vlsi::ModelTime op_cost) const override;

    /** Streamed tree-op cost: L words pipelined through a K-leaf tree. */
    vlsi::ModelTime computeTreeTraversalCost() const override;

    vlsi::ModelTime computeTreeReduceCost() const override;

  private:
    unsigned _cycleLen;
    layout::OtcLayout _otcLayout;
};

} // namespace ot::otc

#include "otc/algorithms.hh"

#include "vlsi/bitmath.hh"

namespace ot::otc {

CcOtcResult
connectedComponentsOtc(const graph::Graph &g, const vlsi::CostModel &cost)
{
    OtcEmulatedOtn net(g.vertices(), cost);
    CcOtcResult out;
    out.result = otn::connectedComponentsOtn(net, g);
    out.chip = net.otcLayout().metrics();
    return out;
}

MstOtcResult
mstOtc(const graph::WeightedGraph &g, const vlsi::CostModel &cost)
{
    OtcEmulatedOtn net(g.vertices(), cost);
    MstOtcResult out;
    out.result = otn::mstOtn(net, g);
    // Section VI-B: the MST chip must hold the whole N x N weight
    // matrix of O(log N)-bit words, so its area is O(N^2 log N); the
    // layout captures this through the word width in the BP footprint.
    out.chip = net.otcLayout().metrics();
    return out;
}

MatMulOtcResult
matMulOtc(const linalg::IntMatrix &a, const linalg::IntMatrix &b,
          const vlsi::CostModel &cost)
{
    OtcEmulatedOtn net(a.rows(), cost);
    MatMulOtcResult out;
    out.result = otn::matMulPipelined(net, a, b);
    out.chip = net.otcLayout().metrics();
    return out;
}

MatMulOtcResult
boolMatMulOtc(const linalg::BoolMatrix &a, const linalg::BoolMatrix &b,
              const vlsi::CostModel &cost)
{
    const std::size_t n = vlsi::nextPow2(a.rows() ? a.rows() : 1);
    const unsigned logn = vlsi::logCeilAtLeast1(n);

    // Time: the replicated-block machine of Table II (one vector
    // product per row of A, all concurrent), driven at the OTC's
    // streamed rates.
    OtcEmulatedOtn block(n, cost, /*cycle_len=*/logn * logn);
    MatMulOtcResult out;
    out.result = otn::boolMatMulReplicated(block, a, b);

    // Area: N^2/log^2 N cycles per side, cycles of log^2 N one-bit
    // BPs packed O(log N) x O(log N) (Section VI-B) — total
    // O(N^4 / log^2 N).
    layout::OtcLayout chip(vlsi::ceilDiv(n * n, logn * logn), logn * logn,
                           /*word_bits=*/1, /*compact_bps=*/true);
    out.chip = chip.metrics();
    return out;
}

} // namespace ot::otc

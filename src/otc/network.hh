/**
 * @file
 * The orthogonal tree cycles (Section V of the paper).
 *
 * A (K x K)-OTC with cycle length L is an OTN whose base processors
 * are replaced by cycles of L BPs each; BP(0) of every cycle connects
 * to the row and column trees.  With K = N / log N and L = log N the
 * machine handles the same N-element problems as an (N x N)-OTN in the
 * same asymptotic time while occupying only O(N^2) area.
 *
 * Data enters and leaves as *streams*: each root port carries L words
 * per operation, pipelined O(log N) apart, so every communication
 * primitive (ROOTTOCYCLE, CYCLETOROOT, CYCLETOCYCLE and the SUM/MIN
 * variants) still costs O(log^2 N) — a pipeline of L words riding one
 * tree traversal (Section V-B).
 */

#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "layout/otc_layout.hh"
#include "otn/registers.hh"
#include "sim/chain_engine.hh"
#include "sim/stats.hh"
#include "sim/time_accountant.hh"
#include "simd/backend.hh"
#include "simd/kernels.hh"
#include "simd/regfile.hh"
#include "trace/tracer.hh"
#include "vlsi/cost_model.hh"
#include "vlsi/word.hh"

namespace ot::otc {

using otn::kNull;
using otn::Reg;
using sim::TimeAccountant;
using vlsi::CostModel;
using vlsi::ModelTime;

/** Row or column trees of cycles. */
enum class Axis { Row, Col };

/**
 * Cycle predicate over cycle addresses (i = row, j = column).  Like
 * otn::Sel, a flat value type: the per-cycle loops evaluate it with
 * one switch and no allocation (CSel::pred is the escape hatch).
 */
class CSel
{
  public:
    enum class Kind : std::uint8_t { All, None, RowIs, ColIs, Pred };

    using Predicate = std::function<bool(std::size_t i, std::size_t j)>;

    static CSel all() { return CSel(Kind::All); }
    static CSel none() { return CSel(Kind::None); }

    static CSel
    rowIs(std::size_t k)
    {
        CSel s(Kind::RowIs);
        s._index = k;
        return s;
    }

    static CSel
    colIs(std::size_t k)
    {
        CSel s(Kind::ColIs);
        s._index = k;
        return s;
    }

    /** Escape hatch: an arbitrary predicate over (i, j). */
    static CSel
    pred(Predicate p)
    {
        CSel s(Kind::Pred);
        s._pred = std::make_shared<const Predicate>(std::move(p));
        return s;
    }

    Kind kind() const { return _kind; }
    std::size_t index() const { return _index; }

    bool
    matches(std::size_t i, std::size_t j) const
    {
        switch (_kind) {
        case Kind::All:
            return true;
        case Kind::None:
            return false;
        case Kind::RowIs:
            return i == _index;
        case Kind::ColIs:
            return j == _index;
        case Kind::Pred:
            assert(_pred);
            return (*_pred)(i, j);
        }
        return false;
    }

  private:
    explicit CSel(Kind kind) : _kind(kind) {}

    Kind _kind;
    std::size_t _index = 0;
    std::shared_ptr<const Predicate> _pred;
};

/** The primitives' cycle-selector argument type. */
using CycleSelector = CSel;

/** Simulator of a (K x K)-OTC with length-L cycles. */
class OtcNetwork
{
  public:
    /**
     * @param cycles_per_side  K (rounded up to a power of two).
     * @param cycle_len        L (>= 1); log N for the standard machine.
     * @param cost             Cost rules.
     * @param host_threads     Host threads for parallelFor dispatch
     *                         (0 = OT_HOST_THREADS / hardware
     *                         concurrency, 1 = sequential).
     */
    OtcNetwork(std::size_t cycles_per_side, unsigned cycle_len,
               const CostModel &cost, unsigned host_threads = 0);

    std::size_t k() const { return _k; }
    unsigned cycleLen() const { return _l; }

    /** Total base processors: K^2 * L. */
    std::size_t totalBps() const { return _k * _k * _l; }

    const CostModel &cost() const { return _cost; }
    const layout::OtcLayout &chipLayout() const { return _layout; }
    TimeAccountant &acct() { return _acct; }
    const TimeAccountant &acct() const { return _acct; }
    sim::StatSet &stats() { return _stats; }
    ModelTime now() const { return _acct.now(); }

    /** Host threads the engine dispatches parallelFor onto. */
    unsigned hostThreads() const { return _engine.hostThreads(); }

    /** Attach a model-time tracer (see otn::setTracer). */
    void
    setTracer(trace::Tracer *tracer)
    {
        _acct.setTracer(tracer);
        _engine.setTracer(tracer);
    }

    trace::Tracer *tracer() const { return _engine.tracer(); }

    void
    resetTime()
    {
        _acct.reset();
        _stats.reset();
    }

    // ------------------------------------------------------------------
    // Registers and I/O streams
    // ------------------------------------------------------------------

    /** Register r of BP(i, j, q) — the paper's triple addressing. */
    std::uint64_t &
    reg(Reg r, std::size_t i, std::size_t j, std::size_t q)
    {
        assert(i < _k && j < _k && q < _l);
        return _regs.at(static_cast<unsigned>(r), (i * _k + j) * _l + q);
    }

    std::uint64_t
    reg(Reg r, std::size_t i, std::size_t j, std::size_t q) const
    {
        assert(i < _k && j < _k && q < _l);
        return _regs.at(static_cast<unsigned>(r), (i * _k + j) * _l + q);
    }

    /**
     * Register r of the whole machine as one contiguous plane of
     * K*K*L words ordered (i, j, q) — cycle (i, j)'s L-word stream is
     * the contiguous segment at (i*K + j)*L.
     */
    std::uint64_t *
    regPlane(Reg r)
    {
        return _regs.plane(static_cast<unsigned>(r));
    }

    const std::uint64_t *
    regPlane(Reg r) const
    {
        return _regs.plane(static_cast<unsigned>(r));
    }

    /** The SIMD kernel table data movement is routed through. */
    const simd::KernelTable &kernelTable() const { return *_kernels; }

    /** Backend the kernel table was resolved to. */
    simd::Backend simdBackend() const { return _backend; }

    /** Re-route data movement through another compiled backend (see
     *  otn::OrthogonalTreesNetwork::setSimdBackend). */
    void
    setSimdBackend(simd::Backend b)
    {
        _backend = b;
        _kernels = &simd::kernelsFor(b);
    }

    /** Input stream of row-root port i (L words per operation). */
    std::vector<std::uint64_t> &rowStream(std::size_t i)
    {
        return _rowStream[i];
    }

    /** Output stream of column-root port j. */
    std::vector<std::uint64_t> &colStream(std::size_t j)
    {
        return _colStream[j];
    }

    /** Fill register r of every BP. */
    void fillReg(Reg r, std::uint64_t value);

    /**
     * Configure `slots` words of local memory per BP (beyond the named
     * registers).  This is the Section VI-B storage configuration: the
     * MST machine keeps the whole N x N weight matrix resident, i.e.
     * Theta(L) words per BP, at the documented Theta(log N) area
     * premium.  Existing contents are discarded.
     */
    void configureMemory(unsigned slots);

    /** Local memory slots per BP (0 until configured). */
    unsigned memSlots() const { return _memSlots; }

    /** Local memory word `slot` of BP(i, j, q). */
    std::uint64_t &
    mem(std::size_t i, std::size_t j, std::size_t q, unsigned slot)
    {
        assert(slot < _memSlots);
        return _mem[((i * _k + j) * _l + q) * _memSlots + slot];
    }

    std::uint64_t
    mem(std::size_t i, std::size_t j, std::size_t q, unsigned slot) const
    {
        assert(slot < _memSlots);
        return _mem[((i * _k + j) * _l + q) * _memSlots + slot];
    }

    bool
    fitsWord(std::uint64_t v) const
    {
        return v == kNull || v <= _cost.word().maxValue();
    }

    // ------------------------------------------------------------------
    // Parallel sections (same semantics as the OTN's)
    // ------------------------------------------------------------------

    ModelTime
    parallelFor(std::size_t count,
                const std::function<void(std::size_t)> &body)
    {
        return _engine.parallelFor(count, body);
    }

    ModelTime
    runUncharged(const std::function<void()> &body)
    {
        return _engine.runUncharged(body);
    }

    void charge(ModelTime dt) { _engine.charge(dt); }

    // ------------------------------------------------------------------
    // Primitives (Section V-B)
    // ------------------------------------------------------------------

    /** CIRCULATE(i, j, regs): shift the registers one step around the
     *  cycle — R(q) := R((q+1) mod L). */
    ModelTime circulate(std::size_t i, std::size_t j,
                        const std::vector<Reg> &regs);

    /** VECTORCIRCULATE: circulate every cycle of a row/column. */
    ModelTime vectorCirculate(Axis axis, std::size_t idx,
                              const std::vector<Reg> &regs);

    /**
     * ROOTTOCYCLE(Vector, Dest): stream the L words of the root port
     * into register `dest` of the selected cycles; word q lands in
     * BP(q).
     */
    ModelTime rootToCycle(Axis axis, std::size_t idx,
                          const CycleSelector &sel, Reg dest);

    /**
     * CYCLETOROOT(Vector, Source): stream register `src` of the single
     * selected cycle to the root port, word q at beat q.  Source
     * registers are left invariant (the paper: L circulations restore
     * them).
     */
    ModelTime cycleToRoot(Axis axis, std::size_t idx,
                          const CycleSelector &sel, Reg src);

    /** SUM-CYCLETOROOT: root stream[q] = sum over selected cycles of
     *  R(q). */
    ModelTime sumCycleToRoot(Axis axis, std::size_t idx,
                             const CycleSelector &sel, Reg src);

    /** MIN-CYCLETOROOT: root stream[q] = min over selected cycles of
     *  R(q); kNull = absent. */
    ModelTime minCycleToRoot(Axis axis, std::size_t idx,
                             const CycleSelector &sel, Reg src);

    /** CYCLETOCYCLE: source cycle's words to BP(q) of each dest. */
    ModelTime cycleToCycle(Axis axis, std::size_t idx,
                           const CycleSelector &src_sel, Reg src,
                           const CycleSelector &dst_sel, Reg dst);

    /** SUM-CYCLETOCYCLE. */
    ModelTime sumCycleToCycle(Axis axis, std::size_t idx,
                              const CycleSelector &src_sel, Reg src,
                              const CycleSelector &dst_sel, Reg dst);

    /** MIN-CYCLETOCYCLE. */
    ModelTime minCycleToCycle(Axis axis, std::size_t idx,
                              const CycleSelector &src_sel, Reg src,
                              const CycleSelector &dst_sel, Reg dst);

    /** One parallel step over all K^2 * L BPs. */
    ModelTime baseOp(ModelTime op_cost,
                     const std::function<void(std::size_t i, std::size_t j,
                                              std::size_t q)> &op);

    // Cost building blocks (public for the benches).  All are derived
    // from the layout geometry once, at construction.

    /** One word root<->BP(0) through a tree of K leaves. */
    ModelTime treeTraversalCost() const { return _treeTraversalCost; }

    /** L words pipelined through a tree: the standard primitive cost. */
    ModelTime streamCost() const { return _streamCost; }

    /** One CIRCULATE step (bounded by the wrap-around wire). */
    ModelTime circulateCost() const { return _circulateCost; }

  private:
    std::uint64_t &rootStream(Axis axis, std::size_t idx, std::size_t q);

    /** Combining op of the SUM/MIN streamed primitives. */
    enum class ReduceOp : std::uint8_t { Sum, Min };

    /** Shared pipeline: per-position reduce over cycles into the root
     *  stream, through the kernel table (no std::function on this
     *  path). */
    ModelTime reduceToRoot(Axis axis, std::size_t idx,
                           const CycleSelector &sel, Reg src, ReduceOp op);

    std::pair<std::size_t, std::size_t>
    cycleAddr(Axis axis, std::size_t idx, std::size_t c) const
    {
        return axis == Axis::Row ? std::make_pair(idx, c)
                                 : std::make_pair(c, idx);
    }

    std::size_t _k;
    unsigned _l;
    CostModel _cost;
    layout::OtcLayout _layout;
    TimeAccountant _acct;
    sim::StatSet _stats;
    sim::ChainEngine _engine;

    // Geometry-derived costs, computed once in the constructor.
    ModelTime _treeTraversalCost = 0;
    ModelTime _streamCost = 0;
    ModelTime _reduceStreamCost = 0;
    ModelTime _circulateCost = 0;

    simd::Backend _backend;
    const simd::KernelTable *_kernels;
    simd::RegFile _regs;
    std::vector<std::vector<std::uint64_t>> _rowStream;
    std::vector<std::vector<std::uint64_t>> _colStream;
    std::vector<std::uint64_t> _mem;
    unsigned _memSlots = 0;
};

} // namespace ot::otc

#include "otc/connected_components_native.hh"

#include <algorithm>
#include <cassert>

#include "graph/reference_algorithms.hh"
#include "otc/cycle_ops.hh"
#include "vlsi/bitmath.hh"

namespace ot::otc {

using otn::kNull;

namespace {

/*
 * Register allocation (per BP of every cycle):
 *   A  adjacency block row (L-bit mask)
 *   D  vertex label (diagonal cycles only are authoritative)
 *   B  labels of the row group   (B(q) = D(I*L+q), everywhere)
 *   C  labels of the column group (C(p) = D(J*L+p), everywhere)
 *   T  per-BP candidate minimum
 *   E  per-vertex global candidate (row-reduced, broadcast back)
 *   X  scatter/gather positions or keys
 *   Y  gather outputs / scatter targets
 *   R  rotating copies
 *   G  new component label (diagonal cycles)
 *   H  per-component candidate (diagonal cycles)
 *   F  scratch
 */

} // namespace

otn::ComponentsResult
connectedComponentsOtcNative(OtcNetwork &net, const graph::Graph &g,
                             bool charge_load)
{
    const std::size_t k = net.k();
    const unsigned l = net.cycleLen();
    const std::size_t n = k * l;
    assert(g.vertices() <= n);
    assert(l <= 63 && "block row must fit one register");
    const unsigned log_n = vlsi::logCeilAtLeast1(n);

    ModelTime start = net.now();
    sim::ScopedPhase phase(net.acct(), "cc-otc-native");

    // Adjacency blocks: BP(q) of cycle (I, J) gets the L-bit mask of
    // row I*L+q against columns J*L .. J*L+L-1.
    for (std::size_t i = 0; i < k; ++i)
        for (std::size_t j = 0; j < k; ++j)
            for (std::size_t q = 0; q < l; ++q) {
                std::uint64_t mask = 0;
                std::size_t u = i * l + q;
                for (unsigned p = 0; p < l; ++p) {
                    std::size_t v = j * l + p;
                    if (u < g.vertices() && v < g.vertices() &&
                        g.hasEdge(u, v))
                        mask |= std::uint64_t{1} << p;
                }
                net.reg(otn::Reg::A, i, j, q) = mask;
            }
    if (charge_load) {
        // K*L masks stream through each row tree.
        net.charge(vlsi::CostModel::pipelineTotal(
            net.treeTraversalCost(), n, net.cost().wordSeparation()));
    }

    // Labels on the diagonal: D(q) of cycle (I, I) = I*L + q.
    net.baseOp(net.cost().bitSerialOp(),
               [&](std::size_t i, std::size_t j, std::size_t q) {
                   if (i == j)
                       net.reg(otn::Reg::D, i, j, q) = i * l + q;
               });

    const unsigned iterations = log_n + 1;
    for (unsigned iter = 0; iter < iterations; ++iter) {
        // (1) Fan the labels out.
        broadcastDiag(net, otn::Reg::D, otn::Reg::B, otn::Reg::C);

        // (2) Candidate scan: L rounds circulating a copy of the
        // column labels; at round r BP(q) holds C((q+r) mod L) and
        // tests adjacency bit (q+r) mod L.
        net.baseOp(net.cost().bitSerialOp(),
                   [&](std::size_t i, std::size_t j, std::size_t q) {
                       net.reg(otn::Reg::T, i, j, q) = kNull;
                       net.reg(otn::Reg::R, i, j, q) =
                           net.reg(otn::Reg::C, i, j, q);
                   });
        for (unsigned r = 0; r < l; ++r) {
            net.baseOp(net.cost().bitSerialOp(),
                       [&](std::size_t i, std::size_t j, std::size_t q) {
                           unsigned p = (q + r) % l;
                           bool edge = (net.reg(otn::Reg::A, i, j, q) >>
                                        p) &
                                       1;
                           std::uint64_t theirs =
                               net.reg(otn::Reg::R, i, j, q);
                           std::uint64_t mine =
                               net.reg(otn::Reg::B, i, j, q);
                           if (edge && theirs != mine) {
                               auto &t = net.reg(otn::Reg::T, i, j, q);
                               t = std::min(t, theirs);
                           }
                       });
            net.parallelFor(k, [&](std::size_t i) {
                net.vectorCirculate(Axis::Row, i, {otn::Reg::R});
            });
        }

        // (3) Per-vertex global minimum across the row, broadcast back.
        net.parallelFor(k, [&](std::size_t i) {
            net.minCycleToRoot(Axis::Row, i, CSel::all(), otn::Reg::T);
            net.rootToCycle(Axis::Row, i, CSel::all(), otn::Reg::E);
        });

        // (4) Member deposits: vertex v sends its candidate to the
        // component root D(v) — the cycle in v's row at column
        // D(v)/L, position D(v)%L.
        net.baseOp(net.cost().bitSerialOp(),
                   [&](std::size_t i, std::size_t j, std::size_t q) {
                       std::uint64_t label =
                           net.reg(otn::Reg::B, i, j, q);
                       bool mine = label / l == j;
                       net.reg(otn::Reg::X, i, j, q) =
                           mine ? label % l : kNull;
                   });
        scatterMin(net, otn::Reg::E, otn::Reg::X, otn::Reg::Y);
        net.parallelFor(k, [&](std::size_t j) {
            net.minCycleToRoot(Axis::Col, j, CSel::all(), otn::Reg::Y);
            net.rootToCycle(Axis::Col, j, CSel::rowIs(j), otn::Reg::H);
        });
        net.baseOp(net.cost().bitSerialOp(),
                   [&](std::size_t i, std::size_t j, std::size_t q) {
                       if (i != j)
                           return;
                       std::uint64_t h = net.reg(otn::Reg::H, i, j, q);
                       net.reg(otn::Reg::G, i, j, q) =
                           h == kNull ? i * l + q : h;
                   });

        // (5) 2-cycle removal: fetch newC(newC(r)).
        broadcastDiag(net, otn::Reg::G, otn::Reg::X, otn::Reg::R);
        // gatherAtLabel clobbers X, so move the keys to E first.
        net.baseOp(net.cost().bitSerialOp(),
                   [&](std::size_t i, std::size_t j, std::size_t q) {
                       net.reg(otn::Reg::E, i, j, q) =
                           net.reg(otn::Reg::X, i, j, q);
                   });
        gatherAtLabel(net, otn::Reg::E, otn::Reg::R, otn::Reg::Y);
        net.baseOp(net.cost().bitSerialOp(),
                   [&](std::size_t i, std::size_t j, std::size_t q) {
                       if (i != j)
                           return;
                       std::uint64_t own = i * l + q;
                       std::uint64_t new_c =
                           net.reg(otn::Reg::G, i, j, q);
                       std::uint64_t back = net.reg(otn::Reg::Y, i, j, q);
                       if (back == own && new_c != own && own < new_c)
                           net.reg(otn::Reg::G, i, j, q) = own;
                   });

        // (6) Relabel all vertices: D(v) := newC(D(v)).
        broadcastDiag(net, otn::Reg::D, otn::Reg::B, otn::Reg::C);
        broadcastDiag(net, otn::Reg::G, otn::Reg::E, otn::Reg::R);
        gatherAtLabel(net, otn::Reg::B, otn::Reg::R, otn::Reg::Y);
        net.baseOp(net.cost().bitSerialOp(),
                   [&](std::size_t i, std::size_t j, std::size_t q) {
                       if (i == j)
                           net.reg(otn::Reg::D, i, j, q) =
                               net.reg(otn::Reg::Y, i, j, q);
                   });

        // (7) Pointer jumping to a star.
        for (unsigned jump = 0; jump < log_n; ++jump) {
            broadcastDiag(net, otn::Reg::D, otn::Reg::B, otn::Reg::C);
            gatherAtLabel(net, otn::Reg::B, otn::Reg::C, otn::Reg::Y);
            net.baseOp(net.cost().bitSerialOp(),
                       [&](std::size_t i, std::size_t j, std::size_t q) {
                           if (i == j)
                               net.reg(otn::Reg::D, i, j, q) =
                                   net.reg(otn::Reg::Y, i, j, q);
                       });
        }
    }

    otn::ComponentsResult result;
    result.iterations = iterations;
    std::vector<std::size_t> raw(g.vertices());
    for (std::size_t v = 0; v < g.vertices(); ++v)
        raw[v] = static_cast<std::size_t>(
            net.reg(otn::Reg::D, v / l, v / l, v % l));
    result.labels = graph::canonicalizeLabels(raw);

    std::vector<std::size_t> distinct = result.labels;
    std::sort(distinct.begin(), distinct.end());
    result.componentCount = static_cast<std::size_t>(
        std::unique(distinct.begin(), distinct.end()) - distinct.begin());
    result.time = net.now() - start;
    return result;
}

} // namespace ot::otc

#include "otc/network.hh"

#include <algorithm>
#include <array>

#include "vlsi/bitmath.hh"

namespace ot::otc {

OtcNetwork::OtcNetwork(std::size_t cycles_per_side, unsigned cycle_len,
                       const CostModel &cost)
    : _k(vlsi::nextPow2(cycles_per_side ? cycles_per_side : 1)),
      _l(cycle_len ? cycle_len : 1),
      _cost(cost),
      _layout(_k, _l, cost.word().bits()),
      _regs(otn::kNumRegs, std::vector<std::uint64_t>(_k * _k * _l, 0)),
      _rowStream(_k, std::vector<std::uint64_t>(_l, kNull)),
      _colStream(_k, std::vector<std::uint64_t>(_l, kNull))
{
}

void
OtcNetwork::fillReg(Reg r, std::uint64_t value)
{
    auto &plane = _regs[static_cast<unsigned>(r)];
    std::fill(plane.begin(), plane.end(), value);
}

void
OtcNetwork::configureMemory(unsigned slots)
{
    _memSlots = slots;
    _mem.assign(std::size_t{_k} * _k * _l * slots, 0);
}

ModelTime
OtcNetwork::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &body)
{
    ++_parallelDepth;
    ModelTime saved_chain = _chainAccum;
    ModelTime longest = 0;
    for (std::size_t c = 0; c < count; ++c) {
        _chainAccum = 0;
        body(c);
        longest = std::max(longest, _chainAccum);
    }
    --_parallelDepth;
    _chainAccum = saved_chain;
    charge(longest);
    return longest;
}

ModelTime
OtcNetwork::runUncharged(const std::function<void()> &body)
{
    ++_parallelDepth;
    ModelTime saved = _chainAccum;
    _chainAccum = 0;
    body();
    ModelTime would_charge = _chainAccum;
    _chainAccum = saved;
    --_parallelDepth;
    return would_charge;
}

void
OtcNetwork::charge(ModelTime dt)
{
    if (_parallelDepth > 0)
        _chainAccum += dt;
    else
        _acct.advance(dt);
}

ModelTime
OtcNetwork::treeTraversalCost() const
{
    return _cost.wordAlongPath(_layout.tree().pathEdges());
}

ModelTime
OtcNetwork::streamCost() const
{
    // L words pipelined O(log N) apart through one tree traversal,
    // interleaved with the circulations that position them.
    return CostModel::pipelineTotal(treeTraversalCost(), _l,
                                    _cost.wordSeparation()) +
           circulateCost();
}

ModelTime
OtcNetwork::circulateCost() const
{
    // Bounded by the wrap-around wire of the cycle plus the bit-serial
    // word shift.
    std::array<vlsi::WireLength, 1> wrap{_layout.cycleWrapLength()};
    return _cost.wordAlongPath(wrap);
}

std::uint64_t &
OtcNetwork::rootStream(Axis axis, std::size_t idx, std::size_t q)
{
    assert(idx < _k && q < _l);
    return axis == Axis::Row ? _rowStream[idx][q] : _colStream[idx][q];
}

ModelTime
OtcNetwork::circulate(std::size_t i, std::size_t j,
                      const std::vector<Reg> &regs)
{
    for (Reg r : regs) {
        // R(q) := R((q+1) mod L): contents move one position down.
        std::uint64_t first = reg(r, i, j, 0);
        for (std::size_t q = 0; q + 1 < _l; ++q)
            reg(r, i, j, q) = reg(r, i, j, q + 1);
        reg(r, i, j, _l - 1) = first;
    }
    ++_stats.counter("otc.circulate");
    ModelTime dt = circulateCost();
    charge(dt);
    return dt;
}

ModelTime
OtcNetwork::vectorCirculate(Axis axis, std::size_t idx,
                            const std::vector<Reg> &regs)
{
    ModelTime dt = 0;
    ++_parallelDepth; // suppress per-cycle charging; all concurrent
    for (std::size_t c = 0; c < _k; ++c) {
        auto [i, j] = cycleAddr(axis, idx, c);
        ModelTime saved = _chainAccum;
        dt = circulate(i, j, regs);
        _chainAccum = saved;
    }
    --_parallelDepth;
    ++_stats.counter("otc.vectorCirculate");
    charge(dt);
    return dt;
}

ModelTime
OtcNetwork::rootToCycle(Axis axis, std::size_t idx, const CycleSelector &sel,
                        Reg dest)
{
    // Functionally: word q of the root stream lands in BP(q) of every
    // selected cycle (the paper's pipedo of ROOTTOLEAF +
    // VECTORCIRCULATE converges to exactly this placement).
    for (std::size_t c = 0; c < _k; ++c) {
        auto [i, j] = cycleAddr(axis, idx, c);
        if (!sel(i, j))
            continue;
        for (std::size_t q = 0; q < _l; ++q)
            reg(dest, i, j, q) = rootStream(axis, idx, q);
    }
    ++_stats.counter("otc.rootToCycle");
    ModelTime dt = streamCost();
    charge(dt);
    return dt;
}

ModelTime
OtcNetwork::cycleToRoot(Axis axis, std::size_t idx, const CycleSelector &sel,
                        Reg src)
{
    [[maybe_unused]] unsigned selected = 0;
    for (std::size_t c = 0; c < _k; ++c) {
        auto [i, j] = cycleAddr(axis, idx, c);
        if (!sel(i, j))
            continue;
        ++selected;
        for (std::size_t q = 0; q < _l; ++q)
            rootStream(axis, idx, q) = reg(src, i, j, q);
    }
    assert(selected <= 1 && "CYCLETOROOT requires a unique source cycle");
    if (selected == 0)
        for (std::size_t q = 0; q < _l; ++q)
            rootStream(axis, idx, q) = kNull;
    ++_stats.counter("otc.cycleToRoot");
    ModelTime dt = streamCost();
    charge(dt);
    return dt;
}

ModelTime
OtcNetwork::reduceToRoot(
    Axis axis, std::size_t idx, const CycleSelector &sel, Reg src,
    const std::function<std::uint64_t(std::uint64_t, std::uint64_t)>
        &combine,
    std::uint64_t identity)
{
    for (std::size_t q = 0; q < _l; ++q) {
        // Level-by-level reduction over the K cycles of the vector.
        std::vector<std::uint64_t> level(_k);
        for (std::size_t c = 0; c < _k; ++c) {
            auto [i, j] = cycleAddr(axis, idx, c);
            level[c] = sel(i, j) ? reg(src, i, j, q) : identity;
        }
        while (level.size() > 1) {
            std::vector<std::uint64_t> next(level.size() / 2);
            for (std::size_t c = 0; c < next.size(); ++c)
                next[c] = combine(level[2 * c], level[2 * c + 1]);
            level.swap(next);
        }
        rootStream(axis, idx, q) = level[0];
    }
    // Same pipeline as a plain stream, with per-node combining.
    ModelTime dt = CostModel::pipelineTotal(
                       _cost.reducePath(_layout.tree().pathEdges()), _l,
                       _cost.wordSeparation()) +
                   circulateCost();
    charge(dt);
    return dt;
}

ModelTime
OtcNetwork::sumCycleToRoot(Axis axis, std::size_t idx,
                           const CycleSelector &sel, Reg src)
{
    ++_stats.counter("otc.sumCycleToRoot");
    return reduceToRoot(
        axis, idx, sel, src,
        [](std::uint64_t a, std::uint64_t b) { return a + b; }, 0);
}

ModelTime
OtcNetwork::minCycleToRoot(Axis axis, std::size_t idx,
                           const CycleSelector &sel, Reg src)
{
    ++_stats.counter("otc.minCycleToRoot");
    return reduceToRoot(
        axis, idx, sel, src,
        [](std::uint64_t a, std::uint64_t b) { return std::min(a, b); },
        kNull);
}

ModelTime
OtcNetwork::cycleToCycle(Axis axis, std::size_t idx,
                         const CycleSelector &src_sel, Reg src,
                         const CycleSelector &dst_sel, Reg dst)
{
    ModelTime dt = cycleToRoot(axis, idx, src_sel, src);
    dt += rootToCycle(axis, idx, dst_sel, dst);
    ++_stats.counter("otc.cycleToCycle");
    return dt;
}

ModelTime
OtcNetwork::sumCycleToCycle(Axis axis, std::size_t idx,
                            const CycleSelector &src_sel, Reg src,
                            const CycleSelector &dst_sel, Reg dst)
{
    ModelTime dt = sumCycleToRoot(axis, idx, src_sel, src);
    dt += rootToCycle(axis, idx, dst_sel, dst);
    ++_stats.counter("otc.sumCycleToCycle");
    return dt;
}

ModelTime
OtcNetwork::minCycleToCycle(Axis axis, std::size_t idx,
                            const CycleSelector &src_sel, Reg src,
                            const CycleSelector &dst_sel, Reg dst)
{
    ModelTime dt = minCycleToRoot(axis, idx, src_sel, src);
    dt += rootToCycle(axis, idx, dst_sel, dst);
    ++_stats.counter("otc.minCycleToCycle");
    return dt;
}

ModelTime
OtcNetwork::baseOp(ModelTime op_cost,
                   const std::function<void(std::size_t i, std::size_t j,
                                            std::size_t q)> &op)
{
    for (std::size_t i = 0; i < _k; ++i)
        for (std::size_t j = 0; j < _k; ++j)
            for (std::size_t q = 0; q < _l; ++q)
                op(i, j, q);
    ++_stats.counter("otc.baseOp");
    charge(op_cost);
    return op_cost;
}

} // namespace ot::otc

#include "otc/network.hh"

#include <array>
#include <cstring>

#include "vlsi/bitmath.hh"

namespace ot::otc {

namespace {

/** Trace addressing of one per-tree-of-cycles primitive. */
sim::ChainEngine::SpanArgs
treeSpan(Axis axis, std::size_t idx, std::size_t k, std::uint64_t words)
{
    sim::ChainEngine::SpanArgs args;
    args.axis = axis == Axis::Row ? trace::TraceAxis::Row
                                  : trace::TraceAxis::Col;
    args.tree = static_cast<std::int64_t>(idx);
    args.levels = vlsi::logCeilAtLeast1(k);
    args.words = words;
    return args;
}

} // namespace

OtcNetwork::OtcNetwork(std::size_t cycles_per_side, unsigned cycle_len,
                       const CostModel &cost, unsigned host_threads)
    : _k(vlsi::nextPow2(cycles_per_side ? cycles_per_side : 1)),
      _l(cycle_len ? cycle_len : 1),
      _cost(cost),
      _layout(_k, _l, cost.word().bits()),
      _engine(_acct, _stats, host_threads),
      _backend(simd::activeBackend()),
      _kernels(&simd::kernelsFor(_backend)),
      _regs(otn::kNumRegs, _k * _k * _l),
      _rowStream(_k, std::vector<std::uint64_t>(_l, kNull)),
      _colStream(_k, std::vector<std::uint64_t>(_l, kNull))
{
    _treeTraversalCost = _cost.wordAlongPath(_layout.tree().pathEdges());
    // Bounded by the wrap-around wire of the cycle plus the bit-serial
    // word shift.
    std::array<vlsi::WireLength, 1> wrap{_layout.cycleWrapLength()};
    _circulateCost = _cost.wordAlongPath(wrap);
    // L words pipelined O(log N) apart through one tree traversal,
    // interleaved with the circulations that position them.
    _streamCost = CostModel::pipelineTotal(_treeTraversalCost, _l,
                                           _cost.wordSeparation()) +
                  _circulateCost;
    // Same pipeline with per-node combining.
    _reduceStreamCost =
        CostModel::pipelineTotal(_cost.reducePath(_layout.tree().pathEdges()),
                                 _l, _cost.wordSeparation()) +
        _circulateCost;
}

void
OtcNetwork::fillReg(Reg r, std::uint64_t value)
{
    _kernels->fill(regPlane(r), std::size_t{_k} * _k * _l, value);
}

void
OtcNetwork::configureMemory(unsigned slots)
{
    _memSlots = slots;
    _mem.assign(std::size_t{_k} * _k * _l * slots, 0);
}

std::uint64_t &
OtcNetwork::rootStream(Axis axis, std::size_t idx, std::size_t q)
{
    assert(idx < _k && q < _l);
    return axis == Axis::Row ? _rowStream[idx][q] : _colStream[idx][q];
}

ModelTime
OtcNetwork::circulate(std::size_t i, std::size_t j,
                      const std::vector<Reg> &regs)
{
    // R(q) := R((q+1) mod L): contents move one position down.  The
    // cycle's stream is one contiguous L-word plane segment.
    for (Reg r : regs)
        _kernels->rotateCycles(regPlane(r) + (i * _k + j) * _l, 1, 0, _l);
    ++_engine.counter("otc.circulate");
    ModelTime dt = circulateCost();
    _engine.traceSpan("otc", "circulate", dt, {});
    charge(dt);
    return dt;
}

ModelTime
OtcNetwork::vectorCirculate(Axis axis, std::size_t idx,
                            const std::vector<Reg> &regs)
{
    // All K cycles of the vector shift concurrently: one circulate's
    // cost is charged, not K.  A row's K cycle streams are contiguous
    // (stride L); a column's are strided by a whole row (K*L).
    for (Reg r : regs) {
        std::uint64_t *plane = regPlane(r);
        if (axis == Axis::Row)
            _kernels->rotateCycles(plane + idx * _k * _l, _k, _l, _l);
        else
            _kernels->rotateCycles(plane + idx * _l, _k,
                                   std::size_t{_k} * _l, _l);
    }
    // Accounting replay of the per-cycle circulate calls.
    ModelTime dt = circulateCost();
    _engine.runUncharged([&] {
        for (std::size_t c = 0; c < _k; ++c) {
            ++_engine.counter("otc.circulate");
            _engine.traceSpan("otc", "circulate", dt, {});
            charge(dt);
        }
    });
    ++_engine.counter("otc.vectorCirculate");
    _engine.traceSpan("otc", "vectorCirculate", dt,
                      treeSpan(axis, idx, _k, 0));
    charge(dt);
    return dt;
}

ModelTime
OtcNetwork::rootToCycle(Axis axis, std::size_t idx, const CycleSelector &sel,
                        Reg dest)
{
    // Functionally: word q of the root stream lands in BP(q) of every
    // selected cycle (the paper's pipedo of ROOTTOLEAF +
    // VECTORCIRCULATE converges to exactly this placement).
    const std::uint64_t *stream =
        axis == Axis::Row ? _rowStream[idx].data() : _colStream[idx].data();
    for (std::size_t c = 0; c < _k; ++c) {
        auto [i, j] = cycleAddr(axis, idx, c);
        if (!sel.matches(i, j))
            continue;
        std::memcpy(regPlane(dest) + (i * _k + j) * _l, stream,
                    _l * sizeof(std::uint64_t));
    }
    ++_engine.counter("otc.rootToCycle");
    ModelTime dt = streamCost();
    _engine.traceSpan("otc", "rootToCycle", dt,
                      treeSpan(axis, idx, _k, _l));
    charge(dt);
    return dt;
}

ModelTime
OtcNetwork::cycleToRoot(Axis axis, std::size_t idx, const CycleSelector &sel,
                        Reg src)
{
    std::uint64_t *stream =
        axis == Axis::Row ? _rowStream[idx].data() : _colStream[idx].data();
    [[maybe_unused]] unsigned selected = 0;
    for (std::size_t c = 0; c < _k; ++c) {
        auto [i, j] = cycleAddr(axis, idx, c);
        if (!sel.matches(i, j))
            continue;
        ++selected;
        std::memcpy(stream, regPlane(src) + (i * _k + j) * _l,
                    _l * sizeof(std::uint64_t));
    }
    assert(selected <= 1 && "CYCLETOROOT requires a unique source cycle");
    if (selected == 0)
        _kernels->fill(stream, _l, kNull);
    ++_engine.counter("otc.cycleToRoot");
    ModelTime dt = streamCost();
    _engine.traceSpan("otc", "cycleToRoot", dt,
                      treeSpan(axis, idx, _k, _l));
    charge(dt);
    return dt;
}

ModelTime
OtcNetwork::reduceToRoot(Axis axis, std::size_t idx,
                         const CycleSelector &sel, Reg src, ReduceOp op)
{
    // Sum (mod 2^64) and min are associative, so the kernel's linear
    // reduction over the gathered level buffer equals the machine's
    // pairwise tree combining bit for bit.
    const std::uint64_t identity = op == ReduceOp::Sum ? 0 : kNull;
    thread_local std::vector<std::uint64_t> level;
    level.resize(_k);
    for (std::size_t q = 0; q < _l; ++q) {
        for (std::size_t c = 0; c < _k; ++c) {
            auto [i, j] = cycleAddr(axis, idx, c);
            level[c] = sel.matches(i, j) ? reg(src, i, j, q) : identity;
        }
        rootStream(axis, idx, q) =
            op == ReduceOp::Sum ? _kernels->reduceSum(level.data(), _k)
                                : _kernels->reduceMin(level.data(), _k);
    }
    ModelTime dt = _reduceStreamCost;
    charge(dt);
    return dt;
}

ModelTime
OtcNetwork::sumCycleToRoot(Axis axis, std::size_t idx,
                           const CycleSelector &sel, Reg src)
{
    ++_engine.counter("otc.sumCycleToRoot");
    _engine.traceSpan("otc", "sumCycleToRoot", _reduceStreamCost,
                      treeSpan(axis, idx, _k, _l));
    return reduceToRoot(axis, idx, sel, src, ReduceOp::Sum);
}

ModelTime
OtcNetwork::minCycleToRoot(Axis axis, std::size_t idx,
                           const CycleSelector &sel, Reg src)
{
    ++_engine.counter("otc.minCycleToRoot");
    _engine.traceSpan("otc", "minCycleToRoot", _reduceStreamCost,
                      treeSpan(axis, idx, _k, _l));
    return reduceToRoot(axis, idx, sel, src, ReduceOp::Min);
}

ModelTime
OtcNetwork::cycleToCycle(Axis axis, std::size_t idx,
                         const CycleSelector &src_sel, Reg src,
                         const CycleSelector &dst_sel, Reg dst)
{
    ModelTime dt = cycleToRoot(axis, idx, src_sel, src);
    dt += rootToCycle(axis, idx, dst_sel, dst);
    ++_engine.counter("otc.cycleToCycle");
    return dt;
}

ModelTime
OtcNetwork::sumCycleToCycle(Axis axis, std::size_t idx,
                            const CycleSelector &src_sel, Reg src,
                            const CycleSelector &dst_sel, Reg dst)
{
    ModelTime dt = sumCycleToRoot(axis, idx, src_sel, src);
    dt += rootToCycle(axis, idx, dst_sel, dst);
    ++_engine.counter("otc.sumCycleToCycle");
    return dt;
}

ModelTime
OtcNetwork::minCycleToCycle(Axis axis, std::size_t idx,
                            const CycleSelector &src_sel, Reg src,
                            const CycleSelector &dst_sel, Reg dst)
{
    ModelTime dt = minCycleToRoot(axis, idx, src_sel, src);
    dt += rootToCycle(axis, idx, dst_sel, dst);
    ++_engine.counter("otc.minCycleToCycle");
    return dt;
}

ModelTime
OtcNetwork::baseOp(ModelTime op_cost,
                   const std::function<void(std::size_t i, std::size_t j,
                                            std::size_t q)> &op)
{
    for (std::size_t i = 0; i < _k; ++i)
        for (std::size_t j = 0; j < _k; ++j)
            for (std::size_t q = 0; q < _l; ++q)
                op(i, j, q);
    ++_engine.counter("otc.baseOp");
    _engine.traceSpan("otc", "baseOp", op_cost, {});
    charge(op_cost);
    return op_cost;
}

} // namespace ot::otc

#include "otc/matmul_native.hh"

#include <cassert>

namespace ot::otc {

VecMatOtcResult
vecMatMulOtc(OtcNetwork &net, const std::vector<std::uint64_t> &a,
             const linalg::IntMatrix &b)
{
    const std::size_t k = net.k();
    const unsigned l = net.cycleLen();
    const std::size_t n = k * l;
    assert(a.size() == n && b.rows() == n && b.cols() == n);

    ModelTime start = net.now();
    sim::ScopedPhase phase(net.acct(), "vecmat-otc");

    // Block storage: BP(q) of cycle (i, j) keeps column j*L+q of B's
    // (i, j) block — slot p holds B(i*L+p, j*L+q).
    net.configureMemory(l);
    for (std::size_t i = 0; i < k; ++i)
        for (std::size_t j = 0; j < k; ++j)
            for (std::size_t q = 0; q < l; ++q)
                for (unsigned p = 0; p < l; ++p) {
                    assert(net.fitsWord(b(i * l + p, j * l + q)));
                    net.mem(i, j, q, p) = b(i * l + p, j * l + q);
                }
    // Fill: every row tree streams its row-block (K cycles x L BPs x
    // L slots = N * L words) to the base.
    net.charge(vlsi::CostModel::pipelineTotal(
        net.treeTraversalCost(), n * l, net.cost().wordSeparation()));

    // Vector chunks down the row trees: A(q) = a(i*L + q) everywhere
    // in row i.
    for (std::size_t i = 0; i < k; ++i)
        for (std::size_t q = 0; q < l; ++q)
            net.rowStream(i)[q] = a[i * l + q];
    net.parallelFor(k, [&](std::size_t i) {
        net.rootToCycle(Axis::Row, i, CSel::all(), Reg::A);
    });

    // Accumulators to zero, then L circulate-multiply-accumulate
    // rounds: after p circulations BP(q) holds a-word (q + p) mod L
    // and multiplies it with its stored B row (q + p) mod L.
    net.baseOp(net.cost().bitSerialOp(),
               [&](std::size_t i, std::size_t j, std::size_t q) {
                   net.reg(Reg::C, i, j, q) = 0;
               });
    for (unsigned p = 0; p < l; ++p) {
        net.baseOp(net.cost().bitSerialMultiply(),
                   [&](std::size_t i, std::size_t j, std::size_t q) {
                       unsigned row = (q + p) % l;
                       std::uint64_t av = net.reg(Reg::A, i, j, q);
                       net.reg(Reg::C, i, j, q) +=
                           av * net.mem(i, j, q, row);
                   });
        net.parallelFor(k, [&](std::size_t i) {
            net.vectorCirculate(Axis::Row, i, {Reg::A});
        });
    }

    // Column sums: c(j*L + q) = sum over i of the partials.
    net.parallelFor(k, [&](std::size_t j) {
        net.sumCycleToRoot(Axis::Col, j, CSel::all(), Reg::C);
    });

    VecMatOtcResult result;
    result.product.resize(n);
    for (std::size_t j = 0; j < k; ++j)
        for (std::size_t q = 0; q < l; ++q)
            result.product[j * l + q] = net.colStream(j)[q];
    result.time = net.now() - start;
    return result;
}

} // namespace ot::otc

/**
 * @file
 * Composite in-cycle operations shared by the native OTC algorithms
 * (Section VI-B): rotation-based gather/scatter inside every cycle,
 * diagonal broadcasts, and the vertex-label indirection built from
 * them.  All cost L rounds of one circulate plus one bit-serial step,
 * or a pair of streamed tree operations — the O(log^2 N) class.
 */

#pragma once

#include "otc/network.hh"

namespace ot::otc {

/**
 * In-cycle gather: out(q) := val(pos(q)) within each cycle (kNull when
 * pos(q) is kNull / out of range).  Implemented by rotating a copy of
 * `val` L times; BP(q) captures the word for its requested position as
 * it passes.
 */
vlsi::ModelTime rotateCapture(OtcNetwork &net, otn::Reg val, otn::Reg pos,
                              otn::Reg out);

/**
 * In-cycle scatter with MIN merge: out(pos(q)) := min(out, src(q))
 * within each cycle; `out` is reset to kNull first.
 */
vlsi::ModelTime scatterMin(OtcNetwork &net, otn::Reg src, otn::Reg pos,
                           otn::Reg out);

/**
 * Broadcast the diagonal cycles' register `src` along rows into
 * `row_dst` and down columns into `col_dst` (one CYCLETOCYCLE stream
 * per tree, all in parallel).
 */
void broadcastDiag(OtcNetwork &net, otn::Reg src, otn::Reg row_dst,
                   otn::Reg col_dst);

/**
 * Vertex-level indirection out(v) := val(key(v)) on the diagonal:
 * `key_row` holds key(v) fanned along rows and `val_col` holds the
 * value vector fanned down columns; the cycle in v's row at column
 * key/L captures position key%L and a row MIN returns it to the
 * diagonal register `out`.  Clobbers registers X and Y.
 */
void gatherAtLabel(OtcNetwork &net, otn::Reg key_row, otn::Reg val_col,
                   otn::Reg out);

} // namespace ot::otc

#include "otc/mst_native.hh"

#include <algorithm>
#include <cassert>
#include <set>

#include "otc/cycle_ops.hh"
#include "vlsi/bitmath.hh"

namespace ot::otc {

using otn::kNull;

namespace {

/*
 * Register allocation (mem slot p of BP(q) in cycle (I, J) holds the
 * weight w(I*L+q, J*L+p); registers as in the native CC, with T/E/H
 * carrying packed (w, u, v) edge words instead of labels).
 */

std::uint64_t
packEdge(std::uint64_t w, std::uint64_t u, std::uint64_t v,
         unsigned idx_bits)
{
    return (w << (2 * idx_bits)) | (u << idx_bits) | v;
}

std::uint64_t
packedV(std::uint64_t packed, unsigned idx_bits)
{
    return packed & ((std::uint64_t{1} << idx_bits) - 1);
}

std::uint64_t
packedU(std::uint64_t packed, unsigned idx_bits)
{
    return (packed >> idx_bits) & ((std::uint64_t{1} << idx_bits) - 1);
}

} // namespace

otn::MstResult
mstOtcNative(OtcNetwork &net, const graph::WeightedGraph &g,
             bool charge_load)
{
    const std::size_t k = net.k();
    const unsigned l = net.cycleLen();
    const std::size_t n = k * l;
    assert(g.vertices() <= n);
    const unsigned log_n = vlsi::logCeilAtLeast1(n);
    const unsigned idx_bits = log_n;

    ModelTime start = net.now();
    sim::ScopedPhase phase(net.acct(), "mst-otc-native");

    // Weight blocks into local memory: the Section VI-B resident
    // matrix (Theta(L) words per BP, area premium Theta(log N)).
    net.configureMemory(l);
    for (std::size_t i = 0; i < k; ++i)
        for (std::size_t j = 0; j < k; ++j)
            for (std::size_t q = 0; q < l; ++q)
                for (unsigned p = 0; p < l; ++p) {
                    std::size_t u = i * l + q, v = j * l + p;
                    bool edge = u < g.vertices() && v < g.vertices() &&
                                g.hasEdge(u, v);
                    net.mem(i, j, q, p) = edge ? g.weight(u, v) : kNull;
                    if (edge)
                        assert(net.fitsWord(packEdge(g.weight(u, v), u, v,
                                                     idx_bits)));
                }
    if (charge_load) {
        net.charge(vlsi::CostModel::pipelineTotal(
            net.treeTraversalCost(), n * l, net.cost().wordSeparation()));
    }

    net.baseOp(net.cost().bitSerialOp(),
               [&](std::size_t i, std::size_t j, std::size_t q) {
                   if (i == j)
                       net.reg(otn::Reg::D, i, j, q) = i * l + q;
               });

    std::set<std::pair<std::size_t, std::size_t>> chosen;
    const unsigned iterations = log_n + 1;

    for (unsigned iter = 0; iter < iterations; ++iter) {
        // (1) Labels to rows and columns.
        broadcastDiag(net, otn::Reg::D, otn::Reg::B, otn::Reg::C);

        // (2) Candidate scan over the weight slots, circulating the
        // column labels: at round r, BP(q) sees label C((q+r) mod L)
        // and its stored weight slot (q+r) mod L.
        net.baseOp(net.cost().bitSerialOp(),
                   [&](std::size_t i, std::size_t j, std::size_t q) {
                       net.reg(otn::Reg::T, i, j, q) = kNull;
                       net.reg(otn::Reg::R, i, j, q) =
                           net.reg(otn::Reg::C, i, j, q);
                   });
        for (unsigned r = 0; r < l; ++r) {
            net.baseOp(net.cost().bitSerialOp(),
                       [&](std::size_t i, std::size_t j, std::size_t q) {
                           unsigned p = (q + r) % l;
                           std::uint64_t w = net.mem(i, j, q, p);
                           std::uint64_t theirs =
                               net.reg(otn::Reg::R, i, j, q);
                           std::uint64_t mine =
                               net.reg(otn::Reg::B, i, j, q);
                           if (w != kNull && theirs != mine) {
                               std::uint64_t key = packEdge(
                                   w, i * l + q, j * l + p, idx_bits);
                               auto &t = net.reg(otn::Reg::T, i, j, q);
                               t = std::min(t, key);
                           }
                       });
            net.parallelFor(k, [&](std::size_t i) {
                net.vectorCirculate(Axis::Row, i, {otn::Reg::R});
            });
        }

        // (3) Per-vertex best edge across the row, broadcast back.
        net.parallelFor(k, [&](std::size_t i) {
            net.minCycleToRoot(Axis::Row, i, CSel::all(), otn::Reg::T);
            net.rootToCycle(Axis::Row, i, CSel::all(), otn::Reg::E);
        });

        // (4) Per-component best edge via the member deposit.
        net.baseOp(net.cost().bitSerialOp(),
                   [&](std::size_t i, std::size_t j, std::size_t q) {
                       std::uint64_t label =
                           net.reg(otn::Reg::B, i, j, q);
                       bool mine = label / l == j;
                       net.reg(otn::Reg::X, i, j, q) =
                           mine ? label % l : kNull;
                   });
        scatterMin(net, otn::Reg::E, otn::Reg::X, otn::Reg::Y);
        net.parallelFor(k, [&](std::size_t j) {
            net.minCycleToRoot(Axis::Col, j, CSel::all(), otn::Reg::Y);
            net.rootToCycle(Axis::Col, j, CSel::rowIs(j), otn::Reg::H);
        });

        // Record the chosen edges (root output) and derive hook keys.
        net.baseOp(net.cost().bitSerialOp(),
                   [&](std::size_t i, std::size_t j, std::size_t q) {
                       if (i != j)
                           return;
                       std::uint64_t best = net.reg(otn::Reg::H, i, j, q);
                       if (best == kNull) {
                           net.reg(otn::Reg::G, i, j, q) = kNull;
                           return;
                       }
                       auto u = packedU(best, idx_bits);
                       auto v = packedV(best, idx_bits);
                       chosen.insert({std::min(u, v), std::max(u, v)});
                       net.reg(otn::Reg::G, i, j, q) = v;
                   });

        // newC(r) = D(v): gather the far endpoint's label (C still
        // carries the column-fanned D from step 1).
        broadcastDiag(net, otn::Reg::G, otn::Reg::E, otn::Reg::R);
        gatherAtLabel(net, otn::Reg::E, otn::Reg::C, otn::Reg::Y);
        net.baseOp(net.cost().bitSerialOp(),
                   [&](std::size_t i, std::size_t j, std::size_t q) {
                       if (i != j)
                           return;
                       std::uint64_t target =
                           net.reg(otn::Reg::Y, i, j, q);
                       net.reg(otn::Reg::G, i, j, q) =
                           target == kNull ? i * l + q : target;
                   });

        // (5) 2-cycle removal (distinct weights: mutual pairs only).
        broadcastDiag(net, otn::Reg::G, otn::Reg::E, otn::Reg::R);
        gatherAtLabel(net, otn::Reg::E, otn::Reg::R, otn::Reg::Y);
        net.baseOp(net.cost().bitSerialOp(),
                   [&](std::size_t i, std::size_t j, std::size_t q) {
                       if (i != j)
                           return;
                       std::uint64_t own = i * l + q;
                       std::uint64_t new_c =
                           net.reg(otn::Reg::G, i, j, q);
                       std::uint64_t back = net.reg(otn::Reg::Y, i, j, q);
                       if (back == own && new_c != own && own < new_c)
                           net.reg(otn::Reg::G, i, j, q) = own;
                   });

        // (6) Relabel all vertices.
        broadcastDiag(net, otn::Reg::D, otn::Reg::B, otn::Reg::C);
        broadcastDiag(net, otn::Reg::G, otn::Reg::E, otn::Reg::R);
        gatherAtLabel(net, otn::Reg::B, otn::Reg::R, otn::Reg::Y);
        net.baseOp(net.cost().bitSerialOp(),
                   [&](std::size_t i, std::size_t j, std::size_t q) {
                       if (i == j)
                           net.reg(otn::Reg::D, i, j, q) =
                               net.reg(otn::Reg::Y, i, j, q);
                   });

        // (7) Pointer jumping to a star.
        for (unsigned jump = 0; jump < log_n; ++jump) {
            broadcastDiag(net, otn::Reg::D, otn::Reg::B, otn::Reg::C);
            gatherAtLabel(net, otn::Reg::B, otn::Reg::C, otn::Reg::Y);
            net.baseOp(net.cost().bitSerialOp(),
                       [&](std::size_t i, std::size_t j, std::size_t q) {
                           if (i == j)
                               net.reg(otn::Reg::D, i, j, q) =
                                   net.reg(otn::Reg::Y, i, j, q);
                       });
        }
    }

    otn::MstResult result;
    result.iterations = iterations;
    for (auto [u, v] : chosen)
        result.edges.push_back({u, v, g.weight(u, v)});
    std::sort(result.edges.begin(), result.edges.end(),
              [](const graph::Edge &a, const graph::Edge &b) {
                  return std::tie(a.w, a.u, a.v) <
                         std::tie(b.w, b.u, b.v);
              });
    result.totalWeight = graph::totalWeight(result.edges);
    result.time = net.now() - start;
    return result;
}

} // namespace ot::otc

/**
 * @file
 * Minimum spanning tree natively on the OTC (Section VI-B: "In the
 * MST algorithm, the area goes down to O(N^2 log N) and not O(N^2).
 * This is because the entire N x N weight matrix must be stored on
 * the chip, and each element requires O(log N) bits.").
 *
 * The weight block of cycle (I, J) lives in the BPs' local memory
 * (configureMemory(L): slot p of BP(q) = w(I*L+q, J*L+p) — Theta(L)
 * words per BP, the paper's extra log N of area).  The Boruvka
 * skeleton is the native-CC one with packed (w, u, v) edge words: the
 * candidate scan walks the L weight slots with the circulating column
 * labels, the per-component minimum uses the in-cycle scatter, and
 * hooking/jumping use the same label-indirection rounds.
 */

#pragma once

#include "graph/graph.hh"
#include "otc/network.hh"
#include "otn/mst.hh" // MstResult, mstWordFormat

namespace ot::otc {

/**
 * Boruvka MST on the native (K x K)-OTC, cycles of length L (vertex
 * v = I*L + q).  Weights must be distinct; the machine word must fit
 * packed (w, u, v) edge keys (build with otn::mstWordFormat).
 */
otn::MstResult mstOtcNative(OtcNetwork &net, const graph::WeightedGraph &g,
                            bool charge_load = true);

} // namespace ot::otc

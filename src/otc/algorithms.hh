/**
 * @file
 * Section VI-B: the matrix and graph algorithms on the OTC.
 *
 * "In the same manner as procedure SORT-OTN was converted to SORT-OTC,
 * we can convert the matrix and graph algorithms of Section III to run
 * on the OTC."  These wrappers run the Section III algorithms on an
 * OtcEmulatedOtn — the machine that charges OTC communication and
 * processing costs while occupying the OTC's O(N^2) area — and return
 * the algorithm result together with the chip metrics, which is what
 * Tables II and III compare.
 */

#pragma once

#include "graph/graph.hh"
#include "layout/geometry.hh"
#include "linalg/matrix.hh"
#include "otc/emulated_otn.hh"
#include "otn/connected_components.hh"
#include "otn/matmul.hh"
#include "otn/mst.hh"

namespace ot::otc {

/** Connected components on the standard (N/logN x N/logN)-OTC. */
struct CcOtcResult
{
    otn::ComponentsResult result;
    layout::LayoutMetrics chip;
};

CcOtcResult connectedComponentsOtc(const graph::Graph &g,
                                   const vlsi::CostModel &cost);

/** MST on the OTC (area O(N^2 log N): the weight matrix is resident). */
struct MstOtcResult
{
    otn::MstResult result;
    layout::LayoutMetrics chip;
};

MstOtcResult mstOtc(const graph::WeightedGraph &g,
                    const vlsi::CostModel &cost);

/** Integer matrix product on the OTC (pipelined, Section VI-B). */
struct MatMulOtcResult
{
    otn::MatMulResult result;
    layout::LayoutMetrics chip;
};

MatMulOtcResult matMulOtc(const linalg::IntMatrix &a,
                          const linalg::IntMatrix &b,
                          const vlsi::CostModel &cost);

/**
 * Boolean matrix product on the big OTC of Section VI-B (cycles of
 * length log^2 N of O(1)-area BPs; time O(log^2 N), area
 * O(N^4 / log^2 N) — the Table II row).  The time is measured on the
 * replicated-block machine; the area comes from the compact OTC
 * layout sized for N^2/log^2 N cycles per side.
 */
MatMulOtcResult boolMatMulOtc(const linalg::BoolMatrix &a,
                              const linalg::BoolMatrix &b,
                              const vlsi::CostModel &cost);

} // namespace ot::otc

#include "otc/emulated_otn.hh"

#include <array>

#include "vlsi/bitmath.hh"

namespace ot::otc {

namespace {

unsigned
defaultCycleLen(std::size_t n, unsigned cycle_len)
{
    if (cycle_len)
        return cycle_len;
    return vlsi::logCeilAtLeast1(vlsi::nextPow2(n ? n : 1));
}

std::size_t
cyclesPerSideFor(std::size_t n, unsigned l)
{
    std::size_t nn = vlsi::nextPow2(n ? n : 1);
    return vlsi::nextPow2(vlsi::ceilDiv(nn, l));
}

} // namespace

OtcEmulatedOtn::OtcEmulatedOtn(std::size_t n, const vlsi::CostModel &cost,
                               unsigned cycle_len, unsigned host_threads)
    : OrthogonalTreesNetwork(n, cost, {}, host_threads),
      _cycleLen(defaultCycleLen(n, cycle_len)),
      _otcLayout(cyclesPerSideFor(n, _cycleLen), _cycleLen,
                 cost.word().bits())
{
}

vlsi::ModelTime
OtcEmulatedOtn::computeTreeTraversalCost() const
{
    // L words of the emulated row/column segment stream through the
    // K-leaf OTC tree O(log N) apart (Section V-A's broadcast
    // simulation), plus the in-cycle circulation that distributes
    // them.
    std::array<vlsi::WireLength, 1> wrap{_otcLayout.cycleWrapLength()};
    return vlsi::CostModel::pipelineTotal(
               cost().wordAlongPath(_otcLayout.tree().pathEdges()),
               _cycleLen, cost().wordSeparation()) +
           cost().wordAlongPath(wrap);
}

vlsi::ModelTime
OtcEmulatedOtn::computeTreeReduceCost() const
{
    std::array<vlsi::WireLength, 1> wrap{_otcLayout.cycleWrapLength()};
    return vlsi::CostModel::pipelineTotal(
               cost().reducePath(_otcLayout.tree().pathEdges()), _cycleLen,
               cost().wordSeparation()) +
           cost().wordAlongPath(wrap);
}

vlsi::ModelTime
OtcEmulatedOtn::baseOpCost(vlsi::ModelTime op_cost) const
{
    // A cycle of L BPs serialises the L^2 base positions of its
    // emulated square in L rounds (Section V: "the same operations can
    // be performed in O(K t) time on a cycle of BPs of length K").
    return op_cost * _cycleLen;
}

vlsi::ModelTime
OtcEmulatedOtn::baseOp(
    vlsi::ModelTime op_cost,
    const std::function<void(std::size_t i, std::size_t j)> &op)
{
    return OrthogonalTreesNetwork::baseOp(baseOpCost(op_cost), op);
}

} // namespace ot::otc

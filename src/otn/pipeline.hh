/**
 * @file
 * Pipelined problem streams on the OTN (Section VIII, point 4).
 *
 * SORT-OTN's computation flows root -> base -> root -> base -> root:
 * at any instant only the processors of one tree level are active, so
 * O(log N) independent problem instances can be in flight at once,
 * O(log N) time apart (each processor time-slices the three phases).
 * A new sorted sequence then emerges every O(log N) time units, and
 * the pipelined AT^2 becomes O(N^2 log^4 N) — matching the OTC without
 * pipelining.
 *
 * The extra storage this needs (log N words buffered per BP during the
 * LEAFTOLEAF of step 2, i.e. O(log^2 N) bits) fits the BP area budget
 * (Section VIII).
 */

#pragma once

#include <vector>

#include "otn/network.hh"
#include "otn/sort.hh"

namespace ot::otn {

/** Result of a pipelined stream of sorting problems. */
struct SortPipelineResult
{
    /** Per-problem sorted outputs, in submission order. */
    std::vector<std::vector<std::uint64_t>> sorted;
    /** Model time from first input to last output. */
    ModelTime totalTime = 0;
    /** Latency of the first problem through the pipe. */
    ModelTime firstLatency = 0;
    /** Beat between successive outputs: O(log N). */
    ModelTime problemInterval = 0;
};

/**
 * Sort a stream of problems on one OTN with pipelining.  Each problem
 * must have at most net.n() values.  The first instance is charged in
 * full; each further instance adds one pipeline beat (three time
 * slices of one word, for the three phases in flight).
 */
SortPipelineResult sortPipelineOtn(
    OrthogonalTreesNetwork &net,
    const std::vector<std::vector<std::uint64_t>> &problems);

} // namespace ot::otn

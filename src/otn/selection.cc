#include "otn/selection.hh"

#include <cassert>

namespace ot::otn {

SelectResult
selectKthOtn(OrthogonalTreesNetwork &net,
             const std::vector<std::uint64_t> &values, std::size_t k)
{
    const std::size_t n = net.n();
    const std::size_t m = values.size();
    assert(m <= n && k < m);

    ModelTime start = net.now();
    sim::ScopedPhase phase(net.acct(), "select-otn");
    net.setRowRootInputs(values);

    // Steps 1-4 of SORT-OTN: every BP of row i learns rank(x(i)).
    net.parallelFor(n, [&](std::size_t i) {
        net.rootToLeaf(Axis::Row, i, Sel::all(), Reg::A);
    });
    net.parallelFor(n, [&](std::size_t i) {
        net.leafToLeaf(Axis::Col, i, Sel::rowIs(i), Reg::A, Sel::all(),
                       Reg::B);
    });
    net.baseOp(net.cost().bitSerialOp(), [&](std::size_t i, std::size_t j) {
        std::uint64_t a = net.reg(Reg::A, i, j);
        std::uint64_t b = net.reg(Reg::B, i, j);
        net.reg(Reg::F, i, j) = (a > b || (a == b && i > j)) ? 1 : 0;
    });
    net.parallelFor(n, [&](std::size_t i) {
        net.countLeafToLeaf(Axis::Row, i, Reg::F, Sel::all(), Reg::R);
    });

    // Step 5, narrowed: only column 0's tree extracts — first the
    // value of rank k, then (one more traversal) its row index, which
    // each selected BP knows as its own address.
    Selector rank_is_k = Sel::regEq(Reg::R, k);
    net.leafToRoot(Axis::Col, 0, rank_is_k, Reg::A);
    std::uint64_t value = net.colRoot(0);

    net.baseOp(net.cost().bitSerialOp(), [&](std::size_t i, std::size_t j) {
        net.reg(Reg::X, i, j) = i;
    });
    net.leafToRoot(Axis::Col, 0, rank_is_k, Reg::X);
    std::uint64_t index = net.colRoot(0);

    SelectResult result;
    result.value = value;
    result.index = static_cast<std::size_t>(index);
    result.time = net.now() - start;
    return result;
}

SelectResult
medianOtn(OrthogonalTreesNetwork &net,
          const std::vector<std::uint64_t> &values)
{
    assert(!values.empty());
    return selectKthOtn(net, values, (values.size() - 1) / 2);
}

} // namespace ot::otn

#include "otn/matmul.hh"

#include <cassert>

namespace ot::otn {

namespace {

/** Shared body of one vector-matrix product (B already in Reg::B). */
void
vecMatBody(OrthogonalTreesNetwork &net, const std::vector<std::uint64_t> &a,
           bool boolean)
{
    net.setRowRootInputs(a);
    net.parallelFor(net.n(), [&](std::size_t k) {
        net.rootToLeaf(Axis::Row, k, Sel::all(), Reg::A);
    });
    ModelTime mul_cost = boolean ? 1 : net.cost().bitSerialMultiply();
    net.baseOp(mul_cost, [&](std::size_t i, std::size_t j) {
        std::uint64_t av = net.reg(Reg::A, i, j);
        std::uint64_t bv = net.reg(Reg::B, i, j);
        std::uint64_t prod;
        if (av == kNull || bv == kNull)
            prod = 0; // absent operands contribute nothing to the sum
        else if (boolean)
            prod = (av && bv) ? 1 : 0;
        else
            prod = av * bv;
        net.reg(Reg::C, i, j) = prod;
    });
    net.parallelFor(net.n(), [&](std::size_t j) {
        net.sumLeafToRoot(Axis::Col, j, Sel::all(), Reg::C);
    });
}

/** Convert a BoolMatrix to the machine's IntMatrix form. */
linalg::IntMatrix
widen(const linalg::BoolMatrix &m)
{
    linalg::IntMatrix out(m.rows(), m.cols(), 0);
    for (std::size_t i = 0; i < m.rows(); ++i)
        for (std::size_t j = 0; j < m.cols(); ++j)
            out(i, j) = m(i, j) ? 1 : 0;
    return out;
}

/** Generic pipelined product; `boolean` selects (AND, OR-as-sum). */
MatMulResult
matMulImpl(OrthogonalTreesNetwork &net, const linalg::IntMatrix &a,
           const linalg::IntMatrix &b, bool boolean, ModelTime separation)
{
    assert(a.cols() == b.rows() && a.rows() == a.cols());
    assert(b.rows() == b.cols() && a.rows() <= net.n());
    const std::size_t m = a.rows();

    MatMulResult result;
    result.product = linalg::IntMatrix(m, m, 0);

    ModelTime start = net.now();
    sim::ScopedPhase phase(net.acct(), boolean ? "bool-matmul-otn"
                                               : "matmul-otn");
    net.loadBase(Reg::B, b, /*charged=*/true, separation);

    // First vector product is charged in full (it sets the pipeline
    // latency)...
    vecMatBody(net, a.row(0), boolean);
    const auto &out0 = net.colRootOutputs();
    for (std::size_t j = 0; j < m; ++j)
        result.product(0, j) = boolean ? (out0[j] ? 1 : 0) : out0[j];
    result.firstRowLatency = net.now() - start;

    // ...the remaining N-1 products ride the pipeline `separation`
    // time units apart (Section III-A: "the separation in time between
    // successive i's in the pipeline is O(log N) units").
    for (std::size_t i = 1; i < m; ++i) {
        net.runUncharged([&] { vecMatBody(net, a.row(i), boolean); });
        const auto &out = net.colRootOutputs();
        for (std::size_t j = 0; j < m; ++j)
            result.product(i, j) = boolean ? (out[j] ? 1 : 0) : out[j];
        net.charge(separation);
    }

    result.rowInterval = separation;
    result.time = net.now() - start;
    return result;
}

} // namespace

std::vector<std::uint64_t>
vecMatMulOtn(OrthogonalTreesNetwork &net, const std::vector<std::uint64_t> &a)
{
    vecMatBody(net, a, /*boolean=*/false);
    // Copy: the result is truncated to the caller's length.
    std::vector<std::uint64_t> out = net.colRootOutputs();
    out.resize(a.size());
    return out;
}

MatMulResult
matMulPipelined(OrthogonalTreesNetwork &net, const linalg::IntMatrix &a,
                const linalg::IntMatrix &b)
{
    return matMulImpl(net, a, b, /*boolean=*/false,
                      net.cost().wordSeparation());
}

MatMulResult
boolMatMulPipelined(OrthogonalTreesNetwork &net, const linalg::BoolMatrix &a,
                    const linalg::BoolMatrix &b)
{
    // Boolean elements are single bits: unit pipeline separation
    // (Section VI-B: "the interval between successive elements in a
    // pipeline can be reduced to O(1)").
    return matMulImpl(net, widen(a), widen(b), /*boolean=*/true, 1);
}

MatMulStreamResult
matMulStream(OrthogonalTreesNetwork &net,
             const std::vector<linalg::IntMatrix> &as,
             const linalg::IntMatrix &b)
{
    MatMulStreamResult result;
    if (as.empty())
        return result;
    const std::size_t m = b.rows();
    const ModelTime sep = net.cost().wordSeparation();

    ModelTime start = net.now();
    sim::ScopedPhase phase(net.acct(), "matmul-stream-otn");
    net.loadBase(Reg::B, b);

    for (std::size_t idx = 0; idx < as.size(); ++idx) {
        const auto &a = as[idx];
        assert(a.rows() == m && a.cols() == m);
        linalg::IntMatrix product(m, m, 0);
        for (std::size_t i = 0; i < m; ++i) {
            if (idx == 0 && i == 0) {
                // Only the very first row pays the fill latency.
                vecMatBody(net, a.row(0), /*boolean=*/false);
            } else {
                net.runUncharged(
                    [&] { vecMatBody(net, a.row(i), false); });
                net.charge(sep);
            }
            const auto &out = net.colRootOutputs();
            for (std::size_t j = 0; j < m; ++j)
                product(i, j) = out[j];
        }
        result.products.push_back(std::move(product));
    }

    result.matrixInterval = m * sep;
    result.totalTime = net.now() - start;
    return result;
}

MatMulResult
boolMatMulReplicated(OrthogonalTreesNetwork &block,
                     const linalg::BoolMatrix &a,
                     const linalg::BoolMatrix &b)
{
    assert(a.rows() == a.cols() && b.rows() == b.cols());
    assert(a.cols() == b.rows() && a.rows() <= block.n());
    const std::size_t m = a.rows();

    MatMulResult result;
    result.product = linalg::IntMatrix(m, m, 0);

    ModelTime start = block.now();
    sim::ScopedPhase phase(block.acct(), "bool-matmul-replicated");

    // Distribute B to all N blocks: a pipelined broadcast through a
    // depth-log(N) distribution tree; with bit-entries streaming at
    // unit separation this is O(log^2 N).  Charged once — the blocks
    // all receive simultaneously.
    block.loadBase(Reg::B, widen(b), /*charged=*/true, /*separation=*/1);

    // Every block computes its row's vector product concurrently; the
    // charged time is ONE product (they are disjoint hardware).  We
    // reuse the single physical block per row, which is exact because
    // the products share only B.
    ModelTime one_product = 0;
    for (std::size_t i = 0; i < m; ++i) {
        std::vector<std::uint64_t> row = [&] {
            std::vector<std::uint64_t> r(m);
            for (std::size_t j = 0; j < m; ++j)
                r[j] = a(i, j) ? 1 : 0;
            return r;
        }();
        ModelTime t =
            block.runUncharged([&] { vecMatBody(block, row, true); });
        one_product = std::max(one_product, t);
        const auto &out = block.colRootOutputs();
        for (std::size_t j = 0; j < m; ++j)
            result.product(i, j) = out[j] ? 1 : 0;
    }
    block.charge(one_product);

    result.firstRowLatency = block.now() - start;
    result.rowInterval = 0;
    result.time = block.now() - start;
    return result;
}

} // namespace ot::otn

/**
 * @file
 * Order statistics on the OTN.
 *
 * SORT-OTN's middle (Section II-B steps 1-4) computes every element's
 * global rank without moving the data; selection just reads one rank
 * back instead of all of them, so the k-th smallest of N values costs
 * the same O(log^2 N) as a full sort — a corollary of the paper's
 * rank-counting technique (Muller & Preparata [18]) worth exposing as
 * API: medians and quantiles are the common downstream use.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "otn/network.hh"

namespace ot::otn {

/** Result of a selection query. */
struct SelectResult
{
    /** The k-th smallest value (0-based k). */
    std::uint64_t value = 0;
    /** Its position in the input vector. */
    std::size_t index = 0;
    /** Model time of the run. */
    ModelTime time = 0;
};

/**
 * The k-th smallest of `values` (0-based; duplicates resolved by input
 * position, matching SORT-OTN's tie-break).  Requires
 * values.size() <= net.n() and k < values.size().
 */
SelectResult selectKthOtn(OrthogonalTreesNetwork &net,
                          const std::vector<std::uint64_t> &values,
                          std::size_t k);

/** The lower median (k = (size-1)/2). */
SelectResult medianOtn(OrthogonalTreesNetwork &net,
                       const std::vector<std::uint64_t> &values);

} // namespace ot::otn

#include "otn/mesh_of_trees_3d.hh"

#include <cassert>
#include <vector>

#include "vlsi/bitmath.hh"

namespace ot::otn {

MeshOfTrees3d::MeshOfTrees3d(std::size_t n, const vlsi::CostModel &cost)
    : _n(vlsi::nextPow2(n ? n : 1)),
      _cost(cost),
      // The 2D embedding lays the N planes side by side, so leaves of
      // one axis line sit Theta(N) * pitch apart; with the BP pitch of
      // Theta(log N) the inter-leaf distance is Theta(N log N)...
      // dominated by the plane stride Theta(N).  We embed each axis
      // tree over N leaves with pitch N (the plane stride), giving the
      // Theta(N^2) longest wires of the O(N^4)-area layout.
      _axisTree(_n, _n)
{
}

std::uint64_t
MeshOfTrees3d::chipArea() const
{
    // Theta(N^4): N^3 cells of Theta(1) area plus 3 N^2 trees whose
    // wiring dominates; side Theta(N^2).
    std::uint64_t side = std::uint64_t{_n} * _n +
                         std::uint64_t{_n} * vlsi::logCeilAtLeast1(_n);
    return side * side;
}

vlsi::WireLength
MeshOfTrees3d::longestWire() const
{
    return _axisTree.longestEdge();
}

ModelTime
MeshOfTrees3d::treeTraversalCost() const
{
    return _cost.wordAlongPath(_axisTree.pathEdges());
}

ModelTime
MeshOfTrees3d::treeReduceCost() const
{
    return _cost.reducePath(_axisTree.pathEdges());
}

MatMulResult
MeshOfTrees3d::multiplyImpl(const linalg::IntMatrix &a,
                            const linalg::IntMatrix &b, bool boolean)
{
    const std::size_t m = a.rows();
    assert(a.cols() == m && b.rows() == m && b.cols() == m && m <= _n);

    ModelTime start = _acct.now();
    sim::ScopedPhase phase(_acct, boolean ? "mot3d-bool-matmul"
                                          : "mot3d-matmul");

    // Phase 1 + 2: both fan-outs happen on disjoint trees, so they
    // overlap; charge one traversal for each phase boundary.
    // cell(i, j, k) = a(i, k), b(k, j).
    _acct.advance(treeTraversalCost());
    _acct.advance(treeTraversalCost());
    ++_stats.counter("mot3d.broadcasts");

    // Multiply in every cell (all N^3 concurrently).
    ModelTime mul_cost = boolean ? 1 : _cost.bitSerialMultiply();
    _acct.advance(mul_cost);

    // Phase 3: SUM up the k-axis trees; root of line (i, j, *) = c(i,j).
    _acct.advance(treeReduceCost());
    ++_stats.counter("mot3d.reductions");

    MatMulResult result;
    result.product = linalg::IntMatrix(m, m, 0);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < m; ++j) {
            std::uint64_t acc = 0;
            for (std::size_t k = 0; k < m; ++k) {
                std::uint64_t prod = a(i, k) * b(k, j);
                if (boolean)
                    acc = acc | (prod ? 1 : 0);
                else
                    acc += prod;
            }
            result.product(i, j) = acc;
        }
    }

    result.time = _acct.now() - start;
    result.firstRowLatency = result.time;
    result.rowInterval = 0;
    return result;
}

MatMulResult
MeshOfTrees3d::matMul(const linalg::IntMatrix &a, const linalg::IntMatrix &b)
{
    return multiplyImpl(a, b, /*boolean=*/false);
}

MatMulResult
MeshOfTrees3d::boolMatMul(const linalg::BoolMatrix &a,
                          const linalg::BoolMatrix &b)
{
    linalg::IntMatrix ai(a.rows(), a.cols(), 0), bi(b.rows(), b.cols(), 0);
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            ai(i, j) = a(i, j) ? 1 : 0;
    for (std::size_t i = 0; i < b.rows(); ++i)
        for (std::size_t j = 0; j < b.cols(); ++j)
            bi(i, j) = b(i, j) ? 1 : 0;
    return multiplyImpl(ai, bi, /*boolean=*/true);
}

} // namespace ot::otn

#include "otn/patterns.hh"

namespace ot::otn {

ModelTime
diagToRows(OrthogonalTreesNetwork &net, Reg src, Reg dst)
{
    return net.parallelFor(net.n(), [&](std::size_t i) {
        net.leafToLeaf(Axis::Row, i, Sel::diag(), src, Sel::all(), dst);
    });
}

ModelTime
diagToCols(OrthogonalTreesNetwork &net, Reg src, Reg dst)
{
    return net.parallelFor(net.n(), [&](std::size_t j) {
        net.leafToLeaf(Axis::Col, j, Sel::diag(), src, Sel::all(), dst);
    });
}

ModelTime
gatherAtIndex(OrthogonalTreesNetwork &net, Reg key_by_row, Reg val_by_col,
              Reg out, Reg scratch)
{
    ModelTime dt = 0;

    // Each BP checks whether it sits at (i, key(i)); the selected BP
    // copies the column-broadcast value into the scratch register.
    dt += net.baseOp(net.cost().bitSerialOp(),
                     [&](std::size_t i, std::size_t j) {
                         bool selected = net.reg(key_by_row, i, j) == j;
                         net.reg(scratch, i, j) =
                             selected ? net.reg(val_by_col, i, j) : kNull;
                     });

    // Row reduction brings the (unique or absent) value to the root,
    // and the root writes it back to the diagonal.
    dt += net.parallelFor(net.n(), [&](std::size_t i) {
        net.minLeafToRoot(Axis::Row, i, Sel::all(), scratch);
        net.rootToLeaf(Axis::Row, i, Sel::diag(), out);
    });
    return dt;
}

} // namespace ot::otn

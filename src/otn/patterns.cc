#include "otn/patterns.hh"

namespace ot::otn {

ModelTime
diagToRows(OrthogonalTreesNetwork &net, Reg src, Reg dst)
{
    // Batch form of: for each row i pardo
    //   leafToLeaf(Row, i, diag, src, all, dst).
    return net.batchDiagToRows(src, dst);
}

ModelTime
diagToCols(OrthogonalTreesNetwork &net, Reg src, Reg dst)
{
    // Batch form of: for each col j pardo
    //   leafToLeaf(Col, j, diag, src, all, dst).
    return net.batchDiagToCols(src, dst);
}

ModelTime
gatherAtIndex(OrthogonalTreesNetwork &net, Reg key_by_row, Reg val_by_col,
              Reg out, Reg scratch)
{
    ModelTime dt = 0;

    // Each BP checks whether it sits at (i, key(i)); the selected BP
    // copies the column-broadcast value into the scratch register.
    dt += net.batchSelectValAtKeyIndex(key_by_row, val_by_col, scratch);

    // Row reduction brings the (unique or absent) value to the root,
    // and the root writes it back to the diagonal.
    dt += net.batchMinRowsToDiag(scratch, out);
    return dt;
}

} // namespace ot::otn

#include "otn/dft.hh"

#include <cassert>
#include <cmath>
#include <numbers>

#include "otn/bitonic.hh"
#include "vlsi/bitmath.hh"

namespace ot::otn {

DftResult
dftOtn(OrthogonalTreesNetwork &net, const std::vector<linalg::Complex> &x)
{
    const std::size_t k = net.n();
    const std::size_t n = k * k;
    assert(x.size() == n);
    const unsigned logn = vlsi::ilog2Ceil(n);

    DftResult result;
    ModelTime start = net.now();
    sim::ScopedPhase phase(net.acct(), "dft-otn");

    // Input load: K words through each row tree, complex = two words.
    net.charge(vlsi::CostModel::pipelineTotal(
        net.treeTraversalCost(), 2 * k, net.cost().wordSeparation()));

    // Bit-reversal permutation.  Reversing the 2 log K index bits of
    // l = (i, j) maps (i, j) -> (rev(j), rev(i)): a row-tree
    // permutation (j -> rev j, all rows in parallel) followed by a
    // column-tree permutation (i -> rev i).  Each phase is priced by
    // the congestion of the bit-reversal pattern through one tree
    // (permutationCost); complex elements are two machine words.
    std::vector<linalg::Complex> a(n);
    for (std::size_t l = 0; l < n; ++l)
        a[vlsi::reverseBits(l, logn)] = x[l];
    {
        const unsigned logk = vlsi::ilog2Ceil(k);
        std::vector<std::size_t> bitrev(k);
        for (std::size_t j = 0; j < k; ++j)
            bitrev[j] = vlsi::reverseBits(j, logk);
        net.charge(2 * 2 * net.permutationCost(bitrev));
    }

    // Butterfly stages, distances 1, 2, ..., n/2; the communication is
    // the same pattern as the bitonic COMPEX at distance d (a complex
    // element is two machine words, hence the factor 2), and each BP
    // then does a complex multiply-add.
    for (std::size_t len = 2; len <= n; len <<= 1) {
        std::size_t d = len / 2;
        double angle = -2.0 * std::numbers::pi / static_cast<double>(len);
        linalg::Complex wlen(std::cos(angle), std::sin(angle));
        for (std::size_t i = 0; i < n; i += len) {
            linalg::Complex w = 1;
            for (std::size_t j = 0; j < len / 2; ++j) {
                linalg::Complex u = a[i + j];
                linalg::Complex v = a[i + j + d] * w;
                a[i + j] = u + v;
                a[i + j + d] = u - v;
                w *= wlen;
            }
        }
        net.charge(2 * compexStageCost(net, d) +
                   net.cost().bitSerialMultiply());
        ++result.stages;
        ++net.stats().counter("otn.dftStage");
    }

    result.spectrum = std::move(a);
    result.time = net.now() - start;
    return result;
}

} // namespace ot::otn

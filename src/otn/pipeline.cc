#include "otn/pipeline.hh"

namespace ot::otn {

SortPipelineResult
sortPipelineOtn(OrthogonalTreesNetwork &net,
                const std::vector<std::vector<std::uint64_t>> &problems)
{
    SortPipelineResult result;
    if (problems.empty())
        return result;

    ModelTime start = net.now();
    sim::ScopedPhase phase(net.acct(), "sort-pipeline-otn");

    // Three phases in flight per problem (Section VIII): each BP
    // devotes three word-length time slices per pipeline beat.
    const ModelTime beat = 3 * net.cost().wordSeparation();

    // First problem sets the fill latency of the pipe.
    result.sorted.push_back(sortOtn(net, problems.front()).sorted);
    result.firstLatency = net.now() - start;

    // Subsequent problems drain one beat apart.
    for (std::size_t p = 1; p < problems.size(); ++p) {
        net.runUncharged([&] {
            result.sorted.push_back(sortOtn(net, problems[p]).sorted);
        });
        net.charge(beat);
    }

    result.problemInterval = beat;
    result.totalTime = net.now() - start;
    return result;
}

} // namespace ot::otn

#include "otn/closure.hh"

#include <algorithm>

#include "otn/matmul.hh"
#include "vlsi/bitmath.hh"

namespace ot::otn {

ClosureResult
transitiveClosureOtn(OrthogonalTreesNetwork &net, const graph::Graph &g,
                     bool replicated)
{
    const std::size_t v = g.vertices();
    assert(v <= net.n());

    ModelTime start = net.now();
    sim::ScopedPhase phase(net.acct(), "transitive-closure-otn");

    // reach := A + I.
    linalg::BoolMatrix reach(v, v, 0);
    for (std::size_t i = 0; i < v; ++i)
        for (std::size_t j = 0; j < v; ++j)
            reach(i, j) = (i == j || g.hasEdge(i, j)) ? 1 : 0;

    ClosureResult result;
    const unsigned rounds = vlsi::logCeilAtLeast1(v);
    for (unsigned s = 0; s < rounds; ++s) {
        MatMulResult mm = replicated
                              ? boolMatMulReplicated(net, reach, reach)
                              : boolMatMulPipelined(net, reach, reach);
        for (std::size_t i = 0; i < v; ++i)
            for (std::size_t j = 0; j < v; ++j)
                reach(i, j) = mm.product(i, j) ? 1 : 0;
        ++result.squarings;
    }

    result.reach = std::move(reach);
    result.time = net.now() - start;
    return result;
}

std::vector<std::size_t>
componentsViaClosure(OrthogonalTreesNetwork &net, const graph::Graph &g)
{
    auto closure = transitiveClosureOtn(net, g);
    const std::size_t v = g.vertices();

    // label(i) = min j with reach(i, j): per row, one MIN reduction
    // over the column indices of the set bits.  The reach bits are in
    // the base after the last product; reload them (charged) and take
    // the row minima of index words.
    {
        linalg::IntMatrix idx(net.n(), net.n(), 0);
        for (std::size_t i = 0; i < v; ++i)
            for (std::size_t j = 0; j < v; ++j)
                idx(i, j) = closure.reach(i, j) ? j : kNull;
        for (std::size_t i = 0; i < net.n(); ++i)
            for (std::size_t j = 0; j < net.n(); ++j)
                if (i >= v || j >= v)
                    idx(i, j) = kNull;
        net.loadBase(Reg::X, idx, /*charged=*/true, /*separation=*/1);
    }
    net.parallelFor(net.n(), [&](std::size_t i) {
        net.minLeafToRoot(Axis::Row, i, Sel::all(), Reg::X);
    });

    std::vector<std::size_t> labels(v);
    for (std::size_t i = 0; i < v; ++i)
        labels[i] = static_cast<std::size_t>(net.rowRoot(i));
    return labels;
}

} // namespace ot::otn

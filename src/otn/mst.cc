#include "otn/mst.hh"

#include <algorithm>
#include <set>

#include "otn/patterns.hh"
#include "vlsi/bitmath.hh"

namespace ot::otn {

namespace {

/*
 * Register allocation (mirrors connected_components.cc):
 *   A  edge weights (kNull = no edge)
 *   D  component label on the diagonal
 *   B  D along rows, C  D down columns
 *   T  packed candidate edges in the base
 *   E  per-vertex best edge along rows
 *   H  per-component best edge down columns
 *   G  newC on the diagonal;  X/R/Y/F gather scratch
 */

/** Pack (w, u, v) so that numeric order is (w, u, v) lexicographic. */
std::uint64_t
packEdge(std::uint64_t w, std::uint64_t u, std::uint64_t v, unsigned idx_bits)
{
    return (w << (2 * idx_bits)) | (u << idx_bits) | v;
}

std::uint64_t
packedV(std::uint64_t packed, unsigned idx_bits)
{
    return packed & ((std::uint64_t{1} << idx_bits) - 1);
}

std::uint64_t
packedU(std::uint64_t packed, unsigned idx_bits)
{
    return (packed >> idx_bits) & ((std::uint64_t{1} << idx_bits) - 1);
}

std::uint64_t
packedW(std::uint64_t packed, unsigned idx_bits)
{
    return packed >> (2 * idx_bits);
}

} // namespace

vlsi::WordFormat
mstWordFormat(std::size_t n, std::uint64_t max_weight)
{
    unsigned idx_bits = vlsi::logCeilAtLeast1(vlsi::nextPow2(n ? n : 1));
    unsigned w_bits = vlsi::logCeilAtLeast1(max_weight + 1) + 1;
    // One spare bit keeps every packed word strictly below kNull.
    return vlsi::WordFormat(2 * idx_bits + w_bits + 1);
}

MstResult
mstOtn(OrthogonalTreesNetwork &net, const graph::WeightedGraph &g,
       bool charge_load)
{
    const std::size_t n = net.n();
    assert(g.vertices() <= n);
    const unsigned log_n = vlsi::logCeilAtLeast1(n);
    const unsigned idx_bits = log_n;

    ModelTime start = net.now();
    sim::ScopedPhase phase(net.acct(), "mst-otn");

    // Load the weight matrix (kNull marks absent edges).
    {
        linalg::IntMatrix w(n, n, 0);
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = 0; j < n; ++j)
                w(i, j) = (i < g.vertices() && j < g.vertices() &&
                           g.hasEdge(i, j))
                              ? g.weight(i, j)
                              : kNull;
        // Check the packed form fits the machine word.
        for (std::size_t i = 0; i < g.vertices(); ++i)
            for (std::size_t j = 0; j < g.vertices(); ++j)
                if (g.hasEdge(i, j))
                    assert(net.fitsWord(
                        packEdge(g.weight(i, j), i, j, idx_bits)));
        net.loadBase(Reg::A, w, charge_load);
    }

    net.baseOp(net.cost().bitSerialOp(), [&](std::size_t i, std::size_t j) {
        if (i == j)
            net.reg(Reg::D, i, j) = i;
    });

    std::set<std::pair<std::size_t, std::size_t>> chosen;
    const unsigned iterations = log_n + 1;

    for (unsigned iter = 0; iter < iterations; ++iter) {
        diagToRows(net, Reg::D, Reg::B);
        diagToCols(net, Reg::D, Reg::C);

        // Candidate outgoing edges, packed (w, u, v).
        net.baseOp(net.cost().bitSerialOp(),
                   [&](std::size_t i, std::size_t j) {
                       std::uint64_t w = net.reg(Reg::A, i, j);
                       bool foreign = net.reg(Reg::B, i, j) !=
                                      net.reg(Reg::C, i, j);
                       net.reg(Reg::T, i, j) =
                           (w != kNull && foreign)
                               ? packEdge(w, i, j, idx_bits)
                               : kNull;
                   });

        // Per-vertex minimum edge, fanned along the row.
        net.parallelFor(n, [&](std::size_t i) {
            net.minLeafToRoot(Axis::Row, i, Sel::all(), Reg::T);
            net.rootToLeaf(Axis::Row, i, Sel::all(), Reg::E);
        });

        // Per-component minimum edge (members have B(i, j) == j),
        // latched on the diagonal.
        net.parallelFor(n, [&](std::size_t j) {
            net.minLeafToRoot(Axis::Col, j, Sel::regEq(Reg::B, j), Reg::E);
            net.rootToLeaf(Axis::Col, j, Sel::diag(), Reg::H);
        });

        // Record chosen edges (the roots output them) and derive the
        // hook key: the far endpoint v of the chosen edge.
        net.baseOp(net.cost().bitSerialOp(),
                   [&](std::size_t i, std::size_t j) {
                       if (i != j)
                           return;
                       std::uint64_t best = net.reg(Reg::H, i, j);
                       if (best == kNull) {
                           net.reg(Reg::X, i, j) = kNull;
                           return;
                       }
                       auto u = packedU(best, idx_bits);
                       auto v = packedV(best, idx_bits);
                       assert(packedW(best, idx_bits) == g.weight(u, v));
                       chosen.insert({std::min(u, v), std::max(u, v)});
                       net.reg(Reg::X, i, j) = v;
                   });

        // newC(r) = D(v): label of the component at the far end.
        diagToRows(net, Reg::X, Reg::X); // fan the key along rows
        gatherAtIndex(net, Reg::X, Reg::C, Reg::Y, Reg::F);
        net.baseOp(net.cost().bitSerialOp(),
                   [&](std::size_t i, std::size_t j) {
                       if (i != j)
                           return;
                       std::uint64_t target = net.reg(Reg::Y, i, j);
                       net.reg(Reg::G, i, j) =
                           target == kNull ? j : target;
                   });

        // 2-cycle fix: mutual hooks keep the smaller label.
        diagToRows(net, Reg::G, Reg::X);
        diagToCols(net, Reg::G, Reg::R);
        gatherAtIndex(net, Reg::X, Reg::R, Reg::Y, Reg::F);
        net.baseOp(net.cost().bitSerialOp(),
                   [&](std::size_t i, std::size_t j) {
                       if (i != j)
                           return;
                       std::uint64_t new_c = net.reg(Reg::G, i, j);
                       std::uint64_t back = net.reg(Reg::Y, i, j);
                       if (back == j && new_c != j && j < new_c)
                           net.reg(Reg::G, i, j) = j;
                   });

        // Relabel all vertices: D(i) := newC(D(i)).
        diagToCols(net, Reg::G, Reg::R);
        gatherAtIndex(net, Reg::B, Reg::R, Reg::Y, Reg::F);
        net.baseOp(net.cost().bitSerialOp(),
                   [&](std::size_t i, std::size_t j) {
                       if (i == j)
                           net.reg(Reg::D, i, j) = net.reg(Reg::Y, i, j);
                   });

        // Pointer jumping to a star.
        for (unsigned jump = 0; jump < log_n; ++jump) {
            diagToRows(net, Reg::D, Reg::B);
            diagToCols(net, Reg::D, Reg::C);
            gatherAtIndex(net, Reg::B, Reg::C, Reg::Y, Reg::F);
            net.baseOp(net.cost().bitSerialOp(),
                       [&](std::size_t i, std::size_t j) {
                           if (i == j)
                               net.reg(Reg::D, i, j) =
                                   net.reg(Reg::Y, i, j);
                       });
        }
    }

    MstResult result;
    result.iterations = iterations;
    for (auto [u, v] : chosen)
        result.edges.push_back({u, v, g.weight(u, v)});
    std::sort(result.edges.begin(), result.edges.end(),
              [](const graph::Edge &a, const graph::Edge &b) {
                  return std::tie(a.w, a.u, a.v) <
                         std::tie(b.w, b.u, b.v);
              });
    result.totalWeight = graph::totalWeight(result.edges);
    result.time = net.now() - start;
    return result;
}

} // namespace ot::otn

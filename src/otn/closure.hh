/**
 * @file
 * Transitive closure / reachability on the OTN.
 *
 * The natural companion of the paper's Boolean matrix multiplication:
 * reach = (A + I)^(2^ceil(log N)) by repeated Boolean squaring, each
 * squaring a Table II product.  Savage's AT^2 lower bounds for
 * transitive closure [27] are part of the background the paper's
 * comparison rests on.  With the replicated-block (log^2 N per
 * product) machine the closure costs O(log^3 N); with the pipelined
 * N x N machine it costs O(N log N).
 *
 * Also derives connected components from the closure (the min
 * reachable vertex per row), which cross-checks the Section III
 * CONNECT implementation through a completely different algorithm.
 */

#pragma once

#include "graph/graph.hh"
#include "linalg/matrix.hh"
#include "otn/network.hh"

namespace ot::otn {

/** Result of a transitive-closure run. */
struct ClosureResult
{
    /** reach(i, j) = 1 iff j is reachable from i (reflexive). */
    linalg::BoolMatrix reach;
    /** Model time of the run. */
    ModelTime time = 0;
    /** Squarings performed: ceil(log2 N). */
    unsigned squarings = 0;
};

/**
 * Reflexive-transitive closure of the adjacency matrix on `net`
 * (n() >= vertices).  `replicated` selects the log^2 N-per-product
 * machine of Table II; otherwise the pipelined N x N machine is used.
 */
ClosureResult transitiveClosureOtn(OrthogonalTreesNetwork &net,
                                   const graph::Graph &g,
                                   bool replicated = true);

/**
 * Connected components via the closure: label(v) = min reachable
 * vertex.  An independent cross-check of connectedComponentsOtn.
 */
std::vector<std::size_t> componentsViaClosure(OrthogonalTreesNetwork &net,
                                              const graph::Graph &g);

} // namespace ot::otn

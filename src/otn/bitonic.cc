#include "otn/bitonic.hh"

#include <cassert>
#include <span>

#include "vlsi/bitmath.hh"

namespace ot::otn {

namespace {

/**
 * One Batcher compare-exchange sweep at linear distance d over the
 * base (element at linear index l in BP(l / K, l % K)); `size` is the
 * current bitonic block size fixing the sort direction.
 */
void
compexSweep(OrthogonalTreesNetwork &net, std::size_t size, std::size_t d,
            CompexSchedule schedule)
{
    const std::size_t k = net.n();
    const std::size_t total = k * k;
    // Element at linear index l lives at plane word l (row-major), so
    // the whole sweep is one batch min/max pass over register A's
    // contiguous plane — horizontal (d < K) and vertical exchanges
    // alike.
    net.kernelTable().compexLinear(net.regPlane(Reg::A), total, d, size);
    net.charge(compexStageCost(net, d, schedule));
    ++net.stats().counter("otn.compexSweep");
}

void
loadLinear(OrthogonalTreesNetwork &net,
           const std::vector<std::uint64_t> &values, bool charged)
{
    const std::size_t k = net.n();
    const std::size_t total = k * k;
    assert(values.size() <= total);
    for (std::size_t l = 0; l < total; ++l) {
        std::uint64_t v = l < values.size() ? values[l] : kNull;
        assert(net.fitsWord(v));
        net.reg(Reg::A, l / k, l % k) = v;
    }
    if (charged) {
        // K words stream through each of the K row trees in parallel.
        net.charge(vlsi::CostModel::pipelineTotal(
            net.treeTraversalCost(), k, net.cost().wordSeparation()));
    }
}

std::vector<std::uint64_t>
readLinear(const OrthogonalTreesNetwork &net, std::size_t count)
{
    const std::size_t k = net.n();
    std::vector<std::uint64_t> out(count);
    for (std::size_t l = 0; l < count; ++l)
        out[l] = net.reg(Reg::A, l / k, l % k);
    return out;
}

} // namespace

ModelTime
compexStageCost(const OrthogonalTreesNetwork &net, std::size_t d,
                CompexSchedule schedule)
{
    const std::size_t k = net.n();
    const auto &cm = net.cost();
    // Leaf distance within the vector the exchange uses: row trees for
    // d < K (horizontal), column trees otherwise (vertical).
    std::size_t e = d < k ? d : d / k;
    // Pairs (q, q ^ e) route through the root of their aligned 2e-leaf
    // subtree: the bottom (log2 e + 1) levels of the tree.
    unsigned h = vlsi::ilog2Ceil(2 * e);
    const auto &path = net.chipLayout().tree().pathEdges();
    assert(h <= path.size());
    std::span<const vlsi::WireLength> bottom(path.data() + (path.size() - h),
                                             h);
    // Up and down through the subtree, e words through the subtree
    // root, plus the compare at the leaves.  Under the strict schedule
    // the words queue at word separation; under the streamed schedule
    // ([21]) successive words follow bit-on-bit with unit gaps.
    ModelTime one_way = cm.wordAlongPath(bottom);
    ModelTime per_word = schedule == CompexSchedule::Strict
                             ? cm.wordSeparation()
                             : 1;
    ModelTime stream = (e - 1) * per_word;
    return 2 * one_way + stream + cm.bitSerialOp();
}

BitonicResult
bitonicSortOtn(OrthogonalTreesNetwork &net,
               const std::vector<std::uint64_t> &values,
               CompexSchedule schedule)
{
    const std::size_t total = net.n() * net.n();

    BitonicResult result;
    ModelTime start = net.now();
    sim::ScopedPhase phase(net.acct(), "bitonic-sort-otn");
    loadLinear(net, values, /*charged=*/true);

    for (std::size_t size = 2; size <= total; size <<= 1) {
        for (std::size_t d = size / 2; d >= 1; d >>= 1) {
            compexSweep(net, size, d, schedule);
            ++result.stages;
        }
    }

    result.sorted = readLinear(net, values.size());
    result.time = net.now() - start;
    return result;
}

BitonicResult
bitonicMergeOtn(OrthogonalTreesNetwork &net,
                const std::vector<std::uint64_t> &values)
{
    const std::size_t total = net.n() * net.n();
    // Padding an arbitrary bitonic sequence would break bitonicity, so
    // merging requires a full load.
    assert(values.size() == total);

    BitonicResult result;
    ModelTime start = net.now();
    sim::ScopedPhase phase(net.acct(), "bitonic-merge-otn");
    loadLinear(net, values, /*charged=*/true);

    for (std::size_t d = total / 2; d >= 1; d >>= 1) {
        compexSweep(net, total, d, CompexSchedule::Strict);
        ++result.stages;
    }

    result.sorted = readLinear(net, values.size());
    result.time = net.now() - start;
    return result;
}

} // namespace ot::otn

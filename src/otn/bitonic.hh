/**
 * @file
 * Bitonic merging/sorting on a (K x K)-OTN holding one element per BP
 * (Section IV of the paper): N = K^2 numbers sorted with Batcher's
 * bitonic network, compare-exchange steps at distance d implemented
 * by COMPEX-OTN — routing through the row trees (d within a row) or
 * column trees (d across rows).
 *
 * Cost accounting: a compare-exchange at leaf distance e within a
 * vector routes e words through the root of each aligned 2e-leaf
 * subtree, bit-serially.  Charging the subtree traversal latency plus
 * the serialized word stream gives O(sum over stages of e * log N) =
 * O(sqrt(N) log^2 N) total — one log N factor above the paper's
 * O(sqrt(N) log N) claim, whose tighter word-streaming schedule is
 * only derived in the thesis it cites [21]; the dominant sqrt(N)
 * growth and the area-time trade-off against the mesh (Section IV-A's
 * closing remark) are preserved.  See EXPERIMENTS.md.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "otn/network.hh"

namespace ot::otn {

/** Result of a bitonic sort run. */
struct BitonicResult
{
    std::vector<std::uint64_t> sorted;
    ModelTime time = 0;
    /** Compare-exchange stages executed: log N (log N + 1) / 2. */
    unsigned stages = 0;
};

/**
 * COMPEX word-scheduling assumptions (the source of the one-log gap
 * between our default accounting and the paper's O(sqrt(N) log N)).
 */
enum class CompexSchedule {
    /**
     * Strict: the e words crossing each subtree root queue at word
     * separation (bit-serial wire, no overlap between stages):
     * Theta(sqrt(N) log^2 N) total.
     */
    Strict,
    /**
     * Streamed: successive words and successive stages overlap
     * bit-serially (each word's bits follow the previous word's with
     * unit gap, and the next stage starts as soon as its first
     * operands land) — the tighter schedule of the thesis the paper
     * cites [21], recovering Theta(sqrt(N) log N).
     */
    Streamed,
};

/**
 * Sort values.size() <= K^2 numbers on the (K x K)-OTN `net` (values
 * padded with kNull, which sorts last).  Returns ascending order.
 */
BitonicResult bitonicSortOtn(OrthogonalTreesNetwork &net,
                             const std::vector<std::uint64_t> &values,
                             CompexSchedule schedule =
                                 CompexSchedule::Strict);

/**
 * BITONICMERGE-OTN: merge a single bitonic sequence of length
 * values.size() <= K^2 into ascending order.
 */
BitonicResult bitonicMergeOtn(OrthogonalTreesNetwork &net,
                              const std::vector<std::uint64_t> &values);

/**
 * Model time of one COMPEX stage at linear distance d on a (K x K)
 * base (exposed for the bench's stage-cost breakdown).
 */
ModelTime compexStageCost(const OrthogonalTreesNetwork &net, std::size_t d,
                          CompexSchedule schedule =
                              CompexSchedule::Strict);

} // namespace ot::otn

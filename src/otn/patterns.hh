/**
 * @file
 * Recurring communication patterns built from the Section II-B
 * primitives, used by the graph algorithms of Section III.
 *
 * The graph algorithms keep one word per *vertex* (e.g. the component
 * label D(i)) in the diagonal BP(i, i) and repeatedly need to
 *
 *   - fan a vertex word out along its row (diagToRows) or its column
 *     (diagToCols), and
 *   - evaluate "indirection" D(f(i)): fetch, for every vertex i, the
 *     vertex word of the vertex whose index is stored in one of i's
 *     registers (gatherAtIndex) — the heart of pointer jumping.
 *
 * All three are O(log^2 N)-time compositions of tree primitives.
 */

#pragma once

#include "otn/network.hh"

namespace ot::otn {

/**
 * dst(i, j) := src(i, i) for every BP: each row tree broadcasts its
 * diagonal element.  One LEAFTOLEAF per row, all rows in parallel.
 */
ModelTime diagToRows(OrthogonalTreesNetwork &net, Reg src, Reg dst);

/** dst(i, j) := src(j, j): column version of diagToRows. */
ModelTime diagToCols(OrthogonalTreesNetwork &net, Reg src, Reg dst);

/**
 * Indirection through the trees:
 *
 *   out(i, i) := val(key(i))   for every vertex i,
 *
 * where `key_by_row(i, j) = key(i)` has already been fanned out along
 * rows and `val_by_col(i, j) = val(j)` down columns.  BP(i, key(i))
 * recognises itself (key equals its own column index), reads the
 * column-broadcast value, and a row reduction returns it to the
 * diagonal.  Vertices whose key is kNull (or out of range) receive
 * kNull.  `scratch` is clobbered.
 */
ModelTime gatherAtIndex(OrthogonalTreesNetwork &net, Reg key_by_row,
                        Reg val_by_col, Reg out, Reg scratch);

} // namespace ot::otn

/**
 * @file
 * Shortest paths on the OTN via (min, +) products.
 *
 * The paper's Section III builds its graph algorithms from tree
 * reductions over the adjacency/weight matrix; the same machinery
 * supports the (min, +) semiring:
 *
 *  - single-source shortest paths as Bellman-Ford relaxation rounds:
 *    d'(j) = min(d(j), min_k d(k) + w(k, j)) — one ROOTTOLEAF fan-out,
 *    one base add, one column MIN per round, O(log^2 N) each, with at
 *    most `diameter` rounds (a COUNT reduction detects convergence);
 *  - all-pairs shortest paths by repeated (min, +) squaring of the
 *    distance matrix (ceil(log N) squarings, each a pipelined
 *    Section III-A product), verified against Floyd-Warshall.
 *
 * Both use graph::kUnreachable as the machine's NULL-like infinity
 * (addition saturates).
 */

#pragma once

#include "graph/graph.hh"
#include "graph/reference_algorithms.hh"
#include "linalg/matrix.hh"
#include "otn/network.hh"
#include "vlsi/word.hh"

namespace ot::otn {

/** Result of a single-source shortest-paths run. */
struct SsspResult
{
    /** dist[v] from the source (graph::kUnreachable if none). */
    std::vector<std::uint64_t> dist;
    /** Relaxation rounds executed (paths of that many edges covered). */
    unsigned rounds = 0;
    /** Model time of the run. */
    ModelTime time = 0;
};

/** Word format wide enough for path sums on n vertices, weights <= w. */
vlsi::WordFormat pathWordFormat(std::size_t n, std::uint64_t max_weight);

/**
 * Bellman-Ford SSSP on `net` (n() >= g.vertices()).  Early-exits when
 * a round changes nothing (the convergence COUNT is charged).
 */
SsspResult ssspOtn(OrthogonalTreesNetwork &net, const graph::WeightedGraph &g,
                   std::size_t src, bool charge_load = true);

/** Result of an all-pairs shortest-paths run. */
struct ApspResult
{
    /** dist(i, j); kUnreachable when disconnected. */
    linalg::IntMatrix dist;
    /** (min, +) squarings executed: ceil(log2 N). */
    unsigned squarings = 0;
    ModelTime time = 0;
};

/** APSP by repeated (min, +) squaring of the weight matrix. */
ApspResult apspOtn(OrthogonalTreesNetwork &net,
                   const graph::WeightedGraph &g);

} // namespace ot::otn

/**
 * @file
 * The orthogonal trees network (Section II of the paper).
 *
 * An (N x N)-OTN is an N x N matrix of base processors (BPs) in which
 * each row and each column of BPs forms the leaves of a complete
 * binary tree of internal processors (IPs).  The roots of the row
 * trees are the input ports and the roots of the column trees the
 * output ports.  BPs do the processing; IPs route words between BPs
 * and the roots and perform simple combining (count, sum, min) on the
 * way up.
 *
 * This class simulates the machine *functionally* while charging
 * *model time* per Thompson's VLSI rules: every primitive's cost is
 * computed from the wire geometry of a concrete OtnLayout through a
 * CostModel, and accumulated in a TimeAccountant.  Algorithms express
 * the paper's "for each i pardo" with parallelFor, which charges the
 * maximum cost of the enclosed operations instead of their sum — and,
 * through the sim::ChainEngine, spreads the iterations over host
 * threads (OT_HOST_THREADS) with bit-identical model-time accounting.
 */

#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "layout/otn_layout.hh"
#include "linalg/matrix.hh"
#include "otn/registers.hh"
#include "sim/chain_engine.hh"
#include "sim/stats.hh"
#include "sim/time_accountant.hh"
#include "simd/backend.hh"
#include "simd/kernels.hh"
#include "simd/regfile.hh"
#include "trace/tracer.hh"
#include "vlsi/cost_model.hh"
#include "vlsi/word.hh"

namespace ot::otn {

using sim::TimeAccountant;
using vlsi::CostModel;
using vlsi::ModelTime;

/** Row trees or column trees — the "Vector" argument of Section II-B. */
enum class Axis { Row, Col };

/**
 * A leaf predicate over full BP addresses (i = row, j = column) — the
 * paper's "Selector" argument.
 *
 * Sel is a flat value type (a tag plus a few indices), not a
 * std::function: the per-leaf inner loops of the primitives evaluate
 * it with one branch-predictable switch and zero allocations.  The
 * named factories cover every selector the paper's algorithms use;
 * Sel::pred is the escape hatch for arbitrary host predicates (it is
 * the only kind that allocates).
 */
class Sel
{
  public:
    enum class Kind : std::uint8_t {
        All,       ///< every BP of the vector
        None,      ///< no BP
        Diag,      ///< i == j
        RowIs,     ///< i == index
        ColIs,     ///< j == index
        EvenAlong, ///< even position along the vector axis
        RegEq,     ///< machine register reg(r, i, j) == value
        Pred,      ///< arbitrary host predicate
    };

    using Predicate = std::function<bool(std::size_t i, std::size_t j)>;

    /** Every BP of the vector. */
    static Sel all() { return Sel(Kind::All); }

    /** No BP (the empty selection). */
    static Sel none() { return Sel(Kind::None); }

    /** BPs on the main diagonal (i == j). */
    static Sel diag() { return Sel(Kind::Diag); }

    /** BPs in row k (selects one leaf of a column vector). */
    static Sel
    rowIs(std::size_t k)
    {
        Sel s(Kind::RowIs);
        s._index = k;
        return s;
    }

    /** BPs in column k (selects one leaf of a row vector). */
    static Sel
    colIs(std::size_t k)
    {
        Sel s(Kind::ColIs);
        s._index = k;
        return s;
    }

    /** BPs with even position along the vector axis. */
    static Sel
    evenAlong(Axis axis)
    {
        Sel s(Kind::EvenAlong);
        s._axis = axis;
        return s;
    }

    /**
     * BPs whose register r holds `value` — the "flag test" selector
     * every paper algorithm builds its custom predicates from (e.g.
     * SORT-OTN's "rank == i", CONNECT's "B(i, j) == j").
     */
    static Sel
    regEq(Reg r, std::uint64_t value)
    {
        Sel s(Kind::RegEq);
        s._reg = r;
        s._value = value;
        return s;
    }

    /** Escape hatch: an arbitrary predicate over (i, j). */
    static Sel
    pred(Predicate p)
    {
        Sel s(Kind::Pred);
        s._pred = std::make_shared<const Predicate>(std::move(p));
        return s;
    }

    Kind kind() const { return _kind; }
    std::size_t index() const { return _index; }
    Axis axis() const { return _axis; }
    Reg selReg() const { return _reg; }
    std::uint64_t value() const { return _value; }

    const Predicate &
    predicate() const
    {
        assert(_pred);
        return *_pred;
    }

  private:
    explicit Sel(Kind kind) : _kind(kind) {}

    Kind _kind;
    Axis _axis = Axis::Row;
    Reg _reg = Reg::A;
    std::size_t _index = 0;
    std::uint64_t _value = 0;
    std::shared_ptr<const Predicate> _pred;
};

/** The primitives' selector argument type. */
using Selector = Sel;

/** Simulator of an (N x N) orthogonal trees network. */
class OrthogonalTreesNetwork
{
  public:
    /**
     * @param n      Side of the base; rounded up to a power of two.
     * @param cost   Cost rules (delay model, word width, scaling).
     * @param params Layout constants for the chip geometry.
     * @param host_threads Host threads for parallelFor dispatch:
     *               0 = the OT_HOST_THREADS environment switch
     *               (default: hardware concurrency), 1 = sequential.
     *               Model time is bit-identical for every setting.
     */
    OrthogonalTreesNetwork(std::size_t n, const CostModel &cost,
                           layout::LayoutParams params = {},
                           unsigned host_threads = 0);

    virtual ~OrthogonalTreesNetwork() = default;

    /** Base side N. */
    std::size_t n() const { return _n; }

    const CostModel &cost() const { return _cost; }
    const layout::OtnLayout &chipLayout() const { return _layout; }
    TimeAccountant &acct() { return _acct; }
    const TimeAccountant &acct() const { return _acct; }
    sim::StatSet &stats() { return _stats; }

    /** Host threads the engine dispatches parallelFor onto. */
    unsigned hostThreads() const { return _engine.hostThreads(); }

    /**
     * Attach a model-time tracer: every primitive becomes a Span event
     * and every clock tick a Charge event (see trace/tracer.hh).  Pass
     * nullptr to detach; the tracer must outlive the network or be
     * detached first.
     */
    void
    setTracer(trace::Tracer *tracer)
    {
        _acct.setTracer(tracer);
        _engine.setTracer(tracer);
    }

    trace::Tracer *tracer() const { return _engine.tracer(); }

    /** Model time elapsed since construction/reset. */
    ModelTime now() const { return _acct.now(); }

    /** Reset model time and statistics (registers keep their values). */
    void
    resetTime()
    {
        _acct.reset();
        _stats.reset();
    }

    /**
     * Swap the cost rules (e.g. a different delay model).  Rebuilds
     * the layout for the new word width and invalidates the cached
     * tree costs; registers and the clock are untouched.
     */
    void setCostModel(const CostModel &cost);

    // ------------------------------------------------------------------
    // Register file and I/O ports
    // ------------------------------------------------------------------

    /** Register r of BP(i, j). */
    std::uint64_t &
    reg(Reg r, std::size_t i, std::size_t j)
    {
        assert(i < _n && j < _n);
        return _regs.at(static_cast<unsigned>(r), i * _n + j);
    }

    std::uint64_t
    reg(Reg r, std::size_t i, std::size_t j) const
    {
        assert(i < _n && j < _n);
        return _regs.at(static_cast<unsigned>(r), i * _n + j);
    }

    /**
     * Register r of the whole base as one contiguous row-major plane
     * of n*n words (the struct-of-arrays lane the batch kernels
     * stream).  Row i is the subspan [i*n, (i+1)*n).
     */
    std::uint64_t *
    regPlane(Reg r)
    {
        return _regs.plane(static_cast<unsigned>(r));
    }

    const std::uint64_t *
    regPlane(Reg r) const
    {
        return _regs.plane(static_cast<unsigned>(r));
    }

    /** The SIMD kernel table data movement is routed through. */
    const simd::KernelTable &kernelTable() const { return *_kernels; }

    /** Backend the kernel table was resolved to. */
    simd::Backend simdBackend() const { return _backend; }

    /**
     * Re-route this network's data movement through another compiled
     * backend (differential tests compare scalar against vector paths
     * in one process).  Aborts if `b` was not compiled in.  Model-time
     * accounting is backend-independent by construction.
     */
    void
    setSimdBackend(simd::Backend b)
    {
        _backend = b;
        _kernels = &simd::kernelsFor(b);
    }

    /** Data register at the root of row tree i (input port i). */
    std::uint64_t &rowRoot(std::size_t i) { return _rowRoot[i]; }
    std::uint64_t rowRoot(std::size_t i) const { return _rowRoot[i]; }

    /** Data register at the root of column tree j (output port j). */
    std::uint64_t &colRoot(std::size_t j) { return _colRoot[j]; }
    std::uint64_t colRoot(std::size_t j) const { return _colRoot[j]; }

    /** Load one word per input (row-root) port. */
    void setRowRootInputs(std::span<const std::uint64_t> values);

    /** All output (column-root) ports, as a view (no copy). */
    const std::vector<std::uint64_t> &
    colRootOutputs() const
    {
        return _colRoot;
    }

    /** Fill register r of every BP with `value`. */
    void fillReg(Reg r, std::uint64_t value);

    /** True iff v fits the machine word (kNull is always allowed). */
    bool
    fitsWord(std::uint64_t v) const
    {
        return v == kNull || v <= _cost.word().maxValue();
    }

    // ------------------------------------------------------------------
    // Parallel sections ("for each i pardo ...")
    // ------------------------------------------------------------------

    /**
     * The paper's "for each k (0 <= k < count) pardo body(k)".
     *
     * Each iteration runs on disjoint hardware (a different tree /
     * different BPs), so iterations overlap in time: the primitives
     * *within* one iteration still add up (they are sequential on
     * that hardware), but across iterations only the maximum chain
     * is charged.  Nested parallelFor composes: an inner pardo
     * contributes its (max) cost to the enclosing iteration's chain.
     * Returns the charged (max-of-chains) cost.
     *
     * When the engine is configured with more than one host thread,
     * top-level calls dispatch contiguous iteration blocks onto the
     * shared pool; the charged time is bit-identical either way (see
     * sim/chain_engine.hh).  Iteration bodies must then only touch
     * disjoint machine state, which every "pardo over disjoint
     * trees" algorithm of the paper does by construction.
     */
    ModelTime
    parallelFor(std::size_t count,
                const std::function<void(std::size_t)> &body)
    {
        return _engine.parallelFor(count, body);
    }

    // ------------------------------------------------------------------
    // Primitive operations (Section II-B)
    // ------------------------------------------------------------------

    /**
     * ROOTTOLEAF(Vector, Dest): broadcast the root data register of
     * tree `idx` on `axis` to register `dest` of the selected leaves.
     */
    ModelTime rootToLeaf(Axis axis, std::size_t idx, const Selector &sel,
                         Reg dest);

    /**
     * LEAFTOROOT(Vector, Source): send register `src` of the single
     * selected leaf to the root data register.  If no leaf is
     * selected the root receives kNull; selecting more than one leaf
     * is a programming error (asserted).
     */
    ModelTime leafToRoot(Axis axis, std::size_t idx, const Selector &sel,
                         Reg src);

    /**
     * COUNT-LEAFTOROOT(Vector): count set flags (register `flag` != 0)
     * along the vector into the root data register.
     */
    ModelTime countLeafToRoot(Axis axis, std::size_t idx, Reg flag);

    /** SUM-LEAFTOROOT(Vector, Source): sum of selected registers. */
    ModelTime sumLeafToRoot(Axis axis, std::size_t idx, const Selector &sel,
                            Reg src);

    /**
     * MIN-LEAFTOROOT(Vector, Source): minimum of selected registers
     * (kNull = "no datum" loses to everything; root gets kNull if
     * nothing is selected).
     */
    ModelTime minLeafToRoot(Axis axis, std::size_t idx, const Selector &sel,
                            Reg src);

    // Composite operations: a LEAFTOROOT-flavoured primitive followed
    // by ROOTTOLEAF (Section II-B).

    /** LEAFTOLEAF: one leaf's word redistributed to selected leaves. */
    ModelTime leafToLeaf(Axis axis, std::size_t idx, const Selector &src_sel,
                         Reg src, const Selector &dst_sel, Reg dst);

    /** COUNT-LEAFTOLEAF: flag count delivered to selected leaves. */
    ModelTime countLeafToLeaf(Axis axis, std::size_t idx, Reg flag,
                              const Selector &dst_sel, Reg dst);

    /** SUM-LEAFTOLEAF. */
    ModelTime sumLeafToLeaf(Axis axis, std::size_t idx,
                            const Selector &src_sel, Reg src,
                            const Selector &dst_sel, Reg dst);

    /** MIN-LEAFTOLEAF. */
    ModelTime minLeafToLeaf(Axis axis, std::size_t idx,
                            const Selector &src_sel, Reg src,
                            const Selector &dst_sel, Reg dst);

    // ------------------------------------------------------------------
    // Batch primitives ("for each tree pardo <primitive>")
    // ------------------------------------------------------------------
    //
    // Each batch call is semantically the parallelFor over all N trees
    // (or the whole-base op) written in its doc comment, but the data
    // movement runs level-at-a-time through the SIMD kernel table over
    // contiguous register planes.  Model-time accounting is then
    // replayed per tree under parallelFor exactly as the per-tree
    // formulation would have produced it, so counters, trace streams
    // and the clock are bit-identical to the scalar per-tree path at
    // any OT_HOST_THREADS.

    /** For each row i pardo: rootToLeaf(Row, i, all, dest). */
    ModelTime batchRowBroadcast(Reg dest);

    /** For each row i pardo: leafToLeaf(Row, i, diag, src, all, dst). */
    ModelTime batchDiagToRows(Reg src, Reg dst);

    /** For each col j pardo: leafToLeaf(Col, j, diag, src, all, dst). */
    ModelTime batchDiagToCols(Reg src, Reg dst);

    /** For each row i pardo: countLeafToLeaf(Row, i, flag, all, dst). */
    ModelTime batchCountRowsToLeaves(Reg flag, Reg dst);

    /**
     * For each col j pardo: leafToRoot(Col, j, regEq(key, j), src) —
     * the enumeration sort's output step: column j's root receives the
     * src word of the unique leaf whose key register equals j (kNull
     * if none; more than one is asserted, as in leafToRoot).
     */
    ModelTime batchPickColByKeyIndex(Reg key, Reg src);

    /**
     * For each row i pardo: minLeafToRoot(Row, i, all, src) then
     * rootToLeaf(Row, i, diag, out) — the gather pattern's second
     * phase (row minima delivered to the diagonal).
     */
    ModelTime batchMinRowsToDiag(Reg src, Reg out);

    /**
     * baseOp computing flag = (a > b || (a == b && i > j)) ? 1 : 0 at
     * every BP(i, j) — the enumeration sort's rank comparison, charged
     * one bit-serial op like the equivalent baseOp call.
     */
    ModelTime batchCompareRank(Reg a, Reg b, Reg flag);

    /**
     * baseOp computing out = (key == j) ? val : kNull at every
     * BP(i, j), charged one bit-serial op.
     */
    ModelTime batchSelectValAtKeyIndex(Reg key, Reg val, Reg out);

    /**
     * PERMUTE-LEAFTOLEAF: route dst(perm(k)) := src(k) along one
     * vector through its tree.
     *
     * The cost is congestion-priced: every word whose source and
     * destination lie in different child subtrees of an internal node
     * must cross that node, bit-serially; with the IPs forwarding in
     * a pipeline the completion time is one traversal plus the
     * busiest node's queue drained at word separation.  An identity
     * or shift-by-one permutation therefore costs one traversal,
     * while a reversal serializes K words at the root — exactly the
     * physics that makes LEAFTOLEAF-style algorithms prefer local
     * exchanges.
     *
     * `perm` must be a permutation of 0..n-1 (asserted).
     */
    ModelTime permuteLeafToLeaf(Axis axis, std::size_t idx,
                                std::span<const std::size_t> perm, Reg src,
                                Reg dst);

    /**
     * Cost of routing `perm` through one tree without performing it
     * (exposed for benches and for algorithms that route the same
     * pattern on many vectors at once).
     */
    ModelTime permutationCost(std::span<const std::size_t> perm) const;

    /**
     * PREFIX-LEAFTOLEAF: inclusive prefix sums along a vector,
     * dst(k) = sum of src(0..k).  The classic two-sweep tree scan
     * (up-sweep accumulates subtree sums in the IPs, down-sweep feeds
     * each subtree its left-context), so it costs two combining
     * traversals — the same O(log^2 N) class as the other primitives.
     * Unselected leaves contribute 0 but still receive their prefix.
     */
    ModelTime prefixSumLeafToLeaf(Axis axis, std::size_t idx,
                                  const Selector &src_sel, Reg src,
                                  Reg dst);

    // ------------------------------------------------------------------
    // Base processing
    // ------------------------------------------------------------------

    /**
     * One parallel step of processing in the base: apply `op(i, j)` to
     * every BP and charge `cost` once (all BPs run concurrently).
     * Typical costs: cost().bitSerialOp() for compare/add,
     * cost().bitSerialMultiply() for multiply.  Virtual so machines
     * that *emulate* the OTN base with fewer processors (the OTC,
     * Section V-A) can dilate processing time.
     */
    virtual ModelTime baseOp(ModelTime op_cost,
                             const std::function<void(std::size_t i,
                                                      std::size_t j)> &op);

    /**
     * Per-word transfer cost of one tree traversal (root<->leaf).
     * Cached at first use; emulating machines substitute their own
     * geometry by overriding computeTreeTraversalCost().
     */
    ModelTime
    treeTraversalCost() const
    {
        ModelTime c = _traversalCost.load(std::memory_order_relaxed);
        if (c == kCostUnset) {
            c = computeTreeTraversalCost();
            _traversalCost.store(c, std::memory_order_relaxed);
        }
        return c;
    }

    /** Per-word cost of a combining traversal (COUNT/SUM/MIN). */
    ModelTime
    treeReduceCost() const
    {
        ModelTime c = _reduceCost.load(std::memory_order_relaxed);
        if (c == kCostUnset) {
            c = computeTreeReduceCost();
            _reduceCost.store(c, std::memory_order_relaxed);
        }
        return c;
    }

    /** Charge an explicitly computed pipeline cost (pipedo blocks). */
    void charge(ModelTime dt) { _engine.charge(dt); }

    /**
     * Run `body` with the clock stopped, returning what it *would*
     * have charged (the sum of its chains).  Used by "pipedo" blocks:
     * the i-th instance of a pipelined computation repeats the work of
     * the first functionally, but only the pipeline separation is
     * charged for it (Section III-A).
     */
    ModelTime
    runUncharged(const std::function<void()> &body)
    {
        return _engine.runUncharged(body);
    }

    /**
     * Load a matrix into base register r, m(i, j) -> BP(i, j).  If
     * `charged`, models feeding N words through every row tree in a
     * pipeline with the given separation (default: word separation).
     */
    ModelTime loadBase(Reg r, const linalg::IntMatrix &m,
                       bool charged = true, ModelTime separation = 0);

    /** Read base register r back into a matrix (host-side view). */
    linalg::IntMatrix readBase(Reg r) const;

  protected:
    /**
     * Model time one base-processing step of nominal cost `op_cost`
     * actually takes on this machine.  The OTN runs the base at full
     * width (identity); emulating machines dilate it (the OTC
     * multiplies by the cycle length).  baseOp() and the batch base
     * ops charge through this hook so both formulations price base
     * work identically.
     */
    virtual ModelTime
    baseOpCost(ModelTime op_cost) const
    {
        return op_cost;
    }

    /** Geometry-derived traversal cost; see treeTraversalCost(). */
    virtual ModelTime computeTreeTraversalCost() const;

    /** Geometry-derived combining cost; see treeReduceCost(). */
    virtual ModelTime computeTreeReduceCost() const;

    /** Drop the cached tree costs (after a geometry/cost change). */
    void
    invalidateCostCaches()
    {
        _traversalCost.store(kCostUnset, std::memory_order_relaxed);
        _reduceCost.store(kCostUnset, std::memory_order_relaxed);
    }

  private:
    static constexpr ModelTime kCostUnset = ~ModelTime{0};

    /** Resolve (axis, idx, k) to a BP address. */
    std::pair<std::size_t, std::size_t>
    leafAddr(Axis axis, std::size_t idx, std::size_t k) const
    {
        return axis == Axis::Row ? std::make_pair(idx, k)
                                 : std::make_pair(k, idx);
    }

    /** Evaluate a flat selector at BP(i, j). */
    bool
    selected(const Sel &sel, std::size_t i, std::size_t j) const
    {
        switch (sel.kind()) {
        case Sel::Kind::All:
            return true;
        case Sel::Kind::None:
            return false;
        case Sel::Kind::Diag:
            return i == j;
        case Sel::Kind::RowIs:
            return i == sel.index();
        case Sel::Kind::ColIs:
            return j == sel.index();
        case Sel::Kind::EvenAlong:
            return (sel.axis() == Axis::Row ? j : i) % 2 == 0;
        case Sel::Kind::RegEq:
            return reg(sel.selReg(), i, j) == sel.value();
        case Sel::Kind::Pred:
            return sel.predicate()(i, j);
        }
        return false;
    }

    std::uint64_t &rootReg(Axis axis, std::size_t idx);

    /** Row i of register r's plane (n contiguous words). */
    std::uint64_t *
    regRow(Reg r, std::size_t i)
    {
        assert(i < _n);
        return regPlane(r) + i * _n;
    }

    const std::uint64_t *
    regRow(Reg r, std::size_t i) const
    {
        assert(i < _n);
        return regPlane(r) + i * _n;
    }

    /**
     * Level-by-level combining reduction up one tree; `combine` is
     * applied by each IP to its two sons' values (kNull = absent).
     * `leaf_value(k)` yields the word contributed by leaf k.
     */
    template <typename LeafValue, typename Combine>
    std::uint64_t reduceTree(LeafValue &&leaf_value, Combine &&combine);

    std::size_t _n;
    CostModel _cost;
    layout::LayoutParams _layoutParams;
    layout::OtnLayout _layout;
    TimeAccountant _acct;
    sim::StatSet _stats;
    sim::ChainEngine _engine;

    mutable std::atomic<ModelTime> _traversalCost{kCostUnset};
    mutable std::atomic<ModelTime> _reduceCost{kCostUnset};

    simd::Backend _backend;
    const simd::KernelTable *_kernels;
    simd::RegFile _regs;
    std::vector<std::uint64_t> _rowRoot;
    std::vector<std::uint64_t> _colRoot;
};

} // namespace ot::otn

/**
 * @file
 * The orthogonal trees network (Section II of the paper).
 *
 * An (N x N)-OTN is an N x N matrix of base processors (BPs) in which
 * each row and each column of BPs forms the leaves of a complete
 * binary tree of internal processors (IPs).  The roots of the row
 * trees are the input ports and the roots of the column trees the
 * output ports.  BPs do the processing; IPs route words between BPs
 * and the roots and perform simple combining (count, sum, min) on the
 * way up.
 *
 * This class simulates the machine *functionally* while charging
 * *model time* per Thompson's VLSI rules: every primitive's cost is
 * computed from the wire geometry of a concrete OtnLayout through a
 * CostModel, and accumulated in a TimeAccountant.  Algorithms express
 * the paper's "for each i pardo" with the parallel() helper, which
 * charges the maximum cost of the enclosed operations instead of
 * their sum.
 */

#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "layout/otn_layout.hh"
#include "linalg/matrix.hh"
#include "otn/registers.hh"
#include "sim/stats.hh"
#include "sim/time_accountant.hh"
#include "vlsi/cost_model.hh"

namespace ot::otn {

using sim::TimeAccountant;
using vlsi::CostModel;
using vlsi::ModelTime;

/** Row trees or column trees — the "Vector" argument of Section II-B. */
enum class Axis { Row, Col };

/**
 * A leaf predicate over full BP addresses (i = row, j = column).  The
 * paper's "Selector" argument; factories live in struct Sel.
 */
using Selector = std::function<bool(std::size_t i, std::size_t j)>;

/** Common selector factories. */
struct Sel
{
    /** Every BP of the vector. */
    static Selector
    all()
    {
        return [](std::size_t, std::size_t) { return true; };
    }

    /** BPs on the main diagonal (i == j). */
    static Selector
    diag()
    {
        return [](std::size_t i, std::size_t j) { return i == j; };
    }

    /** BPs in row k (selects one leaf of a column vector). */
    static Selector
    rowIs(std::size_t k)
    {
        return [k](std::size_t i, std::size_t) { return i == k; };
    }

    /** BPs in column k (selects one leaf of a row vector). */
    static Selector
    colIs(std::size_t k)
    {
        return [k](std::size_t, std::size_t j) { return j == k; };
    }

    /** BPs with even position along the vector axis. */
    static Selector
    evenAlong(Axis axis)
    {
        return [axis](std::size_t i, std::size_t j) {
            return (axis == Axis::Row ? j : i) % 2 == 0;
        };
    }
};

/** Simulator of an (N x N) orthogonal trees network. */
class OrthogonalTreesNetwork
{
  public:
    /**
     * @param n      Side of the base; rounded up to a power of two.
     * @param cost   Cost rules (delay model, word width, scaling).
     * @param params Layout constants for the chip geometry.
     */
    OrthogonalTreesNetwork(std::size_t n, const CostModel &cost,
                           layout::LayoutParams params = {});

    virtual ~OrthogonalTreesNetwork() = default;

    /** Base side N. */
    std::size_t n() const { return _n; }

    const CostModel &cost() const { return _cost; }
    const layout::OtnLayout &chipLayout() const { return _layout; }
    TimeAccountant &acct() { return _acct; }
    const TimeAccountant &acct() const { return _acct; }
    sim::StatSet &stats() { return _stats; }

    /** Model time elapsed since construction/reset. */
    ModelTime now() const { return _acct.now(); }

    /** Reset model time and statistics (registers keep their values). */
    void
    resetTime()
    {
        _acct.reset();
        _stats.reset();
    }

    // ------------------------------------------------------------------
    // Register file and I/O ports
    // ------------------------------------------------------------------

    /** Register r of BP(i, j). */
    std::uint64_t &
    reg(Reg r, std::size_t i, std::size_t j)
    {
        assert(i < _n && j < _n);
        return _regs[static_cast<unsigned>(r)][i * _n + j];
    }

    std::uint64_t
    reg(Reg r, std::size_t i, std::size_t j) const
    {
        assert(i < _n && j < _n);
        return _regs[static_cast<unsigned>(r)][i * _n + j];
    }

    /** Data register at the root of row tree i (input port i). */
    std::uint64_t &rowRoot(std::size_t i) { return _rowRoot[i]; }
    std::uint64_t rowRoot(std::size_t i) const { return _rowRoot[i]; }

    /** Data register at the root of column tree j (output port j). */
    std::uint64_t &colRoot(std::size_t j) { return _colRoot[j]; }
    std::uint64_t colRoot(std::size_t j) const { return _colRoot[j]; }

    /** Load one word per input (row-root) port. */
    void setRowRootInputs(std::span<const std::uint64_t> values);

    /** Read all output (column-root) ports. */
    std::vector<std::uint64_t> colRootOutputs() const;

    /** Fill register r of every BP with `value`. */
    void fillReg(Reg r, std::uint64_t value);

    /** True iff v fits the machine word (kNull is always allowed). */
    bool
    fitsWord(std::uint64_t v) const
    {
        return v == kNull || v <= _cost.word().maxValue();
    }

    // ------------------------------------------------------------------
    // Parallel sections ("for each i pardo ...")
    // ------------------------------------------------------------------

    /**
     * The paper's "for each k (0 <= k < count) pardo body(k)".
     *
     * Each iteration runs on disjoint hardware (a different tree /
     * different BPs), so iterations overlap in time: the primitives
     * *within* one iteration still add up (they are sequential on
     * that hardware), but across iterations only the maximum chain
     * is charged.  Nested parallelFor composes: an inner pardo
     * contributes its (max) cost to the enclosing iteration's chain.
     * Returns the charged (max-of-chains) cost.
     */
    ModelTime parallelFor(std::size_t count,
                          const std::function<void(std::size_t)> &body);

    // ------------------------------------------------------------------
    // Primitive operations (Section II-B)
    // ------------------------------------------------------------------

    /**
     * ROOTTOLEAF(Vector, Dest): broadcast the root data register of
     * tree `idx` on `axis` to register `dest` of the selected leaves.
     */
    ModelTime rootToLeaf(Axis axis, std::size_t idx, const Selector &sel,
                         Reg dest);

    /**
     * LEAFTOROOT(Vector, Source): send register `src` of the single
     * selected leaf to the root data register.  If no leaf is
     * selected the root receives kNull; selecting more than one leaf
     * is a programming error (asserted).
     */
    ModelTime leafToRoot(Axis axis, std::size_t idx, const Selector &sel,
                         Reg src);

    /**
     * COUNT-LEAFTOROOT(Vector): count set flags (register `flag` != 0)
     * along the vector into the root data register.
     */
    ModelTime countLeafToRoot(Axis axis, std::size_t idx, Reg flag);

    /** SUM-LEAFTOROOT(Vector, Source): sum of selected registers. */
    ModelTime sumLeafToRoot(Axis axis, std::size_t idx, const Selector &sel,
                            Reg src);

    /**
     * MIN-LEAFTOROOT(Vector, Source): minimum of selected registers
     * (kNull = "no datum" loses to everything; root gets kNull if
     * nothing is selected).
     */
    ModelTime minLeafToRoot(Axis axis, std::size_t idx, const Selector &sel,
                            Reg src);

    // Composite operations: a LEAFTOROOT-flavoured primitive followed
    // by ROOTTOLEAF (Section II-B).

    /** LEAFTOLEAF: one leaf's word redistributed to selected leaves. */
    ModelTime leafToLeaf(Axis axis, std::size_t idx, const Selector &src_sel,
                         Reg src, const Selector &dst_sel, Reg dst);

    /** COUNT-LEAFTOLEAF: flag count delivered to selected leaves. */
    ModelTime countLeafToLeaf(Axis axis, std::size_t idx, Reg flag,
                              const Selector &dst_sel, Reg dst);

    /** SUM-LEAFTOLEAF. */
    ModelTime sumLeafToLeaf(Axis axis, std::size_t idx,
                            const Selector &src_sel, Reg src,
                            const Selector &dst_sel, Reg dst);

    /** MIN-LEAFTOLEAF. */
    ModelTime minLeafToLeaf(Axis axis, std::size_t idx,
                            const Selector &src_sel, Reg src,
                            const Selector &dst_sel, Reg dst);

    /**
     * PERMUTE-LEAFTOLEAF: route dst(perm(k)) := src(k) along one
     * vector through its tree.
     *
     * The cost is congestion-priced: every word whose source and
     * destination lie in different child subtrees of an internal node
     * must cross that node, bit-serially; with the IPs forwarding in
     * a pipeline the completion time is one traversal plus the
     * busiest node's queue drained at word separation.  An identity
     * or shift-by-one permutation therefore costs one traversal,
     * while a reversal serializes K words at the root — exactly the
     * physics that makes LEAFTOLEAF-style algorithms prefer local
     * exchanges.
     *
     * `perm` must be a permutation of 0..n-1 (asserted).
     */
    ModelTime permuteLeafToLeaf(Axis axis, std::size_t idx,
                                std::span<const std::size_t> perm, Reg src,
                                Reg dst);

    /**
     * Cost of routing `perm` through one tree without performing it
     * (exposed for benches and for algorithms that route the same
     * pattern on many vectors at once).
     */
    ModelTime permutationCost(std::span<const std::size_t> perm) const;

    /**
     * PREFIX-LEAFTOLEAF: inclusive prefix sums along a vector,
     * dst(k) = sum of src(0..k).  The classic two-sweep tree scan
     * (up-sweep accumulates subtree sums in the IPs, down-sweep feeds
     * each subtree its left-context), so it costs two combining
     * traversals — the same O(log^2 N) class as the other primitives.
     * Unselected leaves contribute 0 but still receive their prefix.
     */
    ModelTime prefixSumLeafToLeaf(Axis axis, std::size_t idx,
                                  const Selector &src_sel, Reg src,
                                  Reg dst);

    // ------------------------------------------------------------------
    // Base processing
    // ------------------------------------------------------------------

    /**
     * One parallel step of processing in the base: apply `op(i, j)` to
     * every BP and charge `cost` once (all BPs run concurrently).
     * Typical costs: cost().bitSerialOp() for compare/add,
     * cost().bitSerialMultiply() for multiply.  Virtual so machines
     * that *emulate* the OTN base with fewer processors (the OTC,
     * Section V-A) can dilate processing time.
     */
    virtual ModelTime baseOp(ModelTime op_cost,
                             const std::function<void(std::size_t i,
                                                      std::size_t j)> &op);

    /**
     * Per-word transfer cost of one tree traversal (root<->leaf).
     * Virtual: emulating machines substitute their own tree geometry
     * and word-pipelining schedule.
     */
    virtual ModelTime treeTraversalCost() const;

    /** Per-word cost of a combining traversal (COUNT/SUM/MIN). */
    virtual ModelTime treeReduceCost() const;

    /** Charge an explicitly computed pipeline cost (pipedo blocks). */
    void charge(ModelTime dt);

    /**
     * Run `body` with the clock stopped, returning what it *would*
     * have charged (the sum of its chains).  Used by "pipedo" blocks:
     * the i-th instance of a pipelined computation repeats the work of
     * the first functionally, but only the pipeline separation is
     * charged for it (Section III-A).
     */
    ModelTime runUncharged(const std::function<void()> &body);

    /**
     * Load a matrix into base register r, m(i, j) -> BP(i, j).  If
     * `charged`, models feeding N words through every row tree in a
     * pipeline with the given separation (default: word separation).
     */
    ModelTime loadBase(Reg r, const linalg::IntMatrix &m,
                       bool charged = true, ModelTime separation = 0);

    /** Read base register r back into a matrix (host-side view). */
    linalg::IntMatrix readBase(Reg r) const;

  private:
    /** Resolve (axis, idx, k) to a BP address. */
    std::pair<std::size_t, std::size_t>
    leafAddr(Axis axis, std::size_t idx, std::size_t k) const
    {
        return axis == Axis::Row ? std::make_pair(idx, k)
                                 : std::make_pair(k, idx);
    }

    std::uint64_t &rootReg(Axis axis, std::size_t idx);

    /**
     * Level-by-level combining reduction up one tree; `combine` is
     * applied by each IP to its two sons' values (kNull = absent).
     * `leaf_value(k)` yields the word contributed by leaf k.
     */
    std::uint64_t
    reduceTree(const std::function<std::uint64_t(std::size_t k)> &leaf_value,
               const std::function<std::uint64_t(std::uint64_t,
                                                 std::uint64_t)> &combine);

    std::size_t _n;
    CostModel _cost;
    layout::OtnLayout _layout;
    TimeAccountant _acct;
    sim::StatSet _stats;

    std::vector<std::vector<std::uint64_t>> _regs;
    std::vector<std::uint64_t> _rowRoot;
    std::vector<std::uint64_t> _colRoot;

    /**
     * Parallel-section state: when _parallelDepth > 0, charges
     * accumulate into the current iteration's chain instead of
     * advancing the clock; parallelFor maxes the chains.
     */
    unsigned _parallelDepth = 0;
    ModelTime _chainAccum = 0;
};

} // namespace ot::otn

/**
 * @file
 * Connected components on the OTN (Section III of the paper).
 *
 * The paper implements the Hirschberg-Chandra-Sarwate CONNECT
 * algorithm [12] on the adjacency matrix: the base holds A(i, j), each
 * vertex i keeps a component label D(i) on the diagonal, and each of
 * the O(log N) outer iterations
 *
 *   1. finds, per vertex, the minimum label among adjacent foreign
 *      components (row MIN over candidate labels),
 *   2. reduces those candidates per component (column MIN over the
 *      BPs at (i, D(i))) to give every root a hook target,
 *   3. removes the mutual (2-cycle) hooks that min-hooking can create
 *      — only 2-cycles are possible [12] — keeping the smaller label,
 *   4. relabels every vertex with its root's new label, and
 *   5. pointer-jumps D := D(D) log N times, collapsing every
 *      component tree to a star.
 *
 * Each step is O(log^2 N) tree operations and step 5 repeats log N
 * times, so one iteration is O(log^3 N) and the whole algorithm
 * O(log^4 N) — the Table III entry for the OTN/OTC.
 */

#pragma once

#include <vector>

#include "graph/graph.hh"
#include "otn/network.hh"

namespace ot::otn {

/** Result of a connected-components run. */
struct ComponentsResult
{
    /**
     * Component label per vertex in canonical form (smallest vertex id
     * in the component), directly comparable with
     * graph::connectedComponents.
     */
    std::vector<std::size_t> labels;
    /** Number of connected components found. */
    std::size_t componentCount = 0;
    /** Model time of the run (excluding adjacency load if uncharged). */
    ModelTime time = 0;
    /** Outer iterations executed. */
    unsigned iterations = 0;
};

/**
 * Find the connected components of g on `net` (net.n() >= g.vertices()
 * after padding; padded vertices are isolated and ignored).
 *
 * @param charge_load  Whether feeding the adjacency matrix through the
 *                     row trees is charged to the clock.
 */
ComponentsResult connectedComponentsOtn(OrthogonalTreesNetwork &net,
                                        const graph::Graph &g,
                                        bool charge_load = true);

} // namespace ot::otn

#include "otn/shortest_paths.hh"

#include <algorithm>
#include <cassert>

#include "vlsi/bitmath.hh"

namespace ot::otn {

using graph::kUnreachable;

namespace {

/** Saturating (min, +) "multiply": a + b with infinity absorbing. */
std::uint64_t
addSat(std::uint64_t a, std::uint64_t b)
{
    if (a == kUnreachable || b == kUnreachable)
        return kUnreachable;
    return a + b;
}

/** Load the weight matrix (kUnreachable off-diagonal, 0 diagonal). */
void
loadWeights(OrthogonalTreesNetwork &net, const graph::WeightedGraph &g,
            Reg dest, bool charged)
{
    const std::size_t n = net.n();
    linalg::IntMatrix w(n, n, kUnreachable);
    for (std::size_t i = 0; i < g.vertices(); ++i) {
        w(i, i) = 0;
        for (std::size_t j = 0; j < g.vertices(); ++j)
            if (g.hasEdge(i, j))
                w(i, j) = g.weight(i, j);
    }
    for (std::size_t i = g.vertices(); i < n; ++i)
        w(i, i) = 0;
    net.loadBase(dest, w, charged);
}

} // namespace

vlsi::WordFormat
pathWordFormat(std::size_t n, std::uint64_t max_weight)
{
    // A shortest path has < n edges of weight <= max_weight.
    std::uint64_t bound = (n ? n : 1) * (max_weight ? max_weight : 1);
    return vlsi::WordFormat(vlsi::logCeilAtLeast1(bound + 1) + 2);
}

SsspResult
ssspOtn(OrthogonalTreesNetwork &net, const graph::WeightedGraph &g,
        std::size_t src, bool charge_load)
{
    const std::size_t n = net.n();
    const std::size_t v = g.vertices();
    assert(src < v && v <= n);

    ModelTime start = net.now();
    sim::ScopedPhase phase(net.acct(), "sssp-otn");

    loadWeights(net, g, Reg::A, charge_load);

    // Current distances live at the row roots (vertex k's estimate at
    // input port k).
    std::vector<std::uint64_t> dist(n, kUnreachable);
    dist[src] = 0;

    SsspResult result;
    for (std::size_t round = 0; round + 1 < v; ++round) {
        net.setRowRootInputs(dist);

        // Fan d(k) along row k; relax in the base; column MIN.
        net.parallelFor(n, [&](std::size_t k) {
            net.rootToLeaf(Axis::Row, k, Sel::all(), Reg::B);
        });
        net.baseOp(net.cost().bitSerialOp(),
                   [&](std::size_t i, std::size_t j) {
                       net.reg(Reg::C, i, j) =
                           addSat(net.reg(Reg::B, i, j),
                                  net.reg(Reg::A, i, j));
                   });
        net.parallelFor(n, [&](std::size_t j) {
            net.minLeafToRoot(Axis::Col, j, Sel::all(), Reg::C);
        });
        ++result.rounds;

        // Convergence: compare at the ports; an OR (COUNT) reduction
        // across one row tree tells the host whether anything moved.
        bool changed = false;
        for (std::size_t j = 0; j < n; ++j) {
            std::uint64_t cand = net.colRoot(j);
            if (cand < dist[j]) {
                dist[j] = cand;
                changed = true;
            }
        }
        net.charge(net.treeReduceCost());
        if (!changed)
            break;
    }

    result.dist.assign(dist.begin(), dist.begin() + static_cast<long>(v));
    result.time = net.now() - start;
    return result;
}

ApspResult
apspOtn(OrthogonalTreesNetwork &net, const graph::WeightedGraph &g)
{
    const std::size_t n = net.n();
    const std::size_t v = g.vertices();
    assert(v <= n);

    ModelTime start = net.now();
    sim::ScopedPhase phase(net.acct(), "apsp-otn");

    // D := W (with zero diagonal); squarings: D := D (min,+) D.
    linalg::IntMatrix d(n, n, kUnreachable);
    for (std::size_t i = 0; i < n; ++i)
        d(i, i) = 0;
    for (std::size_t i = 0; i < v; ++i)
        for (std::size_t j = 0; j < v; ++j)
            if (g.hasEdge(i, j))
                d(i, j) = g.weight(i, j);

    ApspResult result;
    const unsigned rounds = vlsi::logCeilAtLeast1(v);
    for (unsigned s = 0; s < rounds; ++s) {
        // One pipelined (min, +) product D * D, Section III-A style:
        // the matrix resident in the base, rows of D streamed through
        // the row roots one word-separation apart.
        net.loadBase(Reg::A, d, /*charged=*/s == 0);
        ModelTime first_row = 0;
        linalg::IntMatrix next(n, n, kUnreachable);
        for (std::size_t i = 0; i < n; ++i) {
            auto row_body = [&] {
                net.setRowRootInputs(d.row(i));
                net.parallelFor(n, [&](std::size_t k) {
                    net.rootToLeaf(Axis::Row, k, Sel::all(), Reg::B);
                });
                net.baseOp(net.cost().bitSerialOp(),
                           [&](std::size_t r, std::size_t c) {
                               net.reg(Reg::C, r, c) =
                                   addSat(net.reg(Reg::B, r, c),
                                          net.reg(Reg::A, r, c));
                           });
                net.parallelFor(n, [&](std::size_t j) {
                    net.minLeafToRoot(Axis::Col, j, Sel::all(), Reg::C);
                });
            };
            if (i == 0) {
                ModelTime t0 = net.now();
                row_body();
                first_row = net.now() - t0;
            } else {
                net.runUncharged(row_body);
                net.charge(net.cost().wordSeparation());
            }
            for (std::size_t j = 0; j < n; ++j)
                next(i, j) = net.colRoot(j);
        }
        (void)first_row;
        d = std::move(next);
        ++result.squarings;
    }

    result.dist = linalg::IntMatrix(v, v, kUnreachable);
    for (std::size_t i = 0; i < v; ++i)
        for (std::size_t j = 0; j < v; ++j)
            result.dist(i, j) = d(i, j);
    result.time = net.now() - start;
    return result;
}

} // namespace ot::otn

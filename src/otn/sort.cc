#include "otn/sort.hh"

namespace ot::otn {

SortResult
sortOtn(OrthogonalTreesNetwork &net, const std::vector<std::uint64_t> &values)
{
    const std::size_t n = net.n();
    const std::size_t m = values.size();
    assert(m <= n);

    ModelTime start = net.now();
    net.setRowRootInputs(values);

    sim::ScopedPhase phase(net.acct(), "sort-otn");

    // Step 1: A(i, j) := x(i) for all j.
    net.parallelFor(n, [&](std::size_t i) {
        net.rootToLeaf(Axis::Row, i, Sel::all(), Reg::A);
    });

    // Step 2: B(i, j) := x(j) — the diagonal's A fanned out down each
    // column.
    net.parallelFor(n, [&](std::size_t i) {
        net.leafToLeaf(Axis::Col, i, Sel::rowIs(i), Reg::A, Sel::all(),
                       Reg::B);
    });

    // Step 3: flag := A > B, or A == B and i > j (the duplicate-safe
    // variant at the end of Section II-B).  kNull compares as +infinity
    // so absent ports rank last.
    net.baseOp(net.cost().bitSerialOp(), [&](std::size_t i, std::size_t j) {
        std::uint64_t a = net.reg(Reg::A, i, j);
        std::uint64_t b = net.reg(Reg::B, i, j);
        net.reg(Reg::F, i, j) = (a > b || (a == b && i > j)) ? 1 : 0;
    });

    // Step 4: R(i, j) := rank of x(i), for all j.
    net.parallelFor(n, [&](std::size_t i) {
        net.countLeafToLeaf(Axis::Row, i, Reg::F, Sel::all(), Reg::R);
    });

    // Step 5: column root i picks up the element of rank i.
    net.parallelFor(n, [&](std::size_t i) {
        net.leafToRoot(Axis::Col, i, Sel::regEq(Reg::R, i), Reg::A);
    });

    SortResult result;
    const auto &out = net.colRootOutputs();
    result.sorted.assign(out.begin(), out.begin() + static_cast<long>(m));
    result.time = net.now() - start;
    return result;
}

SortResult
sortOtn(const std::vector<std::uint64_t> &values, const vlsi::CostModel &cost)
{
    OrthogonalTreesNetwork net(values.size(), cost);
    return sortOtn(net, values);
}

} // namespace ot::otn

#include "otn/sort.hh"

namespace ot::otn {

SortResult
sortOtn(OrthogonalTreesNetwork &net, const std::vector<std::uint64_t> &values)
{
    const std::size_t n = net.n();
    const std::size_t m = values.size();
    assert(m <= n);

    ModelTime start = net.now();
    net.setRowRootInputs(values);

    sim::ScopedPhase phase(net.acct(), "sort-otn");

    // Each step is the batch (all-trees) form of the per-tree pardo of
    // Section II-B; see network.hh's batch section for the data/
    // accounting split.  Model time and traces are bit-identical to
    // the per-tree formulation.

    // Step 1: A(i, j) := x(i) for all j.
    net.batchRowBroadcast(Reg::A);

    // Step 2: B(i, j) := x(j) — the diagonal's A fanned out down each
    // column.
    net.batchDiagToCols(Reg::A, Reg::B);

    // Step 3: flag := A > B, or A == B and i > j (the duplicate-safe
    // variant at the end of Section II-B).  kNull compares as +infinity
    // so absent ports rank last.
    net.batchCompareRank(Reg::A, Reg::B, Reg::F);

    // Step 4: R(i, j) := rank of x(i), for all j.
    net.batchCountRowsToLeaves(Reg::F, Reg::R);

    // Step 5: column root i picks up the element of rank i.
    net.batchPickColByKeyIndex(Reg::R, Reg::A);

    SortResult result;
    const auto &out = net.colRootOutputs();
    result.sorted.assign(out.begin(), out.begin() + static_cast<long>(m));
    result.time = net.now() - start;
    return result;
}

SortResult
sortOtn(const std::vector<std::uint64_t> &values, const vlsi::CostModel &cost)
{
    OrthogonalTreesNetwork net(values.size(), cost);
    return sortOtn(net, values);
}

} // namespace ot::otn

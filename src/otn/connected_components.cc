#include "otn/connected_components.hh"

#include <algorithm>

#include "graph/reference_algorithms.hh"
#include "otn/patterns.hh"
#include "vlsi/bitmath.hh"

namespace ot::otn {

namespace {

/*
 * Register allocation for CONNECT on the OTN:
 *   A  adjacency bits
 *   D  vertex label, authoritative copy on the diagonal
 *   B  D fanned out along rows        (B(i,j) = D(i))
 *   C  D fanned out down columns      (C(i,j) = D(j))
 *   T  candidate foreign labels in the base
 *   E  per-vertex best candidate, fanned out along rows
 *   H  per-component hook target, fanned out down columns
 *   G  new component label (newC) on the diagonal
 *   X  gather keys / scratch broadcasts
 *   R  gather values / scratch broadcasts
 *   Y  gather outputs
 *   F  gatherAtIndex scratch flag
 */

void
loadAdjacency(OrthogonalTreesNetwork &net, const graph::Graph &g,
              bool charged)
{
    const std::size_t n = net.n();
    linalg::IntMatrix adj(n, n, 0);
    for (std::size_t i = 0; i < g.vertices(); ++i)
        for (std::size_t j = 0; j < g.vertices(); ++j)
            adj(i, j) = g.hasEdge(i, j) ? 1 : 0;
    // Adjacency entries are single bits: unit pipeline separation.
    net.loadBase(Reg::A, adj, charged, /*separation=*/1);
}

} // namespace

ComponentsResult
connectedComponentsOtn(OrthogonalTreesNetwork &net, const graph::Graph &g,
                       bool charge_load)
{
    const std::size_t n = net.n();
    assert(g.vertices() <= n);
    const unsigned log_n = vlsi::logCeilAtLeast1(n);

    ModelTime start = net.now();
    sim::ScopedPhase phase(net.acct(), "connected-components-otn");

    loadAdjacency(net, g, charge_load);

    // D(i) := i on the diagonal.
    net.baseOp(net.cost().bitSerialOp(), [&](std::size_t i, std::size_t j) {
        if (i == j)
            net.reg(Reg::D, i, j) = i;
    });

    const unsigned iterations = log_n + 1;
    for (unsigned iter = 0; iter < iterations; ++iter) {
        // (1) Fan the labels out: B(i,j) = D(i), C(i,j) = D(j).
        diagToRows(net, Reg::D, Reg::B);
        diagToCols(net, Reg::D, Reg::C);

        // (2) Candidate foreign labels.
        net.baseOp(net.cost().bitSerialOp(),
                   [&](std::size_t i, std::size_t j) {
                       bool edge = net.reg(Reg::A, i, j) == 1;
                       std::uint64_t mine = net.reg(Reg::B, i, j);
                       std::uint64_t theirs = net.reg(Reg::C, i, j);
                       net.reg(Reg::T, i, j) =
                           (edge && theirs != mine) ? theirs : kNull;
                   });

        // (3) Per-vertex minimum candidate, fanned back along the row.
        net.parallelFor(n, [&](std::size_t i) {
            net.minLeafToRoot(Axis::Row, i, Sel::all(), Reg::T);
            net.rootToLeaf(Axis::Row, i, Sel::all(), Reg::E);
        });

        // (4) Per-component minimum over the members' candidates; each
        // vertex i deposits its candidate at BP(i, D(i)), and column
        // D(i)'s tree reduces.  The result is fanned back down the
        // column and latched on the diagonal as newC.
        // Membership test along column j: B(i, j) == j.
        net.parallelFor(n, [&](std::size_t j) {
            net.minLeafToRoot(Axis::Col, j, Sel::regEq(Reg::B, j), Reg::E);
            net.rootToLeaf(Axis::Col, j, Sel::all(), Reg::H);
        });
        net.baseOp(net.cost().bitSerialOp(),
                   [&](std::size_t i, std::size_t j) {
                       if (i != j)
                           return;
                       std::uint64_t h = net.reg(Reg::H, i, j);
                       net.reg(Reg::G, i, j) = h == kNull ? j : h;
                   });

        // (5) Remove mutual hooks (the only cycles min-hooking can
        // create are 2-cycles [12]): of a pair hooking to each other,
        // the smaller label stays a root.
        diagToRows(net, Reg::G, Reg::X);
        diagToCols(net, Reg::G, Reg::R);
        gatherAtIndex(net, Reg::X, Reg::R, Reg::Y, Reg::F);
        net.baseOp(net.cost().bitSerialOp(),
                   [&](std::size_t i, std::size_t j) {
                       if (i != j)
                           return;
                       std::uint64_t new_c = net.reg(Reg::G, i, j);
                       std::uint64_t back = net.reg(Reg::Y, i, j);
                       if (back == j && new_c != j && j < new_c)
                           net.reg(Reg::G, i, j) = j;
                   });

        // (6) Relabel every vertex with its root's new label:
        // D(i) := newC(D(i)).
        diagToCols(net, Reg::G, Reg::R);
        gatherAtIndex(net, Reg::B, Reg::R, Reg::Y, Reg::F);
        net.baseOp(net.cost().bitSerialOp(),
                   [&](std::size_t i, std::size_t j) {
                       if (i == j)
                           net.reg(Reg::D, i, j) = net.reg(Reg::Y, i, j);
                   });

        // (7) Pointer jumping to a star: D := D(D), log N times.
        for (unsigned jump = 0; jump < log_n; ++jump) {
            diagToRows(net, Reg::D, Reg::B);
            diagToCols(net, Reg::D, Reg::C);
            gatherAtIndex(net, Reg::B, Reg::C, Reg::Y, Reg::F);
            net.baseOp(net.cost().bitSerialOp(),
                       [&](std::size_t i, std::size_t j) {
                           if (i == j)
                               net.reg(Reg::D, i, j) =
                                   net.reg(Reg::Y, i, j);
                       });
        }
    }

    ComponentsResult result;
    result.iterations = iterations;
    std::vector<std::size_t> raw(g.vertices());
    for (std::size_t v = 0; v < g.vertices(); ++v)
        raw[v] = static_cast<std::size_t>(net.reg(Reg::D, v, v));
    result.labels = graph::canonicalizeLabels(raw);

    std::vector<std::size_t> distinct = result.labels;
    std::sort(distinct.begin(), distinct.end());
    result.componentCount = static_cast<std::size_t>(
        std::unique(distinct.begin(), distinct.end()) - distinct.begin());

    result.time = net.now() - start;
    return result;
}

} // namespace ot::otn

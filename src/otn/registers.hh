/**
 * @file
 * Register naming for base processors.
 *
 * Section II-B: "we require a few (three or four) O(log N) bit
 * registers in each BP", addressed as A(i,j), B(i,j), ...  The
 * algorithms in the paper use registers A, B, C, D, R and a one-bit
 * flag; the graph algorithms need a few more scratch registers, so we
 * provide a fixed set of twelve.  A register file of Theta(log N) bits
 * per named register keeps each BP within its O(log N) area budget.
 */

#pragma once
// otcheck:hotpath — per-event helpers; keep allocation-free

#include <cstdint>

namespace ot::otn {

/** Named BP registers (the paper's A(i,j), B(i,j), ... notation). */
enum class Reg : unsigned {
    A,
    B,
    C,
    D,
    E,
    F, //!< conventionally the one-bit flag register
    G,
    H,
    R, //!< conventionally the rank register of SORT-OTN
    T,
    X,
    Y,
};

/** Number of named registers per BP. */
inline constexpr unsigned kNumRegs = 12;

/**
 * The paper's NULL marker (Section VI-A step 5 loads "NULL" into a
 * register): an all-ones word no valid datum uses.
 */
inline constexpr std::uint64_t kNull = ~std::uint64_t{0};

} // namespace ot::otn

/**
 * @file
 * The three-dimensional mesh of trees — Section VII-B's closing
 * comparison point.
 *
 * "Leighton describes an interesting network called the
 * three-dimensional mesh of trees (a generalization of the OTN to
 * three dimensions).  Using this network, he is able to get an
 * efficient AT^2 bound for matrix multiplication (area = O(N^4), time
 * = O(log N), AT^2 = O(N^4 log^2 N))."
 *
 * The machine is an N x N x N lattice of base processors; every axis
 * line (fix two coordinates, vary the third) is the leaf set of a
 * complete binary tree.  Matrix multiplication is three tree phases:
 *
 *   1. broadcast a(i, k) down the j-axis tree of line (i, *, k),
 *   2. broadcast b(k, j) down the i-axis tree of line (*, j, k),
 *   3. multiply in every cell and SUM up the k-axis tree of line
 *      (i, j, *), whose root outputs c(i, j).
 *
 * Under the constant-delay model that is O(log N); under Thompson's
 * model each traversal is O(log^2 N) (the layout has O(N^2)-long
 * wires), which is what our accounting charges.  The 2D layout area is
 * Theta(N^4): N^2 trees per axis with N^2-separation leaves.
 */

#pragma once

#include <cstdint>

#include "layout/tree_embedding.hh"
#include "linalg/matrix.hh"
#include "otn/matmul.hh" // MatMulResult
#include "otn/network.hh"
#include "sim/stats.hh"
#include "sim/time_accountant.hh"
#include "vlsi/cost_model.hh"

namespace ot::otn {

/** Simulator of an (N x N x N) mesh of trees. */
class MeshOfTrees3d
{
  public:
    MeshOfTrees3d(std::size_t n, const vlsi::CostModel &cost);

    std::size_t n() const { return _n; }
    const vlsi::CostModel &cost() const { return _cost; }
    sim::TimeAccountant &acct() { return _acct; }
    ModelTime now() const { return _acct.now(); }

    /** 2D chip area of the 3D structure: Theta(N^4). */
    std::uint64_t chipArea() const;

    /** Longest wire in the 2D embedding: Theta(N^2). */
    vlsi::WireLength longestWire() const;

    /** One word root<->leaf along an axis tree. */
    ModelTime treeTraversalCost() const;

    /** One combining traversal (the SUM phase). */
    ModelTime treeReduceCost() const;

    /** C = A * B in three tree phases (integer semiring). */
    MatMulResult matMul(const linalg::IntMatrix &a,
                        const linalg::IntMatrix &b);

    /** Boolean (AND/OR) product. */
    MatMulResult boolMatMul(const linalg::BoolMatrix &a,
                            const linalg::BoolMatrix &b);

  private:
    MatMulResult multiplyImpl(const linalg::IntMatrix &a,
                              const linalg::IntMatrix &b, bool boolean);

    std::size_t _n;
    vlsi::CostModel _cost;
    layout::TreeEmbedding _axisTree;
    sim::TimeAccountant _acct;
    sim::StatSet _stats;
};

} // namespace ot::otn

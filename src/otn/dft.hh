/**
 * @file
 * Discrete Fourier transform on a (K x K)-OTN (Section IV-B).
 *
 * "The FFT algorithm for computing an N-element DFT has a very similar
 * structure to that of Bitonic Merging.  By using an implementation
 * similar to BITONICMERGE-OTN, we can compute the DFT in
 * O(N^1/2 log N) time on an (N^1/2 x N^1/2)-OTN."
 *
 * We run the iterative radix-2 Cooley-Tukey FFT with one element per
 * BP (linear index = row-major), butterflies at distance d routed
 * exactly like the COMPEX stages of the bitonic sort, plus the initial
 * bit-reversal permutation (a pipelined tree permutation).  Numeric
 * values are simulated in double precision on the host; on the
 * machine each complex element is a pair of O(log N)-bit fixed-point
 * words, which is what the cost accounting assumes.
 */

#pragma once

#include <vector>

#include "linalg/reference.hh"
#include "otn/network.hh"

namespace ot::otn {

/** Result of a DFT run. */
struct DftResult
{
    std::vector<linalg::Complex> spectrum;
    ModelTime time = 0;
    unsigned stages = 0;
};

/**
 * Compute the N-point DFT of x (N = net.n()^2 required) on the
 * (K x K)-OTN `net`.  Verified against linalg::dftNaive.
 */
DftResult dftOtn(OrthogonalTreesNetwork &net,
                 const std::vector<linalg::Complex> &x);

} // namespace ot::otn

/**
 * @file
 * Minimum spanning tree on the OTN (Section III of the paper;
 * abstract: O(log^4 N) time, AT^2 = O(N^2 log^9 N) on the OTC).
 *
 * The algorithm is Sollin/Boruvka on the weight matrix, with the same
 * hook-and-jump skeleton as connected components: each component finds
 * its minimum-weight outgoing edge by a row MIN (per vertex) followed
 * by a column MIN (per component) over packed (weight, u, v) words,
 * adopts that edge into the spanning forest, hooks onto the component
 * at the edge's far end, and pointer-jumps to a star.  With distinct
 * weights only mutual (2-cycle) hooks can occur, resolved by keeping
 * the smaller label — exactly Boruvka's classic argument.
 *
 * Edge words pack (w, u, v) into one machine word, so the OTN built
 * for MST needs wider words than the sorter — the extra log N factor
 * the paper notes in the MST AT^2 bound.  Use mstWordFormat() to size
 * the machine.
 */

#pragma once

#include <vector>

#include "graph/graph.hh"
#include "graph/reference_algorithms.hh"
#include "otn/network.hh"
#include "vlsi/word.hh"

namespace ot::otn {

/** Result of an MST run. */
struct MstResult
{
    /** Edges of the minimum spanning forest, sorted by (w, u, v). */
    std::vector<graph::Edge> edges;
    /** Sum of edge weights. */
    std::uint64_t totalWeight = 0;
    /** Model time of the run. */
    ModelTime time = 0;
    /** Boruvka phases executed. */
    unsigned iterations = 0;
};

/**
 * Word format wide enough to carry packed (weight, u, v) edge words
 * for an n-vertex graph with weights <= max_weight.
 */
vlsi::WordFormat mstWordFormat(std::size_t n, std::uint64_t max_weight);

/**
 * Compute the minimum spanning forest of g on `net`.  Weights must be
 * distinct (generators::randomWeighted* guarantee this); the machine
 * word must fit the packed edge keys (build the net with
 * mstWordFormat).
 */
MstResult mstOtn(OrthogonalTreesNetwork &net, const graph::WeightedGraph &g,
                 bool charge_load = true);

} // namespace ot::otn

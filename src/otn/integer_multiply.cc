#include "otn/integer_multiply.hh"

#include <cassert>

#include "vlsi/bitmath.hh"

namespace ot::otn {

MultiplyResult
integerMultiplyOtn(OrthogonalTreesNetwork &net, std::uint64_t a,
                   std::uint64_t b, unsigned bits)
{
    assert(bits >= 1 && bits <= 31);
    const std::size_t n = net.n();
    assert(n >= 2 * bits);
    assert(a < (std::uint64_t{1} << bits) && b < (std::uint64_t{1} << bits));

    ModelTime start = net.now();
    sim::ScopedPhase phase(net.acct(), "integer-multiply-otn");

    // Toeplitz matrix of b: B(k, j) = bit_(j-k) of b.
    {
        linalg::IntMatrix toeplitz(n, n, 0);
        for (std::size_t k = 0; k < bits; ++k)
            for (unsigned p = 0; p < bits; ++p)
                toeplitz(k, k + p) = (b >> p) & 1;
        net.loadBase(Reg::B, toeplitz, /*charged=*/true, /*separation=*/1);
    }

    // Bits of a at the row roots, fanned out along the rows.
    {
        std::vector<std::uint64_t> abits(n, 0);
        for (unsigned k = 0; k < bits; ++k)
            abits[k] = (a >> k) & 1;
        net.setRowRootInputs(abits);
    }
    net.parallelFor(n, [&](std::size_t k) {
        net.rootToLeaf(Axis::Row, k, Sel::all(), Reg::A);
    });

    // Partial products and the convolution sums down the columns:
    // digit(j) = sum_k a_k * b_(j-k), each < bits.
    net.baseOp(1, [&](std::size_t i, std::size_t j) {
        std::uint64_t av = net.reg(Reg::A, i, j);
        std::uint64_t bv = net.reg(Reg::B, i, j);
        net.reg(Reg::C, i, j) =
            (av != kNull && bv != kNull && av && bv) ? 1 : 0;
    });
    net.parallelFor(n, [&](std::size_t j) {
        net.sumLeafToRoot(Axis::Col, j, Sel::all(), Reg::C);
    });

    std::vector<std::uint64_t> digits(2 * bits, 0);
    for (std::size_t j = 0; j < 2 * bits; ++j)
        digits[j] = net.colRoot(j);

    // Carry resolution: each digit is < bits, i.e. has at most
    // ceil(log2 bits) + 1 bit planes.  Plane p is a binary number that
    // is shifted p positions (one tree-routing pass each) and added in
    // (one carry-lookahead scan over the digit row, two combining
    // traversals).  This is the O(log w) pass structure of [8].
    MultiplyResult result;
    std::uint64_t max_digit = 0;
    for (auto d : digits)
        max_digit = std::max(max_digit, d);
    unsigned planes =
        max_digit <= 1 ? 0 : vlsi::ilog2Floor(max_digit) + 1;
    for (unsigned p = 1; p < planes; ++p) {
        // shift of plane p by one more position + carry-lookahead add
        net.charge(net.treeTraversalCost());
        net.charge(2 * net.treeReduceCost());
        ++result.carryPasses;
    }
    // Final carry-propagating addition of the assembled planes.
    net.charge(2 * net.treeReduceCost());
    ++result.carryPasses;

    std::uint64_t value = 0;
    for (std::size_t j = 2 * bits; j-- > 0;)
        value = (value << 1) + digits[j];
    result.product = value;
    result.time = net.now() - start;
    return result;
}

MultiplyResult
integerMultiplyOtn(std::uint64_t a, std::uint64_t b, unsigned bits,
                   vlsi::DelayModel model)
{
    // Column sums reach `bits`, so the machine word must hold them.
    unsigned word_bits = vlsi::logCeilAtLeast1(bits + 1) + 2;
    vlsi::CostModel cost(model, vlsi::WordFormat(word_bits));
    OrthogonalTreesNetwork net(2 * bits, cost);
    return integerMultiplyOtn(net, a, b, bits);
}

} // namespace ot::otn

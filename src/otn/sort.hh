/**
 * @file
 * Procedure SORT-OTN (Section II-B of the paper): sorting N numbers on
 * an (N x N)-OTN in O(log^2 N) time by rank computation.
 *
 * The numbers enter at the input ports (row-tree roots) and leave in
 * ascending order at the output ports (column-tree roots).  The
 * algorithm is exactly the paper's five steps:
 *
 *   1. ROOTTOLEAF(row(i), dest=(all, A))           — A(i,j) = x(i)
 *   2. LEAFTOLEAF(col(i), src=(i, A), dst=(all,B)) — B(i,j) = x(j)
 *   3. flag(i,j) = A > B, with the paper's tie-break for duplicates:
 *      A == B and i > j                            — stable ranking
 *   4. COUNT-LEAFTOLEAF(row(i), dest=(all, R))     — R = rank of x(i)
 *   5. LEAFTOROOT(col(i), src=(j: R(j,i) = i, A))  — port i gets the
 *      i-th smallest
 */

#pragma once

#include <cstdint>
#include <vector>

#include "otn/network.hh"

namespace ot::otn {

/** Result of one SORT-OTN run. */
struct SortResult
{
    /** The values in ascending order (as read from the output ports). */
    std::vector<std::uint64_t> sorted;
    /** Model time the run took. */
    ModelTime time = 0;
};

/**
 * Run SORT-OTN on `values` (values.size() <= net.n(); duplicates
 * allowed — the tie-break variant of step 3 is always used).  Missing
 * inputs are treated as absent ports; outputs are the sorted values.
 */
SortResult sortOtn(OrthogonalTreesNetwork &net,
                   const std::vector<std::uint64_t> &values);

/**
 * Convenience: build an (n x n)-OTN sized for `values` under `cost`
 * rules and sort.
 */
SortResult sortOtn(const std::vector<std::uint64_t> &values,
                   const vlsi::CostModel &cost);

} // namespace ot::otn

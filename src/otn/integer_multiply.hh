/**
 * @file
 * Integer multiplication on the OTN — the Capello & Steiglitz
 * application the paper's introduction cites ("Capello and Steiglitz
 * use the OTN (which they call orthogonal forest) for integer
 * multiplication" [8]).
 *
 * Two w-bit integers multiply as the convolution of their bit vectors
 * followed by carry resolution.  On the OTN the convolution is a
 * vector-matrix product with the Toeplitz matrix of shifted copies of
 * one operand (M(k, j) = b_(j-k)):
 *
 *   digit(j) = sum_k a_k * b_(j-k)
 *
 * computed by one ROOTTOLEAF fan-out, a base AND, and column SUM
 * reductions — O(log^2 w) — after which the base-2 carry chain is
 * resolved.  Digits are < w, so each carry propagation step is a
 * prefix-style pass; the simple machine repeats (digit + carry-in)
 * normalization until no carries remain, which for w-bit operands
 * terminates in O(log w) passes of the PREFIX primitive.
 */

#pragma once

#include <cstdint>

#include "otn/network.hh"
#include "vlsi/delay.hh"
#include "vlsi/word.hh"

namespace ot::otn {

/** Result of an integer multiplication run. */
struct MultiplyResult
{
    /** The product a * b. */
    std::uint64_t product = 0;
    /** Model time of the run. */
    ModelTime time = 0;
    /** Carry-normalization passes used. */
    unsigned carryPasses = 0;
};

/**
 * Multiply two unsigned integers of at most `bits` bits each on a
 * (2*bits x 2*bits)-OTN.  Requires bits <= 31 (the result must fit a
 * host word for verification).  The network must have n() >= 2*bits.
 */
MultiplyResult integerMultiplyOtn(OrthogonalTreesNetwork &net,
                                  std::uint64_t a, std::uint64_t b,
                                  unsigned bits);

/** Convenience: build a suitable machine and multiply. */
MultiplyResult integerMultiplyOtn(std::uint64_t a, std::uint64_t b,
                                  unsigned bits,
                                  vlsi::DelayModel model =
                                      vlsi::DelayModel::Logarithmic);

} // namespace ot::otn

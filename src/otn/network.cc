#include "otn/network.hh"

#include <algorithm>
#include <cstring>
#include <utility>

#include "vlsi/bitmath.hh"

namespace ot::otn {

namespace {

/** Trace addressing of one per-tree primitive. */
sim::ChainEngine::SpanArgs
treeSpan(Axis axis, std::size_t idx, std::size_t n, std::uint64_t words)
{
    sim::ChainEngine::SpanArgs args;
    args.axis = axis == Axis::Row ? trace::TraceAxis::Row
                                  : trace::TraceAxis::Col;
    args.tree = static_cast<std::int64_t>(idx);
    args.levels = vlsi::logCeilAtLeast1(n);
    args.words = words;
    return args;
}

/** Trace addressing of a whole-base (no single tree) operation. */
sim::ChainEngine::SpanArgs
baseSpan(std::uint64_t words)
{
    sim::ChainEngine::SpanArgs args;
    args.words = words;
    return args;
}

} // namespace

OrthogonalTreesNetwork::OrthogonalTreesNetwork(std::size_t n,
                                               const CostModel &cost,
                                               layout::LayoutParams params,
                                               unsigned host_threads)
    : _n(vlsi::nextPow2(n ? n : 1)),
      _cost(cost),
      _layoutParams(params),
      _layout(_n, cost.word().bits(), params),
      _engine(_acct, _stats, host_threads),
      _backend(simd::activeBackend()),
      _kernels(&simd::kernelsFor(_backend)),
      _regs(kNumRegs, _n * _n),
      _rowRoot(_n, kNull),
      _colRoot(_n, kNull)
{
}

void
OrthogonalTreesNetwork::setCostModel(const CostModel &cost)
{
    _cost = cost;
    _layout = layout::OtnLayout(_n, cost.word().bits(), _layoutParams);
    invalidateCostCaches();
}

void
OrthogonalTreesNetwork::setRowRootInputs(std::span<const std::uint64_t> values)
{
    assert(values.size() <= _n);
    for (std::size_t i = 0; i < values.size(); ++i) {
        assert(fitsWord(values[i]));
        _rowRoot[i] = values[i];
    }
    for (std::size_t i = values.size(); i < _n; ++i)
        _rowRoot[i] = kNull;
}

void
OrthogonalTreesNetwork::fillReg(Reg r, std::uint64_t value)
{
    _kernels->fill(regPlane(r), _n * _n, value);
}

ModelTime
OrthogonalTreesNetwork::computeTreeTraversalCost() const
{
    return _cost.wordAlongPath(_layout.tree().pathEdges());
}

ModelTime
OrthogonalTreesNetwork::computeTreeReduceCost() const
{
    return _cost.reducePath(_layout.tree().pathEdges());
}

std::uint64_t &
OrthogonalTreesNetwork::rootReg(Axis axis, std::size_t idx)
{
    assert(idx < _n);
    return axis == Axis::Row ? _rowRoot[idx] : _colRoot[idx];
}

ModelTime
OrthogonalTreesNetwork::rootToLeaf(Axis axis, std::size_t idx,
                                   const Selector &sel, Reg dest)
{
    std::uint64_t value = rootReg(axis, idx);
    if (axis == Axis::Row && sel.kind() == Sel::Kind::All) {
        // Row leaves are one contiguous plane row: broadcast with the
        // batch fill kernel instead of the per-leaf walk.
        _kernels->fill(regRow(dest, idx), _n, value);
    } else {
        for (std::size_t k = 0; k < _n; ++k) {
            auto [i, j] = leafAddr(axis, idx, k);
            if (selected(sel, i, j))
                reg(dest, i, j) = value;
        }
    }
    ++_engine.counter("otn.rootToLeaf");
    ModelTime dt = treeTraversalCost();
    _engine.traceSpan("otn", "rootToLeaf", dt, treeSpan(axis, idx, _n, 1));
    charge(dt);
    return dt;
}

ModelTime
OrthogonalTreesNetwork::leafToRoot(Axis axis, std::size_t idx,
                                   const Selector &sel, Reg src)
{
    std::uint64_t value = kNull;
    [[maybe_unused]] unsigned n_selected = 0;
    for (std::size_t k = 0; k < _n; ++k) {
        auto [i, j] = leafAddr(axis, idx, k);
        if (selected(sel, i, j)) {
            value = reg(src, i, j);
            ++n_selected;
        }
    }
    assert(n_selected <= 1 && "LEAFTOROOT requires a unique source leaf");
    rootReg(axis, idx) = value;
    ++_engine.counter("otn.leafToRoot");
    ModelTime dt = treeTraversalCost();
    _engine.traceSpan("otn", "leafToRoot", dt, treeSpan(axis, idx, _n, 1));
    charge(dt);
    return dt;
}

template <typename LeafValue, typename Combine>
std::uint64_t
OrthogonalTreesNetwork::reduceTree(LeafValue &&leaf_value, Combine &&combine)
{
    // Level-by-level: each IP combines the values accumulated by its
    // two sons (Section II-B, COUNT-LEAFTOROOT description).  The
    // halving is done in place in a per-host-thread scratch buffer so
    // the reduction allocates nothing in steady state.
    thread_local std::vector<std::uint64_t> level;
    level.resize(_n);
    for (std::size_t k = 0; k < _n; ++k)
        level[k] = leaf_value(k);
    for (std::size_t width = _n; width > 1; width /= 2)
        for (std::size_t k = 0; k < width / 2; ++k)
            level[k] = combine(level[2 * k], level[2 * k + 1]);
    return level[0];
}

ModelTime
OrthogonalTreesNetwork::countLeafToRoot(Axis axis, std::size_t idx, Reg flag)
{
    if (axis == Axis::Row) {
        // Counting is associative: the kernel's linear tally equals
        // the pairwise-halving tree sum bit for bit.
        rootReg(axis, idx) =
            _kernels->countNonzero(regRow(flag, idx), _n);
    } else {
        rootReg(axis, idx) = reduceTree(
            [&](std::size_t k) {
                auto [i, j] = leafAddr(axis, idx, k);
                return reg(flag, i, j) != 0 ? std::uint64_t{1} : 0;
            },
            [](std::uint64_t a, std::uint64_t b) { return a + b; });
    }
    ++_engine.counter("otn.countLeafToRoot");
    ModelTime dt = treeReduceCost();
    _engine.traceSpan("otn", "countLeafToRoot", dt,
                      treeSpan(axis, idx, _n, 1));
    charge(dt);
    return dt;
}

ModelTime
OrthogonalTreesNetwork::sumLeafToRoot(Axis axis, std::size_t idx,
                                      const Selector &sel, Reg src)
{
    if (axis == Axis::Row && sel.kind() == Sel::Kind::All) {
        // Modular sum is associative: linear order == tree order.
        rootReg(axis, idx) = _kernels->reduceSum(regRow(src, idx), _n);
    } else {
        rootReg(axis, idx) = reduceTree(
            [&](std::size_t k) -> std::uint64_t {
                auto [i, j] = leafAddr(axis, idx, k);
                return selected(sel, i, j) ? reg(src, i, j) : 0;
            },
            [](std::uint64_t a, std::uint64_t b) { return a + b; });
    }
    ++_engine.counter("otn.sumLeafToRoot");
    ModelTime dt = treeReduceCost();
    _engine.traceSpan("otn", "sumLeafToRoot", dt,
                      treeSpan(axis, idx, _n, 1));
    charge(dt);
    return dt;
}

ModelTime
OrthogonalTreesNetwork::minLeafToRoot(Axis axis, std::size_t idx,
                                      const Selector &sel, Reg src)
{
    if (axis == Axis::Row && sel.kind() == Sel::Kind::All) {
        rootReg(axis, idx) = _kernels->reduceMin(regRow(src, idx), _n);
    } else {
        rootReg(axis, idx) = reduceTree(
            [&](std::size_t k) -> std::uint64_t {
                auto [i, j] = leafAddr(axis, idx, k);
                return selected(sel, i, j) ? reg(src, i, j) : kNull;
            },
            [](std::uint64_t a, std::uint64_t b) {
                return std::min(a, b);
            });
    }
    ++_engine.counter("otn.minLeafToRoot");
    ModelTime dt = treeReduceCost();
    _engine.traceSpan("otn", "minLeafToRoot", dt,
                      treeSpan(axis, idx, _n, 1));
    charge(dt);
    return dt;
}

ModelTime
OrthogonalTreesNetwork::leafToLeaf(Axis axis, std::size_t idx,
                                   const Selector &src_sel, Reg src,
                                   const Selector &dst_sel, Reg dst)
{
    ModelTime dt = leafToRoot(axis, idx, src_sel, src);
    dt += rootToLeaf(axis, idx, dst_sel, dst);
    ++_engine.counter("otn.leafToLeaf");
    return dt;
}

ModelTime
OrthogonalTreesNetwork::countLeafToLeaf(Axis axis, std::size_t idx, Reg flag,
                                        const Selector &dst_sel, Reg dst)
{
    ModelTime dt = countLeafToRoot(axis, idx, flag);
    dt += rootToLeaf(axis, idx, dst_sel, dst);
    ++_engine.counter("otn.countLeafToLeaf");
    return dt;
}

ModelTime
OrthogonalTreesNetwork::sumLeafToLeaf(Axis axis, std::size_t idx,
                                      const Selector &src_sel, Reg src,
                                      const Selector &dst_sel, Reg dst)
{
    ModelTime dt = sumLeafToRoot(axis, idx, src_sel, src);
    dt += rootToLeaf(axis, idx, dst_sel, dst);
    ++_engine.counter("otn.sumLeafToLeaf");
    return dt;
}

ModelTime
OrthogonalTreesNetwork::minLeafToLeaf(Axis axis, std::size_t idx,
                                      const Selector &src_sel, Reg src,
                                      const Selector &dst_sel, Reg dst)
{
    ModelTime dt = minLeafToRoot(axis, idx, src_sel, src);
    dt += rootToLeaf(axis, idx, dst_sel, dst);
    ++_engine.counter("otn.minLeafToLeaf");
    return dt;
}

ModelTime
OrthogonalTreesNetwork::loadBase(Reg r, const linalg::IntMatrix &m,
                                 bool charged, ModelTime separation)
{
    assert(m.rows() <= _n && m.cols() <= _n);
    fillReg(r, kNull);
    for (std::size_t i = 0; i < m.rows(); ++i) {
        for (std::size_t j = 0; j < m.cols(); ++j) {
            assert(fitsWord(m(i, j)));
            reg(r, i, j) = m(i, j);
        }
    }
    if (!charged)
        return 0;
    // All row trees in parallel, each streaming up to N words from its
    // root to distinct leaves in a pipeline.
    if (separation == 0)
        separation = _cost.wordSeparation();
    ModelTime dt =
        CostModel::pipelineTotal(treeTraversalCost(), _n, separation);
    _engine.traceSpan("otn", "loadBase", dt,
                      baseSpan(static_cast<std::uint64_t>(_n) * _n));
    charge(dt);
    return dt;
}

linalg::IntMatrix
OrthogonalTreesNetwork::readBase(Reg r) const
{
    linalg::IntMatrix m(_n, _n, 0);
    for (std::size_t i = 0; i < _n; ++i)
        for (std::size_t j = 0; j < _n; ++j)
            m(i, j) = reg(r, i, j);
    return m;
}

ModelTime
OrthogonalTreesNetwork::permutationCost(
    std::span<const std::size_t> perm) const
{
    assert(perm.size() == _n);
    // Congestion: for each internal node (identified by its level and
    // span), count words whose source and destination fall in
    // different child subtrees.  At level h (from the leaves, h >= 1)
    // the node over span s covers leaves [s*2^h, (s+1)*2^h); a word
    // k -> perm[k] crosses it iff both endpoints are in the span but
    // in different halves.
    thread_local std::vector<std::uint64_t> crossing;
    std::uint64_t busiest = 0;
    for (std::size_t span = 2; span <= _n; span <<= 1) {
        crossing.assign(_n / span, 0);
        for (std::size_t k = 0; k < _n; ++k) {
            std::size_t from_block = k / span;
            std::size_t to_block = perm[k] / span;
            if (from_block != to_block)
                continue; // crosses a higher node instead
            bool from_left = (k % span) < span / 2;
            bool to_left = (perm[k] % span) < span / 2;
            if (from_left != to_left)
                ++crossing[from_block];
        }
        for (auto c : crossing)
            busiest = std::max(busiest, c);
    }
    ModelTime drain =
        busiest > 1 ? (busiest - 1) * _cost.wordSeparation() : 0;
    return treeTraversalCost() + drain;
}

ModelTime
OrthogonalTreesNetwork::permuteLeafToLeaf(Axis axis, std::size_t idx,
                                          std::span<const std::size_t> perm,
                                          Reg src, Reg dst)
{
    assert(perm.size() == _n);
#ifndef NDEBUG
    {
        std::vector<bool> seen(_n, false);
        for (std::size_t k = 0; k < _n; ++k) {
            assert(perm[k] < _n && !seen[perm[k]] &&
                   "perm must be a permutation");
            seen[perm[k]] = true;
        }
    }
#endif
    thread_local std::vector<std::uint64_t> moved;
    moved.resize(_n);
    for (std::size_t k = 0; k < _n; ++k) {
        auto [i, j] = leafAddr(axis, idx, k);
        moved[perm[k]] = reg(src, i, j);
    }
    for (std::size_t k = 0; k < _n; ++k) {
        auto [i, j] = leafAddr(axis, idx, k);
        reg(dst, i, j) = moved[k];
    }
    ++_engine.counter("otn.permuteLeafToLeaf");
    ModelTime dt = permutationCost(perm);
    _engine.traceSpan("otn", "permuteLeafToLeaf", dt,
                      treeSpan(axis, idx, _n, 0));
    charge(dt);
    return dt;
}

ModelTime
OrthogonalTreesNetwork::prefixSumLeafToLeaf(Axis axis, std::size_t idx,
                                            const Selector &src_sel,
                                            Reg src, Reg dst)
{
    // Two-sweep scan over the implicit tree.  The simulation computes
    // the running sum directly (it is equivalent to the up/down
    // sweeps); the cost is two combining traversals.
    std::uint64_t running = 0;
    for (std::size_t k = 0; k < _n; ++k) {
        auto [i, j] = leafAddr(axis, idx, k);
        if (selected(src_sel, i, j))
            running += reg(src, i, j);
        reg(dst, i, j) = running;
    }
    ++_engine.counter("otn.prefixSumLeafToLeaf");
    ModelTime dt = 2 * treeReduceCost();
    _engine.traceSpan("otn", "prefixSumLeafToLeaf", dt,
                      treeSpan(axis, idx, _n, 0));
    charge(dt);
    return dt;
}

ModelTime
OrthogonalTreesNetwork::baseOp(
    ModelTime op_cost,
    const std::function<void(std::size_t i, std::size_t j)> &op)
{
    for (std::size_t i = 0; i < _n; ++i)
        for (std::size_t j = 0; j < _n; ++j)
            op(i, j);
    ++_engine.counter("otn.baseOp");
    _engine.traceSpan("otn", "baseOp", op_cost, baseSpan(0));
    charge(op_cost);
    return op_cost;
}

// ----------------------------------------------------------------------
// Batch primitives.
//
// Each runs the data movement of all N per-tree primitives through the
// kernel table first (plane-contiguous, single-threaded), then replays
// the per-tree model-time accounting — the same counters, trace spans
// and charges, in the same per-iteration order — under parallelFor.
// Counters sum, trace streams merge by iteration index and charges
// take the max chain exactly as they would have in the per-tree
// formulation, so every accounting observable is bit-identical at any
// OT_HOST_THREADS.
// ----------------------------------------------------------------------

ModelTime
OrthogonalTreesNetwork::batchRowBroadcast(Reg dest)
{
    for (std::size_t i = 0; i < _n; ++i)
        _kernels->fill(regRow(dest, i), _n, _rowRoot[i]);
    ModelTime dt = treeTraversalCost();
    return parallelFor(_n, [&](std::size_t i) {
        ++_engine.counter("otn.rootToLeaf");
        _engine.traceSpan("otn", "rootToLeaf", dt,
                          treeSpan(Axis::Row, i, _n, 1));
        charge(dt);
    });
}

ModelTime
OrthogonalTreesNetwork::batchDiagToRows(Reg src, Reg dst)
{
    for (std::size_t i = 0; i < _n; ++i) {
        std::uint64_t v = reg(src, i, i);
        _rowRoot[i] = v;
        _kernels->fill(regRow(dst, i), _n, v);
    }
    ModelTime leg = treeTraversalCost();
    return parallelFor(_n, [&](std::size_t i) {
        ++_engine.counter("otn.leafToRoot");
        _engine.traceSpan("otn", "leafToRoot", leg,
                          treeSpan(Axis::Row, i, _n, 1));
        charge(leg);
        ++_engine.counter("otn.rootToLeaf");
        _engine.traceSpan("otn", "rootToLeaf", leg,
                          treeSpan(Axis::Row, i, _n, 1));
        charge(leg);
        ++_engine.counter("otn.leafToLeaf");
    });
}

ModelTime
OrthogonalTreesNetwork::batchDiagToCols(Reg src, Reg dst)
{
    // Every column j delivers reg(src, j, j) to all of its leaves, so
    // each destination row is the same vector of diagonal values: one
    // strided gather, then N contiguous row copies.
    thread_local std::vector<std::uint64_t> diagvals;
    diagvals.resize(_n);
    for (std::size_t j = 0; j < _n; ++j) {
        diagvals[j] = reg(src, j, j);
        _colRoot[j] = diagvals[j];
    }
    for (std::size_t k = 0; k < _n; ++k)
        std::memcpy(regRow(dst, k), diagvals.data(),
                    _n * sizeof(std::uint64_t));
    ModelTime leg = treeTraversalCost();
    return parallelFor(_n, [&](std::size_t j) {
        ++_engine.counter("otn.leafToRoot");
        _engine.traceSpan("otn", "leafToRoot", leg,
                          treeSpan(Axis::Col, j, _n, 1));
        charge(leg);
        ++_engine.counter("otn.rootToLeaf");
        _engine.traceSpan("otn", "rootToLeaf", leg,
                          treeSpan(Axis::Col, j, _n, 1));
        charge(leg);
        ++_engine.counter("otn.leafToLeaf");
    });
}

ModelTime
OrthogonalTreesNetwork::batchCountRowsToLeaves(Reg flag, Reg dst)
{
    for (std::size_t i = 0; i < _n; ++i) {
        std::uint64_t c = _kernels->countNonzero(regRow(flag, i), _n);
        _rowRoot[i] = c;
        _kernels->fill(regRow(dst, i), _n, c);
    }
    ModelTime up = treeReduceCost();
    ModelTime down = treeTraversalCost();
    return parallelFor(_n, [&](std::size_t i) {
        ++_engine.counter("otn.countLeafToRoot");
        _engine.traceSpan("otn", "countLeafToRoot", up,
                          treeSpan(Axis::Row, i, _n, 1));
        charge(up);
        ++_engine.counter("otn.rootToLeaf");
        _engine.traceSpan("otn", "rootToLeaf", down,
                          treeSpan(Axis::Row, i, _n, 1));
        charge(down);
        ++_engine.counter("otn.countLeafToLeaf");
    });
}

ModelTime
OrthogonalTreesNetwork::batchPickColByKeyIndex(Reg key, Reg src)
{
    thread_local std::vector<std::uint64_t> cnt;
    cnt.assign(_n, 0);
    _kernels->fill(_colRoot.data(), _n, kNull);
    for (std::size_t k = 0; k < _n; ++k)
        _kernels->scatterEqIndexRow(_colRoot.data(), cnt.data(),
                                    regRow(key, k), regRow(src, k), _n);
    for (std::size_t j = 0; j < _n; ++j)
        assert(cnt[j] <= 1 &&
               "LEAFTOROOT requires a unique source leaf");
    ModelTime dt = treeTraversalCost();
    return parallelFor(_n, [&](std::size_t j) {
        ++_engine.counter("otn.leafToRoot");
        _engine.traceSpan("otn", "leafToRoot", dt,
                          treeSpan(Axis::Col, j, _n, 1));
        charge(dt);
    });
}

ModelTime
OrthogonalTreesNetwork::batchMinRowsToDiag(Reg src, Reg out)
{
    for (std::size_t i = 0; i < _n; ++i) {
        std::uint64_t m = _kernels->reduceMin(regRow(src, i), _n);
        _rowRoot[i] = m;
        reg(out, i, i) = m;
    }
    ModelTime up = treeReduceCost();
    ModelTime down = treeTraversalCost();
    return parallelFor(_n, [&](std::size_t i) {
        ++_engine.counter("otn.minLeafToRoot");
        _engine.traceSpan("otn", "minLeafToRoot", up,
                          treeSpan(Axis::Row, i, _n, 1));
        charge(up);
        ++_engine.counter("otn.rootToLeaf");
        _engine.traceSpan("otn", "rootToLeaf", down,
                          treeSpan(Axis::Row, i, _n, 1));
        charge(down);
    });
}

ModelTime
OrthogonalTreesNetwork::batchCompareRank(Reg a, Reg b, Reg flag)
{
    for (std::size_t i = 0; i < _n; ++i)
        _kernels->cmpRankRow(regRow(flag, i), regRow(a, i),
                             regRow(b, i), _n, i);
    ModelTime op_cost = baseOpCost(_cost.bitSerialOp());
    ++_engine.counter("otn.baseOp");
    _engine.traceSpan("otn", "baseOp", op_cost, baseSpan(0));
    charge(op_cost);
    return op_cost;
}

ModelTime
OrthogonalTreesNetwork::batchSelectValAtKeyIndex(Reg key, Reg val, Reg out)
{
    for (std::size_t i = 0; i < _n; ++i)
        _kernels->selectEqIndexRow(regRow(out, i), regRow(key, i),
                                   regRow(val, i), _n);
    ModelTime op_cost = baseOpCost(_cost.bitSerialOp());
    ++_engine.counter("otn.baseOp");
    _engine.traceSpan("otn", "baseOp", op_cost, baseSpan(0));
    charge(op_cost);
    return op_cost;
}

} // namespace ot::otn

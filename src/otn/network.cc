#include "otn/network.hh"

#include <algorithm>

#include "vlsi/bitmath.hh"

namespace ot::otn {

OrthogonalTreesNetwork::OrthogonalTreesNetwork(std::size_t n,
                                               const CostModel &cost,
                                               layout::LayoutParams params)
    : _n(vlsi::nextPow2(n ? n : 1)),
      _cost(cost),
      _layout(_n, cost.word().bits(), params),
      _regs(kNumRegs, std::vector<std::uint64_t>(_n * _n, 0)),
      _rowRoot(_n, kNull),
      _colRoot(_n, kNull)
{
}

void
OrthogonalTreesNetwork::setRowRootInputs(std::span<const std::uint64_t> values)
{
    assert(values.size() <= _n);
    for (std::size_t i = 0; i < values.size(); ++i) {
        assert(fitsWord(values[i]));
        _rowRoot[i] = values[i];
    }
    for (std::size_t i = values.size(); i < _n; ++i)
        _rowRoot[i] = kNull;
}

std::vector<std::uint64_t>
OrthogonalTreesNetwork::colRootOutputs() const
{
    return _colRoot;
}

void
OrthogonalTreesNetwork::fillReg(Reg r, std::uint64_t value)
{
    auto &plane = _regs[static_cast<unsigned>(r)];
    std::fill(plane.begin(), plane.end(), value);
}

ModelTime
OrthogonalTreesNetwork::parallelFor(
    std::size_t count, const std::function<void(std::size_t)> &body)
{
    ++_parallelDepth;
    ModelTime saved_chain = _chainAccum;
    ModelTime longest = 0;
    for (std::size_t k = 0; k < count; ++k) {
        _chainAccum = 0;
        body(k);
        longest = std::max(longest, _chainAccum);
    }
    --_parallelDepth;
    _chainAccum = saved_chain;
    charge(longest);
    return longest;
}

void
OrthogonalTreesNetwork::charge(ModelTime dt)
{
    if (_parallelDepth > 0)
        _chainAccum += dt;
    else
        _acct.advance(dt);
}

ModelTime
OrthogonalTreesNetwork::treeTraversalCost() const
{
    return _cost.wordAlongPath(_layout.tree().pathEdges());
}

ModelTime
OrthogonalTreesNetwork::treeReduceCost() const
{
    return _cost.reducePath(_layout.tree().pathEdges());
}

std::uint64_t &
OrthogonalTreesNetwork::rootReg(Axis axis, std::size_t idx)
{
    assert(idx < _n);
    return axis == Axis::Row ? _rowRoot[idx] : _colRoot[idx];
}

ModelTime
OrthogonalTreesNetwork::rootToLeaf(Axis axis, std::size_t idx,
                                   const Selector &sel, Reg dest)
{
    std::uint64_t value = rootReg(axis, idx);
    for (std::size_t k = 0; k < _n; ++k) {
        auto [i, j] = leafAddr(axis, idx, k);
        if (sel(i, j))
            reg(dest, i, j) = value;
    }
    ++_stats.counter("otn.rootToLeaf");
    ModelTime dt = treeTraversalCost();
    charge(dt);
    return dt;
}

ModelTime
OrthogonalTreesNetwork::leafToRoot(Axis axis, std::size_t idx,
                                   const Selector &sel, Reg src)
{
    std::uint64_t value = kNull;
    [[maybe_unused]] unsigned selected = 0;
    for (std::size_t k = 0; k < _n; ++k) {
        auto [i, j] = leafAddr(axis, idx, k);
        if (sel(i, j)) {
            value = reg(src, i, j);
            ++selected;
        }
    }
    assert(selected <= 1 && "LEAFTOROOT requires a unique source leaf");
    rootReg(axis, idx) = value;
    ++_stats.counter("otn.leafToRoot");
    ModelTime dt = treeTraversalCost();
    charge(dt);
    return dt;
}

std::uint64_t
OrthogonalTreesNetwork::reduceTree(
    const std::function<std::uint64_t(std::size_t k)> &leaf_value,
    const std::function<std::uint64_t(std::uint64_t, std::uint64_t)>
        &combine)
{
    // Level-by-level: each IP combines the values accumulated by its
    // two sons (Section II-B, COUNT-LEAFTOROOT description).
    std::vector<std::uint64_t> level(_n);
    for (std::size_t k = 0; k < _n; ++k)
        level[k] = leaf_value(k);
    while (level.size() > 1) {
        std::vector<std::uint64_t> next(level.size() / 2);
        for (std::size_t k = 0; k < next.size(); ++k)
            next[k] = combine(level[2 * k], level[2 * k + 1]);
        level.swap(next);
    }
    return level[0];
}

ModelTime
OrthogonalTreesNetwork::countLeafToRoot(Axis axis, std::size_t idx, Reg flag)
{
    rootReg(axis, idx) = reduceTree(
        [&](std::size_t k) {
            auto [i, j] = leafAddr(axis, idx, k);
            return reg(flag, i, j) != 0 ? std::uint64_t{1} : 0;
        },
        [](std::uint64_t a, std::uint64_t b) { return a + b; });
    ++_stats.counter("otn.countLeafToRoot");
    ModelTime dt = treeReduceCost();
    charge(dt);
    return dt;
}

ModelTime
OrthogonalTreesNetwork::sumLeafToRoot(Axis axis, std::size_t idx,
                                      const Selector &sel, Reg src)
{
    rootReg(axis, idx) = reduceTree(
        [&](std::size_t k) -> std::uint64_t {
            auto [i, j] = leafAddr(axis, idx, k);
            return sel(i, j) ? reg(src, i, j) : 0;
        },
        [](std::uint64_t a, std::uint64_t b) { return a + b; });
    ++_stats.counter("otn.sumLeafToRoot");
    ModelTime dt = treeReduceCost();
    charge(dt);
    return dt;
}

ModelTime
OrthogonalTreesNetwork::minLeafToRoot(Axis axis, std::size_t idx,
                                      const Selector &sel, Reg src)
{
    rootReg(axis, idx) = reduceTree(
        [&](std::size_t k) -> std::uint64_t {
            auto [i, j] = leafAddr(axis, idx, k);
            return sel(i, j) ? reg(src, i, j) : kNull;
        },
        [](std::uint64_t a, std::uint64_t b) { return std::min(a, b); });
    ++_stats.counter("otn.minLeafToRoot");
    ModelTime dt = treeReduceCost();
    charge(dt);
    return dt;
}

ModelTime
OrthogonalTreesNetwork::leafToLeaf(Axis axis, std::size_t idx,
                                   const Selector &src_sel, Reg src,
                                   const Selector &dst_sel, Reg dst)
{
    ModelTime dt = leafToRoot(axis, idx, src_sel, src);
    dt += rootToLeaf(axis, idx, dst_sel, dst);
    ++_stats.counter("otn.leafToLeaf");
    return dt;
}

ModelTime
OrthogonalTreesNetwork::countLeafToLeaf(Axis axis, std::size_t idx, Reg flag,
                                        const Selector &dst_sel, Reg dst)
{
    ModelTime dt = countLeafToRoot(axis, idx, flag);
    dt += rootToLeaf(axis, idx, dst_sel, dst);
    ++_stats.counter("otn.countLeafToLeaf");
    return dt;
}

ModelTime
OrthogonalTreesNetwork::sumLeafToLeaf(Axis axis, std::size_t idx,
                                      const Selector &src_sel, Reg src,
                                      const Selector &dst_sel, Reg dst)
{
    ModelTime dt = sumLeafToRoot(axis, idx, src_sel, src);
    dt += rootToLeaf(axis, idx, dst_sel, dst);
    ++_stats.counter("otn.sumLeafToLeaf");
    return dt;
}

ModelTime
OrthogonalTreesNetwork::minLeafToLeaf(Axis axis, std::size_t idx,
                                      const Selector &src_sel, Reg src,
                                      const Selector &dst_sel, Reg dst)
{
    ModelTime dt = minLeafToRoot(axis, idx, src_sel, src);
    dt += rootToLeaf(axis, idx, dst_sel, dst);
    ++_stats.counter("otn.minLeafToLeaf");
    return dt;
}

ModelTime
OrthogonalTreesNetwork::runUncharged(const std::function<void()> &body)
{
    ++_parallelDepth;
    ModelTime saved = _chainAccum;
    _chainAccum = 0;
    body();
    ModelTime would_charge = _chainAccum;
    _chainAccum = saved;
    --_parallelDepth;
    return would_charge;
}

ModelTime
OrthogonalTreesNetwork::loadBase(Reg r, const linalg::IntMatrix &m,
                                 bool charged, ModelTime separation)
{
    assert(m.rows() <= _n && m.cols() <= _n);
    fillReg(r, kNull);
    for (std::size_t i = 0; i < m.rows(); ++i) {
        for (std::size_t j = 0; j < m.cols(); ++j) {
            assert(fitsWord(m(i, j)));
            reg(r, i, j) = m(i, j);
        }
    }
    if (!charged)
        return 0;
    // All row trees in parallel, each streaming up to N words from its
    // root to distinct leaves in a pipeline.
    if (separation == 0)
        separation = _cost.wordSeparation();
    ModelTime dt =
        CostModel::pipelineTotal(treeTraversalCost(), _n, separation);
    charge(dt);
    return dt;
}

linalg::IntMatrix
OrthogonalTreesNetwork::readBase(Reg r) const
{
    linalg::IntMatrix m(_n, _n, 0);
    for (std::size_t i = 0; i < _n; ++i)
        for (std::size_t j = 0; j < _n; ++j)
            m(i, j) = reg(r, i, j);
    return m;
}

ModelTime
OrthogonalTreesNetwork::permutationCost(
    std::span<const std::size_t> perm) const
{
    assert(perm.size() == _n);
    // Congestion: for each internal node (identified by its level and
    // span), count words whose source and destination fall in
    // different child subtrees.  At level h (from the leaves, h >= 1)
    // the node over span s covers leaves [s*2^h, (s+1)*2^h); a word
    // k -> perm[k] crosses it iff both endpoints are in the span but
    // in different halves.
    std::uint64_t busiest = 0;
    for (std::size_t span = 2; span <= _n; span <<= 1) {
        std::vector<std::uint64_t> crossing(_n / span, 0);
        for (std::size_t k = 0; k < _n; ++k) {
            std::size_t from_block = k / span;
            std::size_t to_block = perm[k] / span;
            if (from_block != to_block)
                continue; // crosses a higher node instead
            bool from_left = (k % span) < span / 2;
            bool to_left = (perm[k] % span) < span / 2;
            if (from_left != to_left)
                ++crossing[from_block];
        }
        for (auto c : crossing)
            busiest = std::max(busiest, c);
    }
    ModelTime drain =
        busiest > 1 ? (busiest - 1) * _cost.wordSeparation() : 0;
    return treeTraversalCost() + drain;
}

ModelTime
OrthogonalTreesNetwork::permuteLeafToLeaf(Axis axis, std::size_t idx,
                                          std::span<const std::size_t> perm,
                                          Reg src, Reg dst)
{
    assert(perm.size() == _n);
#ifndef NDEBUG
    {
        std::vector<bool> seen(_n, false);
        for (std::size_t k = 0; k < _n; ++k) {
            assert(perm[k] < _n && !seen[perm[k]] &&
                   "perm must be a permutation");
            seen[perm[k]] = true;
        }
    }
#endif
    std::vector<std::uint64_t> moved(_n);
    for (std::size_t k = 0; k < _n; ++k) {
        auto [i, j] = leafAddr(axis, idx, k);
        moved[perm[k]] = reg(src, i, j);
    }
    for (std::size_t k = 0; k < _n; ++k) {
        auto [i, j] = leafAddr(axis, idx, k);
        reg(dst, i, j) = moved[k];
    }
    ++_stats.counter("otn.permuteLeafToLeaf");
    ModelTime dt = permutationCost(perm);
    charge(dt);
    return dt;
}

ModelTime
OrthogonalTreesNetwork::prefixSumLeafToLeaf(Axis axis, std::size_t idx,
                                            const Selector &src_sel,
                                            Reg src, Reg dst)
{
    // Two-sweep scan over the implicit tree.  The simulation computes
    // the running sum directly (it is equivalent to the up/down
    // sweeps); the cost is two combining traversals.
    std::uint64_t running = 0;
    for (std::size_t k = 0; k < _n; ++k) {
        auto [i, j] = leafAddr(axis, idx, k);
        if (src_sel(i, j))
            running += reg(src, i, j);
        reg(dst, i, j) = running;
    }
    ++_stats.counter("otn.prefixSumLeafToLeaf");
    ModelTime dt = 2 * treeReduceCost();
    charge(dt);
    return dt;
}

ModelTime
OrthogonalTreesNetwork::baseOp(
    ModelTime op_cost,
    const std::function<void(std::size_t i, std::size_t j)> &op)
{
    for (std::size_t i = 0; i < _n; ++i)
        for (std::size_t j = 0; j < _n; ++j)
            op(i, j);
    ++_stats.counter("otn.baseOp");
    charge(op_cost);
    return op_cost;
}

} // namespace ot::otn

/**
 * @file
 * Matrix algorithms on the OTN (Section III-A of the paper).
 *
 * The building block is the vector-matrix product: with B stored in
 * the base (b(k, j) in BP(k, j)), a vector entering at the row roots
 * is broadcast down the row trees, multiplied pointwise, and summed up
 * the column trees — O(log^2 N) per vector.
 *
 * A full product A * B is the N vector products A_i * B executed
 * "pipedo": successive rows of A enter the network O(log N) time
 * apart, so the total time is O(N log N + log^2 N) (Section III-A),
 * with result rows emerging at the output ports every O(log N) units.
 *
 * For Boolean matrices the word shrinks to one bit, the pipeline
 * separation drops to O(1), and — Section VI-B / Table II — a larger
 * machine (one OTN block per row of A, the simulation of the
 * (N^2 x N^2)-OTN) reaches O(log^2 N) total time.  That variant is
 * boolMatMulReplicated below.
 */

#pragma once

#include "linalg/matrix.hh"
#include "otn/network.hh"

namespace ot::otn {

/** Outcome of a matrix product run on the machine. */
struct MatMulResult
{
    linalg::IntMatrix product;
    /** Model time for the whole (pipelined) computation. */
    ModelTime time = 0;
    /** Model time from first input to first output row. */
    ModelTime firstRowLatency = 0;
    /** Model time between successive output rows (pipeline beat). */
    ModelTime rowInterval = 0;
};

/**
 * VECTORMATRIXMULT-OTN: c = a * B on an OTN whose base already holds
 * B in register B.  `a` enters at the row roots; the result appears at
 * the column roots.  Returns the product and charges O(log^2 N).
 */
std::vector<std::uint64_t> vecMatMulOtn(OrthogonalTreesNetwork &net,
                                        const std::vector<std::uint64_t> &a);

/**
 * MATRIXMULT-OTN: C = A * B by pipelining the N vector products
 * (Section III-A "pipedo").  Builds on an (n x n)-OTN where
 * n = A.rows() = B side.
 */
MatMulResult matMulPipelined(OrthogonalTreesNetwork &net,
                             const linalg::IntMatrix &a,
                             const linalg::IntMatrix &b);

/**
 * Boolean MATRIXMULT on the OTN with the same pipeline but O(1)
 * element separation (entries are single bits): O(N + log^2 N) time.
 */
MatMulResult boolMatMulPipelined(OrthogonalTreesNetwork &net,
                                 const linalg::BoolMatrix &a,
                                 const linalg::BoolMatrix &b);

/** Result of a pipelined stream of matrix products. */
struct MatMulStreamResult
{
    /** Per-matrix products, in submission order. */
    std::vector<linalg::IntMatrix> products;
    /** Model time from first input to last output. */
    ModelTime totalTime = 0;
    /** Beat between successive *matrices* once the pipe is full. */
    ModelTime matrixInterval = 0;
};

/**
 * Section VIII applied to matrix multiplication: a stream of matrices
 * A_0, A_1, ... against the resident B.  Within one product the rows
 * ride the Section III-A pipeline; across products, A_{i+1}'s first
 * row follows A_i's last row one word-beat later, so the machine emits
 * one product every ~N log N with a single fill latency up front.
 */
MatMulStreamResult matMulStream(OrthogonalTreesNetwork &net,
                                const std::vector<linalg::IntMatrix> &as,
                                const linalg::IntMatrix &b);

/**
 * The Table II machine: N OTN blocks working on all rows of A
 * simultaneously (the practical simulation of the (N^2 x N^2)-OTN /
 * big-OTC construction).  All vector products run in parallel; the
 * charged time is the broadcast of B to the blocks (a pipelined
 * O(log^2 N) distribution) plus ONE vector product: O(log^2 N) total.
 * The simulation reuses a single physical block for every row, which
 * is exact because the products are independent.
 */
MatMulResult boolMatMulReplicated(OrthogonalTreesNetwork &block,
                                  const linalg::BoolMatrix &a,
                                  const linalg::BoolMatrix &b);

} // namespace ot::otn

/**
 * @file
 * Small integer/bit math helpers used throughout the VLSI model.
 *
 * All asymptotic quantities in the paper are expressed in terms of
 * log2(N); these helpers provide the exact integer versions used by the
 * simulators (floor/ceil logs, power-of-two tests, ceiling division).
 */

#pragma once
// otcheck:hotpath — per-event helpers; keep allocation-free

#include <cassert>
#include <cstdint>

namespace ot::vlsi {

/** Floor of log2(x). Requires x >= 1. */
constexpr unsigned
ilog2Floor(std::uint64_t x)
{
    assert(x >= 1);
    unsigned r = 0;
    while (x >>= 1)
        ++r;
    return r;
}

/** Ceiling of log2(x). Requires x >= 1. ilog2Ceil(1) == 0. */
constexpr unsigned
ilog2Ceil(std::uint64_t x)
{
    assert(x >= 1);
    unsigned f = ilog2Floor(x);
    return (std::uint64_t{1} << f) == x ? f : f + 1;
}

/** True iff x is a power of two (x >= 1). */
constexpr bool
isPow2(std::uint64_t x)
{
    return x >= 1 && (x & (x - 1)) == 0;
}

/** Smallest power of two >= x. Requires x >= 1. */
constexpr std::uint64_t
nextPow2(std::uint64_t x)
{
    assert(x >= 1);
    return std::uint64_t{1} << ilog2Ceil(x);
}

/** Ceiling division a / b with b > 0. */
constexpr std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    assert(b > 0);
    return (a + b - 1) / b;
}

/**
 * The paper's "log N" as a machine quantity: max(1, ceil(log2 n)).
 *
 * Guarding with 1 keeps degenerate sizes (n <= 2) well-defined: word
 * widths, cycle lengths and channel pitches are all Theta(log N) and
 * must never be zero.
 */
constexpr unsigned
logCeilAtLeast1(std::uint64_t n)
{
    if (n <= 2)
        return 1;
    return ilog2Ceil(n);
}

/** Reverse the low `bits` bits of x (used by FFT / shuffle networks). */
constexpr std::uint64_t
reverseBits(std::uint64_t x, unsigned bits)
{
    std::uint64_t r = 0;
    for (unsigned i = 0; i < bits; ++i) {
        r = (r << 1) | (x & 1);
        x >>= 1;
    }
    return r;
}

} // namespace ot::vlsi

#include "vlsi/cost_model.hh"

namespace ot::vlsi {

ModelTime
CostModel::pathLatency(std::span<const WireLength> edges) const
{
    ModelTime t = 0;
    for (WireLength len : edges)
        t += edgeDelay(len);
    return t;
}

ModelTime
CostModel::wordAlongPath(std::span<const WireLength> edges) const
{
    return pathLatency(edges) + (_word.bits() - 1) * wireBitInterval(_model);
}

ModelTime
CostModel::wordsAlongPath(std::span<const WireLength> edges,
                          std::uint64_t count, ModelTime separation) const
{
    if (count == 0)
        return 0;
    return pipelineTotal(wordAlongPath(edges), count, separation);
}

ModelTime
CostModel::reducePath(std::span<const WireLength> edges) const
{
    // One combining unit per internal node along the path.
    return wordAlongPath(edges) + edges.size();
}

} // namespace ot::vlsi

/**
 * @file
 * Word format of the machines in the paper.
 *
 * Section II-B, assumption (i): "All numbers being used are O(log N)
 * bits long", and (ii) "Both communication and processing are bit
 * serial."  Every network simulated here therefore carries words of
 * Theta(log N) bits, moved one bit per time unit, and the per-word cost
 * of any operation depends on this width.
 */

#pragma once
// otcheck:hotpath — per-event helpers; keep allocation-free

#include <cstddef>
#include <cstdint>

#include "vlsi/bitmath.hh"

namespace ot::vlsi {

/**
 * The bit-serial word format for a problem of size n.
 *
 * `bits` is the number of bits per word; the paper's algorithms assume
 * words of c * log2(N) bits for a small constant c.  We use c = 2 by
 * default so that ranks, indices and counts up to N^2 (e.g. the COUNT
 * results over an N x N base) all fit in one word.
 */
class WordFormat
{
  public:
    /** A word format of exactly `bits` bits (bits >= 1). */
    explicit constexpr WordFormat(unsigned bits) : _bits(bits ? bits : 1) {}

    /** The paper's default format for problem size n: 2*ceil(log2 n). */
    static constexpr WordFormat
    forProblemSize(std::uint64_t n)
    {
        return WordFormat(2 * logCeilAtLeast1(n));
    }

    /** Number of bits per word. */
    constexpr unsigned bits() const { return _bits; }

    /** Largest value representable (saturating at 2^63-1 for wide words). */
    constexpr std::uint64_t
    maxValue() const
    {
        if (_bits >= 63)
            return (std::uint64_t{1} << 63) - 1;
        return (std::uint64_t{1} << _bits) - 1;
    }

    constexpr bool operator==(const WordFormat &other) const = default;

  private:
    unsigned _bits;
};

} // namespace ot::vlsi

/**
 * @file
 * Wire delay rules of the VLSI models compared in the paper.
 *
 * The paper (Section I-A) surveys three families of VLSI timing models,
 * differing only in the time for one bit to cross a wire of length K
 * (lambda units):
 *
 *  - Constant delay:     O(1), regardless of K          [5], [23], [24]
 *  - Logarithmic delay:  O(log K) (Thompson's model)    [29], [30]
 *  - Linear delay:       O(K)                           [4], [8]
 *
 * Thompson's model additionally specifies that a length-K wire has a
 * log(K)-stage driver whose stages are individually clocked, so bits
 * can be *pipelined* through the wire at O(1) intervals even though the
 * first bit takes O(log K).  All three rules are exposed here so the
 * same simulation can be replayed under any model (Tables I vs IV).
 */

#pragma once
// otcheck:hotpath — per-event helpers; keep allocation-free

#include <cstdint>
#include <string>

#include "vlsi/bitmath.hh"

namespace ot::vlsi {

/** Model time, in abstract clock units (one unit = one driver stage). */
using ModelTime = std::uint64_t;

/** Wire length in lambda (feature-size) units. */
using WireLength = std::uint64_t;

/** The three wire-delay rules of Section I-A. */
enum class DelayModel {
    /** O(1) per wire; the model of Preparata & Vuillemin [23]. */
    Constant,
    /** O(log K) first-bit latency; Thompson's model [29]. */
    Logarithmic,
    /** O(K); the most pessimistic rule [4], [8]. */
    Linear,
};

/** Human-readable name for table headers. */
std::string toString(DelayModel model);

/**
 * First-bit latency across a single wire of length `len`.
 *
 * Under the logarithmic rule this is ceil(log2 len) + 1: the number of
 * amplification stages in the wire's driver, plus the receiving latch.
 * A zero-length (abutting) connection still costs one unit.
 */
constexpr ModelTime
wireDelay(DelayModel model, WireLength len)
{
    switch (model) {
      case DelayModel::Constant:
        return 1;
      case DelayModel::Logarithmic:
        return len <= 1 ? 1 : ModelTime{ilog2Ceil(len)} + 1;
      case DelayModel::Linear:
        return len == 0 ? 1 : ModelTime{len};
    }
    return 1; // unreachable; keeps -Werror=return-type happy
}

/**
 * Interval at which successive bits can follow the first along a wire.
 *
 * Thompson's drivers are individually clocked, so all three models
 * pipeline bits at unit intervals; only the linear model, which has no
 * driver chain, forwards at unit rate trivially (the wire is a bus).
 */
constexpr ModelTime
wireBitInterval(DelayModel)
{
    return 1;
}

} // namespace ot::vlsi

#include "vlsi/delay.hh"

namespace ot::vlsi {

std::string
toString(DelayModel model)
{
    switch (model) {
      case DelayModel::Constant:
        return "constant-delay";
      case DelayModel::Logarithmic:
        return "log-delay (Thompson)";
      case DelayModel::Linear:
        return "linear-delay";
    }
    return "unknown";
}

} // namespace ot::vlsi

/**
 * @file
 * The cost rules of Thompson's VLSI model, as used by every simulator
 * in this repository.
 *
 * A CostModel turns *geometry* (wire lengths along a communication
 * path, taken from a concrete layout) into *model time*.  It captures
 * the assumptions of Section II-B of the paper:
 *
 *  - words are O(log N) bits and move bit-serially;
 *  - a wire of length K has first-bit latency wireDelay(model, K) but
 *    pipelines subsequent bits at unit intervals;
 *  - bit-serial compare/add needs O(1) logic and O(bits) time;
 *  - bit-serial multiply uses the serial pipeline technique [6], [13]
 *    in O(bits) time and O(bits) area;
 *  - with Thompson's "scaling" [31] every tree edge behaves like a
 *    constant-delay wire (each internal processor is a constant factor
 *    larger than its children), turning O(log^2 N) tree traversals
 *    into O(log N) ones without changing the asymptotic area.
 */

#pragma once

#include <span>

#include "vlsi/delay.hh"
#include "vlsi/word.hh"

namespace ot::vlsi {

/**
 * Cost rules binding a delay model to a word format.
 *
 * Instances are small value types; networks keep one and consult it for
 * every primitive.  Swapping the delay model (Table I vs Table IV) or
 * enabling scaling (Thompson [31]) changes *only* this object.
 */
class CostModel
{
  public:
    /**
     * @param model        Wire-delay rule in force.
     * @param word         Bit-serial word format.
     * @param scaled_trees Apply Thompson's scaling to tree edges, making
     *                     each edge constant-delay (Section VII remark).
     */
    CostModel(DelayModel model, WordFormat word, bool scaled_trees = false)
        : _model(model), _word(word), _scaledTrees(scaled_trees)
    {}

    DelayModel delayModel() const { return _model; }
    const WordFormat &word() const { return _word; }
    bool scaledTrees() const { return _scaledTrees; }

    /** First-bit latency across one wire, honouring the scaling option. */
    ModelTime
    edgeDelay(WireLength len) const
    {
        if (_scaledTrees)
            return wireDelay(DelayModel::Constant, len);
        return wireDelay(_model, len);
    }

    /** First-bit latency along a multi-edge path (e.g. root to leaf). */
    ModelTime pathLatency(std::span<const WireLength> edges) const;

    /**
     * Time to move one whole word along a path: first-bit latency plus
     * the remaining bits pipelined at unit intervals (Section II-B).
     */
    ModelTime wordAlongPath(std::span<const WireLength> edges) const;

    /**
     * Time to stream `count` words along a path in a pipeline,
     * successive words separated by `separation` time units.
     *
     * The paper's convention (Section III-A): "pipelining implies a
     * separation of O(log N) time between successive elements" — i.e.
     * separation = word().bits() — unless stated otherwise (Boolean
     * data can use separation 1).
     */
    ModelTime wordsAlongPath(std::span<const WireLength> edges,
                             std::uint64_t count,
                             ModelTime separation) const;

    /** Default pipeline separation between successive words: O(log N). */
    ModelTime wordSeparation() const { return _word.bits(); }

    /**
     * A word-reduction path: like wordAlongPath but each intermediate
     * node spends one extra unit combining its children's bit streams
     * (LSB-first for SUM, MSB-first for MIN — Section VII-D).
     */
    ModelTime reducePath(std::span<const WireLength> edges) const;

    /** Bit-serial compare/add/subtract of two words: O(bits). */
    ModelTime bitSerialOp() const { return _word.bits(); }

    /** Serial pipeline multiplication of two words [6], [13]: O(bits). */
    ModelTime bitSerialMultiply() const { return 2 * _word.bits(); }

    /** Generic pipeline completion time. */
    static ModelTime
    pipelineTotal(ModelTime latency, std::uint64_t count,
                  ModelTime separation)
    {
        if (count == 0)
            return 0;
        return latency + (count - 1) * separation;
    }

    bool operator==(const CostModel &other) const = default;

  private:
    DelayModel _model;
    WordFormat _word;
    bool _scaledTrees;
};

} // namespace ot::vlsi

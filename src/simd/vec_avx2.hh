/**
 * @file
 * AVX2 vector view: 4 x u64 lanes.
 *
 * AVX2 has no unsigned 64-bit compare or min/max, so both are derived
 * from the signed compare after flipping the sign bit of each lane
 * (x XOR 2^63 maps unsigned order onto signed order); min/max then
 * blend on the comparison mask.  This is the only per-ISA cleverness —
 * everything else is a direct transcription of the ScalarVec contract.
 *
 * This header may only be included from src/simd (the otcheck
 * intrinsics rule bans raw intrinsics elsewhere) and only compiled in
 * the dedicated -mavx2 translation unit.
 */

#pragma once

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

namespace ot::simd {

struct Avx2Vec
{
    static constexpr std::size_t kWidth = 4;

    using Reg = __m256i;

    static Reg
    load(const std::uint64_t *p)
    {
        return _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p));
    }

    static void
    store(std::uint64_t *p, Reg v)
    {
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), v);
    }

    static Reg splat(std::uint64_t x) { return _mm256_set1_epi64x(x); }

    static Reg
    iota(std::uint64_t start)
    {
        return _mm256_add_epi64(splat(start),
                                _mm256_set_epi64x(3, 2, 1, 0));
    }

    static Reg add(Reg a, Reg b) { return _mm256_add_epi64(a, b); }

    static Reg
    minU(Reg a, Reg b)
    {
        return blend(gtU(a, b), b, a);
    }

    static Reg
    maxU(Reg a, Reg b)
    {
        return blend(gtU(a, b), a, b);
    }

    static Reg eq(Reg a, Reg b) { return _mm256_cmpeq_epi64(a, b); }

    static Reg
    gtU(Reg a, Reg b)
    {
        const Reg flip = splat(std::uint64_t{1} << 63);
        return _mm256_cmpgt_epi64(_mm256_xor_si256(a, flip),
                                  _mm256_xor_si256(b, flip));
    }

    static Reg bitAnd(Reg a, Reg b) { return _mm256_and_si256(a, b); }

    static Reg bitOr(Reg a, Reg b) { return _mm256_or_si256(a, b); }

    static Reg
    blend(Reg mask, Reg a, Reg b)
    {
        return _mm256_blendv_epi8(b, a, mask);
    }

    static bool
    any(Reg mask)
    {
        return _mm256_movemask_epi8(mask) != 0;
    }

    static std::uint64_t
    hsum(Reg v)
    {
        alignas(32) std::uint64_t lanes[kWidth];
        _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), v);
        return lanes[0] + lanes[1] + lanes[2] + lanes[3];
    }

    static std::uint64_t
    hminU(Reg v)
    {
        alignas(32) std::uint64_t lanes[kWidth];
        _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), v);
        std::uint64_t m = lanes[0];
        for (std::size_t i = 1; i < kWidth; ++i)
            m = lanes[i] < m ? lanes[i] : m;
        return m;
    }
};

} // namespace ot::simd

/**
 * @file
 * Scalar kernel table: the portable fallback and semantic reference.
 */

#include "simd/kernels.hh"

#include "simd/kernels_generic.hh"
#include "simd/vec_scalar.hh"

namespace ot::simd {

namespace {

constexpr KernelTable kScalarTable = {
    .fill = fillT<ScalarVec>,
    .countNonzero = countNonzeroT<ScalarVec>,
    .reduceSum = reduceSumT<ScalarVec>,
    .reduceMin = reduceMinT<ScalarVec>,
    .cmpRankRow = cmpRankRowT<ScalarVec>,
    .selectEqIndexRow = selectEqIndexRowT<ScalarVec>,
    .scatterEqIndexRow = scatterEqIndexRowT<ScalarVec>,
    .pickEqIndexAccum = pickEqIndexAccumT<ScalarVec>,
    .compexLinear = compexLinearT<ScalarVec>,
    .rotateCycles = rotateCyclesT<ScalarVec>,
};

} // namespace

const KernelTable &
scalarKernels()
{
    return kScalarTable;
}

} // namespace ot::simd

// otcheck:hotpath — batch register-plane kernels; keep allocation-free
/**
 * @file
 * Batch kernel table for the struct-of-arrays register planes.
 *
 * Each entry processes one contiguous span (a tree level, a row of the
 * OTN base plane, or an OTC cycle stream) of u64 words per call — the
 * level-at-a-time formulation of the paper's machines, where every
 * processor on a level performs the same register transfer in the same
 * cycle.  Kernels move and combine DATA ONLY: model-time accounting
 * (counters, trace spans, charges) is performed by the caller, outside
 * the table, so the vector backends are bit-identical to the scalar
 * one in every observable except wall-clock time.
 *
 * The table is a plain struct of function pointers resolved once at
 * startup (see backend.hh); hot paths indirect through it with no
 * virtual dispatch and no allocation.
 */

#pragma once

#include <cstddef>
#include <cstdint>

#include "simd/backend.hh"

namespace ot::simd {

/** Absent-value word shared with otn::kNull / otc::kNull. */
inline constexpr std::uint64_t kNullWord = ~std::uint64_t{0};

/** dst[0..n) = value. */
using FillFn = void (*)(std::uint64_t *dst, std::size_t n,
                        std::uint64_t value);

/** Number of nonzero words in src[0..n). */
using CountNonzeroFn = std::uint64_t (*)(const std::uint64_t *src,
                                         std::size_t n);

/** Sum of src[0..n) mod 2^64. */
using ReduceSumFn = std::uint64_t (*)(const std::uint64_t *src,
                                      std::size_t n);

/** Unsigned min of src[0..n); kNullWord for an empty span. */
using ReduceMinFn = std::uint64_t (*)(const std::uint64_t *src,
                                      std::size_t n);

/**
 * flag[j] = (a[j] > b[j] || (a[j] == b[j] && i > j)) ? 1 : 0 for
 * j in [0, n) — the rank-comparison base op of the enumeration sort,
 * with `i` the fixed row index breaking ties by position.
 */
using CmpRankRowFn = void (*)(std::uint64_t *flag, const std::uint64_t *a,
                              const std::uint64_t *b, std::size_t n,
                              std::uint64_t i);

/** out[j] = (key[j] == j) ? val[j] : kNullWord for j in [0, n). */
using SelectEqIndexRowFn = void (*)(std::uint64_t *out,
                                    const std::uint64_t *key,
                                    const std::uint64_t *val,
                                    std::size_t n);

/**
 * For j in [0, n) with key[j] == j: out[j] = val[j], ++cnt[j].  One
 * row's contribution to a column-wise "leaf whose key equals its
 * column index" pick: out accumulates the picked values across rows,
 * cnt the per-column match counts (for the uniqueness assertion).
 * Unmatched columns leave out/cnt untouched.
 */
using ScatterEqIndexRowFn = void (*)(std::uint64_t *out,
                                     std::uint64_t *cnt,
                                     const std::uint64_t *key,
                                     const std::uint64_t *val,
                                     std::size_t n);

/**
 * For j in [0, n) with key[j] == target: *out = val[j], ++matches.
 * Scans a row for the unique element whose key equals `target` (the
 * LEAFTOROOT uniqueness precondition; the caller asserts
 * matches <= 1).  *out is left untouched when nothing matches.
 */
using PickEqIndexAccumFn = void (*)(std::uint64_t *out,
                                    std::uint64_t *matches,
                                    const std::uint64_t *key,
                                    const std::uint64_t *val,
                                    std::size_t n, std::uint64_t target);

/**
 * One bitonic compare-exchange sweep over data[0..total): for every l
 * with (l & d) == 0, order (data[l], data[l ^ d]) ascending iff
 * (l & size) == 0.
 */
using CompexLinearFn = void (*)(std::uint64_t *data, std::size_t total,
                                std::size_t d, std::size_t size);

/**
 * Rotate `count` cycles left by one: for cycle c in [0, count), the
 * L-word segment at base + c * stride becomes {s[1], .., s[l-1],
 * s[0]}.  stride is in words; count == 1 rotates the single segment
 * at `base`.
 */
using RotateCyclesFn = void (*)(std::uint64_t *base, std::size_t count,
                                std::size_t stride, std::size_t l);

/** One backend's implementations of the batch primitives. */
struct KernelTable
{
    FillFn fill;
    CountNonzeroFn countNonzero;
    ReduceSumFn reduceSum;
    ReduceMinFn reduceMin;
    CmpRankRowFn cmpRankRow;
    SelectEqIndexRowFn selectEqIndexRow;
    ScatterEqIndexRowFn scatterEqIndexRow;
    PickEqIndexAccumFn pickEqIndexAccum;
    CompexLinearFn compexLinear;
    RotateCyclesFn rotateCycles;
};

/** Portable fallback table, always compiled. */
const KernelTable &scalarKernels();

#if defined(OT_SIMD_HAVE_AVX2)
/** AVX2 table (x86-64 only; call only when the CPU supports AVX2). */
const KernelTable &avx2Kernels();
#endif

#if defined(OT_SIMD_HAVE_NEON)
/** NEON table (aarch64 baseline). */
const KernelTable &neonKernels();
#endif

/** Table for `b`; aborts if `b` was not compiled in. */
const KernelTable &kernelsFor(Backend b);

/** Table for activeBackend() — resolved once, then cached. */
const KernelTable &kernels();

} // namespace ot::simd

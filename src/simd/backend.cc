/**
 * @file
 * Backend resolution: cpuid/hwcap detection, the OT_SIMD override
 * (hard error on bad values — differential CI depends on the override
 * never silently falling back), and the once-resolved kernel table.
 */

#include "simd/backend.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "simd/kernels.hh"

namespace ot::simd {

const char *
toString(Backend b)
{
    switch (b) {
      case Backend::Scalar:
        return "scalar";
      case Backend::Avx2:
        return "avx2";
      case Backend::Neon:
        return "neon";
    }
    return "?";
}

bool
backendCompiled(Backend b)
{
    bool compiled = b == Backend::Scalar;
#if defined(OT_SIMD_HAVE_AVX2)
    compiled = compiled || b == Backend::Avx2;
#endif
#if defined(OT_SIMD_HAVE_NEON)
    compiled = compiled || b == Backend::Neon;
#endif
    return compiled;
}

bool
backendAvailable(Backend b)
{
    if (!backendCompiled(b))
        return false;
#if defined(OT_SIMD_HAVE_AVX2)
    if (b == Backend::Avx2)
        return __builtin_cpu_supports("avx2") != 0;
#endif
    // Scalar always runs; NEON is architectural baseline on aarch64.
    return true;
}

Backend
backendFromSpec(const char *spec)
{
    Backend b = Backend::Scalar;
    if (std::strcmp(spec, "scalar") == 0) {
        b = Backend::Scalar;
    } else if (std::strcmp(spec, "avx2") == 0) {
        b = Backend::Avx2;
    } else if (std::strcmp(spec, "neon") == 0) {
        b = Backend::Neon;
    } else {
        std::fprintf(stderr,
                     "OT_SIMD: unknown backend '%s' (expected scalar, "
                     "avx2 or neon)\n",
                     spec);
        std::abort();
    }
    if (!backendAvailable(b)) {
        std::fprintf(stderr,
                     "OT_SIMD: backend '%s' is %s on this host; "
                     "refusing to fall back\n",
                     toString(b),
                     backendCompiled(b) ? "not supported by the CPU"
                                        : "not compiled in");
        std::abort();
    }
    return b;
}

Backend
resolveBackendFromEnv()
{
    if (const char *spec = std::getenv("OT_SIMD"))
        return backendFromSpec(spec);
    if (backendAvailable(Backend::Avx2))
        return Backend::Avx2;
    if (backendAvailable(Backend::Neon))
        return Backend::Neon;
    return Backend::Scalar;
}

Backend
activeBackend()
{
    static const Backend b = resolveBackendFromEnv();
    return b;
}

const KernelTable &
kernelsFor(Backend b)
{
    switch (b) {
      case Backend::Scalar:
        return scalarKernels();
#if defined(OT_SIMD_HAVE_AVX2)
      case Backend::Avx2:
        return avx2Kernels();
#endif
#if defined(OT_SIMD_HAVE_NEON)
      case Backend::Neon:
        return neonKernels();
#endif
      default:
        std::fprintf(stderr, "simd: backend '%s' not compiled in\n",
                     toString(b));
        std::abort();
    }
}

const KernelTable &
kernels()
{
    static const KernelTable &table = kernelsFor(activeBackend());
    return table;
}

} // namespace ot::simd

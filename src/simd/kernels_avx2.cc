/**
 * @file
 * AVX2 kernel table.  This is the only translation unit compiled with
 * -mavx2; callers must check backendAvailable(Backend::Avx2) before
 * routing through this table.
 */

#include "simd/kernels.hh"

#include "simd/kernels_generic.hh"
#include "simd/vec_avx2.hh"

namespace ot::simd {

namespace {

constexpr KernelTable kAvx2Table = {
    .fill = fillT<Avx2Vec>,
    .countNonzero = countNonzeroT<Avx2Vec>,
    .reduceSum = reduceSumT<Avx2Vec>,
    .reduceMin = reduceMinT<Avx2Vec>,
    .cmpRankRow = cmpRankRowT<Avx2Vec>,
    .selectEqIndexRow = selectEqIndexRowT<Avx2Vec>,
    .scatterEqIndexRow = scatterEqIndexRowT<Avx2Vec>,
    .pickEqIndexAccum = pickEqIndexAccumT<Avx2Vec>,
    .compexLinear = compexLinearT<Avx2Vec>,
    .rotateCycles = rotateCyclesT<Avx2Vec>,
};

} // namespace

const KernelTable &
avx2Kernels()
{
    return kAvx2Table;
}

} // namespace ot::simd

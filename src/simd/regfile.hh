/**
 * @file
 * Struct-of-arrays register file for the network simulators.
 *
 * Instead of a vector-of-vectors (one heap block per named register),
 * every register is one contiguous, cache-line-aligned lane — a
 * "plane" of machine words — inside a single allocation, indexed by
 * the register's enumerator value.  The batch kernels
 * (simd/kernels.hh) stream whole rows or levels of a plane with
 * vector loads, so this layout *is* the optimization: one level of
 * one register is one contiguous span, and every plane starts on a
 * vector-friendly boundary.
 *
 * RegFile owns storage only: it performs no model-time accounting and
 * allocates exactly once, at construction (planes are zero-filled,
 * matching the machines' power-on state).
 */

#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>

namespace ot::simd {

/** SoA block of `planes` equally sized u64 lanes, 64-byte aligned. */
class RegFile
{
  public:
    /** Alignment of every plane, in bytes (one x86 cache line; a
     *  multiple of every vector width we dispatch to). */
    static constexpr std::size_t kAlign = 64;

    RegFile(unsigned planes, std::size_t plane_size)
        : _planes(planes),
          _planeSize(plane_size),
          _stride(roundUp(plane_size)),
          _data(allocate(_stride * planes))
    {
        std::memset(_data.get(), 0,
                    _stride * planes * sizeof(std::uint64_t));
    }

    /** Number of planes (named registers). */
    unsigned planes() const { return _planes; }

    /** Words per plane (the machine's base-processor count). */
    std::size_t planeSize() const { return _planeSize; }

    /** Contiguous lane of register `p` (aligned to kAlign). */
    std::uint64_t *
    plane(unsigned p)
    {
        assert(p < _planes);
        return _data.get() + p * _stride;
    }

    const std::uint64_t *
    plane(unsigned p) const
    {
        assert(p < _planes);
        return _data.get() + p * _stride;
    }

    /** Word `i` of plane `p` (the scalar element accessor). */
    std::uint64_t &
    at(unsigned p, std::size_t i)
    {
        assert(p < _planes && i < _planeSize);
        return _data.get()[p * _stride + i];
    }

    std::uint64_t
    at(unsigned p, std::size_t i) const
    {
        assert(p < _planes && i < _planeSize);
        return _data.get()[p * _stride + i];
    }

  private:
    struct Deleter
    {
        void
        operator()(std::uint64_t *p) const
        {
            ::operator delete[](p, std::align_val_t{kAlign});
        }
    };

    static std::size_t
    roundUp(std::size_t words)
    {
        constexpr std::size_t per = kAlign / sizeof(std::uint64_t);
        return (words + per - 1) / per * per;
    }

    static std::unique_ptr<std::uint64_t[], Deleter>
    allocate(std::size_t words)
    {
        void *raw = ::operator new[](words * sizeof(std::uint64_t),
                                     std::align_val_t{kAlign});
        return std::unique_ptr<std::uint64_t[], Deleter>(
            static_cast<std::uint64_t *>(raw));
    }

    unsigned _planes;
    std::size_t _planeSize;
    std::size_t _stride;
    std::unique_ptr<std::uint64_t[], Deleter> _data;
};

} // namespace ot::simd

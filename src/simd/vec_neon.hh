/**
 * @file
 * NEON vector view: 2 x u64 lanes (aarch64 Advanced SIMD baseline).
 *
 * Like AVX2, NEON lacks 64-bit unsigned min/max, so both come from
 * vcgtq_u64 plus a bitwise select.  This header may only be included
 * from src/simd (the otcheck intrinsics rule bans raw intrinsics
 * elsewhere) and only compiled on aarch64.
 */

#pragma once

#include <arm_neon.h>

#include <cstddef>
#include <cstdint>

namespace ot::simd {

struct NeonVec
{
    static constexpr std::size_t kWidth = 2;

    using Reg = uint64x2_t;

    static Reg load(const std::uint64_t *p) { return vld1q_u64(p); }

    static void store(std::uint64_t *p, Reg v) { vst1q_u64(p, v); }

    static Reg splat(std::uint64_t x) { return vdupq_n_u64(x); }

    static Reg
    iota(std::uint64_t start)
    {
        const std::uint64_t lanes[kWidth] = {start, start + 1};
        return vld1q_u64(lanes);
    }

    static Reg add(Reg a, Reg b) { return vaddq_u64(a, b); }

    static Reg
    minU(Reg a, Reg b)
    {
        return blend(gtU(a, b), b, a);
    }

    static Reg
    maxU(Reg a, Reg b)
    {
        return blend(gtU(a, b), a, b);
    }

    static Reg eq(Reg a, Reg b) { return vceqq_u64(a, b); }

    static Reg gtU(Reg a, Reg b) { return vcgtq_u64(a, b); }

    static Reg bitAnd(Reg a, Reg b) { return vandq_u64(a, b); }

    static Reg bitOr(Reg a, Reg b) { return vorrq_u64(a, b); }

    static Reg
    blend(Reg mask, Reg a, Reg b)
    {
        return vbslq_u64(mask, a, b);
    }

    static bool
    any(Reg mask)
    {
        return (vgetq_lane_u64(mask, 0) | vgetq_lane_u64(mask, 1)) != 0;
    }

    static std::uint64_t
    hsum(Reg v)
    {
        return vgetq_lane_u64(v, 0) + vgetq_lane_u64(v, 1);
    }

    static std::uint64_t
    hminU(Reg v)
    {
        const std::uint64_t a = vgetq_lane_u64(v, 0);
        const std::uint64_t b = vgetq_lane_u64(v, 1);
        return a < b ? a : b;
    }
};

} // namespace ot::simd

/**
 * @file
 * NEON kernel table (aarch64 baseline Advanced SIMD).
 */

#include "simd/kernels.hh"

#include "simd/kernels_generic.hh"
#include "simd/vec_neon.hh"

namespace ot::simd {

namespace {

constexpr KernelTable kNeonTable = {
    .fill = fillT<NeonVec>,
    .countNonzero = countNonzeroT<NeonVec>,
    .reduceSum = reduceSumT<NeonVec>,
    .reduceMin = reduceMinT<NeonVec>,
    .cmpRankRow = cmpRankRowT<NeonVec>,
    .selectEqIndexRow = selectEqIndexRowT<NeonVec>,
    .scatterEqIndexRow = scatterEqIndexRowT<NeonVec>,
    .pickEqIndexAccum = pickEqIndexAccumT<NeonVec>,
    .compexLinear = compexLinearT<NeonVec>,
    .rotateCycles = rotateCyclesT<NeonVec>,
};

} // namespace

const KernelTable &
neonKernels()
{
    return kNeonTable;
}

} // namespace ot::simd

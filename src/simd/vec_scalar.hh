/**
 * @file
 * Scalar "vector" view: one u64 lane, portable C++.
 *
 * The batch kernels in kernels_generic.hh are written once against
 * this compile-time interface (the chuffed int-view idiom) and
 * instantiated per instruction set.  The scalar view is the semantic
 * reference: every wider view must produce lane-for-lane identical
 * results, which the backend-differential tests enforce.
 *
 * Lane masks follow the hardware convention: all-ones for true,
 * all-zeros for false, per lane.
 */

#pragma once

#include <cstddef>
#include <cstdint>

namespace ot::simd {

struct ScalarVec
{
    static constexpr std::size_t kWidth = 1;

    using Reg = std::uint64_t;

    static Reg load(const std::uint64_t *p) { return *p; }

    static void store(std::uint64_t *p, Reg v) { *p = v; }

    static Reg splat(std::uint64_t x) { return x; }

    /** {start, start + 1, .., start + kWidth - 1}. */
    static Reg iota(std::uint64_t start) { return start; }

    static Reg add(Reg a, Reg b) { return a + b; }

    static Reg
    minU(Reg a, Reg b)
    {
        return a < b ? a : b;
    }

    static Reg
    maxU(Reg a, Reg b)
    {
        return a > b ? a : b;
    }

    /** Per-lane all-ones iff equal. */
    static Reg
    eq(Reg a, Reg b)
    {
        return a == b ? ~std::uint64_t{0} : 0;
    }

    /** Per-lane all-ones iff a > b (unsigned). */
    static Reg
    gtU(Reg a, Reg b)
    {
        return a > b ? ~std::uint64_t{0} : 0;
    }

    static Reg bitAnd(Reg a, Reg b) { return a & b; }

    static Reg bitOr(Reg a, Reg b) { return a | b; }

    /** Per lane: mask ? a : b (mask lanes are all-ones or all-zeros). */
    static Reg
    blend(Reg mask, Reg a, Reg b)
    {
        return (a & mask) | (b & ~mask);
    }

    /** True iff any lane of a mask register is set. */
    static bool any(Reg mask) { return mask != 0; }

    /** Sum of lanes mod 2^64. */
    static std::uint64_t hsum(Reg v) { return v; }

    /** Unsigned min of lanes. */
    static std::uint64_t hminU(Reg v) { return v; }
};

} // namespace ot::simd

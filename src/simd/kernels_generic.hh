/**
 * @file
 * Batch kernels, written once against a vector view.
 *
 * Each kernel is a function template over a view type V (ScalarVec,
 * Avx2Vec, NeonVec) satisfying the contract documented in
 * vec_scalar.hh: kWidth lanes of u64, whole-lane masks, unsigned
 * compare/min/max, blend, and horizontal sum/min.  The main loop
 * processes V::kWidth words per iteration and a scalar epilogue
 * handles the remainder, so every instantiation computes bit-identical
 * results to ScalarVec — the sum is modular, min is selective, and no
 * kernel reassociates anything the machine model treats as ordered.
 *
 * Kernels never allocate and never touch model-time accounting.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "simd/kernels.hh"

namespace ot::simd {

template <typename V>
void
fillT(std::uint64_t *dst, std::size_t n, std::uint64_t value)
{
    const auto v = V::splat(value);
    std::size_t i = 0;
    for (; i + V::kWidth <= n; i += V::kWidth)
        V::store(dst + i, v);
    for (; i < n; ++i)
        dst[i] = value;
}

template <typename V>
std::uint64_t
countNonzeroT(const std::uint64_t *src, std::size_t n)
{
    const auto zero = V::splat(0);
    auto acc = V::splat(0);
    std::size_t i = 0;
    for (; i + V::kWidth <= n; i += V::kWidth)
        acc = V::add(acc, V::eq(V::load(src + i), zero));
    // eq() contributes all-ones (== -1) per zero lane, so the lane sum
    // is minus the number of zero words among the first i.
    std::uint64_t count = i + V::hsum(acc);
    for (; i < n; ++i)
        count += src[i] != 0 ? 1 : 0;
    return count;
}

template <typename V>
std::uint64_t
reduceSumT(const std::uint64_t *src, std::size_t n)
{
    auto acc = V::splat(0);
    std::size_t i = 0;
    for (; i + V::kWidth <= n; i += V::kWidth)
        acc = V::add(acc, V::load(src + i));
    std::uint64_t sum = V::hsum(acc);
    for (; i < n; ++i)
        sum += src[i];
    return sum;
}

template <typename V>
std::uint64_t
reduceMinT(const std::uint64_t *src, std::size_t n)
{
    auto acc = V::splat(kNullWord);
    std::size_t i = 0;
    for (; i + V::kWidth <= n; i += V::kWidth)
        acc = V::minU(acc, V::load(src + i));
    std::uint64_t m = V::hminU(acc);
    for (; i < n; ++i)
        m = src[i] < m ? src[i] : m;
    return m;
}

template <typename V>
void
cmpRankRowT(std::uint64_t *flag, const std::uint64_t *a,
            const std::uint64_t *b, std::size_t n, std::uint64_t i)
{
    const auto vi = V::splat(i);
    const auto one = V::splat(1);
    std::size_t j = 0;
    for (; j + V::kWidth <= n; j += V::kWidth) {
        const auto va = V::load(a + j);
        const auto vb = V::load(b + j);
        const auto m = V::bitOr(
            V::gtU(va, vb),
            V::bitAnd(V::eq(va, vb), V::gtU(vi, V::iota(j))));
        V::store(flag + j, V::bitAnd(m, one));
    }
    for (; j < n; ++j)
        flag[j] = (a[j] > b[j] || (a[j] == b[j] && i > j)) ? 1 : 0;
}

template <typename V>
void
selectEqIndexRowT(std::uint64_t *out, const std::uint64_t *key,
                  const std::uint64_t *val, std::size_t n)
{
    const auto nullv = V::splat(kNullWord);
    std::size_t j = 0;
    for (; j + V::kWidth <= n; j += V::kWidth) {
        const auto m = V::eq(V::load(key + j), V::iota(j));
        V::store(out + j, V::blend(m, V::load(val + j), nullv));
    }
    for (; j < n; ++j)
        out[j] = key[j] == j ? val[j] : kNullWord;
}

template <typename V>
void
scatterEqIndexRowT(std::uint64_t *out, std::uint64_t *cnt,
                   const std::uint64_t *key, const std::uint64_t *val,
                   std::size_t n)
{
    const auto one = V::splat(1);
    std::size_t j = 0;
    for (; j + V::kWidth <= n; j += V::kWidth) {
        const auto m = V::eq(V::load(key + j), V::iota(j));
        V::store(out + j,
                 V::blend(m, V::load(val + j), V::load(out + j)));
        V::store(cnt + j,
                 V::add(V::load(cnt + j), V::bitAnd(m, one)));
    }
    for (; j < n; ++j) {
        if (key[j] == j) {
            out[j] = val[j];
            ++cnt[j];
        }
    }
}

template <typename V>
void
pickEqIndexAccumT(std::uint64_t *out, std::uint64_t *matches,
                  const std::uint64_t *key, const std::uint64_t *val,
                  std::size_t n, std::uint64_t target)
{
    const auto tv = V::splat(target);
    std::size_t j = 0;
    for (; j + V::kWidth <= n; j += V::kWidth) {
        // Matches are rare (the primitives assert at most one per
        // span), so only drop to lane-at-a-time on a hit.
        if (V::any(V::eq(V::load(key + j), tv))) {
            for (std::size_t k = j; k < j + V::kWidth; ++k) {
                if (key[k] == target) {
                    *out = val[k];
                    ++*matches;
                }
            }
        }
    }
    for (; j < n; ++j) {
        if (key[j] == target) {
            *out = val[j];
            ++*matches;
        }
    }
}

template <typename V>
void
compexLinearT(std::uint64_t *data, std::size_t total, std::size_t d,
              std::size_t size)
{
    // Pairs are (l, l ^ d) for (l & d) == 0, i.e. the first half of
    // each 2d-aligned block against the second half.  Because
    // size >= 2d in every bitonic sweep, the sort direction
    // ((l & size) == 0) is constant across a block, so each block is
    // one branch-free min/max pass.
    for (std::size_t base = 0; base < total; base += 2 * d) {
        const bool asc = (base & size) == 0;
        std::size_t l = base;
        if (d >= V::kWidth) {
            for (; l < base + d; l += V::kWidth) {
                const auto lo = V::load(data + l);
                const auto hi = V::load(data + l + d);
                const auto mn = V::minU(lo, hi);
                const auto mx = V::maxU(lo, hi);
                V::store(data + l, asc ? mn : mx);
                V::store(data + l + d, asc ? mx : mn);
            }
        }
        for (; l < base + d; ++l) {
            const std::uint64_t lo = data[l];
            const std::uint64_t hi = data[l + d];
            const bool swap = asc ? lo > hi : lo < hi;
            if (swap) {
                data[l] = hi;
                data[l + d] = lo;
            }
        }
    }
}

template <typename V>
void
rotateCyclesT(std::uint64_t *base, std::size_t count, std::size_t stride,
              std::size_t l)
{
    for (std::size_t c = 0; c < count; ++c) {
        std::uint64_t *s = base + c * stride;
        if (l > 1) {
            const std::uint64_t first = s[0];
            std::memmove(s, s + 1, (l - 1) * sizeof(std::uint64_t));
            s[l - 1] = first;
        }
    }
}

} // namespace ot::simd

/**
 * @file
 * Runtime SIMD backend selection for the batch kernels.
 *
 * The level-synchronous tree primitives are written once against a
 * compile-time vector "view" (see kernels_generic.hh) and instantiated
 * per instruction set; at startup one KernelTable of plain function
 * pointers is resolved — via cpuid on x86 (AVX2), hwcap-implied
 * baseline NEON on aarch64, or the OT_SIMD environment override — and
 * every hot loop indirects through that table.  No virtual dispatch,
 * no per-call detection, no allocation: the table is a static constant
 * per backend and the active pointer is set exactly once.
 *
 * OT_SIMD accepts `scalar`, `avx2` or `neon`.  Naming a backend that
 * was not compiled in, or is not supported by the host CPU, or any
 * other string, is a hard configuration error: the process aborts with
 * a diagnostic (differential CI legs depend on the override doing what
 * it says, never silently falling back).
 */

#pragma once

#include <cstdint>

namespace ot::simd {

/** Instruction-set backends a KernelTable can be compiled for. */
enum class Backend : std::uint8_t {
    Scalar, ///< portable C++ fallback, always compiled
    Avx2,   ///< x86-64 AVX2 (4 x u64 lanes)
    Neon,   ///< aarch64 Advanced SIMD (2 x u64 lanes)
};

/** Stable lowercase name (`scalar`, `avx2`, `neon`). */
const char *toString(Backend b);

/**
 * Parse an OT_SIMD-style spec and check the named backend is compiled
 * in and runnable on this CPU.  Aborts with a diagnostic on an unknown
 * name or an unavailable backend; never falls back.
 */
Backend backendFromSpec(const char *spec);

/** True iff a kernel table for `b` was compiled into this binary. */
bool backendCompiled(Backend b);

/** True iff `b` is compiled in and supported by the host CPU. */
bool backendAvailable(Backend b);

/**
 * Resolve the backend from the environment right now, without caching:
 * OT_SIMD if set (aborting on bad values), else the best available
 * instruction set.  Tests use this to exercise the override logic
 * repeatedly; production code goes through activeBackend().
 */
Backend resolveBackendFromEnv();

/**
 * The backend the active kernel table was resolved to: OT_SIMD if set
 * (aborting on bad values), else the best available instruction set.
 * Resolved once; subsequent calls return the cached decision.
 */
Backend activeBackend();

} // namespace ot::simd

/**
 * @file
 * A small statistics package in the spirit of gem5's Stats.
 *
 * Networks register named counters/distributions in a StatSet; the
 * benches dump them alongside model time so runs are explainable
 * ("how many tree traversals, how long was the longest wire, how many
 * words crossed the roots").
 */

#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <ostream>
#include <string>

namespace ot::sim {

/** Monotonic event counter. */
class Counter
{
  public:
    void operator+=(std::uint64_t n) { _value += n; }
    void operator++() { ++_value; }
    std::uint64_t value() const { return _value; }
    void reset() { _value = 0; }

  private:
    std::uint64_t _value = 0;
};

/** Running min/max/mean/variance/total of a sampled quantity. */
class Distribution
{
  public:
    void
    sample(double v)
    {
        ++_count;
        _total += v;
        _sumSq += v * v;
        _min = std::min(_min, v);
        _max = std::max(_max, v);
    }

    std::uint64_t count() const { return _count; }
    double total() const { return _total; }
    double min() const { return _count ? _min : 0.0; }
    double max() const { return _count ? _max : 0.0; }

    double
    mean() const
    {
        return _count ? _total / static_cast<double>(_count) : 0.0;
    }

    /** Population variance; 0 with fewer than two samples. */
    double
    variance() const
    {
        if (_count < 2)
            return 0.0;
        double m = mean();
        double v = _sumSq / static_cast<double>(_count) - m * m;
        return std::max(v, 0.0); // clamp the round-off
    }

    double stddev() const { return std::sqrt(variance()); }

    void
    reset()
    {
        _count = 0;
        _total = 0.0;
        _sumSq = 0.0;
        _min = std::numeric_limits<double>::infinity();
        _max = -std::numeric_limits<double>::infinity();
    }

  private:
    std::uint64_t _count = 0;
    double _total = 0.0;
    double _sumSq = 0.0;
    double _min = std::numeric_limits<double>::infinity();
    double _max = -std::numeric_limits<double>::infinity();
};

/**
 * Named collection of counters and distributions.
 *
 * Lookup lazily creates entries, so instrumentation sites stay
 * one-liners: `stats.counter("otn.broadcasts") += 1;`.
 */
class StatSet
{
  public:
    Counter &counter(const std::string &name) { return _counters[name]; }

    Distribution &
    distribution(const std::string &name)
    {
        return _distributions[name];
    }

    const std::map<std::string, Counter> &counters() const
    {
        return _counters;
    }

    const std::map<std::string, Distribution> &distributions() const
    {
        return _distributions;
    }

    void
    reset()
    {
        for (auto &[name, c] : _counters)
            c.reset();
        for (auto &[name, d] : _distributions)
            d.reset();
    }

    /** Dump all stats, one per line, `prefix.name value` format. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    /**
     * The whole set as a JSON object — {"counters": {...},
     * "distributions": {...}} — so stats can ride along in trace files
     * and bench snapshots instead of only the ostream dump.
     */
    std::string toJson() const;

  private:
    std::map<std::string, Counter> _counters;
    std::map<std::string, Distribution> _distributions;
};

} // namespace ot::sim

/**
 * @file
 * A small fixed-size host thread pool for parallelFor dispatch.
 *
 * The simulator's `pardo` loops iterate over disjoint row/column trees,
 * so their host execution can be spread over real cores without
 * changing any model-time arithmetic.  The pool is deliberately
 * work-stealing-free: a job splits its iteration range into one
 * contiguous block per lane, every worker runs exactly one block, and
 * the caller joins at the end.  That static schedule is what makes the
 * engine's per-lane accounting deterministic (see chain_engine.hh).
 *
 * One job runs at a time (callers serialize on the job mutex); nested
 * `run` calls from inside a worker fall back to running all lanes
 * inline on the calling thread, which preserves the lane-indexed
 * accounting exactly.
 */

#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ot::sim {

class ThreadPool
{
  public:
    ThreadPool() = default;
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Process-wide pool shared by every network instance.  Workers are
     * spawned lazily, so a program that never runs with more than one
     * host thread never creates any.
     */
    static ThreadPool &shared();

    /**
     * Host-thread count requested by the environment: the value of
     * OT_HOST_THREADS if set to a positive integer, else
     * std::thread::hardware_concurrency() (min 1).
     */
    static unsigned defaultThreads();

    /** True on a thread currently executing a pool job. */
    static bool inWorker();

    /**
     * Run `fn(lane)` for every lane in [0, lanes).  Lane 0 executes on
     * the calling thread; lanes 1..lanes-1 on pool workers.  Blocks
     * until all lanes finish.  When called from inside a running job —
     * whether from a worker lane or from lane 0 on the original caller —
     * all lanes run inline, sequentially, on the calling thread.
     */
    void run(unsigned lanes, const std::function<void(unsigned)> &fn);

    /** Workers currently spawned (for tests). */
    std::size_t workerCount();

  private:
    void workerLoop(unsigned id);
    void ensureWorkers(unsigned n);

    std::mutex _jobMutex; // serializes concurrent run() callers

    std::mutex _m;
    std::condition_variable _wake;
    std::condition_variable _done;
    std::vector<std::thread> _workers;
    const std::function<void(unsigned)> *_fn = nullptr;
    unsigned _lanes = 0;
    unsigned _pending = 0;
    std::uint64_t _epoch = 0;
    bool _stop = false;
};

} // namespace ot::sim

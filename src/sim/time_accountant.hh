/**
 * @file
 * Model-time bookkeeping for the network simulators.
 *
 * The simulators in this repository execute *parallel* machines on a
 * sequential host.  Each network primitive (a ROOTTOLEAF broadcast, a
 * compare-exchange sweep, ...) is one parallel step whose duration is
 * computed by the CostModel; the TimeAccountant accumulates those
 * durations into the machine's total model time T, which is what the
 * paper's tables report (not host wall-clock).
 *
 * Phases let an algorithm attribute time to named sections ("rank",
 * "hook", "pointer-jump"), which the benches print to show where the
 * asymptotic terms come from.
 */

#pragma once

#include <cassert>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "trace/tracer.hh"
#include "vlsi/delay.hh"

namespace ot::sim {

using vlsi::ModelTime;

/** Accumulates parallel-step durations into total model time. */
class TimeAccountant
{
  public:
    TimeAccountant() = default;

    /** Charge one parallel step of duration `dt`. */
    void
    advance(ModelTime dt)
    {
        ModelTime start = _now;
        _now += dt;
        ++_steps;
        if (!_phaseStack.empty())
            _phaseTimes[_phaseStack.back()] += dt;
#ifdef OT_TRACE
        if (_tracer && _tracer->enabled())
            _tracer->recordCharge(
                start, dt,
                _phaseStack.empty() ? std::string() : _phaseStack.back());
#else
        (void)start;
#endif
    }

    /** Current model time. */
    ModelTime now() const { return _now; }

    /** Number of parallel steps charged so far. */
    std::uint64_t steps() const { return _steps; }

    /** Forget all accumulated time and phases. */
    void
    reset()
    {
        _now = 0;
        _steps = 0;
        _phaseUnderflows = 0;
        _phaseTimes.clear();
        _phaseStack.clear();
    }

    /** Enter a named phase; time advanced until endPhase is attributed
     *  to it (innermost phase only, so nested phases don't double
     *  count). */
    void
    beginPhase(const std::string &name)
    {
        _phaseStack.push_back(name);
#ifdef OT_TRACE
        if (_tracer && _tracer->enabled())
            _tracer->recordPhase(trace::EventKind::PhaseBegin, _now, name);
#endif
    }

    /**
     * Leave the innermost phase.  Popping with an empty stack is a
     * phase-balance bug (an endPhase without its beginPhase — use
     * ScopedPhase to make leaks impossible); it is asserted in debug
     * builds and otherwise counted in phaseUnderflows() and ignored,
     * so attribution stays well defined.
     */
    void
    endPhase()
    {
        assert(!_phaseStack.empty() &&
               "endPhase without matching beginPhase");
        if (_phaseStack.empty()) {
            ++_phaseUnderflows;
            return;
        }
#ifdef OT_TRACE
        if (_tracer && _tracer->enabled())
            _tracer->recordPhase(trace::EventKind::PhaseEnd, _now,
                                 _phaseStack.back());
#endif
        _phaseStack.pop_back();
    }

    /** endPhase calls that found the stack empty (always 0 in a
     *  phase-balanced program). */
    std::uint64_t phaseUnderflows() const { return _phaseUnderflows; }

    /** Phases currently open. */
    std::size_t phaseDepth() const { return _phaseStack.size(); }

    /** Per-phase accumulated model time. */
    const std::map<std::string, ModelTime> &
    phaseTimes() const
    {
        return _phaseTimes;
    }

    /**
     * Attach (or detach, with nullptr) a tracer; every advance emits a
     * Charge event and every begin/endPhase a phase marker.  The
     * tracer must outlive the accountant or be detached first.
     */
    void setTracer(trace::Tracer *tracer) { _tracer = tracer; }
    trace::Tracer *tracer() const { return _tracer; }

  private:
    ModelTime _now = 0;
    std::uint64_t _steps = 0;
    std::uint64_t _phaseUnderflows = 0;
    trace::Tracer *_tracer = nullptr;
    std::map<std::string, ModelTime> _phaseTimes;
    std::vector<std::string> _phaseStack;
};

/** RAII helper for TimeAccountant phases. */
class ScopedPhase
{
  public:
    ScopedPhase(TimeAccountant &acct, const std::string &name) : _acct(acct)
    {
        _acct.beginPhase(name);
    }

    ~ScopedPhase() { _acct.endPhase(); }

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

  private:
    TimeAccountant &_acct;
};

} // namespace ot::sim

/**
 * @file
 * Model-time bookkeeping for the network simulators.
 *
 * The simulators in this repository execute *parallel* machines on a
 * sequential host.  Each network primitive (a ROOTTOLEAF broadcast, a
 * compare-exchange sweep, ...) is one parallel step whose duration is
 * computed by the CostModel; the TimeAccountant accumulates those
 * durations into the machine's total model time T, which is what the
 * paper's tables report (not host wall-clock).
 *
 * Phases let an algorithm attribute time to named sections ("rank",
 * "hook", "pointer-jump"), which the benches print to show where the
 * asymptotic terms come from.
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "vlsi/delay.hh"

namespace ot::sim {

using vlsi::ModelTime;

/** Accumulates parallel-step durations into total model time. */
class TimeAccountant
{
  public:
    TimeAccountant() = default;

    /** Charge one parallel step of duration `dt`. */
    void
    advance(ModelTime dt)
    {
        _now += dt;
        ++_steps;
        if (!_phaseStack.empty())
            _phaseTimes[_phaseStack.back()] += dt;
    }

    /** Current model time. */
    ModelTime now() const { return _now; }

    /** Number of parallel steps charged so far. */
    std::uint64_t steps() const { return _steps; }

    /** Forget all accumulated time and phases. */
    void
    reset()
    {
        _now = 0;
        _steps = 0;
        _phaseTimes.clear();
        _phaseStack.clear();
    }

    /** Enter a named phase; time advanced until endPhase is attributed
     *  to it (innermost phase only, so nested phases don't double
     *  count). */
    void beginPhase(const std::string &name) { _phaseStack.push_back(name); }

    /** Leave the innermost phase. */
    void
    endPhase()
    {
        if (!_phaseStack.empty())
            _phaseStack.pop_back();
    }

    /** Per-phase accumulated model time. */
    const std::map<std::string, ModelTime> &
    phaseTimes() const
    {
        return _phaseTimes;
    }

  private:
    ModelTime _now = 0;
    std::uint64_t _steps = 0;
    std::map<std::string, ModelTime> _phaseTimes;
    std::vector<std::string> _phaseStack;
};

/** RAII helper for TimeAccountant phases. */
class ScopedPhase
{
  public:
    ScopedPhase(TimeAccountant &acct, const std::string &name) : _acct(acct)
    {
        _acct.beginPhase(name);
    }

    ~ScopedPhase() { _acct.endPhase(); }

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

  private:
    TimeAccountant &_acct;
};

} // namespace ot::sim

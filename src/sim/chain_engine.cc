#include "sim/chain_engine.hh"

#include <algorithm>

#include "sim/thread_pool.hh"

namespace ot::sim {

thread_local ChainEngine::LaneBinding ChainEngine::t_binding;

ChainEngine::ChainEngine(TimeAccountant &acct, StatSet &stats,
                         unsigned host_threads)
    : _acct(acct),
      _stats(stats),
      _threads(host_threads ? host_threads : ThreadPool::defaultThreads())
{
}

ChainEngine::HostLane *
ChainEngine::boundLane() const
{
    return t_binding.engine == this ? t_binding.lane : nullptr;
}

void
ChainEngine::charge(ModelTime dt)
{
    if (HostLane *lane = boundLane())
        lane->chain += dt;
    else if (_parallelDepth > 0)
        _chainAccum += dt;
    else
        _acct.advance(dt);
}

Counter &
ChainEngine::counter(const std::string &name)
{
    if (HostLane *lane = boundLane())
        return lane->stats.counter(name);
    return _stats.counter(name);
}

ModelTime
ChainEngine::parallelFor(std::size_t count,
                         const std::function<void(std::size_t)> &body)
{
    if (HostLane *lane = boundLane()) {
        // Nested pardo on a pool lane: the lane's hardware is already
        // dedicated to the outer iteration, so run sequentially and
        // fold the max into the lane's chain — the same composition
        // the sequential engine performs.  Every iteration starts at
        // the same model-time offset (they overlap), so trace stamps
        // rebase to the offset at entry.
        ModelTime saved = lane->chain;
        ModelTime saved_base = lane->traceBase;
        lane->traceBase = saved_base + saved;
        ModelTime longest = 0;
        for (std::size_t k = 0; k < count; ++k) {
            lane->chain = 0;
            body(k);
            longest = std::max(longest, lane->chain);
        }
        lane->traceBase = saved_base;
        lane->chain = saved + longest;
        return longest;
    }
    if (_threads >= 2 && count >= 2)
        return parallelForPooled(count, body);
    return parallelForSequential(count, body);
}

ModelTime
ChainEngine::parallelForSequential(
    std::size_t count, const std::function<void(std::size_t)> &body)
{
    ++_parallelDepth;
    ModelTime saved_chain = _chainAccum;
    ModelTime saved_base = _traceBase;
    _traceBase = saved_base + saved_chain;
    ModelTime longest = 0;
    for (std::size_t k = 0; k < count; ++k) {
        _chainAccum = 0;
        body(k);
        longest = std::max(longest, _chainAccum);
    }
    --_parallelDepth;
    _traceBase = saved_base;
    _chainAccum = saved_chain;
    charge(longest);
    return longest;
}

ModelTime
ChainEngine::parallelForPooled(
    std::size_t count, const std::function<void(std::size_t)> &body)
{
    const unsigned lanes = static_cast<unsigned>(
        std::min<std::size_t>(_threads, count));
    _lanes.assign(lanes, HostLane{});
#ifdef OT_TRACE
    const bool tracing = _tracer && _tracer->enabled();
    if (tracing) {
        // Lanes record privately; cap each at the capacity left right
        // now so the merged, deterministically ordered stream truncates
        // at the same event regardless of the lane count.
        const std::size_t cap = _tracer->remainingCapacity();
        const ModelTime entry_off = _traceBase + _chainAccum;
        for (HostLane &lane : _lanes) {
            lane.trace.cap = cap;
            lane.traceBase = entry_off;
            lane.unchargedDepth = _unchargedDepth;
        }
    }
#endif
    auto job = [&](unsigned t) {
        HostLane &lane = _lanes[t];
        LaneBinding saved = t_binding;
        t_binding = LaneBinding{this, &lane};
        const std::size_t lo = count * t / lanes;
        const std::size_t hi = count * (t + 1) / lanes;
        for (std::size_t k = lo; k < hi; ++k) {
            lane.chain = 0;
            body(k);
            lane.longest = std::max(lane.longest, lane.chain);
        }
        t_binding = saved;
    };
    ThreadPool::shared().run(lanes, job);

    // Deterministic merge: max over lane maxima, sum of lane counters.
    // Lane trace logs concatenate in lane order — lanes own contiguous
    // iteration blocks in index order, so this reproduces the
    // sequential recording order exactly.
    ModelTime longest = 0;
    for (HostLane &lane : _lanes) {
        longest = std::max(longest, lane.longest);
        for (const auto &[name, c] : lane.stats.counters())
            if (c.value())
                _stats.counter(name) += c.value();
#ifdef OT_TRACE
        if (tracing)
            _tracer->mergeLane(lane.trace);
#endif
    }
    _lanes.clear();
    charge(longest);
    return longest;
}

ModelTime
ChainEngine::runUncharged(const std::function<void()> &body)
{
    if (HostLane *lane = boundLane()) {
        ModelTime saved = lane->chain;
        ModelTime saved_base = lane->traceBase;
        lane->traceBase = saved_base + saved;
        lane->chain = 0;
        ++lane->unchargedDepth;
        body();
        --lane->unchargedDepth;
        ModelTime would_charge = lane->chain;
        lane->chain = saved;
        lane->traceBase = saved_base;
        return would_charge;
    }
    ++_parallelDepth;
    ModelTime saved = _chainAccum;
    ModelTime saved_base = _traceBase;
    _traceBase = saved_base + saved;
    _chainAccum = 0;
    ++_unchargedDepth;
    body();
    --_unchargedDepth;
    ModelTime would_charge = _chainAccum;
    _chainAccum = saved;
    _traceBase = saved_base;
    --_parallelDepth;
    return would_charge;
}

#ifdef OT_TRACE
void
ChainEngine::traceSpan(const char *cat, const char *name, ModelTime dur,
                       const SpanArgs &args)
{
    if (!_tracer || !_tracer->enabled())
        return;
    trace::Event e;
    e.kind = trace::EventKind::Span;
    e.cat = cat;
    e.name = name;
    e.dur = dur;
    e.axis = args.axis;
    e.tree = args.tree;
    e.levels = args.levels;
    e.words = args.words;
    if (HostLane *lane = boundLane()) {
        // _acct.now() is stable for the whole pooled pardo (the clock
        // advances only after the join), so reading it from lanes is
        // race-free.
        e.start = _acct.now() + lane->traceBase + lane->chain;
        e.charged = lane->unchargedDepth == 0;
        lane->trace.record(std::move(e));
    } else {
        e.start = _acct.now() + _traceBase + _chainAccum;
        e.charged = _unchargedDepth == 0;
        _tracer->record(std::move(e));
    }
}
#endif

} // namespace ot::sim

#include "sim/chain_engine.hh"

#include <algorithm>

#include "sim/thread_pool.hh"

namespace ot::sim {

thread_local ChainEngine::LaneBinding ChainEngine::t_binding;

ChainEngine::ChainEngine(TimeAccountant &acct, StatSet &stats,
                         unsigned host_threads)
    : _acct(acct),
      _stats(stats),
      _threads(host_threads ? host_threads : ThreadPool::defaultThreads())
{
}

ChainEngine::HostLane *
ChainEngine::boundLane() const
{
    return t_binding.engine == this ? t_binding.lane : nullptr;
}

void
ChainEngine::charge(ModelTime dt)
{
    if (HostLane *lane = boundLane())
        lane->chain += dt;
    else if (_parallelDepth > 0)
        _chainAccum += dt;
    else
        _acct.advance(dt);
}

Counter &
ChainEngine::counter(const std::string &name)
{
    if (HostLane *lane = boundLane())
        return lane->stats.counter(name);
    return _stats.counter(name);
}

ModelTime
ChainEngine::parallelFor(std::size_t count,
                         const std::function<void(std::size_t)> &body)
{
    if (HostLane *lane = boundLane()) {
        // Nested pardo on a pool lane: the lane's hardware is already
        // dedicated to the outer iteration, so run sequentially and
        // fold the max into the lane's chain — the same composition
        // the sequential engine performs.
        ModelTime saved = lane->chain;
        ModelTime longest = 0;
        for (std::size_t k = 0; k < count; ++k) {
            lane->chain = 0;
            body(k);
            longest = std::max(longest, lane->chain);
        }
        lane->chain = saved + longest;
        return longest;
    }
    if (_threads >= 2 && count >= 2)
        return parallelForPooled(count, body);
    return parallelForSequential(count, body);
}

ModelTime
ChainEngine::parallelForSequential(
    std::size_t count, const std::function<void(std::size_t)> &body)
{
    ++_parallelDepth;
    ModelTime saved_chain = _chainAccum;
    ModelTime longest = 0;
    for (std::size_t k = 0; k < count; ++k) {
        _chainAccum = 0;
        body(k);
        longest = std::max(longest, _chainAccum);
    }
    --_parallelDepth;
    _chainAccum = saved_chain;
    charge(longest);
    return longest;
}

ModelTime
ChainEngine::parallelForPooled(
    std::size_t count, const std::function<void(std::size_t)> &body)
{
    const unsigned lanes = static_cast<unsigned>(
        std::min<std::size_t>(_threads, count));
    _lanes.assign(lanes, HostLane{});
    auto job = [&](unsigned t) {
        HostLane &lane = _lanes[t];
        LaneBinding saved = t_binding;
        t_binding = LaneBinding{this, &lane};
        const std::size_t lo = count * t / lanes;
        const std::size_t hi = count * (t + 1) / lanes;
        for (std::size_t k = lo; k < hi; ++k) {
            lane.chain = 0;
            body(k);
            lane.longest = std::max(lane.longest, lane.chain);
        }
        t_binding = saved;
    };
    ThreadPool::shared().run(lanes, job);

    // Deterministic merge: max over lane maxima, sum of lane counters.
    ModelTime longest = 0;
    for (HostLane &lane : _lanes) {
        longest = std::max(longest, lane.longest);
        for (const auto &[name, c] : lane.stats.counters())
            if (c.value())
                _stats.counter(name) += c.value();
    }
    _lanes.clear();
    charge(longest);
    return longest;
}

ModelTime
ChainEngine::runUncharged(const std::function<void()> &body)
{
    if (HostLane *lane = boundLane()) {
        ModelTime saved = lane->chain;
        lane->chain = 0;
        body();
        ModelTime would_charge = lane->chain;
        lane->chain = saved;
        return would_charge;
    }
    ++_parallelDepth;
    ModelTime saved = _chainAccum;
    _chainAccum = 0;
    body();
    ModelTime would_charge = _chainAccum;
    _chainAccum = saved;
    --_parallelDepth;
    return would_charge;
}

} // namespace ot::sim

/**
 * @file
 * Event-level bit-serial wire simulation — the ground truth the
 * closed-form CostModel is validated against.
 *
 * CostModel prices a word moving along a path with a formula
 * (sum of per-edge first-bit latencies + pipelined remaining bits).
 * This module *simulates* the same transfer one bit and one clock at a
 * time: each wire is a chain of driver stages (log2 length of them
 * under Thompson's rule, one under constant delay, `length` under
 * linear delay), each stage holds one bit per tick, and words enter a
 * path bit-serially.  The test suite asserts that the event-level
 * completion times equal CostModel's closed forms exactly — so every
 * model-time figure in the benches is backed by a bit-level machine,
 * not just by algebra.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "vlsi/cost_model.hh"
#include "vlsi/delay.hh"

namespace ot::sim {

using vlsi::DelayModel;
using vlsi::ModelTime;
using vlsi::WireLength;

/**
 * A bit-serial transmission line: the driver-stage pipeline of one
 * wire.  Bits are pushed at the head (one per tick at most) and emerge
 * at the tail after stages() ticks.
 */
class BitPipe
{
  public:
    BitPipe(DelayModel model, WireLength length);

    /** Driver stages = the wire's first-bit latency. */
    unsigned stages() const { return static_cast<unsigned>(_lanes.size()); }

    /**
     * Advance one clock tick: shift every stage.  `in` is the bit
     * presented at the head this tick (-1 = idle).  Returns the bit
     * leaving the tail (-1 if none).
     */
    int tick(int in);

    /** True when no bits are in flight. */
    bool empty() const;

  private:
    std::vector<int> _lanes; // stage registers, -1 = empty
};

/**
 * Event-level simulation of one w-bit word traversing a path of wires
 * (e.g. root to leaf through the tree): returns the tick at which the
 * last bit leaves the last wire.  Must equal
 * CostModel::wordAlongPath(edges).
 */
ModelTime simulateWordAlongPath(DelayModel model,
                                const std::vector<WireLength> &edges,
                                unsigned word_bits);

/**
 * Event-level simulation of `count` words pipelined along the path,
 * successive words injected `separation` ticks apart.  Must equal
 * CostModel::wordsAlongPath.
 */
ModelTime simulateWordsAlongPath(DelayModel model,
                                 const std::vector<WireLength> &edges,
                                 unsigned word_bits, std::uint64_t count,
                                 ModelTime separation);

/**
 * Event-level binary-tree reduction: 2^h leaves each start with one
 * w-bit word; every internal node combines its children's bit streams
 * with one combining-stage delay and forwards upward.  Returns the
 * tick the root receives the last result bit.  Must equal
 * CostModel::reducePath for the per-level edge lengths given
 * (edges[0] adjacent to the root, matching TreeEmbedding::pathEdges).
 */
ModelTime simulateTreeReduce(DelayModel model,
                             const std::vector<WireLength> &edges,
                             unsigned word_bits);

} // namespace ot::sim

/**
 * @file
 * Deterministic pseudo-random number generation for workloads.
 *
 * Every workload generator in tests/benches takes an explicit seed so
 * all experiments are reproducible bit-for-bit across runs and hosts.
 * The generator is splitmix64 (Steele, Lea & Flood) — tiny, fast, and
 * with well-understood statistical quality for simulation workloads.
 */

#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace ot::sim {

/** splitmix64 generator with convenience distributions. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : _state(seed) {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (_state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    uniform(std::uint64_t lo, std::uint64_t hi)
    {
        assert(lo <= hi);
        std::uint64_t span = hi - lo + 1;
        if (span == 0) // full 64-bit range
            return next();
        return lo + next() % span;
    }

    /** Bernoulli trial with probability p. */
    bool
    bernoulli(double p)
    {
        return static_cast<double>(next() >> 11) *
                   (1.0 / 9007199254740992.0) < p;
    }

    /** Uniform double in [0, 1). */
    double
    uniformReal()
    {
        return static_cast<double>(next() >> 11) / 9007199254740992.0;
    }

    /** Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = static_cast<std::size_t>(uniform(0, i - 1));
            std::swap(v[i - 1], v[j]);
        }
    }

    /** A random permutation of {0, ..., n-1}. */
    std::vector<std::uint64_t>
    permutation(std::size_t n)
    {
        std::vector<std::uint64_t> p(n);
        for (std::size_t i = 0; i < n; ++i)
            p[i] = i;
        shuffle(p);
        return p;
    }

    /** n distinct values in [0, limit), limit >= n. */
    std::vector<std::uint64_t>
    distinctValues(std::size_t n, std::uint64_t limit)
    {
        assert(limit >= n);
        // For small ranges use a permutation; otherwise rejection-free
        // sparse sampling via a sorted draw would be overkill here.
        std::vector<std::uint64_t> out;
        out.reserve(n);
        if (limit <= 4 * n) {
            std::vector<std::uint64_t> all(limit);
            for (std::uint64_t i = 0; i < limit; ++i)
                all[i] = i;
            shuffle(all);
            out.assign(all.begin(), all.begin() + static_cast<long>(n));
        } else {
            // Floyd's algorithm for distinct sampling.
            std::vector<std::uint64_t> seen;
            for (std::uint64_t j = limit - n; j < limit; ++j) {
                std::uint64_t t = uniform(0, j);
                bool hit = false;
                for (std::uint64_t s : seen)
                    hit = hit || (s == t);
                if (hit)
                    seen.push_back(j);
                else
                    seen.push_back(t);
            }
            out = seen;
        }
        return out;
    }

  private:
    std::uint64_t _state;
};

} // namespace ot::sim

/**
 * @file
 * Host-parallel execution engine for the networks' pardo semantics.
 *
 * Both network simulators (OTN and OTC) express the paper's
 * "for each i pardo" as a parallelFor that charges the *maximum* of
 * the per-iteration model-time chains, and "pipedo" as runUncharged.
 * ChainEngine owns that accounting and, when configured with more
 * than one host thread, dispatches the iteration range onto the
 * shared ThreadPool.
 *
 * Determinism: each pool lane accumulates its iterations' chains and
 * stat bumps into private HostLane storage; after the join the engine
 * max-reduces the lane maxima and sums the lane counters.  max and +
 * are commutative and associative over exact integers, and the clock
 * is advanced exactly once per parallelFor in both modes, so model
 * time, step counts, phase attribution, and stats are bit-identical
 * to the sequential engine regardless of thread count or scheduling.
 *
 * Charges issued from inside a pool lane — including nested
 * parallelFor / runUncharged and direct charge() calls in algorithm
 * bodies — are routed to that lane through a thread_local binding, so
 * the iteration bodies need no knowledge of the host threading.  A
 * nested parallelFor inside a lane runs sequentially on that lane
 * (its iterations' hardware is already busy serving the outer pardo's
 * host lane), which composes chains exactly as the sequential engine
 * does.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/time_accountant.hh"
#include "trace/tracer.hh"
#include "vlsi/delay.hh"

namespace ot::sim {

using vlsi::ModelTime;

class ChainEngine
{
  public:
    /**
     * @param acct         Clock the engine advances.
     * @param stats        Stat set top-level bumps land in.
     * @param host_threads 0 = ThreadPool::defaultThreads() (the
     *                     OT_HOST_THREADS switch), 1 = sequential,
     *                     n = dispatch onto n host lanes.
     */
    ChainEngine(TimeAccountant &acct, StatSet &stats,
                unsigned host_threads = 0);

    ChainEngine(const ChainEngine &) = delete;
    ChainEngine &operator=(const ChainEngine &) = delete;

    /** Resolved host-thread count (>= 1). */
    unsigned hostThreads() const { return _threads; }

    /**
     * Charge model time: to the current pool lane's chain if this
     * thread is executing one of this engine's lanes, else to the
     * innermost sequential parallel section, else to the clock.
     */
    void charge(ModelTime dt);

    /** Stat counter routed like charge() (lane-local under the pool). */
    Counter &counter(const std::string &name);

    /**
     * Attach a tracer; primitive spans recorded through traceSpan()
     * are routed like charge() (lane-local under the pool, merged
     * deterministically after the join).  The caller usually attaches
     * the same tracer to the TimeAccountant so the charge stream rides
     * along.  nullptr detaches.
     */
    void setTracer(trace::Tracer *tracer) { _tracer = tracer; }
    trace::Tracer *tracer() const { return _tracer; }

    /** Addressing/args of one traced primitive span. */
    struct SpanArgs
    {
        trace::TraceAxis axis = trace::TraceAxis::None;
        std::int64_t tree = -1;
        std::uint32_t levels = 0;
        std::uint64_t words = 0;
    };

    /**
     * Record one primitive span of duration `dur` starting at the
     * current model-time offset (clock + enclosing chains + chain so
     * far).  Call *before* the matching charge(dur).  No-op without an
     * enabled tracer; compiled out entirely without OT_TRACE.
     */
#ifdef OT_TRACE
    void traceSpan(const char *cat, const char *name, ModelTime dur,
                   const SpanArgs &args);
#else
    void
    traceSpan(const char *, const char *, ModelTime, const SpanArgs &)
    {
    }
#endif

    /**
     * Max-of-chains parallel loop.  Returns the charged cost.  Host
     * dispatch engages only for top-level loops with >= 2 iterations
     * and >= 2 configured threads; nested loops run sequentially on
     * their lane.
     */
    ModelTime parallelFor(std::size_t count,
                          const std::function<void(std::size_t)> &body);

    /** Run body with the clock stopped; return what it would charge. */
    ModelTime runUncharged(const std::function<void()> &body);

  private:
    /** Per-pool-lane accounting, private to one lane of one job. */
    struct HostLane
    {
        ModelTime chain = 0;   // current iteration's chain
        ModelTime longest = 0; // max chain over this lane's iterations
        ModelTime traceBase = 0;     // model-time offset of the chain start
        unsigned unchargedDepth = 0; // runUncharged nesting on this lane
        StatSet stats;         // merged into the engine's after the join
        trace::LaneLog trace;  // merged into the tracer after the join
    };

    struct LaneBinding
    {
        const ChainEngine *engine = nullptr;
        HostLane *lane = nullptr;
    };

    /** This thread's lane, iff it is serving one of *our* jobs. */
    HostLane *boundLane() const;

    ModelTime parallelForSequential(
        std::size_t count, const std::function<void(std::size_t)> &body);
    ModelTime parallelForPooled(
        std::size_t count, const std::function<void(std::size_t)> &body);

    static thread_local LaneBinding t_binding;

    TimeAccountant &_acct;
    StatSet &_stats;
    unsigned _threads;
    trace::Tracer *_tracer = nullptr;

    // Sequential parallel-section state (main thread, unbound).
    unsigned _parallelDepth = 0;
    ModelTime _chainAccum = 0;
    ModelTime _traceBase = 0;     // model-time offset of _chainAccum's start
    unsigned _unchargedDepth = 0; // runUncharged nesting (main thread)

    std::vector<HostLane> _lanes;
};

} // namespace ot::sim

#include "sim/bitserial.hh"

#include <algorithm>
#include <cassert>

namespace ot::sim {

BitPipe::BitPipe(DelayModel model, WireLength length)
    : _lanes(vlsi::wireDelay(model, length), -1)
{
}

int
BitPipe::tick(int in)
{
    int out = _lanes.back();
    for (std::size_t s = _lanes.size(); s-- > 1;)
        _lanes[s] = _lanes[s - 1];
    _lanes[0] = in;
    return out;
}

bool
BitPipe::empty() const
{
    return std::all_of(_lanes.begin(), _lanes.end(),
                       [](int b) { return b < 0; });
}

namespace {

/** A chain of pipes with an optional 1-tick combine stage per joint. */
class PipeChain
{
  public:
    PipeChain(DelayModel model, const std::vector<WireLength> &edges,
              bool combine_per_edge)
    {
        // Edges arrive root-first (TreeEmbedding convention); a word
        // travels leaf -> root, so build the chain reversed.
        for (std::size_t e = edges.size(); e-- > 0;) {
            _pipes.emplace_back(model, edges[e]);
            if (combine_per_edge)
                _pipes.emplace_back(DelayModel::Constant, 1);
        }
    }

    /** One global tick; returns the bit leaving the chain. */
    int
    tick(int in)
    {
        int carry = in;
        for (auto &pipe : _pipes)
            carry = pipe.tick(carry);
        return carry;
    }

    bool
    empty() const
    {
        return std::all_of(_pipes.begin(), _pipes.end(),
                           [](const BitPipe &p) { return p.empty(); });
    }

  private:
    std::vector<BitPipe> _pipes;
};

/**
 * Drive `count` words of `word_bits` bits through the chain, word w
 * injected starting at tick w * separation + 1.  Returns the elapsed
 * time between the first injection tick and the final bit's exit —
 * the quantity CostModel's formulas express.
 */
ModelTime
drive(PipeChain &chain, unsigned word_bits, std::uint64_t count,
      ModelTime separation)
{
    if (count == 0)
        return 0;
    assert(separation >= word_bits &&
           "words must not overlap on a bit-serial wire");
    ModelTime last_exit = 0;
    std::uint64_t total_bits = count * word_bits;
    std::uint64_t emerged = 0;
    for (ModelTime t = 1; emerged < total_bits; ++t) {
        assert(t < 1000000 && "bit-serial simulation runaway");
        // Word w occupies ticks [w*separation + 1, w*separation + bits].
        std::uint64_t t0 = t - 1;
        std::uint64_t w = t0 / separation;
        std::uint64_t off = t0 - w * separation;
        int in = -1;
        if (w < count && off < word_bits)
            in = static_cast<int>((w * word_bits + off) % 2);
        int out = chain.tick(in);
        if (out >= 0) {
            ++emerged;
            last_exit = t;
        }
    }
    return last_exit - 1;
}

} // namespace

ModelTime
simulateWordAlongPath(DelayModel model,
                      const std::vector<WireLength> &edges,
                      unsigned word_bits)
{
    PipeChain chain(model, edges, /*combine_per_edge=*/false);
    return drive(chain, word_bits, 1, word_bits);
}

ModelTime
simulateWordsAlongPath(DelayModel model,
                       const std::vector<WireLength> &edges,
                       unsigned word_bits, std::uint64_t count,
                       ModelTime separation)
{
    PipeChain chain(model, edges, /*combine_per_edge=*/false);
    return drive(chain, word_bits, count, separation);
}

ModelTime
simulateTreeReduce(DelayModel model, const std::vector<WireLength> &edges,
                   unsigned word_bits)
{
    // The reduction's critical path: one leaf-to-root chain with a
    // 1-tick combining stage at every internal node (both children are
    // symmetric, so the other subtree never delays the stream
    // further).
    PipeChain chain(model, edges, /*combine_per_edge=*/true);
    return drive(chain, word_bits, 1, word_bits);
}

} // namespace ot::sim

#include "sim/thread_pool.hh"

#include <cstdlib>

namespace ot::sim {

namespace {
thread_local bool t_in_worker = false;
} // namespace

ThreadPool &
ThreadPool::shared()
{
    static ThreadPool pool;
    return pool;
}

unsigned
ThreadPool::defaultThreads()
{
    if (const char *env = std::getenv("OT_HOST_THREADS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v >= 1)
            return static_cast<unsigned>(v > 256 ? 256 : v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

bool
ThreadPool::inWorker()
{
    return t_in_worker;
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(_m);
        _stop = true;
    }
    _wake.notify_all();
    for (auto &w : _workers)
        w.join();
}

std::size_t
ThreadPool::workerCount()
{
    std::lock_guard<std::mutex> lk(_m);
    return _workers.size();
}

void
ThreadPool::ensureWorkers(unsigned n)
{
    std::lock_guard<std::mutex> lk(_m);
    while (_workers.size() < n) {
        unsigned id = static_cast<unsigned>(_workers.size());
        _workers.emplace_back([this, id] { workerLoop(id); });
    }
}

void
ThreadPool::workerLoop(unsigned id)
{
    t_in_worker = true;
    std::uint64_t seen = 0;
    for (;;) {
        const std::function<void(unsigned)> *fn = nullptr;
        unsigned lanes = 0;
        {
            std::unique_lock<std::mutex> lk(_m);
            _wake.wait(lk, [&] {
                return _stop || (_epoch != seen && _fn != nullptr);
            });
            if (_stop)
                return;
            seen = _epoch;
            fn = _fn;
            lanes = _lanes;
        }
        // Worker w runs lane w + 1; extra workers sit the job out.
        if (id + 1 < lanes) {
            (*fn)(id + 1);
            std::lock_guard<std::mutex> lk(_m);
            if (--_pending == 0)
                _done.notify_one();
        }
    }
}

void
ThreadPool::run(unsigned lanes, const std::function<void(unsigned)> &fn)
{
    if (lanes == 0)
        return;
    if (lanes == 1 || t_in_worker) {
        for (unsigned t = 0; t < lanes; ++t)
            fn(t);
        return;
    }
    std::lock_guard<std::mutex> job(_jobMutex);
    ensureWorkers(lanes - 1);
    {
        std::lock_guard<std::mutex> lk(_m);
        _fn = &fn;
        _lanes = lanes;
        _pending = lanes - 1;
        ++_epoch;
    }
    _wake.notify_all();
    // Mark the caller busy while it runs lane 0 so a nested run() from
    // the job body goes inline instead of self-deadlocking on _jobMutex.
    t_in_worker = true;
    fn(0);
    t_in_worker = false;
    std::unique_lock<std::mutex> lk(_m);
    _done.wait(lk, [&] { return _pending == 0; });
    _fn = nullptr;
}

} // namespace ot::sim

#include "sim/stats.hh"

namespace ot::sim {

void
StatSet::dump(std::ostream &os, const std::string &prefix) const
{
    for (const auto &[name, c] : _counters)
        os << prefix << name << " " << c.value() << "\n";
    for (const auto &[name, d] : _distributions) {
        os << prefix << name << ".count " << d.count() << "\n"
           << prefix << name << ".mean " << d.mean() << "\n"
           << prefix << name << ".min " << d.min() << "\n"
           << prefix << name << ".max " << d.max() << "\n";
    }
}

} // namespace ot::sim

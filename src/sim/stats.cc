#include "sim/stats.hh"

#include <iomanip>
#include <sstream>

#include "trace/export.hh"

namespace ot::sim {

void
StatSet::dump(std::ostream &os, const std::string &prefix) const
{
    for (const auto &[name, c] : _counters)
        os << prefix << name << " " << c.value() << "\n";
    for (const auto &[name, d] : _distributions) {
        os << prefix << name << ".count " << d.count() << "\n"
           << prefix << name << ".mean " << d.mean() << "\n"
           << prefix << name << ".min " << d.min() << "\n"
           << prefix << name << ".max " << d.max() << "\n";
    }
}

std::string
StatSet::toJson() const
{
    std::ostringstream os;
    os << std::setprecision(17);
    os << "{\"counters\": {";
    bool first = true;
    for (const auto &[name, c] : _counters) {
        os << (first ? "" : ", ") << "\"" << trace::jsonEscape(name)
           << "\": " << c.value();
        first = false;
    }
    os << "}, \"distributions\": {";
    first = true;
    for (const auto &[name, d] : _distributions) {
        os << (first ? "" : ", ") << "\"" << trace::jsonEscape(name)
           << "\": {\"count\": " << d.count() << ", \"total\": " << d.total()
           << ", \"mean\": " << d.mean() << ", \"min\": " << d.min()
           << ", \"max\": " << d.max() << ", \"stddev\": " << d.stddev()
           << "}";
        first = false;
    }
    os << "}}";
    return os.str();
}

} // namespace ot::sim

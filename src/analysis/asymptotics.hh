/**
 * @file
 * Numeric evaluation of the paper's area/time tables.
 *
 * Each entry of Tables I-IV (and the MST remark) is a closed-form
 * asymptotic expression in N; this module evaluates them (without the
 * hidden constants) so the benches can print the paper's row next to
 * the measured one and compare *shapes*: growth exponents, winner
 * orderings and crossover points.  Garbled OCR cells were
 * reconstructed from the paper's prose; the derivations are recorded
 * in DESIGN.md ("Reconstructed table cells").
 */

#pragma once

#include <string>

#include "vlsi/delay.hh"

namespace ot::analysis {

using vlsi::DelayModel;

/** The five networks the paper compares. */
enum class Network { Mesh, Psn, Ccc, Otn, Otc };

/** The problems with table rows. */
enum class Problem { Sorting, BoolMatMul, ConnectedComponents, Mst };

std::string toString(Network n);
std::string toString(Problem p);

/** One table cell pair (area, time) and the figure of merit A*T^2. */
struct Asymptotics
{
    double area = 0;
    double time = 0;

    double at2() const { return area * time * time; }
};

/**
 * The paper's asymptotic formula for `network` solving `problem` on an
 * N-element instance under `model` (Logarithmic = Tables I-III,
 * Constant = Table IV; the Linear model has no table and returns the
 * logarithmic row).  Hidden constants are 1.
 */
Asymptotics paperFormula(Network network, Problem problem, DelayModel model,
                         double n);

/**
 * Smallest power of two N at which network `a` has a strictly smaller
 * AT^2 than `b` for the given problem — the crossover the tables
 * imply.  Returns 0 if none is found up to `limit`.
 */
double at2Crossover(Network a, Network b, Problem problem, DelayModel model,
                    double limit = 1e9);

} // namespace ot::analysis

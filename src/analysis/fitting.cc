#include "analysis/fitting.hh"

#include <cassert>
#include <cmath>
#include <vector>

namespace ot::analysis {

namespace {

PowerFit
linearFit(const std::vector<double> &lx, const std::vector<double> &ly)
{
    const std::size_t n = lx.size();
    assert(n >= 2);
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (std::size_t i = 0; i < n; ++i) {
        sx += lx[i];
        sy += ly[i];
        sxx += lx[i] * lx[i];
        sxy += lx[i] * ly[i];
    }
    double denom = n * sxx - sx * sx;
    PowerFit fit;
    fit.exponent = (n * sxy - sx * sy) / denom;
    double intercept = (sy - fit.exponent * sx) / static_cast<double>(n);
    fit.coefficient = std::exp(intercept);

    double mean_y = sy / static_cast<double>(n);
    double ss_tot = 0, ss_res = 0;
    for (std::size_t i = 0; i < n; ++i) {
        double pred = intercept + fit.exponent * lx[i];
        ss_res += (ly[i] - pred) * (ly[i] - pred);
        ss_tot += (ly[i] - mean_y) * (ly[i] - mean_y);
    }
    fit.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
    return fit;
}

} // namespace

PowerFit
fitPowerLaw(std::span<const double> xs, std::span<const double> ys)
{
    assert(xs.size() == ys.size());
    std::vector<double> lx, ly;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        assert(xs[i] > 0 && ys[i] > 0);
        lx.push_back(std::log(xs[i]));
        ly.push_back(std::log(ys[i]));
    }
    return linearFit(lx, ly);
}

PowerFit
fitPowerLawInLogN(std::span<const double> xs, std::span<const double> ys)
{
    assert(xs.size() == ys.size());
    std::vector<double> lx, ly;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        assert(xs[i] > 1 && ys[i] > 0);
        lx.push_back(std::log(std::log2(xs[i])));
        ly.push_back(std::log(ys[i]));
    }
    return linearFit(lx, ly);
}

} // namespace ot::analysis

#include "analysis/table.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ot::analysis {

TextTable::TextTable(std::vector<std::string> headers)
    : _headers(std::move(headers))
{
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    cells.resize(_headers.size());
    _rows.push_back(std::move(cells));
}

std::string
TextTable::str() const
{
    std::vector<std::size_t> width(_headers.size());
    for (std::size_t c = 0; c < _headers.size(); ++c)
        width[c] = _headers[c].size();
    for (const auto &row : _rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto render_row = [&](const std::vector<std::string> &row) {
        std::string line;
        for (std::size_t c = 0; c < row.size(); ++c) {
            std::string cell = row[c];
            cell.resize(width[c], ' ');
            line += cell;
            if (c + 1 < row.size())
                line += "  ";
        }
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        return line + "\n";
    };

    std::string out = render_row(_headers);
    std::size_t rule = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        rule += width[c] + (c + 1 < width.size() ? 2 : 0);
    out += std::string(rule, '-') + "\n";
    for (const auto &row : _rows)
        out += render_row(row);
    return out;
}

std::string
TextTable::csv() const
{
    auto escape = [](const std::string &cell) {
        if (cell.find_first_of(",\"\n") == std::string::npos)
            return cell;
        std::string out = "\"";
        for (char c : cell) {
            if (c == '"')
                out += '"';
            out += c;
        }
        out += '"';
        return out;
    };
    auto render = [&](const std::vector<std::string> &row) {
        std::string line;
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                line += ',';
            line += escape(row[c]);
        }
        return line + "\n";
    };
    std::string out = render(_headers);
    for (const auto &row : _rows)
        out += render(row);
    return out;
}

std::string
formatQuantity(double v)
{
    static const char *suffix[] = {"", "K", "M", "G", "T", "P", "E"};
    if (v < 0)
        return "-" + formatQuantity(-v);
    int mag = 0;
    while (v >= 1000.0 && mag < 6) {
        v /= 1000.0;
        ++mag;
    }
    char buf[32];
    if (v >= 100 || v == std::floor(v))
        std::snprintf(buf, sizeof(buf), "%.0f%s", v, suffix[mag]);
    else
        std::snprintf(buf, sizeof(buf), "%.2f%s", v, suffix[mag]);
    return buf;
}

std::string
formatRatio(double v)
{
    char buf[32];
    if (v >= 100)
        std::snprintf(buf, sizeof(buf), "%.0fx", v);
    else
        std::snprintf(buf, sizeof(buf), "%.2fx", v);
    return buf;
}

std::string
formatExponent(const std::string &base, double e)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s^%.2f", base.c_str(), e);
    return buf;
}

} // namespace ot::analysis

/**
 * @file
 * Plain-text table rendering shared by the benchmark binaries, which
 * print the paper's tables next to the measured rows.
 */

#pragma once

#include <string>
#include <vector>

namespace ot::analysis {

/** Column-aligned text table with a header row and a rule under it. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Render with two spaces between columns. */
    std::string str() const;

    /** Render as CSV (RFC-4180-ish: cells with commas/quotes quoted). */
    std::string csv() const;

  private:
    std::vector<std::string> _headers;
    std::vector<std::vector<std::string>> _rows;
};

/** 3-significant-digit engineering format: 1.23e+06 -> "1.23M"-style. */
std::string formatQuantity(double v);

/** Format a ratio like "12.5x". */
std::string formatRatio(double v);

/** Format a fitted exponent like "N^1.98" or "log^2.1 N". */
std::string formatExponent(const std::string &base, double e);

} // namespace ot::analysis

#include "analysis/asymptotics.hh"

#include <cmath>

namespace ot::analysis {

std::string
toString(Network n)
{
    switch (n) {
      case Network::Mesh:
        return "mesh";
      case Network::Psn:
        return "PSN";
      case Network::Ccc:
        return "CCC";
      case Network::Otn:
        return "OTN";
      case Network::Otc:
        return "OTC";
    }
    return "?";
}

std::string
toString(Problem p)
{
    switch (p) {
      case Problem::Sorting:
        return "sorting";
      case Problem::BoolMatMul:
        return "Boolean matrix multiplication";
      case Problem::ConnectedComponents:
        return "connected components";
      case Problem::Mst:
        return "minimum spanning tree";
    }
    return "?";
}

namespace {

/** log2 with the same >= 1 guard the machines use. */
double
lg(double n)
{
    return std::max(1.0, std::log2(n));
}

Asymptotics
sorting(Network network, DelayModel model, double n)
{
    const double l = lg(n);
    const bool constant = model == DelayModel::Constant;
    switch (network) {
      case Network::Mesh:
        // Short wires: unaffected by the delay model (Section VII-D).
        return {n * l * l, std::sqrt(n)};
      case Network::Psn:
        return {n * n / (l * l), constant ? l * l : l * l * l};
      case Network::Ccc:
        // Section VII-A: the O(log^2 N) CCC sort needs O(log^3 N)
        // under Thompson's model.
        return {n * n / (l * l), constant ? l * l : l * l * l};
      case Network::Otn:
        // Section VII-D: O(log N) under constant delay.
        return {n * n * l * l, constant ? l : l * l};
      case Network::Otc:
        // Under constant delay "there is no longer any need for the
        // OTC" — its time degrades to the same L^2 (Section VII-D).
        return {n * n, l * l};
    }
    return {};
}

Asymptotics
boolMatMul(Network network, DelayModel, double n)
{
    const double l = lg(n);
    switch (network) {
      case Network::Mesh:
        return {n * n, n}; // optimal AT^2 = N^4 [15], [27]
      case Network::Psn:
        // Classical product, N^3 processors [10].
        return {std::pow(n, 6.0) / l, l * l};
      case Network::Ccc:
        return {std::pow(n, 6.0) / (l * l), l * l};
      case Network::Otn:
        // (N^2 x N^2)-OTN: area K^2 log^2 K with K = N^2.
        return {std::pow(n, 4.0) * l * l, l * l};
      case Network::Otc:
        // Section VI-B: cycles of log^2 N one-bit BPs.
        return {std::pow(n, 4.0) / (l * l), l * l};
    }
    return {};
}

Asymptotics
connectedComponents(Network network, DelayModel, double n)
{
    const double l = lg(n);
    switch (network) {
      case Network::Mesh:
        return {n * n, n};
      case Network::Psn:
      case Network::Ccc:
        // CONNECT [12] with N^2 / log N processors.
        return {std::pow(n, 4.0) / std::pow(l, 4.0), std::pow(l, 4.0)};
      case Network::Otn:
        return {n * n * l * l, std::pow(l, 4.0)};
      case Network::Otc:
        return {n * n, std::pow(l, 4.0)};
    }
    return {};
}

Asymptotics
mst(Network network, DelayModel model, double n)
{
    const double l = lg(n);
    // "The area and time figures for finding a minimal spanning tree
    // are similar" (Section VII-C) — except the OTC must keep the
    // whole N x N weight matrix of O(log N)-bit words resident
    // (Section VI-B), costing one extra log factor of area:
    // AT^2 = O(N^2 log^9 N) (abstract).
    Asymptotics a = connectedComponents(network, model, n);
    if (network == Network::Otc)
        a.area *= l;
    return a;
}

} // namespace

Asymptotics
paperFormula(Network network, Problem problem, DelayModel model, double n)
{
    switch (problem) {
      case Problem::Sorting:
        return sorting(network, model, n);
      case Problem::BoolMatMul:
        return boolMatMul(network, model, n);
      case Problem::ConnectedComponents:
        return connectedComponents(network, model, n);
      case Problem::Mst:
        return mst(network, model, n);
    }
    return {};
}

double
at2Crossover(Network a, Network b, Problem problem, DelayModel model,
             double limit)
{
    for (double n = 4; n <= limit; n *= 2) {
        if (paperFormula(a, problem, model, n).at2() <
            paperFormula(b, problem, model, n).at2())
            return n;
    }
    return 0;
}

} // namespace ot::analysis

/**
 * @file
 * Growth-law fitting for the empirical asymptotics checks.
 *
 * The benches sweep N, measure model time/area, and fit y = c * x^e by
 * least squares in log-log space; the exponent (and the residual R^2)
 * is what gets compared against the paper's tables.  For
 * polylogarithmic quantities (times like log^2 N) fit against
 * x' = log2(x) instead — fitPowerLawInLogN.
 */

#pragma once

#include <span>

namespace ot::analysis {

/** Result of a power-law fit y = coefficient * x^exponent. */
struct PowerFit
{
    double exponent = 0;
    double coefficient = 0;
    /** Coefficient of determination of the log-log regression. */
    double r2 = 0;
};

/** Fit y = c * x^e over matched samples (all values must be > 0). */
PowerFit fitPowerLaw(std::span<const double> xs, std::span<const double> ys);

/**
 * Fit y = c * (log2 x)^e — for quantities that are polylogarithmic in
 * the problem size.
 */
PowerFit fitPowerLawInLogN(std::span<const double> xs,
                           std::span<const double> ys);

} // namespace ot::analysis

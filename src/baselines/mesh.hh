/**
 * @file
 * The mesh baseline (Tables I-IV reference rows).
 *
 * The mesh is the "low area, high time" class of Section I: short
 * wires only, so its time is unaffected by the delay model
 * (Section VII-D), but sorting takes Theta(sqrt N) and matrix problems
 * Theta(N).
 *
 *  - Sorting: Batcher's bitonic network with compare-exchanges at
 *    linear distance d realised by d (within-row) or d/K (across-row)
 *    nearest-neighbour routing hops — the Thompson-Kung scheme [32].
 *    The geometric series of merge distances telescopes to Theta(K) =
 *    Theta(sqrt N) total hops.
 *  - Matrix multiplication: Cannon's algorithm, N shift-multiply
 *    rounds on an N x N processor grid.
 *  - Connected components: repeated Boolean squaring of (A + I) on the
 *    Cannon engine (log N squarings, O(N) each), then a min-label
 *    pass — Theta(N log N), one log above the Levitt-Kautz cellular
 *    bound [17] the paper cites (see EXPERIMENTS.md).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hh"
#include "layout/baseline_layouts.hh"
#include "linalg/matrix.hh"
#include "sim/stats.hh"
#include "sim/time_accountant.hh"
#include "vlsi/cost_model.hh"

namespace ot::baselines {

using vlsi::CostModel;
using vlsi::ModelTime;

/** A sqrt(P) x sqrt(P) mesh machine with word-parallel links. */
class MeshMachine
{
  public:
    MeshMachine(std::size_t processors, const CostModel &cost);

    std::size_t side() const { return _layout.side(); }
    const CostModel &cost() const { return _cost; }
    const layout::MeshLayout &chipLayout() const { return _layout; }
    sim::TimeAccountant &acct() { return _acct; }
    const sim::TimeAccountant &acct() const { return _acct; }
    ModelTime now() const { return _acct.now(); }

    /** Cost of moving one word to a 4-neighbour (word-parallel link). */
    ModelTime hopCost() const;

    /** Charge `hops` routing steps plus a compare/ALU op. */
    void chargeRoute(std::uint64_t hops);

    void charge(ModelTime dt) { _acct.advance(dt); }

  private:
    CostModel _cost;
    layout::MeshLayout _layout;
    sim::TimeAccountant _acct;
};

/** Result of a mesh run (same shape as the OTN results). */
struct MeshSortResult
{
    std::vector<std::uint64_t> sorted;
    ModelTime time = 0;
};

/**
 * Sort on a mesh of values.size() processors (one element each),
 * bitonic with nearest-neighbour routing.
 */
MeshSortResult meshSort(MeshMachine &mesh,
                        const std::vector<std::uint64_t> &values);

/** Convenience overload building the machine. */
MeshSortResult meshSort(const std::vector<std::uint64_t> &values,
                        const CostModel &cost);

/**
 * Odd-even transposition sort on the mesh snake order: N rounds of
 * nearest-neighbour compare-exchange, Theta(N) time — the naive mesh
 * sorter the Thompson-Kung bitonic routing beats by a sqrt(N) factor
 * (ablation material; the paper's Table I row is the fast one).
 */
MeshSortResult meshOddEvenSort(MeshMachine &mesh,
                               const std::vector<std::uint64_t> &values);

struct MeshMatMulResult
{
    linalg::IntMatrix product;
    ModelTime time = 0;
};

/** Cannon's algorithm on an n x n mesh (n = a.rows()). */
MeshMatMulResult meshMatMul(MeshMachine &mesh, const linalg::IntMatrix &a,
                            const linalg::IntMatrix &b);

/** Boolean Cannon (AND/OR semiring). */
MeshMatMulResult meshBoolMatMul(MeshMachine &mesh,
                                const linalg::BoolMatrix &a,
                                const linalg::BoolMatrix &b);

struct MeshCcResult
{
    std::vector<std::size_t> labels;
    std::size_t componentCount = 0;
    ModelTime time = 0;
};

/** Connected components via Boolean closure on the mesh. */
MeshCcResult meshConnectedComponents(MeshMachine &mesh,
                                     const graph::Graph &g);

} // namespace ot::baselines

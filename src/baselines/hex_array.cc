#include "baselines/hex_array.hh"

#include <cassert>

#include "vlsi/bitmath.hh"

namespace ot::baselines {

HexArray::HexArray(std::size_t n, const CostModel &cost)
    : _n(vlsi::nextPow2(n ? n : 1)),
      _cost(cost),
      _layout(_n * _n, cost.word().bits())
{
}

std::uint64_t
HexArray::chipArea() const
{
    return _layout.metrics().area();
}

ModelTime
HexArray::beatCost() const
{
    // Nearest-neighbour word-parallel hop plus the multiply-accumulate
    // (pipelined with the hop; the MAC's serial latency hides behind
    // the systolic beat once the pipe is full, so charge the max).
    ModelTime hop = _cost.edgeDelay(_layout.linkLength()) + 1;
    return hop + 1;
}

linalg::IntMatrix
HexArray::matMul(const linalg::IntMatrix &a, const linalg::IntMatrix &b)
{
    const std::size_t m = a.rows();
    assert(a.cols() == m && b.rows() == m && b.cols() == m && m <= _n);

    sim::ScopedPhase phase(_acct, "hex-matmul");
    linalg::IntMatrix c(m, m, 0);

    // Wavefront schedule: at systolic beat t, every cell on the plane
    // i + j + k = t fires its multiply-accumulate — this is exactly
    // when the skewed a(i, k), b(k, j) and c(i, j) streams meet in the
    // hex array.  3m - 2 beats drain the whole product.
    _lastBeats = 0;
    for (std::size_t t = 0; t <= 3 * (m - 1); ++t) {
        for (std::size_t i = 0; i < m; ++i) {
            if (t < i)
                continue;
            for (std::size_t j = 0; j + i <= t && j < m; ++j) {
                std::size_t k = t - i - j;
                if (k < m)
                    c(i, j) += a(i, k) * b(k, j);
            }
        }
        _acct.advance(beatCost());
        ++_lastBeats;
    }
    // Final word drain out of the array boundary.
    _acct.advance(_cost.wordSeparation());
    ++_stats.counter("hex.matMul");
    return c;
}

linalg::BoolMatrix
HexArray::boolMatMul(const linalg::BoolMatrix &a, const linalg::BoolMatrix &b)
{
    const std::size_t m = a.rows();
    linalg::IntMatrix ai(m, m, 0), bi(m, m, 0);
    for (std::size_t i = 0; i < m; ++i)
        for (std::size_t j = 0; j < m; ++j) {
            ai(i, j) = a(i, j) ? 1 : 0;
            bi(i, j) = b(i, j) ? 1 : 0;
        }
    auto ci = matMul(ai, bi);
    linalg::BoolMatrix c(m, m, 0);
    for (std::size_t i = 0; i < m; ++i)
        for (std::size_t j = 0; j < m; ++j)
            c(i, j) = ci(i, j) ? 1 : 0;
    return c;
}

} // namespace ot::baselines

#include "baselines/mesh.hh"

#include <algorithm>
#include <cassert>

#include "graph/reference_algorithms.hh"
#include "linalg/reference.hh"
#include "otn/registers.hh" // kNull
#include "vlsi/bitmath.hh"

namespace ot::baselines {

using otn::kNull;

MeshMachine::MeshMachine(std::size_t processors, const CostModel &cost)
    : _cost(cost), _layout(processors, cost.word().bits())
{
}

ModelTime
MeshMachine::hopCost() const
{
    // Word-parallel link (the mesh PE's Theta(log^2 N) area buys a
    // log N-wide port): one wire delay moves the whole word.
    return _cost.edgeDelay(_layout.linkLength()) + 1;
}

void
MeshMachine::chargeRoute(std::uint64_t hops)
{
    _acct.advance(hops * hopCost() + 1);
}

MeshSortResult
meshSort(MeshMachine &mesh, const std::vector<std::uint64_t> &values)
{
    const std::size_t k = mesh.side();
    const std::size_t total = k * k;
    assert(values.size() <= total);

    ModelTime start = mesh.now();
    sim::ScopedPhase phase(mesh.acct(), "mesh-sort");

    std::vector<std::uint64_t> a(total, kNull);
    std::copy(values.begin(), values.end(), a.begin());
    // Input load: one word per boundary port, streamed across the
    // mesh: K hops to fill.
    mesh.chargeRoute(k);

    for (std::size_t size = 2; size <= total; size <<= 1) {
        for (std::size_t d = size / 2; d >= 1; d >>= 1) {
            for (std::size_t l = 0; l < total; ++l) {
                std::size_t p = l ^ d;
                if (p <= l)
                    continue;
                bool ascending = (l & size) == 0;
                bool out_of_order = ascending ? (a[l] > a[p])
                                              : (a[l] < a[p]);
                if (out_of_order)
                    std::swap(a[l], a[p]);
            }
            // Partners are d columns apart (d < K) or d/K rows apart:
            // that many nearest-neighbour routing hops each way.
            std::uint64_t hops = d < k ? d : d / k;
            mesh.chargeRoute(2 * hops);
        }
    }

    MeshSortResult result;
    result.sorted.assign(a.begin(),
                         a.begin() + static_cast<long>(values.size()));
    result.time = mesh.now() - start;
    return result;
}

MeshSortResult
meshSort(const std::vector<std::uint64_t> &values, const CostModel &cost)
{
    MeshMachine mesh(values.size(), cost);
    return meshSort(mesh, values);
}

MeshSortResult
meshOddEvenSort(MeshMachine &mesh, const std::vector<std::uint64_t> &values)
{
    const std::size_t k = mesh.side();
    const std::size_t total = k * k;
    assert(values.size() <= total);

    ModelTime start = mesh.now();
    sim::ScopedPhase phase(mesh.acct(), "mesh-odd-even-sort");

    // Snake (boustrophedon) order over the grid keeps every linear
    // neighbour a mesh neighbour, so each round is one hop.
    std::vector<std::uint64_t> a(total, otn::kNull);
    std::copy(values.begin(), values.end(), a.begin());
    mesh.chargeRoute(k); // input fill

    for (std::size_t round = 0; round < total; ++round) {
        for (std::size_t l = round % 2; l + 1 < total; l += 2)
            if (a[l] > a[l + 1])
                std::swap(a[l], a[l + 1]);
        mesh.chargeRoute(1);
    }

    MeshSortResult result;
    result.sorted.assign(a.begin(),
                         a.begin() + static_cast<long>(values.size()));
    result.time = mesh.now() - start;
    return result;
}

namespace {

/** Cannon's algorithm over a configurable (add, multiply) semiring. */
linalg::IntMatrix
cannon(MeshMachine &mesh, const linalg::IntMatrix &a,
       const linalg::IntMatrix &b, bool boolean)
{
    const std::size_t n = a.rows();
    assert(a.cols() == n && b.rows() == n && b.cols() == n);

    // Initial skew: row i of A rotated left by i, column j of B
    // rotated up by j — at most n-1 hops, done once.
    linalg::IntMatrix as(n, n), bs(n, n), c(n, n, 0);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j) {
            as(i, j) = a(i, (j + i) % n);
            bs(i, j) = b((i + j) % n, j);
        }
    mesh.chargeRoute(n - 1);

    for (std::size_t step = 0; step < n; ++step) {
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
                if (boolean)
                    c(i, j) |= (as(i, j) & bs(i, j)) ? 1 : 0;
                else
                    c(i, j) += as(i, j) * bs(i, j);
            }
        }
        // Multiply-accumulate plus one rotation hop of A and B.
        mesh.charge(mesh.cost().bitSerialMultiply());
        mesh.chargeRoute(1);
        // Rotate A left, B up.
        linalg::IntMatrix an(n, n), bn(n, n);
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = 0; j < n; ++j) {
                an(i, j) = as(i, (j + 1) % n);
                bn(i, j) = bs((i + 1) % n, j);
            }
        as = std::move(an);
        bs = std::move(bn);
    }
    return c;
}

linalg::IntMatrix
widen(const linalg::BoolMatrix &m)
{
    linalg::IntMatrix out(m.rows(), m.cols(), 0);
    for (std::size_t i = 0; i < m.rows(); ++i)
        for (std::size_t j = 0; j < m.cols(); ++j)
            out(i, j) = m(i, j) ? 1 : 0;
    return out;
}

} // namespace

MeshMatMulResult
meshMatMul(MeshMachine &mesh, const linalg::IntMatrix &a,
           const linalg::IntMatrix &b)
{
    ModelTime start = mesh.now();
    sim::ScopedPhase phase(mesh.acct(), "mesh-matmul");
    MeshMatMulResult result;
    result.product = cannon(mesh, a, b, /*boolean=*/false);
    result.time = mesh.now() - start;
    return result;
}

MeshMatMulResult
meshBoolMatMul(MeshMachine &mesh, const linalg::BoolMatrix &a,
               const linalg::BoolMatrix &b)
{
    ModelTime start = mesh.now();
    sim::ScopedPhase phase(mesh.acct(), "mesh-bool-matmul");
    MeshMatMulResult result;
    result.product = cannon(mesh, widen(a), widen(b), /*boolean=*/true);
    result.time = mesh.now() - start;
    return result;
}

MeshCcResult
meshConnectedComponents(MeshMachine &mesh, const graph::Graph &g)
{
    const std::size_t n = g.vertices();
    ModelTime start = mesh.now();
    sim::ScopedPhase phase(mesh.acct(), "mesh-cc");

    // reach := (A + I)^(2^ceil(log n)) by repeated Boolean squaring on
    // the Cannon engine.
    linalg::IntMatrix reach(n, n, 0);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            reach(i, j) = (i == j || g.hasEdge(i, j)) ? 1 : 0;
    for (unsigned s = 0; s < vlsi::logCeilAtLeast1(n); ++s)
        reach = cannon(mesh, reach, reach, /*boolean=*/true);

    // Min-label pass: one systolic column sweep.
    std::vector<std::size_t> labels(n);
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t lab = i;
        for (std::size_t j = 0; j < n; ++j)
            if (reach(i, j))
                lab = std::min(lab, j);
        labels[i] = lab;
    }
    mesh.chargeRoute(n);

    MeshCcResult result;
    result.labels = graph::canonicalizeLabels(labels);
    std::vector<std::size_t> distinct = result.labels;
    std::sort(distinct.begin(), distinct.end());
    result.componentCount = static_cast<std::size_t>(
        std::unique(distinct.begin(), distinct.end()) - distinct.begin());
    result.time = mesh.now() - start;
    return result;
}

} // namespace ot::baselines

#include "baselines/ccc.hh"

#include <algorithm>
#include <cassert>

#include "otn/registers.hh" // kNull
#include "vlsi/bitmath.hh"

namespace ot::baselines {

using otn::kNull;

CccMachine::CccMachine(std::size_t elements, const CostModel &cost)
    : _elements(vlsi::nextPow2(elements ? elements : 2)),
      _dims(vlsi::ilog2Ceil(_elements)),
      _cost(cost),
      _layout(_elements, cost.word().bits())
{
}

ModelTime
CccMachine::cubeStepCost() const
{
    return _cost.edgeDelay(_layout.cubeLinkLength()) + 1;
}

ModelTime
CccMachine::cycleStepCost() const
{
    return _cost.edgeDelay(_layout.cycleLinkLength()) + 1;
}

CccSortResult
cccSort(CccMachine &ccc, const std::vector<std::uint64_t> &values)
{
    const std::size_t n = ccc.elements();
    const unsigned m = ccc.dims();
    assert(values.size() <= n);

    ModelTime start = ccc.now();
    sim::ScopedPhase phase(ccc.acct(), "ccc-sort");

    std::vector<std::uint64_t> a(n, kNull);
    std::copy(values.begin(), values.end(), a.begin());

    CccSortResult result;

    for (std::size_t size = 2; size <= n; size <<= 1) {
        // One DESCEND pass: dimensions log(size)-1 down to 0.  The
        // cycle first rotates the highest needed dimension into place
        // (up to m cycle steps, pipelined), then performs one cube
        // step per dimension.
        unsigned s = vlsi::ilog2Ceil(size);
        for (unsigned r = 0; r < m - s + 1; ++r) {
            ccc.charge(ccc.cycleStepCost());
            ++result.steps;
        }
        for (std::size_t d = size / 2; d >= 1; d >>= 1) {
            for (std::size_t l = 0; l < n; ++l) {
                std::size_t p = l ^ d;
                if (p <= l)
                    continue;
                bool ascending = (l & size) == 0;
                bool out_of_order = ascending ? (a[l] > a[p])
                                              : (a[l] < a[p]);
                if (out_of_order)
                    std::swap(a[l], a[p]);
            }
            ccc.charge(ccc.cubeStepCost());
            ++result.steps;
        }
    }
    // Final word drain.
    ccc.charge(ccc.cost().wordSeparation());

    result.sorted.assign(a.begin(),
                         a.begin() + static_cast<long>(values.size()));
    result.time = ccc.now() - start;
    return result;
}

CccSortResult
cccSort(const std::vector<std::uint64_t> &values, const CostModel &cost)
{
    CccMachine ccc(values.size(), cost);
    return cccSort(ccc, values);
}

} // namespace ot::baselines

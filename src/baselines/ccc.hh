/**
 * @file
 * The cube-connected cycles baseline — Preparata & Vuillemin [23].
 *
 * The CCC replaces each node of a log(N)-dimensional hypercube with a
 * cycle of log N processors, one per dimension, so that cube edges of
 * every dimension are available somewhere on each cycle.  Batcher's
 * bitonic sort maps onto it as a sequence of DESCEND passes: a merge
 * phase over distances 2^(s-1) ... 2^0 costs O(s + log N) machine
 * steps (the cycle rotations pipeline with the dimension operations),
 * for O(log^2 N) steps overall.
 *
 * Cube wires are Theta(N / log N) long in the O(N^2 / log^2 N) layout,
 * so a machine step costs O(log N) under Thompson's model — total
 * O(log^3 N) (Table I, with the paper's Section VII-A remark that the
 * O(log^2 N) CCC sort "requires O(log^3 N) time using Thompson's
 * model") — and O(1) under constant delay (Table IV).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "layout/baseline_layouts.hh"
#include "sim/time_accountant.hh"
#include "vlsi/cost_model.hh"

namespace ot::baselines {

using vlsi::CostModel;
using vlsi::ModelTime;

/** An N-element cube-connected-cycles machine. */
class CccMachine
{
  public:
    CccMachine(std::size_t elements, const CostModel &cost);

    /** Elements sorted (power of two); one per emulated cube node. */
    std::size_t elements() const { return _elements; }
    unsigned dims() const { return _dims; }
    const CostModel &cost() const { return _cost; }
    const layout::CccLayout &chipLayout() const { return _layout; }
    sim::TimeAccountant &acct() { return _acct; }
    const sim::TimeAccountant &acct() const { return _acct; }
    ModelTime now() const { return _acct.now(); }

    /** One machine step using a (long) cube wire. */
    ModelTime cubeStepCost() const;

    /** One cycle-rotation step (short wires). */
    ModelTime cycleStepCost() const;

    void charge(ModelTime dt) { _acct.advance(dt); }

  private:
    std::size_t _elements;
    unsigned _dims;
    CostModel _cost;
    layout::CccLayout _layout;
    sim::TimeAccountant _acct;
};

struct CccSortResult
{
    std::vector<std::uint64_t> sorted;
    ModelTime time = 0;
    std::uint64_t steps = 0;
};

/** Bitonic sort on the CCC (values padded to a power of two). */
CccSortResult cccSort(CccMachine &ccc,
                      const std::vector<std::uint64_t> &values);

CccSortResult cccSort(const std::vector<std::uint64_t> &values,
                      const CostModel &cost);

} // namespace ot::baselines

/**
 * @file
 * The hexagonal systolic array of Kung & Leiserson [15] — the paper's
 * Section I cites it alongside the mesh as the "low chip area but
 * large time" class, and Table II's mesh row rests on its
 * O(N^2)-area, O(N)-time matrix multiplication.
 *
 * The classic hex array pipes the three matrices A, B and C through a
 * rhombus of N^2 multiply-accumulate cells along three wavefronts 60
 * degrees apart; every cell performs c += a * b as the operands meet.
 * One result diagonal emerges per systolic beat, so a full N x N
 * product takes Theta(N) beats after a Theta(N) fill.  All wires are
 * nearest-neighbour, so like the mesh it is insensitive to the wire
 * delay model.
 *
 * The simulation keeps the cells' dataflow (skewed operand injection,
 * beat-by-beat propagation) and charges one multiply-accumulate plus
 * one hop per beat.
 */

#pragma once

#include <cstdint>

#include "layout/baseline_layouts.hh"
#include "linalg/matrix.hh"
#include "sim/stats.hh"
#include "sim/time_accountant.hh"
#include "vlsi/cost_model.hh"

namespace ot::baselines {

using vlsi::CostModel;
using vlsi::ModelTime;

/** An N x N hexagonal systolic array for N x N matrix products. */
class HexArray
{
  public:
    HexArray(std::size_t n, const CostModel &cost);

    std::size_t n() const { return _n; }
    const CostModel &cost() const { return _cost; }
    sim::TimeAccountant &acct() { return _acct; }
    const sim::TimeAccountant &acct() const { return _acct; }
    ModelTime now() const { return _acct.now(); }
    void charge(ModelTime dt) { _acct.advance(dt); }

    /** Chip area: N^2 cells of Theta(word) footprint. */
    std::uint64_t chipArea() const;

    /** One systolic beat: a hop on nearest-neighbour wires plus the
     *  multiply-accumulate. */
    ModelTime beatCost() const;

    /** C = A * B through the systolic pipe. */
    linalg::IntMatrix matMul(const linalg::IntMatrix &a,
                             const linalg::IntMatrix &b);

    /** Boolean (AND/OR) product. */
    linalg::BoolMatrix boolMatMul(const linalg::BoolMatrix &a,
                                  const linalg::BoolMatrix &b);

    /** Beats executed by the last product (for the benches). */
    std::uint64_t lastBeats() const { return _lastBeats; }

  private:
    std::size_t _n;
    CostModel _cost;
    layout::MeshLayout _layout; // hex cells on a grid: same metrics class
    sim::TimeAccountant _acct;
    sim::StatSet _stats;
    std::uint64_t _lastBeats = 0;
};

} // namespace ot::baselines

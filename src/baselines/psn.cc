#include "baselines/psn.hh"

#include <algorithm>
#include <cassert>

#include "otn/registers.hh" // kNull
#include "vlsi/bitmath.hh"

namespace ot::baselines {

using otn::kNull;

PsnMachine::PsnMachine(std::size_t nodes, const CostModel &cost)
    : _nodes(vlsi::nextPow2(nodes ? nodes : 2)),
      _bits(vlsi::ilog2Ceil(_nodes)),
      _cost(cost),
      _layout(_nodes, cost.word().bits())
{
}

ModelTime
PsnMachine::shuffleStepCost() const
{
    // Bit-streamed across the worst shuffle wire: successive machine
    // steps overlap bit-serially, so a step's marginal cost is the
    // wire's first-bit latency plus one bit interval.
    return _cost.edgeDelay(_layout.shuffleLinkLength()) + 1;
}

ModelTime
PsnMachine::exchangeStepCost() const
{
    return _cost.edgeDelay(_layout.exchangeLinkLength()) + 1;
}

PsnSortResult
psnSort(PsnMachine &psn, const std::vector<std::uint64_t> &values)
{
    const std::size_t n = psn.nodes();
    const unsigned m = psn.addressBits();
    assert(values.size() <= n);

    ModelTime start = psn.now();
    sim::ScopedPhase phase(psn.acct(), "psn-sort");

    std::vector<std::uint64_t> a(n, kNull);
    std::copy(values.begin(), values.end(), a.begin());

    PsnSortResult result;

    // r = number of shuffles performed so far, mod m.  Logical pair
    // (x, x ^ 2^j) are exchange neighbours when r = (m - j) mod m.
    unsigned r = 0;
    auto shuffle_to = [&](unsigned target) {
        unsigned steps = (target + m - r) % m;
        for (unsigned s = 0; s < steps; ++s) {
            psn.charge(psn.shuffleStepCost());
            ++result.steps;
        }
        r = target;
    };

    for (std::size_t size = 2; size <= n; size <<= 1) {
        for (std::size_t d = size / 2; d >= 1; d >>= 1) {
            unsigned j = vlsi::ilog2Floor(d);
            shuffle_to((m - j) % m);
            for (std::size_t l = 0; l < n; ++l) {
                std::size_t p = l ^ d;
                if (p <= l)
                    continue;
                bool ascending = (l & size) == 0;
                bool out_of_order = ascending ? (a[l] > a[p])
                                              : (a[l] < a[p]);
                if (out_of_order)
                    std::swap(a[l], a[p]);
            }
            // MSB-first comparison streams with the bits, so the
            // marginal cost of the compare-exchange is one step, not a
            // full word time (the drain is charged once at the end).
            psn.charge(psn.exchangeStepCost());
            ++result.steps;
        }
    }
    // Unshuffle back to the identity placement and drain the words.
    shuffle_to(0);
    psn.charge(psn.cost().wordSeparation());

    result.sorted.assign(a.begin(),
                         a.begin() + static_cast<long>(values.size()));
    result.time = psn.now() - start;
    return result;
}

PsnSortResult
psnSort(const std::vector<std::uint64_t> &values, const CostModel &cost)
{
    PsnMachine psn(values.size(), cost);
    return psnSort(psn, values);
}

} // namespace ot::baselines

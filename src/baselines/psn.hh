/**
 * @file
 * The perfect shuffle network (shuffle-exchange) baseline — Stone [25].
 *
 * N = 2^m processors; processor x connects to its shuffle successor
 * rotl(x) and to its exchange partner x ^ 1.  Stone's bitonic sort
 * realises each Batcher compare-exchange at distance 2^j by shuffling
 * until bit j occupies the LSB (so the partners become exchange
 * neighbours), then exchanging: O(log^2 N) machine steps.
 *
 * Per machine step the word streams over the longest shuffle wire —
 * Theta(N / log N) in the Kleitman et al. layout [14] — so a step
 * costs O(log N) under Thompson's model (total O(log^3 N), Table I)
 * but O(1) under the constant-delay model (total O(log^2 N),
 * Table IV).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "layout/baseline_layouts.hh"
#include "sim/stats.hh"
#include "sim/time_accountant.hh"
#include "vlsi/cost_model.hh"

namespace ot::baselines {

using vlsi::CostModel;
using vlsi::ModelTime;

/** An N-node shuffle-exchange machine. */
class PsnMachine
{
  public:
    PsnMachine(std::size_t nodes, const CostModel &cost);

    std::size_t nodes() const { return _nodes; }
    unsigned addressBits() const { return _bits; }
    const CostModel &cost() const { return _cost; }
    const layout::ShuffleExchangeLayout &chipLayout() const
    {
        return _layout;
    }
    sim::TimeAccountant &acct() { return _acct; }
    const sim::TimeAccountant &acct() const { return _acct; }
    ModelTime now() const { return _acct.now(); }

    /** One shuffle step: word streamed across the shuffle wire. */
    ModelTime shuffleStepCost() const;

    /** One exchange + compare step: short wire plus the comparator. */
    ModelTime exchangeStepCost() const;

    void charge(ModelTime dt) { _acct.advance(dt); }

  private:
    std::size_t _nodes;
    unsigned _bits;
    CostModel _cost;
    layout::ShuffleExchangeLayout _layout;
    sim::TimeAccountant _acct;
};

struct PsnSortResult
{
    std::vector<std::uint64_t> sorted;
    ModelTime time = 0;
    /** Machine steps executed (shuffles + exchanges). */
    std::uint64_t steps = 0;
};

/** Stone's bitonic sort (values.size() padded to the machine size). */
PsnSortResult psnSort(PsnMachine &psn,
                      const std::vector<std::uint64_t> &values);

PsnSortResult psnSort(const std::vector<std::uint64_t> &values,
                      const CostModel &cost);

} // namespace ot::baselines

#include "baselines/tree_machine.hh"

#include <algorithm>
#include <cassert>

#include "otn/registers.hh" // kNull
#include "vlsi/bitmath.hh"

namespace ot::baselines {

using otn::kNull;

TreeMachine::TreeMachine(std::size_t leaves, const CostModel &cost)
    : _leaves(vlsi::nextPow2(leaves ? leaves : 1)),
      _cost(cost),
      _tree(_leaves, cost.word().bits() + 2),
      _data(_leaves, kNull)
{
}

std::uint64_t
TreeMachine::chipArea() const
{
    // Leaves in a row, pitch Theta(log N), tree in the channel above:
    // Theta(N log N) area (height Theta(log N)).
    std::uint64_t width = _leaves * _tree.pitch();
    std::uint64_t height =
        _tree.pitch() + vlsi::logCeilAtLeast1(_leaves);
    return width * height;
}

ModelTime
TreeMachine::traversal() const
{
    return _cost.wordAlongPath(_tree.pathEdges());
}

ModelTime
TreeMachine::reduceCost() const
{
    return _cost.reducePath(_tree.pathEdges());
}

ModelTime
TreeMachine::broadcast(std::uint64_t value)
{
    for (auto &d : _data)
        d = value;
    ++_stats.counter("tree.broadcast");
    ModelTime dt = traversal();
    _acct.advance(dt);
    return dt;
}

std::uint64_t
TreeMachine::minReduce(ModelTime *dt)
{
    std::uint64_t best = kNull;
    for (auto d : _data)
        best = std::min(best, d);
    ++_stats.counter("tree.minReduce");
    ModelTime cost = reduceCost();
    _acct.advance(cost);
    if (dt)
        *dt = cost;
    return best;
}

std::uint64_t
TreeMachine::sumReduce(ModelTime *dt)
{
    std::uint64_t total = 0;
    for (auto d : _data)
        if (d != kNull)
            total += d;
    ++_stats.counter("tree.sumReduce");
    ModelTime cost = reduceCost();
    _acct.advance(cost);
    if (dt)
        *dt = cost;
    return total;
}

std::vector<std::uint64_t>
TreeMachine::extractMinSort(const std::vector<std::uint64_t> &values)
{
    assert(values.size() <= _leaves);
    std::fill(_data.begin(), _data.end(), kNull);
    std::copy(values.begin(), values.end(), _data.begin());
    // Input load: N words through the root, pipelined.
    _acct.advance(CostModel::pipelineTotal(traversal(), _leaves,
                                           _cost.wordSeparation()));

    std::vector<std::uint64_t> out;
    out.reserve(values.size());
    for (std::size_t round = 0; round < values.size(); ++round) {
        std::uint64_t m = minReduce();
        out.push_back(m);
        // Disable exactly one instance of the minimum (a root-to-leaf
        // acknowledge selects the leftmost match).
        _acct.advance(traversal());
        for (auto &d : _data) {
            if (d == m) {
                d = kNull;
                break;
            }
        }
    }
    return out;
}

} // namespace ot::baselines

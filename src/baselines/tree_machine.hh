/**
 * @file
 * The single-tree machine [2], [3], [7] — the structure the OTN
 * generalizes ("the OTN is a generalization of the tree network which
 * has been studied extensively", Section II-A).
 *
 * One complete binary tree over N leaf processors.  Broadcasts and
 * semigroup reductions are as fast as on the OTN's trees, but anything
 * that must move Theta(N) distinct words between leaves serializes at
 * the root: the bisection width is 1.  Sorting by repeated
 * extract-min therefore takes Theta(N) traversals — the bottleneck
 * that motivates giving every row AND column its own tree.
 *
 * Used by the ablation bench (bench_ablation_tree) to show the gap.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "layout/tree_embedding.hh"
#include "sim/stats.hh"
#include "sim/time_accountant.hh"
#include "vlsi/cost_model.hh"

namespace ot::baselines {

using vlsi::CostModel;
using vlsi::ModelTime;

/** A machine of one complete binary tree over N leaves. */
class TreeMachine
{
  public:
    TreeMachine(std::size_t leaves, const CostModel &cost);

    std::size_t leaves() const { return _leaves; }
    const CostModel &cost() const { return _cost; }
    sim::TimeAccountant &acct() { return _acct; }
    const sim::TimeAccountant &acct() const { return _acct; }
    ModelTime now() const { return _acct.now(); }
    void charge(ModelTime dt) { _acct.advance(dt); }

    /** Leaf data register. */
    std::uint64_t &leaf(std::size_t k) { return _data[k]; }
    std::uint64_t leaf(std::size_t k) const { return _data[k]; }

    /** Chip area: Theta(N log N) (leaves of Theta(log N) area in a
     *  row, tree above). */
    std::uint64_t chipArea() const;

    /** Per-word cost of one root<->leaf traversal (for the topo
     *  adapter's primitive hooks and the benches). */
    ModelTime traversalCost() const { return traversal(); }

    /** Per-word cost of one combining (MIN/SUM) traversal. */
    ModelTime combineCost() const { return reduceCost(); }

    /** Broadcast one word from the root to every leaf. */
    ModelTime broadcast(std::uint64_t value);

    /** Minimum over all leaves, delivered at the root. */
    std::uint64_t minReduce(ModelTime *dt = nullptr);

    /** Sum over all leaves, delivered at the root. */
    std::uint64_t sumReduce(ModelTime *dt = nullptr);

    /**
     * Sort by repeated extract-min: N rounds of MIN-reduce, emit,
     * disable.  Theta(N log^2 N) under Thompson's model — the root
     * bottleneck on display.
     */
    std::vector<std::uint64_t> extractMinSort(
        const std::vector<std::uint64_t> &values);

  private:
    ModelTime traversal() const;
    ModelTime reduceCost() const;

    std::size_t _leaves;
    CostModel _cost;
    layout::TreeEmbedding _tree;
    sim::TimeAccountant _acct;
    sim::StatSet _stats;
    std::vector<std::uint64_t> _data;
};

} // namespace ot::baselines

/**
 * @file
 * Basic geometric types for chip layouts.
 *
 * All coordinates are in lambda (feature-size) units on a Manhattan
 * grid, per Thompson's model: unit-width wires, right-angle crossings
 * allowed, one bit of logic/storage per unit area.
 */

#pragma once

#include <cstdint>

#include "vlsi/delay.hh"

namespace ot::layout {

using vlsi::WireLength;

/** A point on the lambda grid. */
struct Point
{
    std::int64_t x = 0;
    std::int64_t y = 0;

    bool operator==(const Point &other) const = default;
};

/** Manhattan distance — the length of a rectilinear wire between a, b. */
inline WireLength
manhattan(const Point &a, const Point &b)
{
    auto dx = a.x > b.x ? a.x - b.x : b.x - a.x;
    auto dy = a.y > b.y ? a.y - b.y : b.y - a.y;
    return static_cast<WireLength>(dx + dy);
}

/** Summary metrics of one chip layout. */
struct LayoutMetrics
{
    /** Bounding box width/height in lambda units. */
    std::uint64_t width = 0;
    std::uint64_t height = 0;
    /** Number of processors placed (base + internal). */
    std::uint64_t processors = 0;
    /** Number of wires routed. */
    std::uint64_t wires = 0;
    /** Sum of all wire lengths. */
    std::uint64_t totalWireLength = 0;
    /** Longest single wire. */
    WireLength longestWire = 0;

    /** Chip area A = width * height, the quantity in the paper's tables. */
    std::uint64_t area() const { return width * height; }
};

} // namespace ot::layout

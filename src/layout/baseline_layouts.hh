/**
 * @file
 * Layouts of the comparison networks: mesh, perfect-shuffle network
 * (PSN) and cube-connected cycles (CCC).
 *
 * The mesh layout is generated concretely (it is a trivial grid).  The
 * PSN and CCC layouts are *analytic*: the paper itself takes their
 * areas from the literature (Kleitman et al. [14] for the shuffle-
 * exchange graph, Preparata & Vuillemin [23] for the CCC) rather than
 * constructing them, and both constructions are far outside this
 * paper's scope.  What the simulators need from a layout is (a) the
 * chip area and (b) the wire lengths on communication paths, and both
 * are stated explicitly in the paper:
 *
 *  - PSN and CCC on N nodes: area Theta(N^2 / log^2 N); "the longest
 *    wires in the VLSI layout of the CCC are O(N/log N) units long and
 *    hence have an O(log N) delay associated with them" (Section I-A).
 *  - Mesh: N processors with only short (pitch-length) wires; the mesh
 *    "has only short wires and is therefore unaffected by changes in
 *    communication time" (Section VII-D).
 */

#pragma once

#include <cstddef>

#include "layout/geometry.hh"
#include "layout/otn_layout.hh" // LayoutParams

namespace ot::layout {

/**
 * Concrete layout of a sqrt(P) x sqrt(P) mesh of P processors.
 *
 * Each processing element stores O(1) words and a word-parallel
 * comparator, so its footprint is Theta(word_bits) on a side (area
 * Theta(log^2 N)); the total is Theta(P log^2 N) — e.g. the
 * N log^2 N mesh sorter of Table I.  Links connect 4-neighbours and
 * have pitch length.
 */
class MeshLayout
{
  public:
    MeshLayout(std::size_t processors, unsigned word_bits,
               LayoutParams params = {});

    /** Number of processors per side (power of two). */
    std::size_t side() const { return _side; }

    /** Total processor count side()^2 (>= requested count). */
    std::size_t processors() const { return _side * _side; }

    /** Centre-to-centre distance between neighbours. */
    std::uint64_t pitch() const { return _pitch; }

    /** Length of a neighbour-to-neighbour link. */
    WireLength linkLength() const { return _pitch; }

    LayoutMetrics metrics() const;

  private:
    std::size_t _side;
    std::uint64_t _pitch;
};

/**
 * Analytic layout of an N-node shuffle-exchange (perfect shuffle)
 * network, after Kleitman, Leighton, Lepley & Miller [14].
 */
class ShuffleExchangeLayout
{
  public:
    ShuffleExchangeLayout(std::size_t nodes, unsigned word_bits);

    std::size_t nodes() const { return _nodes; }

    /** Longest wire: Theta(N / log N). */
    WireLength longestWire() const;

    /** Length of the wire used by a shuffle hop (worst case). */
    WireLength shuffleLinkLength() const { return longestWire(); }

    /** Length of an exchange link (adjacent codes): short. */
    WireLength exchangeLinkLength() const { return _wordBits; }

    LayoutMetrics metrics() const;

  private:
    std::size_t _nodes;
    unsigned _wordBits;
};

/**
 * Analytic layout of a cube-connected cycles network on N processors
 * (N = k * 2^k), after Preparata & Vuillemin [23].
 */
class CccLayout
{
  public:
    CccLayout(std::size_t nodes, unsigned word_bits);

    std::size_t nodes() const { return _nodes; }

    /** Cube dimension k with k * 2^k >= requested nodes. */
    unsigned cubeDim() const { return _k; }

    /** Longest (cube) wire: Theta(N / log N). */
    WireLength cubeLinkLength() const;

    /** Cycle links are short. */
    WireLength cycleLinkLength() const { return _wordBits; }

    LayoutMetrics metrics() const;

  private:
    std::size_t _nodes;
    unsigned _wordBits;
    unsigned _k;
};

} // namespace ot::layout

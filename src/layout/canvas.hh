/**
 * @file
 * Character canvas and tree-drawing helper shared by the ASCII layout
 * renderers (Figs. 1-3 reproductions).
 */

#pragma once

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

namespace ot::layout {

/** A fixed-size character grid with wire-drawing helpers. */
class Canvas
{
  public:
    Canvas(std::size_t rows, std::size_t cols)
        : _cols(cols), _grid(rows, std::string(cols, ' '))
    {}

    void
    put(std::size_t r, std::size_t c, char ch)
    {
        if (r < _grid.size() && c < _cols)
            _grid[r][c] = ch;
    }

    /** Horizontal wire; only fills blank cells so nodes stay visible. */
    void
    hline(std::size_t r, std::size_t c0, std::size_t c1)
    {
        if (r >= _grid.size())
            return;
        for (std::size_t c = std::min(c0, c1);
             c <= std::max(c0, c1) && c < _cols; ++c)
            if (_grid[r][c] == ' ')
                _grid[r][c] = '-';
    }

    /** Vertical wire; only fills blank cells so nodes stay visible. */
    void
    vline(std::size_t c, std::size_t r0, std::size_t r1)
    {
        if (c >= _cols)
            return;
        for (std::size_t r = std::min(r0, r1);
             r <= std::max(r0, r1) && r < _grid.size(); ++r)
            if (_grid[r][c] == ' ')
                _grid[r][c] = '|';
    }

    /** Render, trimming trailing blanks on each line. */
    std::string
    str() const
    {
        std::string out;
        for (const auto &row : _grid) {
            auto end = row.find_last_not_of(' ');
            out += row.substr(0, end == std::string::npos ? 0 : end + 1);
            out += '\n';
        }
        return out;
    }

  private:
    std::size_t _cols;
    std::vector<std::string> _grid;
};

/**
 * Recursively place the internal nodes of a complete binary tree over
 * leaf slots [lo, hi).  `leaf_pos(k)` maps a leaf index to its canvas
 * coordinate along the tree's axis; `put_node(level, centre, l, r)` is
 * called for every internal node with the coordinates of its children.
 * Returns the axis coordinate of the subtree root.
 */
template <typename PutNode, typename LeafPos>
std::size_t
drawTreeSpan(std::size_t lo, std::size_t hi, unsigned level,
             const PutNode &put_node, const LeafPos &leaf_pos)
{
    if (hi - lo == 1)
        return leaf_pos(lo);
    std::size_t mid = lo + (hi - lo) / 2;
    std::size_t lpos = drawTreeSpan(lo, mid, level + 1, put_node, leaf_pos);
    std::size_t rpos = drawTreeSpan(mid, hi, level + 1, put_node, leaf_pos);
    std::size_t centre = (lpos + rpos) / 2;
    put_node(level, centre, lpos, rpos);
    return centre;
}

} // namespace ot::layout

#include "layout/svg.hh"

#include <cstdio>
#include <functional>

namespace ot::layout {

namespace {

/** Minimal SVG document builder. */
class SvgDoc
{
  public:
    SvgDoc(double width, double height)
    {
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "<svg xmlns=\"http://www.w3.org/2000/svg\" "
                      "width=\"%.0f\" height=\"%.0f\" "
                      "viewBox=\"0 0 %.0f %.0f\">\n",
                      width, height, width, height);
        _body = buf;
        _body += "<rect width=\"100%\" height=\"100%\" "
                 "fill=\"white\"/>\n";
    }

    void
    line(double x1, double y1, double x2, double y2, const char *stroke,
         double width = 1.0)
    {
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" "
                      "y2=\"%.1f\" stroke=\"%s\" "
                      "stroke-width=\"%.1f\"/>\n",
                      x1, y1, x2, y2, stroke, width);
        _body += buf;
    }

    void
    rect(double x, double y, double w, double h, const char *fill,
         const char *stroke = "black", double rx = 0.0)
    {
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" "
                      "height=\"%.1f\" rx=\"%.1f\" fill=\"%s\" "
                      "stroke=\"%s\"/>\n",
                      x, y, w, h, rx, fill, stroke);
        _body += buf;
    }

    void
    circle(double cx, double cy, double r, const char *fill)
    {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"%.1f\" "
                      "fill=\"%s\" stroke=\"black\"/>\n",
                      cx, cy, r, fill);
        _body += buf;
    }

    void
    text(double x, double y, const std::string &s, double size = 10)
    {
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "<text x=\"%.1f\" y=\"%.1f\" "
                      "font-family=\"monospace\" "
                      "font-size=\"%.0f\">%s</text>\n",
                      x, y, size, s.c_str());
        _body += buf;
    }

    std::string
    str() const
    {
        return _body + "</svg>\n";
    }

  private:
    std::string _body;
};

/**
 * Draw one channel-embedded tree over `count` leaves.
 *
 * The tree's *axis* is one dimension (x for row trees, y for column
 * trees): `leaf_axis(k)` gives leaf k's coordinate along it,
 * `leaf_xy(k)` its full anchor point, and `node_xy(level, centre)`
 * places the internal node of a span whose axis-centre is `centre`.
 */
void
drawTree(SvgDoc &svg, std::size_t count,
         const std::function<double(std::size_t)> &leaf_axis,
         const std::function<std::pair<double, double>(std::size_t)>
             &leaf_xy,
         const std::function<std::pair<double, double>(unsigned, double)>
             &node_xy,
         const char *color)
{
    struct Placed
    {
        double axis;
        double x, y;
    };
    std::function<Placed(std::size_t, std::size_t, unsigned)> draw =
        [&](std::size_t lo, std::size_t hi, unsigned level) -> Placed {
        if (hi - lo == 1) {
            auto [x, y] = leaf_xy(lo);
            return {leaf_axis(lo), x, y};
        }
        std::size_t mid = lo + (hi - lo) / 2;
        Placed left = draw(lo, mid, level + 1);
        Placed right = draw(mid, hi, level + 1);
        double centre = (left.axis + right.axis) / 2;
        auto [nx, ny] = node_xy(level, centre);
        svg.line(left.x, left.y, nx, ny, color);
        svg.line(right.x, right.y, nx, ny, color);
        svg.circle(nx, ny, 2.2, color);
        return {centre, nx, ny};
    };
    if (count >= 2)
        draw(0, count, 0);
}

} // namespace

std::string
renderOtnSvg(const OtnLayout &layout)
{
    const std::size_t n = layout.n();
    const double cell = 56.0;  // screen pitch per BP
    const double margin = 30.0;
    const double side = margin * 2 + n * cell;
    SvgDoc svg(side, side);

    auto bp_x = [&](std::size_t j) { return margin + j * cell + 8; };
    auto bp_y = [&](std::size_t i) { return margin + i * cell + 8; };

    // Base processors.
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            svg.rect(bp_x(j) - 8, bp_y(i) - 8, 16, 16, "#e8f0fe");

    const unsigned levels = vlsi::logCeilAtLeast1(n);

    // Row trees in the channel below each base row (blue).
    for (std::size_t i = 0; i < n; ++i) {
        drawTree(
            svg, n, [&](std::size_t j) { return bp_x(j); },
            [&](std::size_t j) {
                return std::make_pair(bp_x(j), bp_y(i) + 8);
            },
            [&](unsigned level, double centre) {
                double y = bp_y(i) + 12 +
                           (levels - level) * (cell / 2.0 - 14) /
                               std::max(1u, levels);
                return std::make_pair(centre, y);
            },
            "#1a73e8");
    }

    // Column trees in the channel right of each base column (red).
    for (std::size_t j = 0; j < n; ++j) {
        drawTree(
            svg, n, [&](std::size_t i) { return bp_y(i); },
            [&](std::size_t i) {
                return std::make_pair(bp_x(j) + 8, bp_y(i));
            },
            [&](unsigned level, double centre) {
                double x = bp_x(j) + 12 +
                           (levels - level) * (cell / 2.0 - 14) /
                               std::max(1u, levels);
                return std::make_pair(x, centre);
            },
            "#d93025");
    }

    svg.text(margin, side - 8,
             "(N x N)-OTN layout (Fig. 1): squares = BPs, dots = IPs; "
             "blue = row trees, red = column trees");
    return svg.str();
}

std::string
renderOtcSvg(const OtcLayout &layout)
{
    const std::size_t k = layout.cyclesPerSide();
    const unsigned l = layout.cycleLength();
    const double cell = 64.0;
    const double margin = 30.0;
    const double side = margin * 2 + k * cell;
    SvgDoc svg(side, side + 40);

    auto cx = [&](std::size_t j) { return margin + j * cell + 12; };
    auto cy = [&](std::size_t i) { return margin + i * cell + 12; };

    // Cycles as rounded rectangles with their BP stack.
    for (std::size_t i = 0; i < k; ++i) {
        for (std::size_t j = 0; j < k; ++j) {
            svg.rect(cx(j) - 10, cy(i) - 10, 24,
                     6.0 * std::min<unsigned>(l, 4) + 4, "#e6f4ea",
                     "black", 4.0);
            for (unsigned q = 0; q < std::min<unsigned>(l, 4); ++q)
                svg.rect(cx(j) - 7, cy(i) - 7 + 6.0 * q, 18, 4,
                         "#34a853", "none");
        }
    }

    const unsigned levels = vlsi::logCeilAtLeast1(k);

    // Row and column trees over the cycle grid.
    for (std::size_t i = 0; i < k; ++i) {
        drawTree(
            svg, k, [&](std::size_t c) { return cx(c) + 2.0; },
            [&](std::size_t c) {
                return std::make_pair(cx(c) + 2.0,
                                      cy(i) + 6.0 * std::min<unsigned>(
                                                        l, 4) -
                                          4);
            },
            [&](unsigned level, double centre) {
                double y = cy(i) + 6.0 * std::min<unsigned>(l, 4) + 4 +
                           (levels - level) * 6.0;
                return std::make_pair(centre, y);
            },
            "#1a73e8");
    }
    for (std::size_t j = 0; j < k; ++j) {
        drawTree(
            svg, k, [&](std::size_t c) { return cy(c) + 2.0; },
            [&](std::size_t c) {
                return std::make_pair(cx(j) + 14.0, cy(c) + 2.0);
            },
            [&](unsigned level, double centre) {
                double x = cx(j) + 18.0 + (levels - level) * 5.0;
                return std::make_pair(x, centre);
            },
            "#d93025");
    }

    char caption[160];
    std::snprintf(caption, sizeof(caption),
                  "(%zu x %zu)-OTC, cycles of %u BPs (Figs. 2-3)", k, k,
                  l);
    svg.text(margin, side + 20, caption);
    return svg.str();
}

} // namespace ot::layout

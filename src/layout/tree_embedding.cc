#include "layout/tree_embedding.hh"

#include <cassert>

namespace ot::layout {

TreeEmbedding::TreeEmbedding(std::uint64_t leaves, std::uint64_t pitch)
    : _leaves(vlsi::nextPow2(leaves ? leaves : 1)),
      _pitch(pitch ? pitch : 1),
      _height(vlsi::ilog2Ceil(_leaves))
{
    _pathEdges.reserve(_height);
    for (unsigned h = _height; h >= 1; --h)
        _pathEdges.push_back(edgeLength(h));
}

WireLength
TreeEmbedding::edgeLength(unsigned h) const
{
    assert(h >= 1 && h <= _height);
    // Horizontal run between the centre of a 2^h-leaf span and the
    // centre of either 2^(h-1)-leaf half-span is 2^(h-2) * pitch
    // (pitch/2 for h == 1), plus one vertical channel track.
    std::uint64_t horizontal;
    if (h == 1)
        horizontal = _pitch / 2;
    else
        horizontal = (std::uint64_t{1} << (h - 2)) * _pitch;
    return horizontal + 1;
}

std::uint64_t
TreeEmbedding::totalWireLength() const
{
    // 2^(H-h+1) edges at height h... there are 2^(H-h) nodes at height
    // h, each with two child edges of length edgeLength(h).
    std::uint64_t total = 0;
    for (unsigned h = 1; h <= _height; ++h) {
        std::uint64_t nodes = _leaves >> h;
        total += 2 * nodes * edgeLength(h);
    }
    return total;
}

WireLength
TreeEmbedding::longestEdge() const
{
    return _pathEdges.empty() ? 0 : _pathEdges.front();
}

} // namespace ot::layout

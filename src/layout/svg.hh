/**
 * @file
 * SVG rendering of the chip layouts — publication-grade versions of
 * the paper's Figs. 1-3 generated from the same geometry the cost
 * model uses.
 *
 * Base processors are squares, internal (tree) processors are filled
 * circles, row-tree wiring is drawn in the channel below each base
 * row and column-tree wiring in the channel right of each base
 * column; OTC cycles are rounded rectangles with their BP stack and
 * wrap wire.
 */

#pragma once

#include <string>

#include "layout/otc_layout.hh"
#include "layout/otn_layout.hh"

namespace ot::layout {

/** Fig. 1: the (N x N)-OTN.  Sensible for N <= 16. */
std::string renderOtnSvg(const OtnLayout &layout);

/** Figs. 2-3: one cycle (inset) and the (K x K)-OTC. */
std::string renderOtcSvg(const OtcLayout &layout);

} // namespace ot::layout

/**
 * @file
 * Layout of the (N x N) orthogonal trees network — Fig. 1 of the paper.
 *
 * The base is an N x N grid of base processors (BPs); every row and
 * every column of BPs forms the leaves of a complete binary tree whose
 * internal processors (IPs) live in the channels between adjacent base
 * rows/columns.  Adjacent rows (columns) are Theta(log N) apart: the
 * channel holds one track per tree level plus the BP footprint (each
 * processor occupies O(log N) area, Section II-A).
 *
 * The resulting chip is Theta(N log N) on a side, i.e. area
 * Theta(N^2 log^2 N) — optimal by Leighton's lower bound [16].
 */

#pragma once

#include <cstddef>
#include <string>

#include "layout/geometry.hh"
#include "layout/tree_embedding.hh"

namespace ot::layout {

/** Tunable constants of the layout (all Theta(1)). */
struct LayoutParams
{
    /** Constant part of a processor footprint side, lambda units. */
    unsigned baseCell = 2;
    /** Channel track width per tree level, lambda units. */
    unsigned track = 1;
};

/** Concrete layout geometry of an (N x N)-OTN. */
class OtnLayout
{
  public:
    /**
     * @param n         Side of the base (rounded up to a power of two).
     * @param word_bits Register width of each BP; a BP stores a few
     *                  words, so its footprint is Theta(word_bits).
     * @param params    Layout constants.
     */
    OtnLayout(std::size_t n, unsigned word_bits, LayoutParams params = {});

    /** Side of the base grid (power of two). */
    std::size_t n() const { return _n; }

    /** Distance between adjacent BPs in a row/column: Theta(log N). */
    std::uint64_t pitch() const { return _pitch; }

    /** Geometry of each row tree (column trees are identical). */
    const TreeEmbedding &tree() const { return _tree; }

    /** Area, wire and processor totals for the whole chip. */
    LayoutMetrics metrics() const;

    /**
     * Fig. 1-style ASCII rendering: BPs as 'O', IPs as '*'.  Intended
     * for small n (the paper draws the 4 x 4 instance).
     */
    std::string asciiArt() const;

  private:
    std::size_t _n;
    unsigned _wordBits;
    LayoutParams _params;
    std::uint64_t _pitch;
    TreeEmbedding _tree;
};

} // namespace ot::layout

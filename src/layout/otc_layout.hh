/**
 * @file
 * Layout of the orthogonal tree cycles — Figs. 2 and 3 of the paper.
 *
 * A (K x K)-OTC with cycle length L is a (K x K)-OTN in which every
 * base processor is replaced by a cycle of L BPs.  Each BP of a cycle
 * is an O(L) x O(1) rectangle laid out horizontally, so one cycle fits
 * in an O(L) x O(L) block (Fig. 2) and the separation between adjacent
 * cycle rows/columns stays O(L) — with L = log N and K = N / log N the
 * whole chip has side O(N) and area O(N^2) (Section V-A).
 *
 * For the Boolean matrix multiplication variant (Section VI-B) the
 * cycle length grows to log^2 N while each BP shrinks to O(1) x O(1),
 * so a cycle still fits in an O(log N) x O(log N) block.
 */

#pragma once

#include <cstddef>
#include <string>

#include "layout/geometry.hh"
#include "layout/otn_layout.hh"
#include "layout/tree_embedding.hh"

namespace ot::layout {

/** Concrete layout geometry of a (K x K)-OTC with length-L cycles. */
class OtcLayout
{
  public:
    /**
     * @param cycles_per_side  K, the number of cycles along one side
     *                         (rounded up to a power of two).
     * @param cycle_len        L, the number of BPs per cycle (>= 1).
     * @param word_bits        Register width of each BP.
     * @param compact_bps      Boolean-matmul variant: BPs are O(1)x O(1)
     *                         so a length-L cycle packs into a
     *                         sqrt(L) x sqrt(L)-ish block (Section VI-B).
     * @param params           Layout constants.
     */
    OtcLayout(std::size_t cycles_per_side, unsigned cycle_len,
              unsigned word_bits, bool compact_bps = false,
              LayoutParams params = {});

    std::size_t cyclesPerSide() const { return _k; }
    unsigned cycleLength() const { return _cycleLen; }

    /** Distance between corresponding points of adjacent cycles. */
    std::uint64_t pitch() const { return _pitch; }

    /** Geometry of each row/column tree (over K cycle leaves). */
    const TreeEmbedding &tree() const { return _tree; }

    /** Wire between neighbouring BPs within a cycle: O(1). */
    WireLength cycleLinkLength() const { return _params.baseCell; }

    /** The wrap-around wire closing a cycle: O(cycle side). */
    WireLength
    cycleWrapLength() const
    {
        return _cycleSide;
    }

    /** Side of the block occupied by one cycle. */
    std::uint64_t cycleSide() const { return _cycleSide; }

    /** Area, wire and processor totals for the whole chip. */
    LayoutMetrics metrics() const;

    /** Fig. 2-style rendering of a single cycle. */
    std::string cycleAsciiArt() const;

    /** Fig. 3-style rendering of the full (small) OTC. */
    std::string asciiArt() const;

  private:
    std::size_t _k;
    unsigned _cycleLen;
    unsigned _wordBits;
    bool _compactBps;
    LayoutParams _params;
    std::uint64_t _cycleSide;
    std::uint64_t _pitch;
    TreeEmbedding _tree;
};

} // namespace ot::layout

#include "layout/baseline_layouts.hh"

#include <algorithm>
#include <cmath>

#include "vlsi/bitmath.hh"

namespace ot::layout {

MeshLayout::MeshLayout(std::size_t processors, unsigned word_bits,
                       LayoutParams params)
{
    std::size_t want_side = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(processors ? processors
                                                           : 1))));
    _side = vlsi::nextPow2(want_side);
    _pitch = params.baseCell + std::max(1u, word_bits);
}

LayoutMetrics
MeshLayout::metrics() const
{
    LayoutMetrics m;
    std::uint64_t side_lambda = _side * _pitch;
    m.width = side_lambda;
    m.height = side_lambda;
    m.processors = std::uint64_t{_side} * _side;
    m.wires = 2 * std::uint64_t{_side} * (_side - 1);
    m.totalWireLength = m.wires * _pitch;
    m.longestWire = _pitch;
    return m;
}

ShuffleExchangeLayout::ShuffleExchangeLayout(std::size_t nodes,
                                             unsigned word_bits)
    : _nodes(vlsi::nextPow2(nodes ? nodes : 2)),
      _wordBits(std::max(1u, word_bits))
{
}

WireLength
ShuffleExchangeLayout::longestWire() const
{
    unsigned logn = vlsi::logCeilAtLeast1(_nodes);
    return std::max<WireLength>(1, _nodes / logn);
}

LayoutMetrics
ShuffleExchangeLayout::metrics() const
{
    // Kleitman et al. [14]: area Theta(N^2 / log^2 N).
    LayoutMetrics m;
    unsigned logn = vlsi::logCeilAtLeast1(_nodes);
    std::uint64_t side = std::max<std::uint64_t>(_wordBits, _nodes / logn);
    m.width = side;
    m.height = side;
    m.processors = _nodes;
    // Each node has shuffle-out, shuffle-in and exchange wires: ~2N.
    m.wires = 2 * std::uint64_t{_nodes};
    m.totalWireLength = m.wires * (longestWire() / 2 + 1);
    m.longestWire = longestWire();
    return m;
}

CccLayout::CccLayout(std::size_t nodes, unsigned word_bits)
    : _wordBits(std::max(1u, word_bits))
{
    // Smallest k with k * 2^k >= nodes.
    unsigned k = 1;
    while (std::uint64_t{k} * (std::uint64_t{1} << k) < nodes)
        ++k;
    _k = k;
    _nodes = std::size_t{k} * (std::size_t{1} << k);
}

WireLength
CccLayout::cubeLinkLength() const
{
    unsigned logn = vlsi::logCeilAtLeast1(_nodes);
    return std::max<WireLength>(1, _nodes / logn);
}

LayoutMetrics
CccLayout::metrics() const
{
    // Preparata & Vuillemin [23]: area Theta(N^2 / log^2 N).
    LayoutMetrics m;
    unsigned logn = vlsi::logCeilAtLeast1(_nodes);
    std::uint64_t side = std::max<std::uint64_t>(_wordBits, _nodes / logn);
    m.width = side;
    m.height = side;
    m.processors = _nodes;
    // Each node: one cycle link plus (for one node per cycle position)
    // a cube link: ~1.5N wires.
    m.wires = 3 * std::uint64_t{_nodes} / 2;
    m.totalWireLength = std::uint64_t{_nodes} * (cubeLinkLength() / 2 + 1);
    m.longestWire = cubeLinkLength();
    return m;
}

} // namespace ot::layout

/**
 * @file
 * Embedding of a complete binary tree over a line of equally spaced
 * leaves, as used by every row/column tree of the OTN and OTC.
 *
 * The paper's layout (Fig. 1) places the leaves of each row (column)
 * tree on the base grid, pitch P apart, and embeds the internal
 * processors in the O(log N)-wide channel between adjacent base rows
 * (columns).  The internal node covering a span of 2^h leaves sits
 * centred over that span, one channel track per tree level, so the
 * wire from a height-h node to its height-(h-1) child runs about
 * 2^(h-2) * P horizontally plus one track vertically.
 *
 * These lengths are exactly what drives the O(log^2 N) communication
 * cost under Thompson's model: the root-to-leaf first-bit latency is
 *   sum_h O(log(2^h * P)) = O(log^2 K + log K log P).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "layout/geometry.hh"

namespace ot::layout {

/** Geometry of one channel-embedded complete binary tree. */
class TreeEmbedding
{
  public:
    /**
     * @param leaves Number of leaves K (rounded up to a power of two
     *               internally; the paper assumes K a power of two).
     * @param pitch  Distance between adjacent leaves in lambda units.
     */
    TreeEmbedding(std::uint64_t leaves, std::uint64_t pitch);

    /** Number of leaves (power of two). */
    std::uint64_t leaves() const { return _leaves; }

    /** Tree height H = log2(leaves); the root is at height H. */
    unsigned height() const { return _height; }

    /** Leaf pitch in lambda units. */
    std::uint64_t pitch() const { return _pitch; }

    /**
     * Wire length of an edge between a node at height h and its child
     * at height h-1 (1 <= h <= height()).
     */
    WireLength edgeLength(unsigned h) const;

    /**
     * Edge lengths along a root-to-leaf path, root end first.  This is
     * the geometry handed to CostModel::wordAlongPath for ROOTTOLEAF /
     * LEAFTOROOT and friends.
     */
    const std::vector<WireLength> &pathEdges() const { return _pathEdges; }

    /** Total wire length of the whole tree (all 2K-2 edges). */
    std::uint64_t totalWireLength() const;

    /** The longest edge in the tree (the root's edges). */
    WireLength longestEdge() const;

    /** Number of internal (non-leaf) nodes: K - 1. */
    std::uint64_t internalNodes() const { return _leaves - 1; }

  private:
    std::uint64_t _leaves;
    std::uint64_t _pitch;
    unsigned _height;
    std::vector<WireLength> _pathEdges;
};

} // namespace ot::layout

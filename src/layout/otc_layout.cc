#include "layout/otc_layout.hh"

#include <cmath>

#include "layout/canvas.hh"
#include "vlsi/bitmath.hh"

namespace ot::layout {

namespace {

/** Side of the square block occupied by one cycle of `len` BPs. */
std::uint64_t
cycleBlockSide(unsigned len, unsigned word_bits, bool compact,
               const LayoutParams &params)
{
    if (compact) {
        // O(1) x O(1) BPs snaked into a near-square block: side
        // ceil(sqrt(len)) cells of baseCell lambda each.
        auto cells = static_cast<std::uint64_t>(
            std::ceil(std::sqrt(static_cast<double>(len))));
        return (cells ? cells : 1) * params.baseCell;
    }
    // Fig. 2: each BP is an O(word_bits) x O(1) rectangle; len of them
    // stacked vertically form an O(word_bits) x O(len) block.  With
    // len = Theta(word_bits) = Theta(log N) the block is square of side
    // Theta(log N).
    std::uint64_t w = params.baseCell + word_bits;
    std::uint64_t h = std::uint64_t{params.baseCell} * (len ? len : 1);
    return std::max(w, h);
}

} // namespace

OtcLayout::OtcLayout(std::size_t cycles_per_side, unsigned cycle_len,
                     unsigned word_bits, bool compact_bps,
                     LayoutParams params)
    : _k(vlsi::nextPow2(cycles_per_side ? cycles_per_side : 1)),
      _cycleLen(cycle_len ? cycle_len : 1),
      _wordBits(word_bits ? word_bits : 1),
      _compactBps(compact_bps),
      _params(params),
      _cycleSide(cycleBlockSide(_cycleLen, _wordBits, _compactBps, params)),
      // Cycle block plus one channel track per tree level.
      _pitch(_cycleSide +
             std::uint64_t{params.track} * vlsi::logCeilAtLeast1(_k)),
      _tree(_k, _pitch)
{
}

LayoutMetrics
OtcLayout::metrics() const
{
    LayoutMetrics m;
    std::uint64_t side = _k * _pitch;
    m.width = side;
    m.height = side;
    std::uint64_t cycles = std::uint64_t{_k} * _k;
    m.processors = cycles * _cycleLen + 2 * std::uint64_t{_k} * (_k - 1);
    // Per cycle: L links (including wrap); plus 2K trees of 2(K-1)
    // edges.
    m.wires = cycles * _cycleLen + 2 * std::uint64_t{_k} * 2 * (_k - 1);
    m.totalWireLength =
        cycles * ((_cycleLen - 1) * std::uint64_t{cycleLinkLength()} +
                  cycleWrapLength()) +
        2 * std::uint64_t{_k} * _tree.totalWireLength();
    m.longestWire = std::max<WireLength>(_tree.longestEdge(),
                                         cycleWrapLength());
    return m;
}

std::string
OtcLayout::cycleAsciiArt() const
{
    // Fig. 2: the BPs of one cycle, stacked with the wrap wire on the
    // right; BP(0) carries the tree taps ('T').
    const unsigned len = _cycleLen;
    Canvas canvas(len + 2, 16);
    for (unsigned q = 0; q < len; ++q) {
        canvas.put(q + 1, 2, '[');
        canvas.put(q + 1, 3, 'B');
        canvas.put(q + 1, 4, 'P');
        canvas.put(q + 1, 5, ']');
        if (q + 1 < len)
            canvas.vline(2, q + 1, q + 2);
    }
    // Wrap-around wire from the last BP back to BP(0).
    canvas.vline(7, 1, len);
    canvas.hline(1, 6, 7);
    canvas.hline(len, 6, 7);
    // Tree taps at BP(0).
    canvas.put(0, 2, 'T');
    canvas.vline(2, 0, 1);
    canvas.put(1, 0, 'T');
    canvas.hline(1, 0, 1);
    return canvas.str();
}

std::string
OtcLayout::asciiArt() const
{
    // Fig. 3: grid of cycle blocks 'C' with row/column trees over them.
    const std::size_t k = _k;
    const unsigned levels = vlsi::logCeilAtLeast1(k);
    const std::size_t cell_w = 2 * levels + 6;
    const std::size_t cell_h = levels + 3;
    Canvas canvas(k * cell_h + 2, k * cell_w + 2);

    auto cy_row = [&](std::size_t i) { return i * cell_h; };
    auto cy_col = [&](std::size_t j) { return j * cell_w; };

    for (std::size_t i = 0; i < k; ++i) {
        for (std::size_t j = 0; j < k; ++j) {
            canvas.put(cy_row(i), cy_col(j), '(');
            canvas.put(cy_row(i), cy_col(j) + 1, 'C');
            canvas.put(cy_row(i), cy_col(j) + 2, ')');
        }
    }

    for (std::size_t i = 0; i < k; ++i) {
        auto put_node = [&](unsigned level, std::size_t centre,
                            std::size_t lpos, std::size_t rpos) {
            std::size_t r = cy_row(i) + (levels - level) + 1;
            canvas.put(r, centre, '*');
            canvas.hline(r, lpos, rpos);
            canvas.vline(lpos, cy_row(i) + 1, r);
            canvas.vline(rpos, cy_row(i) + 1, r);
        };
        drawTreeSpan(0, k, 0, put_node, cy_col);
    }

    for (std::size_t j = 0; j < k; ++j) {
        auto put_node = [&](unsigned level, std::size_t centre,
                            std::size_t lpos, std::size_t rpos) {
            std::size_t c = cy_col(j) + 2 * (levels - level) + 4;
            canvas.put(centre, c, '*');
            canvas.vline(c, lpos, rpos);
        };
        drawTreeSpan(0, k, 0, put_node, cy_row);
    }

    return canvas.str();
}

} // namespace ot::layout

#include "layout/otn_layout.hh"

#include "layout/canvas.hh"
#include "vlsi/bitmath.hh"

namespace ot::layout {

OtnLayout::OtnLayout(std::size_t n, unsigned word_bits, LayoutParams params)
    : _n(vlsi::nextPow2(n ? n : 1)),
      _wordBits(word_bits ? word_bits : 1),
      _params(params),
      // The inter-BP pitch must fit the BP footprint (Theta(word_bits))
      // plus one channel track per tree level: Theta(log N) total.
      _pitch(params.baseCell + _wordBits +
             std::uint64_t{params.track} * vlsi::logCeilAtLeast1(_n)),
      _tree(_n, _pitch)
{
}

LayoutMetrics
OtnLayout::metrics() const
{
    LayoutMetrics m;
    std::uint64_t side = _n * _pitch;
    m.width = side;
    m.height = side;
    // N^2 BPs plus 2N(N-1) IPs (Section II-A).
    m.processors = std::uint64_t{_n} * _n + 2 * std::uint64_t{_n} * (_n - 1);
    // 2N trees, each with 2(N-1) edges.
    m.wires = 2 * std::uint64_t{_n} * 2 * (_n - 1);
    m.totalWireLength = 2 * std::uint64_t{_n} * _tree.totalWireLength();
    m.longestWire = _tree.longestEdge();
    return m;
}

std::string
OtnLayout::asciiArt() const
{
    // Schematic in the style of Fig. 1: base processors 'O' on a grid,
    // row-tree IPs '*' in the channel below each base row, column-tree
    // IPs '*' in the channel right of each base column.
    const std::size_t n = _n;
    const unsigned levels = vlsi::logCeilAtLeast1(n);
    const std::size_t cell_w = 2 * levels + 4; // room for column channels
    const std::size_t cell_h = levels + 2;     // room for row channels
    Canvas canvas(n * cell_h + 2, n * cell_w + 2);

    auto bp_row = [&](std::size_t i) { return i * cell_h; };
    auto bp_col = [&](std::size_t j) { return j * cell_w; };

    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            canvas.put(bp_row(i), bp_col(j), 'O');

    // Row trees: IP at level l sits l+1 lines below the leaf line.
    for (std::size_t i = 0; i < n; ++i) {
        auto put_node = [&](unsigned level, std::size_t centre,
                            std::size_t lpos, std::size_t rpos) {
            std::size_t r = bp_row(i) + (levels - level) + 1;
            canvas.put(r, centre, '*');
            canvas.hline(r, lpos, rpos);
            canvas.vline(lpos, bp_row(i) + 1, r);
            canvas.vline(rpos, bp_row(i) + 1, r);
        };
        drawTreeSpan(0, n, 0, put_node, bp_col);
    }

    // Column trees: IP at level l sits an odd number of columns right
    // of the leaf column line (odd offsets cannot collide with the
    // row-tree IPs, which sit at even column centres); the "position"
    // axis is the row coordinate.
    for (std::size_t j = 0; j < n; ++j) {
        auto put_node = [&](unsigned level, std::size_t centre,
                            std::size_t lpos, std::size_t rpos) {
            std::size_t c = bp_col(j) + 2 * (levels - level) + 3;
            canvas.put(centre, c, '*');
            canvas.vline(c, lpos, rpos);
        };
        drawTreeSpan(0, n, 0, put_node, bp_row);
    }

    return canvas.str();
}

} // namespace ot::layout

#include "check/lexer.hh"

#include <cctype>

namespace ot::check {

namespace {

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identCont(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Cursor over the raw source with line tracking. */
class Cursor
{
  public:
    explicit Cursor(const std::string &s) : _s(s) {}

    bool done() const { return _i >= _s.size(); }
    char peek(std::size_t ahead = 0) const
    {
        return _i + ahead < _s.size() ? _s[_i + ahead] : '\0';
    }
    int line() const { return _line; }

    char
    take()
    {
        char c = _s[_i++];
        if (c == '\n')
            ++_line;
        return c;
    }

    bool
    startsWith(const char *lit) const
    {
        for (std::size_t k = 0; lit[k]; ++k)
            if (peek(k) != lit[k])
                return false;
        return true;
    }

  private:
    const std::string &_s;
    std::size_t _i = 0;
    int _line = 1;
};

/** Trim ASCII whitespace from both ends. */
std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

/**
 * Pull otcheck markers out of one comment's text.  `line` is the line
 * the comment starts on; marker lines are offset by the newlines seen
 * before the marker inside a block comment.
 */
void
scanCommentMarkers(const std::string &text, int line, LexedFile &out)
{
    static const std::string kTag = "otcheck:";
    int extraLines = 0;
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (text[i] == '\n') {
            ++extraLines;
            continue;
        }
        if (text.compare(i, kTag.size(), kTag) != 0)
            continue;
        std::size_t j = i + kTag.size();
        int markerLine = line + extraLines;
        if (text.compare(j, 7, "hotpath") == 0) {
            out.hotpath = true;
        } else if (text.compare(j, 18, "shared(post-build)") == 0) {
            Marker m;
            m.line = markerLine;
            out.sharedMarkers.push_back(m);
        } else if (text.compare(j, 4, "pure") == 0 &&
                   (j + 4 >= text.size() || !identCont(text[j + 4]))) {
            Marker m;
            m.line = markerLine;
            out.pureMarkers.push_back(m);
        } else if (text.compare(j, 13, "fixture-path ") == 0) {
            std::size_t e = text.find_first_of("\n", j + 13);
            out.fixturePath = trim(text.substr(j + 13, e - (j + 13)));
        } else if (text.compare(j, 6, "allow(") == 0) {
            Allow a;
            a.line = markerLine;
            std::size_t close = text.find(')', j + 6);
            if (close == std::string::npos) {
                // Malformed marker: record with empty rule so the
                // checker reports it rather than silently ignoring.
                out.allows.push_back(a);
                continue;
            }
            a.rule = trim(text.substr(j + 6, close - (j + 6)));
            // The justification must follow the canonical form
            // `allow(rule): text`; without the colon the marker has
            // no justification and does not suppress.
            std::size_t k = close + 1;
            if (k < text.size() && text[k] == ':') {
                std::size_t e = text.find('\n', k + 1);
                a.justification = trim(text.substr(k + 1, e - (k + 1)));
            }
            out.allows.push_back(a);
        }
    }
}

} // namespace

LexedFile
lex(const std::string &source)
{
    LexedFile out;
    Cursor c(source);
    bool lineHasToken = false; // false until a token on this line

    auto push = [&](Token::Kind kind, std::string text, int line) {
        Token t;
        t.kind = kind;
        t.text = std::move(text);
        t.line = line;
        out.tokens.push_back(std::move(t));
        lineHasToken = true;
    };

    while (!c.done()) {
        char ch = c.peek();

        if (ch == '\n') {
            lineHasToken = false;
            c.take();
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(ch))) {
            c.take();
            continue;
        }

        // Line comment.  A backslash immediately before the newline
        // splices the next line into the comment (translation phase
        // 2), so code on the continued line is comment text to the
        // compiler and must be comment text here too.
        if (c.startsWith("//")) {
            int line = c.line();
            std::string text;
            while (!c.done()) {
                if (c.peek() == '\\' &&
                    (c.peek(1) == '\n' ||
                     (c.peek(1) == '\r' && c.peek(2) == '\n'))) {
                    c.take(); // backslash
                    if (c.peek() == '\r')
                        c.take();
                    c.take(); // newline (keeps marker lines aligned)
                    text += '\n';
                    continue;
                }
                if (c.peek() == '\n')
                    break;
                text += c.take();
            }
            scanCommentMarkers(text, line, out);
            continue;
        }

        // Block comment.
        if (c.startsWith("/*")) {
            int line = c.line();
            std::string text;
            c.take();
            c.take();
            while (!c.done() && !c.startsWith("*/"))
                text += c.take();
            if (!c.done()) {
                c.take();
                c.take();
            }
            scanCommentMarkers(text, line, out);
            continue;
        }

        // Preprocessor directive: only when `#` is the first
        // non-whitespace character on the line.  Consumed whole
        // (honouring `\` continuations); `#include` targets are kept.
        if (ch == '#' && !lineHasToken) {
            int line = c.line();
            std::string text;
            while (!c.done()) {
                if (c.peek() == '\\' && c.peek(1) == '\n') {
                    c.take();
                    c.take();
                    text += ' ';
                    continue;
                }
                if (c.peek() == '\n')
                    break;
                text += c.take();
            }
            std::string body = trim(text.substr(1));
            if (body.compare(0, 7, "include") == 0) {
                std::string rest = trim(body.substr(7));
                if (!rest.empty() && (rest[0] == '"' || rest[0] == '<')) {
                    char open = rest[0];
                    char closeCh = open == '"' ? '"' : '>';
                    std::size_t e = rest.find(closeCh, 1);
                    if (e != std::string::npos) {
                        Include inc;
                        inc.path = rest.substr(1, e - 1);
                        inc.line = line;
                        inc.angled = open == '<';
                        out.includes.push_back(std::move(inc));
                    }
                }
            } else {
                // Identifiers in any other directive (`#define A B`,
                // `#if FOO`, `#ifdef BAR`) count as uses for the
                // include-hygiene rule; a `#define` additionally
                // exports its name.
                std::size_t k = 0;
                while (k < body.size() &&
                       !std::isspace(
                           static_cast<unsigned char>(body[k])))
                    ++k; // skip the directive keyword
                bool isDefine = body.compare(0, 6, "define") == 0;
                bool defineNamed = false;
                while (k < body.size()) {
                    if (!identStart(body[k])) {
                        ++k;
                        continue;
                    }
                    std::size_t b = k;
                    while (k < body.size() && identCont(body[k]))
                        ++k;
                    std::string name = body.substr(b, k - b);
                    if (isDefine && !defineNamed) {
                        defineNamed = true;
                        Define def;
                        def.name = name;
                        def.line = line;
                        out.defines.push_back(std::move(def));
                    } else {
                        out.ppIdents.push_back(std::move(name));
                    }
                }
            }
            continue;
        }

        // Raw string literal: (u8|u|U|L)? R"delim( ... )delim".  The
        // delimiter is validated before anything is consumed: at most
        // 16 d-chars (no space, quote, backslash, paren or newline)
        // then '('.  Anything else is not a raw string — the prefix
        // falls through to the identifier path and the quote to the
        // ordinary string path, so a malformed literal cannot swallow
        // the rest of the file.
        if (ch == 'R' || ch == 'u' || ch == 'U' || ch == 'L') {
            std::size_t p = 0;
            if (c.startsWith("u8"))
                p = 2;
            else if (ch == 'u' || ch == 'U' || ch == 'L')
                p = 1;
            if (c.peek(p) == 'R' && c.peek(p + 1) == '"') {
                std::size_t delimLen = 0;
                bool valid = false;
                while (delimLen <= 16) {
                    char d = c.peek(p + 2 + delimLen);
                    if (d == '(') {
                        valid = true;
                        break;
                    }
                    if (d == '\0' || d == '"' || d == ')' ||
                        d == '\\' || d == '\n' || d == ' ' ||
                        delimLen == 16)
                        break;
                    ++delimLen;
                }
                if (valid) {
                    for (std::size_t k = 0; k < p + 2; ++k)
                        c.take();
                    std::string delim;
                    for (std::size_t k = 0; k < delimLen; ++k)
                        delim += c.take();
                    c.take(); // '('
                    std::string closer = ")" + delim + "\"";
                    while (!c.done() && !c.startsWith(closer.c_str()))
                        c.take();
                    for (std::size_t k = 0;
                         k < closer.size() && !c.done(); ++k)
                        c.take();
                    lineHasToken = true;
                    continue;
                }
            }
        }

        // String / char literal (with escapes).  String contents are
        // retained in the out-of-band `strings` list (the contract
        // rules read registry names from them) but never enter the
        // token stream.
        if (ch == '"' || ch == '\'') {
            int line = c.line();
            char quote = c.take();
            std::string text;
            while (!c.done() && c.peek() != quote) {
                if (c.peek() == '\\') {
                    text += c.take();
                    if (!c.done())
                        text += c.take();
                } else {
                    text += c.take();
                }
            }
            if (!c.done())
                c.take();
            if (quote == '"') {
                StrLit lit;
                lit.text = std::move(text);
                lit.line = line;
                out.strings.push_back(std::move(lit));
            }
            lineHasToken = true;
            continue;
        }

        // Identifier / keyword.
        if (identStart(ch)) {
            int line = c.line();
            std::string text;
            while (!c.done() && identCont(c.peek()))
                text += c.take();
            push(Token::Kind::Ident, std::move(text), line);
            continue;
        }

        // Number (digits, digit separators and the usual
        // suffix/exponent characters; the rules never look inside
        // numbers, so lumping is fine).  The `1'000` separator must
        // be consumed here or the `'` would start a bogus char
        // literal and swallow real code.
        if (std::isdigit(static_cast<unsigned char>(ch))) {
            int line = c.line();
            std::string text;
            while (!c.done() &&
                   (identCont(c.peek()) || c.peek() == '.' ||
                    (c.peek() == '\'' && identCont(c.peek(1))) ||
                    ((c.peek() == '+' || c.peek() == '-') &&
                     (text.back() == 'e' || text.back() == 'E' ||
                      text.back() == 'p' || text.back() == 'P'))))
                text += c.take();
            push(Token::Kind::Number, std::move(text), line);
            continue;
        }

        // Punctuation; `::` and `->` kept whole for the rules.
        {
            int line = c.line();
            if (c.startsWith("::")) {
                c.take();
                c.take();
                push(Token::Kind::Punct, "::", line);
            } else if (c.startsWith("->")) {
                c.take();
                c.take();
                push(Token::Kind::Punct, "->", line);
            } else {
                push(Token::Kind::Punct, std::string(1, c.take()), line);
            }
        }
    }
    return out;
}

} // namespace ot::check

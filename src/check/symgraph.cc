#include "check/symgraph.hh"

#include <algorithm>

namespace ot::check {

namespace {

std::string
dirName(const std::string &path)
{
    std::size_t slash = path.rfind('/');
    return slash == std::string::npos ? "" : path.substr(0, slash);
}

/** Collapse "./" and "a/../" segments; no filesystem access. */
std::string
normalize(const std::string &path)
{
    std::vector<std::string> parts;
    std::string cur;
    auto flush = [&]() {
        if (cur.empty() || cur == ".") {
            // drop
        } else if (cur == ".." && !parts.empty() &&
                   parts.back() != "..") {
            parts.pop_back();
        } else {
            parts.push_back(cur);
        }
        cur.clear();
    };
    for (char c : path) {
        if (c == '/')
            flush();
        else
            cur += c;
    }
    flush();
    std::string out;
    for (const std::string &p : parts) {
        if (!out.empty())
            out += '/';
        out += p;
    }
    return out;
}

} // namespace

SymGraph
buildSymGraph(const std::vector<FileContext> &ctxs)
{
    SymGraph g;
    g.files.resize(ctxs.size());

    std::map<std::string, int> byPath;
    for (std::size_t i = 0; i < ctxs.size(); ++i)
        byPath[ctxs[i].path] = static_cast<int>(i);

    for (std::size_t i = 0; i < ctxs.size(); ++i) {
        const FileContext &ctx = ctxs[i];
        FileSyms &syms = g.files[i];

        for (const DeclName &d : ctx.parsed.decls)
            syms.exports.insert(d.name);
        for (const FuncDef &f : ctx.parsed.funcs)
            if (!f.name.empty())
                syms.exports.insert(f.name);
        for (const Define &d : ctx.lexed.defines)
            syms.exports.insert(d.name);

        for (const Token &t : ctx.lexed.tokens)
            if (t.kind == Token::Kind::Ident)
                syms.mentions.emplace(t.text, t.line);
        for (const std::string &name : ctx.lexed.ppIdents)
            syms.mentions.emplace(name, 1);

        // Resolve each include against the run's file set: relative
        // to the including file's directory, then under src/, then
        // verbatim.  Unresolved → -1.
        std::string dir = dirName(ctx.path);
        for (const Include &inc : ctx.lexed.includes) {
            int resolved = -1;
            std::vector<std::string> candidates;
            if (!inc.angled) {
                if (!dir.empty())
                    candidates.push_back(
                        normalize(dir + "/" + inc.path));
                candidates.push_back(normalize("src/" + inc.path));
                candidates.push_back(normalize(inc.path));
            }
            for (const std::string &cand : candidates) {
                auto it = byPath.find(cand);
                if (it != byPath.end() &&
                    it->second != static_cast<int>(i)) {
                    resolved = it->second;
                    break;
                }
            }
            syms.resolvedIncludes.push_back(resolved);
        }
    }

    // Transitive reachability, per file (the graphs are small:
    // O(files · edges) is fine and deterministic).
    for (std::size_t i = 0; i < ctxs.size(); ++i) {
        std::vector<int> stack;
        for (int r : g.files[i].resolvedIncludes)
            if (r >= 0)
                stack.push_back(r);
        std::set<int> &seen = g.files[i].reachable;
        while (!stack.empty()) {
            int f = stack.back();
            stack.pop_back();
            if (!seen.insert(f).second)
                continue;
            for (int r : g.files[f].resolvedIncludes)
                if (r >= 0 && r != static_cast<int>(i))
                    stack.push_back(r);
        }
    }

    for (std::size_t i = 0; i < ctxs.size(); ++i) {
        const std::string &p = ctxs[i].path;
        if (p.size() < 3 || p.compare(p.size() - 3, 3, ".hh") != 0)
            continue;
        for (const std::string &name : g.files[i].exports)
            g.declaringHeaders[name].push_back(static_cast<int>(i));
    }
    return g;
}

} // namespace ot::check

#include "check/callgraph.hh"

namespace ot::check {

namespace {

const char *
allocName(const std::string &t)
{
    if (t == "new" || t == "malloc" || t == "calloc" ||
        t == "realloc" || t == "make_unique" || t == "make_shared")
        return t.c_str();
    return nullptr;
}

/** Scan a definition's token range for intrinsically banned
 *  constructs; returns a witness string or "". */
std::string
intrinsicDirt(const FileContext &ctx, const FuncDef &def)
{
    const auto &toks = ctx.lexed.tokens;
    auto where = [&](std::size_t j) {
        return " at " + ctx.path + ":" + std::to_string(toks[j].line);
    };
    if (def.isVirtual)
        return "virtual dispatch at " + ctx.path + ":" +
               std::to_string(def.line);
    for (std::size_t j = def.bodyFirst;
         j <= def.bodyLast && j < toks.size(); ++j) {
        if (toks[j].kind != Token::Kind::Ident)
            continue;
        const std::string &t = toks[j].text;
        if (allocName(t))
            return "heap allocation (" + t + ")" + where(j);
        if (t == "virtual")
            return "virtual dispatch" + where(j);
        if (t == "function" && j >= 2 && toks[j - 1].text == "::" &&
            toks[j - 2].text == "std")
            return "std::function (type-erased call)" + where(j);
    }
    return "";
}

} // namespace

CallGraph
buildCallGraph(const std::vector<FileContext> &ctxs)
{
    CallGraph g;
    for (std::size_t i = 0; i < ctxs.size(); ++i) {
        if (allowedIncludes(ctxs[i].layer).empty())
            continue; // only src/-layer definitions participate
        for (const FuncDef &f : ctxs[i].parsed.funcs) {
            if (f.name.empty())
                continue; // lambdas: scanned as part of the encloser
            CallNode n;
            n.file = static_cast<int>(i);
            n.def = &f;
            n.why = intrinsicDirt(ctxs[i], f);
            n.dirty = !n.why.empty();
            g.byName[f.name].push_back(
                static_cast<int>(g.nodes.size()));
            g.nodes.push_back(std::move(n));
        }
    }

    // Monotone fixpoint: a clean node becomes dirty when some call
    // site resolves (by name) to a non-empty candidate set that is
    // entirely dirty.  Node count bounds the iteration.
    bool changed = true;
    while (changed) {
        changed = false;
        for (CallNode &n : g.nodes) {
            if (n.dirty)
                continue;
            for (const CallSite &c : n.def->calls) {
                auto it = g.byName.find(c.name);
                if (it == g.byName.end())
                    continue;
                bool allDirty = true;
                const CallNode *witness = nullptr;
                for (int k : it->second) {
                    if (!g.nodes[k].dirty) {
                        allDirty = false;
                        break;
                    }
                    if (!witness)
                        witness = &g.nodes[k];
                }
                if (allDirty && witness) {
                    n.dirty = true;
                    n.why = witness->why + " via " + c.name + "()";
                    changed = true;
                    break;
                }
            }
        }
    }
    return g;
}

} // namespace ot::check

/**
 * @file
 * Interprocedural accounting summaries for otcheck.
 *
 * The accounting rule proves the beginPhase/endPhase (and
 * spanBegin/spanEnd) balance path-sensitively inside each function
 * body.  On its own that model cannot express the legal split where a
 * function opens a phase that a callee or a caller closes: the opener
 * flags a leak and the closer flags an underflow even though the pair
 * balances across the call edge.
 *
 * This pass computes a per-function *summary*: the net begin/end
 * delta per accounting pair that one call to the function applies to
 * its caller's open counts, fixpointed over the call graph.  The
 * lattice per pair is
 *
 *     Known(n)      every exit path nets exactly n
 *     Inconsistent  exit paths disagree — the function is wrong on
 *                   some path, and the intraprocedural rule will say
 *                   where
 *     Top           unanalyzable: recursion, a state-set overflow, or
 *                   call sites whose same-named candidates disagree
 *
 * Call sites apply Known deltas into the caller's path evaluation;
 * Inconsistent and Top conservatively apply 0, which degrades exactly
 * to the pre-summary behavior (calls invisible) and can therefore
 * never introduce new false positives.  Constructor and destructor
 * summaries are never applied at call sites: an RAII wrapper's +1/-1
 * is the *object's* invariant, handled by the RAII classification in
 * the intraprocedural rule.
 *
 * Resolution is by name (the checker has no types), with the same
 * convention as the hotpath call graph: a delta is applied only when
 * ALL same-named candidates agree on it.
 */

#pragma once

#include <array>
#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "check/cfg.hh"
#include "check/rules.hh"

namespace ot::check {

/** Net accounting delta of one function for one pair. */
struct PairDelta
{
    enum class Kind { Known, Inconsistent, Top };
    Kind kind = Kind::Known;
    int net = 0; ///< meaningful only when kind == Known
};

/** All pairs of one function. */
struct FuncSummary
{
    std::array<PairDelta, kNPairs> pairs{};
};

/** Summary table for one run's file set. */
struct SummaryTable
{
    /** Per-definition summaries (named src/-layer functions only). */
    std::map<const FuncDef *, FuncSummary> funcs;
    /** Name → the definitions it may resolve to. */
    std::map<std::string, std::vector<const FuncDef *>> byName;
    /** Every name that appears at some call site anywhere in the run
     *  (all layers, lambdas included) — "does anyone call me". */
    std::set<std::string> calledNames;
    /** Number of function-body evaluations the fixpoint performed. */
    std::size_t evaluations = 0;

    /**
     * Delta a call to `name` applies to the caller for pair `p`:
     * Known(n) when all candidates agree on Known(n) and none is a
     * ctor/dtor; Known(0) when the name resolves to nothing (library
     * calls); Top otherwise.
     */
    PairDelta callDelta(const std::string &name, std::size_t p) const;
};

/** Build the table: evaluate every named src/-layer definition to a
 *  fixpoint over the call graph (memoized DFS; recursion ⇒ Top). */
SummaryTable buildSummaries(const std::vector<FileContext> &ctxs);

} // namespace ot::check

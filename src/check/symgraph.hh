/**
 * @file
 * Project-wide symbol and include graph for otcheck.
 *
 * Built over every file in one analysis run: which names each file
 * exports (declarations, function definitions, #define names), which
 * names it mentions, and which project files its includes resolve to
 * (directly and transitively).  The include-hygiene rules read this
 * graph; nothing here emits diagnostics itself.
 *
 * Resolution is project-local on purpose: an include that does not
 * name a file in the run (system headers, third-party code) resolves
 * to nothing and is never judged — the graph can only make claims
 * about files it has actually read.
 */

#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "check/rules.hh"

namespace ot::check {

/** Symbol/include facts for one file of the run. */
struct FileSyms
{
    /** Names this file declares at namespace/class scope, plus
     *  function definitions and #define names. */
    std::set<std::string> exports;
    /** Every identifier mentioned in the token stream or in a
     *  preprocessor directive body → first line it appears on. */
    std::map<std::string, int> mentions;
    /** For each entry of lexed.includes (parallel array): index of
     *  the project file it resolves to, or -1. */
    std::vector<int> resolvedIncludes;
    /** Project files reachable through includes, transitively
     *  (excluding the file itself unless it includes itself). */
    std::set<int> reachable;
};

/** The graph over one run's file set. */
struct SymGraph
{
    std::vector<FileSyms> files; ///< parallel to the input contexts
    /** Exported name → indices of the .hh files exporting it. */
    std::map<std::string, std::vector<int>> declaringHeaders;
};

SymGraph buildSymGraph(const std::vector<FileContext> &ctxs);

} // namespace ot::check

#include "check/contracts.hh"

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "check/cfg.hh"

namespace ot::check {

namespace {

const std::string &
at(const std::vector<Token> &toks, std::size_t i)
{
    static const std::string empty;
    return i < toks.size() ? toks[i].text : empty;
}

bool
isIdent(const std::vector<Token> &toks, std::size_t i)
{
    return i < toks.size() && toks[i].kind == Token::Kind::Ident;
}

bool
isPunct(const std::vector<Token> &toks, std::size_t i, const char *s)
{
    return i < toks.size() && toks[i].kind == Token::Kind::Punct &&
           toks[i].text == s;
}

/** Forward scan: index of the closer matching the opener at `open`. */
std::size_t
matchForward(const std::vector<Token> &toks, std::size_t open,
             const char *opener, const char *closer)
{
    int depth = 0;
    for (std::size_t j = open; j < toks.size(); ++j) {
        if (isPunct(toks, j, opener))
            ++depth;
        else if (isPunct(toks, j, closer) && --depth == 0)
            return j;
    }
    return toks.empty() ? 0 : toks.size() - 1;
}

bool
isAccessSpecifier(const std::string &t)
{
    return t == "public" || t == "protected" || t == "private" ||
           t == "virtual";
}

/** Scan one class head starting at the `class`/`struct` keyword.
 *  Returns true (and fills `info` except for the virtual/abstract
 *  body facts) only for a real definition with a brace-enclosed
 *  body; forward declarations, `enum class`, template parameter
 *  lists and friend declarations are rejected. */
bool
scanClassHead(const std::vector<Token> &toks, std::size_t j,
              ClassInfo &info)
{
    if (at(toks, j - 1) == "enum" || at(toks, j - 1) == "friend")
        return false;
    if (!isIdent(toks, j + 1) || !isIdent(toks, j))
        return false;
    info.name = toks[j + 1].text;
    info.line = toks[j + 1].line;
    std::size_t k = j + 2;
    if (at(toks, k) == "final")
        ++k;
    // Between the name and the body only a base-clause may appear.
    // Any other shape (`>` closing a template parameter list, `(`,
    // `=`, `;`) means this is not a class definition.
    bool inBases = false;
    int angle = 0;
    std::string lastBase;
    for (; k < toks.size(); ++k) {
        const std::string &t = toks[k].text;
        if (t == "<") {
            ++angle;
            continue;
        }
        if (t == ">") {
            if (angle == 0)
                return false;
            --angle;
            continue;
        }
        if (angle > 0)
            continue;
        if (t == "{") {
            info.bodyFirst = k;
            info.bodyLast = matchForward(toks, k, "{", "}");
            if (inBases && !lastBase.empty())
                info.bases.push_back(lastBase);
            return true;
        }
        if (t == ":") {
            inBases = true;
            continue;
        }
        if (t == "::")
            continue;
        if (t == ",") {
            if (!inBases)
                return false;
            if (!lastBase.empty())
                info.bases.push_back(lastBase);
            lastBase.clear();
            continue;
        }
        if (isIdent(toks, k)) {
            if (!inBases)
                return false;
            if (!isAccessSpecifier(t))
                lastBase = t; // last identifier wins: `topo::Machine`
            continue;
        }
        return false; // `;`, `(`, `=`, `&`, ... — not a definition
    }
    return false;
}

/** Body facts: virtual member names, pure-virtual presence, and
 *  whether `name` is declared as a member function. */
void
scanClassBody(const std::vector<Token> &toks, ClassInfo &info)
{
    for (std::size_t m = info.bodyFirst + 1; m < info.bodyLast; ++m) {
        if (isIdent(toks, m) && toks[m].text == "virtual") {
            // The declared name is the identifier right before the
            // next `(`, unless it is a destructor.
            for (std::size_t q = m + 1;
                 q < info.bodyLast && q < m + 32; ++q) {
                const std::string &t = toks[q].text;
                if (t == ";" || t == "{" || t == "}")
                    break;
                if (t == "(" && isIdent(toks, q - 1) &&
                    at(toks, q - 2) != "~") {
                    info.virtualNames.insert(toks[q - 1].text);
                    break;
                }
            }
        }
        // Pure-virtual declaration: `... ) ... = 0 ;` — the previous
        // token gate keeps `int _x = 0;` member initialisers out.
        if (isPunct(toks, m, "=") && at(toks, m + 1) == "0" &&
            isPunct(toks, m + 2, ";")) {
            const std::string &p = at(toks, m - 1);
            if (p == ")" || p == "const" || p == "override" ||
                p == "noexcept")
                info.isAbstract = true;
        }
    }
}

/** True when the class body declares a member function `name`
 *  (declaration or inline definition; return type required, so a
 *  call `name(...)` inside an inline body does not count... it would
 *  need an identifier return type right before it, which call sites
 *  inside statements can also have — the heuristic errs towards
 *  counting, which only ever *suppresses* a fallback finding). */
bool
declaresMember(const std::vector<Token> &toks, const ClassInfo &info,
               const std::string &name)
{
    for (std::size_t m = info.bodyFirst + 1; m < info.bodyLast; ++m) {
        if (!isIdent(toks, m) || toks[m].text != name)
            continue;
        if (!isPunct(toks, m + 1, "("))
            continue;
        const std::string &p = at(toks, m - 1);
        if ((isIdent(toks, m - 1) && p != "return" && p != "new") ||
            p == "&" || p == "*" || p == ">")
            return true;
    }
    return false;
}

/** The three per-primitive accounting hooks every registered machine
 *  is expected to describe itself with. */
const char *const kHooks[] = {"exchangeStepCost", "broadcastCost",
                              "reduceCost"};

/** One `reg.add({"name", ...})` registration site. */
struct Registration
{
    std::string name; ///< registry name string, "" if none found
    int file = -1;
    int line = 1;
    int classIdx = -1; ///< resolved machine class, -1 when unknown
};

/** Map function name → class index for factories whose body contains
 *  `make_unique<SomeKnownClass>` — resolves the `buildMot` pattern
 *  where the registered class never appears at the add() site. */
std::map<std::string, int>
factoryClasses(const std::vector<FileContext> &ctxs,
               const ClassGraph &cg)
{
    std::map<std::string, int> out;
    for (const FileContext &ctx : ctxs) {
        if (allowedIncludes(ctx.layer).empty())
            continue;
        const auto &toks = ctx.lexed.tokens;
        for (const FuncDef &f : ctx.parsed.funcs) {
            if (f.name.empty())
                continue;
            for (std::size_t m = f.bodyFirst;
                 m < f.bodyLast && m + 2 < toks.size(); ++m) {
                if (!isIdent(toks, m) ||
                    toks[m].text != "make_unique")
                    continue;
                if (!isPunct(toks, m + 1, "<") ||
                    !isIdent(toks, m + 2))
                    continue;
                auto it = cg.byName.find(toks[m + 2].text);
                if (it == cg.byName.end())
                    continue;
                out.emplace(f.name, it->second);
                break;
            }
        }
    }
    return out;
}

/** Collect the registration sites: member calls `x.add({...})` (or
 *  `->add`) in topo-layer files whose argument list contains a brace
 *  initialiser with a string literal — the registry idiom.  The
 *  registered class is the first identifier in the argument range
 *  naming a known class, else a known factory's target class. */
std::vector<Registration>
collectRegistrations(const std::vector<FileContext> &ctxs,
                     const ClassGraph &cg)
{
    std::map<std::string, int> factories = factoryClasses(ctxs, cg);
    std::vector<Registration> regs;
    for (std::size_t i = 0; i < ctxs.size(); ++i) {
        if (ctxs[i].layer != "topo")
            continue;
        const auto &toks = ctxs[i].lexed.tokens;
        for (std::size_t j = 0; j + 2 < toks.size(); ++j) {
            if (!isIdent(toks, j) || toks[j].text != "add")
                continue;
            if (!isPunct(toks, j + 1, "(") ||
                !isPunct(toks, j + 2, "{"))
                continue;
            const std::string &p = at(toks, j - 1);
            if (p != "." && p != "->")
                continue;
            std::size_t close = matchForward(toks, j + 1, "(", ")");
            Registration r;
            r.file = static_cast<int>(i);
            r.line = toks[j].line;
            // The registry name is the first string literal inside
            // the call's line span (string contents live out-of-band
            // in source order; the name is always the first field of
            // the brace initialiser).
            int lo = toks[j].line;
            int hi = toks[close].line;
            for (const StrLit &s : ctxs[i].lexed.strings) {
                if (s.line < lo)
                    continue;
                if (s.line > hi)
                    break;
                r.name = s.text;
                break;
            }
            for (std::size_t m = j + 2; m < close; ++m) {
                if (!isIdent(toks, m))
                    continue;
                auto cit = cg.byName.find(toks[m].text);
                if (cit != cg.byName.end()) {
                    r.classIdx = cit->second;
                    break;
                }
                auto fit = factories.find(toks[m].text);
                if (fit != factories.end()) {
                    r.classIdx = fit->second;
                    break;
                }
            }
            regs.push_back(std::move(r));
            j = close;
        }
    }
    return regs;
}

/** Root ancestors of class `idx` (classes in the graph with no
 *  resolvable base), via upward walk with a cycle guard. */
std::set<int>
hierarchyRoots(const ClassGraph &cg, int idx)
{
    std::set<int> roots;
    std::set<int> seen;
    std::vector<int> work{idx};
    while (!work.empty()) {
        int c = work.back();
        work.pop_back();
        if (!seen.insert(c).second)
            continue;
        bool resolvedBase = false;
        for (const std::string &b : cg.classes[c].bases) {
            auto it = cg.byName.find(b);
            if (it != cg.byName.end()) {
                resolvedBase = true;
                work.push_back(it->second);
            }
        }
        if (!resolvedBase)
            roots.insert(c);
    }
    return roots;
}

/** Nearest ancestor (breadth-first over bases) for which `pred`
 *  holds; -1 when none. */
template <typename Pred>
int
nearestAncestor(const ClassGraph &cg, int idx, Pred pred)
{
    std::set<int> seen{idx};
    std::vector<int> frontier{idx};
    while (!frontier.empty()) {
        std::vector<int> next;
        for (int c : frontier) {
            for (const std::string &b : cg.classes[c].bases) {
                auto it = cg.byName.find(b);
                if (it == cg.byName.end() ||
                    !seen.insert(it->second).second)
                    continue;
                if (pred(cg.classes[it->second]))
                    return it->second;
                next.push_back(it->second);
            }
        }
        frontier = std::move(next);
    }
    return -1;
}

} // namespace

ClassGraph
buildClassGraph(const std::vector<FileContext> &ctxs)
{
    ClassGraph cg;
    for (std::size_t i = 0; i < ctxs.size(); ++i) {
        if (allowedIncludes(ctxs[i].layer).empty())
            continue;
        const auto &toks = ctxs[i].lexed.tokens;
        for (std::size_t j = 0; j + 1 < toks.size(); ++j) {
            if (!isIdent(toks, j) || (toks[j].text != "class" &&
                                      toks[j].text != "struct"))
                continue;
            ClassInfo info;
            if (!scanClassHead(toks, j, info))
                continue;
            info.file = static_cast<int>(i);
            scanClassBody(toks, info);
            cg.byName.emplace(info.name,
                              static_cast<int>(cg.classes.size()));
            cg.classes.push_back(std::move(info));
        }
        // Attach each shared marker to the first class defined at or
        // after the marker line in this file.
        for (const Marker &m : ctxs[i].lexed.sharedMarkers) {
            int best = -1;
            for (std::size_t c = 0; c < cg.classes.size(); ++c) {
                const ClassInfo &ci = cg.classes[c];
                if (ci.file != static_cast<int>(i) ||
                    ci.line < m.line)
                    continue;
                if (best < 0 || ci.line < cg.classes[best].line)
                    best = static_cast<int>(c);
            }
            if (best >= 0)
                cg.classes[best].sharedMarked = true;
        }
    }
    // Propagate sharedness and the virtual API down the hierarchy to
    // a fixpoint (hierarchies are shallow; this converges in a few
    // sweeps even with out-of-order definitions).
    for (ClassInfo &c : cg.classes) {
        c.shared = c.sharedMarked;
        c.apiNames = c.virtualNames;
    }
    for (bool changed = true; changed;) {
        changed = false;
        for (ClassInfo &c : cg.classes) {
            for (const std::string &b : c.bases) {
                auto it = cg.byName.find(b);
                if (it == cg.byName.end())
                    continue;
                const ClassInfo &base = cg.classes[it->second];
                if (base.shared && !c.shared) {
                    c.shared = true;
                    changed = true;
                }
                for (const std::string &n : base.apiNames)
                    if (c.apiNames.insert(n).second)
                        changed = true;
            }
        }
    }
    return cg;
}

void
runTopoContracts(const std::vector<FileContext> &ctxs,
                 const ClassGraph &cg, std::vector<Diagnostic> &out)
{
    std::vector<Registration> regs = collectRegistrations(ctxs, cg);

    // (a) Registry-name collisions: the name keys the NetworkCache
    // and the spec grammar, so a duplicate silently shadows.
    std::map<std::string, const Registration *> first;
    for (const Registration &r : regs) {
        if (r.name.empty())
            continue;
        auto [it, inserted] = first.emplace(r.name, &r);
        if (inserted)
            continue;
        Diagnostic d;
        d.file = ctxs[r.file].path;
        d.line = r.line;
        d.rule = "topo-contract";
        d.message = "registry name '" + r.name +
                    "' is registered more than once (first at " +
                    ctxs[it->second->file].path + ":" +
                    std::to_string(it->second->line) + ")";
        d.hint = "registry names key the network cache and the spec "
                 "grammar; duplicate entries shadow silently — pick "
                 "a unique token";
        out.push_back(std::move(d));
    }

    // (b) Hook fallback: a registered machine that does not declare
    // all three accounting hooks in its own body is costing itself
    // with an ancestor's microarchitecture description.
    std::set<int> registered;
    bool unresolved = false;
    for (const Registration &r : regs) {
        if (r.classIdx < 0) {
            unresolved = true;
            continue;
        }
        registered.insert(r.classIdx);
        const ClassInfo &c = cg.classes[r.classIdx];
        const auto &toks = ctxs[c.file].lexed.tokens;
        std::vector<std::string> missing;
        for (const char *h : kHooks)
            if (!declaresMember(toks, c, h))
                missing.push_back(h);
        if (missing.empty())
            continue;
        std::string list;
        for (const std::string &h : missing)
            list += (list.empty() ? "" : ", ") + h;
        int provider = nearestAncestor(
            cg, r.classIdx, [&](const ClassInfo &a) {
                for (const std::string &h : missing)
                    if (!declaresMember(ctxs[a.file].lexed.tokens, a,
                                        h))
                        return false;
                return true;
            });
        Diagnostic d;
        d.file = ctxs[c.file].path;
        d.line = c.line;
        d.rule = "topo-fallback";
        d.message =
            "registered machine '" + c.name +
            "' does not override accounting hook(s) " + list +
            (provider >= 0
                 ? "; it inherits the costs of '" +
                       cg.classes[provider].name + "'"
                 : "; no base in the run provides them");
        d.hint = "the hooks are the topology's cost model — "
                 "override all three, or justify the inherited "
                 "costs with an allow(topo-fallback) escape";
        out.push_back(std::move(d));
    }

    // (c) Unregistered concrete machines: any concrete topo-layer
    // class rooted in a registered hierarchy that no registration
    // resolves to silently drops out of the conformance sweep.
    // Suppressed when any registration failed to resolve — a
    // registration we cannot tie to a class could be the missing one.
    if (unresolved)
        return;
    std::set<int> pluginRoots;
    for (int c : registered)
        for (int r : hierarchyRoots(cg, c))
            pluginRoots.insert(r);
    for (std::size_t c = 0; c < cg.classes.size(); ++c) {
        const ClassInfo &ci = cg.classes[c];
        if (ci.isAbstract || registered.count(static_cast<int>(c)))
            continue;
        if (ctxs[ci.file].layer != "topo")
            continue;
        bool inPluginHierarchy = false;
        for (int r : hierarchyRoots(cg, static_cast<int>(c)))
            if (r != static_cast<int>(c) && pluginRoots.count(r))
                inPluginHierarchy = true;
        if (!inPluginHierarchy)
            continue;
        Diagnostic d;
        d.file = ctxs[ci.file].path;
        d.line = ci.line;
        d.rule = "topo-contract";
        d.message = "concrete machine '" + ci.name +
                    "' is never registered in the topology registry";
        d.hint = "unregistered machines drop out of the conformance "
                 "sweep and the spec grammar — add a registry entry, "
                 "or make the class abstract";
        out.push_back(std::move(d));
    }
}

} // namespace ot::check

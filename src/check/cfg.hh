/**
 * @file
 * Lightweight recursive parser for otcheck: token stream → per-function
 * control-flow trees.
 *
 * The lexical rules (banned names, include edges) stay on the flat
 * token stream, but the semantic rules need structure:
 *
 *   - accounting needs every path through a function body (if/else,
 *     loops, switch fallthrough, early returns) to prove the
 *     beginPhase/endPhase balance instead of guessing it;
 *   - hotpath propagation needs the call sites of each function;
 *   - unreachable-statement detection needs statement sequencing;
 *   - the symbol graph needs the names a file declares.
 *
 * The parser is a recognizer, not a compiler front end: it never
 * rejects input, and constructs it cannot classify degrade to opaque
 * `Simple` statements, which makes every downstream rule conservative
 * (no diagnostics from unparsed code) rather than wrong.  Lambdas are
 * split out as anonymous functions — their bodies run at call time,
 * not where they are written, so their accounting is checked
 * separately and their phase events never leak into the enclosing
 * function's paths.
 */

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "check/lexer.hh"

namespace ot::check {

/** The begin/end call names the accounting rule pairs up. */
struct PairNames
{
    const char *begin;
    const char *end;
};

/** Accounting pair table; PairEvent::pair indexes into it. */
inline constexpr PairNames kPairs[] = {
    {"beginPhase", "endPhase"},
    {"spanBegin", "spanEnd"},
};
inline constexpr std::size_t kNPairs =
    sizeof(kPairs) / sizeof(kPairs[0]);

/** One begin/end accounting event inside a statement. */
struct PairEvent
{
    int pair = 0; ///< index into kPairs
    bool begin = true;
    int line = 1;
};

/** One call site: `name(` in call (not declaration) position. */
struct CallSite
{
    std::string name;
    int line = 1;
    bool member = false; ///< written as `obj.name(` / `p->name(`
};

/** One node of a function's structured statement tree. */
struct Stmt
{
    enum class Kind {
        Seq,      ///< children are the statements of a block
        Simple,   ///< expression/declaration statement
        If,       ///< children: [then] or [then, else]
        Loop,     ///< children: [body]; for/while/do
        Switch,   ///< children: one Seq per case section
        Try,      ///< children: [try block, handler blocks...]
        Return,   ///< return / co_return
        Exit,     ///< throw, goto, abort()-like call: leaves the flow
        Break,
        Continue,
    };

    Kind kind = Kind::Simple;
    int line = 1;
    bool hasElse = false;   ///< If: an else branch is present
    bool isDoWhile = false; ///< Loop: body runs at least once
    bool hasDefault = false; ///< Switch: a default section exists
    bool labeled = false;   ///< label target: exempt from unreachable
    std::size_t firstTok = 0; ///< token range (Simple and heads)
    std::size_t lastTok = 0;  ///< inclusive; 0 width when unused
    std::vector<PairEvent> events; ///< events in this stmt / head
    std::vector<CallSite> calls;   ///< calls in this stmt / head
    std::vector<Stmt> children;
};

/** One parsed function (or lambda) definition. */
struct FuncDef
{
    std::string name;      ///< bare name, "~X" for dtors, "" = lambda
    std::string className; ///< enclosing or qualifying class, or ""
    bool isCtor = false;
    bool isDtor = false;
    bool isVirtual = false;
    int line = 1;
    std::size_t bodyFirst = 0; ///< token index of the opening brace
    std::size_t bodyLast = 0;  ///< token index of the closing brace
    /** Token index of the parameter-list `(`; npos when the function
     *  has no recognizable parameter list (lambdas without one). */
    std::size_t paramOpen = static_cast<std::size_t>(-1);
    /** Lambdas only: token index of the capture-list `[`; npos for
     *  named functions. */
    std::size_t captureOpen = static_cast<std::size_t>(-1);
    Stmt body;                 ///< Kind::Seq
    std::vector<CallSite> calls; ///< flattened over the whole body
};

/** One declared name (feeds the symbol graph). */
struct DeclName
{
    std::string name;
    int line = 1;
};

/** Parse result for one file. */
struct ParsedFile
{
    std::vector<FuncDef> funcs;  ///< includes lambdas (name == "")
    std::vector<DeclName> decls; ///< namespace/class-scope names
};

/**
 * Is the identifier at `i` (known to be followed by `(`) a *call* in
 * free/static position?  Member calls (`x.time()`) are someone else's
 * method; declarations (`int time(...)`) are not calls.
 */
bool freeCallContext(const std::vector<Token> &toks, std::size_t i);

/** Parse one lexed file.  Never fails; unrecognized constructs are
 *  consumed as opaque statements. */
ParsedFile parseFile(const LexedFile &lexed);

} // namespace ot::check
